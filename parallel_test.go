package tecore_test

import (
	"reflect"
	"testing"

	tecore "repro"
)

// solveAt runs one full conflict-resolution pass at the given
// parallelism and strips the wall-clock fields (solver runtime and
// repair stage timings), the only parts of the outcome allowed to vary
// between runs.
func solveAt(t *testing.T, ds *tecore.Dataset, program string, solver tecore.Solver,
	parallelism int, cpi bool) *tecore.Outcome {
	t.Helper()
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(program); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(tecore.SolveOptions{
		Solver:       solver,
		Parallelism:  parallelism,
		CuttingPlane: cpi,
	})
	if err != nil {
		t.Fatalf("solver %v parallelism %d: %v", solver, parallelism, err)
	}
	oc := *res.Outcome
	oc.Stats.Runtime = 0
	oc.Stats.Repair = nil
	oc.Stats.Outcome = nil
	oc.Stats.Ground = nil
	return &oc
}

// TestSolveDeterministicAcrossParallelism is the end-to-end determinism
// guarantee of the parallel pipeline: kept, removed and inferred facts,
// conflict clusters, statistics and explanations are identical whether
// the solve runs sequentially or across all cores — for both backends
// and for cutting-plane inference.
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 150, NoiseRatio: 0.8, Seed: 21})
	program := tecore.FootballProgram + `
pf1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
`
	cases := []struct {
		name   string
		solver tecore.Solver
		cpi    bool
	}{
		{"mln", tecore.SolverMLN, false},
		{"mln-cpi", tecore.SolverMLN, true},
		{"psl", tecore.SolverPSL, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := solveAt(t, ds, program, tc.solver, 1, tc.cpi)
			if base.Stats.RemovedFacts == 0 {
				t.Fatal("fixture removed nothing; determinism check would be vacuous")
			}
			for _, p := range []int{4, 0} { // explicit pool and the all-cores default
				got := solveAt(t, ds, program, tc.solver, p, tc.cpi)
				if !reflect.DeepEqual(got.Stats, base.Stats) {
					t.Errorf("parallelism %d: stats diverge:\n got %+v\nwant %+v", p, got.Stats, base.Stats)
				}
				if !reflect.DeepEqual(got.Kept, base.Kept) {
					t.Errorf("parallelism %d: kept facts diverge (%d vs %d)", p, len(got.Kept), len(base.Kept))
				}
				if !reflect.DeepEqual(got.Removed, base.Removed) {
					t.Errorf("parallelism %d: removed facts diverge (%d vs %d)", p, len(got.Removed), len(base.Removed))
				}
				if !reflect.DeepEqual(got.Inferred, base.Inferred) {
					t.Errorf("parallelism %d: inferred facts diverge (%d vs %d)", p, len(got.Inferred), len(base.Inferred))
				}
				if !reflect.DeepEqual(got.Clusters, base.Clusters) {
					t.Errorf("parallelism %d: conflict clusters diverge", p)
				}
			}
		})
	}
}

// TestParallelFlagOnAdvancedOptions: parallelism set through the
// advanced (translate-level) options must behave like the top-level
// field.
func TestParallelFlagOnAdvancedOptions(t *testing.T) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 80, NoiseRatio: 0.5, Seed: 9})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
		t.Fatal(err)
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN}
	opts.Advanced.Parallelism = 2
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := solveAt(t, ds, tecore.FootballProgram, tecore.SolverMLN, 1, false)
	if res.Stats.RemovedFacts != ref.Stats.RemovedFacts || res.Stats.KeptFacts != ref.Stats.KeptFacts {
		t.Errorf("advanced parallelism: kept/removed %d/%d, sequential %d/%d",
			res.Stats.KeptFacts, res.Stats.RemovedFacts, ref.Stats.KeptFacts, ref.Stats.RemovedFacts)
	}
}
