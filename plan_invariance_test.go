package tecore_test

import (
	"math/rand"
	"testing"

	tecore "repro"
)

// The selectivity planner chooses its own join order per rule, so the
// order body atoms are written in must not matter: permuting them has
// to produce the identical Resolution, on a fresh solve and across
// incremental updates. These tests are the determinism contract that
// licenses the planner to reorder at all.

// planProgram extends the football constraints with a three-atom join,
// so the planner has a real ordering decision beyond pairs.
const planProgram = tecore.FootballProgram + `
colleagues: quad(x, playsFor, y, t) ^ quad(z, playsFor, y, u) ^ quad(x, birthDate, b, t') -> overlap(t, u) w = 0.8
`

// permuteBodies returns a copy of prog with every rule body shuffled by
// the seeded generator (conditions and heads untouched — their variable
// sets don't depend on body order).
func permuteBodies(prog *tecore.Program, seed int64) *tecore.Program {
	rng := rand.New(rand.NewSource(seed))
	out := &tecore.Program{Rules: make([]*tecore.Rule, len(prog.Rules))}
	for i, r := range prog.Rules {
		cp := *r
		cp.Body = append(cp.Body[:0:0], r.Body...)
		rng.Shuffle(len(cp.Body), func(a, b int) {
			cp.Body[a], cp.Body[b] = cp.Body[b], cp.Body[a]
		})
		out.Rules[i] = &cp
	}
	return out
}

func planSession(t *testing.T, g tecore.Graph, prog *tecore.Program) *tecore.Session {
	t.Helper()
	s := tecore.NewSession()
	if err := s.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	for _, r := range prog.Rules {
		if err := s.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestPlanInvarianceUnderBodyPermutation(t *testing.T) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 60, NoiseRatio: 0.3, Seed: 17})
	prog, err := tecore.ParseRules(planProgram)
	if err != nil {
		t.Fatal(err)
	}
	probe := tecore.NewQuad("player_3", "playsFor", "perm_club",
		tecore.MustInterval(1999, 2001), 0.6)
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, Parallelism: 2}

	// Reference trajectory on the program as written: fresh solve, then
	// a single-fact add and remove through the delta path.
	base := planSession(t, ds.Graph, prog)
	want := make([]string, 0, 3)
	for step := 0; step < 3; step++ {
		switch step {
		case 1:
			if err := base.AddFact(probe); err != nil {
				t.Fatal(err)
			}
		case 2:
			base.RemoveFact(probe)
		}
		res, err := base.Solve(opts)
		if err != nil {
			t.Fatalf("base step %d: %v", step, err)
		}
		if step > 0 && !res.Incremental {
			t.Fatalf("base step %d: solve did not take the delta path", step)
		}
		want = append(want, canonResolution(res, -1))
	}

	for seed := int64(1); seed <= 3; seed++ {
		s := planSession(t, ds.Graph, permuteBodies(prog, seed))
		for step := 0; step < 3; step++ {
			switch step {
			case 1:
				if err := s.AddFact(probe); err != nil {
					t.Fatal(err)
				}
			case 2:
				s.RemoveFact(probe)
			}
			res, err := s.Solve(opts)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if step > 0 && !res.Incremental {
				t.Fatalf("seed %d step %d: solve did not take the delta path", seed, step)
			}
			if got := canonResolution(res, -1); got != want[step] {
				t.Fatalf("seed %d step %d: resolution diverged under body permutation\ngot:  %s\nwant: %s",
					seed, step, got, want[step])
			}
		}
	}
}

// TestLegacyGroundingDifferential: the compiled pipeline and the legacy
// string-keyed path it replaced must produce the identical Resolution —
// fresh and across incremental updates. This is the contract that makes
// the Legacy knob a valid benchmark baseline.
func TestLegacyGroundingDifferential(t *testing.T) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 60, NoiseRatio: 0.3, Seed: 17})
	prog, err := tecore.ParseRules(planProgram)
	if err != nil {
		t.Fatal(err)
	}
	probe := tecore.NewQuad("player_3", "playsFor", "diff_club",
		tecore.MustInterval(1999, 2001), 0.6)

	for _, solver := range []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL} {
		compiled := planSession(t, ds.Graph, prog)
		legacy := planSession(t, ds.Graph, prog)
		copts := tecore.SolveOptions{Solver: solver, Parallelism: 2}
		lopts := copts
		lopts.LegacyGrounding = true

		step := func(label string) {
			cres, err := compiled.Solve(copts)
			if err != nil {
				t.Fatalf("%v %s: compiled: %v", solver, label, err)
			}
			lres, err := legacy.Solve(lopts)
			if err != nil {
				t.Fatalf("%v %s: legacy: %v", solver, label, err)
			}
			if got, want := canonResolution(cres, 6), canonResolution(lres, 6); got != want {
				t.Fatalf("%v %s: compiled and legacy grounding diverged\ncompiled: %s\nlegacy:   %s",
					solver, label, got, want)
			}
			// The stats must attribute the path correctly.
			if gs := cres.Stats.Ground; gs == nil || !gs.Compiled {
				t.Fatalf("%v %s: compiled solve reported stats %+v", solver, label, cres.Stats.Ground)
			}
			if gs := lres.Stats.Ground; gs == nil || gs.Compiled {
				t.Fatalf("%v %s: legacy solve reported stats %+v", solver, label, lres.Stats.Ground)
			}
		}
		step("fresh")
		for _, s := range []*tecore.Session{compiled, legacy} {
			if err := s.AddFact(probe); err != nil {
				t.Fatal(err)
			}
		}
		step("add")
		for _, s := range []*tecore.Session{compiled, legacy} {
			s.RemoveFact(probe)
		}
		step("remove")
	}
}
