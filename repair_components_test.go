package tecore_test

import (
	"fmt"
	"testing"

	tecore "repro"
)

// The component-incremental repair read-out's contract: after any
// sequence of fact adds, removes and solves, a component-decomposed
// incremental session's Outcome — kept/removed/derived facts,
// Explanations, conflict clusters, per-constraint violation counts —
// is identical to a fresh whole-graph repair.Resolve over the same live
// graph, at parallelism 1 and N, for both MLN and PSL. The fresh
// comparator solves monolithically, so its read-out runs the
// whole-graph pass; the incremental side re-repairs only the components
// each delta dirtied and replays the rest from the repair cache.

// TestRepairComponentMatchesWholeGraphMLNExact: both sides solve
// exactly, so the unique MAP optimum leaves no tie-breaking slack and
// the read-outs must match to the last explanation.
func TestRepairComponentMatchesWholeGraphMLNExact(t *testing.T) {
	pool := componentPool(4, 3, 113)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			incOpts := exactEverywhere(tecore.SolveOptions{
				Solver: tecore.SolverMLN, Parallelism: par, ComponentSolve: true})
			freshOpts := exactEverywhere(tecore.SolveOptions{
				Solver: tecore.SolverMLN, Parallelism: par})
			runTwoWaysProgram(t, componentProgram, pool, incOpts, freshOpts, 127, 12, 17)
		})
	}
}

// TestRepairComponentMatchesWholeGraphMLNThreshold exercises the
// derived-fact threshold split: cached repair units embed the
// threshold-filtered classification, so replaying them across deltas
// must still match a fresh whole-graph read-out under the same
// threshold.
func TestRepairComponentMatchesWholeGraphMLNThreshold(t *testing.T) {
	pool := componentPool(4, 3, 131)
	incOpts := exactEverywhere(tecore.SolveOptions{
		Solver: tecore.SolverMLN, ComponentSolve: true, Threshold: 0.55})
	freshOpts := exactEverywhere(tecore.SolveOptions{
		Solver: tecore.SolverMLN, Threshold: 0.55})
	runTwoWaysProgram(t, componentProgram, pool, incOpts, freshOpts, 137, 10, 17)
}

// TestRepairComponentMatchesWholeGraphPSL: the discrete read-out must
// match; derived confidences come from ADMM soft values, which agree
// only to within the convergence tolerance across different
// decompositions, so they are compared numerically.
func TestRepairComponentMatchesWholeGraphPSL(t *testing.T) {
	pool := componentPool(3, 3, 139)
	incOpts := tecore.SolveOptions{Solver: tecore.SolverPSL, ComponentSolve: true, ColdStart: true}
	freshOpts := tecore.SolveOptions{Solver: tecore.SolverPSL, ColdStart: true}
	runTwoWaysProgram(t, componentProgram, pool, incOpts, freshOpts, 149, 8, -1)
}

// TestRepairCacheReuse checks the incremental contract the repair cache
// exists for: after a warm component solve, a single-fact delta
// re-repairs only the dirtied component and replays every other cached
// read-out, while a monolithic session reports the whole-graph mode.
func TestRepairCacheReuse(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 20, ClusterSize: 5, Seed: 7})
	mk := func(component bool) (*tecore.Session, tecore.SolveOptions) {
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			t.Fatal(err)
		}
		return s, tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: component}
	}
	probe := tecore.NewQuad("player/00003", "playsFor", "club/00003/0/probe",
		tecore.MustInterval(1991, 1993), 0.55)

	s, opts := mk(true)
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	rs := res.Stats.Repair
	if rs == nil || rs.Mode != tecore.RepairComponents {
		t.Fatalf("component solve must use the component repair mode: %+v", rs)
	}
	if rs.Repaired != rs.Components || rs.Reused != 0 {
		t.Fatalf("cold solve should repair every component: %+v", rs)
	}
	if err := s.AddFact(probe); err != nil {
		t.Fatal(err)
	}
	res, err = s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	rs = res.Stats.Repair
	if rs.Reused == 0 || rs.Reused < rs.Components-3 {
		t.Errorf("delta re-repaired more than its component: %d reused of %d", rs.Reused, rs.Components)
	}
	if rs.Repaired == 0 {
		t.Errorf("the dirtied component was not re-repaired: %+v", rs)
	}

	s, opts = mk(false)
	res, err = s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	rs = res.Stats.Repair
	if rs == nil || rs.Mode != tecore.RepairWholeGraph || rs.Repaired != 1 {
		t.Fatalf("monolithic solve must report one whole-graph repair pass: %+v", rs)
	}
}

// TestRepairCacheInvalidatedByOptions re-solves an unchanged graph
// under a different derived-fact threshold and a different solver:
// cached read-outs embed both, so neither re-solve may reuse them,
// while a same-options re-solve replays everything.
func TestRepairCacheInvalidatedByOptions(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadProgramText(componentProgram); err != nil {
		t.Fatal(err)
	}
	for _, q := range componentPool(4, 3, 151) {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(solver tecore.Solver, threshold float64) tecore.SolveOptions {
		return tecore.SolveOptions{Solver: solver, ComponentSolve: true, Threshold: threshold}
	}
	if _, err := s.Solve(mk(tecore.SolverMLN, 0)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(mk(tecore.SolverMLN, 0)) // same options, no delta: full replay
	if err != nil {
		t.Fatal(err)
	}
	if rs := res.Stats.Repair; rs.Reused != rs.Components || rs.Repaired != 0 {
		t.Fatalf("same-options re-solve should replay every cached read-out: %+v", rs)
	}
	res, err = s.Solve(mk(tecore.SolverMLN, 0.7)) // threshold change: cache must drop
	if err != nil {
		t.Fatal(err)
	}
	if rs := res.Stats.Repair; rs.Reused != 0 || rs.Repaired != rs.Components {
		t.Fatalf("threshold change must invalidate the repair cache: %+v", rs)
	}
	res, err = s.Solve(mk(tecore.SolverPSL, 0.7)) // solver switch: confidences change source
	if err != nil {
		t.Fatal(err)
	}
	if rs := res.Stats.Repair; rs.Reused != 0 || rs.Repaired != rs.Components {
		t.Fatalf("solver switch must invalidate the repair cache: %+v", rs)
	}
	// Engine tuning change: the solver caches drop, and the repair cache
	// must follow — a re-tuned solver can shift PSL soft values (and so
	// derived confidences) without moving the discrete truth.
	opts := mk(tecore.SolverPSL, 0.7)
	opts.Advanced.PSL.MaxIter = 500
	res, err = s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rs := res.Stats.Repair; rs.Reused != 0 || rs.Repaired != rs.Components {
		t.Fatalf("solver tuning change must invalidate the repair cache: %+v", rs)
	}
}
