// Package tecore is the public API of this reproduction of TeCoRe
// (Temporal Conflict Resolution in Knowledge Graphs, VLDB 2017): a system
// for temporal inference and conflict resolution in uncertain temporal
// knowledge graphs (utkgs).
//
// A utkg is a set of temporal facts — RDF triples with a validity
// interval and a confidence value:
//
//	(CR, coach, Chelsea, [2000,2004]) 0.9
//
// TeCoRe combines such data with temporal inference rules and
// constraints written in a Datalog-style language with Allen's interval
// relations and arithmetic conditions:
//
//	f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
//	c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z
//	      -> disjoint(t, t') w = inf
//
// and computes — via MAP inference on a Markov-logic backend (nRockIt
// stand-in) or a probabilistic-soft-logic backend (nPSL stand-in) — the
// most probable, expanded, conflict-free knowledge graph, along with
// debugging statistics.
//
// Quickstart:
//
//	s := tecore.NewSession()
//	_ = s.LoadGraphText(data)         // TQuads text
//	_ = s.LoadProgramText(rules)      // rules + constraints
//	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
//	// res.Kept, res.Removed, res.Inferred, res.Stats
package tecore

import (
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/kgen"
	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/rulelang"
	"repro/internal/suggest"
	"repro/internal/temporal"
	"repro/internal/translate"
	"repro/internal/wal"
)

// Session accumulates a knowledge graph and a program of rules and
// constraints; Solve runs conflict resolution. See core.Session.
type Session = core.Session

// NewSession returns an empty session.
func NewSession() *Session { return core.NewSession() }

// OpenSession opens a durable session rooted at dir, recovering the
// persisted store (snapshot + WAL replay) if the directory holds one
// and creating an empty durable session otherwise. Rules are not
// persisted — load the program after opening. Use Session.Checkpoint
// to compact the journal and Session.Close before discarding.
func OpenSession(dir string) (*Session, error) { return core.OpenSession(dir) }

// RecoveryStats reports what opening a durable session found: whether
// a snapshot was loaded, the watermark epoch, and the replayed WAL
// suffix.
type RecoveryStats = wal.RecoveryStats

// SolveOptions tunes a Solve call: backend, derived-fact threshold,
// cutting-plane inference.
type SolveOptions = core.SolveOptions

// Resolution is the outcome of conflict resolution: kept, removed and
// inferred facts plus statistics and the raw solver output.
type Resolution = core.Resolution

// BatchResult reports the net effect of a Session.ApplyBatch call:
// facts that changed liveness and facts whose confidence was raised.
type BatchResult = core.BatchResult

// Solver selects the probabilistic backend.
type Solver = translate.Solver

// Available solvers: MLN (nRockIt stand-in, exact boolean MAP) and PSL
// (nPSL stand-in, scalable convex approximation).
const (
	SolverMLN = translate.SolverMLN
	SolverPSL = translate.SolverPSL
)

// ParseSolver resolves a solver name ("mln"/"nrockit", "psl"/"npsl").
func ParseSolver(name string) (Solver, error) { return translate.ParseSolver(name) }

// Quad is an uncertain temporal fact.
type Quad = rdf.Quad

// Graph is a set of quads (a utkg).
type Graph = rdf.Graph

// Term is an RDF term (IRI, literal or blank node).
type Term = rdf.Term

// NewIRI builds an IRI term.
func NewIRI(iri string) Term { return rdf.NewIRI(iri) }

// NewQuad assembles a quad from compact IRI names.
func NewQuad(s, p, o string, iv Interval, conf float64) Quad {
	return rdf.NewQuad(s, p, o, iv, conf)
}

// Interval is a closed interval over the discrete time domain.
type Interval = temporal.Interval

// NewInterval returns the validated interval [start, end].
func NewInterval(start, end int64) (Interval, error) { return temporal.New(start, end) }

// MustInterval is NewInterval for literals in examples and tests.
func MustInterval(start, end int64) Interval { return temporal.MustNew(start, end) }

// ParseGraph reads a TQuads document.
func ParseGraph(r io.Reader) (Graph, error) { return rdf.ParseGraph(r) }

// ParseGraphString reads a TQuads document from a string.
func ParseGraphString(s string) (Graph, error) { return rdf.ParseGraphString(s) }

// WriteGraph serialises a graph as TQuads text.
func WriteGraph(w io.Writer, g Graph) error { return rdf.WriteGraph(w, g) }

// Program is a set of rules and constraints.
type Program = logic.Program

// Rule is a weighted temporal formula.
type Rule = logic.Rule

// ParseRules parses rules/constraints in the surface syntax.
func ParseRules(src string) (*Program, error) { return rulelang.Parse(src) }

// FormatRules renders a program back to parseable text.
func FormatRules(p *Program) string { return rulelang.Format(p) }

// AllenConstraint builds the constraint the Web UI's editor produces:
// the Allen predicate rel must hold between the intervals of pred1 and
// pred2 facts sharing a subject. With distinctObjects, the constraint
// only fires when the objects differ (the paper's y != z guard).
func AllenConstraint(name, pred1, pred2, rel string, distinctObjects bool) (*Rule, error) {
	return core.AllenConstraint(name, pred1, pred2, rel, distinctObjects)
}

// FunctionalConstraint builds the equality-generating constraint of the
// paper's c3: one object per subject at intersecting times.
func FunctionalConstraint(name, pred string) (*Rule, error) {
	return core.FunctionalConstraint(name, pred)
}

// Outcome is the conflict-resolution result embedded in Resolution.
type Outcome = repair.Outcome

// Stats summarises a debugging run (Figure 8 of the paper).
type Stats = repair.Stats

// ComponentStats summarises a component-decomposed solve (see
// SolveOptions.ComponentSolve); available as Stats.Components.
type ComponentStats = ground.ComponentStats

// PlanStats summarises the solve-plan stage of a component-decomposed
// solve: whether the plan was patched in place ("maintained") or built
// from scratch ("rebuilt"), the splice and partition-patch counts, and
// the sync wall time; available as Stats.Plan (nil on monolithic
// solves). SolveOptions.RebuildPlan forces the from-scratch baseline.
type PlanStats = engine.PlanStats

// GroundStats summarises the grounding stage of a solve — total wall
// time and, per rule, the chosen join order with its selectivity
// estimates, candidate and emitted-grounding counts; available as
// Stats.Ground (nil when the solve did no grounding work).
type GroundStats = ground.GroundStats

// RuleGroundStats is one rule's entry in GroundStats.
type RuleGroundStats = ground.RuleGroundStats

// GroundProfile runs one cold grounding pass over the session's store
// and program on a throwaway grounder — without touching the cached
// incremental engine — and returns the grounding statistics plus the
// atom and clause counts of the resulting network. With legacy set it
// uses the pre-compilation string-keyed path; the grounding benchmark
// calls it both ways to compare the compiled pipeline against the
// baseline on identical input.
func GroundProfile(s *Session, legacy bool, parallelism int) (*GroundStats, int, int, error) {
	return core.GroundProfile(s, legacy, parallelism)
}

// RepairStats summarises the conflict-resolution read-out stage — mode
// (whole-graph or per-component), the repaired/reused component split,
// and stage timings; available as Stats.Repair.
type RepairStats = repair.RepairStats

// Repair modes reported in RepairStats.Mode.
const (
	RepairWholeGraph = repair.RepairWholeGraph
	RepairComponents = repair.RepairComponents
)

// OutcomeStats summarises how the final Outcome was produced —
// assembled from scratch or delta-patched on the session's live
// outcome — with the patched/reused component split and the index and
// merge timings; available as Stats.Outcome.
type OutcomeStats = repair.OutcomeStats

// Outcome read-out modes reported in OutcomeStats.Mode.
const (
	OutcomeAssembled = repair.OutcomeAssembled
	OutcomeLive      = repair.OutcomeLive
	OutcomeDeltaOnly = repair.OutcomeDeltaOnly
)

// OutcomeDelta is the changelog of an incremental component solve: the
// facts and conflict clusters that entered or left each Outcome list
// relative to the session's previous solve; available as
// Resolution.Delta.
type OutcomeDelta = repair.OutcomeDelta

// Fact is a resolved fact with provenance.
type Fact = repair.Fact

// Dataset is a generated evaluation dataset with gold noise labels.
type Dataset = kgen.Dataset

// FootballConfig parameterises the FootballDB-profile generator.
type FootballConfig = kgen.FootballConfig

// WikidataConfig parameterises the Wikidata-profile generator.
type WikidataConfig = kgen.WikidataConfig

// ClusteredConfig parameterises the clustered-conflict generator: many
// small independent conflict clusters with a tunable inter-cluster
// bridge rate — the structure the component-decomposed solver exploits.
type ClusteredConfig = kgen.ClusteredConfig

// GenerateFootball builds a FootballDB-profile dataset (>13K playsFor,
// >6K birthDate facts at default scale) with optional labelled noise.
func GenerateFootball(cfg FootballConfig) *Dataset { return kgen.Football(cfg) }

// GenerateWikidata builds a Wikidata-profile dataset with the paper's
// per-relation cardinalities scaled by cfg.Scale.
func GenerateWikidata(cfg WikidataConfig) *Dataset { return kgen.Wikidata(cfg) }

// GenerateClustered builds a clustered-conflict dataset: cfg.Clusters
// independent conflict clusters of cfg.ClusterSize facts each, merged
// pairwise with probability cfg.BridgeRate.
func GenerateClustered(cfg ClusteredConfig) *Dataset { return kgen.Clustered(cfg) }

// FootballProgram is the standard constraint set for the football
// profile (no two teams at once, single birth date, born before plays).
const FootballProgram = kgen.FootballProgram

// WikidataProgram is the standard constraint set for the Wikidata
// profile.
const WikidataProgram = kgen.WikidataProgram

// ClusteredProgram is the standard constraint set for the clustered
// profile: a player plays for one club at a time (the intra-cluster
// conflicts) and a club fields one of the generated players at a time
// (the constraint bridge facts violate across clusters).
const ClusteredProgram = kgen.ClusteredProgram

// ConstraintSuggestion is a mined candidate constraint with its support
// statistics.
type ConstraintSuggestion = suggest.Suggestion

// SuggestOptions tunes the constraint miner.
type SuggestOptions = suggest.Options

// SuggestConstraints mines candidate temporal constraints from the
// session's data — the "automatic derivation or suggestion of
// constraints" the paper proposes as a demonstration goal. Suggestions
// come sorted by confidence; review them before adding via AddRule.
func SuggestConstraints(s *Session, opts SuggestOptions) ([]ConstraintSuggestion, error) {
	return suggest.Mine(s.Store(), opts)
}
