// Benchmark harness regenerating every table and figure of the TeCoRe
// demo paper's evaluation (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	E1  Figures 1→7   running example (both solvers)
//	E2  Figure 8      debugging statistics at 243K facts
//	E3  Section 3     nRockIt vs nPSL runtime on FootballDB
//	E4  Section 1/3   1:1 noisy setting, precision/recall
//	E5  Section 1     derived-fact confidence threshold sweep
//	E6  Section 4     Wikidata per-relation scalability
//	E8  (ablation)    cutting-plane inference vs full grounding
//
// Macro benchmarks take seconds per iteration; run with -benchtime=1x
// for a single timed pass:
//
//	go test -bench=. -benchmem -benchtime=1x
package tecore_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	tecore "repro"
	"repro/internal/mln"
	"repro/internal/server"
	"repro/internal/translate"
)

// --- E1: running example (Figures 1, 4, 6 → 7) ---

func BenchmarkE1_RunningExample(b *testing.B) {
	for _, solver := range []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL} {
		b.Run(solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraphText(figure1); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(figure4and6); err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(tecore.SolveOptions{Solver: solver})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.RemovedFacts != 1 {
					b.Fatalf("removed %d facts, want 1 (Napoli)", res.Stats.RemovedFacts)
				}
			}
		})
	}
}

// --- E2: Figure 8 — debugging statistics at the demo's scale ---
// Paper: 19,734 conflicting facts in a utkg of 243,157 temporal facts
// (≈8.1%). The Wikidata-profile generator's default noise rate is tuned
// to that fraction; "conflicting facts" counts the members of conflict
// clusters (both sides of each violated constraint grounding).

func BenchmarkE2_DebuggingStats(b *testing.B) {
	// Scale 0.0633 yields ≈243K facts with the profile's mean spells;
	// the noise rate is calibrated to Figure 8's 8.1% conflicting facts.
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.0633, NoiseRatio: 0.039, Seed: 1})
	b.Logf("dataset: %d facts (paper: 243,157)", len(ds.Graph))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			b.Fatal(err)
		}
		if err := s.LoadProgramText(tecore.WikidataProgram); err != nil {
			b.Fatal(err)
		}
		res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverPSL})
		if err != nil {
			b.Fatal(err)
		}
		conflicting := 0
		for _, cl := range res.Clusters {
			conflicting += len(cl)
		}
		b.ReportMetric(float64(len(ds.Graph)), "facts")
		b.ReportMetric(float64(conflicting), "conflicting")
		b.ReportMetric(float64(res.Stats.RemovedFacts), "removed")
		b.ReportMetric(100*float64(conflicting)/float64(len(ds.Graph)), "conflict_%")
	}
}

// --- E3: Section 3 — nRockIt vs nPSL on FootballDB ---
// Paper: nRockIt 12,181 ms vs nPSL 6,129 ms (average of 10 runs) on the
// FootballDB utkg. Absolute times differ on our substrate; the shape to
// reproduce is PSL ≈ 2× faster with the same removal decisions.

func BenchmarkE3_MLNvsPSL_FootballDB(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 6500, NoiseRatio: 0.05, Seed: 1})
	b.Logf("dataset: %d facts (paper: >13K playsFor + >6K birthDate)", len(ds.Graph))
	for _, solver := range []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL} {
		b.Run(solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraph(ds.Graph); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(tecore.SolveOptions{Solver: solver})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.RemovedFacts), "removed")
				b.ReportMetric(float64(res.Output.Runtime.Milliseconds()), "solver_ms")
			}
		})
	}
}

// --- E4: the highly noisy setting (1:1 noise), precision/recall ---

func BenchmarkE4_NoisyDebugging(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 1500, NoiseRatio: 1.0, Seed: 2})
	b.Logf("dataset: %d facts, %d injected noise", len(ds.Graph), ds.NoiseCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			b.Fatal(err)
		}
		if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
			b.Fatal(err)
		}
		res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
		if err != nil {
			b.Fatal(err)
		}
		tp, fp := 0, 0
		for _, f := range res.Removed {
			if ds.Noise[f.Quad.Fact()] {
				tp++
			} else {
				fp++
			}
		}
		b.ReportMetric(float64(tp)/float64(tp+fp), "precision")
		b.ReportMetric(float64(tp)/float64(ds.NoiseCount()), "recall")
		b.ReportMetric(float64(res.Stats.RemovedFacts), "removed")
	}
}

// --- E5: derived-fact confidence threshold sweep ---

func BenchmarkE5_ThresholdSweep(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 300, Seed: 3})
	rules := tecore.FootballProgram + `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
f2: quad(x, playsFor, y, t) ^ duration(t) >= 4 -> quad(x, type, Veteran, t) w = 0.8
`
	for _, threshold := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("threshold=%.1f", threshold), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraph(ds.Graph); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(rules); err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN, Threshold: threshold})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.InferredFacts), "inferred")
				b.ReportMetric(float64(res.Stats.ThresholdFiltered), "filtered")
			}
		})
	}
}

// --- E6: Wikidata per-relation scalability (Section 4 cardinalities) ---
// One sub-benchmark per relation at the paper's relative sizes (scaled);
// runtime should be ordered by relation cardinality and near-linear for
// the PSL backend.

func BenchmarkE6_WikidataRelations(b *testing.B) {
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.01, Seed: 4})
	perRelation := map[string]tecore.Graph{}
	for _, q := range ds.Graph {
		p := q.Predicate.Value
		perRelation[p] = append(perRelation[p], q)
	}
	constraints := map[string]string{
		"playsFor":   "c: quad(x, playsFor, y, t) ^ quad(x, playsFor, z, t') ^ y != z -> disjoint(t, t') w = inf",
		"spouse":     "c: quad(x, spouse, y, t) ^ quad(x, spouse, z, t') ^ y != z -> disjoint(t, t') w = inf",
		"memberOf":   "c: quad(x, memberOf, y, t) ^ start(t) < 1900 -> false w = inf",
		"educatedAt": "c: quad(x, educatedAt, y, t) ^ quad(x, educatedAt, z, t') ^ y != z -> disjoint(t, t') w = inf",
		"occupation": "c: quad(x, occupation, y, t) ^ quad(x, occupation, z, t') ^ overlap(t, t') -> y = z w = inf",
	}
	for _, rel := range []string{"playsFor", "spouse", "memberOf", "educatedAt", "occupation"} {
		g := perRelation[rel]
		b.Run(fmt.Sprintf("%s_%d", rel, len(g)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraph(g); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(constraints[rel]); err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverPSL})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(g)), "facts")
				b.ReportMetric(float64(res.Stats.RemovedFacts), "removed")
			}
		})
	}
}

// --- E8: cutting-plane inference ablation ---
// RockIt's scalability device: ground only violated formulas lazily.
// Compare ground-clause counts and runtime against full grounding on a
// conflict-sparse dataset, where CPI grounds a fraction of the clauses.

func BenchmarkE8_CuttingPlaneAblation(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 2000, NoiseRatio: 0.02, Seed: 5})
	for _, mode := range []string{"full", "cpi"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraph(ds.Graph); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
					b.Fatal(err)
				}
				opts := tecore.SolveOptions{Solver: tecore.SolverMLN, CuttingPlane: mode == "cpi"}
				res, err := s.Solve(opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Output.MLN.GroundClauses), "ground_clauses")
				b.ReportMetric(float64(res.Output.MLN.Rounds), "rounds")
			}
		})
	}
}

// --- Parallel scaling: the E6 workload across worker pool sizes ---
// The solve pipeline (grounding, restarts, ADMM sweeps) fans out across
// a bounded worker pool with byte-identical results; this benchmark
// measures the wall-clock effect on the largest E6 relation for both
// backends. parallel=1 is the sequential path, parallel=0 all cores.

func BenchmarkParallelismScaling(b *testing.B) {
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.01, Seed: 4})
	var largest tecore.Graph
	perRelation := map[string]tecore.Graph{}
	for _, q := range ds.Graph {
		p := q.Predicate.Value
		perRelation[p] = append(perRelation[p], q)
		if len(perRelation[p]) > len(largest) {
			largest = perRelation[p]
		}
	}
	rel := largest[0].Predicate.Value
	program := fmt.Sprintf(
		"c: quad(x, <%s>, y, t) ^ quad(x, <%s>, z, t') ^ y != z -> disjoint(t, t') w = inf", rel, rel)
	b.Logf("relation %s: %d facts", rel, len(largest))
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		for _, parallel := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/parallel=%d", solver, parallel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := tecore.NewSession()
					if err := s.LoadGraph(largest); err != nil {
						b.Fatal(err)
					}
					if err := s.LoadProgramText(program); err != nil {
						b.Fatal(err)
					}
					res, err := s.Solve(tecore.SolveOptions{Solver: solver, Parallelism: parallel})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.RemovedFacts), "removed")
				}
			})
		}
	}
}

// --- Incremental solving: single-fact update vs full re-solve ---
// The stateful session grounds once; each update flows through the
// store's epoch delta (seminaive re-grounding of affected rules only)
// and warm-starts the solver from the previous solution. full/ measures
// the from-scratch cost a stateless client pays per update; update/
// measures the delta path on a session that toggles one fact per
// iteration. The emitter (cmd/tecore-bench) records both in
// BENCH_incremental.json; the delta path is expected ≥5× faster.

func BenchmarkIncrementalUpdate(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 2000, NoiseRatio: 0.05, Seed: 9})
	b.Logf("dataset: %d facts", len(ds.Graph))
	probe := tecore.NewQuad("player_42", "playsFor", "bench_club",
		tecore.MustInterval(1995, 1997), 0.7)
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		b.Run("full/"+solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraph(ds.Graph); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
					b.Fatal(err)
				}
				if i%2 == 0 {
					if err := s.AddFact(probe); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := s.Solve(tecore.SolveOptions{Solver: solver}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("update/"+solver.String(), func(b *testing.B) {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				b.Fatal(err)
			}
			if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(tecore.SolveOptions{Solver: solver}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if err := s.AddFact(probe); err != nil {
						b.Fatal(err)
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(tecore.SolveOptions{Solver: solver})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Incremental {
					b.Fatal("update solve did not take the delta path")
				}
			}
		})
	}
}

// --- Component-decomposed solving: monolithic vs per-component ---
// The clustered workload splits into one conflict component per cluster
// (a few merged by bridges). components/cold solves them with
// per-component engines in parallel; components/update additionally
// reuses cached component solutions so a single-fact toggle re-solves
// only the component it dirtied. cmd/tecore-bench records the same
// comparison in BENCH_components.json across cluster counts.

func BenchmarkComponentSolve(b *testing.B) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{
		Clusters: 150, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
	probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
		tecore.MustInterval(1991, 1993), 0.55)
	b.Logf("dataset: %d facts in 150 clusters", len(ds.Graph))
	newSession := func(b *testing.B) *tecore.Session {
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			b.Fatal(err)
		}
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			b.Fatal(err)
		}
		return s
	}
	for _, component := range []bool{false, true} {
		mode := "monolithic"
		if component {
			mode = "components"
		}
		opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: component}
		b.Run("cold/"+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := newSession(b)
				res, err := s.Solve(opts)
				if err != nil {
					b.Fatal(err)
				}
				if component {
					b.ReportMetric(float64(res.Stats.Components.Count), "components")
				}
			}
		})
		b.Run("update/"+mode, func(b *testing.B) {
			s := newSession(b)
			if _, err := s.Solve(opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if err := s.AddFact(probe); err != nil {
						b.Fatal(err)
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Incremental {
					b.Fatal("update solve did not take the delta path")
				}
				if component {
					b.ReportMetric(float64(res.Stats.Components.Reused), "reused")
				}
			}
		})
	}
}

// BenchmarkRepairStage isolates the conflict-resolution read-out stage
// of incremental single-fact re-solves on the clustered workload: the
// whole-graph pass (monolithic session) rescans every live clause per
// update, the component-incremental pass (component session) re-analyses
// only the dirtied component and replays the rest from the repair
// cache. The reported metric is the repair stage's own timing, not the
// whole solve.
func BenchmarkRepairStage(b *testing.B) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{
		Clusters: 150, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
	probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
		tecore.MustInterval(1991, 1993), 0.55)
	for _, component := range []bool{false, true} {
		mode := "whole-graph"
		if component {
			mode = "components"
		}
		opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: component}
		b.Run("update/"+mode, func(b *testing.B) {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				b.Fatal(err)
			}
			if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(opts); err != nil {
				b.Fatal(err)
			}
			var repairNS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if err := s.AddFact(probe); err != nil {
						b.Fatal(err)
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(opts)
				if err != nil {
					b.Fatal(err)
				}
				rs := res.Stats.Repair
				if rs == nil {
					b.Fatal("solve reported no repair stage stats")
				}
				repairNS += float64(rs.Total.Nanoseconds())
				if component && rs.Reused == 0 {
					b.Fatal("component repair reused nothing on an incremental update")
				}
			}
			b.ReportMetric(repairNS/float64(b.N), "repair-ns/op")
		})
	}
}

// BenchmarkOutcomeStage isolates the Outcome production stage of
// incremental component re-solves: the sort/merge assembly of every
// component's read-out unit (AssembledOutcome) against the live
// delta-patched outcome, on single-fact update toggles of a warm
// clustered session. The live path splices one component of ~150 into
// the maintained lists instead of rebuilding them.
func BenchmarkOutcomeStage(b *testing.B) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{
		Clusters: 150, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
	probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
		tecore.MustInterval(1991, 1993), 0.55)
	for _, assembled := range []bool{true, false} {
		mode := tecore.OutcomeLive
		if assembled {
			mode = tecore.OutcomeAssembled
		}
		opts := tecore.SolveOptions{
			Solver: tecore.SolverMLN, ComponentSolve: true, AssembledOutcome: assembled}
		b.Run("update/"+mode, func(b *testing.B) {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				b.Fatal(err)
			}
			if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(opts); err != nil {
				b.Fatal(err)
			}
			var outcomeNS float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					if err := s.AddFact(probe); err != nil {
						b.Fatal(err)
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(opts)
				if err != nil {
					b.Fatal(err)
				}
				ocs := res.Stats.Outcome
				if ocs == nil || ocs.Mode != mode {
					b.Fatalf("solve reported outcome stats %+v, want mode %s", ocs, mode)
				}
				outcomeNS += float64(ocs.Total.Nanoseconds())
				if !assembled && ocs.Reused == 0 {
					b.Fatal("live outcome reused nothing on an incremental update")
				}
			}
			b.ReportMetric(outcomeNS/float64(b.N), "outcome-ns/op")
		})
	}
}

// --- Concurrent session serving: the HTTP session API under load ---
// K sessions, each its own clustered dataset, all applying one batch
// toggle + component re-solve per iteration concurrently. The emitter
// (cmd/tecore-bench -scenario serve) records the full serial-vs-
// concurrent and per-fact-vs-batch comparison in BENCH_serve.json;
// this benchmark keeps the concurrent path itself on the perf radar.
func BenchmarkServeConcurrentSessions(b *testing.B) {
	const nSessions = 4
	srv := server.NewWithConfig(server.Config{MaxQueuedSolves: 2 * nSessions})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: nSessions + 2}}
	post := func(path string, body, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}
	solve := &server.SessionSolveRequest{Solver: "mln", ComponentSolve: true}
	ids := make([]string, nSessions)
	for i := range ids {
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: 40, ClusterSize: 6, BridgeRate: 0.1, Seed: int64(20 + i)})
		var sb strings.Builder
		if err := tecore.WriteGraph(&sb, ds.Graph); err != nil {
			b.Fatal(err)
		}
		var info server.SessionInfo
		if err := post("/api/sessions", server.CreateSessionRequest{
			TQuads: sb.String(), Rules: tecore.ClusteredProgram}, &info); err != nil {
			b.Fatal(err)
		}
		if err := post("/api/sessions/"+info.ID+"/solve", solve, nil); err != nil {
			b.Fatal(err)
		}
		ids[i] = info.ID
	}
	probe := "player/00001 playsFor club/00001/probe [1991,1993] 0.55"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := server.BatchRequest{Solve: solve}
		if i%2 == 0 {
			req.Add = probe
		} else {
			req.Remove = probe
		}
		var wg sync.WaitGroup
		errs := make([]error, len(ids))
		for j, id := range ids {
			wg.Add(1)
			go func(j int, id string) {
				defer wg.Done()
				errs[j] = post("/api/sessions/"+id+"/batch", req, nil)
			}(j, id)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(nSessions), "sessions")
}

// Guard: the MLN options type stays exported for advanced tuning.
var _ = translate.Options{MLN: mln.Options{}}

// --- Extension: constraint-suggestion mining cost ---
// Not a paper table; measures the Section-4 "automatic suggestion"
// extension at FootballDB scale.

func BenchmarkSuggestMiningFootball(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 6500, NoiseRatio: 0.1, Seed: 6})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sugs, err := tecore.SuggestConstraints(s, tecore.SuggestOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(sugs)), "suggestions")
	}
}

// --- E10 (ablation): greedy baseline vs MAP quality ---
// Greedy repair keeps facts strongest-first; MAP optimises globally.
// Compare removed confidence mass (lower is better) and wall clock on
// the noisy football profile.

func BenchmarkE10_GreedyVsMAP(b *testing.B) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 1500, NoiseRatio: 0.5, Seed: 8})
	for _, solverName := range []string{"greedy", "mln"} {
		solver, err := tecore.ParseSolver(solverName)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(solverName, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := tecore.NewSession()
				if err := s.LoadGraph(ds.Graph); err != nil {
					b.Fatal(err)
				}
				if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
					b.Fatal(err)
				}
				res, err := s.Solve(tecore.SolveOptions{Solver: solver})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.RemovedWeight, "removed_weight")
				b.ReportMetric(float64(res.Stats.RemovedFacts), "removed")
			}
		})
	}
}
