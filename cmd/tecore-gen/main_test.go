package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	tecore "repro"
)

func TestGenerateFootballFiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fb.tq")
	labels := filepath.Join(dir, "noise.txt")
	rules := filepath.Join(dir, "fb.tcr")
	cfg := genConfig{profile: "football", players: 80, noise: 0.5, seed: 3}
	if err := run(cfg, out, labels, rules); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tecore.ParseGraphString(string(data))
	if err != nil {
		t.Fatalf("generated TQuads unparseable: %v", err)
	}
	if len(g) < 150 {
		t.Errorf("generated %d facts", len(g))
	}

	lb, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lb), "player/") {
		t.Errorf("labels file = %q...", string(lb)[:min(80, len(lb))])
	}

	rl, err := os.ReadFile(rules)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tecore.ParseRules(string(rl)); err != nil {
		t.Errorf("emitted rules unparseable: %v", err)
	}
}

func TestGenerateWikidata(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "wd.tq")
	if err := run(genConfig{profile: "wikidata", scale: 0.002, seed: 1}, out, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tecore.ParseGraphString(string(data))
	if err != nil || len(g) == 0 {
		t.Fatalf("wikidata output: %d facts, %v", len(g), err)
	}
}

// TestGenerateClustered exercises the clustered-workload flags: the
// generated file must parse, carry one cluster's worth of facts per
// requested cluster, and — solved with the emitted standard constraint
// set — actually decompose into roughly one conflict component per
// cluster (the structure the component-decomposed solver and repair
// exploit outside the bench harness).
func TestGenerateClustered(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "cl.tq")
	labels := filepath.Join(dir, "noise.txt")
	rules := filepath.Join(dir, "cl.tcr")
	cfg := genConfig{profile: "clustered", clusters: 20, clusterSize: 5, bridge: 0.3, seed: 9}
	if err := run(cfg, out, labels, rules); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tecore.ParseGraphString(string(data))
	if err != nil {
		t.Fatalf("generated TQuads unparseable: %v", err)
	}
	if len(g) < 20*5 {
		t.Errorf("generated %d facts, want ≥ clusters × cluster-size = 100", len(g))
	}

	// Bridges are noise-labelled conflict inducers; with bridge 0.3 over
	// 20 clusters some must exist.
	lb, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(string(lb))) == 0 {
		t.Error("clustered profile emitted no gold noise labels")
	}

	rl, err := os.ReadFile(rules)
	if err != nil {
		t.Fatal(err)
	}
	s := tecore.NewSession()
	if err := s.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(string(rl)); err != nil {
		t.Fatalf("emitted rules unparseable: %v", err)
	}
	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Stats.Components
	if cs == nil || cs.Count < 10 || cs.Count > 20 {
		t.Errorf("component count = %+v, want ≈ clusters minus bridge merges", cs)
	}
}

func TestGenerateUnknownProfile(t *testing.T) {
	if err := run(genConfig{profile: "mars", seed: 1}, "", "", ""); err == nil {
		t.Error("unknown profile accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
