package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	tecore "repro"
)

func TestGenerateFootballFiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fb.tq")
	labels := filepath.Join(dir, "noise.txt")
	rules := filepath.Join(dir, "fb.tcr")
	if err := run("football", 80, 0, 0.5, 3, out, labels, rules); err != nil {
		t.Fatalf("run: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tecore.ParseGraphString(string(data))
	if err != nil {
		t.Fatalf("generated TQuads unparseable: %v", err)
	}
	if len(g) < 150 {
		t.Errorf("generated %d facts", len(g))
	}

	lb, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lb), "player/") {
		t.Errorf("labels file = %q...", string(lb)[:min(80, len(lb))])
	}

	rl, err := os.ReadFile(rules)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tecore.ParseRules(string(rl)); err != nil {
		t.Errorf("emitted rules unparseable: %v", err)
	}
}

func TestGenerateWikidata(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "wd.tq")
	if err := run("wikidata", 0, 0.002, 0, 1, out, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tecore.ParseGraphString(string(data))
	if err != nil || len(g) == 0 {
		t.Fatalf("wikidata output: %d facts, %v", len(g), err)
	}
}

func TestGenerateUnknownProfile(t *testing.T) {
	if err := run("mars", 0, 0, 0, 1, "", "", ""); err == nil {
		t.Error("unknown profile accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
