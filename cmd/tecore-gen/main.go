// Command tecore-gen generates the evaluation datasets of the TeCoRe
// demo: a FootballDB-profile knowledge graph (player careers) or a
// Wikidata-profile graph (the five temporal relations of the paper),
// with optional labelled noise injection.
//
// Usage:
//
//	tecore-gen -profile football -players 6500 -noise 1.0 -o fb.tq
//	tecore-gen -profile wikidata -scale 0.01 -o wd.tq [-labels noise.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	tecore "repro"
)

func main() {
	profile := flag.String("profile", "football", "dataset profile: football or wikidata")
	players := flag.Int("players", 0, "football: number of players (default 6500)")
	scale := flag.Float64("scale", 0, "wikidata: cardinality scale factor (default 0.01)")
	noise := flag.Float64("noise", 0, "noise ratio: injected facts per clean fact")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output TQuads file (default stdout)")
	labels := flag.String("labels", "", "optional file for gold noise labels (one statement per line)")
	rules := flag.String("rules", "", "optional file for the profile's standard constraint set")
	flag.Parse()

	if err := run(*profile, *players, *scale, *noise, *seed, *out, *labels, *rules); err != nil {
		fmt.Fprintf(os.Stderr, "tecore-gen: %v\n", err)
		os.Exit(1)
	}
}

func run(profile string, players int, scale, noise float64, seed int64, out, labels, rules string) error {
	var (
		ds      *tecore.Dataset
		program string
	)
	switch profile {
	case "football":
		ds = tecore.GenerateFootball(tecore.FootballConfig{Players: players, NoiseRatio: noise, Seed: seed})
		program = tecore.FootballProgram
	case "wikidata":
		ds = tecore.GenerateWikidata(tecore.WikidataConfig{Scale: scale, NoiseRatio: noise, Seed: seed})
		program = tecore.WikidataProgram
	default:
		return fmt.Errorf("unknown profile %q (want football or wikidata)", profile)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tecore.WriteGraph(w, ds.Graph); err != nil {
		return err
	}

	if labels != "" {
		f, err := os.Create(labels)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		var keys []string
		for k := range ds.Noise {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintln(bw, k)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if rules != "" {
		if err := os.WriteFile(rules, []byte(program), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d facts (%d clean, %d noise) with profile %s\n",
		len(ds.Graph), ds.CleanCount(), ds.NoiseCount(), ds.Profile)
	return nil
}
