// Command tecore-gen generates the evaluation datasets of the TeCoRe
// demo: a FootballDB-profile knowledge graph (player careers), a
// Wikidata-profile graph (the five temporal relations of the paper), or
// a clustered-conflict graph (many small independent conflict clusters
// with a tunable inter-cluster bridge rate — the component structure
// the component-decomposed solver and repair exploit), with optional
// labelled noise injection.
//
// Usage:
//
//	tecore-gen -profile football -players 6500 -noise 1.0 -o fb.tq
//	tecore-gen -profile wikidata -scale 0.01 -o wd.tq [-labels noise.txt]
//	tecore-gen -profile clustered -clusters 400 -cluster-size 6 -bridge 0.1 -o cl.tq
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	tecore "repro"
)

func main() {
	profile := flag.String("profile", "football", "dataset profile: football, wikidata or clustered")
	players := flag.Int("players", 0, "football: number of players (default 6500)")
	scale := flag.Float64("scale", 0, "wikidata: cardinality scale factor (default 0.01)")
	noise := flag.Float64("noise", 0, "noise ratio: injected facts per clean fact")
	clusters := flag.Int("clusters", 0, "clustered: number of conflict clusters (default 100)")
	clusterSize := flag.Int("cluster-size", 0, "clustered: playsFor facts per cluster (default 6)")
	bridge := flag.Float64("bridge", 0, "clustered: probability a cluster is bridged to its successor, merging their components (default 0)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output TQuads file (default stdout)")
	labels := flag.String("labels", "", "optional file for gold noise labels (one statement per line)")
	rules := flag.String("rules", "", "optional file for the profile's standard constraint set")
	flag.Parse()

	cfg := genConfig{
		profile: *profile, players: *players, scale: *scale, noise: *noise,
		clusters: *clusters, clusterSize: *clusterSize, bridge: *bridge, seed: *seed,
	}
	if err := run(cfg, *out, *labels, *rules); err != nil {
		fmt.Fprintf(os.Stderr, "tecore-gen: %v\n", err)
		os.Exit(1)
	}
}

// genConfig bundles the profile selection and per-profile knobs.
type genConfig struct {
	profile               string
	players               int
	scale, noise          float64
	clusters, clusterSize int
	bridge                float64
	seed                  int64
}

func run(cfg genConfig, out, labels, rules string) error {
	var (
		ds      *tecore.Dataset
		program string
	)
	switch cfg.profile {
	case "football":
		ds = tecore.GenerateFootball(tecore.FootballConfig{Players: cfg.players, NoiseRatio: cfg.noise, Seed: cfg.seed})
		program = tecore.FootballProgram
	case "wikidata":
		ds = tecore.GenerateWikidata(tecore.WikidataConfig{Scale: cfg.scale, NoiseRatio: cfg.noise, Seed: cfg.seed})
		program = tecore.WikidataProgram
	case "clustered":
		ds = tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: cfg.clusters, ClusterSize: cfg.clusterSize, BridgeRate: cfg.bridge, Seed: cfg.seed})
		program = tecore.ClusteredProgram
	default:
		return fmt.Errorf("unknown profile %q (want football, wikidata or clustered)", cfg.profile)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tecore.WriteGraph(w, ds.Graph); err != nil {
		return err
	}

	if labels != "" {
		f, err := os.Create(labels)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		var keys []string
		for k := range ds.Noise {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintln(bw, k)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if rules != "" {
		if err := os.WriteFile(rules, []byte(program), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d facts (%d clean, %d noise) with profile %s\n",
		len(ds.Graph), ds.CleanCount(), ds.NoiseCount(), ds.Profile)
	return nil
}
