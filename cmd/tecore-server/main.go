// Command tecore-server runs the TeCoRe Web UI: dataset selection,
// constraint editing with predicate auto-completion, MAP inference with
// the MLN or PSL backend, and the result statistics browser.
//
// Usage:
//
//	tecore-server [-addr :8080] [-parallel N] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 0, "worker pool size per solve (0 = all cores, 1 = sequential)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux; serve
		// them on their own listener so profiling stays off the API
		// address and can bind to localhost only.
		go func() {
			fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "tecore-server: pprof: %v\n", err)
			}
		}()
	}

	srv := server.New()
	srv.Parallelism = *parallel
	fmt.Fprintf(os.Stderr, "TeCoRe UI listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "tecore-server: %v\n", err)
		os.Exit(1)
	}
}
