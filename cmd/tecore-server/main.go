// Command tecore-server runs the TeCoRe Web UI: dataset selection,
// constraint editing with predicate auto-completion, MAP inference with
// the MLN or PSL backend, and the result statistics browser.
//
// With -data-dir the incremental solving sessions are durable: every
// mutation is journaled to a per-session WAL, checkpoints compact the
// journals on the -checkpoint interval and at shutdown, and a restarted
// server recovers every session (store, epoch, rules, warm solver
// state) before it starts serving.
//
// Usage:
//
//	tecore-server [-addr :8080] [-parallel N] [-pprof addr]
//	              [-data-dir DIR] [-checkpoint 5m] [-drain 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 0, "worker pool size per solve (0 = all cores, 1 = sequential)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	dataDir := flag.String("data-dir", "", "persist sessions under this directory (empty = in-memory only)")
	checkpointEvery := flag.Duration("checkpoint", 5*time.Minute, "checkpoint interval for durable sessions")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight requests (0 = unbounded)")
	flag.Parse()

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux; serve
		// them on their own listener so profiling stays off the API
		// address and can bind to localhost only.
		go func() {
			fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "tecore-server: pprof: %v\n", err)
			}
		}()
	}

	srv := server.NewWithConfig(server.Config{DataDir: *dataDir})
	srv.Parallelism = *parallel

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if srv.Durable() {
		n, err := srv.RecoverSessions()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tecore-server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recovered %d session(s) from %s\n", n, *dataDir)
		if *checkpointEvery > 0 {
			go func() {
				t := time.NewTicker(*checkpointEvery)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-t.C:
						if err := srv.CheckpointAll(); err != nil {
							fmt.Fprintf(os.Stderr, "tecore-server: checkpoint: %v\n", err)
						}
					}
				}
			}()
		}
	}

	fmt.Fprintf(os.Stderr, "TeCoRe UI listening on %s\n", *addr)
	// Run blocks until SIGINT/SIGTERM, then drains in-flight requests,
	// checkpoints every durable session and closes the WALs.
	if err := srv.Run(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "tecore-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tecore-server: shut down cleanly")
}
