// Command tecore-server runs the TeCoRe Web UI: dataset selection,
// constraint editing with predicate auto-completion, MAP inference with
// the MLN or PSL backend, and the result statistics browser.
//
// Usage:
//
//	tecore-server [-addr :8080] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 0, "worker pool size per solve (0 = all cores, 1 = sequential)")
	flag.Parse()

	srv := server.New()
	srv.Parallelism = *parallel
	fmt.Fprintf(os.Stderr, "TeCoRe UI listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "tecore-server: %v\n", err)
		os.Exit(1)
	}
}
