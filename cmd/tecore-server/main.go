// Command tecore-server runs the TeCoRe Web UI: dataset selection,
// constraint editing with predicate auto-completion, MAP inference with
// the MLN or PSL backend, and the result statistics browser.
//
// Usage:
//
//	tecore-server [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := server.New()
	fmt.Fprintf(os.Stderr, "TeCoRe UI listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "tecore-server: %v\n", err)
		os.Exit(1)
	}
}
