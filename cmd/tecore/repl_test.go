package main

import (
	"regexp"
	"strings"
	"testing"

	tecore "repro"
)

func TestIncrementalREPL(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadGraphText(figure1); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(program); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`
# initial solve: Napoli conflicts with Chelsea under c2
solve
remove CR coach Napoli [2001,2003] 0.6
solve
add CR coach Napoli [2001,2003] 0.6
solve
stats
bogus
quit
`)
	var out strings.Builder
	err := runIncrementalREPL(s, tecore.SolveOptions{Solver: tecore.SolverMLN}, false, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"solved (full, mln): kept 4 / removed 1",
		"ok: 1 fact(s) removed, 4 live",
		"solved (incremental, mln): kept 4 / removed 0",
		"ok: 1 fact(s) asserted, 5 live",
		"solved (incremental, mln): kept 4 / removed 1",
		"facts: 5 live",
		"unknown command \"bogus\"",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q\noutput:\n%s", want, got)
		}
	}
}

// TestIncrementalREPLBatch drives the batch command: several ops apply
// as one atomic delta (removes first), and an invalid op rejects the
// whole batch without touching the store.
func TestIncrementalREPLBatch(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadGraphText(figure1); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(program); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`
solve
batch remove CR coach Napoli [2001,2003] 0.6; add CR coach Leeds [2003,2004] 0.5
solve
batch frobnicate CR coach X [2005,2006] 0.5
batch add CR coach X [2005,2006] 5.0
stats
quit
`)
	var out strings.Builder
	err := runIncrementalREPL(s, tecore.SolveOptions{Solver: tecore.SolverMLN}, false, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"ok: batch applied — 1 added, 1 removed, 0 updated, 5 live",
		"solved (incremental, mln):",
		`unknown op "frobnicate"`,
		// The invalid-confidence batch must reject without applying.
		"error:",
		"facts: 5 live",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q\noutput:\n%s", want, got)
		}
	}
}

// TestIncrementalREPLComponents drives the REPL with -components -v:
// every solve prints the component summary, and the re-solve after a
// mutation reports cache reuse for the untouched components.
func TestIncrementalREPLComponents(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadGraphText(figure1); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(program); err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`
solve
remove CR coach Napoli [2001,2003] 0.6
solve
quit
`)
	var out strings.Builder
	err := runIncrementalREPL(s,
		tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}, true, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"components:",
		"reused from cache",
		"engines:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q\noutput:\n%s", want, got)
		}
	}
	// The incremental re-solve must reuse at least one cached component
	// (the components the removal did not touch).
	if !regexp.MustCompile(`\(\d+ solved, [1-9]\d* reused from cache\)`).MatchString(got) {
		t.Errorf("re-solve reported no cache reuse\noutput:\n%s", got)
	}
}
