package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	tecore "repro"
)

// runIncrementalREPL drives the stateful session from a line-oriented
// command stream: fact updates accumulate in the epoch-versioned store
// and each solve consumes only the delta, warm-starting the solver from
// the previous solution.
//
// Commands (one per line; # starts a comment):
//
//	add <tquad>       insert a fact, e.g. add CR coach Napoli [2001,2003] 0.6
//	remove <tquad>    retract a fact (confidence ignored)
//	batch <op>; ...   apply several ops as one atomic delta, e.g.
//	                  batch remove CR coach Napoli [2001,2003] 0.6; add CR coach Leeds [2003,2004] 0.5
//	solve             re-solve and print statistics
//	stats             print store statistics without solving
//	checkpoint        durable sessions: snapshot the store and truncate
//	                  the journal, so the next restore skips the replay
//	quit              exit (EOF works too)
//
// With verbose set (tecore infer -v), each solve also prints the
// component summary — count, largest, engine tallies and the cache-hit
// split that shows how much of the graph the re-solve skipped.
func runIncrementalREPL(s *tecore.Session, opts tecore.SolveOptions, verbose bool, in io.Reader, out io.Writer) error {
	commands := "add/remove/batch/solve/stats/quit"
	if s.Durable() {
		commands = "add/remove/batch/solve/stats/checkpoint/quit"
	}
	fmt.Fprintf(out, "tecore incremental session: %d facts loaded; commands: %s\n",
		s.Store().Len(), commands)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(cmd) {
		case "add":
			g, err := tecore.ParseGraphString(rest)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			if err := s.LoadGraph(g); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "ok: %d fact(s) asserted, %d live\n", len(g), s.Store().Len())
		case "remove":
			g, err := tecore.ParseGraphString(rest)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			removed := 0
			for _, q := range g {
				if s.RemoveFact(q) {
					removed++
				}
			}
			fmt.Fprintf(out, "ok: %d fact(s) removed, %d live\n", removed, s.Store().Len())
		case "batch":
			add, remove, err := parseBatchOps(rest)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			br, err := s.ApplyBatch(add, remove)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "ok: batch applied — %d added, %d removed, %d updated, %d live\n",
				br.Added, br.Removed, br.Updated, s.Store().Len())
		case "solve":
			res, err := s.Solve(opts)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			mode := "full"
			if res.Incremental {
				mode = "incremental"
			}
			st := res.Stats
			fmt.Fprintf(out, "solved (%s, %s): kept %d / removed %d / inferred %d, %d conflict cluster(s), %v\n",
				mode, st.Solver, st.KeptFacts, st.RemovedFacts, st.InferredFacts,
				st.ConflictClusters, st.Runtime)
			if st.Plan != nil {
				fmt.Fprintf(out, "plan: %s (+%d/-%d atoms, %d patched, %d dropped, %v)\n",
					st.Plan.Mode, st.Plan.InsertedAtoms, st.Plan.RemovedAtoms,
					st.Plan.PatchedComponents, st.Plan.DroppedComponents, st.Plan.Sync)
			}
			if st.Components != nil {
				fmt.Fprintf(out, "components: %d (%d solved, %d reused from cache)\n",
					st.Components.Count, st.Components.Solved, st.Components.Reused)
				if verbose {
					printComponentSummary(out, st.Components)
				}
			}
			if st.Repair != nil && st.Repair.Mode == tecore.RepairComponents {
				fmt.Fprintf(out, "repair: %d repaired, %d reused from cache (%v)\n",
					st.Repair.Repaired, st.Repair.Reused, st.Repair.Total)
			}
			if st.Outcome != nil && st.Outcome.Mode == tecore.OutcomeLive {
				fmt.Fprintf(out, "outcome: %d patched, %d reused (live, %v)\n",
					st.Outcome.Patched, st.Outcome.Reused, st.Outcome.Total)
			}
			if d := res.Delta; d != nil {
				fmt.Fprintf(out, "delta: kept +%d/-%d, removed +%d/-%d, inferred +%d/-%d, clusters +%d/-%d\n",
					len(d.AddedKept), len(d.RemovedKept), len(d.AddedRemoved), len(d.RemovedRemoved),
					len(d.AddedInferred), len(d.RemovedInferred), len(d.AddedClusters), len(d.RemovedClusters))
			}
			if verbose && st.Repair != nil {
				printRepairSummary(out, st.Repair)
			}
			if verbose && st.Outcome != nil {
				printOutcomeSummary(out, st.Outcome)
			}
		case "stats":
			fmt.Fprintf(out, "facts: %d live (epoch %d), rules: %d\n",
				s.Store().Len(), s.Store().Epoch(), len(s.Program().Rules))
			m := s.Store().MemoryStats()
			fmt.Fprintf(out, "memory: %d terms, %.1f MiB (facts %.1f + postings %.1f + dict %.1f), %.1f B/fact\n",
				m.Terms, float64(m.TotalBytes)/(1<<20), float64(m.FactBytes)/(1<<20),
				float64(m.PostingBytes)/(1<<20), float64(m.DictBytes)/(1<<20), m.BytesPerFact)
		case "checkpoint":
			if err := s.Checkpoint(); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "ok: checkpointed %d fact(s) at epoch %d in %s\n",
				s.Store().Len(), s.Store().Epoch(), s.DataDir())
		case "quit", "exit":
			return nil
		default:
			fmt.Fprintf(out, "error: unknown command %q (%s)\n", cmd, commands)
		}
	}
	return sc.Err()
}

// parseBatchOps splits a batch command's ";"-separated operations into
// the quads to assert and to retract.
func parseBatchOps(src string) (add, remove []tecore.Quad, err error) {
	for _, part := range strings.Split(src, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, rest, _ := strings.Cut(part, " ")
		g, perr := tecore.ParseGraphString(rest)
		if perr != nil {
			return nil, nil, fmt.Errorf("batch %s: %w", op, perr)
		}
		switch strings.ToLower(op) {
		case "add":
			add = append(add, g...)
		case "remove":
			remove = append(remove, g...)
		default:
			return nil, nil, fmt.Errorf("batch: unknown op %q (add/remove)", op)
		}
	}
	return add, remove, nil
}
