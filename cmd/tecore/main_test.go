package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	tecore "repro"
)

const figure1 = `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`

const program = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunStats(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "g.tq", figure1)
	if err := runStats([]string{"-data", data}); err != nil {
		t.Fatalf("runStats: %v", err)
	}
	if err := runStats([]string{}); err == nil {
		t.Error("missing -data accepted")
	}
	if err := runStats([]string{"-data", filepath.Join(dir, "missing.tq")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunValidate(t *testing.T) {
	dir := t.TempDir()
	rules := writeFile(t, dir, "r.tcr", program)
	if err := runValidate([]string{"-rules", rules}); err != nil {
		t.Fatalf("runValidate: %v", err)
	}
	if err := runValidate([]string{"-rules", rules, "-solver", "psl"}); err != nil {
		t.Fatalf("runValidate psl: %v", err)
	}
	bad := writeFile(t, dir, "bad.tcr", "quad(x, p, y, t) w = 1")
	if err := runValidate([]string{"-rules", bad}); err == nil {
		t.Error("bad rules accepted")
	}
	hard := writeFile(t, dir, "hard.tcr", "f: quad(x, p, y, t) -> quad(x, q, y, t) w = inf")
	if err := runValidate([]string{"-rules", hard, "-solver", "psl"}); err == nil {
		t.Error("hard inference rule accepted for psl")
	}
	if err := runValidate([]string{}); err == nil {
		t.Error("missing -rules accepted")
	}
}

func TestRunInferEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "g.tq", figure1)
	rules := writeFile(t, dir, "r.tcr", program)
	out := filepath.Join(dir, "consistent.tq")
	removed := filepath.Join(dir, "removed.tq")
	err := runInfer([]string{
		"-data", data, "-rules", rules, "-solver", "mln",
		"-out", out, "-removed", removed,
	})
	if err != nil {
		t.Fatalf("runInfer: %v", err)
	}

	cg, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tecore.ParseGraphString(string(cg))
	if err != nil {
		t.Fatalf("consistent output unparseable: %v", err)
	}
	if len(g) != 5 { // 4 kept + 1 inferred
		t.Errorf("consistent graph = %d facts", len(g))
	}
	if strings.Contains(string(cg), "Napoli") {
		t.Error("removed fact in consistent output")
	}

	rg, err := os.ReadFile(removed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rg), "Napoli") {
		t.Errorf("removed output = %q", rg)
	}
}

func TestRunInferPSLAndThreshold(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "g.tq", figure1)
	rules := writeFile(t, dir, "r.tcr", program)
	out := filepath.Join(dir, "c.tq")
	err := runInfer([]string{
		"-data", data, "-rules", rules, "-solver", "psl", "-threshold", "0.99", "-out", out,
	})
	if err != nil {
		t.Fatalf("runInfer psl: %v", err)
	}
	cg, _ := os.ReadFile(out)
	if strings.Contains(string(cg), "worksFor") {
		t.Error("threshold 0.99 should filter the derived fact")
	}
}

func TestRunInferErrors(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "g.tq", figure1)
	rules := writeFile(t, dir, "r.tcr", program)
	if err := runInfer([]string{"-rules", rules}); err == nil {
		t.Error("missing -data accepted")
	}
	if err := runInfer([]string{"-data", data, "-rules", rules, "-solver", "zzz"}); err == nil {
		t.Error("unknown solver accepted")
	}
	badRules := writeFile(t, dir, "bad.tcr", "nope ->")
	if err := runInfer([]string{"-data", data, "-rules", badRules}); err == nil {
		t.Error("bad rules accepted")
	}
}

func TestRunInferCPI(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "g.tq", figure1)
	rules := writeFile(t, dir, "r.tcr", program)
	if err := runInfer([]string{"-data", data, "-rules", rules, "-cpi"}); err != nil {
		t.Fatalf("runInfer -cpi: %v", err)
	}
}

func TestRunInferExplain(t *testing.T) {
	dir := t.TempDir()
	data := writeFile(t, dir, "g.tq", figure1)
	rules := writeFile(t, dir, "r.tcr", program)
	if err := runInfer([]string{"-data", data, "-rules", rules, "-explain"}); err != nil {
		t.Fatalf("runInfer -explain: %v", err)
	}
}
