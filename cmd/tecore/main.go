// Command tecore is the command-line interface to the TeCoRe system:
// validate rule programs, inspect dataset statistics, and run temporal
// conflict resolution over uncertain temporal knowledge graphs.
//
// Usage:
//
//	tecore stats    -data g.tq
//	tecore validate -rules r.tcr [-solver mln|psl]
//	tecore infer    -data g.tq -rules r.tcr [-solver mln|psl]
//	                [-threshold 0.3] [-cpi] [-parallel N] [-components]
//	                [-component-exact N] [-v] [-explain-plan] [-incremental]
//	                [-out consistent.tq] [-removed removed.tq]
//
// With -incremental, infer enters a REPL that accepts add/remove/solve
// commands on stdin and re-solves incrementally after each update. With
// -components the ground network is partitioned into independent
// conflict components solved — and conflict-resolved — separately (and,
// in the REPL, cached per component across re-solves, for the solver
// stage and the repair read-out alike); -v prints the component and
// repair-stage summaries.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	tecore "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = runStats(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "infer":
		err = runInfer(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tecore: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tecore: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tecore stats    -data <tquads file>
  tecore validate -rules <rules file> [-solver mln|psl]
  tecore infer    -data <tquads file> -rules <rules file>
                  [-solver mln|psl] [-threshold t] [-cpi] [-parallel N]
                  [-components] [-component-exact N] [-v] [-explain-plan]
                  [-incremental] [-data-dir DIR]
                  [-out consistent.tq] [-removed removed.tq]

  infer -incremental reads add/remove/solve commands from stdin and
  re-solves only the delta after each update; with -components only the
  conflict components the delta dirtied are re-solved. With -data-dir
  the session is durable: updates are journaled, the checkpoint command
  compacts the journal, and a later run with the same -data-dir
  restores the session (snapshot + WAL replay) instead of loading
  -data.`)
}

func loadGraph(path string) (tecore.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tecore.ParseGraph(f)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	data := fs.String("data", "", "TQuads dataset file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("stats: -data is required")
	}
	g, err := loadGraph(*data)
	if err != nil {
		return err
	}
	s := tecore.NewSession()
	if err := s.LoadGraph(g); err != nil {
		return err
	}
	preds := s.Predicates()
	m := s.Store().MemoryStats()
	fmt.Printf("facts: %d\npredicates: %d\n", s.Store().Len(), len(preds))
	fmt.Printf("memory: %d terms, %.1f MiB (facts %.1f + postings %.1f + dict %.1f), %.1f B/fact\n",
		m.Terms, float64(m.TotalBytes)/(1<<20), float64(m.FactBytes)/(1<<20),
		float64(m.PostingBytes)/(1<<20), float64(m.DictBytes)/(1<<20), m.BytesPerFact)
	for _, p := range preds {
		fmt.Printf("  %-24s %8d facts  %6d subjects  span %v  mean conf %.3f\n",
			p.Predicate, p.Count, p.Subjects, p.Span, p.MeanConfidence)
	}
	return nil
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	rules := fs.String("rules", "", "rules/constraints file")
	solverName := fs.String("solver", "", "optional solver expressivity check (mln or psl)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rules == "" {
		return fmt.Errorf("validate: -rules is required")
	}
	src, err := os.ReadFile(*rules)
	if err != nil {
		return err
	}
	prog, err := tecore.ParseRules(string(src))
	if err != nil {
		return err
	}
	if *solverName != "" {
		solver, err := tecore.ParseSolver(*solverName)
		if err != nil {
			return err
		}
		s := tecore.NewSession()
		for _, r := range prog.Rules {
			if err := s.AddRule(r); err != nil {
				return err
			}
		}
		// Solve on an empty store exercises the translator's validation.
		if _, err := s.Solve(tecore.SolveOptions{Solver: solver}); err != nil {
			return err
		}
	}
	fmt.Printf("ok: %d rules (%d inference, %d constraints)\n",
		len(prog.Rules), len(prog.InferenceRules()), len(prog.Constraints()))
	return nil
}

func runInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	data := fs.String("data", "", "TQuads dataset file")
	rules := fs.String("rules", "", "rules/constraints file")
	solverName := fs.String("solver", "mln", "solver: mln (nRockIt) or psl (nPSL)")
	threshold := fs.Float64("threshold", 0, "drop derived facts below this confidence")
	cpi := fs.Bool("cpi", false, "cutting-plane inference (MLN)")
	parallel := fs.Int("parallel", 0, "worker pool size for the solve pipeline (0 = all cores, 1 = sequential)")
	components := fs.Bool("components", false, "solve independent conflict components separately (per-component engines, parallel, cached on -incremental)")
	componentExact := fs.Int("component-exact", 0, "largest component handed to the exact MaxSAT engine with -components (0 = default 48)")
	verbose := fs.Bool("v", false, "print the component summary (count, sizes, engines, cache hits)")
	explain := fs.Bool("explain", false, "print each removed fact with the constraint grounding that removed it")
	explainPlan := fs.Bool("explain-plan", false, "print the grounding stage's join plans: per rule, the chosen atom order with its selectivity estimates and candidate/emitted counts")
	incremental := fs.Bool("incremental", false, "REPL mode: read add/remove/solve commands from stdin and re-solve incrementally")
	dataDir := fs.String("data-dir", "", "durable session directory: updates are journaled there and a later run restores the session (snapshot + WAL replay)")
	outPath := fs.String("out", "", "write the consistent expanded KG here")
	removedPath := fs.String("removed", "", "write the removed (conflicting) facts here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rules == "" || (*data == "" && *dataDir == "") {
		return fmt.Errorf("infer: -rules and one of -data/-data-dir are required")
	}
	solver, err := tecore.ParseSolver(*solverName)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*rules)
	if err != nil {
		return err
	}
	var s *tecore.Session
	if *dataDir != "" {
		// Durable session: restore whatever the directory holds; the
		// -data file only seeds a fresh (empty) session, so re-running
		// the same command line resumes instead of double-loading.
		if s, err = tecore.OpenSession(*dataDir); err != nil {
			return err
		}
		defer s.Close()
		if rs := s.RecoveryStats(); rs != nil && (rs.SnapshotLoaded || rs.ReplayedRecords > 0) {
			fmt.Fprintf(os.Stderr, "restored %d facts at epoch %d from %s (snapshot epoch %d + %d replayed records)\n",
				s.Store().Len(), rs.Epoch, *dataDir, rs.Watermark, rs.ReplayedRecords)
		} else if *data != "" {
			g, err := loadGraph(*data)
			if err != nil {
				return err
			}
			if err := s.LoadGraph(g); err != nil {
				return err
			}
		}
	} else {
		s = tecore.NewSession()
		g, err := loadGraph(*data)
		if err != nil {
			return err
		}
		if err := s.LoadGraph(g); err != nil {
			return err
		}
	}
	if err := s.LoadProgramText(string(src)); err != nil {
		return err
	}
	if *incremental {
		return runIncrementalREPL(s, tecore.SolveOptions{
			Solver:              solver,
			Threshold:           *threshold,
			Parallelism:         *parallel,
			ComponentSolve:      *components,
			ComponentExactLimit: *componentExact,
		}, *verbose, os.Stdin, os.Stdout)
	}
	res, err := s.Solve(tecore.SolveOptions{
		Solver:              solver,
		Threshold:           *threshold,
		CuttingPlane:        *cpi,
		Parallelism:         *parallel,
		ComponentSolve:      *components,
		ComponentExactLimit: *componentExact,
	})
	if err != nil {
		return err
	}

	st := res.Stats
	fmt.Printf("solver:            %s\n", st.Solver)
	fmt.Printf("total facts:       %d\n", st.TotalFacts)
	fmt.Printf("kept facts:        %d\n", st.KeptFacts)
	fmt.Printf("conflicting facts: %d (removed, weight %.2f)\n", st.RemovedFacts, st.RemovedWeight)
	fmt.Printf("inferred facts:    %d (threshold filtered %d)\n", st.InferredFacts, st.ThresholdFiltered)
	fmt.Printf("conflict clusters: %d\n", st.ConflictClusters)
	fmt.Printf("runtime:           %v\n", st.Runtime)
	if *verbose && st.Plan != nil {
		printPlanSummary(os.Stdout, st.Plan)
	}
	if *verbose && st.Components != nil {
		printComponentSummary(os.Stdout, st.Components)
	}
	if *verbose && st.Repair != nil {
		printRepairSummary(os.Stdout, st.Repair)
	}
	if *verbose && st.Outcome != nil {
		printOutcomeSummary(os.Stdout, st.Outcome)
	}
	if *explainPlan {
		if st.Ground != nil {
			printGroundSummary(os.Stdout, st.Ground)
		} else {
			fmt.Println("grounding:         no grounding stage on this path")
		}
	}
	if len(st.RuleViolations) > 0 {
		fmt.Println("residual violations:")
		names := make([]string, 0, len(st.RuleViolations))
		for n := range st.RuleViolations {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-20s %d\n", n, st.RuleViolations[n])
		}
	}

	if *explain {
		fmt.Println("removed facts:")
		for _, f := range res.Removed {
			fmt.Printf("  %s\n", f.Quad.Compact())
			for _, ex := range f.Explanations {
				fmt.Printf("    violates %s\n", ex)
			}
		}
	}

	if *outPath != "" {
		if err := writeGraphFile(*outPath, res.ConsistentGraph()); err != nil {
			return err
		}
	}
	if *removedPath != "" {
		var rg tecore.Graph
		for _, f := range res.Removed {
			rg = append(rg, f.Quad)
		}
		if err := writeGraphFile(*removedPath, rg); err != nil {
			return err
		}
	}
	return nil
}

// printComponentSummary renders the component-decomposed solve
// statistics: component count and sizes, the engine each component ran
// on, and the solved/reused (cache hit) split of incremental re-solves.
// printPlanSummary renders the solve-plan stage: whether the canonical
// order and component partition were patched in place from the delta or
// rebuilt from scratch, the splice sizes, and the sync time.
func printPlanSummary(w io.Writer, ps *tecore.PlanStats) {
	fmt.Fprintf(w, "plan:              %s (%d atoms, %d components)", ps.Mode, ps.Atoms, ps.Components)
	if ps.Mode == "maintained" {
		fmt.Fprintf(w, " — %d inserted, %d removed, %d shifted; %d patched, %d dropped",
			ps.InsertedAtoms, ps.RemovedAtoms, ps.ShiftedVars,
			ps.PatchedComponents, ps.DroppedComponents)
	}
	fmt.Fprintf(w, " in %v\n", ps.Sync)
}

func printComponentSummary(w io.Writer, cs *tecore.ComponentStats) {
	fmt.Fprintf(w, "components:        %d (largest %d atoms; %d solved, %d reused",
		cs.Count, cs.Largest, cs.Solved, cs.Reused)
	if cs.Fallbacks > 0 {
		fmt.Fprintf(w, ", %d exact→local fallbacks", cs.Fallbacks)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "  sizes:  %s\n", formatTallies(cs.SizeHistogram))
	fmt.Fprintf(w, "  engines: %s\n", formatTallies(cs.Engines))
}

// printRepairSummary renders the conflict-resolution read-out stage:
// how it ran (whole-graph, or per conflict component with caching), the
// repaired/reused split of a component-decomposed read-out, and the
// stage timings.
func printRepairSummary(w io.Writer, rs *tecore.RepairStats) {
	fmt.Fprintf(w, "repair:            %s", rs.Mode)
	if rs.Mode == tecore.RepairComponents {
		fmt.Fprintf(w, " (%d components; %d repaired, %d reused)",
			rs.Components, rs.Repaired, rs.Reused)
	}
	fmt.Fprintf(w, " in %v (analysis %v, merge %v)\n", rs.Total, rs.Analysis, rs.Merge)
}

// printOutcomeSummary renders the Outcome production stage: whether
// the result was assembled from scratch or delta-patched on the live
// outcome, the patched/reused component split, and the index/merge
// timings.
func printOutcomeSummary(w io.Writer, ocs *tecore.OutcomeStats) {
	fmt.Fprintf(w, "outcome:           %s", ocs.Mode)
	if ocs.Mode == tecore.OutcomeLive {
		fmt.Fprintf(w, " (%d patched, %d reused)", ocs.Patched, ocs.Reused)
	}
	fmt.Fprintf(w, " in %v (index %v, merge %v)\n", ocs.Total, ocs.Index, ocs.Merge)
}

// printGroundSummary renders the grounding stage's join plans: per
// rule, the body-atom evaluation order the selectivity planner chose
// (indices into the rule body as written), the estimated candidate
// count that drove each pick, and the actual candidate/emitted counts.
func printGroundSummary(w io.Writer, gs *tecore.GroundStats) {
	path := "compiled"
	if !gs.Compiled {
		path = "legacy"
	}
	fmt.Fprintf(w, "grounding:         %s path in %v (%d rules)\n", path, gs.Total, len(gs.Rules))
	for i := range gs.Rules {
		rs := &gs.Rules[i]
		fmt.Fprintf(w, "  %-20s order %v", rs.Rule, rs.Order)
		if len(rs.Estimates) > 0 {
			ests := make([]string, len(rs.Estimates))
			for j, e := range rs.Estimates {
				ests[j] = fmt.Sprintf("%.0f", e)
			}
			fmt.Fprintf(w, " est [%s]", strings.Join(ests, " "))
		}
		fmt.Fprintf(w, " — %d candidates, %d groundings in %v (%d tasks)\n",
			rs.Candidates, rs.Emitted, rs.Time, rs.Tasks)
	}
}

// formatTallies renders a tally map as "k=v, k=v" in sorted key order.
func formatTallies(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, ", ")
}

func writeGraphFile(path string, g tecore.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tecore.WriteGraph(f, g); err != nil {
		return err
	}
	return f.Close()
}
