package main

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	tecore "repro"
)

// ScalePoint is one size step of the scale trajectory: the clustered
// workload at a target fact count, measuring where the bytes and the
// milliseconds go as N grows.
type ScalePoint struct {
	// Facts is the generated fact count (the generator lands close to,
	// not exactly on, the requested size); Clusters and ClusterSize
	// describe the component structure of the workload.
	Facts       int `json:"facts"`
	Clusters    int `json:"clusters"`
	ClusterSize int `json:"cluster_size"`
	// Terms is the interned-dictionary size after load.
	Terms int `json:"terms"`
	// Components is the conflict-component count of the cold solve.
	Components int `json:"components"`
	// LoadMS is the wall-clock of ingesting the graph into the store;
	// ColdSolveMS the first (from-scratch, component-decomposed) solve.
	LoadMS      float64 `json:"load_ms"`
	ColdSolveMS float64 `json:"cold_solve_ms"`
	// UpdateP50MS/UpdateP99MS are single-fact update latencies (add or
	// remove one fact + incremental re-solve) on the warm session, in
	// the delta-serving configuration (SolveOptions.DeltaOnly — exact
	// counts + changelog, no global list materialization).
	// SnapshotP50MS is the same update with the full Outcome lists
	// materialized every solve.
	UpdateP50MS   float64 `json:"update_p50_ms"`
	UpdateP99MS   float64 `json:"update_p99_ms"`
	SnapshotP50MS float64 `json:"snapshot_p50_ms"`
	// LoadedBytesPerFact is heap growth per fact after load (store +
	// program only); SolvedBytesPerFact after the cold solve (store +
	// grounding + clause set + solver state + outcome). Both measured
	// from runtime.MemStats.HeapAlloc with the heap quiesced (double GC)
	// on either side, so transient allocation is excluded.
	LoadedBytesPerFact float64 `json:"loaded_bytes_per_fact"`
	SolvedBytesPerFact float64 `json:"solved_bytes_per_fact"`
	// StoreBytesPerFact is the store's self-reported estimate
	// (stats.Memory.BytesPerFact): facts, postings, dictionary, log.
	StoreBytesPerFact float64 `json:"store_bytes_per_fact"`
}

// ScaleReport is the BENCH_scale.json schema.
type ScaleReport struct {
	Benchmark  string       `json:"benchmark"`
	Workload   string       `json:"workload"`
	Solver     string       `json:"solver"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Points     []ScalePoint `json:"points"`
}

func parseSizeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty size list")
	}
	return out, nil
}

// quiescedHeap settles the heap (two collections: one to free, one to
// let finalizer-driven frees land) and returns the live heap bytes.
func quiescedHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

func runScale(dir, sizes string, clusterSize, reps int, assertBytesPerFact float64) error {
	sizeList, err := parseSizeList(sizes)
	if err != nil {
		return fmt.Errorf("-scale-facts: %w", err)
	}
	report := ScaleReport{
		Benchmark:  "BenchmarkScaleTrajectory",
		Workload:   fmt.Sprintf("clustered (size %d, bridge rate 0.1)", clusterSize),
		Solver:     tecore.SolverMLN.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, target := range sizeList {
		clusters := target / clusterSize
		if clusters < 1 {
			clusters = 1
		}
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: clusters, ClusterSize: clusterSize, BridgeRate: 0.1, Seed: 11})
		probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
			tecore.MustInterval(1991, 1993), 0.55)
		pt := ScalePoint{Facts: len(ds.Graph), Clusters: clusters, ClusterSize: clusterSize}

		h0 := quiescedHeap()
		s := tecore.NewSession()
		start := time.Now()
		if err := s.LoadGraph(ds.Graph); err != nil {
			return err
		}
		pt.LoadMS = float64(time.Since(start).Microseconds()) / 1000
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			return err
		}
		loaded := quiescedHeap() - h0
		pt.LoadedBytesPerFact = float64(loaded) / float64(pt.Facts)
		st := s.Store().Stats()
		pt.Terms = st.Terms
		pt.StoreBytesPerFact = st.Memory.BytesPerFact

		opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}
		start = time.Now()
		res, err := s.Solve(opts)
		if err != nil {
			return err
		}
		pt.ColdSolveMS = float64(time.Since(start).Microseconds()) / 1000
		pt.Components = res.Stats.Components.Count
		solved := quiescedHeap() - h0
		pt.SolvedBytesPerFact = float64(solved) / float64(pt.Facts)
		runtime.KeepAlive(ds)

		// Single-fact update latency on the warm session: toggle the probe
		// in and out, each toggle followed by an incremental re-solve —
		// first in the delta-serving configuration (DeltaOnly), then
		// with full list materialization for the snapshot column.
		toggles := reps * 4
		if toggles < 8 {
			toggles = 8
		}
		measure := func(deltaOnly bool) ([]float64, error) {
			mopts := opts
			mopts.DeltaOnly = deltaOnly
			lat := make([]float64, 0, toggles)
			toggle := false
			for i := 0; i < toggles; i++ {
				toggle = !toggle
				runtime.GC() // keep earlier iterations' garbage out of the timed window
				start = time.Now()
				if toggle {
					if err := s.AddFact(probe); err != nil {
						return nil, err
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(mopts)
				if err != nil {
					return nil, err
				}
				lat = append(lat, float64(time.Since(start).Microseconds())/1000)
				if !res.Incremental {
					return nil, fmt.Errorf("update solve did not take the delta path")
				}
			}
			sort.Float64s(lat)
			return lat, nil
		}
		lat, err := measure(true)
		if err != nil {
			return err
		}
		pt.UpdateP50MS = lat[len(lat)/2]
		pt.UpdateP99MS = lat[(len(lat)*99+99)/100-1]
		if lat, err = measure(false); err != nil {
			return err
		}
		pt.SnapshotP50MS = lat[len(lat)/2]
		report.Points = append(report.Points, pt)
		fmt.Printf("scale: %d facts — load %.0fms, cold solve %.0fms, update p50 %.2fms (snapshot %.2fms), %.0f B/fact loaded (store est %.0f), %.0f B/fact solved\n",
			pt.Facts, pt.LoadMS, pt.ColdSolveMS, pt.UpdateP50MS, pt.SnapshotP50MS, pt.LoadedBytesPerFact, pt.StoreBytesPerFact, pt.SolvedBytesPerFact)
	}
	if err := writeReport(dir, "BENCH_scale.json", report); err != nil {
		return err
	}
	if assertBytesPerFact > 0 {
		last := report.Points[len(report.Points)-1]
		if last.LoadedBytesPerFact > assertBytesPerFact {
			return fmt.Errorf("loaded bytes/fact %.0f at %d facts above the budget of %.0f",
				last.LoadedBytesPerFact, last.Facts, assertBytesPerFact)
		}
		fmt.Printf("bytes/fact assertion ok: %.0f ≤ %.0f at %d facts\n",
			last.LoadedBytesPerFact, assertBytesPerFact, last.Facts)
	}
	return nil
}
