package main

import (
	"fmt"
	"runtime"

	tecore "repro"
)

// GroundPoint is one size step of the grounding trajectory: a cold
// grounding pass (forward chaining + program grounding) over the
// clustered workload, measured on the legacy string-keyed path and on
// the selectivity-planned compiled pipeline that replaced it. Both
// passes run on the same loaded session, so the input network is
// identical; Atoms/Clauses double-check that the two paths produced the
// same ground network.
type GroundPoint struct {
	Facts       int `json:"facts"`
	Clusters    int `json:"clusters"`
	ClusterSize int `json:"cluster_size"`
	// Atoms and Clauses are the ground-network size (identical on both
	// paths by the determinism contract).
	Atoms   int `json:"atoms"`
	Clauses int `json:"clauses"`
	// LegacyMS is the pre-compilation grounder (boundness-ordered plans,
	// string-keyed joins); CompiledMS the selectivity-planned compiled
	// pipeline. Medians over -reps runs.
	LegacyMS   float64 `json:"legacy_ms"`
	CompiledMS float64 `json:"compiled_ms"`
	Speedup    float64 `json:"speedup"`
}

// GroundReport is the BENCH_ground.json schema.
type GroundReport struct {
	Benchmark  string        `json:"benchmark"`
	Workload   string        `json:"workload"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Points     []GroundPoint `json:"points"`
}

func runGround(dir, sizes string, clusterSize, reps int, assertSpeedup float64) error {
	sizeList, err := parseSizeList(sizes)
	if err != nil {
		return fmt.Errorf("-ground-facts: %w", err)
	}
	report := GroundReport{
		Benchmark:  "BenchmarkColdGrounding",
		Workload:   fmt.Sprintf("clustered (size %d, bridge rate 0.1)", clusterSize),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, target := range sizeList {
		clusters := target / clusterSize
		if clusters < 1 {
			clusters = 1
		}
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: clusters, ClusterSize: clusterSize, BridgeRate: 0.1, Seed: 11})
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			return err
		}
		pt := GroundPoint{Facts: len(ds.Graph), Clusters: clusters, ClusterSize: clusterSize}

		for _, legacy := range []bool{true, false} {
			ms, err := medianMS(reps, func() error {
				runtime.GC() // keep the previous pass's garbage out of the timed window
				stats, atoms, clauses, err := tecore.GroundProfile(s, legacy, 1)
				if err != nil {
					return err
				}
				if stats.Compiled == legacy {
					return fmt.Errorf("grounding took the wrong path (legacy=%v, compiled=%v)",
						legacy, stats.Compiled)
				}
				if legacy {
					pt.Atoms, pt.Clauses = atoms, clauses
				} else if pt.Atoms != atoms || pt.Clauses != clauses {
					return fmt.Errorf("ground network diverged: legacy %d atoms/%d clauses, compiled %d/%d",
						pt.Atoms, pt.Clauses, atoms, clauses)
				}
				return nil
			})
			if err != nil {
				return err
			}
			if legacy {
				pt.LegacyMS = ms
			} else {
				pt.CompiledMS = ms
			}
		}
		if pt.CompiledMS > 0 {
			// Guard the division: a zero median would put +Inf in the
			// report, which JSON cannot encode.
			pt.Speedup = pt.LegacyMS / pt.CompiledMS
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("ground: %d facts — legacy %.0fms, compiled %.0fms, %.2fx (%d atoms, %d clauses)\n",
			pt.Facts, pt.LegacyMS, pt.CompiledMS, pt.Speedup, pt.Atoms, pt.Clauses)
	}
	if err := writeReport(dir, "BENCH_ground.json", report); err != nil {
		return err
	}
	if assertSpeedup > 0 {
		last := report.Points[len(report.Points)-1]
		if last.Speedup < assertSpeedup {
			return fmt.Errorf("compiled grounding speedup %.2fx at %d facts below required %.2fx",
				last.Speedup, last.Facts, assertSpeedup)
		}
		fmt.Printf("ground speedup assertion ok: %.2fx ≥ %.2fx at %d facts\n",
			last.Speedup, assertSpeedup, last.Facts)
	}
	return nil
}
