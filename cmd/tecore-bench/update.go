package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	tecore "repro"
)

// UpdatePoint is one size step of the update scenario: single-fact
// update latency on a warm session with the delta-maintained solve plan
// vs the from-scratch rebuilt plan (SolveOptions.RebuildPlan), plus the
// per-stage breakdown of the maintained path. The headline maintained
// and rebuilt latencies run with SolveOptions.DeltaOnly — the
// update-serving configuration, consuming Resolution.Delta without
// materializing the global lists; Snapshot* reports the maintained
// path with full list materialization for consumers that read the
// whole Outcome every solve.
type UpdatePoint struct {
	Facts       int `json:"facts"`
	Clusters    int `json:"clusters"`
	ClusterSize int `json:"cluster_size"`
	// Components is the conflict-component count of the cold solve.
	Components int `json:"components"`
	// Maintained*: end-to-end single-fact update latency (toggle one
	// fact + incremental re-solve) with the plan patched in place and
	// DeltaOnly read-out.
	MaintainedP50MS float64 `json:"maintained_p50_ms"`
	MaintainedP99MS float64 `json:"maintained_p99_ms"`
	// Rebuilt*: the same updates with RebuildPlan forcing a from-scratch
	// NewPlan every solve — the pre-maintenance baseline (same DeltaOnly
	// read-out).
	RebuiltP50MS float64 `json:"rebuilt_p50_ms"`
	RebuiltP99MS float64 `json:"rebuilt_p99_ms"`
	// Snapshot*: maintained plan with full list materialization
	// (DeltaOnly off) — the cost of reading the whole Outcome per solve.
	SnapshotP50MS float64 `json:"snapshot_p50_ms"`
	SnapshotP99MS float64 `json:"snapshot_p99_ms"`
	// PlanSpeedup compares the plan stage alone: rebuilt NewPlan wall
	// time vs the maintained sync (both medians). TotalSpeedup compares
	// the end-to-end update latencies.
	PlanSpeedup  float64 `json:"plan_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`
	// Per-stage medians of the maintained path (the rebuilt path differs
	// only in the plan stage, reported alongside).
	GroundP50MS       float64 `json:"ground_p50_ms"`
	PlanSyncP50MS     float64 `json:"plan_sync_p50_ms"`
	RebuiltPlanP50MS  float64 `json:"rebuilt_plan_p50_ms"`
	SolverP50MS       float64 `json:"solver_p50_ms"`
	RepairP50MS       float64 `json:"repair_p50_ms"`
	OutcomeP50MS      float64 `json:"outcome_p50_ms"`
	PatchedComponents int     `json:"patched_components"`
}

// UpdateReport is the BENCH_update.json schema.
type UpdateReport struct {
	Benchmark  string        `json:"benchmark"`
	Workload   string        `json:"workload"`
	Solver     string        `json:"solver"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Points     []UpdatePoint `json:"points"`
	// MaintainedP50Ratio is the last/first maintained update-p50 ratio
	// over the sweep — the update-latency scaling signal (1.0 = flat,
	// facts-ratio = linear in store size).
	MaintainedP50Ratio float64 `json:"maintained_p50_ratio"`
}

// percentile returns the p-th percentile of the sorted sample.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + p - 1) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

func runUpdate(dir, sizes string, clusterSize, reps int, assertPlanSpeedup float64) error {
	sizeList, err := parseSizeList(sizes)
	if err != nil {
		return fmt.Errorf("-update-facts: %w", err)
	}
	report := UpdateReport{
		Benchmark:  "BenchmarkUpdatePlanMaintenance",
		Workload:   fmt.Sprintf("clustered (size %d, bridge rate 0.1)", clusterSize),
		Solver:     tecore.SolverMLN.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, target := range sizeList {
		clusters := target / clusterSize
		if clusters < 1 {
			clusters = 1
		}
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: clusters, ClusterSize: clusterSize, BridgeRate: 0.1, Seed: 11})
		probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
			tecore.MustInterval(1991, 1993), 0.55)
		pt := UpdatePoint{Facts: len(ds.Graph), Clusters: clusters, ClusterSize: clusterSize}

		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			return err
		}
		opts := func(rebuild, deltaOnly bool) tecore.SolveOptions {
			return tecore.SolveOptions{
				Solver: tecore.SolverMLN, ComponentSolve: true,
				RebuildPlan: rebuild, DeltaOnly: deltaOnly}
		}
		res, err := s.Solve(opts(false, false))
		if err != nil {
			return err
		}
		pt.Components = res.Stats.Components.Count
		runtime.KeepAlive(ds)

		toggles := reps * 4
		if toggles < 8 {
			toggles = 8
		}
		// Both modes run on the same warm session: the rebuilt pass leaves
		// the journal and change log accumulating, and the next maintained
		// sync drains them — exactly the mixed-mode contract the
		// differential suite pins.
		var lat, planMS, groundMS, solverMS, repairMS, outcomeMS []float64
		measure := func(rebuild, deltaOnly bool, warmup int) error {
			lat = lat[:0]
			planMS, groundMS = planMS[:0], groundMS[:0]
			solverMS, repairMS, outcomeMS = solverMS[:0], repairMS[:0], outcomeMS[:0]
			toggle := false
			wantMode := "maintained"
			if rebuild {
				wantMode = "rebuilt"
			}
			for i := 0; i < warmup+toggles; i++ {
				toggle = !toggle
				runtime.GC() // keep earlier iterations' garbage out of the timed window
				start := time.Now()
				if toggle {
					if err := s.AddFact(probe); err != nil {
						return err
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(opts(rebuild, deltaOnly))
				if err != nil {
					return err
				}
				total := float64(time.Since(start).Microseconds()) / 1000
				if !res.Incremental {
					return fmt.Errorf("update solve did not take the delta path")
				}
				st := res.Stats
				if st.Plan == nil || st.Plan.Mode != wantMode {
					return fmt.Errorf("plan stats = %+v, want mode %q", st.Plan, wantMode)
				}
				wantOutcome := tecore.OutcomeLive
				if deltaOnly {
					wantOutcome = tecore.OutcomeDeltaOnly
				}
				if st.Outcome == nil || st.Outcome.Mode != wantOutcome {
					return fmt.Errorf("outcome stats = %+v, want mode %q", st.Outcome, wantOutcome)
				}
				if i < warmup {
					continue
				}
				lat = append(lat, total)
				planMS = append(planMS, float64(st.Plan.Sync.Nanoseconds())/1e6)
				if st.Ground != nil {
					groundMS = append(groundMS, float64(st.Ground.Total.Nanoseconds())/1e6)
				}
				solverMS = append(solverMS, float64(st.Runtime.Nanoseconds())/1e6)
				if st.Repair != nil {
					repairMS = append(repairMS, float64(st.Repair.Total.Nanoseconds())/1e6)
				}
				if st.Outcome != nil {
					outcomeMS = append(outcomeMS, float64(st.Outcome.Total.Nanoseconds())/1e6)
				}
				if !rebuild {
					pt.PatchedComponents = st.Plan.PatchedComponents
				}
			}
			sort.Float64s(lat)
			return nil
		}

		// Maintained first (a couple of unmeasured toggles warm the splice
		// scratch and the probe's atom slots), then the materializing
		// snapshot column, then the rebuilt baseline.
		if err := measure(false, true, 2); err != nil {
			return err
		}
		pt.MaintainedP50MS = percentile(lat, 50)
		pt.MaintainedP99MS = percentile(lat, 99)
		pt.PlanSyncP50MS = median(planMS)
		pt.GroundP50MS = median(groundMS)
		pt.SolverP50MS = median(solverMS)
		pt.RepairP50MS = median(repairMS)
		pt.OutcomeP50MS = median(outcomeMS)
		if err := measure(false, false, 1); err != nil {
			return err
		}
		pt.SnapshotP50MS = percentile(lat, 50)
		pt.SnapshotP99MS = percentile(lat, 99)
		if err := measure(true, true, 1); err != nil {
			return err
		}
		pt.RebuiltP50MS = percentile(lat, 50)
		pt.RebuiltP99MS = percentile(lat, 99)
		pt.RebuiltPlanP50MS = median(planMS)
		if pt.PlanSyncP50MS > 0 {
			pt.PlanSpeedup = pt.RebuiltPlanP50MS / pt.PlanSyncP50MS
		}
		if pt.MaintainedP50MS > 0 {
			pt.TotalSpeedup = pt.RebuiltP50MS / pt.MaintainedP50MS
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("update: %d facts — maintained p50 %.2fms (p99 %.2fms), snapshot p50 %.2fms, rebuilt p50 %.2fms, plan stage %.3fms vs %.3fms (%.1fx)\n",
			pt.Facts, pt.MaintainedP50MS, pt.MaintainedP99MS, pt.SnapshotP50MS,
			pt.RebuiltP50MS, pt.PlanSyncP50MS, pt.RebuiltPlanP50MS, pt.PlanSpeedup)
	}
	first, last := report.Points[0], report.Points[len(report.Points)-1]
	if first.MaintainedP50MS > 0 {
		report.MaintainedP50Ratio = last.MaintainedP50MS / first.MaintainedP50MS
	}
	if err := writeReport(dir, "BENCH_update.json", report); err != nil {
		return err
	}
	if assertPlanSpeedup > 0 {
		if last.PlanSpeedup < assertPlanSpeedup {
			return fmt.Errorf("maintained plan stage speedup %.2fx at %d facts below required %.2fx",
				last.PlanSpeedup, last.Facts, assertPlanSpeedup)
		}
		fmt.Printf("plan speedup assertion ok: %.2fx ≥ %.2fx at %d facts\n",
			last.PlanSpeedup, assertPlanSpeedup, last.Facts)
	}
	return nil
}
