package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	tecore "repro"
	"repro/internal/server"
)

// The serve scenario measures the HTTP session API under concurrent
// load: K sessions, each its own clustered dataset, each streaming
// single-fact updates through the combined batch endpoint (retract +
// assert + component re-solve in one request). The serial pass drives
// the sessions one after another; the concurrent pass drives all K at
// once. Solves on different sessions share the admission gate and
// split the worker budget (par.Share), so concurrent throughput above
// serial is the tracked signal — it proves sessions do not serialize
// on any global lock. The ingest comparison measures the batch
// endpoint's raison d'être: N facts in one request against N per-fact
// requests, both followed by one re-solve.

// ServePassStats summarises one update-driving pass.
type ServePassStats struct {
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Benchmark         string `json:"benchmark"`
	Workload          string `json:"workload"`
	Sessions          int    `json:"sessions"`
	UpdatesPerSession int    `json:"updates_per_session"`
	GoMaxProcs        int    `json:"gomaxprocs"`
	// Serial and Concurrent drive the same per-session updates; only
	// the request concurrency differs.
	Serial     ServePassStats `json:"serial"`
	Concurrent ServePassStats `json:"concurrent"`
	// ConcurrencySpeedup is concurrent vs serial sustained throughput.
	ConcurrencySpeedup float64 `json:"concurrency_speedup"`
	// Ingest comparison: IngestFacts new facts + one re-solve, sent as
	// one batch request vs one request per fact.
	IngestFacts        int     `json:"ingest_facts"`
	PerFactIngestMS    float64 `json:"per_fact_ingest_ms"`
	BatchIngestMS      float64 `json:"batch_ingest_ms"`
	BatchIngestSpeedup float64 `json:"batch_ingest_speedup"`
}

// serveClient wraps the bench HTTP client with JSON helpers.
type serveClient struct {
	base string
	c    *http.Client
}

func (sc *serveClient) post(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := sc.c.Post(sc.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func percentileMS(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func runServe(dir string, sessions, updates, reps int, assertSpeedup float64) error {
	srv := server.NewWithConfig(server.Config{
		MaxSessions: sessions + 4,
		// The queue must absorb every concurrent session so the bench
		// never trips the 429 backpressure it is not measuring.
		MaxQueuedSolves: 2*sessions + 8,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &serveClient{base: ts.URL, c: &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: sessions + 4},
	}}

	solve := &server.SessionSolveRequest{Solver: "mln", ComponentSolve: true}

	// One session per simulated client, each over its own clustered
	// dataset (distinct seeds), warmed with a first full solve.
	ids := make([]string, sessions)
	for i := range ids {
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: 40, ClusterSize: 6, BridgeRate: 0.1, Seed: int64(20 + i)})
		var sb strings.Builder
		if err := tecore.WriteGraph(&sb, ds.Graph); err != nil {
			return err
		}
		var info server.SessionInfo
		if err := client.post("/api/sessions", server.CreateSessionRequest{
			TQuads: sb.String(), Rules: tecore.ClusteredProgram,
		}, &info); err != nil {
			return err
		}
		if err := client.post("/api/sessions/"+info.ID+"/solve", solve, nil); err != nil {
			return err
		}
		ids[i] = info.ID
	}

	// update toggles a conflicting probe spell in the session's first
	// cluster through the batch endpoint: one request carries the fact
	// delta and the component re-solve.
	probe := "player/00001 playsFor club/00001/probe [1991,1993] 0.55"
	update := func(id string, step int) (float64, error) {
		req := server.BatchRequest{Solve: solve}
		if step%2 == 0 {
			req.Add = probe
		} else {
			req.Remove = probe
		}
		start := time.Now()
		err := client.post("/api/sessions/"+id+"/batch", req, nil)
		return float64(time.Since(start).Microseconds()) / 1000, err
	}

	// drive runs `updates` toggles on every session and reports the
	// per-update latencies and the pass's wall clock.
	drive := func(concurrent bool) ([]float64, float64, error) {
		perSession := make([][]float64, len(ids))
		errs := make([]error, len(ids))
		start := time.Now()
		if concurrent {
			var wg sync.WaitGroup
			for i, id := range ids {
				wg.Add(1)
				go func(i int, id string) {
					defer wg.Done()
					for u := 0; u < updates; u++ {
						ms, err := update(id, u)
						if err != nil {
							errs[i] = err
							return
						}
						perSession[i] = append(perSession[i], ms)
					}
				}(i, id)
			}
			wg.Wait()
		} else {
			for i, id := range ids {
				for u := 0; u < updates; u++ {
					ms, err := update(id, u)
					if err != nil {
						errs[i] = err
						break
					}
					perSession[i] = append(perSession[i], ms)
				}
			}
		}
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		var all []float64
		for i, list := range perSession {
			if errs[i] != nil {
				return nil, 0, errs[i]
			}
			all = append(all, list...)
		}
		return all, wallMS, nil
	}

	// Alternate serial and concurrent rounds so cache warmth and heap
	// state drift equally on both sides; latencies pool across rounds,
	// throughput is the median round's.
	pass := func(concurrent bool) (ServePassStats, error) {
		var all []float64
		var ups []float64
		for r := 0; r < reps; r++ {
			samples, wallMS, err := drive(concurrent)
			if err != nil {
				return ServePassStats{}, err
			}
			all = append(all, samples...)
			ups = append(ups, float64(len(samples))/(wallMS/1000))
		}
		sort.Float64s(ups)
		return ServePassStats{
			P50MS:         percentileMS(all, 0.50),
			P99MS:         percentileMS(all, 0.99),
			UpdatesPerSec: ups[len(ups)/2],
		}, nil
	}

	report := ServeReport{
		Benchmark:         "BenchmarkServeConcurrentSessions",
		Workload:          "clustered (40 clusters, size 6, bridge rate 0.1) per session, batch toggle + component re-solve per update",
		Sessions:          sessions,
		UpdatesPerSession: updates,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
	}
	var err error
	if report.Serial, err = pass(false); err != nil {
		return err
	}
	if report.Concurrent, err = pass(true); err != nil {
		return err
	}
	if report.Serial.UpdatesPerSec > 0 {
		report.ConcurrencySpeedup = report.Concurrent.UpdatesPerSec / report.Serial.UpdatesPerSec
	}

	// Ingest comparison: N fresh facts + one re-solve, as N per-fact
	// requests vs one batch request. After each timed round the facts
	// are retracted and the session re-solved untimed, so every round —
	// in both passes — starts from the same committed state.
	const ingestFacts = 24
	report.IngestFacts = ingestFacts
	lines := make([]string, ingestFacts)
	for j := range lines {
		lines[j] = fmt.Sprintf("ingest/%03d playsFor club/ingest [1990,1995] 0.8", j)
	}
	measureIngest := func(apply func() error) (float64, error) {
		var samples []float64
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := apply(); err != nil {
				return 0, err
			}
			samples = append(samples, float64(time.Since(start).Microseconds())/1000)
			// Untimed: retract the round's facts and re-solve, restoring
			// the committed baseline for the next round.
			if err := client.post("/api/sessions/"+ids[0]+"/batch", server.BatchRequest{
				Remove: strings.Join(lines, "\n"), Solve: solve,
			}, nil); err != nil {
				return 0, err
			}
		}
		sort.Float64s(samples)
		return samples[len(samples)/2], nil
	}
	// Both passes time ingestion and restoration; the difference is the
	// assertion path — N requests plus a solve vs one combined request.
	report.PerFactIngestMS, err = measureIngest(func() error {
		for _, line := range lines {
			if err := client.post("/api/sessions/"+ids[0]+"/facts",
				server.FactsRequest{TQuads: line}, nil); err != nil {
				return err
			}
		}
		return client.post("/api/sessions/"+ids[0]+"/solve", solve, nil)
	})
	if err != nil {
		return err
	}
	report.BatchIngestMS, err = measureIngest(func() error {
		return client.post("/api/sessions/"+ids[0]+"/batch", server.BatchRequest{
			Add: strings.Join(lines, "\n"), Solve: solve,
		}, nil)
	})
	if err != nil {
		return err
	}
	if report.BatchIngestMS > 0 {
		report.BatchIngestSpeedup = report.PerFactIngestMS / report.BatchIngestMS
	}

	if err := writeReport(dir, "BENCH_serve.json", report); err != nil {
		return err
	}
	if assertSpeedup > 0 {
		if report.ConcurrencySpeedup < assertSpeedup {
			return fmt.Errorf("concurrent serving speedup %.2fx below required %.2fx (%.0f vs %.0f updates/sec)",
				report.ConcurrencySpeedup, assertSpeedup,
				report.Concurrent.UpdatesPerSec, report.Serial.UpdatesPerSec)
		}
		fmt.Printf("serve speedup assertion ok: %.2fx ≥ %.2fx (%d sessions)\n",
			report.ConcurrencySpeedup, assertSpeedup, sessions)
	}
	return nil
}
