// Command tecore-bench measures the repository's headline performance
// scenarios and emits machine-readable JSON, seeding the perf
// trajectory tracked across PRs:
//
//	BENCH_incremental.json  single-fact update re-solve vs full re-solve
//	                        (the incremental engine's raison d'être)
//	BENCH_parallel.json     solve wall-clock across worker pool sizes
//	BENCH_components.json   monolithic vs component-decomposed solving on
//	                        the clustered benchmark, cold and incremental,
//	                        scaling in cluster count
//
// Usage:
//
//	tecore-bench [-out dir] [-scenario incremental|parallel|components|all]
//	             [-players N] [-clusters N] [-reps R]
//
// Timings are medians of R runs on the local machine; absolute numbers
// are substrate-dependent, ratios (speedup, scaling) are the tracked
// signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	tecore "repro"
)

func main() {
	out := flag.String("out", ".", "directory to write BENCH_*.json into")
	scenario := flag.String("scenario", "all", "incremental, parallel, components or all")
	players := flag.Int("players", 2000, "FootballDB generator size for the incremental scenario")
	clusters := flag.Int("clusters", 0, "single cluster count for the components scenario (0 = the 50/150/400 sweep)")
	reps := flag.Int("reps", 3, "runs per measurement (median reported)")
	flag.Parse()

	switch *scenario {
	case "incremental", "parallel", "components", "all":
	default:
		fmt.Fprintf(os.Stderr, "tecore-bench: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *scenario == "incremental" || *scenario == "all" {
		if err := runIncremental(*out, *players, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: incremental: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "parallel" || *scenario == "all" {
		if err := runParallel(*out, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: parallel: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "components" || *scenario == "all" {
		if err := runComponents(*out, *clusters, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: components: %v\n", err)
			os.Exit(1)
		}
	}
}

func medianMS(reps int, f func() error) (float64, error) {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

func writeReport(dir, name string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// IncrementalScenario is one solver's full-vs-update measurement.
type IncrementalScenario struct {
	Solver   string  `json:"solver"`
	FullMS   float64 `json:"full_ms"`
	UpdateMS float64 `json:"update_ms"`
	Speedup  float64 `json:"speedup"`
}

// IncrementalReport is the BENCH_incremental.json schema.
type IncrementalReport struct {
	Benchmark  string                `json:"benchmark"`
	KGFacts    int                   `json:"kg_facts"`
	GoMaxProcs int                   `json:"gomaxprocs"`
	Scenarios  []IncrementalScenario `json:"scenarios"`
}

func runIncremental(dir string, players, reps int) error {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: players, NoiseRatio: 0.05, Seed: 9})
	probe := tecore.NewQuad("player_42", "playsFor", "bench_club",
		tecore.MustInterval(1995, 1997), 0.7)
	report := IncrementalReport{
		Benchmark:  "BenchmarkIncrementalUpdate",
		KGFacts:    len(ds.Graph),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		fullMS, err := medianMS(reps, func() error {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return err
			}
			if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
				return err
			}
			if err := s.AddFact(probe); err != nil {
				return err
			}
			_, err := s.Solve(tecore.SolveOptions{Solver: solver})
			return err
		})
		if err != nil {
			return err
		}

		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
			return err
		}
		if _, err := s.Solve(tecore.SolveOptions{Solver: solver}); err != nil {
			return err
		}
		toggle := false
		updateMS, err := medianMS(reps*2, func() error {
			toggle = !toggle
			if toggle {
				if err := s.AddFact(probe); err != nil {
					return err
				}
			} else {
				s.RemoveFact(probe)
			}
			res, err := s.Solve(tecore.SolveOptions{Solver: solver})
			if err != nil {
				return err
			}
			if !res.Incremental {
				return fmt.Errorf("update solve did not take the delta path")
			}
			return nil
		})
		if err != nil {
			return err
		}
		report.Scenarios = append(report.Scenarios, IncrementalScenario{
			Solver:   solver.String(),
			FullMS:   fullMS,
			UpdateMS: updateMS,
			Speedup:  fullMS / updateMS,
		})
	}
	return writeReport(dir, "BENCH_incremental.json", report)
}

// ComponentsScenario compares the monolithic and component-decomposed
// paths at one cluster count, cold and incremental.
type ComponentsScenario struct {
	Clusters int `json:"clusters"`
	Facts    int `json:"facts"`
	// Components is the conflict-component count of the cold solve.
	Components int `json:"components"`
	// Cold: full from-scratch solve.
	ColdMonolithicMS float64 `json:"cold_monolithic_ms"`
	ColdComponentMS  float64 `json:"cold_component_ms"`
	ColdSpeedup      float64 `json:"cold_speedup"`
	// Incremental: single-fact toggle on a warm session. The monolithic
	// number is PR 2's whole-graph delta path (re-ground the delta, warm
	// re-solve of the whole network); the component number re-solves
	// only the dirtied component and reuses the rest from cache.
	IncrementalMonolithicMS float64 `json:"incremental_monolithic_ms"`
	IncrementalComponentMS  float64 `json:"incremental_component_ms"`
	IncrementalSpeedup      float64 `json:"incremental_speedup"`
	// SolverMS isolates the inference stage (grounding sync + MAP solve,
	// excluding the conflict-resolution read-out that both paths share):
	// this is where re-solve work ∝ dirty components shows directly.
	IncrementalMonolithicSolverMS float64 `json:"incremental_monolithic_solver_ms"`
	IncrementalComponentSolverMS  float64 `json:"incremental_component_solver_ms"`
	IncrementalSolverSpeedup      float64 `json:"incremental_solver_speedup"`
	// ReusedComponents counts cache hits in an incremental component
	// re-solve (re-solve work ∝ dirty components).
	ReusedComponents int `json:"reused_components"`
}

// ComponentsReport is the BENCH_components.json schema.
type ComponentsReport struct {
	Benchmark  string               `json:"benchmark"`
	Workload   string               `json:"workload"`
	Solver     string               `json:"solver"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Scenarios  []ComponentsScenario `json:"scenarios"`
}

func runComponents(dir string, clusters, reps int) error {
	sizes := []int{50, 150, 400}
	if clusters > 0 {
		sizes = []int{clusters}
	}
	report := ComponentsReport{
		Benchmark:  "BenchmarkComponentSolve",
		Workload:   "clustered (size 6, bridge rate 0.1)",
		Solver:     tecore.SolverMLN.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, n := range sizes {
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: n, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
		probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
			tecore.MustInterval(1991, 1993), 0.55)
		newSession := func() (*tecore.Session, error) {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return nil, err
			}
			if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
				return nil, err
			}
			return s, nil
		}
		opts := func(component bool) tecore.SolveOptions {
			return tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: component}
		}

		sc := ComponentsScenario{Clusters: n, Facts: len(ds.Graph)}
		// Cold solves.
		for _, component := range []bool{false, true} {
			ms, err := medianMS(reps, func() error {
				s, err := newSession()
				if err != nil {
					return err
				}
				res, err := s.Solve(opts(component))
				if err != nil {
					return err
				}
				if component {
					sc.Components = res.Stats.Components.Count
				}
				return nil
			})
			if err != nil {
				return err
			}
			if component {
				sc.ColdComponentMS = ms
			} else {
				sc.ColdMonolithicMS = ms
			}
		}
		sc.ColdSpeedup = sc.ColdMonolithicMS / sc.ColdComponentMS

		// Incremental single-fact toggles on a warm session.
		for _, component := range []bool{false, true} {
			s, err := newSession()
			if err != nil {
				return err
			}
			if _, err := s.Solve(opts(component)); err != nil {
				return err
			}
			toggle := false
			var solverMS []float64
			ms, err := medianMS(reps*2, func() error {
				toggle = !toggle
				if toggle {
					if err := s.AddFact(probe); err != nil {
						return err
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(opts(component))
				if err != nil {
					return err
				}
				if !res.Incremental {
					return fmt.Errorf("update solve did not take the delta path")
				}
				solverMS = append(solverMS, float64(res.Output.Runtime.Microseconds())/1000)
				if component {
					sc.ReusedComponents = res.Stats.Components.Reused
				}
				return nil
			})
			if err != nil {
				return err
			}
			sort.Float64s(solverMS)
			solver := solverMS[len(solverMS)/2]
			if component {
				sc.IncrementalComponentMS = ms
				sc.IncrementalComponentSolverMS = solver
			} else {
				sc.IncrementalMonolithicMS = ms
				sc.IncrementalMonolithicSolverMS = solver
			}
		}
		sc.IncrementalSpeedup = sc.IncrementalMonolithicMS / sc.IncrementalComponentMS
		sc.IncrementalSolverSpeedup = sc.IncrementalMonolithicSolverMS / sc.IncrementalComponentSolverMS
		report.Scenarios = append(report.Scenarios, sc)
	}
	return writeReport(dir, "BENCH_components.json", report)
}

// ParallelResult is one (solver, workers) wall-clock sample.
type ParallelResult struct {
	Solver   string  `json:"solver"`
	Parallel int     `json:"parallel"`
	MS       float64 `json:"ms"`
	Speedup  float64 `json:"speedup_vs_sequential"`
}

// ParallelReport is the BENCH_parallel.json schema.
type ParallelReport struct {
	Benchmark  string           `json:"benchmark"`
	Workload   string           `json:"workload"`
	Facts      int              `json:"facts"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []ParallelResult `json:"results"`
}

func runParallel(dir string, reps int) error {
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.01, Seed: 4})
	perRelation := map[string]tecore.Graph{}
	var largest tecore.Graph
	for _, q := range ds.Graph {
		p := q.Predicate.Value
		perRelation[p] = append(perRelation[p], q)
		if len(perRelation[p]) > len(largest) {
			largest = perRelation[p]
		}
	}
	rel := largest[0].Predicate.Value
	program := fmt.Sprintf(
		"c: quad(x, <%s>, y, t) ^ quad(x, <%s>, z, t') ^ y != z -> disjoint(t, t') w = inf", rel, rel)
	report := ParallelReport{
		Benchmark:  "BenchmarkParallelismScaling",
		Workload:   "wikidata-0.01 largest relation (" + rel + ")",
		Facts:      len(largest),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		var seq float64
		for _, parallel := range []int{1, 2, 4, 8} {
			ms, err := medianMS(reps, func() error {
				s := tecore.NewSession()
				if err := s.LoadGraph(largest); err != nil {
					return err
				}
				if err := s.LoadProgramText(program); err != nil {
					return err
				}
				_, err := s.Solve(tecore.SolveOptions{Solver: solver, Parallelism: parallel})
				return err
			})
			if err != nil {
				return err
			}
			if parallel == 1 {
				seq = ms
			}
			report.Results = append(report.Results, ParallelResult{
				Solver: solver.String(), Parallel: parallel, MS: ms, Speedup: seq / ms,
			})
		}
	}
	return writeReport(dir, "BENCH_parallel.json", report)
}
