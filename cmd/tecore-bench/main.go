// Command tecore-bench measures the repository's headline performance
// scenarios and emits machine-readable JSON, seeding the perf
// trajectory tracked across PRs:
//
//	BENCH_incremental.json  single-fact update re-solve vs full re-solve
//	                        (the incremental engine's raison d'être)
//	BENCH_parallel.json     solve wall-clock across worker pool sizes
//
// Usage:
//
//	tecore-bench [-out dir] [-scenario incremental|parallel|all]
//	             [-players N] [-reps R]
//
// Timings are medians of R runs on the local machine; absolute numbers
// are substrate-dependent, ratios (speedup, scaling) are the tracked
// signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	tecore "repro"
)

func main() {
	out := flag.String("out", ".", "directory to write BENCH_*.json into")
	scenario := flag.String("scenario", "all", "incremental, parallel or all")
	players := flag.Int("players", 2000, "FootballDB generator size for the incremental scenario")
	reps := flag.Int("reps", 3, "runs per measurement (median reported)")
	flag.Parse()

	switch *scenario {
	case "incremental", "parallel", "all":
	default:
		fmt.Fprintf(os.Stderr, "tecore-bench: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *scenario == "incremental" || *scenario == "all" {
		if err := runIncremental(*out, *players, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: incremental: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "parallel" || *scenario == "all" {
		if err := runParallel(*out, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: parallel: %v\n", err)
			os.Exit(1)
		}
	}
}

func medianMS(reps int, f func() error) (float64, error) {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

func writeReport(dir, name string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// IncrementalScenario is one solver's full-vs-update measurement.
type IncrementalScenario struct {
	Solver   string  `json:"solver"`
	FullMS   float64 `json:"full_ms"`
	UpdateMS float64 `json:"update_ms"`
	Speedup  float64 `json:"speedup"`
}

// IncrementalReport is the BENCH_incremental.json schema.
type IncrementalReport struct {
	Benchmark  string                `json:"benchmark"`
	KGFacts    int                   `json:"kg_facts"`
	GoMaxProcs int                   `json:"gomaxprocs"`
	Scenarios  []IncrementalScenario `json:"scenarios"`
}

func runIncremental(dir string, players, reps int) error {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: players, NoiseRatio: 0.05, Seed: 9})
	probe := tecore.NewQuad("player_42", "playsFor", "bench_club",
		tecore.MustInterval(1995, 1997), 0.7)
	report := IncrementalReport{
		Benchmark:  "BenchmarkIncrementalUpdate",
		KGFacts:    len(ds.Graph),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		fullMS, err := medianMS(reps, func() error {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return err
			}
			if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
				return err
			}
			if err := s.AddFact(probe); err != nil {
				return err
			}
			_, err := s.Solve(tecore.SolveOptions{Solver: solver})
			return err
		})
		if err != nil {
			return err
		}

		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
			return err
		}
		if _, err := s.Solve(tecore.SolveOptions{Solver: solver}); err != nil {
			return err
		}
		toggle := false
		updateMS, err := medianMS(reps*2, func() error {
			toggle = !toggle
			if toggle {
				if err := s.AddFact(probe); err != nil {
					return err
				}
			} else {
				s.RemoveFact(probe)
			}
			res, err := s.Solve(tecore.SolveOptions{Solver: solver})
			if err != nil {
				return err
			}
			if !res.Incremental {
				return fmt.Errorf("update solve did not take the delta path")
			}
			return nil
		})
		if err != nil {
			return err
		}
		report.Scenarios = append(report.Scenarios, IncrementalScenario{
			Solver:   solver.String(),
			FullMS:   fullMS,
			UpdateMS: updateMS,
			Speedup:  fullMS / updateMS,
		})
	}
	return writeReport(dir, "BENCH_incremental.json", report)
}

// ParallelResult is one (solver, workers) wall-clock sample.
type ParallelResult struct {
	Solver   string  `json:"solver"`
	Parallel int     `json:"parallel"`
	MS       float64 `json:"ms"`
	Speedup  float64 `json:"speedup_vs_sequential"`
}

// ParallelReport is the BENCH_parallel.json schema.
type ParallelReport struct {
	Benchmark  string           `json:"benchmark"`
	Workload   string           `json:"workload"`
	Facts      int              `json:"facts"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []ParallelResult `json:"results"`
}

func runParallel(dir string, reps int) error {
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.01, Seed: 4})
	perRelation := map[string]tecore.Graph{}
	var largest tecore.Graph
	for _, q := range ds.Graph {
		p := q.Predicate.Value
		perRelation[p] = append(perRelation[p], q)
		if len(perRelation[p]) > len(largest) {
			largest = perRelation[p]
		}
	}
	rel := largest[0].Predicate.Value
	program := fmt.Sprintf(
		"c: quad(x, <%s>, y, t) ^ quad(x, <%s>, z, t') ^ y != z -> disjoint(t, t') w = inf", rel, rel)
	report := ParallelReport{
		Benchmark:  "BenchmarkParallelismScaling",
		Workload:   "wikidata-0.01 largest relation (" + rel + ")",
		Facts:      len(largest),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		var seq float64
		for _, parallel := range []int{1, 2, 4, 8} {
			ms, err := medianMS(reps, func() error {
				s := tecore.NewSession()
				if err := s.LoadGraph(largest); err != nil {
					return err
				}
				if err := s.LoadProgramText(program); err != nil {
					return err
				}
				_, err := s.Solve(tecore.SolveOptions{Solver: solver, Parallelism: parallel})
				return err
			})
			if err != nil {
				return err
			}
			if parallel == 1 {
				seq = ms
			}
			report.Results = append(report.Results, ParallelResult{
				Solver: solver.String(), Parallel: parallel, MS: ms, Speedup: seq / ms,
			})
		}
	}
	return writeReport(dir, "BENCH_parallel.json", report)
}
