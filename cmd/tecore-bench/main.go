// Command tecore-bench measures the repository's headline performance
// scenarios and emits machine-readable JSON, seeding the perf
// trajectory tracked across PRs:
//
//	BENCH_incremental.json  single-fact update re-solve vs full re-solve
//	                        (the incremental engine's raison d'être)
//	BENCH_parallel.json     solve wall-clock across worker pool sizes
//	BENCH_components.json   monolithic vs component-decomposed solving on
//	                        the clustered benchmark, cold and incremental,
//	                        scaling in cluster count
//	BENCH_repair.json       whole-graph vs component-incremental repair
//	                        read-out (conflict analysis, confidences,
//	                        violation counts) on incremental re-solves of
//	                        the clustered benchmark
//	BENCH_outcome.json      from-scratch Outcome assembly (sort/merge of
//	                        every component's facts and clusters) vs the
//	                        live delta-patched outcome on incremental
//	                        re-solves of the clustered benchmark
//	BENCH_serve.json        HTTP session serving under concurrent load:
//	                        K sessions streaming batch updates, serial vs
//	                        concurrent throughput and latency percentiles,
//	                        plus batched vs per-fact ingest
//	BENCH_scale.json        memory/latency trajectory over fact count:
//	                        bytes/fact (heap-quiesced MemStats + the
//	                        store's own estimate), cold-solve time and
//	                        single-fact update latency at 10⁵–10⁷ facts
//	BENCH_update.json       single-fact update latency over fact count
//	                        with the delta-maintained solve plan vs the
//	                        from-scratch rebuilt plan (RebuildPlan),
//	                        p50/p99 plus per-stage breakdown
//	BENCH_ground.json       cold grounding wall-clock over fact count:
//	                        the legacy string-keyed grounder vs the
//	                        selectivity-planned compiled pipeline on the
//	                        identical network
//	BENCH_restart.json      process restart with and without the durable
//	                        session directory: cold (re-parse + reload +
//	                        cold solve) vs warm (snapshot load + WAL
//	                        replay + warm-started solve), plus journal
//	                        replay bandwidth
//
// Usage:
//
//	tecore-bench [-out dir] [-scenario incremental|parallel|components|repair|outcome|serve|scale|ground|update|restart|all]
//	             [-players N] [-clusters N] [-sessions K] [-updates U] [-reps R]
//	             [-scale-facts N,N,...] [-scale-cluster-size N]
//	             [-ground-facts N,N,...] [-update-facts N,N,...]
//	             [-restart-facts N] [-restart-cluster-size N]
//	             [-assert-repair-speedup X] [-assert-outcome-speedup X]
//	             [-assert-serve-speedup X] [-assert-bytes-per-fact B]
//	             [-assert-ground-speedup X] [-assert-plan-speedup X]
//	             [-assert-restart-speedup X]
//
// The scale, ground, update and restart scenarios are not part of
// -scenario all: their default sweeps run minutes and allocate
// gigabytes by design; request them explicitly (CI runs them at small
// smoke sizes).
//
// Timings are medians of R runs on the local machine; absolute numbers
// are substrate-dependent, ratios (speedup, scaling) are the tracked
// signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	tecore "repro"
)

func main() {
	out := flag.String("out", ".", "directory to write BENCH_*.json into")
	scenario := flag.String("scenario", "all", "incremental, parallel, components, repair, outcome, serve or all")
	players := flag.Int("players", 2000, "FootballDB generator size for the incremental scenario")
	clusters := flag.Int("clusters", 0, "single cluster count for the components/repair scenarios (0 = the default sweep)")
	sessions := flag.Int("sessions", 8, "concurrent sessions for the serve scenario")
	updates := flag.Int("updates", 20, "updates per session per pass for the serve scenario")
	reps := flag.Int("reps", 3, "runs per measurement (median reported)")
	assertRepair := flag.Float64("assert-repair-speedup", 0,
		"repair scenario: exit non-zero unless the largest workload's incremental repair speedup reaches this factor (0 = no assertion)")
	assertOutcome := flag.Float64("assert-outcome-speedup", 0,
		"outcome scenario: exit non-zero unless the largest workload's live-outcome speedup reaches this factor (0 = no assertion)")
	assertServe := flag.Float64("assert-serve-speedup", 0,
		"serve scenario: exit non-zero unless concurrent throughput beats serial by this factor (0 = no assertion)")
	scaleFacts := flag.String("scale-facts", "100000,300000,1000000",
		"scale scenario: comma-separated target fact counts to sweep")
	scaleClusterSize := flag.Int("scale-cluster-size", 6,
		"scale scenario: facts per cluster (component size distribution knob)")
	assertBytesPerFact := flag.Float64("assert-bytes-per-fact", 0,
		"scale scenario: exit non-zero if the last point's loaded bytes/fact exceeds this budget (0 = no assertion)")
	groundFacts := flag.String("ground-facts", "100000,300000,1000000",
		"ground scenario: comma-separated target fact counts to sweep")
	assertGround := flag.Float64("assert-ground-speedup", 0,
		"ground scenario: exit non-zero unless the largest workload's compiled-grounding speedup over the legacy path reaches this factor (0 = no assertion)")
	updateFacts := flag.String("update-facts", "100000,300000,1000000",
		"update scenario: comma-separated target fact counts to sweep")
	assertPlan := flag.Float64("assert-plan-speedup", 0,
		"update scenario: exit non-zero unless the largest workload's maintained-plan stage speedup over the rebuilt plan reaches this factor (0 = no assertion)")
	restartFacts := flag.Int("restart-facts", 100000,
		"restart scenario: target fact count for the cold/warm restart comparison")
	restartClusterSize := flag.Int("restart-cluster-size", 60,
		"restart scenario: facts per cluster (above the exact-solve component limit, so the first solve is optimiser-dominant)")
	assertRestart := flag.Float64("assert-restart-speedup", 0,
		"restart scenario: exit non-zero unless the warm restart beats the cold restart by this factor (0 = no assertion)")
	flag.Parse()

	switch *scenario {
	case "incremental", "parallel", "components", "repair", "outcome", "serve", "scale", "ground", "update", "restart", "all":
	default:
		fmt.Fprintf(os.Stderr, "tecore-bench: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *scenario == "incremental" || *scenario == "all" {
		if err := runIncremental(*out, *players, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: incremental: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "parallel" || *scenario == "all" {
		if err := runParallel(*out, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: parallel: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "components" || *scenario == "all" {
		if err := runComponents(*out, *clusters, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: components: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "repair" || *scenario == "all" {
		if err := runRepair(*out, *clusters, *reps, *assertRepair); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: repair: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "outcome" || *scenario == "all" {
		if err := runOutcome(*out, *clusters, *reps, *assertOutcome); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: outcome: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "serve" || *scenario == "all" {
		if err := runServe(*out, *sessions, *updates, *reps, *assertServe); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: serve: %v\n", err)
			os.Exit(1)
		}
	}
	// Deliberately not under "all": the default sweeps are minutes of work.
	if *scenario == "scale" {
		if err := runScale(*out, *scaleFacts, *scaleClusterSize, *reps, *assertBytesPerFact); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: scale: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "ground" {
		if err := runGround(*out, *groundFacts, *scaleClusterSize, *reps, *assertGround); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: ground: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "update" {
		if err := runUpdate(*out, *updateFacts, *scaleClusterSize, *reps, *assertPlan); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: update: %v\n", err)
			os.Exit(1)
		}
	}
	if *scenario == "restart" {
		if err := runRestart(*out, *restartFacts, *restartClusterSize, *reps, *assertRestart); err != nil {
			fmt.Fprintf(os.Stderr, "tecore-bench: restart: %v\n", err)
			os.Exit(1)
		}
	}
}

func medianMS(reps int, f func() error) (float64, error) {
	times := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

func writeReport(dir, name string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// IncrementalScenario is one solver's full-vs-update measurement.
type IncrementalScenario struct {
	Solver   string  `json:"solver"`
	FullMS   float64 `json:"full_ms"`
	UpdateMS float64 `json:"update_ms"`
	Speedup  float64 `json:"speedup"`
}

// IncrementalReport is the BENCH_incremental.json schema.
type IncrementalReport struct {
	Benchmark  string                `json:"benchmark"`
	KGFacts    int                   `json:"kg_facts"`
	GoMaxProcs int                   `json:"gomaxprocs"`
	Scenarios  []IncrementalScenario `json:"scenarios"`
}

func runIncremental(dir string, players, reps int) error {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: players, NoiseRatio: 0.05, Seed: 9})
	probe := tecore.NewQuad("player_42", "playsFor", "bench_club",
		tecore.MustInterval(1995, 1997), 0.7)
	report := IncrementalReport{
		Benchmark:  "BenchmarkIncrementalUpdate",
		KGFacts:    len(ds.Graph),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		fullMS, err := medianMS(reps, func() error {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return err
			}
			if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
				return err
			}
			if err := s.AddFact(probe); err != nil {
				return err
			}
			_, err := s.Solve(tecore.SolveOptions{Solver: solver})
			return err
		})
		if err != nil {
			return err
		}

		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
			return err
		}
		if _, err := s.Solve(tecore.SolveOptions{Solver: solver}); err != nil {
			return err
		}
		toggle := false
		updateMS, err := medianMS(reps*2, func() error {
			toggle = !toggle
			if toggle {
				if err := s.AddFact(probe); err != nil {
					return err
				}
			} else {
				s.RemoveFact(probe)
			}
			res, err := s.Solve(tecore.SolveOptions{Solver: solver})
			if err != nil {
				return err
			}
			if !res.Incremental {
				return fmt.Errorf("update solve did not take the delta path")
			}
			return nil
		})
		if err != nil {
			return err
		}
		report.Scenarios = append(report.Scenarios, IncrementalScenario{
			Solver:   solver.String(),
			FullMS:   fullMS,
			UpdateMS: updateMS,
			Speedup:  fullMS / updateMS,
		})
	}
	return writeReport(dir, "BENCH_incremental.json", report)
}

// ComponentsScenario compares the monolithic and component-decomposed
// paths at one cluster count, cold and incremental.
type ComponentsScenario struct {
	Clusters int `json:"clusters"`
	Facts    int `json:"facts"`
	// Components is the conflict-component count of the cold solve.
	Components int `json:"components"`
	// Cold: full from-scratch solve.
	ColdMonolithicMS float64 `json:"cold_monolithic_ms"`
	ColdComponentMS  float64 `json:"cold_component_ms"`
	ColdSpeedup      float64 `json:"cold_speedup"`
	// Incremental: single-fact toggle on a warm session. The monolithic
	// number is PR 2's whole-graph delta path (re-ground the delta, warm
	// re-solve of the whole network); the component number re-solves
	// only the dirtied component and reuses the rest from cache.
	IncrementalMonolithicMS float64 `json:"incremental_monolithic_ms"`
	IncrementalComponentMS  float64 `json:"incremental_component_ms"`
	IncrementalSpeedup      float64 `json:"incremental_speedup"`
	// SolverMS isolates the inference stage (grounding sync + MAP solve,
	// excluding the conflict-resolution read-out that both paths share):
	// this is where re-solve work ∝ dirty components shows directly.
	IncrementalMonolithicSolverMS float64 `json:"incremental_monolithic_solver_ms"`
	IncrementalComponentSolverMS  float64 `json:"incremental_component_solver_ms"`
	IncrementalSolverSpeedup      float64 `json:"incremental_solver_speedup"`
	// ReusedComponents counts cache hits in an incremental component
	// re-solve (re-solve work ∝ dirty components).
	ReusedComponents int `json:"reused_components"`
}

// ComponentsReport is the BENCH_components.json schema.
type ComponentsReport struct {
	Benchmark  string               `json:"benchmark"`
	Workload   string               `json:"workload"`
	Solver     string               `json:"solver"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Scenarios  []ComponentsScenario `json:"scenarios"`
}

func runComponents(dir string, clusters, reps int) error {
	sizes := []int{50, 150, 400}
	if clusters > 0 {
		sizes = []int{clusters}
	}
	report := ComponentsReport{
		Benchmark:  "BenchmarkComponentSolve",
		Workload:   "clustered (size 6, bridge rate 0.1)",
		Solver:     tecore.SolverMLN.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, n := range sizes {
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: n, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
		probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
			tecore.MustInterval(1991, 1993), 0.55)
		newSession := func() (*tecore.Session, error) {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return nil, err
			}
			if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
				return nil, err
			}
			return s, nil
		}
		opts := func(component bool) tecore.SolveOptions {
			return tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: component}
		}

		sc := ComponentsScenario{Clusters: n, Facts: len(ds.Graph)}
		// Cold solves.
		for _, component := range []bool{false, true} {
			ms, err := medianMS(reps, func() error {
				s, err := newSession()
				if err != nil {
					return err
				}
				res, err := s.Solve(opts(component))
				if err != nil {
					return err
				}
				if component {
					sc.Components = res.Stats.Components.Count
				}
				return nil
			})
			if err != nil {
				return err
			}
			if component {
				sc.ColdComponentMS = ms
			} else {
				sc.ColdMonolithicMS = ms
			}
		}
		sc.ColdSpeedup = sc.ColdMonolithicMS / sc.ColdComponentMS

		// Incremental single-fact toggles on a warm session.
		for _, component := range []bool{false, true} {
			s, err := newSession()
			if err != nil {
				return err
			}
			if _, err := s.Solve(opts(component)); err != nil {
				return err
			}
			toggle := false
			var solverMS []float64
			ms, err := medianMS(reps*2, func() error {
				toggle = !toggle
				if toggle {
					if err := s.AddFact(probe); err != nil {
						return err
					}
				} else {
					s.RemoveFact(probe)
				}
				res, err := s.Solve(opts(component))
				if err != nil {
					return err
				}
				if !res.Incremental {
					return fmt.Errorf("update solve did not take the delta path")
				}
				solverMS = append(solverMS, float64(res.Output.Runtime.Microseconds())/1000)
				if component {
					sc.ReusedComponents = res.Stats.Components.Reused
				}
				return nil
			})
			if err != nil {
				return err
			}
			sort.Float64s(solverMS)
			solver := solverMS[len(solverMS)/2]
			if component {
				sc.IncrementalComponentMS = ms
				sc.IncrementalComponentSolverMS = solver
			} else {
				sc.IncrementalMonolithicMS = ms
				sc.IncrementalMonolithicSolverMS = solver
			}
		}
		sc.IncrementalSpeedup = sc.IncrementalMonolithicMS / sc.IncrementalComponentMS
		sc.IncrementalSolverSpeedup = sc.IncrementalMonolithicSolverMS / sc.IncrementalComponentSolverMS
		report.Scenarios = append(report.Scenarios, sc)
	}
	return writeReport(dir, "BENCH_components.json", report)
}

// RepairScenario compares the repair read-out stage — conflict
// analysis, confidence propagation, violation counts — between the
// whole-graph pass and the component-incremental pass at one cluster
// count, on single-fact update re-solves of a warm session.
type RepairScenario struct {
	Clusters int `json:"clusters"`
	Facts    int `json:"facts"`
	// Components is the conflict-component count of the decomposed
	// read-out; Repaired/Reused is its per-update split (re-repair work
	// ∝ dirty components).
	Components         int `json:"components"`
	RepairedComponents int `json:"repaired_components"`
	ReusedComponents   int `json:"reused_components"`
	// WholeGraphRepairMS is the read-out stage of an incremental
	// monolithic re-solve (PR 3's whole-graph repair.Resolve, rescanning
	// every clause); IncrementalRepairMS is the component-decomposed
	// read-out reusing every clean component's cached unit.
	WholeGraphRepairMS  float64 `json:"whole_graph_repair_ms"`
	IncrementalRepairMS float64 `json:"incremental_repair_ms"`
	Speedup             float64 `json:"speedup"`
}

// RepairReport is the BENCH_repair.json schema.
type RepairReport struct {
	Benchmark  string           `json:"benchmark"`
	Workload   string           `json:"workload"`
	Solver     string           `json:"solver"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Scenarios  []RepairScenario `json:"scenarios"`
}

func runRepair(dir string, clusters, reps int, assertSpeedup float64) error {
	sizes := []int{100, 400}
	if clusters > 0 {
		sizes = []int{clusters}
	}
	report := RepairReport{
		Benchmark:  "BenchmarkRepairStage",
		Workload:   "clustered (size 6, bridge rate 0.1)",
		Solver:     tecore.SolverMLN.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, n := range sizes {
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: n, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
		probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
			tecore.MustInterval(1991, 1993), 0.55)
		sc := RepairScenario{Clusters: n, Facts: len(ds.Graph)}

		// component=false: incremental monolithic session, read-out runs
		// the whole-graph pass every update. component=true: the
		// read-out decomposes per component and reuses cached units.
		for _, component := range []bool{false, true} {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return err
			}
			if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
				return err
			}
			opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: component}
			if _, err := s.Solve(opts); err != nil {
				return err
			}
			toggle := false
			var repairMS []float64
			for i := 0; i < reps*4; i++ {
				toggle = !toggle
				if toggle {
					if err := s.AddFact(probe); err != nil {
						return err
					}
				} else {
					s.RemoveFact(probe)
				}
				// Quiesce the heap so a collection triggered by earlier
				// iterations' garbage doesn't land inside the timed
				// read-out stage of either mode.
				runtime.GC()
				res, err := s.Solve(opts)
				if err != nil {
					return err
				}
				if !res.Incremental {
					return fmt.Errorf("update solve did not take the delta path")
				}
				rs := res.Stats.Repair
				if rs == nil {
					return fmt.Errorf("solve reported no repair stage stats")
				}
				wantMode := tecore.RepairWholeGraph
				if component {
					wantMode = tecore.RepairComponents
				}
				if rs.Mode != wantMode {
					return fmt.Errorf("repair mode = %q, want %q", rs.Mode, wantMode)
				}
				repairMS = append(repairMS, float64(rs.Total.Nanoseconds())/1e6)
				if component {
					sc.Components = rs.Components
					sc.RepairedComponents = rs.Repaired
					sc.ReusedComponents = rs.Reused
				}
			}
			sort.Float64s(repairMS)
			med := repairMS[len(repairMS)/2]
			if component {
				sc.IncrementalRepairMS = med
			} else {
				sc.WholeGraphRepairMS = med
			}
		}
		if sc.IncrementalRepairMS > 0 {
			// Guard the division: a zero median would put +Inf in the
			// report, which JSON cannot encode.
			sc.Speedup = sc.WholeGraphRepairMS / sc.IncrementalRepairMS
		}
		report.Scenarios = append(report.Scenarios, sc)
	}
	if err := writeReport(dir, "BENCH_repair.json", report); err != nil {
		return err
	}
	if assertSpeedup > 0 {
		last := report.Scenarios[len(report.Scenarios)-1]
		if last.Speedup < assertSpeedup {
			return fmt.Errorf("incremental repair speedup %.2fx at %d clusters below required %.2fx",
				last.Speedup, last.Clusters, assertSpeedup)
		}
		fmt.Printf("repair speedup assertion ok: %.2fx ≥ %.2fx at %d clusters\n",
			last.Speedup, assertSpeedup, last.Clusters)
	}
	return nil
}

// OutcomeScenario compares the Outcome production stage — the final
// sort/merge of kept/removed/inferred facts and conflict clusters —
// between from-scratch assembly and the live delta-patched outcome at
// one cluster count, on single-fact update re-solves of a warm
// component session. Everything upstream (grounding sync, solver,
// repair units) is identical on both sides; only the read-out's merge
// differs.
type OutcomeScenario struct {
	Clusters int `json:"clusters"`
	Facts    int `json:"facts"`
	// Components is the conflict-component count; Patched/Reused is the
	// live outcome's per-update split (patch work ∝ dirty components).
	Components        int `json:"components"`
	PatchedComponents int `json:"patched_components"`
	ReusedComponents  int `json:"reused_components"`
	// AssembledOutcomeMS is the median outcome stage of an incremental
	// re-solve that re-assembles the full Outcome (PR 4's sort/merge of
	// every component's unit); LiveOutcomeMS is the delta-patched stage
	// (splice the dirtied component, materialize from the maintained
	// indices).
	AssembledOutcomeMS float64 `json:"assembled_outcome_ms"`
	LiveOutcomeMS      float64 `json:"live_outcome_ms"`
	Speedup            float64 `json:"speedup"`
}

// OutcomeReport is the BENCH_outcome.json schema.
type OutcomeReport struct {
	Benchmark  string            `json:"benchmark"`
	Workload   string            `json:"workload"`
	Solver     string            `json:"solver"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Scenarios  []OutcomeScenario `json:"scenarios"`
}

func runOutcome(dir string, clusters, reps int, assertSpeedup float64) error {
	sizes := []int{100, 400}
	if clusters > 0 {
		sizes = []int{clusters}
	}
	report := OutcomeReport{
		Benchmark:  "BenchmarkOutcomeStage",
		Workload:   "clustered (size 6, bridge rate 0.1)",
		Solver:     tecore.SolverMLN.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, n := range sizes {
		ds := tecore.GenerateClustered(tecore.ClusteredConfig{
			Clusters: n, ClusterSize: 6, BridgeRate: 0.1, Seed: 11})
		probe := tecore.NewQuad("player/00001", "playsFor", "club/00001/probe",
			tecore.MustInterval(1991, 1993), 0.55)
		sc := OutcomeScenario{Clusters: n, Facts: len(ds.Graph)}

		for _, assembled := range []bool{true, false} {
			s := tecore.NewSession()
			if err := s.LoadGraph(ds.Graph); err != nil {
				return err
			}
			if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
				return err
			}
			opts := tecore.SolveOptions{
				Solver: tecore.SolverMLN, ComponentSolve: true, AssembledOutcome: assembled}
			res, err := s.Solve(opts)
			if err != nil {
				return err
			}
			// The live outcome must stay byte-identical to assembly; spot
			// check the cold solve against a whole-graph re-assembly via
			// the stats the differential suite compares in depth.
			if res.Stats.Outcome == nil {
				return fmt.Errorf("solve reported no outcome stage stats")
			}
			toggle := false
			var outcomeMS []float64
			for i := 0; i < reps*4; i++ {
				toggle = !toggle
				if toggle {
					if err := s.AddFact(probe); err != nil {
						return err
					}
				} else {
					s.RemoveFact(probe)
				}
				// Quiesce the heap so a collection triggered by earlier
				// iterations' garbage doesn't land inside the timed stage.
				runtime.GC()
				res, err := s.Solve(opts)
				if err != nil {
					return err
				}
				if !res.Incremental {
					return fmt.Errorf("update solve did not take the delta path")
				}
				ocs := res.Stats.Outcome
				wantMode := tecore.OutcomeLive
				if assembled {
					wantMode = tecore.OutcomeAssembled
				}
				if ocs == nil || ocs.Mode != wantMode {
					return fmt.Errorf("outcome mode = %+v, want %q", ocs, wantMode)
				}
				outcomeMS = append(outcomeMS, float64(ocs.Total.Nanoseconds())/1e6)
				if !assembled {
					sc.Components = res.Stats.Repair.Components
					sc.PatchedComponents = ocs.Patched
					sc.ReusedComponents = ocs.Reused
				}
			}
			sort.Float64s(outcomeMS)
			med := outcomeMS[len(outcomeMS)/2]
			if assembled {
				sc.AssembledOutcomeMS = med
			} else {
				sc.LiveOutcomeMS = med
			}
		}
		if sc.LiveOutcomeMS > 0 {
			// Guard the division: a zero median would put +Inf in the
			// report, which JSON cannot encode.
			sc.Speedup = sc.AssembledOutcomeMS / sc.LiveOutcomeMS
		}
		report.Scenarios = append(report.Scenarios, sc)
	}
	if err := writeReport(dir, "BENCH_outcome.json", report); err != nil {
		return err
	}
	if assertSpeedup > 0 {
		last := report.Scenarios[len(report.Scenarios)-1]
		if last.Speedup < assertSpeedup {
			return fmt.Errorf("live outcome speedup %.2fx at %d clusters below required %.2fx",
				last.Speedup, last.Clusters, assertSpeedup)
		}
		fmt.Printf("outcome speedup assertion ok: %.2fx ≥ %.2fx at %d clusters\n",
			last.Speedup, assertSpeedup, last.Clusters)
	}
	return nil
}

// ParallelResult is one (solver, workers) wall-clock sample.
type ParallelResult struct {
	Solver   string  `json:"solver"`
	Parallel int     `json:"parallel"`
	MS       float64 `json:"ms"`
	Speedup  float64 `json:"speedup_vs_sequential"`
}

// ParallelReport is the BENCH_parallel.json schema.
type ParallelReport struct {
	Benchmark  string           `json:"benchmark"`
	Workload   string           `json:"workload"`
	Facts      int              `json:"facts"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []ParallelResult `json:"results"`
}

func runParallel(dir string, reps int) error {
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.01, Seed: 4})
	perRelation := map[string]tecore.Graph{}
	var largest tecore.Graph
	for _, q := range ds.Graph {
		p := q.Predicate.Value
		perRelation[p] = append(perRelation[p], q)
		if len(perRelation[p]) > len(largest) {
			largest = perRelation[p]
		}
	}
	rel := largest[0].Predicate.Value
	program := fmt.Sprintf(
		"c: quad(x, <%s>, y, t) ^ quad(x, <%s>, z, t') ^ y != z -> disjoint(t, t') w = inf", rel, rel)
	report := ParallelReport{
		Benchmark:  "BenchmarkParallelismScaling",
		Workload:   "wikidata-0.01 largest relation (" + rel + ")",
		Facts:      len(largest),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, solver := range []tecore.Solver{tecore.SolverPSL, tecore.SolverMLN} {
		var seq float64
		for _, parallel := range []int{1, 2, 4, 8} {
			ms, err := medianMS(reps, func() error {
				s := tecore.NewSession()
				if err := s.LoadGraph(largest); err != nil {
					return err
				}
				if err := s.LoadProgramText(program); err != nil {
					return err
				}
				_, err := s.Solve(tecore.SolveOptions{Solver: solver, Parallelism: parallel})
				return err
			})
			if err != nil {
				return err
			}
			if parallel == 1 {
				seq = ms
			}
			report.Results = append(report.Results, ParallelResult{
				Solver: solver.String(), Parallel: parallel, MS: ms, Speedup: seq / ms,
			})
		}
	}
	return writeReport(dir, "BENCH_parallel.json", report)
}
