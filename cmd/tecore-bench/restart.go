package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	tecore "repro"
)

// RestartReport is the BENCH_restart.json schema: what a process
// restart costs with and without the durable session directory. The
// cold path is the only option without durability — re-parse the TQuads
// text, rebuild the store, solve from nothing. The warm path reopens
// the data directory: binary snapshot load, WAL suffix replay, and a
// first solve seeded with the persisted MAP state.
type RestartReport struct {
	Benchmark   string `json:"benchmark"`
	Workload    string `json:"workload"`
	Solver      string `json:"solver"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Facts       int    `json:"facts"`
	Clusters    int    `json:"clusters"`
	ClusterSize int    `json:"cluster_size"`

	// Cold restart: parse the TQuads text, load the graph and program,
	// solve from scratch. ColdMS is the time-to-first-solve.
	ColdParseMS float64 `json:"cold_parse_ms"`
	ColdLoadMS  float64 `json:"cold_load_ms"`
	ColdSolveMS float64 `json:"cold_solve_ms"`
	ColdMS      float64 `json:"cold_ms"`

	// Crash recovery: reopening a directory whose store lives entirely
	// in the WAL (the process died before any checkpoint). ReplayMBps
	// is the journal replay bandwidth.
	ReplayRecords int     `json:"replay_records"`
	ReplayBytes   int64   `json:"replay_bytes"`
	ReplayOpenMS  float64 `json:"replay_open_ms"`
	ReplayMBps    float64 `json:"replay_mb_per_s"`

	// Warm restart: reopening after a checkpointed shutdown — snapshot
	// load, empty WAL suffix, first solve warm-started from the
	// persisted truth vector. WarmMS is the time-to-first-solve.
	WarmOpenMS  float64 `json:"warm_open_ms"`
	WarmSolveMS float64 `json:"warm_solve_ms"`
	WarmMS      float64 `json:"warm_ms"`

	// Speedup is cold vs warm time-to-first-solve.
	Speedup float64 `json:"speedup"`
}

// checkEquivalent compares a restarted session's first solve against
// the pre-restart baseline. Conflict structure must match exactly; the
// resolution quality (removed confidence mass) may differ by the local
// search's last-mile slack — above the exact-solve component limit the
// optimiser is a heuristic, and a warm incumbent legitimately lands on
// a different, equally good local optimum.
func checkEquivalent(what string, res, baseline *tecore.Resolution) error {
	if res.Stats.ConflictClusters != baseline.Stats.ConflictClusters {
		return fmt.Errorf("%s restart found %d conflict clusters, pre-restart session found %d",
			what, res.Stats.ConflictClusters, baseline.Stats.ConflictClusters)
	}
	base := baseline.Stats.RemovedWeight
	if diff := res.Stats.RemovedWeight - base; diff > 0.01*base+1e-9 {
		return fmt.Errorf("%s restart removed weight %.3f, more than 1%% above the baseline %.3f",
			what, res.Stats.RemovedWeight, base)
	}
	return nil
}

func runRestart(dir string, target, clusterSize, reps int, assertSpeedup float64) error {
	clusters := target / clusterSize
	if clusters < 1 {
		clusters = 1
	}
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{
		Clusters: clusters, ClusterSize: clusterSize, BridgeRate: 0.1, Seed: 11})
	var text strings.Builder
	if err := tecore.WriteGraph(&text, ds.Graph); err != nil {
		return err
	}
	report := RestartReport{
		Benchmark:   "BenchmarkRestartRecovery",
		Workload:    fmt.Sprintf("clustered (size %d, bridge rate 0.1)", clusterSize),
		Solver:      tecore.SolverMLN.String(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Facts:       len(ds.Graph),
		Clusters:    clusters,
		ClusterSize: clusterSize,
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}

	tmp, err := os.MkdirTemp("", "tecore-restart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	dataDir := filepath.Join(tmp, "session")

	// Build the durable session, then "crash": every fact is flushed to
	// the WAL but no checkpoint ever ran, so the reopen replays the
	// whole journal.
	build, err := tecore.OpenSession(dataDir)
	if err != nil {
		return err
	}
	if err := build.LoadGraph(ds.Graph); err != nil {
		return err
	}
	if err := build.Sync(); err != nil {
		return err
	}
	if err := build.Close(); err != nil {
		return err
	}

	// Crash recovery: measure the journal replay.
	start := time.Now()
	crashed, err := tecore.OpenSession(dataDir)
	if err != nil {
		return err
	}
	report.ReplayOpenMS = float64(time.Since(start).Microseconds()) / 1000
	rs := crashed.RecoveryStats()
	if rs.SnapshotLoaded || rs.ReplayedRecords == 0 {
		return fmt.Errorf("crash reopen expected pure WAL replay, got %+v", rs)
	}
	report.ReplayRecords = rs.ReplayedRecords
	report.ReplayBytes = rs.ReplayedBytes
	report.ReplayMBps = float64(rs.ReplayedBytes) / (1 << 20) / (report.ReplayOpenMS / 1000)

	// Solve once and shut down gracefully: checkpoint (snapshot + warm
	// sidecar at the final epoch) + close. This is the state a warm
	// restart finds.
	if err := crashed.LoadProgramText(tecore.ClusteredProgram); err != nil {
		return err
	}
	baseline, err := crashed.Solve(opts)
	if err != nil {
		return err
	}
	if err := crashed.Checkpoint(); err != nil {
		return err
	}
	if err := crashed.Close(); err != nil {
		return err
	}

	// Warm restarts: snapshot load + warm-started first solve.
	warmOpen := make([]float64, 0, reps)
	warmSolve := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start = time.Now()
		s, err := tecore.OpenSession(dataDir)
		if err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			return err
		}
		open := float64(time.Since(start).Microseconds()) / 1000
		rs := s.RecoveryStats()
		if !rs.SnapshotLoaded || rs.ReplayedRecords != 0 {
			return fmt.Errorf("warm reopen expected a checkpointed snapshot, got %+v", rs)
		}
		start = time.Now()
		res, err := s.Solve(opts)
		if err != nil {
			return err
		}
		warmOpen = append(warmOpen, open)
		warmSolve = append(warmSolve, float64(time.Since(start).Microseconds())/1000)
		if err := checkEquivalent("warm", res, baseline); err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
	}
	sort.Float64s(warmOpen)
	sort.Float64s(warmSolve)
	report.WarmOpenMS = warmOpen[len(warmOpen)/2]
	report.WarmSolveMS = warmSolve[len(warmSolve)/2]
	report.WarmMS = report.WarmOpenMS + report.WarmSolveMS

	// Cold restarts: the no-durability baseline from the TQuads text.
	coldParse := make([]float64, 0, reps)
	coldLoad := make([]float64, 0, reps)
	coldSolve := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start = time.Now()
		g, err := tecore.ParseGraphString(text.String())
		if err != nil {
			return err
		}
		coldParse = append(coldParse, float64(time.Since(start).Microseconds())/1000)
		s := tecore.NewSession()
		start = time.Now()
		if err := s.LoadGraph(g); err != nil {
			return err
		}
		if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
			return err
		}
		coldLoad = append(coldLoad, float64(time.Since(start).Microseconds())/1000)
		start = time.Now()
		res, err := s.Solve(opts)
		if err != nil {
			return err
		}
		coldSolve = append(coldSolve, float64(time.Since(start).Microseconds())/1000)
		if err := checkEquivalent("cold", res, baseline); err != nil {
			return err
		}
	}
	sort.Float64s(coldParse)
	sort.Float64s(coldLoad)
	sort.Float64s(coldSolve)
	report.ColdParseMS = coldParse[len(coldParse)/2]
	report.ColdLoadMS = coldLoad[len(coldLoad)/2]
	report.ColdSolveMS = coldSolve[len(coldSolve)/2]
	report.ColdMS = report.ColdParseMS + report.ColdLoadMS + report.ColdSolveMS
	if report.WarmMS > 0 {
		report.Speedup = report.ColdMS / report.WarmMS
	}

	fmt.Printf("restart: %d facts — cold %.0fms (parse %.0f + load %.0f + solve %.0f), warm %.0fms (open %.0f + solve %.0f), %.2fx; replay %d records, %.0f MB/s\n",
		report.Facts, report.ColdMS, report.ColdParseMS, report.ColdLoadMS, report.ColdSolveMS,
		report.WarmMS, report.WarmOpenMS, report.WarmSolveMS, report.Speedup,
		report.ReplayRecords, report.ReplayMBps)
	if err := writeReport(dir, "BENCH_restart.json", report); err != nil {
		return err
	}
	if assertSpeedup > 0 {
		if report.Speedup < assertSpeedup {
			return fmt.Errorf("warm restart speedup %.2fx at %d facts below required %.2fx",
				report.Speedup, report.Facts, assertSpeedup)
		}
		fmt.Printf("restart speedup assertion ok: %.2fx ≥ %.2fx at %d facts\n",
			report.Speedup, assertSpeedup, report.Facts)
	}
	return nil
}
