package tecore_test

import (
	"fmt"
	"math/rand"
	"testing"

	tecore "repro"
)

// The component-decomposed solver's contract: partitioning the ground
// network into independent conflict components and solving them
// separately — with per-component engines, in parallel, and with
// per-component solution caching on the incremental path — produces the
// same Resolution as the monolithic solve. These tests drive randomized
// add/remove/solve sequences whose deltas merge components (bridge facts
// connecting two subjects' conflict chains) and split them (removing
// chain or bridge facts), comparing against the monolithic path and the
// from-scratch component path at parallelism 1 and N.

// componentProgram has an inference rule (so components contain derived
// atoms), a per-subject disjointness chain (intra-component conflicts)
// and a shared-club constraint that lets bridge facts merge the
// components of two subjects.
const componentProgram = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
star: quad(x, coach, y, t) ^ quad(z, coach, y, t') ^ x != z -> disjoint(t, t') w = inf
`

// componentPool builds per-subject conflict chains (boundary-overlapping
// coach spells at subject-unique clubs), playsFor facts feeding the
// inference rule, and cross-subject bridge facts (a subject coaching the
// previous subject's first club at overlapping times). Confidences are
// full-precision randoms, so MAP optima are unique and the exact engine
// must return identical assignments on any decomposition.
func componentPool(subjects, spells int, seed int64) []tecore.Quad {
	rng := rand.New(rand.NewSource(seed))
	conf := func() float64 { return 0.5 + 0.45*rng.Float64() }
	var pool []tecore.Quad
	for s := 0; s < subjects; s++ {
		subj := fmt.Sprintf("P%d", s)
		start := int64(2000)
		for c := 0; c < spells; c++ {
			club := fmt.Sprintf("Club_%d_%d", s, c)
			end := start + 2 + int64(rng.Intn(3))
			pool = append(pool, tecore.NewQuad(subj, "coach", club, tecore.MustInterval(start, end), conf()))
			start = end // boundary overlap chains the component
		}
		pool = append(pool,
			tecore.NewQuad(subj, "playsFor", fmt.Sprintf("Club_%d_0", s), tecore.MustInterval(1990, 1995), conf()))
		if s > 0 {
			// Bridge: subject s coaches subject s-1's first club at a
			// time overlapping both first spells — its star grounding
			// merges the two subjects' components.
			pool = append(pool,
				tecore.NewQuad(subj, "coach", fmt.Sprintf("Club_%d_0", s-1), tecore.MustInterval(2000, 2002), conf()))
		}
	}
	return pool
}

// exactEverywhere forces both the monolithic and the per-component path
// onto the exact branch-and-bound engine, where the unique MAP optimum
// makes results provably byte-identical.
func exactEverywhere(opts tecore.SolveOptions) tecore.SolveOptions {
	opts.Advanced.MLN.MaxSAT.ExactVarLimit = 4096
	opts.ComponentExactLimit = 4096
	return opts
}

// TestComponentMatchesMonolithicMLNExact: randomized add/remove/solve
// sequences; at each step the component-decomposed incremental session
// must return a Resolution byte-identical to a monolithic from-scratch
// solve over the same live graph. Both paths solve exactly, so the
// unique optimum leaves no tie-breaking slack.
func TestComponentMatchesMonolithicMLNExact(t *testing.T) {
	pool := componentPool(4, 3, 41)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			incOpts := exactEverywhere(tecore.SolveOptions{
				Solver: tecore.SolverMLN, Parallelism: par, ComponentSolve: true})
			freshOpts := exactEverywhere(tecore.SolveOptions{
				Solver: tecore.SolverMLN, Parallelism: par})
			runTwoWaysProgram(t, componentProgram, pool, incOpts, freshOpts, 43, 12, 17)
		})
	}
}

// TestComponentMatchesMonolithicMLNCold compares cold component solves
// (fresh sessions on both sides via ColdStart, so no cache or warm
// state) against the monolithic exact path across the same mutation
// stream.
func TestComponentMatchesMonolithicMLNCold(t *testing.T) {
	pool := componentPool(3, 3, 59)
	incOpts := exactEverywhere(tecore.SolveOptions{
		Solver: tecore.SolverMLN, ComponentSolve: true, ColdStart: true})
	freshOpts := exactEverywhere(tecore.SolveOptions{Solver: tecore.SolverMLN})
	runTwoWaysProgram(t, componentProgram, pool, incOpts, freshOpts, 61, 10, 17)
}

// TestComponentMatchesMonolithicPSL: the HL-MRF objective decomposes
// exactly, but per-component ADMM stops on per-component residuals, so
// soft values agree only to within the convergence tolerance — the
// discrete resolution must match and confidences are compared
// numerically.
func TestComponentMatchesMonolithicPSL(t *testing.T) {
	pool := componentPool(3, 3, 67)
	incOpts := tecore.SolveOptions{Solver: tecore.SolverPSL, ComponentSolve: true, ColdStart: true}
	freshOpts := tecore.SolveOptions{Solver: tecore.SolverPSL, ColdStart: true}
	runTwoWaysProgram(t, componentProgram, pool, incOpts, freshOpts, 71, 8, -1)
}

// TestComponentIncrementalMatchesFreshComponent: with ComponentSolve on
// both sides, the cached incremental path (dirty components re-solved,
// clean ones reused, warm starts on) must be byte-identical to a fresh
// component-decomposed solve — the exact engine guarantees it even
// through the solution cache.
func TestComponentIncrementalMatchesFreshComponent(t *testing.T) {
	pool := componentPool(4, 3, 73)
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("mln-exact/parallel=%d", par), func(t *testing.T) {
			opts := exactEverywhere(tecore.SolveOptions{
				Solver: tecore.SolverMLN, Parallelism: par, ComponentSolve: true})
			runTwoWaysProgram(t, componentProgram, pool, opts, opts, 79, 12, 17)
		})
	}
	// Through the local-search engine, cold: the canonical per-component
	// subproblems are byte-identical on both sides, so even the random
	// walk reproduces exactly.
	t.Run("mln-local-cold", func(t *testing.T) {
		opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true, ColdStart: true}
		opts.Advanced.MLN.ComponentExactLimit = 1 // everything through local search
		runTwoWaysProgram(t, componentProgram, componentPool(4, 4, 83), opts, opts, 89, 8, 17)
	})
	t.Run("psl-cold", func(t *testing.T) {
		opts := tecore.SolveOptions{Solver: tecore.SolverPSL, ComponentSolve: true, ColdStart: true}
		runTwoWaysProgram(t, componentProgram, componentPool(3, 3, 97), opts, opts, 101, 8, 17)
	})
}

// TestComponentParallelismDeterminism drives two component-decomposed
// incremental sessions through the same mutation stream at parallelism
// 1 and N: Resolutions and raw truth vectors must be identical at every
// step, cached components included, for both backends and the default
// engine mix (exact for small components, local search for large).
func TestComponentParallelismDeterminism(t *testing.T) {
	for _, solver := range []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL} {
		t.Run(solver.String(), func(t *testing.T) {
			pool := componentPool(5, 4, 103)
			mkSession := func() *tecore.Session {
				s := tecore.NewSession()
				if err := s.LoadProgramText(componentProgram); err != nil {
					t.Fatal(err)
				}
				return s
			}
			seq, par := mkSession(), mkSession()
			rng := rand.New(rand.NewSource(107))
			live := make(map[int]bool)
			apply := func(s *tecore.Session, i int, add bool) {
				if add {
					if err := s.AddFact(pool[i]); err != nil {
						t.Fatal(err)
					}
				} else {
					s.RemoveFact(pool[i])
				}
			}
			for i := range pool {
				if i%2 == 0 {
					apply(seq, i, true)
					apply(par, i, true)
					live[i] = true
				}
			}
			for step := 0; step < 8; step++ {
				for m := 0; m < 1+rng.Intn(3); m++ {
					i := rng.Intn(len(pool))
					add := !live[i] || rng.Intn(2) == 0
					apply(seq, i, add)
					apply(par, i, add)
					live[i] = add
				}
				// Exercise both engines: tiny exact limit shunts larger
				// components to local search.
				mk := func(parallelism int) tecore.SolveOptions {
					o := tecore.SolveOptions{Solver: solver, Parallelism: parallelism, ComponentSolve: true}
					o.ComponentExactLimit = 4
					return o
				}
				a, err := seq.Solve(mk(1))
				if err != nil {
					t.Fatalf("step %d: parallel=1: %v", step, err)
				}
				b, err := par.Solve(mk(8))
				if err != nil {
					t.Fatalf("step %d: parallel=8: %v", step, err)
				}
				if ca, cb := canonResolution(a, 17), canonResolution(b, 17); ca != cb {
					t.Fatalf("step %d: resolution differs between parallelism 1 and 8\n1:\n%s\n8:\n%s", step, ca, cb)
				}
				if len(a.Output.Truth) != len(b.Output.Truth) {
					t.Fatalf("step %d: truth lengths differ", step)
				}
				for i := range a.Output.Truth {
					if a.Output.Truth[i] != b.Output.Truth[i] {
						t.Fatalf("step %d: truth[%d] differs between parallelism 1 and 8", step, i)
					}
				}
			}
		})
	}
}

// TestComponentEngineFallback starves the exact engine's node budget so
// a component within ComponentExactLimit cannot finish branch-and-bound:
// the orchestrator must fall back to local search for that component,
// record the fallback in the stats, and still return a feasible state.
func TestComponentEngineFallback(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadGraph(componentPool(2, 5, 109)); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(componentProgram); err != nil {
		t.Fatal(err)
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}
	opts.ComponentExactLimit = 4096
	opts.Advanced.MLN.MaxSAT.NodeLimit = 2
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Stats.Components
	if cs == nil {
		t.Fatal("no component stats on a component solve")
	}
	if cs.Fallbacks == 0 || cs.Engines["exact→local"] == 0 {
		t.Fatalf("node-limit exhaustion not recorded as fallback: %+v", cs)
	}
	if !res.Output.MLN.HardSatisfied {
		t.Fatal("fallback solve left hard constraints violated")
	}
	if res.Output.MLN.Optimal {
		t.Fatal("fallback solve must not claim optimality")
	}
}

// TestComponentStatsShape solves a clustered dataset and sanity-checks
// the reported decomposition: roughly one multi-atom component per
// cluster, a populated histogram and engine tallies, and full coverage
// of the input facts.
func TestComponentStatsShape(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 25, ClusterSize: 6, BridgeRate: 0.2, Seed: 5})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Stats.Components
	if cs == nil {
		t.Fatal("no component stats")
	}
	if cs.Count < 15 || cs.Count > 25 {
		t.Errorf("component count = %d, want ≈ clusters minus bridge merges (25 - ~5)", cs.Count)
	}
	if cs.Largest < 6 {
		t.Errorf("largest component = %d atoms, want ≥ cluster size", cs.Largest)
	}
	if cs.Solved != cs.Count || cs.Reused != 0 {
		t.Errorf("cold solve should solve every component: %+v", cs)
	}
	if len(cs.SizeHistogram) == 0 || len(cs.Engines) == 0 {
		t.Errorf("histogram/engine tallies missing: %+v", cs)
	}
	if got := res.Stats.KeptFacts + res.Stats.RemovedFacts; got != len(ds.Graph) {
		t.Errorf("kept+removed = %d, want %d input facts", got, len(ds.Graph))
	}
}

// TestComponentCacheInvalidatedByOptions re-solves an unchanged graph
// with different engine tuning: cached solutions were computed under
// the old options and must not be reused, while a same-options re-solve
// reuses everything.
func TestComponentCacheInvalidatedByOptions(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 10, ClusterSize: 5, Seed: 13})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
		t.Fatal(err)
	}
	mk := func(limit int) tecore.SolveOptions {
		return tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true, ComponentExactLimit: limit}
	}
	if _, err := s.Solve(mk(1)); err != nil { // everything via local search
		t.Fatal(err)
	}
	res, err := s.Solve(mk(1)) // same options, no delta: full reuse
	if err != nil {
		t.Fatal(err)
	}
	if cs := res.Stats.Components; cs.Reused != cs.Count {
		t.Fatalf("same-options re-solve should reuse everything: %+v", cs)
	}
	res, err = s.Solve(mk(64)) // new exact limit: caches must drop
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Stats.Components
	if cs.Reused != 0 || cs.Solved != cs.Count {
		t.Fatalf("options change must invalidate the component cache: %+v", cs)
	}
	if cs.Engines["exact"] == 0 {
		t.Fatalf("re-solve did not run the requested exact engine: %+v", cs)
	}
}

// TestComponentCacheSkipsUnconvergedPSL starves ADMM's iteration budget
// so no component converges: a re-solve must not reuse the unconverged
// iterates (or report them as converged) — it resumes iterating instead.
func TestComponentCacheSkipsUnconvergedPSL(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 6, ClusterSize: 5, Seed: 17})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
		t.Fatal(err)
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverPSL, ComponentSolve: true}
	opts.Advanced.PSL.MaxIter = 1
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.PSL.Converged {
		t.Fatal("one ADMM sweep cannot have converged; bad test setup")
	}
	res, err = s.Solve(opts) // no delta: unconverged entries must not be reused
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Stats.Components
	if cs.Reused != 0 || cs.Solved != cs.Count {
		t.Fatalf("unconverged components were reused from cache: %+v", cs)
	}
	if res.Output.PSL.Converged {
		t.Fatal("re-solve fabricated convergence from cached unconverged state")
	}
}

// TestComponentCacheReuse checks the incremental contract the layer
// exists for: after a warm solve, a single-fact delta re-solves only
// the dirtied component and reuses every other cached solution.
func TestComponentCacheReuse(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 20, ClusterSize: 5, Seed: 7})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
		t.Fatal(err)
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	// Touch one cluster.
	probe := tecore.NewQuad("player/00003", "playsFor", "club/00003/0/probe",
		tecore.MustInterval(1991, 1993), 0.55)
	if err := s.AddFact(probe); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Stats.Components
	if !res.Incremental || cs == nil {
		t.Fatalf("expected incremental component solve, got %+v", res.Stats)
	}
	if cs.Reused == 0 || cs.Reused < cs.Count-3 {
		t.Errorf("delta dirtied more than its component: %d reused of %d", cs.Reused, cs.Count)
	}
	if cs.Solved == 0 {
		t.Errorf("the dirtied component was not re-solved: %+v", cs)
	}
}
