package tecore_test

import (
	"bytes"
	"strings"
	"testing"

	tecore "repro"
)

const figure1 = `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`

const figure4and6 = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf
`

// TestQuickstart is the package-documentation flow end to end.
func TestQuickstart(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadGraphText(figure1); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(figure4and6); err != nil {
		t.Fatal(err)
	}
	for _, solver := range []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL} {
		res, err := s.Solve(tecore.SolveOptions{Solver: solver})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if res.Stats.RemovedFacts != 1 || res.Removed[0].Quad.Object.Value != "Napoli" {
			t.Errorf("%v: removed %v", solver, res.Removed)
		}
		if res.Stats.KeptFacts != 4 {
			t.Errorf("%v: kept %d", solver, res.Stats.KeptFacts)
		}
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	g, err := tecore.ParseGraphString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tecore.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := tecore.ParseGraph(&buf)
	if err != nil || len(back) != len(g) {
		t.Fatalf("round trip: %v (%d facts)", err, len(back))
	}
}

func TestRulesFacade(t *testing.T) {
	prog, err := tecore.ParseRules(figure4and6)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	text := tecore.FormatRules(prog)
	if !strings.Contains(text, "disjoint(t, t')") {
		t.Errorf("FormatRules output missing constraint: %q", text)
	}
	back, err := tecore.ParseRules(text)
	if err != nil || len(back.Rules) != 4 {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestConstraintBuilders(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadGraphText(figure1); err != nil {
		t.Fatal(err)
	}
	c, err := tecore.AllenConstraint("c2", "coach", "coach", "disjoint", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(c); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RemovedFacts != 1 {
		t.Errorf("removed = %d", res.Stats.RemovedFacts)
	}
	if _, err := tecore.FunctionalConstraint("c3", "bornIn"); err != nil {
		t.Errorf("FunctionalConstraint: %v", err)
	}
}

func TestGeneratorsThroughFacade(t *testing.T) {
	fb := tecore.GenerateFootball(tecore.FootballConfig{Players: 100, Seed: 1})
	if len(fb.Graph) < 200 {
		t.Errorf("football graph too small: %d", len(fb.Graph))
	}
	wd := tecore.GenerateWikidata(tecore.WikidataConfig{Scale: 0.002, Seed: 1})
	if len(wd.Graph) == 0 {
		t.Error("wikidata graph empty")
	}
	if _, err := tecore.ParseRules(tecore.FootballProgram); err != nil {
		t.Errorf("FootballProgram: %v", err)
	}
	if _, err := tecore.ParseRules(tecore.WikidataProgram); err != nil {
		t.Errorf("WikidataProgram: %v", err)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := tecore.MustInterval(2000, 2004)
	if iv.Duration() != 5 {
		t.Errorf("duration = %d", iv.Duration())
	}
	if _, err := tecore.NewInterval(5, 3); err == nil {
		t.Error("invalid interval accepted")
	}
	q := tecore.NewQuad("CR", "coach", "Chelsea", iv, 0.9)
	if q.Validate() != nil {
		t.Error("facade quad invalid")
	}
}

func TestParseSolverFacade(t *testing.T) {
	s, err := tecore.ParseSolver("psl")
	if err != nil || s != tecore.SolverPSL {
		t.Errorf("ParseSolver = %v, %v", s, err)
	}
}

// TestNoisyFootballRecovery is the E4 shape: at the paper's 1:1 noise
// ratio the resolver removes mostly-noise facts (precision) and catches
// a large share of the injected noise (recall).
func TestNoisyFootballRecovery(t *testing.T) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 120, NoiseRatio: 1.0, Seed: 11})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
	if err != nil {
		t.Fatal(err)
	}
	tp, fp := 0, 0
	for _, f := range res.Removed {
		if ds.Noise[f.Quad.Fact()] {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp == 0 {
		t.Fatal("nothing removed from a 1:1 noisy dataset")
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(ds.NoiseCount())
	if precision < 0.6 {
		t.Errorf("precision = %.2f (tp=%d fp=%d)", precision, tp, fp)
	}
	if recall < 0.5 {
		t.Errorf("recall = %.2f (tp=%d noise=%d)", recall, tp, ds.NoiseCount())
	}
	t.Logf("noise recovery: precision=%.3f recall=%.3f removed=%d", precision, recall, tp+fp)
}

// TestGreedyBaselineNeverBeatsMAP: on conflict datasets the MAP solver
// must remove at most the confidence mass the greedy baseline removes.
func TestGreedyBaselineNeverBeatsMAP(t *testing.T) {
	ds := tecore.GenerateFootball(tecore.FootballConfig{Players: 150, NoiseRatio: 0.6, Seed: 14})
	weights := map[string]float64{}
	for _, solverName := range []string{"greedy", "mln"} {
		solver, err := tecore.ParseSolver(solverName)
		if err != nil {
			t.Fatal(err)
		}
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(tecore.SolveOptions{Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		weights[solverName] = res.Stats.RemovedWeight
		if res.Stats.RemovedFacts == 0 {
			t.Fatalf("%s removed nothing from a noisy dataset", solverName)
		}
	}
	if weights["mln"] > weights["greedy"]+1e-6 {
		t.Errorf("MAP removed more weight (%.3f) than greedy (%.3f)", weights["mln"], weights["greedy"])
	}
	t.Logf("removed weight: greedy=%.2f mln=%.2f", weights["greedy"], weights["mln"])
}
