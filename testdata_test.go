package tecore_test

import (
	"os"
	"testing"

	tecore "repro"
)

// The shipped sample files must stay loadable and reproduce Figure 7;
// they double as CLI demo inputs (see README).
func TestShippedRunningExampleFiles(t *testing.T) {
	data, err := os.Open("testdata/running-example.tq")
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	g, err := tecore.ParseGraph(data)
	if err != nil {
		t.Fatalf("parsing shipped dataset: %v", err)
	}
	if len(g) != 5 {
		t.Fatalf("shipped dataset has %d facts", len(g))
	}

	rulesText, err := os.ReadFile("testdata/running-example.tcr")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tecore.ParseRules(string(rulesText))
	if err != nil {
		t.Fatalf("parsing shipped rules: %v", err)
	}
	if len(prog.Rules) != 6 {
		t.Fatalf("shipped rules = %d, want 6 (f1-f3, c1-c3)", len(prog.Rules))
	}

	s := tecore.NewSession()
	if err := s.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(string(rulesText)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RemovedFacts != 1 || res.Removed[0].Quad.Object.Value != "Napoli" {
		t.Errorf("shipped example: removed = %v", res.Removed)
	}
	if len(res.Removed[0].Explanations) == 0 || res.Removed[0].Explanations[0].Rule != "c2" {
		t.Errorf("shipped example: explanations = %v", res.Removed[0].Explanations)
	}
}
