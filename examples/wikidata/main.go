// Wikidata runs temporal conflict resolution over a Wikidata-profile
// knowledge graph — the paper's second demo dataset — and compares the
// two reasoners: nRockIt-style MLN inference (exact, more expressive)
// against nPSL (soft approximation, faster), reporting runtimes and
// whether the two backends agree on which facts to remove.
package main

import (
	"fmt"
	"log"
	"time"

	tecore "repro"
)

func main() {
	ds := tecore.GenerateWikidata(tecore.WikidataConfig{
		Scale:      0.002, // ≈8k facts: fast enough for a demo run
		NoiseRatio: 0.042, // Figure 8's conflicting-fact rate
		Seed:       7,
	})
	fmt.Printf("dataset: %d facts (%d injected noise)\n", len(ds.Graph), ds.NoiseCount())

	removedBy := map[string]map[string]bool{}
	for _, solverName := range []string{"mln", "psl"} {
		solver, err := tecore.ParseSolver(solverName)
		if err != nil {
			log.Fatal(err)
		}
		s := tecore.NewSession()
		if err := s.LoadGraph(ds.Graph); err != nil {
			log.Fatal(err)
		}
		if err := s.LoadProgramText(tecore.WikidataProgram); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := s.Solve(tecore.SolveOptions{Solver: solver})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		removed := map[string]bool{}
		for _, f := range res.Removed {
			removed[f.Quad.Fact().String()] = true
		}
		removedBy[solverName] = removed

		fmt.Printf("\n%-4s: removed %d conflicting facts, %d clusters, total %v\n",
			solverName, res.Stats.RemovedFacts, res.Stats.ConflictClusters, elapsed)
		for _, ps := range s.Predicates() {
			fmt.Printf("      %-12s %6d facts\n", ps.Predicate, ps.Count)
		}
	}

	both, onlyMLN, onlyPSL := 0, 0, 0
	for k := range removedBy["mln"] {
		if removedBy["psl"][k] {
			both++
		} else {
			onlyMLN++
		}
	}
	for k := range removedBy["psl"] {
		if !removedBy["mln"][k] {
			onlyPSL++
		}
	}
	fmt.Printf("\nagreement on removals: both %d, mln-only %d, psl-only %d\n", both, onlyMLN, onlyPSL)
}
