// Quickstart reproduces the paper's running example end to end: load the
// utkg of Figure 1, the inference rules of Figure 4 and the constraints
// of Figure 6, run MAP inference, and print the most probable
// conflict-free temporal knowledge graph of Figure 7.
package main

import (
	"fmt"
	"log"

	tecore "repro"
)

// Figure 1: coach Claudio Raineri's career as an uncertain temporal KG.
const data = `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`

// Figures 4 and 6: temporal inference rules and constraints.
const program = `
# f1: playing for a club implies working for it.
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
# f2: working somewhere located in a city implies living there.
f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlaps(t, t') -> quad(x, livesIn, z, intersect(t, t')) w = 1.6
# c1: born before dying.
c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf
# c2: no coaching two clubs at the same time.
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
# c3: born in a single city.
c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf
`

func main() {
	s := tecore.NewSession()
	if err := s.LoadGraphText(data); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadProgramText(program); err != nil {
		log.Fatal(err)
	}

	for _, solver := range []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL} {
		res, err := s.Solve(tecore.SolveOptions{Solver: solver})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", res.Stats.Solver)
		fmt.Println("consistent temporal KG (Figure 7):")
		for _, f := range res.Kept {
			fmt.Println("  ", f.Quad.Compact())
		}
		fmt.Println("removed as conflicting:")
		for _, f := range res.Removed {
			fmt.Println("  ", f.Quad.Compact())
		}
		fmt.Println("inferred (implicit facts made explicit):")
		for _, f := range res.Inferred {
			fmt.Println("  ", f.Quad.Compact())
		}
		fmt.Printf("stats: kept %d / removed %d / inferred %d, %d conflict cluster(s), runtime %v\n\n",
			res.Stats.KeptFacts, res.Stats.RemovedFacts, res.Stats.InferredFacts,
			res.Stats.ConflictClusters, res.Stats.Runtime)
	}

	// Sessions are stateful: after the first Solve the grounding engine
	// is cached, and fact updates re-solve through the delta path (see
	// examples/streaming for the full walk-through).
	if s.RemoveFact(tecore.NewQuad("CR", "coach", "Napoli", tecore.MustInterval(2001, 2003), 0.6)) {
		res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after retracting the Napoli spell (incremental=%v): kept %d / removed %d\n",
			res.Incremental, res.Stats.KeptFacts, res.Stats.RemovedFacts)
	}
}
