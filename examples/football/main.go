// Football debugs a noisy FootballDB-profile knowledge graph — the
// paper's "highly noisy setting where there are as many erroneous
// temporal facts as the correct ones" — and reports how precisely the
// resolver separates injected noise from clean facts.
package main

import (
	"fmt"
	"log"

	tecore "repro"
)

func main() {
	// 1:1 noise, labelled: for every clean fact the generator injects an
	// erroneous one (overlapping spell, duplicate birth date, or a
	// pre-birth career).
	ds := tecore.GenerateFootball(tecore.FootballConfig{
		Players:    250,
		NoiseRatio: 1.0,
		Seed:       42,
	})
	fmt.Printf("dataset: %d facts (%d clean + %d injected noise)\n",
		len(ds.Graph), ds.CleanCount(), ds.NoiseCount())

	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		log.Fatal(err)
	}
	// The standard football constraint set: no two teams at once, one
	// birth date, born before playing.
	if err := s.LoadProgramText(tecore.FootballProgram); err != nil {
		log.Fatal(err)
	}

	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
	if err != nil {
		log.Fatal(err)
	}

	tp, fp := 0, 0
	for _, f := range res.Removed {
		if ds.Noise[f.Quad.Fact()] {
			tp++
		} else {
			fp++
		}
	}
	fn := ds.NoiseCount() - tp
	fmt.Printf("removed %d facts in %v (%d conflict clusters)\n",
		res.Stats.RemovedFacts, res.Stats.Runtime, res.Stats.ConflictClusters)
	fmt.Printf("noise recovery: true positives %d, false positives %d, missed %d\n", tp, fp, fn)
	fmt.Printf("precision %.3f  recall %.3f\n",
		float64(tp)/float64(tp+fp), float64(tp)/float64(ds.NoiseCount()))

	fmt.Println("\nexample removed facts:")
	for i, f := range res.Removed {
		if i == 5 {
			break
		}
		tag := "clean!"
		if ds.Noise[f.Quad.Fact()] {
			tag = "noise"
		}
		fmt.Printf("  [%s] %s\n", tag, f.Quad.Compact())
	}
}
