// Suggest demonstrates automatic constraint suggestion — the research
// direction the paper's demonstration goals highlight ("automatic
// derivation or suggestion of constraints and inference rules"): mine
// candidate temporal constraints from a noisy knowledge graph, review
// their support statistics, adopt the confident ones, and debug the
// graph with them.
package main

import (
	"fmt"
	"log"

	tecore "repro"
)

func main() {
	// A moderately noisy football KG; the miner has to see through the
	// noise, so constraint confidences land below 1.0.
	ds := tecore.GenerateFootball(tecore.FootballConfig{
		Players:    500,
		NoiseRatio: 0.15,
		Seed:       9,
	})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d facts (%d injected noise)\n\n", len(ds.Graph), ds.NoiseCount())

	sugs, err := tecore.SuggestConstraints(s, tecore.SuggestOptions{MinConfidence: 0.85})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mined constraint candidates:")
	adopted := 0
	for _, sg := range sugs {
		fmt.Printf("  [%-10s] conf %.3f  support %6d  violations %5d  %s\n",
			sg.Kind, sg.Confidence, sg.Support, sg.Violations, sg.Text())
		// Adopt high-confidence suggestions into the program.
		if sg.Confidence >= 0.9 {
			if err := s.AddRule(sg.Rule); err != nil {
				log.Fatal(err)
			}
			adopted++
		}
	}
	if adopted == 0 {
		log.Fatal("no suggestion cleared the adoption bar")
	}
	fmt.Printf("\nadopted %d constraints; debugging the graph with them…\n", adopted)

	res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN})
	if err != nil {
		log.Fatal(err)
	}
	tp := 0
	for _, f := range res.Removed {
		if ds.Noise[f.Quad.Fact()] {
			tp++
		}
	}
	fmt.Printf("removed %d facts (%d of them injected noise) in %v, %d conflict clusters\n",
		res.Stats.RemovedFacts, tp, res.Stats.Runtime, res.Stats.ConflictClusters)
}
