// Streaming demonstrates the incremental session API: load a knowledge
// graph once, then stream fact updates and re-solve after each one. The
// session keeps its grounding engine and previous solution alive, so
// every re-solve after the first consumes only the store delta —
// seminaive re-grounding of the affected rules plus a warm-started
// solver — instead of paying the full load-and-solve cost again.
//
// With ComponentSolve the session additionally maintains a live,
// delta-patched Outcome and each Solve returns Resolution.Delta — the
// changelog of facts and conflict clusters that entered or left the
// repaired graph — so a streaming consumer processes diffs instead of
// re-reading the full result every update.
package main

import (
	"fmt"
	"log"

	tecore "repro"
)

const data = `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
`

const program = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`

func main() {
	s := tecore.NewSession()
	if err := s.LoadGraphText(data); err != nil {
		log.Fatal(err)
	}
	if err := s.LoadProgramText(program); err != nil {
		log.Fatal(err)
	}

	solve := func(label string) {
		// ComponentSolve keeps the read-out live: res.Delta carries only
		// what this update changed.
		res, err := s.Solve(tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true})
		if err != nil {
			log.Fatal(err)
		}
		mode := "full"
		if res.Incremental {
			mode = "incremental"
		}
		fmt.Printf("%-28s %-11s kept %d / removed %d / inferred %d (epoch %d)\n",
			label, mode, res.Stats.KeptFacts, res.Stats.RemovedFacts,
			res.Stats.InferredFacts, s.Store().Epoch())
		if d := res.Delta; d != nil {
			for _, f := range d.AddedRemoved {
				fmt.Printf("  + conflict: %s", f.Quad.Compact())
				if len(f.Explanations) > 0 {
					fmt.Printf("  — violates %s", f.Explanations[0])
				}
				fmt.Println()
			}
			for _, f := range d.RemovedRemoved {
				fmt.Printf("  - conflict resolved: %s\n", f.Quad.Compact())
			}
			for _, f := range d.AddedInferred {
				fmt.Printf("  + inferred: %s\n", f.Quad.Compact())
			}
			for _, f := range d.RemovedInferred {
				fmt.Printf("  - no longer inferred: %s\n", f.Quad.Compact())
			}
			if d.Empty() {
				fmt.Println("  (no change)")
			}
		}
	}

	// 1. Initial solve grounds the full program.
	solve("initial load")

	// 2. A new extraction arrives: an overlapping coaching spell. Only
	//    the groundings touching the new fact are added.
	napoli := tecore.NewQuad("CR", "coach", "Napoli", tecore.MustInterval(2001, 2003), 0.6)
	if err := s.AddFact(napoli); err != nil {
		log.Fatal(err)
	}
	solve("after add Napoli")

	// 3. The upstream source retracts it: the delete/rederive pass drops
	//    exactly its groundings and the conflict disappears.
	s.RemoveFact(napoli)
	solve("after remove Napoli")

	// 4. A correction re-asserts it with higher confidence; the fact is
	//    revived under its original id.
	napoli.Confidence = 0.95
	if err := s.AddFact(napoli); err != nil {
		log.Fatal(err)
	}
	solve("after re-add at 0.95")
}
