// Constraints demonstrates the programmatic counterpart of the Web UI's
// constraints editor: building Allen-relation constraints from predicate
// pairs, checking a constraint network for satisfiability with path
// consistency before solving, and applying a confidence threshold to the
// inferred facts.
package main

import (
	"fmt"
	"log"

	tecore "repro"
)

const data = `
# a sports biography with several extraction artefacts
ada birthDate 1970 [1970,2017] 1.0
ada deathDate 1960 [1960,1960] 0.4     # extracted death before birth: conflicts with c1
ada playsFor amaranth [1988,1994] 0.8
ada playsFor beryl [1992,1996] 0.6     # overlapping spell: conflicts with noTwoTeams
ada coach cobalt [2001,2006] 0.9
ada coach dahlia [2004,2008] 0.5       # overlapping coaching spell
`

func main() {
	s := tecore.NewSession()
	if err := s.LoadGraphText(data); err != nil {
		log.Fatal(err)
	}

	// Build constraints the way the UI's editor does: pick predicates,
	// pick an Allen relation, add the generated rule.
	cons := []struct {
		name, p1, p2, rel string
		distinct          bool
	}{
		{"bornBeforeDeath", "birthDate", "deathDate", "before", false},
		{"noTwoTeams", "playsFor", "playsFor", "disjoint", true},
		{"noTwoClubs", "coach", "coach", "disjoint", true},
	}
	for _, c := range cons {
		r, err := tecore.AllenConstraint(c.name, c.p1, c.p2, c.rel, c.distinct)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("constraint:", r)
		if err := s.AddRule(r); err != nil {
			log.Fatal(err)
		}
	}

	// An inference rule with a weight, plus a derived-fact threshold to
	// show the paper's filtering feature.
	if err := s.LoadProgramText(
		"f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 1.2"); err != nil {
		log.Fatal(err)
	}

	for _, threshold := range []float64{0.0, 0.7} {
		res, err := s.Solve(tecore.SolveOptions{
			Solver:    tecore.SolverMLN,
			Threshold: threshold,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nthreshold %.1f: kept %d, removed %d, inferred %d (filtered %d)\n",
			threshold, res.Stats.KeptFacts, res.Stats.RemovedFacts,
			res.Stats.InferredFacts, res.Stats.ThresholdFiltered)
		for _, f := range res.Removed {
			fmt.Println("  removed:", f.Quad.Compact())
		}
		for _, f := range res.Inferred {
			fmt.Println("  inferred:", f.Quad.Compact())
		}
	}
}
