package tecore_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	tecore "repro"
	"repro/internal/rdf"
	"repro/internal/repair"
)

// The delta-maintained Outcome's contract: the live, patched Outcome a
// component-decomposed incremental session materializes is byte-
// identical to a fresh whole-graph repair.Resolve over the same solver
// output at every step and every parallelism setting, and the
// OutcomeDelta changelog is complete — replaying it over the previous
// outcome reproduces the new one, fact for fact and cluster for
// cluster. The suite drives randomized add/remove/solve sequences
// (including bridge facts that merge and split components) with
// mid-stream threshold and solver changes that invalidate the read-out
// caches.

// shadowOutcome replays OutcomeDelta changelogs: per-class fact maps
// keyed by statement, cluster set keyed by membership.
type shadowOutcome struct {
	kept, removed, inferred map[string]string
	clusters                map[string]bool
}

func newShadow() *shadowOutcome {
	return &shadowOutcome{
		kept:     map[string]string{},
		removed:  map[string]string{},
		inferred: map[string]string{},
		clusters: map[string]bool{},
	}
}

func factKey(f tecore.Fact) string { return f.Quad.Fact().String() }

// factVal renders the full fact content, so a confidence or
// explanation change that the changelog must report is caught.
func factVal(f tecore.Fact) string { return fmt.Sprintf("%+v", f) }

func clusterID(cl []string) string { return strings.Join(cl, " | ") }

// renderFactKeys gives a cluster a stable identity: its sorted member
// statements joined.
func renderFactKeys(cl []rdf.FactKey) string {
	keys := make([]string, 0, len(cl))
	for _, k := range cl {
		keys = append(keys, k.String())
	}
	return clusterID(keys)
}

func (s *shadowOutcome) apply(t *testing.T, d *tecore.OutcomeDelta) {
	t.Helper()
	rm := func(m map[string]string, fs []tecore.Fact, list string) {
		for _, f := range fs {
			if _, ok := m[factKey(f)]; !ok {
				t.Fatalf("delta removes %s from %s, which does not hold it", factKey(f), list)
			}
			delete(m, factKey(f))
		}
	}
	add := func(m map[string]string, fs []tecore.Fact, list string) {
		for _, f := range fs {
			if _, ok := m[factKey(f)]; ok {
				t.Fatalf("delta adds %s to %s, which already holds it", factKey(f), list)
			}
			m[factKey(f)] = factVal(f)
		}
	}
	rm(s.kept, d.RemovedKept, "kept")
	rm(s.removed, d.RemovedRemoved, "removed")
	rm(s.inferred, d.RemovedInferred, "inferred")
	add(s.kept, d.AddedKept, "kept")
	add(s.removed, d.AddedRemoved, "removed")
	add(s.inferred, d.AddedInferred, "inferred")
	for _, cl := range d.RemovedClusters {
		id := renderFactKeys(cl)
		if !s.clusters[id] {
			t.Fatalf("delta removes unknown cluster %s", id)
		}
		delete(s.clusters, id)
	}
	for _, cl := range d.AddedClusters {
		id := renderFactKeys(cl)
		if s.clusters[id] {
			t.Fatalf("delta adds duplicate cluster %s", id)
		}
		s.clusters[id] = true
	}
}

// assertMatches checks the replayed shadow equals the materialized
// Outcome.
func (s *shadowOutcome) assertMatches(t *testing.T, oc *tecore.Outcome) {
	t.Helper()
	check := func(m map[string]string, fs []tecore.Fact, list string) {
		if len(m) != len(fs) {
			t.Fatalf("%s: shadow holds %d facts, outcome %d", list, len(m), len(fs))
		}
		for _, f := range fs {
			if v, ok := m[factKey(f)]; !ok || v != factVal(f) {
				t.Fatalf("%s: outcome fact %s not reproduced by the changelog (shadow %q, outcome %q)",
					list, factKey(f), v, factVal(f))
			}
		}
	}
	check(s.kept, oc.Kept, "kept")
	check(s.removed, oc.Removed, "removed")
	check(s.inferred, oc.Inferred, "inferred")
	if len(s.clusters) != len(oc.Clusters) {
		t.Fatalf("clusters: shadow holds %d, outcome %d", len(s.clusters), len(oc.Clusters))
	}
	for i := range oc.Clusters {
		keys := make([]string, 0, len(oc.Clusters[i]))
		for _, k := range oc.Clusters[i] {
			keys = append(keys, k.String())
		}
		if !s.clusters[clusterID(keys)] {
			t.Fatalf("clusters: outcome cluster %s not reproduced by the changelog", clusterID(keys))
		}
	}
}

// assertLiveByteIdentical compares the live-patched Outcome against a
// fresh whole-graph Resolve over the exact same solver output.
func assertLiveByteIdentical(t *testing.T, step int, res *tecore.Resolution, prog *tecore.Program, threshold float64) {
	t.Helper()
	ocs := res.Stats.Outcome
	if ocs == nil || ocs.Mode != tecore.OutcomeLive {
		t.Fatalf("step %d: component solve did not take the live outcome path: %+v", step, ocs)
	}
	if res.Delta == nil {
		t.Fatalf("step %d: live path returned no changelog", step)
	}
	whole, err := repair.Resolve(res.Output, prog, repair.Options{Threshold: threshold})
	if err != nil {
		t.Fatalf("step %d: whole-graph resolve: %v", step, err)
	}
	a, b := *res.Outcome, *whole
	a.Stats.Repair, b.Stats.Repair = nil, nil // stage stats differ by design
	a.Stats.Outcome, b.Stats.Outcome = nil, nil
	a.Stats.Ground, b.Stats.Ground = nil, nil
	a.Stats.Plan, b.Stats.Plan = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("step %d: live outcome diverged from whole-graph assembly\nlive:  %+v\nwhole: %+v",
			step, a.Stats, b.Stats)
	}
}

func runLiveOutcomeDifferential(t *testing.T, solver tecore.Solver, threshold float64, par int, seed int64, steps int) {
	t.Helper()
	pool := componentPool(4, 3, seed)
	s := tecore.NewSession()
	if err := s.LoadProgramText(componentProgram); err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		if i%3 == 0 {
			if err := s.AddFact(pool[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(seed + 1))
	shadow := newShadow()
	curThreshold := threshold
	for step := 0; step < steps; step++ {
		// Mid-stream threshold flip: the read-out caches and the live
		// outcome must drop; the next delta reports the full state as
		// added over an empty previous state.
		invalidated := false
		if threshold > 0 && step == steps/2 {
			if curThreshold == threshold {
				curThreshold = 0
			} else {
				curThreshold = threshold
			}
			invalidated = true
		}
		for m := 0; m < 1+rng.Intn(3); m++ {
			i := rng.Intn(len(pool))
			switch op := rng.Intn(4); {
			case op < 2:
				q := pool[i]
				if rng.Intn(2) == 0 {
					q.Confidence = 0.5 + 0.4*rng.Float64()
				}
				if err := s.AddFact(q); err != nil {
					t.Fatal(err)
				}
			case op < 3:
				s.RemoveFact(pool[i])
			default:
				s.RemoveFact(pool[i])
				if err := s.AddFact(pool[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := s.Solve(tecore.SolveOptions{
			Solver: solver, ComponentSolve: true, Threshold: curThreshold, Parallelism: par})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		assertLiveByteIdentical(t, step, res, s.Program(), curThreshold)
		if invalidated {
			d := res.Delta
			if n := len(d.RemovedKept) + len(d.RemovedRemoved) + len(d.RemovedInferred) + len(d.RemovedClusters); n != 0 {
				t.Fatalf("step %d: post-invalidation delta removed %d entries from a fresh live outcome", step, n)
			}
			shadow = newShadow()
		}
		shadow.apply(t, res.Delta)
		shadow.assertMatches(t, res.Outcome)
	}
}

func TestLiveOutcomeDifferentialMLNExact(t *testing.T) {
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			runLiveOutcomeDifferential(t, tecore.SolverMLN, 0, par, 211, 12)
		})
	}
}

func TestLiveOutcomeDifferentialMLNThreshold(t *testing.T) {
	// A positive threshold exercises the ThresholdFiltered split and,
	// flipped mid-stream, the cache-invalidation path of the live
	// outcome.
	runLiveOutcomeDifferential(t, tecore.SolverMLN, 0.6, 0, 223, 12)
}

func TestLiveOutcomeDifferentialPSL(t *testing.T) {
	// Same solver output on both sides, so even PSL's soft-value-derived
	// confidences must agree bitwise — and every ADMM resumption that
	// moves a confidence must surface in the changelog.
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			runLiveOutcomeDifferential(t, tecore.SolverPSL, 0, par, 227, 10)
		})
	}
}

// TestLiveOutcomeSolverSwitch alternates MLN and PSL on one session:
// each switch drops the read-out caches and the live outcome, so every
// post-switch delta must rebuild from empty (no removals) while the
// materialized Outcome stays byte-identical to whole-graph assembly.
func TestLiveOutcomeSolverSwitch(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadProgramText(componentProgram); err != nil {
		t.Fatal(err)
	}
	for _, q := range componentPool(3, 3, 229) {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	solvers := []tecore.Solver{tecore.SolverMLN, tecore.SolverPSL, tecore.SolverMLN}
	for step, solver := range solvers {
		res, err := s.Solve(tecore.SolveOptions{Solver: solver, ComponentSolve: true})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		assertLiveByteIdentical(t, step, res, s.Program(), 0)
		d := res.Delta
		if n := len(d.RemovedKept) + len(d.RemovedRemoved) + len(d.RemovedInferred); n != 0 {
			t.Fatalf("step %d: solver switch delta removed %d facts from a fresh live outcome", step, n)
		}
		if len(d.AddedKept) != res.Stats.KeptFacts {
			t.Fatalf("step %d: post-switch delta added %d kept facts, outcome holds %d",
				step, len(d.AddedKept), res.Stats.KeptFacts)
		}
		shadow := newShadow()
		shadow.apply(t, d)
		shadow.assertMatches(t, res.Outcome)
	}
}

// TestOutcomeDeltaEmptyOnNoOpSolve re-solves an unchanged session: the
// live outcome must reuse every component and report an empty
// changelog.
func TestOutcomeDeltaEmptyOnNoOpSolve(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 12, ClusterSize: 5, Seed: 19})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
		t.Fatal(err)
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta == nil || !res.Delta.Empty() {
		t.Fatalf("no-op solve produced a non-empty delta: %+v", res.Delta)
	}
	ocs := res.Stats.Outcome
	if ocs.Patched != 0 || ocs.Reused == 0 {
		t.Fatalf("no-op solve patched %d components, reused %d", ocs.Patched, ocs.Reused)
	}
}

// TestOutcomeDeltaRevival walks a fact through tombstone and revival:
// removing the dominant statement revives its conflict partner into
// the kept list, and re-adding the tombstoned fact must surface it in
// AddedKept (revival keeps the original identity).
func TestOutcomeDeltaRevival(t *testing.T) {
	s := tecore.NewSession()
	if err := s.LoadProgramText(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf"); err != nil {
		t.Fatal(err)
	}
	chelsea := tecore.NewQuad("CR", "coach", "Chelsea", tecore.MustInterval(2000, 2004), 0.9)
	napoli := tecore.NewQuad("CR", "coach", "Napoli", tecore.MustInterval(2001, 2003), 0.6)
	for _, q := range []tecore.Quad{chelsea, napoli} {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RemovedFacts != 1 {
		t.Fatalf("fixture should remove exactly the Napoli spell: %+v", res.Stats)
	}
	hasKey := func(fs []tecore.Fact, q tecore.Quad) bool {
		for _, f := range fs {
			if f.Quad.Fact() == q.Fact() {
				return true
			}
		}
		return false
	}

	// Tombstone the winner: the loser revives into kept.
	s.RemoveFact(chelsea)
	res, err = s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKey(res.Delta.AddedKept, napoli) || !hasKey(res.Delta.RemovedRemoved, napoli) {
		t.Fatalf("conflict partner did not move removed→kept in the changelog: %+v", res.Delta)
	}
	if !hasKey(res.Delta.RemovedKept, chelsea) {
		t.Fatalf("tombstoned fact did not leave the kept list: %+v", res.Delta)
	}

	// Revive it: the fact reappears in AddedKept.
	if err := s.AddFact(chelsea); err != nil {
		t.Fatal(err)
	}
	res, err = s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKey(res.Delta.AddedKept, chelsea) {
		t.Fatalf("revived fact missing from AddedKept: %+v", res.Delta)
	}
	if !hasKey(res.Delta.AddedRemoved, napoli) || !hasKey(res.Delta.RemovedKept, napoli) {
		t.Fatalf("revival did not push the partner back to removed: %+v", res.Delta)
	}
}

// TestOutcomeDeltaClusterScoped: a single-fact update on a clustered
// graph must confine the changelog — facts and clusters — to the one
// dirtied component; every untouched cluster's identity is stable
// across reuse and appears in no delta list.
func TestOutcomeDeltaClusterScoped(t *testing.T) {
	ds := tecore.GenerateClustered(tecore.ClusteredConfig{Clusters: 20, ClusterSize: 5, Seed: 7})
	s := tecore.NewSession()
	if err := s.LoadGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(tecore.ClusteredProgram); err != nil {
		t.Fatal(err)
	}
	opts := tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Stats.ConflictClusters
	probe := tecore.NewQuad("player/00003", "playsFor", "club/00003/0/probe",
		tecore.MustInterval(1991, 1993), 0.55)
	if err := s.AddFact(probe); err != nil {
		t.Fatal(err)
	}
	res, err = s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	ocs := res.Stats.Outcome
	if ocs.Patched == 0 || ocs.Patched > 3 || ocs.Reused < ocs.Patched {
		t.Fatalf("single-fact update should patch only its component: %+v", ocs)
	}
	d := res.Delta
	mentions := func(keys []string) {
		t.Helper()
		for _, k := range keys {
			if !strings.Contains(k, "00003") {
				t.Fatalf("changelog touched a clean component: %s (delta %+v)", k, d)
			}
		}
	}
	for _, fs := range [][]tecore.Fact{
		d.AddedKept, d.RemovedKept, d.AddedRemoved, d.RemovedRemoved, d.AddedInferred, d.RemovedInferred} {
		for _, f := range fs {
			mentions([]string{f.Quad.Fact().String()})
		}
	}
	for _, cls := range [][][]rdf.FactKey{d.AddedClusters, d.RemovedClusters} {
		for _, cl := range cls {
			for _, k := range cl {
				mentions([]string{k.String()})
			}
		}
	}
	if got := res.Stats.ConflictClusters; got < before {
		t.Fatalf("probe should not shrink the cluster count: %d → %d", before, got)
	}
}

// TestOutcomeAssembledKnob: AssembledOutcome forces the sort/merge
// assembly (no changelog), and interleaving assembled and live solves
// must not let the live outcome replay stale state afterwards.
func TestOutcomeAssembledKnob(t *testing.T) {
	pool := componentPool(3, 3, 233)
	s := tecore.NewSession()
	if err := s.LoadProgramText(componentProgram); err != nil {
		t.Fatal(err)
	}
	for i := range pool {
		if i%2 == 0 {
			if err := s.AddFact(pool[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	live := exactEverywhere(tecore.SolveOptions{Solver: tecore.SolverMLN, ComponentSolve: true})
	assembled := live
	assembled.AssembledOutcome = true

	res, err := s.Solve(live)
	if err != nil {
		t.Fatal(err)
	}
	assertLiveByteIdentical(t, 0, res, s.Program(), 0)

	// Assembled solve on the warm session: same Outcome, no delta.
	res2, err := s.Solve(assembled)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delta != nil {
		t.Fatal("assembled solve must not report a changelog")
	}
	if ocs := res2.Stats.Outcome; ocs == nil || ocs.Mode != tecore.OutcomeAssembled {
		t.Fatalf("AssembledOutcome did not force assembly: %+v", res2.Stats.Outcome)
	}
	a, b := *res.Outcome, *res2.Outcome
	a.Stats.Repair, b.Stats.Repair = nil, nil
	a.Stats.Outcome, b.Stats.Outcome = nil, nil
	a.Stats.Ground, b.Stats.Ground = nil, nil
	a.Stats.Plan, b.Stats.Plan = nil, nil
	a.Stats.Runtime, b.Stats.Runtime = 0, 0
	a.Stats.Components, b.Stats.Components = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatal("assembled and live outcomes diverged on an unchanged session")
	}

	// Mutate while the live outcome is dropped, then go live again: the
	// repair cache moved past the dropped live state, so the live path
	// must rebuild, not replay.
	if err := s.AddFact(pool[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(assembled); err != nil {
		t.Fatal(err)
	}
	s.RemoveFact(pool[2])
	res3, err := s.Solve(live)
	if err != nil {
		t.Fatal(err)
	}
	assertLiveByteIdentical(t, 3, res3, s.Program(), 0)
}
