package tecore_test

import (
	"fmt"
	"math/rand"
	"testing"

	tecore "repro"
)

// The batch-delta contract: ApplyBatch(add, remove) followed by one
// Solve produces a Resolution byte-identical to applying the same
// mutations one fact at a time (removes first, then adds — the batch's
// documented order) and solving, and to a fresh from-scratch solve
// over the same live graph — at parallelism 1 and N. The batch path
// pays the incremental machinery once per batch instead of once per
// fact; these tests pin down that the amortization never changes the
// answer.

// runBatchVsPerFact drives nSteps random batches against a session
// mutated through ApplyBatch and a session mutated fact by fact,
// solving both (plus a from-scratch comparator) after every batch.
func runBatchVsPerFact(t *testing.T, opts tecore.SolveOptions, seed int64, nSteps int) {
	t.Helper()
	pool := componentPool(4, 3, seed)
	rng := rand.New(rand.NewSource(seed))

	batched := tecore.NewSession()
	perFact := tecore.NewSession()
	for _, s := range []*tecore.Session{batched, perFact} {
		if err := s.LoadProgramText(componentProgram); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < nSteps; step++ {
		var adds, removes []tecore.Quad
		for m := 0; m < 1+rng.Intn(4); m++ {
			q := pool[rng.Intn(len(pool))]
			if rng.Intn(3) == 0 {
				q.Confidence = 0.5 + 0.4*rng.Float64() // confidence-update path
			}
			if rng.Intn(3) == 0 {
				removes = append(removes, q)
			} else {
				adds = append(adds, q)
			}
		}

		// The per-fact side applies the batch's documented order:
		// removals first, then additions.
		for _, q := range removes {
			perFact.RemoveFact(q)
		}
		for _, q := range adds {
			if err := perFact.AddFact(q); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := batched.ApplyBatch(adds, removes); err != nil {
			t.Fatalf("step %d: ApplyBatch: %v", step, err)
		}
		if got, want := batched.Store().Len(), perFact.Store().Len(); got != want {
			t.Fatalf("step %d: batched store has %d facts, per-fact has %d", step, got, want)
		}

		bRes, err := batched.Solve(opts)
		if err != nil {
			t.Fatalf("step %d: batched solve: %v", step, err)
		}
		pRes, err := perFact.Solve(opts)
		if err != nil {
			t.Fatalf("step %d: per-fact solve: %v", step, err)
		}
		if step > 0 && !bRes.Incremental {
			t.Fatalf("step %d: batched solve did not take the delta path", step)
		}
		got, want := canonResolution(bRes, 17), canonResolution(pRes, 17)
		if got != want {
			t.Fatalf("step %d: batched result diverged from per-fact sequence\nbatched:\n%s\nper-fact:\n%s",
				step, got, want)
		}

		fresh := tecore.NewSession()
		if err := fresh.LoadGraph(batched.Store().Graph()); err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadProgramText(componentProgram); err != nil {
			t.Fatal(err)
		}
		fRes, err := fresh.Solve(opts)
		if err != nil {
			t.Fatalf("step %d: fresh solve: %v", step, err)
		}
		if fc := canonResolution(fRes, 17); got != fc {
			t.Fatalf("step %d: batched result diverged from from-scratch solve\nbatched:\n%s\nfresh:\n%s",
				step, got, fc)
		}
	}
}

func TestBatchMatchesPerFactMLNExact(t *testing.T) {
	for _, par := range []int{1, 0} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			opts := exactEverywhere(tecore.SolveOptions{
				Solver: tecore.SolverMLN, Parallelism: par, ComponentSolve: true})
			runBatchVsPerFact(t, opts, 211, 10)
		})
	}
}

func TestBatchMatchesPerFactMonolithic(t *testing.T) {
	opts := exactEverywhere(tecore.SolveOptions{Solver: tecore.SolverMLN})
	runBatchVsPerFact(t, opts, 223, 8)
}
