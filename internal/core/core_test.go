package core

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/temporal"
	"repro/internal/translate"
)

const figure1 = `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`

func newFigure1Session(t testing.TB) *Session {
	t.Helper()
	s := NewSession()
	if err := s.LoadGraphText(figure1); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionEndToEnd(t *testing.T) {
	s := newFigure1Session(t)
	err := s.LoadProgramText(`
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []translate.Solver{translate.SolverMLN, translate.SolverPSL} {
		res, err := s.Solve(SolveOptions{Solver: solver})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if res.Stats.RemovedFacts != 1 || res.Removed[0].Quad.Object.Value != "Napoli" {
			t.Errorf("%v: removed = %v", solver, res.Removed)
		}
		if res.Stats.InferredFacts != 1 {
			t.Errorf("%v: inferred = %d", solver, res.Stats.InferredFacts)
		}
		if res.Output.Solver != solver {
			t.Errorf("solver tag mismatch")
		}
	}
}

func TestSessionLoadReader(t *testing.T) {
	s := NewSession()
	if err := s.LoadGraphReader(strings.NewReader(figure1)); err != nil {
		t.Fatal(err)
	}
	if s.Store().Len() != 5 {
		t.Errorf("store len = %d", s.Store().Len())
	}
}

func TestSessionLoadErrors(t *testing.T) {
	s := NewSession()
	if err := s.LoadGraphText("not a quad"); err == nil {
		t.Error("bad graph text accepted")
	}
	if err := s.LoadProgramText("not a rule ->"); err == nil {
		t.Error("bad program text accepted")
	}
}

func TestSessionAddRule(t *testing.T) {
	s := newFigure1Session(t)
	r, err := AllenConstraint("c2", "coach", "coach", "disjoint", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(r); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(SolveOptions{Solver: translate.SolverMLN})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RemovedFacts != 1 {
		t.Errorf("removed = %d", res.Stats.RemovedFacts)
	}
	// Invalid rule rejected.
	bad := &logic.Rule{Name: "bad", Weight: 1}
	if err := s.AddRule(bad); err == nil {
		t.Error("invalid rule accepted")
	}
}

func TestSessionPredicates(t *testing.T) {
	s := newFigure1Session(t)
	preds := s.Predicates()
	if len(preds) != 3 || preds[0].Predicate != "coach" {
		t.Errorf("Predicates = %v", preds)
	}
	if err := s.LoadProgramText("quad(x, spouse, y, t) ^ quad(x, spouse, z, t') ^ y != z -> disjoint(t, t')"); err != nil {
		t.Fatal(err)
	}
	missing := s.MissingPredicates()
	if len(missing) != 1 || missing[0] != "spouse" {
		t.Errorf("MissingPredicates = %v", missing)
	}
}

func TestAllenConstraintBuilder(t *testing.T) {
	r, err := AllenConstraint("bornFirst", "birthDate", "worksFor", "before", false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hard() || !r.IsConstraint() || len(r.Body) != 2 || len(r.Conds) != 0 {
		t.Errorf("rule = %v", r)
	}
	hc, ok := r.Head.Cond.(logic.AllenCond)
	if !ok || !hc.Rels.Has(temporal.Before) || hc.Rels.Len() != 1 {
		t.Errorf("head = %#v", r.Head.Cond)
	}
	// distinctObjects adds the y != z guard.
	r2, err := AllenConstraint("", "coach", "coach", "disjoint", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Conds) != 1 {
		t.Errorf("guard missing: %v", r2)
	}
	// Errors.
	if _, err := AllenConstraint("x", "", "coach", "before", false); err == nil {
		t.Error("empty predicate accepted")
	}
	if _, err := AllenConstraint("x", "coach", "coach", "sideways", false); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := AllenConstraint("x", "bad pred", "coach", "before", false); err == nil {
		t.Error("predicate with space accepted")
	}
}

func TestFunctionalConstraintBuilder(t *testing.T) {
	r, err := FunctionalConstraint("c3", "bornIn")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hard() || r.Head.Kind != logic.HeadCond {
		t.Errorf("rule = %v", r)
	}
	cc, ok := r.Head.Cond.(logic.CompareCond)
	if !ok || cc.Op != logic.EQ {
		t.Errorf("head = %#v", r.Head.Cond)
	}
	if _, err := FunctionalConstraint("", "<bad>"); err == nil {
		t.Error("bad predicate accepted")
	}
}

func TestFunctionalConstraintEndToEnd(t *testing.T) {
	s := NewSession()
	err := s.LoadGraphText(`
p bornIn Rome [1950,1950] 0.9
p bornIn Milan [1950,1950] 0.4
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := FunctionalConstraint("c3", "bornIn")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(r); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(SolveOptions{Solver: translate.SolverMLN})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RemovedFacts != 1 || res.Removed[0].Quad.Object.Value != "Milan" {
		t.Errorf("removed = %v", res.Removed)
	}
}

func TestCheckAllenSatisfiable(t *testing.T) {
	before := temporal.NewRelationSet(temporal.Before)
	ok := CheckAllenSatisfiable(3, []AllenRestriction{
		{I: 0, J: 1, Rels: before}, {I: 1, J: 2, Rels: before},
	})
	if !ok {
		t.Error("consistent chain rejected")
	}
	bad := CheckAllenSatisfiable(3, []AllenRestriction{
		{I: 0, J: 1, Rels: before}, {I: 1, J: 2, Rels: before}, {I: 2, J: 0, Rels: before},
	})
	if bad {
		t.Error("before-cycle accepted")
	}
	empty := CheckAllenSatisfiable(2, []AllenRestriction{
		{I: 0, J: 1, Rels: before}, {I: 0, J: 1, Rels: temporal.NewRelationSet(temporal.After)},
	})
	if empty {
		t.Error("contradictory edge accepted")
	}
}

func TestCuttingPlaneOption(t *testing.T) {
	s := newFigure1Session(t)
	if err := s.LoadProgramText("c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(SolveOptions{Solver: translate.SolverMLN, CuttingPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.MLN.Rounds < 2 {
		t.Errorf("CPI rounds = %d, want ≥ 2", res.Output.MLN.Rounds)
	}
	if res.Stats.RemovedFacts != 1 {
		t.Errorf("removed = %d", res.Stats.RemovedFacts)
	}
}

func TestThresholdOption(t *testing.T) {
	s := newFigure1Session(t)
	if err := s.LoadProgramText("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(SolveOptions{Solver: translate.SolverMLN, Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InferredFacts != 0 || res.Stats.ThresholdFiltered != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

var _ = rdf.Graph{} // keep the rdf import for helper extensions
