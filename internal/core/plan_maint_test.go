package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/temporal"
	"repro/internal/translate"
)

// The maintained solve plan's contract: after every incremental solve,
// the session planner's delta-patched plan must be byte-identical —
// same canonical Order, same VarOf, same component partition including
// generations and local numbering — to a fresh engine.NewPlan over the
// same engine state, and the Resolution produced through it must be
// byte-identical to one produced by an identically-driven session that
// forces SolveOptions.RebuildPlan on every solve. These tests drive
// randomized add/remove/solve schedules (single-component dirtying,
// component merges via bridges, splits via retraction, retract-then-
// revive, no-delta re-solves) at parallelism 1 and N and check both
// properties at every step.

// checkPlanMatchesFresh compares the session's maintained plan against
// a from-scratch NewPlan over the same engine state.
func checkPlanMatchesFresh(t *testing.T, s *Session, step int) {
	t.Helper()
	eng := s.engine
	if eng == nil || eng.planner == nil {
		t.Fatalf("step %d: session kept no maintained planner", step)
	}
	plan := eng.planner.Plan()
	fresh := engine.NewPlan(eng.g.Atoms(), eng.cs)
	if !reflect.DeepEqual(plan.Order, fresh.Order) {
		t.Fatalf("step %d: maintained Order diverged\nmaintained: %v\nfresh:      %v", step, plan.Order, fresh.Order)
	}
	if !reflect.DeepEqual(plan.VarOf, fresh.VarOf) {
		t.Fatalf("step %d: maintained VarOf diverged\nmaintained: %v\nfresh:      %v", step, plan.VarOf, fresh.VarOf)
	}
	if !reflect.DeepEqual(plan.Comps, fresh.Comps) {
		t.Fatalf("step %d: maintained Comps diverged\nmaintained: %+v\nfresh:      %+v", step, plan.Comps, fresh.Comps)
	}
	for _, c := range plan.Comps {
		for li, a := range c.Atoms {
			if got, want := plan.Local(a), fresh.Local(a); got != want || got != int32(li) {
				t.Fatalf("step %d: Local(%d) = %d, fresh %d, position %d", step, a, got, want, li)
			}
		}
	}
}

// canonOutcome strips the stats that legitimately differ between the
// maintained and rebuilt plan paths (timings, plan mode) so the rest of
// the Resolution can be compared bitwise.
func canonOutcome(r *Resolution) Resolution {
	c := *r
	oc := *r.Outcome
	oc.Stats.Runtime = 0
	oc.Stats.Plan = nil
	oc.Stats.Repair = nil
	oc.Stats.Outcome = nil
	oc.Stats.Ground = nil
	oc.Stats.Components = nil
	c.Outcome = &oc
	c.Output = nil
	c.Delta = nil
	return c
}

func testPlanMaintenanceDifferential(t *testing.T, solver translate.Solver, parallelism int, seed int64) {
	t.Helper()
	maint := NewSession()
	rebuilt := NewSession()
	for _, s := range []*Session{maint, rebuilt} {
		if err := s.LoadProgramText(equivProgram); err != nil {
			t.Fatal(err)
		}
	}
	pool := equivPool(6, 3)
	rng := rand.New(rand.NewSource(seed))
	live := make([]bool, len(pool))

	apply := func(s *Session, op int, idx int) error {
		if op == 0 {
			return s.AddFact(pool[idx])
		}
		s.RemoveFact(pool[idx])
		return nil
	}

	// Start from a partial load so early deltas both insert and remove.
	for i := range pool {
		if i%2 == 0 {
			live[i] = true
			for _, s := range []*Session{maint, rebuilt} {
				if err := s.AddFact(pool[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	for step := 0; step < 30; step++ {
		// 1–3 mutations per step: adds, removes, retract-then-revive.
		for m := rng.Intn(3) + 1; m > 0; m-- {
			idx := rng.Intn(len(pool))
			op := 0
			if live[idx] && rng.Intn(2) == 0 {
				op = 1
			}
			live[idx] = op == 0
			for _, s := range []*Session{maint, rebuilt} {
				if err := apply(s, op, idx); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
		if step%7 == 3 {
			// No-delta re-solve: the empty-delta fast path.
			resA, err := maint.Solve(SolveOptions{Solver: solver, ComponentSolve: true, Parallelism: parallelism})
			if err != nil {
				t.Fatalf("step %d (no-delta): %v", step, err)
			}
			if resA.Stats.Plan == nil || resA.Stats.Plan.Mode != "maintained" {
				t.Fatalf("step %d: no-delta solve not maintained: %+v", step, resA.Stats.Plan)
			}
		}
		resA, err := maint.Solve(SolveOptions{Solver: solver, ComponentSolve: true, Parallelism: parallelism})
		if err != nil {
			t.Fatalf("step %d (maintained): %v", step, err)
		}
		resB, err := rebuilt.Solve(SolveOptions{Solver: solver, ComponentSolve: true, Parallelism: parallelism, RebuildPlan: true})
		if err != nil {
			t.Fatalf("step %d (rebuilt): %v", step, err)
		}
		if ps := resB.Stats.Plan; ps == nil || ps.Mode != "rebuilt" {
			t.Fatalf("step %d: RebuildPlan did not force a rebuild: %+v", step, ps)
		}
		if step > 0 {
			if ps := resA.Stats.Plan; ps == nil || ps.Mode != "maintained" {
				t.Fatalf("step %d: incremental solve did not maintain the plan: %+v", step, ps)
			}
		}
		checkPlanMatchesFresh(t, maint, step)
		a, b := canonOutcome(resA), canonOutcome(resB)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("step %d: maintained-plan Resolution diverged from RebuildPlan\nmaintained: %+v\nrebuilt:    %+v",
				step, a.Outcome, b.Outcome)
		}
	}
}

func TestPlanMaintenanceDifferentialMLN(t *testing.T) {
	testPlanMaintenanceDifferential(t, translate.SolverMLN, 1, 11)
}

func TestPlanMaintenanceDifferentialMLNParallel(t *testing.T) {
	testPlanMaintenanceDifferential(t, translate.SolverMLN, 0, 23)
}

func TestPlanMaintenanceDifferentialPSL(t *testing.T) {
	testPlanMaintenanceDifferential(t, translate.SolverPSL, 1, 37)
}

func TestPlanMaintenanceDifferentialPSLParallel(t *testing.T) {
	testPlanMaintenanceDifferential(t, translate.SolverPSL, 0, 41)
}

// TestPlanMaintenanceMergeSplitOneDelta drives a component merge AND a
// split through a single delta: one bridge fact joining two subjects'
// conflict chains is retracted while another bridge between two other
// subjects is added, all consumed by one solve.
func TestPlanMaintenanceMergeSplitOneDelta(t *testing.T) {
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	for _, q := range equivPool(4, 3) {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	// The cross-subject bridges of equivPool: subject s coaches Club_{s-1}_0.
	bridge := func(a int) rdf.Quad {
		return rdf.NewQuad(fmt.Sprintf("P%d", a+1), "coach", fmt.Sprintf("Club_%d_0", a), temporal.MustNew(2000, 2002), 0.55)
	}
	if !s.RemoveFact(bridge(0)) {
		t.Fatal("bridge retraction missed")
	}
	if err := s.AddFact(rdf.NewQuad("P3", "coach", "Club_0_1", temporal.MustNew(2001, 2003), 0.5)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan.Mode != "maintained" {
		t.Fatalf("merge+split delta fell off the maintained path: %+v", res.Stats.Plan)
	}
	if res.Stats.Plan.PatchedComponents == 0 {
		t.Fatalf("merge+split delta patched no components: %+v", res.Stats.Plan)
	}
	checkPlanMatchesFresh(t, s, 0)
}

// TestPlanMaintenanceRetractRevive retracts a fact, solves, re-adds the
// identical fact (reviving the atom under its stable id) and solves
// again; the maintained plan must track both transitions.
func TestPlanMaintenanceRetractRevive(t *testing.T) {
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	pool := equivPool(3, 3)
	for _, q := range pool {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	target := pool[1]
	if !s.RemoveFact(target) {
		t.Fatal("retraction missed")
	}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	checkPlanMatchesFresh(t, s, 0)
	if err := s.AddFact(target); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Plan.Mode != "maintained" {
		t.Fatalf("revive fell off the maintained path: %+v", res.Stats.Plan)
	}
	checkPlanMatchesFresh(t, s, 1)

	// Retract-then-revive within ONE delta: no net order change.
	if !s.RemoveFact(target) {
		t.Fatal("second retraction missed")
	}
	if err := s.AddFact(target); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	checkPlanMatchesFresh(t, s, 2)
}

// TestPlanMaintenanceEmptyDelta re-solves with no store delta: the
// planner must report a maintained plan with zero splice work.
func TestPlanMaintenanceEmptyDelta(t *testing.T) {
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	for _, q := range equivPool(3, 2) {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Stats.Plan
	if ps.Mode != "maintained" || ps.InsertedAtoms != 0 || ps.RemovedAtoms != 0 ||
		ps.ShiftedVars != 0 || ps.PatchedComponents != 0 || ps.DroppedComponents != 0 {
		t.Fatalf("empty delta did plan work: %+v", ps)
	}
	checkPlanMatchesFresh(t, s, 0)
}

// TestPlanMaintenanceMixedRebuild interleaves RebuildPlan solves with
// maintained solves on one session: the deltas a rebuilt solve leaves
// undrained must be consumed correctly by the next maintained sync.
func TestPlanMaintenanceMixedRebuild(t *testing.T) {
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	pool := equivPool(4, 3)
	for _, q := range pool {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	for step, rebuild := range []bool{true, false, true, true, false} {
		if step%2 == 0 {
			s.RemoveFact(pool[step])
		} else if err := s.AddFact(pool[step-1]); err != nil {
			t.Fatal(err)
		}
		o := opts
		o.RebuildPlan = rebuild
		res, err := s.Solve(o)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want := "maintained"
		if rebuild {
			want = "rebuilt"
		}
		if res.Stats.Plan.Mode != want {
			t.Fatalf("step %d: plan mode %q, want %q", step, res.Stats.Plan.Mode, want)
		}
		if !rebuild {
			checkPlanMatchesFresh(t, s, step)
		}
	}
}
