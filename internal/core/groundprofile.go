package core

import (
	"repro/internal/ground"
)

// GroundProfile runs one cold grounding pass (forward chaining plus
// program grounding) over the session's current store and program on a
// throwaway grounder, without touching the session's cached incremental
// engine, and returns the grounder's per-rule statistics together with
// the atom and clause counts of the resulting network. The legacy flag
// selects the pre-compilation string-keyed path; benchmarks call it
// twice to compare the compiled pipeline against the baseline it
// replaced on identical input.
func GroundProfile(s *Session, legacy bool, parallelism int) (*ground.GroundStats, int, int, error) {
	g := ground.New(s.st)
	g.Parallelism = parallelism
	g.Legacy = legacy
	if _, err := g.Close(s.prog); err != nil {
		return nil, 0, 0, err
	}
	cs, err := g.GroundProgram(s.prog)
	if err != nil {
		return nil, 0, 0, err
	}
	return g.TakeStats(), g.Atoms().Len(), cs.Len(), nil
}
