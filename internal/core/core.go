// Package core orchestrates the TeCoRe pipeline: a Session holds an
// uncertain temporal knowledge graph and a program of temporal inference
// rules and constraints, and Solve runs the translator, a probabilistic
// solver (MLN or PSL) and conflict resolution to produce the most
// probable, expanded, conflict-free knowledge graph together with
// debugging statistics.
//
// It also provides the constraint-builder behind the Web UI's
// constraints editor: pick two predicates and an Allen relation, get the
// corresponding hard constraint.
package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
	"repro/internal/translate"
	"repro/internal/wal"
)

// Session accumulates data and program state for conflict resolution.
// It is stateful across solves: the first Solve grounds the program from
// scratch and caches the grounding engine; facts added or removed
// afterwards flow through the store's epoch delta, so later solves
// re-ground only what changed and warm-start the solvers from the
// previous solution. A Session is not safe for concurrent use; wrap it
// in a mutex (as the server's session table does) to share it.
type Session struct {
	st   *store.Store
	prog *logic.Program
	// progVersion invalidates the cached engine on program changes.
	progVersion int
	engine      *solveEngine

	// wal and dataDir are set for durable sessions (OpenSession /
	// EnableDurability): every store mutation is journaled, and
	// Checkpoint/Sync/Close control when it reaches stable storage.
	wal     *wal.Log
	dataDir string
	// recoveredWarm is the warm-start candidate read back from the data
	// directory, adopted by the first engine build if its epoch and
	// program fingerprint still match (see durable.go).
	recoveredWarm *warmState
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{st: store.New(), prog: &logic.Program{}}
}

// Store exposes the session's quad store.
func (s *Session) Store() *store.Store { return s.st }

// Program exposes the session's rules and constraints.
func (s *Session) Program() *logic.Program { return s.prog }

// LoadGraph adds the quads of g to the session.
func (s *Session) LoadGraph(g rdf.Graph) error { return s.st.AddGraph(g) }

// LoadGraphText parses TQuads text and adds the facts.
func (s *Session) LoadGraphText(src string) error {
	g, err := rdf.ParseGraphString(src)
	if err != nil {
		return err
	}
	return s.st.AddGraph(g)
}

// LoadGraphReader parses TQuads from r and adds the facts.
func (s *Session) LoadGraphReader(r io.Reader) error {
	g, err := rdf.ParseGraph(r)
	if err != nil {
		return err
	}
	return s.st.AddGraph(g)
}

// LoadProgramText parses rules/constraints in the surface syntax and
// appends them to the session program. Program changes invalidate the
// cached incremental engine; the next Solve re-grounds from scratch.
func (s *Session) LoadProgramText(src string) error {
	prog, err := rulelang.Parse(src)
	if err != nil {
		return err
	}
	s.prog.Rules = append(s.prog.Rules, prog.Rules...)
	s.progVersion++
	return s.prog.Validate()
}

// AddRule appends a single rule after validating it. Like
// LoadProgramText this invalidates the cached incremental engine.
func (s *Session) AddRule(r *logic.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.prog.Rules = append(s.prog.Rules, r)
	s.progVersion++
	return s.prog.Validate()
}

// Predicates returns the dataset's predicate statistics (the
// auto-completion source of the constraints editor).
func (s *Session) Predicates() []store.PredicateStat {
	return s.st.Stats().Predicates
}

// MissingPredicates lists rule predicates with no facts in the data.
func (s *Session) MissingPredicates() []string {
	return translate.CheckPredicates(s.st, s.prog)
}

// SolveOptions tunes a Solve call.
type SolveOptions struct {
	// Solver picks the backend (default SolverMLN).
	Solver translate.Solver
	// Threshold drops derived facts below this propagated confidence.
	Threshold float64
	// CuttingPlane enables lazy grounding on the MLN backend.
	CuttingPlane bool
	// Parallelism bounds the solve pipeline's worker pools (grounding,
	// local-search restarts, ADMM sweeps): 0 uses GOMAXPROCS, 1 forces
	// the sequential path. Results are identical at every setting.
	Parallelism int
	// ComponentSolve partitions the ground network into independent
	// conflict components and solves them separately instead of as one
	// monolithic problem: each component gets the engine its size calls
	// for (exact branch-and-bound for small ones, local search / ADMM
	// for large ones), components solve concurrently on the worker pool,
	// and on the incremental path a per-component solution cache makes a
	// delta re-solve only the components it dirtied — re-solve cost is
	// proportional to the conflict actually affected, not the knowledge
	// graph. MLN and PSL backends only; ignored under CuttingPlane.
	// Results are deterministic at every Parallelism setting.
	ComponentSolve bool
	// ComponentExactLimit is the largest component (in atoms) handed to
	// the exact MaxSAT engine in component mode; larger components use
	// local search (default 48; MLN backend only).
	ComponentExactLimit int
	// ColdStart disables warm-starting the solver from the previous
	// solution on the incremental path, and in component mode also
	// drops the per-component solution cache for this solve. Grounding
	// still reuses the cached delta state; only the solver starts from
	// scratch. With ColdStart the incremental result is byte-identical
	// to a fresh from-scratch solve by construction; with warm starts
	// the exact MaxSAT engine still guarantees it, while large
	// local-search or ADMM instances may settle on equally-valid
	// near-identical states.
	ColdStart bool
	// LegacyGrounding forces the grounder's pre-compilation path
	// (boundness-ordered join plans, string-keyed joins) instead of the
	// selectivity-planned compiled pipeline. The solver input is
	// identical either way; the knob exists to benchmark and
	// differential-test the compiled path against the one it replaced.
	LegacyGrounding bool
	// RebuildPlan forces the component solve plan (canonical order +
	// component partition) to be rebuilt from scratch for this solve
	// instead of delta-maintained on the session engine. The maintained
	// plan is byte-identical to the rebuilt one; the knob exists to
	// benchmark and differential-test the incremental plan maintenance
	// against the full rebuild it replaced (like LegacyGrounding for the
	// grounder).
	RebuildPlan bool
	// AssembledOutcome forces the component read-out to rebuild the
	// Outcome from scratch (the sort/merge assembly of every
	// component's unit) instead of delta-patching the session's live
	// outcome. The live outcome is the default on the component path
	// and produces byte-identical results; this knob exists to
	// benchmark and debug the patched read-out against the assembly it
	// replaced. It also suppresses Resolution.Delta for the solve and
	// resets the live outcome, so the next live solve re-patches from
	// scratch.
	AssembledOutcome bool
	// DeltaOnly skips materializing the Outcome's global fact and
	// cluster lists on the live read-out path: the Resolution carries
	// exact counts, violation totals and the Delta changelog, but nil
	// Kept/Removed/Inferred/Clusters. The pending list splices stay on
	// the session's live outcome and the next materializing solve
	// flushes them, so alternating DeltaOnly and full solves stays
	// byte-identical to running them all full. For update-heavy serving
	// that consumes only Delta, this removes the O(n) list copy from
	// every solve. Ignored off the live outcome path (whole-graph
	// repair, AssembledOutcome).
	DeltaOnly bool
	// Advanced exposes full backend tuning.
	Advanced translate.Options
}

// Resolution is the outcome of a Solve call.
type Resolution struct {
	*repair.Outcome
	// Output carries the raw solver result.
	Output *translate.Output
	// Incremental reports whether the solve consumed a store delta on
	// the cached engine rather than re-grounding from scratch.
	Incremental bool
	// Delta is the Outcome's changelog relative to the session's
	// previous component-path solve: the facts and conflict clusters
	// that entered or left each list. Only the component-decomposed
	// incremental path maintains it (nil otherwise, and nil under
	// AssembledOutcome); after a read-out cache invalidation —
	// ColdStart, threshold, solver or solver-tuning change — it reports
	// the full outcome as added.
	Delta *repair.OutcomeDelta
}

// Solve runs MAP inference and conflict resolution over the session.
//
// The MLN (full grounding) and PSL backends run on the session's cached
// incremental engine: the first call grounds everything, later calls
// consume only the store delta and warm-start from the prior solution.
// The cutting-plane and greedy paths re-run from scratch every time —
// lazy grounding and the baseline keep no reusable clause state.
func (s *Session) Solve(opts SolveOptions) (*Resolution, error) {
	topts := opts.Advanced
	topts.MLN.CuttingPlane = topts.MLN.CuttingPlane || opts.CuttingPlane
	if topts.Parallelism == 0 {
		topts.Parallelism = opts.Parallelism
	}
	if opts.ComponentSolve {
		topts.MLN.ComponentSolve = true
		topts.PSL.ComponentSolve = true
	}
	if topts.MLN.ComponentExactLimit == 0 {
		topts.MLN.ComponentExactLimit = opts.ComponentExactLimit
	}
	topts.LegacyGrounding = topts.LegacyGrounding || opts.LegacyGrounding
	incrementalOK := (opts.Solver == translate.SolverMLN || opts.Solver == translate.SolverPSL) &&
		!topts.MLN.CuttingPlane
	if incrementalOK {
		return s.solveIncremental(opts.Solver, topts, opts)
	}
	out, err := translate.Run(s.st, s.prog, opts.Solver, topts)
	if err != nil {
		return nil, err
	}
	oc, err := repair.Resolve(out, s.prog, repair.Options{Threshold: opts.Threshold})
	if err != nil {
		return nil, err
	}
	attachGroundStats(oc, out.Grounder)
	return &Resolution{Outcome: oc, Output: out}, nil
}

// AllenConstraint builds the hard constraint the Web UI's editor
// produces: for a subject shared between predicates pred1 and pred2, the
// Allen predicate rel must hold between their validity intervals.
// Supported rel names are the thirteen Allen relations plus "disjoint"
// and "overlap"/"intersects". With distinctObjects set, the constraint
// only fires when the two facts disagree on the object (the y != z guard
// of the paper's c2).
func AllenConstraint(name, pred1, pred2, rel string, distinctObjects bool) (*logic.Rule, error) {
	if !validRuleName(name) {
		return nil, fmt.Errorf("core: invalid rule name %q (letters, digits and underscores only)", name)
	}
	if !validPredicateName(pred1) || !validPredicateName(pred2) {
		return nil, fmt.Errorf("core: invalid predicate name %q/%q", pred1, pred2)
	}
	var src strings.Builder
	if name != "" {
		fmt.Fprintf(&src, "%s: ", name)
	}
	fmt.Fprintf(&src, "quad(x, <%s>, y, t) ^ quad(x, <%s>, z, t')", pred1, pred2)
	if distinctObjects {
		src.WriteString(" ^ y != z")
	}
	fmt.Fprintf(&src, " -> %s(t, t') w = inf", rel)
	r, err := rulelang.ParseRule(src.String())
	if err != nil {
		return nil, fmt.Errorf("core: building Allen constraint: %w", err)
	}
	return r, nil
}

// FunctionalConstraint builds the equality-generating constraint of the
// paper's c3: a subject cannot have two different objects for pred at
// intersecting times (a person cannot be born in two cities).
func FunctionalConstraint(name, pred string) (*logic.Rule, error) {
	if !validRuleName(name) {
		return nil, fmt.Errorf("core: invalid rule name %q (letters, digits and underscores only)", name)
	}
	if !validPredicateName(pred) {
		return nil, fmt.Errorf("core: invalid predicate name %q", pred)
	}
	var src strings.Builder
	if name != "" {
		fmt.Fprintf(&src, "%s: ", name)
	}
	fmt.Fprintf(&src, "quad(x, <%s>, y, t) ^ quad(x, <%s>, z, t') ^ overlap(t, t') -> y = z w = inf", pred, pred)
	r, err := rulelang.ParseRule(src.String())
	if err != nil {
		return nil, fmt.Errorf("core: building functional constraint: %w", err)
	}
	return r, nil
}

func validPredicateName(p string) bool {
	return p != "" && !strings.ContainsAny(p, "<> \t\n")
}

// validRuleName accepts the identifiers the rule grammar allows as rule
// names ("" means anonymous).
func validRuleName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CheckAllenSatisfiable runs path consistency over a set of pairwise
// Allen restrictions before translation, rejecting user-authored
// constraint sets that are unsatisfiable regardless of the data. Each
// entry restricts the intervals of (i, j) to the given relation set.
type AllenRestriction struct {
	I, J int
	Rels temporal.RelationSet
}

// CheckAllenSatisfiable reports whether the qualitative network over n
// interval variables with the given restrictions is path-consistent.
func CheckAllenSatisfiable(n int, restrictions []AllenRestriction) bool {
	nw := temporal.NewNetwork(n)
	for _, r := range restrictions {
		if !nw.Constrain(r.I, r.J, r.Rels) {
			return false
		}
	}
	return nw.PathConsistent()
}
