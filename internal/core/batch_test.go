package core

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

func mustQuad(t *testing.T, s, p, o string, start, end int64, conf float64) rdf.Quad {
	t.Helper()
	return rdf.NewQuad(s, p, o, temporal.MustNew(start, end), conf)
}

func TestApplyBatchCounts(t *testing.T) {
	s := newFigure1Session(t)
	napoli := mustQuad(t, "CR", "coach", "Napoli", 2001, 2003, 0.6)
	leeds := mustQuad(t, "CR", "coach", "Leeds", 2005, 2007, 0.5)
	porto := mustQuad(t, "CR", "coach", "Porto", 2008, 2010, 0.4)

	res, err := s.ApplyBatch([]rdf.Quad{leeds, porto}, []rdf.Quad{napoli})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 2 || res.Removed != 1 || res.Updated != 0 {
		t.Fatalf("batch result = %+v, want 2 added / 1 removed", res)
	}
	if got := s.Store().Len(); got != 6 {
		t.Fatalf("store len = %d, want 6", got)
	}

	// A quad in both lists nets out live (removes apply first), and a
	// re-add with a higher confidence counts as an update.
	leedsUp := leeds
	leedsUp.Confidence = 0.8
	res, err = s.ApplyBatch([]rdf.Quad{porto, leedsUp}, []rdf.Quad{porto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 0 || res.Removed != 0 || res.Updated != 2 {
		t.Fatalf("batch result = %+v, want 2 updated (revival + confidence raise)", res)
	}
	if !s.Store().Contains(porto) {
		t.Fatal("quad listed in both add and remove should end up live")
	}
}

func TestApplyBatchValidatesBeforeApplying(t *testing.T) {
	s := newFigure1Session(t)
	before := s.Store().Epoch()
	good := mustQuad(t, "CR", "coach", "Leeds", 2005, 2007, 0.5)
	bad := good
	bad.Confidence = 7 // out of [0,1]
	_, err := s.ApplyBatch([]rdf.Quad{good, bad}, []rdf.Quad{
		mustQuad(t, "CR", "coach", "Napoli", 2001, 2003, 0.6)})
	if err == nil || !strings.Contains(err.Error(), "batch add 1") {
		t.Fatalf("invalid add not rejected: %v", err)
	}
	if s.Store().Epoch() != before {
		t.Fatal("failed batch mutated the store")
	}
}
