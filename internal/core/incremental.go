package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/mln"
	"repro/internal/psl"
	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/translate"
)

// withStage runs f under a pprof "stage" label, so CPU profiles
// collected through the server's -pprof listener attribute samples to
// the pipeline stage (ground / solve / repair) that burned them.
func withStage(stage string, f func() error) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) {
		err = f()
	})
	return err
}

// attachGroundStats drains the grounder's per-solve statistics into the
// outcome; a solve that did no grounding work (an empty delta) leaves
// Stats.Ground nil.
func attachGroundStats(oc *repair.Outcome, g *ground.Grounder) {
	if g == nil {
		return
	}
	if gs := g.TakeStats(); gs.Total > 0 || len(gs.Rules) > 0 {
		oc.Stats.Ground = gs
	}
}

// solveEngine is the session's cached incremental solve state: a
// grounder and clause set kept alive across solves, the store epoch they
// reflect, and the previous solution for warm-starting the solvers. The
// grounder and clause set depend only on the store and program —
// switching solvers reuses them and only resets the warm data.
type solveEngine struct {
	g           *ground.Grounder
	cs          *ground.ClauseSet
	epoch       store.Epoch
	progVersion int

	warmSolver translate.Solver
	warmTruth  []bool    // previous MAP state by atom id
	warmPSL    *psl.Warm // previous ADMM iterates (values + duals)

	// Per-component solution caches for the component-decomposed solve,
	// keyed by (component key, generation, membership); entries survive
	// solver switches because they are only consulted — and only valid —
	// for components whose generation is unchanged.
	compMLN *mln.ComponentCache
	compPSL *psl.ComponentCache
	// compOptsKey fingerprints the backend options the component caches
	// were built under: a cached solution computed under different
	// engine tuning (exact limit, weights, seeds, ...) is not the
	// solution the requested options would produce, so an options
	// change drops both caches. Parallelism is excluded — results are
	// identical at every worker count.
	compOptsKey string

	// compRepair caches per-component repair read-outs alongside the
	// solver caches. Unlike them it is keyed per (solver, read-out
	// options): a read-out computed from PSL soft values or under a
	// different threshold is not the one the requested solve would
	// produce, so repairKey changes drop it (the per-entry truth check
	// in repair covers solver-side divergence within one key).
	compRepair *repair.ComponentCache
	repairKey  string

	// planner maintains the component solve plan (canonical order +
	// partition) across solves, patching it from the grounder's atom
	// journal and the union-find's change log instead of rebuilding it
	// per solve. Solves with SolveOptions.RebuildPlan bypass it; the
	// deltas they leave behind are drained by the next maintained sync.
	planner *engine.Planner

	// liveOutcome is the session's delta-maintained Outcome: component
	// solves patch only the components the delta dirtied instead of
	// re-assembling the full fact and cluster lists. It shares
	// compRepair's validity conditions and is dropped with it; it is
	// also dropped whenever a solve produces an Outcome without syncing
	// it (the AssembledOutcome knob), because a stale live outcome
	// would replay contributions the repair cache no longer vouches
	// for.
	liveOutcome *repair.LiveOutcome
}

// ResetEngine drops the cached incremental solve state. The next Solve
// re-grounds from scratch. Call it after mutating the value returned by
// Program() directly; mutations through the Session's own methods (and
// all store mutations) are tracked automatically.
func (s *Session) ResetEngine() { s.engine = nil }

// AddFact inserts a single quad; the next Solve consumes it through the
// delta path.
func (s *Session) AddFact(q rdf.Quad) error {
	_, err := s.st.Add(q)
	return err
}

// RemoveFact retracts the exact temporal statement (confidence ignored),
// reporting whether a live fact was removed.
func (s *Session) RemoveFact(q rdf.Quad) bool {
	_, ok := s.st.Remove(q)
	return ok
}

// syncEngine reconciles the cached engine with a store delta:
// retraction first (delete/rederive), then evidence updates, seminaive
// forward chaining, and delta grounding into the persistent clause set.
func (s *Session) syncEngine(eng *solveEngine, topts translate.Options, d store.Delta) error {
	epoch := s.st.Epoch()
	eng.g.Parallelism = topts.Parallelism
	eng.g.Legacy = topts.LegacyGrounding
	if err := eng.g.RetractFacts(eng.cs, d.Removed); err != nil {
		return err
	}
	delta := eng.g.ApplyUpdates(eng.cs, d.Added, d.Updated)
	derived, err := eng.g.CloseDelta(s.prog, delta)
	if err != nil {
		return err
	}
	// Revived derived atoms may hold stale component links from before
	// their retraction; touching them forces the lazy resplit to regroup
	// their components from live clauses.
	for _, a := range derived {
		eng.cs.TouchAtom(a)
	}
	if err := eng.g.GroundDelta(s.prog, eng.cs, append(delta, derived...)); err != nil {
		return err
	}
	eng.epoch = epoch
	return nil
}

// solveIncremental runs MAP inference through the session's cached
// engine: on the first solve (or after a program change) it grounds from
// scratch and caches the state; afterwards it reconciles the store delta
// with RetractFacts/ApplyUpdates/CloseDelta/GroundDelta and solves the
// maintained clause set, warm-starting from the previous solution.
func (s *Session) solveIncremental(solver translate.Solver, topts translate.Options, opts SolveOptions) (*Resolution, error) {
	if err := translate.ValidateFor(solver, s.prog); err != nil {
		return nil, err
	}
	start := time.Now()
	if topts.MLN.Parallelism == 0 {
		topts.MLN.Parallelism = topts.Parallelism
	}
	if topts.PSL.Parallelism == 0 {
		topts.PSL.Parallelism = topts.Parallelism
	}

	eng := s.engine
	incremental := eng != nil && eng.progVersion == s.progVersion
	if !incremental {
		epoch := s.st.Epoch()
		err := withStage("ground", func() error {
			g := ground.New(s.st)
			g.Parallelism = topts.Parallelism
			g.Legacy = topts.LegacyGrounding
			if _, err := g.Close(s.prog); err != nil {
				return err
			}
			cs, err := g.GroundProgram(s.prog)
			if err != nil {
				return err
			}
			cs.EnableAtomIndex()
			// Track conflict components from the start so ComponentSolve
			// can be toggled per solve and generations stay warm either
			// way.
			cs.EnableComponentIndex()
			eng = &solveEngine{g: g, cs: cs, epoch: epoch, progVersion: s.progVersion}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// A recovered session seeds the fresh engine with the persisted
		// warm solution when the epoch and program still match exactly.
		s.adoptRecoveredWarm(eng)
		s.engine = eng
	} else if d := s.st.DeltaSince(eng.epoch); !d.Empty() {
		if err := withStage("ground", func() error { return s.syncEngine(eng, topts, d) }); err != nil {
			// The engine may be partially mutated (atoms interned but not
			// grounded); drop it so the next solve re-grounds from
			// scratch instead of silently solving an incomplete network.
			s.engine = nil
			return nil, err
		}
	}

	// The log before the engine's epoch can no longer be queried by the
	// engine; compacting bounds memory on long-lived streaming sessions
	// (DeltaSince falls back to a full scan for older epochs).
	s.st.CompactLog(eng.epoch)

	var warmTruth []bool
	var warmPSL *psl.Warm
	if !opts.ColdStart && eng.warmSolver == solver {
		warmTruth, warmPSL = eng.warmTruth, eng.warmPSL
	}

	componentSolve := (solver == translate.SolverMLN && topts.MLN.ComponentSolve) ||
		(solver == translate.SolverPSL && topts.PSL.ComponentSolve)
	if topts.MLN.ComponentSolve || topts.PSL.ComponentSolve {
		mlnOpts, pslOpts := topts.MLN, topts.PSL
		mlnOpts.Parallelism, pslOpts.Parallelism = 0, 0
		if key := fmt.Sprintf("%+v|%+v", mlnOpts, pslOpts); key != eng.compOptsKey {
			eng.compMLN, eng.compPSL = nil, nil
			eng.compOptsKey = key
		}
	}

	// One shared decomposition per component-decomposed solve: the
	// solver stage and the repair read-out both consume it, so every
	// stage sees the identical partition (and the partition cost is paid
	// once). The plan is delta-maintained on the engine — the sync cost
	// is proportional to the delta and the components it dirtied —
	// unless RebuildPlan demands the from-scratch baseline.
	var plan *engine.Plan
	var planStats *engine.PlanStats
	if componentSolve {
		if opts.RebuildPlan || !eng.cs.HasAtomIndex() {
			planStart := time.Now()
			plan = engine.NewPlan(eng.g.Atoms(), eng.cs)
			planStats = &engine.PlanStats{
				Mode:       "rebuilt",
				Atoms:      len(plan.Order),
				Components: len(plan.Comps),
				Sync:       time.Since(planStart),
			}
		} else {
			if eng.planner == nil {
				eng.planner = engine.NewPlanner()
			}
			p, ps := eng.planner.Sync(eng.g.Atoms(), eng.cs)
			plan, planStats = p, &ps
		}
	}

	out := &translate.Output{Solver: solver, Grounder: eng.g, Clauses: eng.cs}
	var nextPSL *psl.Warm
	solveErr := withStage("solve", func() error {
		switch solver {
		case translate.SolverMLN:
			var res *mln.Result
			var err error
			if componentSolve {
				if opts.ColdStart || eng.compMLN == nil {
					eng.compMLN = mln.NewComponentCache()
				}
				res, err = mln.MAPGroundComponents(eng.g, eng.cs, topts.MLN, warmTruth, eng.compMLN, plan)
			} else {
				res, err = mln.MAPGround(eng.g, eng.cs, topts.MLN, warmTruth)
			}
			if err != nil {
				return err
			}
			if !res.HardSatisfied {
				return fmt.Errorf("translate: MLN solver found no assignment satisfying the hard constraints")
			}
			out.MLN = res
			out.Truth = res.Truth
		case translate.SolverPSL:
			var res *psl.Result
			var next *psl.Warm
			var err error
			if componentSolve {
				if opts.ColdStart || eng.compPSL == nil {
					eng.compPSL = psl.NewComponentCache()
				}
				res, next, err = psl.MAPGroundComponents(eng.g, eng.cs, topts.PSL, warmPSL, eng.compPSL, plan)
			} else {
				res, next, err = psl.MAPGround(eng.g, eng.cs, topts.PSL, warmPSL)
			}
			if err != nil {
				return err
			}
			out.PSL = res
			out.Truth = res.Truth
			out.SoftValues = res.Values
			nextPSL = next
		default:
			return fmt.Errorf("core: solver %v has no incremental path", solver)
		}
		return nil
	})
	if solveErr != nil {
		return nil, solveErr
	}
	out.Runtime = time.Since(start)
	eng.warmSolver = solver
	eng.warmTruth = out.Truth
	eng.warmPSL = nextPSL

	ropts := repair.Options{Threshold: opts.Threshold, Parallelism: topts.Parallelism, DeltaOnly: opts.DeltaOnly}
	var oc *repair.Outcome
	var delta *repair.OutcomeDelta
	var run *repair.ComponentRun
	err := withStage("repair", func() error {
		var err error
		if componentSolve {
			// The read-out decomposes along the same plan, with its own
			// per-component cache: a delta re-repairs only the dirtied
			// components. The cache is dropped on ColdStart and whenever the
			// solver, its tuning, or the read-out options change — a cached
			// unit embeds threshold-filtered facts and solver-specific
			// confidences (PSL soft values can shift under new engine tuning
			// without the discrete truth, which the per-entry check covers,
			// moving at all). The live outcome replays those units into the
			// global lists, so it is only valid under the same key and
			// drops with the cache.
			rkey := fmt.Sprintf("%v|%+v|%s", solver,
				repair.Options{Threshold: ropts.Threshold, ConfidenceRounds: ropts.ConfidenceRounds},
				eng.compOptsKey)
			if opts.ColdStart || eng.compRepair == nil || rkey != eng.repairKey {
				eng.compRepair = repair.NewComponentCache()
				eng.liveOutcome = nil
				eng.repairKey = rkey
			}
			if opts.AssembledOutcome {
				// The assembled path does not sync the live outcome; drop it
				// so the next live solve rebuilds instead of patching state
				// the caches moved past.
				eng.liveOutcome = nil
				run, err = repair.BeginComponents(out, s.prog, ropts, plan, eng.compRepair, nil)
			} else {
				if eng.liveOutcome == nil {
					eng.liveOutcome = repair.NewLiveOutcome()
				}
				run, err = repair.BeginComponents(out, s.prog, ropts, plan, eng.compRepair, eng.liveOutcome)
			}
		} else {
			oc, err = repair.Resolve(out, s.prog, ropts)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if run != nil {
		// The outcome read-out (live sync or sort/merge assembly) is its
		// own pipeline stage, profiled apart from the per-component
		// repair analysis.
		err := withStage("outcome", func() error {
			var err error
			oc, delta, err = run.Finish()
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	oc.Stats.Plan = planStats
	attachGroundStats(oc, eng.g)
	return &Resolution{Outcome: oc, Output: out, Incremental: incremental, Delta: delta}, nil
}
