package core

import (
	"fmt"

	"repro/internal/rdf"
)

// BatchResult reports the net effect of an ApplyBatch call on the
// store, in the same terms as a store delta: Added counts facts that
// became live (including revivals), Removed counts facts tombstoned,
// Updated counts existing live facts whose confidence was raised. A
// fact both removed and re-added inside one batch nets out according
// to its final state.
type BatchResult struct {
	Added   int
	Removed int
	Updated int
}

// ApplyBatch applies a group of mutations as one logical update:
// removals first, then additions (so a quad appearing in both ends up
// live). The next Solve consumes the whole batch through a single
// store delta — one retraction pass, one grounding delta, one
// dirty-component set, one outcome patch — instead of paying the
// incremental machinery once per fact.
//
// Additions are validated up front; on a validation error nothing is
// applied. Remove semantics match RemoveFact: the exact temporal
// statement is matched, confidence ignored, and absent facts are
// skipped silently (the net count reports what actually changed).
func (s *Session) ApplyBatch(add, remove []rdf.Quad) (BatchResult, error) {
	for i, q := range add {
		if err := q.Validate(); err != nil {
			return BatchResult{}, fmt.Errorf("core: batch add %d: %w", i, err)
		}
	}
	before := s.st.Epoch()
	for _, q := range remove {
		s.st.Remove(q)
	}
	for _, q := range add {
		if _, err := s.st.Add(q); err != nil {
			// Unreachable after pre-validation; surface it rather than
			// silently under-reporting the batch.
			return BatchResult{}, fmt.Errorf("core: batch add: %w", err)
		}
	}
	d := s.st.DeltaSince(before)
	return BatchResult{Added: len(d.Added), Removed: len(d.Removed), Updated: len(d.Updated)}, nil
}
