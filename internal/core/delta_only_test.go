package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/repair"
	"repro/internal/translate"
)

// DeltaOnly solves skip materializing the global fact/cluster lists but
// must stay observationally identical to full solves: exact counts and
// violation totals, the same changelog, and — once a materializing
// solve flushes the deferred splices — byte-identical lists. These
// tests drive two sessions over the same mutation schedule, one in
// DeltaOnly mode for every intermediate step, and compare against the
// always-materializing twin.

func testDeltaOnlyDifferential(t *testing.T, solver translate.Solver, threshold float64) {
	t.Helper()
	mkSession := func() *Session {
		s := NewSession()
		if err := s.LoadProgramText(equivProgram); err != nil {
			t.Fatal(err)
		}
		for i, q := range equivPool(4, 3) {
			if i%2 == 0 {
				if err := s.AddFact(q); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}
	sa, sb := mkSession(), mkSession()
	pool := equivPool(4, 3)
	// Same schedule as the byte-identical suite: single-component
	// churn, a component merge, a split, and a no-delta re-solve.
	steps := [][2]int{{1, 1}, {3, 1}, {3, 0}, {-1, 0}, {5, 1}, {1, 0}, {7, 1}}
	mutate := func(s *Session, mv [2]int) {
		if mv[0] < 0 {
			return
		}
		if mv[1] == 1 {
			if err := s.AddFact(pool[mv[0]]); err != nil {
				t.Fatal(err)
			}
		} else {
			s.RemoveFact(pool[mv[0]])
		}
	}
	for step, mv := range steps {
		mutate(sa, mv)
		mutate(sb, mv)
		// The last step materializes on both sessions so the deferred
		// splices accumulated across every DeltaOnly step must land.
		deltaOnly := step < len(steps)-1
		ra, err := sa.Solve(SolveOptions{Solver: solver, ComponentSolve: true,
			Threshold: threshold, DeltaOnly: deltaOnly})
		if err != nil {
			t.Fatalf("step %d (delta-only): %v", step, err)
		}
		rb, err := sb.Solve(SolveOptions{Solver: solver, ComponentSolve: true, Threshold: threshold})
		if err != nil {
			t.Fatalf("step %d (full): %v", step, err)
		}
		if deltaOnly {
			if got := ra.Stats.Outcome.Mode; got != repair.OutcomeDeltaOnly {
				t.Fatalf("step %d: delta-only solve reported mode %q", step, got)
			}
			if ra.Kept != nil || ra.Removed != nil || ra.Inferred != nil || ra.Clusters != nil {
				t.Fatalf("step %d: delta-only solve materialized lists", step)
			}
		}
		// The changelog is identical in both modes.
		if !reflect.DeepEqual(ra.Delta, rb.Delta) {
			t.Fatalf("step %d: changelog diverged\ndelta-only: %+v\nfull:       %+v", step, ra.Delta, rb.Delta)
		}
		// Counts and violation totals are exact in both modes.
		// RemovedWeight is maintained incrementally on the delta-only
		// path (re-anchored to the exact sum at each materialize), so it
		// is compared within float tolerance rather than bitwise.
		if d := math.Abs(ra.Stats.RemovedWeight - rb.Stats.RemovedWeight); d > 1e-9 {
			t.Fatalf("step %d: RemovedWeight drifted by %g", step, d)
		}
		as, bs := ra.Stats, rb.Stats
		as.RemovedWeight, bs.RemovedWeight = 0, 0
		as.Runtime, bs.Runtime = 0, 0
		as.Repair, bs.Repair = nil, nil // stage stats differ by design
		as.Outcome, bs.Outcome = nil, nil
		as.Ground, bs.Ground = nil, nil
		as.Plan, bs.Plan = nil, nil
		as.Components, bs.Components = nil, nil
		if !reflect.DeepEqual(as, bs) {
			t.Fatalf("step %d: summary stats diverged\ndelta-only: %+v\nfull:       %+v", step, as, bs)
		}
		if !deltaOnly {
			// The materializing solve after the DeltaOnly run must land
			// the composed deferred splices byte-identically.
			a, b := *ra.Outcome, *rb.Outcome
			a.Stats, b.Stats = repair.Stats{}, repair.Stats{}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("step %d: materialized outcome diverged after delta-only run", step)
			}
		}
	}
}

func TestDeltaOnlyDifferentialMLN(t *testing.T) {
	testDeltaOnlyDifferential(t, translate.SolverMLN, 0)
}

func TestDeltaOnlyDifferentialMLNThreshold(t *testing.T) {
	testDeltaOnlyDifferential(t, translate.SolverMLN, 0.6)
}

func TestDeltaOnlyDifferentialPSL(t *testing.T) {
	// PSL never reports a truth delta, so the repair analysis runs the
	// full pass — DeltaOnly still defers the list splices.
	testDeltaOnlyDifferential(t, translate.SolverPSL, 0)
}

// TestDeltaOnlyAlternating flips DeltaOnly on and off between solves:
// every materializing solve must flush exactly the churn composed since
// the previous flush, not replay or drop any of it.
func TestDeltaOnlyAlternating(t *testing.T) {
	sa, sb := NewSession(), NewSession()
	for _, s := range []*Session{sa, sb} {
		if err := s.LoadProgramText(equivProgram); err != nil {
			t.Fatal(err)
		}
	}
	pool := equivPool(5, 3)
	for i, q := range pool {
		if i%3 != 2 {
			for _, s := range []*Session{sa, sb} {
				if err := s.AddFact(q); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for step := 0; step < 8; step++ {
		q := pool[(step*3+2)%len(pool)]
		for _, s := range []*Session{sa, sb} {
			var err error
			if step%2 == 0 {
				err = s.AddFact(q)
			} else {
				s.RemoveFact(q)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		ra, err := sa.Solve(SolveOptions{ComponentSolve: true, DeltaOnly: step%2 == 0})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rb, err := sb.Solve(SolveOptions{ComponentSolve: true})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !reflect.DeepEqual(ra.Delta, rb.Delta) {
			t.Fatalf("step %d: changelog diverged", step)
		}
		if step%2 != 0 {
			a, b := *ra.Outcome, *rb.Outcome
			a.Stats, b.Stats = repair.Stats{}, repair.Stats{}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("step %d: materialized outcome diverged after delta-only solve", step)
			}
		}
	}
}
