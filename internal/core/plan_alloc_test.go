package core

import (
	"runtime"
	"testing"

	"repro/internal/rdf"
	"repro/internal/temporal"
	"repro/internal/translate"
)

// Allocation regression gate for the maintained solve plan, joining the
// store gates from the scale work. The planner's whole point is that a
// steady-state single-fact update patches the canonical order and the
// component partition in place: the order, varOf and local maps, the
// scratch buffers for splicing, and the component list are all owned by
// the planner and reused across syncs. A change that reintroduces
// per-sync rebuilds (the old CanonicalAtoms/CanonicalVarMap/Components
// triple, or fresh splice scratch) fails here long before it shows up
// on the update-latency bench.
func TestPlannerSyncAllocsSingleFact(t *testing.T) {
	s := NewSession()
	for _, q := range equivPool(40, 3) {
		if err := s.AddFact(q); err != nil {
			t.Fatalf("AddFact: %v", err)
		}
	}
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatalf("LoadProgramText: %v", err)
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true, Parallelism: 1}
	if _, err := s.Solve(opts); err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	eng := s.engine
	if eng == nil || eng.planner == nil {
		t.Fatal("cold solve did not leave a maintained planner behind")
	}

	topts := translate.Options{Parallelism: 1}
	topts.MLN.ComponentSolve = true
	probe := rdf.NewQuad("P1", "coach", "Club_probe", temporal.MustNew(2000, 2002), 0.5)

	// One steady-state single-fact update up to (and including) the plan
	// sync: toggle the probe, reconcile the grounder, patch the plan. The
	// solver/repair stages are not part of the gated path.
	toggle := false
	var planMallocs, planSyncs uint64
	var ms0, ms1 runtime.MemStats
	step := func() {
		toggle = !toggle
		if toggle {
			if err := s.AddFact(probe); err != nil {
				t.Fatalf("AddFact: %v", err)
			}
		} else if !s.RemoveFact(probe) {
			t.Fatal("RemoveFact: probe was not live")
		}
		d := s.st.DeltaSince(eng.epoch)
		if err := s.syncEngine(eng, topts, d); err != nil {
			t.Fatalf("syncEngine: %v", err)
		}
		runtime.ReadMemStats(&ms0)
		_, ps := eng.planner.Sync(eng.g.Atoms(), eng.cs)
		runtime.ReadMemStats(&ms1)
		planMallocs += ms1.Mallocs - ms0.Mallocs
		planSyncs++
		if ps.Mode != "maintained" {
			t.Fatalf("steady-state sync fell back to mode %q", ps.Mode)
		}
	}
	// Warm both toggle directions so every scratch buffer and the probe's
	// atom/var slots reach steady-state capacity before measuring.
	for i := 0; i < 6; i++ {
		step()
	}

	planMallocs, planSyncs = 0, 0
	avg := testing.AllocsPerRun(100, step)
	// ReadMemStats pairs don't allocate between themselves, so planMallocs
	// is the planner's own count. The budget tolerates the per-sync
	// constants — one fresh membership slice per dirtied component — but
	// not a rebuilt order/varOf/partition (3 big slices + one slice per
	// component) or fresh splice scratch (~10 buffers).
	avgPlan := float64(planMallocs) / float64(planSyncs)
	t.Logf("plan sync: %.2f allocs; full pre-solve update path: %.1f allocs", avgPlan, avg)
	if avgPlan > 4 {
		t.Errorf("planner.Sync allocates %.2f objects per single-fact sync in steady state, want <= 4", avgPlan)
	}
	// The full pre-solve update path (store toggle + delta read-out +
	// retract/rederive/reground + plan sync) is gated loosely: it guards
	// against a per-update pass over the whole network sneaking back in
	// anywhere before the solver stage.
	if avg > 300 {
		t.Errorf("single-fact update path allocates %.1f objects/run, want <= 300", avg)
	}
}
