package core

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/translate"
)

// canonDurable strips everything a restart is allowed to change: stage
// statistics, the raw solver output, the outcome delta (a reopened
// session's first solve reports the full outcome as added), the
// Incremental flag (a reopened session's first solve grounds fresh),
// the engine-internal AtomIDs, and every ordering derived from atom
// ids — fact-list order, a removal's explanation order, and cluster
// order all follow the order atoms entered the incremental grounding,
// which a fresh post-restart grounding is allowed to renumber. The
// facts themselves, their explanations, confidences, cluster
// memberships and statistics are compared exactly.
func canonDurable(r *Resolution) Resolution {
	c := canonOutcome(r)
	c.Incremental = false
	oc := *c.Outcome
	canon := func(fs []repair.Fact) []repair.Fact {
		out := append([]repair.Fact(nil), fs...)
		for i := range out {
			out[i].AtomID = 0
			if len(out[i].Explanations) > 1 {
				ex := append([]repair.Explanation(nil), out[i].Explanations...)
				sort.Slice(ex, func(a, b int) bool { return ex[a].String() < ex[b].String() })
				out[i].Explanations = ex
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Quad.String() < out[b].Quad.String() })
		return out
	}
	oc.Kept = canon(oc.Kept)
	oc.Removed = canon(oc.Removed)
	oc.Inferred = canon(oc.Inferred)
	cl := append([][]rdf.FactKey(nil), oc.Clusters...)
	sort.Slice(cl, func(a, b int) bool { return fmt.Sprint(cl[a]) < fmt.Sprint(cl[b]) })
	oc.Clusters = cl
	// Summed in atom order, so associativity noise in the last ulps is
	// expected across a restart.
	oc.Stats.RemovedWeight = math.Round(oc.Stats.RemovedWeight*1e9) / 1e9
	c.Outcome = &oc
	return c
}

// TestDurableRecoveryByteIdentical is the recovery property suite: a
// durable session and a volatile witness are driven through the same
// randomized add/remove/solve schedule, with the durable session
// periodically checkpointed and crash-reopened (fsync then abandon, or
// graceful close). Every solve after every recovery must be
// byte-identical to the never-restarted witness.
func TestDurableRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	durable, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	witness := NewSession()
	for _, s := range []*Session{durable, witness} {
		if err := s.LoadProgramText(equivProgram); err != nil {
			t.Fatal(err)
		}
	}

	pool := equivPool(6, 3)
	rng := rand.New(rand.NewSource(42))
	live := make([]bool, len(pool))
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}

	reopen := func(graceful bool) {
		if graceful {
			if err := durable.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
		} else {
			// Crash after fsync: the durable tail covers every change,
			// but no checkpoint or clean shutdown happens.
			if err := durable.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
			durable = nil
		}
		back, err := OpenSession(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if err := back.LoadProgramText(equivProgram); err != nil {
			t.Fatal(err)
		}
		durable = back
	}

	for step := 0; step < 30; step++ {
		for n := 1 + rng.Intn(3); n > 0; n-- {
			idx := rng.Intn(len(pool))
			if live[idx] {
				durable.RemoveFact(pool[idx])
				witness.RemoveFact(pool[idx])
				live[idx] = false
			} else {
				for _, s := range []*Session{durable, witness} {
					if err := s.AddFact(pool[idx]); err != nil {
						t.Fatalf("step %d: add %d: %v", step, idx, err)
					}
				}
				live[idx] = true
			}
		}

		switch step % 5 {
		case 1:
			if err := durable.Checkpoint(); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		case 2:
			reopen(false)
		case 4:
			if step%2 == 0 {
				if err := durable.Checkpoint(); err != nil {
					t.Fatalf("step %d: checkpoint: %v", step, err)
				}
			}
			reopen(true)
		}

		if got, want := durable.Store().Epoch(), witness.Store().Epoch(); got != want {
			t.Fatalf("step %d: recovered epoch %d, witness %d", step, got, want)
		}
		a, err := durable.Solve(opts)
		if err != nil {
			t.Fatalf("step %d: durable solve: %v", step, err)
		}
		b, err := witness.Solve(opts)
		if err != nil {
			t.Fatalf("step %d: witness solve: %v", step, err)
		}
		if !reflect.DeepEqual(canonDurable(a), canonDurable(b)) {
			t.Fatalf("step %d: recovered solve diverged from witness\nrecovered: %+v\nwitness:   %+v",
				step, a.Outcome, b.Outcome)
		}
	}
	if err := durable.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableWarmAdoption checks the warm sidecar round trip: a
// checkpoint taken after a solve persists the MLN truth vector, a
// reopened session at the same epoch and program adopts it for its
// first solve, and the warm-started result is byte-identical to the
// pre-restart one.
func TestDurableWarmAdoption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	for _, q := range equivPool(4, 3) {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}
	before, err := s.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, WarmFile)); err != nil {
		t.Fatalf("checkpoint after solve left no warm sidecar: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if err := back.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	w := back.recoveredWarm
	if w == nil {
		t.Fatal("reopened session recovered no warm state")
	}
	if w.epoch != back.Store().Epoch() {
		t.Fatalf("warm state epoch %d, store epoch %d", w.epoch, back.Store().Epoch())
	}
	if w.progHash != progFingerprint(back.Program()) {
		t.Fatal("warm state program fingerprint does not match the reloaded program")
	}
	after, err := back.Solve(opts)
	if err != nil {
		t.Fatal(err)
	}
	if back.recoveredWarm != nil {
		t.Fatal("first solve did not consume the recovered warm state")
	}
	if back.engine == nil || back.engine.warmSolver != translate.SolverMLN {
		t.Fatal("adopted warm state did not seed the engine")
	}
	if !reflect.DeepEqual(canonDurable(after), canonDurable(before)) {
		t.Fatal("warm-started solve diverged from the pre-restart solve")
	}
}

// TestDurableWarmRejectedOnMismatch checks the adoption gate: warm
// state stamped at an older epoch (mutations happened after the
// checkpoint) must not seed the engine, and a corrupt sidecar must be
// ignored rather than fail the open.
func TestDurableWarmRejectedOnMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	pool := equivPool(3, 3)
	for _, q := range pool[:len(pool)-1] {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverMLN, ComponentSolve: true}
	if _, err := s.Solve(opts); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Advance the store past the warm stamp, then crash.
	if err := s.AddFact(pool[len(pool)-1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	back, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	if back.recoveredWarm == nil {
		t.Fatal("stale sidecar should still load; adoption decides validity")
	}
	if _, err := back.Solve(opts); err != nil {
		t.Fatal(err)
	}
	if back.recoveredWarm != nil {
		t.Fatal("stale warm state was not discarded")
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the sidecar: open must succeed with no warm state.
	path := filepath.Join(dir, WarmFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := OpenSession(dir)
	if err != nil {
		t.Fatalf("corrupt warm sidecar must not fail the open: %v", err)
	}
	if again.recoveredWarm != nil {
		t.Fatal("corrupt warm sidecar passed validation")
	}
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEnableDurability checks the volatile-to-durable upgrade: the
// current store is checkpointed into the fresh directory and later
// mutations flow through the WAL, so a reopen recovers everything.
func TestEnableDurability(t *testing.T) {
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	pool := equivPool(3, 2)
	for _, q := range pool[:4] {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := s.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableDurability(dir); err == nil {
		t.Fatal("double EnableDurability should fail")
	}
	for _, q := range pool[4:] {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	s.RemoveFact(pool[0])
	wantEpoch := s.Store().Epoch()
	wantGraph := s.Store().Graph()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Durable() || s.DataDir() != "" {
		t.Fatal("closed session still reports durable")
	}

	back, err := OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if !back.Durable() || back.DataDir() != dir {
		t.Fatal("reopened session not durable")
	}
	st := back.RecoveryStats()
	if st == nil || !st.SnapshotLoaded || st.Epoch != wantEpoch {
		t.Fatalf("unexpected recovery stats: %+v", st)
	}
	if got := back.Store().Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if !reflect.DeepEqual(back.Store().Graph(), wantGraph) {
		t.Fatal("recovered graph differs")
	}
}
