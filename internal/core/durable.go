package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/logic"
	"repro/internal/store"
	"repro/internal/translate"
	"repro/internal/wal"
)

// WarmFile is the warm-start sidecar within a session data directory:
// the previous MAP truth vector, stamped with the epoch and program it
// was computed under. It rides along with checkpoints so a restarted
// session's first solve warm-starts the solvers instead of searching
// from nothing.
const WarmFile = "warm.tqw"

var warmMagic = [4]byte{'T', 'Q', 'W', '1'}

var warmCRC = crc32.MakeTable(crc32.Castagnoli)

// warmState is a recovered warm-start candidate. It is only adopted if
// the restarted session's first engine lands on exactly the epoch and
// program fingerprint it was stamped with — deterministic grounding
// then reproduces the identical atom table, making the truth vector's
// atom indexes meaningful again.
type warmState struct {
	solver   translate.Solver
	epoch    store.Epoch
	progHash uint64
	truth    []bool
}

// OpenSession opens a durable session rooted at dir, recovering the
// persisted store (snapshot + WAL replay) if the directory holds one
// and creating an empty durable session otherwise. The program is not
// persisted — load rules as usual after opening. Call Checkpoint to
// compact the log and Close before discarding the session.
func OpenSession(dir string) (*Session, error) {
	l, st, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	s := &Session{st: st, prog: &logic.Program{}, wal: l, dataDir: dir}
	s.recoveredWarm = loadWarm(filepath.Join(dir, WarmFile))
	return s, nil
}

// EnableDurability makes a live in-memory session durable in a fresh
// directory: the current store is checkpointed there and every later
// mutation flows through the WAL. It fails if the directory already
// holds a persisted store (open that with OpenSession) or if the
// session is already durable.
func (s *Session) EnableDurability(dir string) error {
	if s.wal != nil {
		return fmt.Errorf("core: session already durable in %s", s.dataDir)
	}
	l, err := wal.Attach(dir, s.st, wal.Options{})
	if err != nil {
		return err
	}
	s.wal = l
	s.dataDir = dir
	s.saveWarm()
	return nil
}

// Durable reports whether the session persists its store.
func (s *Session) Durable() bool { return s.wal != nil }

// DataDir returns the session's durable directory ("" when volatile).
func (s *Session) DataDir() string { return s.dataDir }

// RecoveryStats reports what opening the durable session found (nil for
// volatile sessions).
func (s *Session) RecoveryStats() *wal.RecoveryStats {
	if s.wal == nil {
		return nil
	}
	st := s.wal.Stats()
	return &st
}

// Sync flushes and fsyncs the WAL tail: every change up to now survives
// a crash. A no-op for volatile sessions.
func (s *Session) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Checkpoint compacts the session's durable state: it snapshots the
// store at a pinned epoch (ingest is never blocked for more than the
// pin's memcpy), truncates the WAL to the suffix, and persists the warm
// solver state so a restart resumes with warm caches. Fails for
// volatile sessions.
func (s *Session) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("core: session is not durable (no data directory)")
	}
	if err := s.wal.Checkpoint(); err != nil {
		return err
	}
	s.saveWarm()
	return nil
}

// Close releases the session's durable state after a final WAL flush
// and fsync. The session remains usable in memory but is no longer
// journaled. A no-op for volatile sessions.
func (s *Session) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	s.dataDir = ""
	return err
}

// progFingerprint hashes the program's rules (FNV-1a over their
// canonical rendering) so persisted warm state is never applied under a
// different program.
func progFingerprint(p *logic.Program) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	for _, r := range p.Rules {
		mix(r.String())
	}
	return h
}

// adoptRecoveredWarm seeds a freshly built engine with the recovered
// warm-start state, once, if the epoch and program still match exactly.
func (s *Session) adoptRecoveredWarm(eng *solveEngine) {
	w := s.recoveredWarm
	if w == nil {
		return
	}
	s.recoveredWarm = nil
	if w.epoch != eng.epoch || w.progHash != progFingerprint(s.prog) {
		return
	}
	eng.warmSolver = w.solver
	eng.warmTruth = w.truth
}

// saveWarm persists the engine's warm MLN state next to the snapshot.
// Best-effort: a missing or stale sidecar only costs a cold first
// solve, so failures are swallowed (the snapshot and WAL stay
// authoritative for the data itself). PSL warm state (ADMM iterates) is
// not persisted; a restarted PSL session cold-starts its first solve.
func (s *Session) saveWarm() {
	if s.wal == nil {
		return
	}
	eng := s.engine
	path := filepath.Join(s.dataDir, WarmFile)
	if eng == nil || eng.warmSolver != translate.SolverMLN || eng.warmTruth == nil {
		return // keep any previous sidecar: its epoch stamp decides validity
	}
	buf := make([]byte, 0, 4+1+3*binary.MaxVarintLen64+(len(eng.warmTruth)+7)/8)
	buf = append(buf, warmMagic[:]...)
	buf = append(buf, byte(eng.warmSolver))
	buf = binary.AppendUvarint(buf, uint64(eng.epoch))
	buf = binary.AppendUvarint(buf, progFingerprint(s.prog))
	buf = binary.AppendUvarint(buf, uint64(len(eng.warmTruth)))
	var acc byte
	for i, v := range eng.warmTruth {
		if v {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, acc)
			acc = 0
		}
	}
	if len(eng.warmTruth)%8 != 0 {
		buf = append(buf, acc)
	}
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], crc32.Checksum(buf, warmCRC))
	buf = append(buf, tb[:]...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// loadWarm reads a warm sidecar; any structural problem yields nil (a
// cold first solve, never an error).
func loadWarm(path string) *warmState {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < 9 {
		return nil
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, warmCRC) != binary.LittleEndian.Uint32(trailer) {
		return nil
	}
	var magic [4]byte
	copy(magic[:], body)
	if magic != warmMagic {
		return nil
	}
	w := &warmState{solver: translate.Solver(body[4])}
	rest := body[5:]
	epoch, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil
	}
	rest = rest[n:]
	w.epoch = store.Epoch(epoch)
	hash, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil
	}
	rest = rest[n:]
	w.progHash = hash
	nbits, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil
	}
	rest = rest[n:]
	if uint64(len(rest)) != (nbits+7)/8 || nbits > 1<<33 {
		return nil
	}
	w.truth = make([]bool, nbits)
	for i := range w.truth {
		w.truth[i] = rest[i/8]&(1<<(i%8)) != 0
	}
	return w
}
