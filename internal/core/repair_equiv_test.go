package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/temporal"
	"repro/internal/translate"
)

// The component-decomposed repair read-out's contract is stronger than
// the cross-session property suite can check: for the SAME solver
// output (same atom ids, same truth vector), ResolveComponents must
// produce an Outcome byte-identical to whole-graph Resolve — facts,
// order, explanations, clusters, confidences and statistics — including
// when most components come out of the repair cache. These tests drive
// an incremental session and compare the two read-outs at every step.

const equivProgram = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
star: quad(x, coach, y, t) ^ quad(z, coach, y, t') ^ x != z -> disjoint(t, t') w = inf
`

// equivPool builds per-subject conflict chains plus playsFor facts
// feeding the inference rule (so the read-out has derived facts with
// propagated confidences) and cross-subject bridges (so deltas merge
// and split components).
func equivPool(subjects, spells int) []rdf.Quad {
	var pool []rdf.Quad
	for s := 0; s < subjects; s++ {
		subj := fmt.Sprintf("P%d", s)
		start := int64(2000)
		for c := 0; c < spells; c++ {
			club := fmt.Sprintf("Club_%d_%d", s, c)
			end := start + 2 + int64((s+c)%3)
			pool = append(pool, rdf.NewQuad(subj, "coach", club,
				temporal.MustNew(start, end), 0.5+0.07*float64((s*spells+c)%7)))
			start = end
		}
		pool = append(pool, rdf.NewQuad(subj, "playsFor", fmt.Sprintf("Club_%d_0", s),
			temporal.MustNew(1990, 1995), 0.6+0.05*float64(s%5)))
		if s > 0 {
			pool = append(pool, rdf.NewQuad(subj, "coach", fmt.Sprintf("Club_%d_0", s-1),
				temporal.MustNew(2000, 2002), 0.55))
		}
	}
	return pool
}

func testComponentRepairByteIdentical(t *testing.T, solver translate.Solver, threshold float64) {
	t.Helper()
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	pool := equivPool(4, 3)
	for i, q := range pool {
		if i%2 == 0 {
			if err := s.AddFact(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A mutation schedule that dirties single components, merges two
	// (bridge add), splits them again (bridge remove), and includes a
	// no-delta re-solve (everything reused from both caches).
	steps := [][2]int{{1, 1}, {3, 1}, {3, 0}, {-1, 0}, {5, 1}, {1, 0}, {7, 1}}
	for step, mv := range steps {
		if mv[0] >= 0 {
			if mv[1] == 1 {
				if err := s.AddFact(pool[mv[0]]); err != nil {
					t.Fatal(err)
				}
			} else {
				s.RemoveFact(pool[mv[0]])
			}
		}
		res, err := s.Solve(SolveOptions{Solver: solver, ComponentSolve: true, Threshold: threshold})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rs := res.Stats.Repair
		if rs == nil || rs.Mode != repair.RepairComponents {
			t.Fatalf("step %d: component solve did not take the component repair path: %+v", step, rs)
		}
		if step > 0 && rs.Reused == 0 {
			t.Fatalf("step %d: incremental re-repair reused no components: %+v", step, rs)
		}

		// Whole-graph read-out over the exact same solver output.
		whole, err := repair.Resolve(res.Output, s.Program(), repair.Options{Threshold: threshold})
		if err != nil {
			t.Fatalf("step %d: whole-graph resolve: %v", step, err)
		}
		a, b := *res.Outcome, *whole
		a.Stats.Repair, b.Stats.Repair = nil, nil // stage stats differ by design
		a.Stats.Outcome, b.Stats.Outcome = nil, nil
		a.Stats.Ground, b.Stats.Ground = nil, nil
		a.Stats.Plan, b.Stats.Plan = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("step %d: component repair diverged from whole-graph repair\ncomponent: %+v\nwhole:     %+v",
				step, a.Stats, b.Stats)
		}
	}
}

func TestComponentRepairByteIdenticalMLN(t *testing.T) {
	testComponentRepairByteIdentical(t, translate.SolverMLN, 0)
}

func TestComponentRepairByteIdenticalMLNThreshold(t *testing.T) {
	// A positive threshold exercises the ThresholdFiltered split of the
	// derived-confidence pass in both read-outs.
	testComponentRepairByteIdentical(t, translate.SolverMLN, 0.6)
}

func TestComponentRepairByteIdenticalPSL(t *testing.T) {
	// Same solver output on both sides, so even PSL's soft-value-derived
	// confidences must agree bitwise.
	testComponentRepairByteIdentical(t, translate.SolverPSL, 0)
}

// TestComponentRepairUnconvergedPSL starves ADMM so no component
// converges: every no-delta re-solve resumes iteration, moving the soft
// values while the discrete truth and the component generations can
// stand perfectly still. The repair cache must detect the moved values
// and not replay units whose inferred confidences embed the previous
// iterates — the read-out must still match whole-graph Resolve over the
// same output bitwise.
func TestComponentRepairUnconvergedPSL(t *testing.T) {
	s := NewSession()
	if err := s.LoadProgramText(equivProgram); err != nil {
		t.Fatal(err)
	}
	for _, q := range equivPool(3, 3) {
		if err := s.AddFact(q); err != nil {
			t.Fatal(err)
		}
	}
	opts := SolveOptions{Solver: translate.SolverPSL, ComponentSolve: true}
	// 10 sweeps: far from converged (values still move every re-solve)
	// but close enough that the discretised truth is stable — the exact
	// combination where a truth-only cache check would replay stale
	// confidences.
	opts.Advanced.PSL.MaxIter = 10
	for step := 0; step < 3; step++ {
		res, err := s.Solve(opts)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.Output.PSL.Converged {
			t.Fatal("one ADMM sweep cannot have converged; bad test setup")
		}
		whole, err := repair.Resolve(res.Output, s.Program(), repair.Options{})
		if err != nil {
			t.Fatalf("step %d: whole-graph resolve: %v", step, err)
		}
		a, b := *res.Outcome, *whole
		a.Stats.Repair, b.Stats.Repair = nil, nil
		a.Stats.Outcome, b.Stats.Outcome = nil, nil
		a.Stats.Ground, b.Stats.Ground = nil, nil
		a.Stats.Plan, b.Stats.Plan = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("step %d: repair replayed units computed from stale ADMM iterates", step)
		}
	}
}
