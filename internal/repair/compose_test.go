package repair

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ground"
)

// TestComposeChurnProperty checks the deferred-splice algebra: folding
// each step's churn into the pending pair with composeChurn and
// splicing once must produce the exact list (content, not just ids)
// that eager per-step splices produce — across removals of flushed
// elements, cancellation of never-flushed pending additions,
// replacements (same id, new content) and interleaved flushes.
func TestComposeChurnProperty(t *testing.T) {
	factID := func(f Fact) ground.AtomID { return f.AtomID }
	rng := rand.New(rand.NewSource(7))

	// flushed + (pendRm, pendAd) is the deferred view; eager is the
	// ground truth maintained by per-step splices.
	var flushed, pendRm, pendAd []Fact
	var eager []Fact
	version := map[ground.AtomID]uint64{}
	for id := ground.AtomID(0); id < 40; id += 2 {
		f := synthFact(id, classKept, uint64(id))
		flushed = append(flushed, f)
		eager = append(eager, f)
		version[id] = uint64(id)
	}

	present := func() []ground.AtomID {
		ids := make([]ground.AtomID, 0, len(eager))
		for _, f := range eager {
			ids = append(ids, f.AtomID)
		}
		return ids
	}
	for step := 0; step < 200; step++ {
		// Build one step's churn: remove some present ids, then add a
		// mix of absent ids and replacements of just-removed ids (the
		// same shape apply() produces after cancelCommon).
		var rm, ad []Fact
		for _, id := range present() {
			if rng.Intn(4) == 0 {
				rm = append(rm, synthFact(id, classKept, version[id]))
				if rng.Intn(2) == 0 { // replacement: same id, new content
					version[id]++
					ad = append(ad, synthFact(id, classKept, version[id]))
				}
			}
		}
		for id := ground.AtomID(1); id < 60; id += 2 {
			inEager := false
			for _, f := range eager {
				if f.AtomID == id {
					inEager = true
					break
				}
			}
			if !inEager && rng.Intn(10) == 0 {
				version[id]++
				ad = append(ad, synthFact(id, classKept, version[id]))
			}
		}
		// Churn lists are id-sorted by contract (apply() emits them that
		// way); the generator interleaves replacements and fresh ids.
		sort.Slice(ad, func(i, j int) bool { return ad[i].AtomID < ad[j].AtomID })

		eager = splice(eager, rm, ad, factID)
		pendRm, pendAd = composeChurn(pendRm, pendAd, rm, ad, factID)
		deferred := splice(flushed, pendRm, pendAd, factID)
		if !reflect.DeepEqual(deferred, eager) {
			t.Fatalf("step %d: deferred splice diverged from eager\nrm=%d ad=%d pendRm=%d pendAd=%d",
				step, len(rm), len(ad), len(pendRm), len(pendAd))
		}
		if rng.Intn(5) == 0 { // flush, as a materializing solve would
			flushed = deferred
			pendRm, pendAd = nil, nil
		}
	}
}

// TestComposeChurnEdges pins the hand-reasoned cases: a removal
// cancelling a pending addition outright, a removal of a flushed
// element passing through, and churn landing on an empty pending pair.
func TestComposeChurnEdges(t *testing.T) {
	factID := func(f Fact) ground.AtomID { return f.AtomID }
	mk := func(ids ...ground.AtomID) []Fact {
		fs := make([]Fact, 0, len(ids))
		for _, id := range ids {
			fs = append(fs, synthFact(id, classKept, uint64(id)))
		}
		return fs
	}
	ids := func(fs []Fact) []ground.AtomID {
		out := []ground.AtomID{}
		for _, f := range fs {
			out = append(out, f.AtomID)
		}
		return out
	}

	// Empty churn: pending pair unchanged (identity, same slices).
	r, a := composeChurn(mk(1), mk(2), nil, nil, factID)
	if !reflect.DeepEqual(ids(r), []ground.AtomID{1}) || !reflect.DeepEqual(ids(a), []ground.AtomID{2}) {
		t.Fatalf("identity compose changed pending: rm=%v ad=%v", ids(r), ids(a))
	}
	// Removing a pending addition cancels it without touching R; the
	// flushed element's removal joins R.
	r, a = composeChurn(mk(1), mk(4, 8), mk(4, 10), nil, factID)
	if !reflect.DeepEqual(ids(r), []ground.AtomID{1, 10}) {
		t.Fatalf("compose rm = %v, want [1 10]", ids(r))
	}
	if !reflect.DeepEqual(ids(a), []ground.AtomID{8}) {
		t.Fatalf("compose ad = %v, want [8]", ids(a))
	}
	// Churn onto an empty pending pair adopts the churn as-is.
	r, a = composeChurn(nil, nil, mk(3), mk(5), factID)
	if !reflect.DeepEqual(ids(r), []ground.AtomID{3}) || !reflect.DeepEqual(ids(a), []ground.AtomID{5}) {
		t.Fatalf("empty-pending compose: rm=%v ad=%v", ids(r), ids(a))
	}
}
