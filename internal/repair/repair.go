// Package repair interprets a MAP state as a conflict resolution of the
// input knowledge graph: which facts form the most probable consistent
// subset, which were removed as noise, which implicit facts inference
// made explicit, and the debugging statistics the TeCoRe UI displays
// (Figure 8 of the paper: total facts, conflicting facts, per-constraint
// violation counts, conflict clusters). Derived facts get a propagated
// confidence and can be filtered by a user threshold.
package repair

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/translate"
)

// Options tunes conflict resolution.
type Options struct {
	// Threshold drops derived facts whose propagated confidence falls
	// below it (0 keeps everything).
	Threshold float64
	// ConfidenceRounds bounds the derived-confidence propagation
	// iterations (default 64). Propagation normally reaches its fixpoint
	// — which is unique and independent of clause iteration order — well
	// within the bound; the bound only cuts off pathological cascades.
	ConfidenceRounds int
}

func (o Options) withDefaults() Options {
	if o.ConfidenceRounds == 0 {
		o.ConfidenceRounds = 64
	}
	return o
}

// Fact is a resolved fact with its provenance.
type Fact struct {
	Quad rdf.Quad
	// Derived reports whether the fact was inferred rather than given.
	Derived bool
	// AtomID is the ground atom behind the fact.
	AtomID ground.AtomID
	// Explanations justify a removal: the constraint groundings that
	// would be violated were the fact kept (empty for kept/inferred
	// facts).
	Explanations []Explanation
}

// Explanation names a constraint grounding responsible for a removal.
type Explanation struct {
	// Rule is the constraint's name.
	Rule string
	// Partners are the other statements of the violated grounding (all
	// kept in the final state).
	Partners []rdf.FactKey
}

// String renders the explanation: "c2 with (CR, coach, Chelsea, ...)".
func (e Explanation) String() string {
	s := e.Rule
	for i, p := range e.Partners {
		if i == 0 {
			s += " with "
		} else {
			s += ", "
		}
		s += p.String()
	}
	return s
}

// Stats summarises the debugging run, mirroring the result statistics
// display of the demo.
type Stats struct {
	// TotalFacts is the number of input facts.
	TotalFacts int
	// KeptFacts is the number of input facts in the consistent subset.
	KeptFacts int
	// RemovedFacts counts input facts dropped as conflicting noise.
	RemovedFacts int
	// RemovedWeight is the total confidence mass removed.
	RemovedWeight float64
	// InferredFacts counts derived facts surviving the threshold.
	InferredFacts int
	// ThresholdFiltered counts derived facts dropped by the threshold.
	ThresholdFiltered int
	// ConflictClusters is the number of connected groups of mutually
	// conflicting facts.
	ConflictClusters int
	// RuleViolations counts residual violated groundings per rule (soft
	// rules; hard constraints are satisfied by construction).
	RuleViolations map[string]int
	// Solver names the backend used.
	Solver string
	// Runtime is the solver's inference time.
	Runtime time.Duration
	// Components summarises the component-decomposed solve — component
	// count, size histogram, solved/reused split and per-engine tallies.
	// Nil when the monolithic path ran.
	Components *ground.ComponentStats
}

// Outcome is the full result of temporal conflict resolution.
type Outcome struct {
	// Kept are the input facts in the most probable consistent subset.
	Kept []Fact
	// Removed are the input facts identified as conflicting noise.
	Removed []Fact
	// Inferred are derived facts (threshold applied), with propagated
	// confidences in Quad.Confidence.
	Inferred []Fact
	// Clusters groups the statements involved in each conflict
	// component (facts connected by violated-or-resolving constraint
	// groundings).
	Clusters [][]rdf.FactKey
	// Stats is the summary.
	Stats Stats
}

// ConsistentGraph returns kept plus inferred facts as a graph — the
// expanded, conflict-free utkg of Figure 7.
func (o *Outcome) ConsistentGraph() rdf.Graph {
	g := make(rdf.Graph, 0, len(o.Kept)+len(o.Inferred))
	for _, f := range o.Kept {
		g = append(g, f.Quad)
	}
	for _, f := range o.Inferred {
		g = append(g, f.Quad)
	}
	return g
}

// Resolve interprets the translator output as a conflict resolution.
func Resolve(out *translate.Output, prog *logic.Program, opts Options) (*Outcome, error) {
	opts = opts.withDefaults()
	g := out.Grounder
	atoms := g.Atoms()
	oc := &Outcome{Stats: Stats{
		Solver:  out.Solver.String(),
		Runtime: out.Runtime,
	}}
	if out.MLN != nil {
		oc.Stats.Components = out.MLN.Components
	} else if out.PSL != nil {
		oc.Stats.Components = out.PSL.Components
	}

	confidences, err := deriveConfidences(out, prog, opts)
	if err != nil {
		return nil, err
	}

	for i := 0; i < atoms.Len(); i++ {
		id := ground.AtomID(i)
		info := atoms.Info(id)
		if info.Retracted {
			continue // removed fact / no longer derivable: not part of this solve
		}
		if info.Evidence {
			oc.Stats.TotalFacts++
			q := rdf.Quad{Subject: info.Key.S, Predicate: info.Key.P, Object: info.Key.O,
				Interval: info.Key.Interval, Confidence: info.Conf}
			if out.Truth[i] {
				oc.Kept = append(oc.Kept, Fact{Quad: q, AtomID: id})
				oc.Stats.KeptFacts++
			} else {
				oc.Removed = append(oc.Removed, Fact{Quad: q, AtomID: id})
				oc.Stats.RemovedFacts++
				oc.Stats.RemovedWeight += info.Conf
			}
			continue
		}
		if !out.Truth[i] {
			continue
		}
		conf := confidences[i]
		if conf < opts.Threshold {
			oc.Stats.ThresholdFiltered++
			continue
		}
		q := rdf.Quad{Subject: info.Key.S, Predicate: info.Key.P, Object: info.Key.O,
			Interval: info.Key.Interval, Confidence: conf}
		oc.Inferred = append(oc.Inferred, Fact{Quad: q, Derived: true, AtomID: id})
		oc.Stats.InferredFacts++
	}

	clusters, explanations, err := conflictAnalysis(out, prog)
	if err != nil {
		return nil, err
	}
	oc.Clusters = clusters
	oc.Stats.ConflictClusters = len(clusters)
	for i := range oc.Removed {
		oc.Removed[i].Explanations = explanations[oc.Removed[i].AtomID]
	}

	oc.Stats.RuleViolations, err = residualViolations(out, prog)
	if err != nil {
		return nil, err
	}
	sortFacts(oc.Kept)
	sortFacts(oc.Removed)
	sortFacts(oc.Inferred)
	return oc, nil
}

func sortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].AtomID < fs[j].AtomID })
}

// deriveConfidences assigns confidences to derived atoms. PSL's soft
// values are used directly. For MLN the confidence propagates through
// supporting rule groundings: a derivation is as credible as its weakest
// premise, attenuated by the rule's weight (σ(w)); alternative
// derivations take the maximum. Evidence atoms keep their input
// confidence.
func deriveConfidences(out *translate.Output, prog *logic.Program, opts Options) ([]float64, error) {
	atoms := out.Grounder.Atoms()
	conf := make([]float64, atoms.Len())
	for i := 0; i < atoms.Len(); i++ {
		info := atoms.Info(ground.AtomID(i))
		if info.Evidence {
			conf[i] = info.Conf
		}
	}
	if out.SoftValues != nil {
		for i := range conf {
			if !atoms.Info(ground.AtomID(i)).Evidence {
				conf[i] = out.SoftValues[i]
			}
		}
		return conf, nil
	}

	// MLN: propagate along inference clauses (¬b1 ∨ ... ∨ ¬bn ∨ h),
	// read off the solve's clause set when available (the incremental
	// path keeps it alive), otherwise re-grounded.
	cs := out.Clauses
	if cs == nil {
		var err error
		cs, err = out.Grounder.GroundProgram(prog)
		if err != nil {
			return nil, fmt.Errorf("repair: %w", err)
		}
	}
	type support struct {
		head ground.AtomID
		body []ground.AtomID
		att  float64 // σ(w)
	}
	var supports []support
	cs.ForEach(func(c *ground.Clause) bool {
		var head ground.AtomID = -1
		var body []ground.AtomID
		for _, l := range c.Lits {
			if l.Neg {
				body = append(body, l.Atom)
			} else if head == -1 {
				head = l.Atom
			} else {
				head = -1 // multi-positive clause: not an implication shape
				break
			}
		}
		if head < 0 || atoms.Info(head).Evidence || !out.Truth[head] {
			return true
		}
		att := 1.0
		if !math.IsInf(c.Weight, 1) {
			att = 1 / (1 + math.Exp(-c.Weight))
		}
		supports = append(supports, support{head: head, body: body, att: att})
		return true
	})
	for round := 0; round < opts.ConfidenceRounds; round++ {
		changed := false
		for _, s := range supports {
			m := 1.0
			for _, b := range s.body {
				if !out.Truth[b] {
					m = 0
					break
				}
				if conf[b] < m {
					m = conf[b]
				}
			}
			v := m * s.att
			if v > conf[s.head]+1e-12 {
				conf[s.head] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return conf, nil
}

// conflictAnalysis grounds the constraints against "everything asserted"
// and derives both the conflict clusters (connected components over
// groundings that caused removals) and per-removed-atom explanations:
// the groundings whose other members all survived, so keeping the
// removed fact would violate the constraint.
func conflictAnalysis(out *translate.Output, prog *logic.Program) ([][]rdf.FactKey, map[ground.AtomID][]Explanation, error) {
	g := out.Grounder
	atoms := g.Atoms()
	parent := make(map[ground.AtomID]ground.AtomID)
	var find func(a ground.AtomID) ground.AtomID
	find = func(a ground.AtomID) ground.AtomID {
		if parent[a] == a {
			return a
		}
		parent[a] = find(parent[a])
		return parent[a]
	}
	add := func(a ground.AtomID) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
	}
	union := func(a, b ground.AtomID) {
		add(a)
		add(b)
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	explanations := make(map[ground.AtomID][]Explanation)
	// process folds one constraint grounding into the cluster structure
	// and, when exactly one member was removed, into that member's
	// explanations (restoring it would violate the grounding against
	// kept facts). Clauses are visited in place — materialising a copy
	// of every constraint grounding per solve dominated incremental
	// re-solves.
	var removed []ground.AtomID
	process := func(c *ground.Clause) {
		removed = removed[:0]
		for _, l := range c.Lits {
			if !out.Truth[l.Atom] {
				removed = append(removed, l.Atom)
			}
		}
		if len(removed) == 0 {
			return
		}
		for i := 1; i < len(c.Lits); i++ {
			union(c.Lits[0].Atom, c.Lits[i].Atom)
		}
		if len(removed) == 1 {
			ex := Explanation{Rule: c.Rule}
			for _, l := range c.Lits {
				if l.Atom != removed[0] {
					ex.Partners = append(ex.Partners, atoms.Info(l.Atom).Key)
				}
			}
			explanations[removed[0]] = append(explanations[removed[0]], ex)
		}
	}
	// The full conflict structure is the set of constraint groundings
	// over "everything asserted". When the solve's clause set is
	// available those are exactly its all-negative clauses (constraint
	// clauses carry no head literal); otherwise ground the constraints
	// against an all-true assignment to recover them.
	if out.Clauses != nil {
		out.Clauses.ForEach(func(c *ground.Clause) bool {
			for _, l := range c.Lits {
				if !l.Neg {
					return true // inference clause
				}
			}
			process(c)
			return true
		})
	} else {
		allTrue := func(ground.AtomID) bool { return true }
		constraints := &logic.Program{Rules: prog.Constraints()}
		cs, err := g.GroundViolated(constraints, allTrue)
		if err != nil {
			return nil, nil, fmt.Errorf("repair: %w", err)
		}
		cs.ForEach(func(c *ground.Clause) bool {
			process(c)
			return true
		})
	}
	groups := make(map[ground.AtomID][]rdf.FactKey)
	var roots []ground.AtomID
	for a := range parent {
		r := find(a)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], atoms.Info(a).Key)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out2 := make([][]rdf.FactKey, 0, len(roots))
	for _, r := range roots {
		keys := groups[r]
		// Compare, not String(): rendering keys inside the comparator
		// dominated incremental re-solves on cluster-heavy graphs.
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		out2 = append(out2, keys)
	}
	return out2, explanations, nil
}

// residualViolations counts rule groundings still violated in the final
// state, reading them off the solve's clause set when available.
func residualViolations(out *translate.Output, prog *logic.Program) (map[string]int, error) {
	truth := func(a ground.AtomID) bool { return out.Truth[a] }
	counts := make(map[string]int)
	if out.Clauses != nil {
		out.Clauses.ForEach(func(c *ground.Clause) bool {
			if !c.Satisfied(truth) {
				counts[c.Rule]++
			}
			return true
		})
		return counts, nil
	}
	cs, err := out.Grounder.GroundViolated(prog, truth)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	for _, c := range cs.Clauses() {
		counts[c.Rule]++
	}
	return counts, nil
}
