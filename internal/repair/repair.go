// Package repair interprets a MAP state as a conflict resolution of the
// input knowledge graph: which facts form the most probable consistent
// subset, which were removed as noise, which implicit facts inference
// made explicit, and the debugging statistics the TeCoRe UI displays
// (Figure 8 of the paper: total facts, conflicting facts, per-constraint
// violation counts, conflict clusters). Derived facts get a propagated
// confidence and can be filtered by a user threshold.
//
// The read-out decomposes along the conflict components of the ground
// network exactly like the solvers do: every piece — fact
// classification, confidence propagation, conflict clusters,
// explanations and violation counts — is computed per clause-connected
// scope (resolveUnit) and merged deterministically (assembleOutcome).
// Resolve runs one unit over the whole graph; ResolveComponents (see
// components.go) runs one unit per conflict component with a
// per-component cache, so an incremental update re-repairs only the
// components it dirtied.
package repair

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/translate"
)

// Options tunes conflict resolution.
type Options struct {
	// Threshold drops derived facts whose propagated confidence falls
	// below it (0 keeps everything).
	Threshold float64
	// ConfidenceRounds bounds the derived-confidence propagation
	// iterations (default 64). Propagation normally reaches its fixpoint
	// — which is unique and independent of clause iteration order — well
	// within the bound; the bound only cuts off pathological cascades.
	ConfidenceRounds int
	// Parallelism bounds the worker pool of the component-decomposed
	// read-out (ResolveComponents): 0 uses GOMAXPROCS, 1 forces the
	// sequential path. The Outcome is identical at every setting.
	Parallelism int
	// DeltaOnly skips materializing the global fact and cluster lists on
	// the live outcome path: the Outcome carries exact counts, violation
	// totals and the changelog, but nil Kept/Removed/Inferred/Clusters;
	// the list splices stay pending on the LiveOutcome until the next
	// materializing solve flushes them. Ignored off the live path.
	DeltaOnly bool
}

func (o Options) withDefaults() Options {
	if o.ConfidenceRounds == 0 {
		o.ConfidenceRounds = 64
	}
	return o
}

// Fact is a resolved fact with its provenance.
type Fact struct {
	Quad rdf.Quad
	// Derived reports whether the fact was inferred rather than given.
	Derived bool
	// AtomID is the ground atom behind the fact.
	AtomID ground.AtomID
	// Explanations justify a removal: the constraint groundings that
	// would be violated were the fact kept (empty for kept/inferred
	// facts).
	Explanations []Explanation
}

// Explanation names a constraint grounding responsible for a removal.
type Explanation struct {
	// Rule is the constraint's name.
	Rule string
	// Partners are the other statements of the violated grounding (all
	// kept in the final state).
	Partners []rdf.FactKey
}

// String renders the explanation: "c2 with (CR, coach, Chelsea, ...)".
func (e Explanation) String() string {
	s := e.Rule
	for i, p := range e.Partners {
		if i == 0 {
			s += " with "
		} else {
			s += ", "
		}
		s += p.String()
	}
	return s
}

// Repair modes reported in RepairStats.Mode.
const (
	// RepairWholeGraph is one read-out pass over the full ground
	// program.
	RepairWholeGraph = "whole-graph"
	// RepairComponents is the component-decomposed read-out with
	// per-component caching (ResolveComponents).
	RepairComponents = "components"
)

// RepairStats summarises the conflict-resolution read-out stage — the
// incremental counterpart of the solver's ComponentStats.
type RepairStats struct {
	// Mode reports how the read-out ran: RepairWholeGraph or
	// RepairComponents.
	Mode string
	// Components is the number of conflict components the read-out was
	// decomposed into (component mode only).
	Components int
	// Repaired counts components whose read-out was recomputed this
	// solve; Reused counts components whose cached read-out was kept.
	// In whole-graph mode Repaired is 1.
	Repaired int
	Reused   int
	// Analysis is the time spent computing (or reusing) the per-scope
	// read-outs — conflict analysis, confidence propagation, violation
	// counts; Merge is the deterministic merge into the final Outcome;
	// Total is the whole read-out stage including orchestration.
	Analysis time.Duration
	Merge    time.Duration
	Total    time.Duration
}

// Stats summarises the debugging run, mirroring the result statistics
// display of the demo.
type Stats struct {
	// TotalFacts is the number of input facts.
	TotalFacts int
	// KeptFacts is the number of input facts in the consistent subset.
	KeptFacts int
	// RemovedFacts counts input facts dropped as conflicting noise.
	RemovedFacts int
	// RemovedWeight is the total confidence mass removed.
	RemovedWeight float64
	// InferredFacts counts derived facts surviving the threshold.
	InferredFacts int
	// ThresholdFiltered counts derived facts dropped by the threshold.
	ThresholdFiltered int
	// ConflictClusters is the number of connected groups of mutually
	// conflicting facts.
	ConflictClusters int
	// RuleViolations counts residual violated groundings per rule (soft
	// rules; hard constraints are satisfied by construction).
	RuleViolations map[string]int
	// Solver names the backend used.
	Solver string
	// Runtime is the solver's inference time.
	Runtime time.Duration
	// Ground summarises the grounding stage: join wall time plus
	// per-rule plans, candidate counts and emission counts. Nil when the
	// solve path kept no grounder (the greedy baseline).
	Ground *ground.GroundStats
	// Components summarises the component-decomposed solve — component
	// count, size histogram, solved/reused split and per-engine tallies.
	// Nil when the monolithic path ran.
	Components *ground.ComponentStats
	// Repair summarises the conflict-resolution read-out stage: how it
	// ran (whole-graph or per-component), the repaired/reused component
	// split, and stage timings.
	Repair *RepairStats
	// Outcome summarises how the final Outcome was produced: assembled
	// from scratch (sort/merge of every read-out unit) or delta-patched
	// on the session's live outcome, with the patched/reused component
	// split and the index/merge timings.
	Outcome *OutcomeStats
	// Plan summarises how the solve obtained its component decomposition
	// plan: delta-maintained on the session engine or rebuilt from
	// scratch, with splice/patch counts and the sync timing. Nil when no
	// component plan was built (monolithic path).
	Plan *engine.PlanStats
}

// Outcome is the full result of temporal conflict resolution.
type Outcome struct {
	// Kept are the input facts in the most probable consistent subset.
	Kept []Fact
	// Removed are the input facts identified as conflicting noise.
	Removed []Fact
	// Inferred are derived facts (threshold applied), with propagated
	// confidences in Quad.Confidence.
	Inferred []Fact
	// Clusters groups the statements involved in each conflict
	// component (facts connected by violated-or-resolving constraint
	// groundings).
	Clusters [][]rdf.FactKey
	// Stats is the summary.
	Stats Stats
}

// ConsistentGraph returns kept plus inferred facts as a graph — the
// expanded, conflict-free utkg of Figure 7.
func (o *Outcome) ConsistentGraph() rdf.Graph {
	g := make(rdf.Graph, 0, len(o.Kept)+len(o.Inferred))
	for _, f := range o.Kept {
		g = append(g, f.Quad)
	}
	for _, f := range o.Inferred {
		g = append(g, f.Quad)
	}
	return g
}

// clauseVisitor walks a scope's live clauses in stable slot order —
// ForEachSlot for the whole graph, ForEachComponentClause restricted to
// one component.
type clauseVisitor func(fn func(slot int32, c *ground.Clause) bool)

// unit is the conflict-resolution read-out of one clause-connected
// scope: a single conflict component, or the whole graph.
type unit struct {
	kept, removed, inferred []Fact
	thresholdFiltered       int
	clusters                []Cluster
	violations              map[string]int
}

// Cluster is one connected group of conflicting statements, tagged with
// its union-find root — a deterministic cross-scope merge order and a
// stable identity for the live outcome's delta changelog.
type Cluster struct {
	// Root is the union-find root atom of the group; roots are unique
	// across disjoint scopes, so they order and identify clusters.
	Root ground.AtomID
	// Keys are the statements of the group, sorted.
	Keys []rdf.FactKey
}

// newOutcome seeds an Outcome with the solver-side statistics.
func newOutcome(out *translate.Output) *Outcome {
	oc := &Outcome{Stats: Stats{
		Solver:  out.Solver.String(),
		Runtime: out.Runtime,
		Repair:  &RepairStats{Mode: RepairWholeGraph, Repaired: 1},
		Outcome: &OutcomeStats{Mode: OutcomeAssembled},
	}}
	if out.MLN != nil {
		oc.Stats.Components = out.MLN.Components
	} else if out.PSL != nil {
		oc.Stats.Components = out.PSL.Components
	}
	return oc
}

// liveAtoms lists the non-retracted atoms in ascending id order — the
// whole-graph scope.
func liveAtoms(atoms *ground.AtomTable) []ground.AtomID {
	scope := make([]ground.AtomID, 0, atoms.Len())
	for i := 0; i < atoms.Len(); i++ {
		if !atoms.Info(ground.AtomID(i)).Retracted {
			scope = append(scope, ground.AtomID(i))
		}
	}
	return scope
}

// Resolve interprets the translator output as a conflict resolution —
// one read-out unit over the whole graph. When the solve's clause set
// is unavailable (the cutting-plane and greedy paths) the rule
// groundings are recovered by re-grounding the program.
func Resolve(out *translate.Output, prog *logic.Program, opts Options) (*Outcome, error) {
	opts = opts.withDefaults()
	start := time.Now()
	oc := newOutcome(out)
	rs := oc.Stats.Repair

	atoms := out.Grounder.Atoms()
	scope := liveAtoms(atoms)
	conf := make([]float64, atoms.Len())

	analysisStart := time.Now()
	var u unit
	if out.Clauses != nil {
		u = resolveUnit(out, scope, out.Clauses.ForEachSlot, conf, opts)
	} else {
		var err error
		u, err = resolveRegrounding(out, prog, scope, conf, opts)
		if err != nil {
			return nil, err
		}
	}
	rs.Analysis = time.Since(analysisStart)

	mergeStart := time.Now()
	assembleOutcome(oc, []*unit{&u})
	rs.Merge = time.Since(mergeStart)
	os := oc.Stats.Outcome
	os.Patched = 1
	os.Merge = rs.Merge
	os.Total = rs.Merge
	rs.Total = time.Since(start)
	return oc, nil
}

// resolveUnit computes the read-out of one clause-connected scope from
// the scope's atoms and its clauses: scoped confidences, fact
// classification, conflict clusters with removal explanations, and
// residual violation counts. conf is shared across scopes and indexed
// by atom id; a unit writes only its own scope's entries, so disjoint
// scopes can resolve concurrently.
func resolveUnit(out *translate.Output, scope []ground.AtomID, forEach clauseVisitor, conf []float64, opts Options) unit {
	propagateConfidences(out, scope, forEach, conf, opts)
	u := classifyScope(out, scope, conf, opts)

	// Conflict analysis over the scope's constraint groundings (the
	// all-negative clauses) and violation counts over all of them.
	atoms := out.Grounder.Atoms()
	scan := newConflictScan(atoms, out.Truth)
	u.violations = make(map[string]int)
	forEach(func(_ int32, c *ground.Clause) bool {
		if !c.Satisfied(func(a ground.AtomID) bool { return out.Truth[a] }) {
			u.violations[c.Rule]++
		}
		for _, l := range c.Lits {
			if !l.Neg {
				return true // inference clause
			}
		}
		scan.process(c)
		return true
	})
	u.attachAnalysis(scan)
	return u
}

// classifyScope partitions the scope's atoms into kept/removed/inferred
// facts given the MAP state and the already-propagated confidences.
func classifyScope(out *translate.Output, scope []ground.AtomID, conf []float64, opts Options) unit {
	atoms := out.Grounder.Atoms()
	var u unit
	for _, a := range scope {
		info := atoms.Info(a)
		if info.Evidence {
			q := rdf.Quad{Subject: info.Key.S, Predicate: info.Key.P, Object: info.Key.O,
				Interval: info.Key.Interval, Confidence: info.Conf}
			if out.Truth[a] {
				u.kept = append(u.kept, Fact{Quad: q, AtomID: a})
			} else {
				u.removed = append(u.removed, Fact{Quad: q, AtomID: a})
			}
			continue
		}
		if !out.Truth[a] {
			continue
		}
		c := conf[a]
		if c < opts.Threshold {
			u.thresholdFiltered++
			continue
		}
		q := rdf.Quad{Subject: info.Key.S, Predicate: info.Key.P, Object: info.Key.O,
			Interval: info.Key.Interval, Confidence: c}
		u.inferred = append(u.inferred, Fact{Quad: q, Derived: true, AtomID: a})
	}
	return u
}

// attachAnalysis folds a finished conflict scan into the unit: derived
// clusters, and removal explanations onto the removed facts.
func (u *unit) attachAnalysis(scan *conflictScan) {
	u.clusters = scan.clusters()
	for i := range u.removed {
		u.removed[i].Explanations = scan.explanations[u.removed[i].AtomID]
	}
}

// assembleOutcome merges read-out units into the Outcome: facts sorted
// by atom id, clusters by union-find root, statistics recomputed over
// the merged lists in that fixed order — so the merged result is
// byte-identical to a single whole-graph unit over the same state, and
// identical at every parallelism setting.
func assembleOutcome(oc *Outcome, units []*unit) {
	var nk, nr, ni, nc int
	for _, u := range units {
		nk += len(u.kept)
		nr += len(u.removed)
		ni += len(u.inferred)
		nc += len(u.clusters)
	}
	oc.Kept = make([]Fact, 0, nk)
	oc.Removed = make([]Fact, 0, nr)
	oc.Inferred = make([]Fact, 0, ni)
	oc.Stats.RuleViolations = make(map[string]int)
	for _, u := range units {
		oc.Kept = append(oc.Kept, u.kept...)
		oc.Removed = append(oc.Removed, u.removed...)
		oc.Inferred = append(oc.Inferred, u.inferred...)
		oc.Stats.ThresholdFiltered += u.thresholdFiltered
		for rule, n := range u.violations {
			oc.Stats.RuleViolations[rule] += n
		}
	}
	sortFacts(oc.Kept)
	sortFacts(oc.Removed)
	sortFacts(oc.Inferred)
	oc.Stats.KeptFacts = len(oc.Kept)
	oc.Stats.RemovedFacts = len(oc.Removed)
	oc.Stats.TotalFacts = len(oc.Kept) + len(oc.Removed)
	oc.Stats.InferredFacts = len(oc.Inferred)
	for _, f := range oc.Removed {
		oc.Stats.RemovedWeight += f.Quad.Confidence
	}

	clusters := make([]Cluster, 0, nc)
	for _, u := range units {
		clusters = append(clusters, u.clusters...)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Root < clusters[j].Root })
	oc.Clusters = make([][]rdf.FactKey, 0, len(clusters))
	for _, c := range clusters {
		oc.Clusters = append(oc.Clusters, c.Keys)
	}
	oc.Stats.ConflictClusters = len(oc.Clusters)
}

func sortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].AtomID < fs[j].AtomID })
}

// propagateConfidences assigns confidences to the scope's atoms. PSL's
// soft values are used directly. For MLN the confidence propagates
// through supporting rule groundings: a derivation is as credible as
// its weakest premise, attenuated by the rule's weight (σ(w));
// alternative derivations take the maximum. Evidence atoms keep their
// input confidence. Inference clauses never cross conflict components,
// so scoped propagation reaches the same fixpoint as a whole-graph
// pass.
func propagateConfidences(out *translate.Output, scope []ground.AtomID, forEach clauseVisitor, conf []float64, opts Options) {
	atoms := out.Grounder.Atoms()
	if out.SoftValues != nil {
		for _, a := range scope {
			if atoms.Info(a).Evidence {
				conf[a] = atoms.Info(a).Conf
			} else {
				conf[a] = out.SoftValues[a]
			}
		}
		return
	}
	for _, a := range scope {
		info := atoms.Info(a)
		if info.Evidence {
			conf[a] = info.Conf
		} else {
			conf[a] = 0
		}
	}

	// MLN: propagate along inference clauses (¬b1 ∨ ... ∨ ¬bn ∨ h).
	type support struct {
		head ground.AtomID
		body []ground.AtomID
		att  float64 // σ(w)
	}
	var supports []support
	forEach(func(_ int32, c *ground.Clause) bool {
		var head ground.AtomID = -1
		var body []ground.AtomID
		for _, l := range c.Lits {
			if l.Neg {
				body = append(body, l.Atom)
			} else if head == -1 {
				head = l.Atom
			} else {
				head = -1 // multi-positive clause: not an implication shape
				break
			}
		}
		if head < 0 || atoms.Info(head).Evidence || !out.Truth[head] {
			return true
		}
		att := 1.0
		if !math.IsInf(c.Weight, 1) {
			att = 1 / (1 + math.Exp(-c.Weight))
		}
		supports = append(supports, support{head: head, body: body, att: att})
		return true
	})
	for round := 0; round < opts.ConfidenceRounds; round++ {
		changed := false
		for _, s := range supports {
			m := 1.0
			for _, b := range s.body {
				if !out.Truth[b] {
					m = 0
					break
				}
				if conf[b] < m {
					m = conf[b]
				}
			}
			v := m * s.att
			if v > conf[s.head]+1e-12 {
				conf[s.head] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// conflictScan folds constraint groundings into the cluster structure
// (connected components over groundings that caused removals) and
// per-removed-atom explanations: the groundings whose other members all
// survived, so keeping the removed fact would violate the constraint.
type conflictScan struct {
	atoms        *ground.AtomTable
	truth        []bool
	parent       map[ground.AtomID]ground.AtomID
	explanations map[ground.AtomID][]Explanation
	removed      []ground.AtomID // scratch, reused across clauses
}

func newConflictScan(atoms *ground.AtomTable, truth []bool) *conflictScan {
	return &conflictScan{
		atoms:        atoms,
		truth:        truth,
		parent:       make(map[ground.AtomID]ground.AtomID),
		explanations: make(map[ground.AtomID][]Explanation),
	}
}

func (s *conflictScan) find(a ground.AtomID) ground.AtomID {
	if s.parent[a] == a {
		return a
	}
	r := s.find(s.parent[a])
	s.parent[a] = r
	return r
}

func (s *conflictScan) union(a, b ground.AtomID) {
	for _, x := range [2]ground.AtomID{a, b} {
		if _, ok := s.parent[x]; !ok {
			s.parent[x] = x
		}
	}
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.parent[ra] = rb
	}
}

// process folds one constraint grounding into the cluster structure
// and, when exactly one member was removed, into that member's
// explanations (restoring it would violate the grounding against kept
// facts). Clauses are visited in place — materialising a copy of every
// constraint grounding per solve dominated incremental re-solves.
func (s *conflictScan) process(c *ground.Clause) {
	s.removed = s.removed[:0]
	for _, l := range c.Lits {
		if !s.truth[l.Atom] {
			s.removed = append(s.removed, l.Atom)
		}
	}
	if len(s.removed) == 0 {
		return
	}
	for i := 1; i < len(c.Lits); i++ {
		s.union(c.Lits[0].Atom, c.Lits[i].Atom)
	}
	if len(s.removed) == 1 {
		ex := Explanation{Rule: c.Rule}
		for _, l := range c.Lits {
			if l.Atom != s.removed[0] {
				ex.Partners = append(ex.Partners, s.atoms.Info(l.Atom).Key)
			}
		}
		s.explanations[s.removed[0]] = append(s.explanations[s.removed[0]], ex)
	}
}

// clusters derives the connected groups, each tagged with its root and
// its keys sorted. Compare, not String(): rendering keys inside the
// comparator dominated incremental re-solves on cluster-heavy graphs.
func (s *conflictScan) clusters() []Cluster {
	groups := make(map[ground.AtomID][]rdf.FactKey)
	var roots []ground.AtomID
	for a := range s.parent {
		r := s.find(a)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], s.atoms.Info(a).Key)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := make([]Cluster, 0, len(roots))
	for _, r := range roots {
		keys := groups[r]
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		out = append(out, Cluster{Root: r, Keys: keys})
	}
	return out
}

// resolveRegrounding is the read-out for solver paths that keep no
// clause set (cutting-plane, greedy): the rule groundings are recovered
// by re-grounding — the full program for confidence propagation,
// constraints against "everything asserted" for conflict analysis, and
// the program against the final state for violation counts.
func resolveRegrounding(out *translate.Output, prog *logic.Program, scope []ground.AtomID, conf []float64, opts Options) (unit, error) {
	g := out.Grounder
	atoms := g.Atoms()

	cs, err := g.GroundProgram(prog)
	if err != nil {
		return unit{}, fmt.Errorf("repair: %w", err)
	}
	propagateConfidences(out, scope, cs.ForEachSlot, conf, opts)
	u := classifyScope(out, scope, conf, opts)

	allTrue := func(ground.AtomID) bool { return true }
	constraints := &logic.Program{Rules: prog.Constraints()}
	ccs, err := g.GroundViolated(constraints, allTrue)
	if err != nil {
		return unit{}, fmt.Errorf("repair: %w", err)
	}
	scan := newConflictScan(atoms, out.Truth)
	ccs.ForEach(func(c *ground.Clause) bool {
		scan.process(c)
		return true
	})
	u.attachAnalysis(scan)

	vcs, err := g.GroundViolated(prog, func(a ground.AtomID) bool { return out.Truth[a] })
	if err != nil {
		return unit{}, fmt.Errorf("repair: %w", err)
	}
	u.violations = make(map[string]int)
	for _, c := range vcs.Clauses() {
		u.violations[c.Rule]++
	}
	return u, nil
}
