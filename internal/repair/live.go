package repair

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/rdf"
)

// Delta-maintained Outcome.
//
// After the solver and repair stages went component-incremental (PRs
// 3–4), assembling the final Outcome — the sort/merge of every
// component's kept/removed/inferred facts and conflict clusters — was
// the last whole-graph work on the update path. LiveOutcome removes it:
// the session keeps one live outcome whose global fact lists, cluster
// list and fact index stay sorted across solves, and each re-solve
// applies a Patch per dirtied component (subtract the component's
// previous contribution, splice in the new one) instead of rebuilding
// everything. The materialized Outcome is byte-identical to what
// whole-graph assembly produces over the same units, and every patch
// also feeds an OutcomeDelta changelog so callers can consume diffs
// instead of snapshots.

// Outcome read-out modes reported in OutcomeStats.Mode.
const (
	// OutcomeAssembled is the from-scratch sort/merge of every read-out
	// unit (whole-graph Resolve, and ResolveComponents without a live
	// outcome).
	OutcomeAssembled = "assembled"
	// OutcomeLive is the delta-patched read-out: per-component patches
	// applied to the session's live outcome.
	OutcomeLive = "live"
)

// OutcomeStats summarises how the final Outcome was produced — the
// read-out counterpart of RepairStats for the merge stage.
type OutcomeStats struct {
	// Mode reports how the Outcome was built: OutcomeAssembled or
	// OutcomeLive.
	Mode string
	// Patched counts components whose contribution was (re)applied to
	// the live outcome this solve; Reused counts components whose held
	// contribution was kept untouched. In assembled mode Patched is the
	// number of units merged.
	Patched int
	Reused  int
	// Index is the time spent maintaining the global indices (patch
	// subtraction, splices, fact index, changelog); Merge is the
	// materialization of the Outcome from them (assembled mode folds
	// everything into Merge); Total is the whole stage.
	Index time.Duration
	Merge time.Duration
	Total time.Duration
}

// Patch is one conflict component's contribution to the Outcome: its
// classified facts, conflict clusters and violation counts. Applying a
// patch replaces the component's previous contribution wholesale. A
// Patch is immutable once applied — its slices are shared with the
// repair cache and with materialized Outcomes.
type Patch struct {
	// Component is the conflict component's stable key (its smallest
	// atom id).
	Component ground.AtomID
	// Kept, Removed and Inferred are the component's classified facts
	// (any order; the live outcome sorts on application).
	Kept, Removed, Inferred []Fact
	// Clusters are the component's conflict clusters.
	Clusters []Cluster
	// Violations counts the component's residual violated groundings
	// per rule.
	Violations map[string]int
	// ThresholdFiltered counts derived facts the threshold dropped.
	ThresholdFiltered int
}

// OutcomeDelta is the changelog of one live-outcome update: the facts
// and conflict clusters that entered or left each list relative to the
// previous materialized Outcome. A fact whose content changed (e.g. a
// derived confidence moved) appears in both the Removed (old content)
// and Added (new content) lists; an untouched fact appears in neither,
// even when its component was re-patched. Fact lists are sorted by atom
// id, cluster lists by cluster root.
type OutcomeDelta struct {
	AddedKept   []Fact
	RemovedKept []Fact

	AddedRemoved   []Fact
	RemovedRemoved []Fact

	AddedInferred   []Fact
	RemovedInferred []Fact

	AddedClusters   [][]rdf.FactKey
	RemovedClusters [][]rdf.FactKey
}

// Empty reports whether the update changed nothing.
func (d *OutcomeDelta) Empty() bool {
	return len(d.AddedKept) == 0 && len(d.RemovedKept) == 0 &&
		len(d.AddedRemoved) == 0 && len(d.RemovedRemoved) == 0 &&
		len(d.AddedInferred) == 0 && len(d.RemovedInferred) == 0 &&
		len(d.AddedClusters) == 0 && len(d.RemovedClusters) == 0
}

// factClass names the outcome list a fact belongs to; the live
// outcome's fact index maps every present FactKey to its class.
type factClass uint8

const (
	classKept factClass = iota + 1
	classRemoved
	classInferred
)

// LiveOutcome is a delta-maintained conflict-resolution result: global
// kept/removed/inferred lists sorted by atom id, the cluster list
// sorted by root, a fact index keyed by rdf.FactKey, and per-component
// held patches under the engine cache's (component key, generation,
// membership) invariant — the fourth consumer of that invariant after
// the MLN, PSL and repair caches. Construct with NewLiveOutcome. Not
// safe for concurrent use. The owner must drop it whenever the repair
// component cache is dropped (ColdStart, threshold/solver/tuning
// changes) and whenever a solve bypasses the live sync.
type LiveOutcome struct {
	// held stores each component's applied patch; Lookup hits prove the
	// held contribution belongs to an unchanged component.
	held *engine.Cache[*Patch]

	// Global indices. The fact slices are copy-on-write: every sync
	// builds new backing arrays, so slices handed out by a previous
	// materialization remain valid snapshots.
	kept, removed, inferred []Fact
	clusters                []Cluster
	// clusterKeys is the materialized snapshot of clusters, rebuilt
	// only when a sync changes them (an unchanged cluster list is the
	// common case on single-fact updates that dirty a cluster-free
	// region).
	clusterKeys [][]rdf.FactKey
	// index maps every present statement to its list — the global
	// fact index the per-component patches must agree with. It backs
	// the structural invariant FuzzOutcomePatch and checkInvariants
	// enforce (one class per statement, lists and patches in exact
	// agreement) and gives future consumers O(1) fact classification
	// without a scan.
	index map[rdf.FactKey]factClass

	violations        map[string]int
	thresholdFiltered int

	// delta is the changelog of the most recent sync; patched/reused is
	// its component split.
	delta   OutcomeDelta
	patched int
	reused  int
}

// NewLiveOutcome returns an empty live outcome.
func NewLiveOutcome() *LiveOutcome {
	lo := &LiveOutcome{}
	lo.Reset()
	return lo
}

// Reset drops all held state; the next sync rebuilds from scratch (and
// reports the full state as added in its changelog).
func (lo *LiveOutcome) Reset() {
	lo.held = engine.NewCache[*Patch]()
	lo.kept, lo.removed, lo.inferred = []Fact{}, []Fact{}, []Fact{}
	lo.clusters = []Cluster{}
	lo.clusterKeys = [][]rdf.FactKey{}
	lo.index = make(map[rdf.FactKey]factClass)
	lo.violations = make(map[string]int)
	lo.thresholdFiltered = 0
	lo.delta = OutcomeDelta{}
	lo.patched, lo.reused = 0, 0
}

// Delta returns the changelog of the most recent sync. The returned
// struct's slices are immutable snapshots.
func (lo *LiveOutcome) Delta() *OutcomeDelta {
	d := lo.delta
	return &d
}

// sync reconciles the live outcome with one solve's component
// partition: components whose read-out is provably unchanged (reusable
// by the caller's criteria AND held under an unchanged (key,
// generation, membership)) keep their contribution; every other
// component is re-patched from fresh, and components that vanished from
// the partition are retired. fresh must be callable for every index.
func (lo *LiveOutcome) sync(comps []ground.Component, reusable func(i int) bool, fresh func(i int) *Patch) {
	lo.patched, lo.reused = 0, 0
	var subtract, add []*Patch
	for i := range comps {
		if reusable(i) {
			if _, ok := lo.held.Lookup(&comps[i]); ok {
				lo.reused++
				continue
			}
		}
		p := fresh(i)
		lo.patched++
		if op, ok := lo.held.Peek(comps[i].Key); ok {
			subtract = append(subtract, op)
		}
		add = append(add, p)
		lo.held.Put(&comps[i], p)
	}

	// After the loop every live component's key is held; surplus
	// entries belong to components that vanished from the partition
	// (merged away or fully retracted) — the rare structural case, paid
	// for with one enumeration only when it happens.
	if lo.held.Len() > len(comps) {
		current := make(map[ground.AtomID]bool, len(comps))
		for i := range comps {
			current[comps[i].Key] = true
		}
		var retired []ground.AtomID
		lo.held.Each(func(k ground.AtomID, p *Patch) {
			if !current[k] {
				retired = append(retired, k)
				subtract = append(subtract, p)
			}
		})
		for _, k := range retired {
			lo.held.Drop(k)
		}
	}

	lo.apply(subtract, add)
}

// apply removes the subtracted patches' contributions and splices in
// the added ones, maintaining the sorted global lists, the fact index,
// the violation counts and the changelog.
func (lo *LiveOutcome) apply(subtract, add []*Patch) {
	lo.delta = OutcomeDelta{}
	if len(subtract) == 0 && len(add) == 0 {
		return
	}

	for _, p := range subtract {
		for rule, n := range p.Violations {
			if lo.violations[rule] -= n; lo.violations[rule] == 0 {
				delete(lo.violations, rule)
			}
		}
		lo.thresholdFiltered -= p.ThresholdFiltered
	}
	for _, p := range add {
		for rule, n := range p.Violations {
			lo.violations[rule] += n
		}
		lo.thresholdFiltered += p.ThresholdFiltered
	}

	// Gather per-class removal/addition lists in deterministic (atom
	// id) order.
	collect := func(sel func(*Patch) []Fact) (rm, ad []Fact) {
		for _, p := range subtract {
			rm = append(rm, sel(p)...)
		}
		for _, p := range add {
			ad = append(ad, sel(p)...)
		}
		sortFacts(rm)
		sortFacts(ad)
		return rm, ad
	}
	rmK, adK := collect(func(p *Patch) []Fact { return p.Kept })
	rmR, adR := collect(func(p *Patch) []Fact { return p.Removed })
	rmI, adI := collect(func(p *Patch) []Fact { return p.Inferred })

	// Cancel the facts a re-patched component carries over unchanged:
	// what remains is the true churn, which keeps the splice window —
	// and the index traffic — proportional to the delta, not to the
	// dirtied component. A fully-cancelled class skips its copy-on-
	// write rebuild entirely, the dominant per-update cost on large
	// graphs.
	factID := func(f Fact) ground.AtomID { return f.AtomID }
	rmK, adK = cancelCommon(rmK, adK, factID)
	rmR, adR = cancelCommon(rmR, adR, factID)
	rmI, adI = cancelCommon(rmI, adI, factID)

	// Index maintenance: all deletions before all insertions, so a fact
	// moving between classes within one sync lands on its new class.
	for _, fs := range [][]Fact{rmK, rmR, rmI} {
		for i := range fs {
			delete(lo.index, fs[i].Quad.Fact())
		}
	}
	for cls, fs := range map[factClass][]Fact{classKept: adK, classRemoved: adR, classInferred: adI} {
		for i := range fs {
			lo.index[fs[i].Quad.Fact()] = cls
		}
	}

	lo.kept = splice(lo.kept, rmK, adK, factID)
	lo.removed = splice(lo.removed, rmR, adR, factID)
	lo.inferred = splice(lo.inferred, rmI, adI, factID)

	var rmC, adC []Cluster
	for _, p := range subtract {
		rmC = append(rmC, p.Clusters...)
	}
	for _, p := range add {
		adC = append(adC, p.Clusters...)
	}
	sort.Slice(rmC, func(i, j int) bool { return rmC[i].Root < rmC[j].Root })
	sort.Slice(adC, func(i, j int) bool { return adC[i].Root < adC[j].Root })
	rmC, adC = cancelCommon(rmC, adC, func(c Cluster) ground.AtomID { return c.Root })
	if len(rmC) > 0 || len(adC) > 0 {
		lo.clusters = splice(lo.clusters, rmC, adC, func(c Cluster) ground.AtomID { return c.Root })
		keys := make([][]rdf.FactKey, 0, len(lo.clusters))
		for _, c := range lo.clusters {
			keys = append(keys, c.Keys)
		}
		lo.clusterKeys = keys
	}

	// Changelog: after cancellation the remaining lists ARE the true
	// churn (every carried-over fact and cluster cancelled above; ids
	// map 1:1 to statements and groups), already in deterministic id
	// order.
	lo.delta.RemovedKept, lo.delta.AddedKept = rmK, adK
	lo.delta.RemovedRemoved, lo.delta.AddedRemoved = rmR, adR
	lo.delta.RemovedInferred, lo.delta.AddedInferred = rmI, adI
	lo.delta.RemovedClusters = clusterKeyLists(rmC)
	lo.delta.AddedClusters = clusterKeyLists(adC)
}

// clusterKeyLists projects clusters onto their member statements, the
// shape the changelog exposes; nil stays nil so Empty() keeps working.
func clusterKeyLists(cs []Cluster) [][]rdf.FactKey {
	if len(cs) == 0 {
		return nil
	}
	out := make([][]rdf.FactKey, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.Keys)
	}
	return out
}

// cancelCommon drops the elements present with identical content on
// both sides of a patch application. Both inputs are sorted by a
// unique id (an atom keeps its id across retraction and revival and
// maps to one statement; a cluster root identifies one group), so a
// linear merge finds every carried-over element; a fully-cancelled
// side comes back nil, letting the caller skip its list entirely.
func cancelCommon[T any](rm, ad []T, id func(T) ground.AtomID) ([]T, []T) {
	i, j := 0, 0
	var outRm, outAd []T
	for i < len(rm) && j < len(ad) {
		a, b := rm[i], ad[j]
		switch ia, ib := id(a), id(b); {
		case ia == ib:
			if !reflect.DeepEqual(a, b) {
				outRm = append(outRm, a)
				outAd = append(outAd, b)
			}
			i++
			j++
		case ia < ib:
			outRm = append(outRm, a)
			i++
		default:
			outAd = append(outAd, b)
			j++
		}
	}
	outRm = append(outRm, rm[i:]...)
	outAd = append(outAd, ad[j:]...)
	return outRm, outAd
}

// splice returns global with rm's elements removed and ad's inserted,
// preserving ascending id order. Both rm and ad must be sorted by id,
// every rm id must be present in global, and no ad id may collide with
// a surviving element. Copy-on-write: the result is a fresh backing
// array, with the untouched prefix and suffix block-copied and only the
// affected id window merged element-wise.
func splice[T any](global, rm, ad []T, id func(T) ground.AtomID) []T {
	if len(rm) == 0 && len(ad) == 0 {
		return global
	}
	var min, max ground.AtomID
	first := true
	for _, s := range [2][]T{rm, ad} {
		if len(s) == 0 {
			continue
		}
		if lo, hi := id(s[0]), id(s[len(s)-1]); first {
			min, max, first = lo, hi, false
		} else {
			if lo < min {
				min = lo
			}
			if hi > max {
				max = hi
			}
		}
	}
	lo := sort.Search(len(global), func(i int) bool { return id(global[i]) >= min })
	hi := sort.Search(len(global), func(i int) bool { return id(global[i]) > max })

	out := make([]T, 0, len(global)-len(rm)+len(ad))
	out = append(out, global[:lo]...)
	ai, ri := 0, 0
	for _, x := range global[lo:hi] {
		for ai < len(ad) && id(ad[ai]) < id(x) {
			out = append(out, ad[ai])
			ai++
		}
		if ri < len(rm) && id(rm[ri]) == id(x) {
			ri++
			continue
		}
		out = append(out, x)
	}
	out = append(out, ad[ai:]...)
	out = append(out, global[hi:]...)
	return out
}

// materialize renders the live state into oc, byte-identical to
// assembleOutcome over the same per-component units: the fact and
// cluster slices are the maintained sorted snapshots, and the
// summary statistics are recomputed in that same merged order (the
// float accumulation of RemovedWeight is order-sensitive, so it is
// summed rather than maintained).
func (lo *LiveOutcome) materialize(oc *Outcome) {
	oc.Kept, oc.Removed, oc.Inferred = lo.kept, lo.removed, lo.inferred
	oc.Stats.KeptFacts = len(oc.Kept)
	oc.Stats.RemovedFacts = len(oc.Removed)
	oc.Stats.TotalFacts = len(oc.Kept) + len(oc.Removed)
	oc.Stats.InferredFacts = len(oc.Inferred)
	oc.Stats.ThresholdFiltered = lo.thresholdFiltered
	for _, f := range oc.Removed {
		oc.Stats.RemovedWeight += f.Quad.Confidence
	}
	oc.Stats.RuleViolations = make(map[string]int, len(lo.violations))
	for rule, n := range lo.violations {
		oc.Stats.RuleViolations[rule] = n
	}
	oc.Clusters = lo.clusterKeys
	oc.Stats.ConflictClusters = len(oc.Clusters)
}

// checkInvariants validates the live outcome's global-index and
// deterministic-order invariants: each list strictly ascending in its
// id, the fact index in exact agreement with the lists, and the held
// per-component patches summing to the global state. Used by the tests
// and FuzzOutcomePatch; not on the hot path.
func (lo *LiveOutcome) checkInvariants() error {
	total := 0
	for _, l := range []struct {
		name  string
		facts []Fact
		class factClass
	}{
		{"kept", lo.kept, classKept},
		{"removed", lo.removed, classRemoved},
		{"inferred", lo.inferred, classInferred},
	} {
		for i, f := range l.facts {
			if i > 0 && l.facts[i-1].AtomID >= f.AtomID {
				return fmt.Errorf("%s not strictly ascending at %d (atom %d after %d)",
					l.name, i, f.AtomID, l.facts[i-1].AtomID)
			}
			if cls, ok := lo.index[f.Quad.Fact()]; !ok || cls != l.class {
				return fmt.Errorf("%s fact %v missing or misclassified in index (%d)", l.name, f.Quad.Fact(), cls)
			}
		}
		total += len(l.facts)
	}
	if len(lo.index) != total {
		return fmt.Errorf("index holds %d keys, lists hold %d facts", len(lo.index), total)
	}
	for i := range lo.clusters {
		if i > 0 && lo.clusters[i-1].Root >= lo.clusters[i].Root {
			return fmt.Errorf("clusters not strictly ascending at %d", i)
		}
	}
	held := 0
	var err error
	lo.held.Each(func(k ground.AtomID, p *Patch) {
		if p.Component != k {
			err = fmt.Errorf("held patch keyed %d claims component %d", k, p.Component)
		}
		held += len(p.Kept) + len(p.Removed) + len(p.Inferred)
	})
	if err != nil {
		return err
	}
	if held != total {
		return fmt.Errorf("held patches sum to %d facts, lists hold %d", held, total)
	}
	return nil
}
