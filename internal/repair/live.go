package repair

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/rdf"
)

// Delta-maintained Outcome.
//
// After the solver and repair stages went component-incremental (PRs
// 3–4), assembling the final Outcome — the sort/merge of every
// component's kept/removed/inferred facts and conflict clusters — was
// the last whole-graph work on the update path. LiveOutcome removes it:
// the session keeps one live outcome whose global fact lists, cluster
// list and fact index stay sorted across solves, and each re-solve
// applies a Patch per dirtied component (subtract the component's
// previous contribution, splice in the new one) instead of rebuilding
// everything. The materialized Outcome is byte-identical to what
// whole-graph assembly produces over the same units, and every patch
// also feeds an OutcomeDelta changelog so callers can consume diffs
// instead of snapshots.

// Outcome read-out modes reported in OutcomeStats.Mode.
const (
	// OutcomeAssembled is the from-scratch sort/merge of every read-out
	// unit (whole-graph Resolve, and ResolveComponents without a live
	// outcome).
	OutcomeAssembled = "assembled"
	// OutcomeLive is the delta-patched read-out: per-component patches
	// applied to the session's live outcome.
	OutcomeLive = "live"
	// OutcomeDeltaOnly is the live path with materialization skipped
	// (Options.DeltaOnly): the Outcome carries exact counts and the
	// changelog but nil fact/cluster lists.
	OutcomeDeltaOnly = "live-delta"
)

// OutcomeStats summarises how the final Outcome was produced — the
// read-out counterpart of RepairStats for the merge stage.
type OutcomeStats struct {
	// Mode reports how the Outcome was built: OutcomeAssembled or
	// OutcomeLive.
	Mode string
	// Patched counts components whose contribution was (re)applied to
	// the live outcome this solve; Reused counts components whose held
	// contribution was kept untouched. In assembled mode Patched is the
	// number of units merged.
	Patched int
	Reused  int
	// Index is the time spent maintaining the global indices (patch
	// subtraction, splices, fact index, changelog); Merge is the
	// materialization of the Outcome from them (assembled mode folds
	// everything into Merge); Total is the whole stage.
	Index time.Duration
	Merge time.Duration
	Total time.Duration
}

// Patch is one conflict component's contribution to the Outcome: its
// classified facts, conflict clusters and violation counts. Applying a
// patch replaces the component's previous contribution wholesale. A
// Patch is immutable once applied — its slices are shared with the
// repair cache and with materialized Outcomes.
type Patch struct {
	// Component is the conflict component's stable key (its smallest
	// atom id).
	Component ground.AtomID
	// Kept, Removed and Inferred are the component's classified facts
	// (any order; the live outcome sorts on application).
	Kept, Removed, Inferred []Fact
	// Clusters are the component's conflict clusters.
	Clusters []Cluster
	// Violations counts the component's residual violated groundings
	// per rule.
	Violations map[string]int
	// ThresholdFiltered counts derived facts the threshold dropped.
	ThresholdFiltered int
}

// OutcomeDelta is the changelog of one live-outcome update: the facts
// and conflict clusters that entered or left each list relative to the
// previous materialized Outcome. A fact whose content changed (e.g. a
// derived confidence moved) appears in both the Removed (old content)
// and Added (new content) lists; an untouched fact appears in neither,
// even when its component was re-patched. Fact lists are sorted by atom
// id, cluster lists by cluster root.
type OutcomeDelta struct {
	AddedKept   []Fact
	RemovedKept []Fact

	AddedRemoved   []Fact
	RemovedRemoved []Fact

	AddedInferred   []Fact
	RemovedInferred []Fact

	AddedClusters   [][]rdf.FactKey
	RemovedClusters [][]rdf.FactKey
}

// Empty reports whether the update changed nothing.
func (d *OutcomeDelta) Empty() bool {
	return len(d.AddedKept) == 0 && len(d.RemovedKept) == 0 &&
		len(d.AddedRemoved) == 0 && len(d.RemovedRemoved) == 0 &&
		len(d.AddedInferred) == 0 && len(d.RemovedInferred) == 0 &&
		len(d.AddedClusters) == 0 && len(d.RemovedClusters) == 0
}

// factClass names the outcome list a fact belongs to; the live
// outcome's fact index maps every present FactKey to its class.
type factClass uint8

const (
	classKept factClass = iota + 1
	classRemoved
	classInferred
)

// LiveOutcome is a delta-maintained conflict-resolution result: global
// kept/removed/inferred lists sorted by atom id, the cluster list
// sorted by root, a fact index keyed by rdf.FactKey, and per-component
// held patches under the engine cache's (component key, generation,
// membership) invariant — the fourth consumer of that invariant after
// the MLN, PSL and repair caches. Construct with NewLiveOutcome. Not
// safe for concurrent use. The owner must drop it whenever the repair
// component cache is dropped (ColdStart, threshold/solver/tuning
// changes) and whenever a solve bypasses the live sync.
type LiveOutcome struct {
	// held stores each component's applied patch; Lookup hits prove the
	// held contribution belongs to an unchanged component.
	held *engine.Cache[*Patch]

	// Global indices. The fact slices are copy-on-write: every sync
	// builds new backing arrays, so slices handed out by a previous
	// materialization remain valid snapshots.
	kept, removed, inferred []Fact
	clusters                []Cluster
	// clusterKeys is the materialized snapshot of clusters, rebuilt
	// only when a sync changes them (an unchanged cluster list is the
	// common case on single-fact updates that dirty a cluster-free
	// region).
	clusterKeys [][]rdf.FactKey
	// index maps every present statement to its list — the global
	// fact index the per-component patches must agree with. It backs
	// the structural invariant FuzzOutcomePatch and checkInvariants
	// enforce (one class per statement, lists and patches in exact
	// agreement) and gives future consumers O(1) fact classification
	// without a scan.
	index map[rdf.FactKey]factClass

	violations        map[string]int
	thresholdFiltered int

	// delta is the changelog of the most recent sync; patched/reused is
	// its component split.
	delta   OutcomeDelta
	patched int
	reused  int

	// gen/complete gate the dirty-only sync: complete means the held
	// patches cover every component of plan generation gen (set by the
	// full sync, preserved by dirty-only ones). See CurrentFor.
	gen      uint64
	complete bool

	// deferSplices, when set, makes apply accumulate each sync's churn
	// into the pending lists below instead of splicing the global
	// fact/cluster lists immediately — the delta-only serving mode,
	// where per-update cost stays proportional to the churn while the
	// index, violation counts and changelog remain exact and eager. The
	// next flush (any materializing solve) applies the composed pending
	// splice; the resulting lists are element-identical to what
	// step-by-step splicing would have produced.
	deferSplices     bool
	pendRmK, pendAdK []Fact
	pendRmR, pendAdR []Fact
	pendRmI, pendAdI []Fact
	pendRmC, pendAdC []Cluster
	// removedWeight tracks Stats.RemovedWeight across deferred syncs by
	// subtract-and-add; float drift is re-anchored to the exactly summed
	// value on every materialization.
	removedWeight float64
}

// NewLiveOutcome returns an empty live outcome.
func NewLiveOutcome() *LiveOutcome {
	lo := &LiveOutcome{}
	lo.Reset()
	return lo
}

// Reset drops all held state; the next sync rebuilds from scratch (and
// reports the full state as added in its changelog).
func (lo *LiveOutcome) Reset() {
	lo.held = engine.NewCache[*Patch]()
	lo.kept, lo.removed, lo.inferred = []Fact{}, []Fact{}, []Fact{}
	lo.clusters = []Cluster{}
	lo.clusterKeys = [][]rdf.FactKey{}
	lo.index = make(map[rdf.FactKey]factClass)
	lo.violations = make(map[string]int)
	lo.thresholdFiltered = 0
	lo.delta = OutcomeDelta{}
	lo.patched, lo.reused = 0, 0
	lo.gen, lo.complete = 0, false
	lo.pendRmK, lo.pendAdK = nil, nil
	lo.pendRmR, lo.pendAdR = nil, nil
	lo.pendRmI, lo.pendAdI = nil, nil
	lo.pendRmC, lo.pendAdC = nil, nil
	lo.removedWeight = 0
}

// CurrentFor reports whether the live outcome's held state covers every
// change up to the previous planner sync of plan — the gate under which
// a dirty-only sync (only the plan's DirtyComps re-offered, everything
// else kept without re-proving) is sound.
func (lo *LiveOutcome) CurrentFor(plan *engine.Plan) bool {
	return lo.complete && lo.gen+1 == plan.Gen()
}

// Delta returns the changelog of the most recent sync. The returned
// struct's slices are immutable snapshots.
func (lo *LiveOutcome) Delta() *OutcomeDelta {
	d := lo.delta
	return &d
}

// sync reconciles the live outcome with one solve's component
// partition: components whose read-out is provably unchanged (reusable
// by the caller's criteria AND held under an unchanged (key,
// generation, membership)) keep their contribution; every other
// component is re-patched from fresh, and components that vanished from
// the partition are retired. retired, when non-nil, names the vanished
// components' keys exactly (a maintained plan knows them); nil falls
// back to detecting surplus held entries by enumeration. fresh must be
// callable for every index.
func (lo *LiveOutcome) sync(comps []ground.Component, retired []ground.AtomID, reusable func(i int) bool, fresh func(i int) *Patch) {
	lo.patched, lo.reused = 0, 0
	var subtract, add []*Patch
	for i := range comps {
		if reusable(i) {
			if _, ok := lo.held.Lookup(&comps[i]); ok {
				lo.reused++
				continue
			}
		}
		p := fresh(i)
		lo.patched++
		if op, ok := lo.held.Peek(comps[i].Key); ok {
			subtract = append(subtract, op)
		}
		add = append(add, p)
		lo.held.Put(&comps[i], p)
	}

	if retired != nil {
		// The plan sync already named what left the partition; a key the
		// live outcome never held (dropped by an earlier sync, or a fresh
		// live outcome) is a no-op.
		for _, k := range retired {
			if p, ok := lo.held.Peek(k); ok {
				subtract = append(subtract, p)
				lo.held.Drop(k)
			}
		}
	} else if lo.held.Len() > len(comps) {
		// After the loop every live component's key is held; surplus
		// entries belong to components that vanished from the partition
		// (merged away or fully retracted) — the rare structural case,
		// paid for with one enumeration only when it happens.
		current := make(map[ground.AtomID]bool, len(comps))
		for i := range comps {
			current[comps[i].Key] = true
		}
		var stale []ground.AtomID
		lo.held.Each(func(k ground.AtomID, p *Patch) {
			if !current[k] {
				stale = append(stale, k)
				subtract = append(subtract, p)
			}
		})
		for _, k := range stale {
			lo.held.Drop(k)
		}
	}

	lo.apply(subtract, add)
}

// syncDirty is sync restricted to the planner's change set: only the
// plan's dirty components are re-offered (reusable/fresh are indexed by
// position in DirtyComps), retired keys are dropped, and every other
// held patch stands without being re-proven. The caller must have
// established CurrentFor(plan) and that the solver's truth outside the
// dirty components is bit-identical to the previous solve (the full
// syncs anchoring the cursor prove the base case; consecutive plan
// generations chain it).
func (lo *LiveOutcome) syncDirty(plan *engine.Plan, reusable func(k int) bool, fresh func(k int) *Patch) {
	dirty := plan.DirtyComps()
	comps := plan.Comps
	lo.patched, lo.reused = 0, 0
	var subtract, add []*Patch
	for k, ci := range dirty {
		comp := &comps[ci]
		if reusable(k) {
			if _, ok := lo.held.Lookup(comp); ok {
				lo.reused++
				continue
			}
		}
		p := fresh(k)
		lo.patched++
		if op, ok := lo.held.Peek(comp.Key); ok {
			subtract = append(subtract, op)
		}
		add = append(add, p)
		lo.held.Put(comp, p)
	}
	for _, k := range plan.Retired() {
		if p, ok := lo.held.Peek(k); ok {
			subtract = append(subtract, p)
			lo.held.Drop(k)
		}
	}
	lo.apply(subtract, add)
	// Components outside the dirty set are implicit reuses.
	lo.reused += len(comps) - len(dirty)
	lo.gen = plan.Gen()
}

// apply removes the subtracted patches' contributions and splices in
// the added ones, maintaining the sorted global lists, the fact index,
// the violation counts and the changelog. With deferSplices set the
// list splices are composed into the pending churn instead (flush
// applies them); everything else stays eager.
func (lo *LiveOutcome) apply(subtract, add []*Patch) {
	lo.delta = OutcomeDelta{}
	if len(subtract) == 0 && len(add) == 0 {
		return
	}

	for _, p := range subtract {
		for rule, n := range p.Violations {
			if lo.violations[rule] -= n; lo.violations[rule] == 0 {
				delete(lo.violations, rule)
			}
		}
		lo.thresholdFiltered -= p.ThresholdFiltered
	}
	for _, p := range add {
		for rule, n := range p.Violations {
			lo.violations[rule] += n
		}
		lo.thresholdFiltered += p.ThresholdFiltered
	}

	// Gather per-class removal/addition lists in deterministic (atom
	// id) order.
	collect := func(sel func(*Patch) []Fact) (rm, ad []Fact) {
		for _, p := range subtract {
			rm = append(rm, sel(p)...)
		}
		for _, p := range add {
			ad = append(ad, sel(p)...)
		}
		sortFacts(rm)
		sortFacts(ad)
		return rm, ad
	}
	rmK, adK := collect(func(p *Patch) []Fact { return p.Kept })
	rmR, adR := collect(func(p *Patch) []Fact { return p.Removed })
	rmI, adI := collect(func(p *Patch) []Fact { return p.Inferred })

	// Cancel the facts a re-patched component carries over unchanged:
	// what remains is the true churn, which keeps the splice window —
	// and the index traffic — proportional to the delta, not to the
	// dirtied component. A fully-cancelled class skips its copy-on-
	// write rebuild entirely, the dominant per-update cost on large
	// graphs.
	factID := func(f Fact) ground.AtomID { return f.AtomID }
	rmK, adK = cancelCommon(rmK, adK, factID)
	rmR, adR = cancelCommon(rmR, adR, factID)
	rmI, adI = cancelCommon(rmI, adI, factID)

	// Index maintenance: all deletions before all insertions, so a fact
	// moving between classes within one sync lands on its new class.
	for _, fs := range [][]Fact{rmK, rmR, rmI} {
		for i := range fs {
			delete(lo.index, fs[i].Quad.Fact())
		}
	}
	for cls, fs := range map[factClass][]Fact{classKept: adK, classRemoved: adR, classInferred: adI} {
		for i := range fs {
			lo.index[fs[i].Quad.Fact()] = cls
		}
	}

	// RemovedWeight churn is ∝ delta; the exact sum re-anchors it on
	// every materialization.
	for i := range rmR {
		lo.removedWeight -= rmR[i].Quad.Confidence
	}
	for i := range adR {
		lo.removedWeight += adR[i].Quad.Confidence
	}

	var rmC, adC []Cluster
	for _, p := range subtract {
		rmC = append(rmC, p.Clusters...)
	}
	for _, p := range add {
		adC = append(adC, p.Clusters...)
	}
	sort.Slice(rmC, func(i, j int) bool { return rmC[i].Root < rmC[j].Root })
	sort.Slice(adC, func(i, j int) bool { return adC[i].Root < adC[j].Root })
	rmC, adC = cancelCommon(rmC, adC, func(c Cluster) ground.AtomID { return c.Root })

	// Compose this sync's churn into the pending splice; flush applies
	// it to the global lists — immediately on a materializing solve,
	// deferred across delta-only ones.
	clusterID := func(c Cluster) ground.AtomID { return c.Root }
	lo.pendRmK, lo.pendAdK = composeChurn(lo.pendRmK, lo.pendAdK, rmK, adK, factID)
	lo.pendRmR, lo.pendAdR = composeChurn(lo.pendRmR, lo.pendAdR, rmR, adR, factID)
	lo.pendRmI, lo.pendAdI = composeChurn(lo.pendRmI, lo.pendAdI, rmI, adI, factID)
	lo.pendRmC, lo.pendAdC = composeChurn(lo.pendRmC, lo.pendAdC, rmC, adC, clusterID)
	if !lo.deferSplices {
		lo.flush()
	}

	// Changelog: after cancellation the remaining lists ARE the true
	// churn (every carried-over fact and cluster cancelled above; ids
	// map 1:1 to statements and groups), already in deterministic id
	// order.
	lo.delta.RemovedKept, lo.delta.AddedKept = rmK, adK
	lo.delta.RemovedRemoved, lo.delta.AddedRemoved = rmR, adR
	lo.delta.RemovedInferred, lo.delta.AddedInferred = rmI, adI
	lo.delta.RemovedClusters = clusterKeyLists(rmC)
	lo.delta.AddedClusters = clusterKeyLists(adC)
}

// flush applies the composed pending churn to the global sorted lists
// (one copy-on-write splice per touched list) and clears it. Because
// composeChurn keeps, per id, only the latest content and cancels
// additions that were later removed, the flushed lists are element-
// identical to what splicing each sync individually would produce.
func (lo *LiveOutcome) flush() {
	factID := func(f Fact) ground.AtomID { return f.AtomID }
	if len(lo.pendRmK) > 0 || len(lo.pendAdK) > 0 {
		lo.kept = splice(lo.kept, lo.pendRmK, lo.pendAdK, factID)
		lo.pendRmK, lo.pendAdK = nil, nil
	}
	if len(lo.pendRmR) > 0 || len(lo.pendAdR) > 0 {
		lo.removed = splice(lo.removed, lo.pendRmR, lo.pendAdR, factID)
		lo.pendRmR, lo.pendAdR = nil, nil
	}
	if len(lo.pendRmI) > 0 || len(lo.pendAdI) > 0 {
		lo.inferred = splice(lo.inferred, lo.pendRmI, lo.pendAdI, factID)
		lo.pendRmI, lo.pendAdI = nil, nil
	}
	if len(lo.pendRmC) > 0 || len(lo.pendAdC) > 0 {
		lo.clusters = splice(lo.clusters, lo.pendRmC, lo.pendAdC, func(c Cluster) ground.AtomID { return c.Root })
		lo.pendRmC, lo.pendAdC = nil, nil
		keys := make([][]rdf.FactKey, 0, len(lo.clusters))
		for _, c := range lo.clusters {
			keys = append(keys, c.Keys)
		}
		lo.clusterKeys = keys
	}
}

// composeChurn folds one sync's churn (rm, ad — each sorted by id, the
// true churn after cancellation) into the pending churn (R, A) held
// against the last flushed lists, preserving visible-state equivalence:
// splice(flushed, R', A') == splice(splice(flushed, R, A), rm, ad). An
// id removed now either cancels a pending addition that never reached
// the flushed lists, or marks a flushed element for removal; an id
// added now joins the pending additions (possibly paired with a pending
// removal of the same id — content replacement, which splice applies as
// remove-then-insert). Both returned sides stay sorted and id-unique.
func composeChurn[T any](R, A, rm, ad []T, id func(T) ground.AtomID) ([]T, []T) {
	if len(rm) == 0 && len(ad) == 0 {
		return R, A
	}
	// Split rm: ids present in A cancel those pending additions; the
	// rest are removals of flushed elements.
	keptA := A
	var rmBase []T
	if len(A) == 0 {
		rmBase = rm
	} else {
		keptA = make([]T, 0, len(A))
		i, j := 0, 0
		for i < len(A) || j < len(rm) {
			switch {
			case i == len(A):
				rmBase = append(rmBase, rm[j])
				j++
			case j == len(rm):
				keptA = append(keptA, A[i])
				i++
			case id(A[i]) == id(rm[j]):
				i++
				j++
			case id(A[i]) < id(rm[j]):
				keptA = append(keptA, A[i])
				i++
			default:
				rmBase = append(rmBase, rm[j])
				j++
			}
		}
	}
	return mergeByID(R, rmBase, id), mergeByID(keptA, ad, id)
}

// mergeByID merges two id-sorted, id-disjoint lists.
func mergeByID[T any](a, b []T, id func(T) ground.AtomID) []T {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if id(a[i]) < id(b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// clusterKeyLists projects clusters onto their member statements, the
// shape the changelog exposes; nil stays nil so Empty() keeps working.
func clusterKeyLists(cs []Cluster) [][]rdf.FactKey {
	if len(cs) == 0 {
		return nil
	}
	out := make([][]rdf.FactKey, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.Keys)
	}
	return out
}

// cancelCommon drops the elements present with identical content on
// both sides of a patch application. Both inputs are sorted by a
// unique id (an atom keeps its id across retraction and revival and
// maps to one statement; a cluster root identifies one group), so a
// linear merge finds every carried-over element; a fully-cancelled
// side comes back nil, letting the caller skip its list entirely.
func cancelCommon[T any](rm, ad []T, id func(T) ground.AtomID) ([]T, []T) {
	i, j := 0, 0
	var outRm, outAd []T
	for i < len(rm) && j < len(ad) {
		a, b := rm[i], ad[j]
		switch ia, ib := id(a), id(b); {
		case ia == ib:
			if !reflect.DeepEqual(a, b) {
				outRm = append(outRm, a)
				outAd = append(outAd, b)
			}
			i++
			j++
		case ia < ib:
			outRm = append(outRm, a)
			i++
		default:
			outAd = append(outAd, b)
			j++
		}
	}
	outRm = append(outRm, rm[i:]...)
	outAd = append(outAd, ad[j:]...)
	return outRm, outAd
}

// splice returns global with rm's elements removed and ad's inserted,
// preserving ascending id order. Both rm and ad must be sorted by id,
// every rm id must be present in global, and no ad id may collide with
// a surviving element. Copy-on-write: the result is a fresh backing
// array, with the untouched prefix and suffix block-copied and only the
// affected id window merged element-wise.
func splice[T any](global, rm, ad []T, id func(T) ground.AtomID) []T {
	if len(rm) == 0 && len(ad) == 0 {
		return global
	}
	var min, max ground.AtomID
	first := true
	for _, s := range [2][]T{rm, ad} {
		if len(s) == 0 {
			continue
		}
		if lo, hi := id(s[0]), id(s[len(s)-1]); first {
			min, max, first = lo, hi, false
		} else {
			if lo < min {
				min = lo
			}
			if hi > max {
				max = hi
			}
		}
	}
	lo := sort.Search(len(global), func(i int) bool { return id(global[i]) >= min })
	hi := sort.Search(len(global), func(i int) bool { return id(global[i]) > max })

	out := make([]T, 0, len(global)-len(rm)+len(ad))
	out = append(out, global[:lo]...)
	ai, ri := 0, 0
	for _, x := range global[lo:hi] {
		for ai < len(ad) && id(ad[ai]) < id(x) {
			out = append(out, ad[ai])
			ai++
		}
		if ri < len(rm) && id(rm[ri]) == id(x) {
			ri++
			continue
		}
		out = append(out, x)
	}
	out = append(out, ad[ai:]...)
	out = append(out, global[hi:]...)
	return out
}

// materialize renders the live state into oc, byte-identical to
// assembleOutcome over the same per-component units: the fact and
// cluster slices are the maintained sorted snapshots, and the
// summary statistics are recomputed in that same merged order (the
// float accumulation of RemovedWeight is order-sensitive, so it is
// summed rather than maintained).
func (lo *LiveOutcome) materialize(oc *Outcome) {
	lo.flush()
	oc.Kept, oc.Removed, oc.Inferred = lo.kept, lo.removed, lo.inferred
	oc.Stats.KeptFacts = len(oc.Kept)
	oc.Stats.RemovedFacts = len(oc.Removed)
	oc.Stats.TotalFacts = len(oc.Kept) + len(oc.Removed)
	oc.Stats.InferredFacts = len(oc.Inferred)
	oc.Stats.ThresholdFiltered = lo.thresholdFiltered
	for _, f := range oc.Removed {
		oc.Stats.RemovedWeight += f.Quad.Confidence
	}
	lo.removedWeight = oc.Stats.RemovedWeight
	oc.Stats.RuleViolations = make(map[string]int, len(lo.violations))
	for rule, n := range lo.violations {
		oc.Stats.RuleViolations[rule] = n
	}
	oc.Clusters = lo.clusterKeys
	oc.Stats.ConflictClusters = len(oc.Clusters)
}

// materializeCounts fills oc.Stats from the maintained aggregates
// without flushing the pending splices or attaching the global lists —
// the delta-only read-out: Kept/Removed/Inferred/Clusters stay nil, the
// integer counts and violation map are exact, and RemovedWeight is the
// incrementally tracked value (it may differ from the exactly summed
// one in the last floating-point bits until the next materialization).
func (lo *LiveOutcome) materializeCounts(oc *Outcome) {
	kept := len(lo.kept) - len(lo.pendRmK) + len(lo.pendAdK)
	removed := len(lo.removed) - len(lo.pendRmR) + len(lo.pendAdR)
	inferred := len(lo.inferred) - len(lo.pendRmI) + len(lo.pendAdI)
	oc.Stats.KeptFacts = kept
	oc.Stats.RemovedFacts = removed
	oc.Stats.TotalFacts = kept + removed
	oc.Stats.InferredFacts = inferred
	oc.Stats.ThresholdFiltered = lo.thresholdFiltered
	oc.Stats.RemovedWeight = lo.removedWeight
	oc.Stats.RuleViolations = make(map[string]int, len(lo.violations))
	for rule, n := range lo.violations {
		oc.Stats.RuleViolations[rule] = n
	}
	oc.Stats.ConflictClusters = len(lo.clusters) - len(lo.pendRmC) + len(lo.pendAdC)
}

// checkInvariants validates the live outcome's global-index and
// deterministic-order invariants: each list strictly ascending in its
// id, the fact index in exact agreement with the lists, and the held
// per-component patches summing to the global state. Used by the tests
// and FuzzOutcomePatch; not on the hot path.
func (lo *LiveOutcome) checkInvariants() error {
	// Pending deferred churn is not an invariant violation — land it
	// first (a visible-state no-op) so lists and index agree.
	lo.flush()
	total := 0
	for _, l := range []struct {
		name  string
		facts []Fact
		class factClass
	}{
		{"kept", lo.kept, classKept},
		{"removed", lo.removed, classRemoved},
		{"inferred", lo.inferred, classInferred},
	} {
		for i, f := range l.facts {
			if i > 0 && l.facts[i-1].AtomID >= f.AtomID {
				return fmt.Errorf("%s not strictly ascending at %d (atom %d after %d)",
					l.name, i, f.AtomID, l.facts[i-1].AtomID)
			}
			if cls, ok := lo.index[f.Quad.Fact()]; !ok || cls != l.class {
				return fmt.Errorf("%s fact %v missing or misclassified in index (%d)", l.name, f.Quad.Fact(), cls)
			}
		}
		total += len(l.facts)
	}
	if len(lo.index) != total {
		return fmt.Errorf("index holds %d keys, lists hold %d facts", len(lo.index), total)
	}
	for i := range lo.clusters {
		if i > 0 && lo.clusters[i-1].Root >= lo.clusters[i].Root {
			return fmt.Errorf("clusters not strictly ascending at %d", i)
		}
	}
	held := 0
	var err error
	lo.held.Each(func(k ground.AtomID, p *Patch) {
		if p.Component != k {
			err = fmt.Errorf("held patch keyed %d claims component %d", k, p.Component)
		}
		held += len(p.Kept) + len(p.Removed) + len(p.Inferred)
	})
	if err != nil {
		return err
	}
	if held != total {
		return fmt.Errorf("held patches sum to %d facts, lists hold %d", held, total)
	}
	return nil
}
