package repair

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/translate"
)

const figure1 = `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`

const figure4and6 = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`

func loadStore(t testing.TB, text string) *store.Store {
	t.Helper()
	g, err := rdf.ParseGraphString(text)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	return st
}

func solve(t testing.TB, data, rules string, solver translate.Solver, opts Options) *Outcome {
	t.Helper()
	st := loadStore(t, data)
	prog := rulelang.MustParse(rules)
	out, err := translate.Run(st, prog, solver, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := Resolve(out, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return oc
}

// TestFigure7 reproduces the paper's result exactly: fact (5) removed,
// facts (1)-(4) kept, worksFor derived from playsFor.
func TestFigure7(t *testing.T) {
	for _, solver := range []translate.Solver{translate.SolverMLN, translate.SolverPSL} {
		oc := solve(t, figure1, figure4and6, solver, Options{})
		if oc.Stats.TotalFacts != 5 || oc.Stats.KeptFacts != 4 || oc.Stats.RemovedFacts != 1 {
			t.Fatalf("%v: stats = %+v", solver, oc.Stats)
		}
		if len(oc.Removed) != 1 || oc.Removed[0].Quad.Object.Value != "Napoli" {
			t.Errorf("%v: removed = %v", solver, oc.Removed)
		}
		if oc.Stats.InferredFacts != 1 || oc.Inferred[0].Quad.Predicate.Value != "worksFor" {
			t.Errorf("%v: inferred = %v", solver, oc.Inferred)
		}
		if !oc.Inferred[0].Derived {
			t.Error("inferred fact should be marked derived")
		}
		g := oc.ConsistentGraph()
		if len(g) != 5 { // 4 kept + 1 inferred
			t.Errorf("%v: consistent graph has %d facts", solver, len(g))
		}
		for _, q := range g {
			if q.Object.Value == "Napoli" {
				t.Errorf("%v: Napoli in consistent graph", solver)
			}
		}
	}
}

func TestConflictClusters(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{})
	if oc.Stats.ConflictClusters != 1 {
		t.Fatalf("clusters = %d, want 1", oc.Stats.ConflictClusters)
	}
	cl := oc.Clusters[0]
	if len(cl) != 2 {
		t.Fatalf("cluster size = %d, want 2 (Chelsea & Napoli)", len(cl))
	}
	joined := cl[0].String() + cl[1].String()
	if !strings.Contains(joined, "Chelsea") || !strings.Contains(joined, "Napoli") {
		t.Errorf("cluster = %v", cl)
	}
}

func TestDerivedConfidencePropagationMLN(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{})
	// worksFor inherits min body conf (0.5) × σ(2.5) ≈ 0.46.
	got := oc.Inferred[0].Quad.Confidence
	if got < 0.4 || got > 0.5 {
		t.Errorf("derived confidence = %g, want ≈ 0.46", got)
	}
}

func TestDerivedConfidencePSLUsesSoftValue(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverPSL, Options{})
	if len(oc.Inferred) != 1 {
		t.Fatalf("inferred = %v", oc.Inferred)
	}
	got := oc.Inferred[0].Quad.Confidence
	if got <= 0 || got > 1 {
		t.Errorf("PSL derived confidence = %g", got)
	}
}

func TestThresholdFiltersDerived(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{Threshold: 0.9})
	if oc.Stats.InferredFacts != 0 || oc.Stats.ThresholdFiltered != 1 {
		t.Errorf("threshold 0.9: stats = %+v", oc.Stats)
	}
	oc = solve(t, figure1, figure4and6, translate.SolverMLN, Options{Threshold: 0.1})
	if oc.Stats.InferredFacts != 1 || oc.Stats.ThresholdFiltered != 0 {
		t.Errorf("threshold 0.1: stats = %+v", oc.Stats)
	}
}

func TestRemovedWeight(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{})
	if oc.Stats.RemovedWeight != 0.6 {
		t.Errorf("RemovedWeight = %g, want 0.6 (Napoli)", oc.Stats.RemovedWeight)
	}
}

func TestNoConstraintsNothingRemoved(t *testing.T) {
	oc := solve(t, figure1, "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5",
		translate.SolverMLN, Options{})
	if oc.Stats.RemovedFacts != 0 || oc.Stats.ConflictClusters != 0 {
		t.Errorf("stats = %+v", oc.Stats)
	}
}

func TestResidualViolationsEmptyForHard(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{})
	if n := oc.Stats.RuleViolations["c2"]; n != 0 {
		t.Errorf("hard constraint still violated %d times", n)
	}
}

func TestFactsSorted(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{})
	for i := 1; i < len(oc.Kept); i++ {
		if oc.Kept[i-1].AtomID >= oc.Kept[i].AtomID {
			t.Fatal("kept facts not sorted by atom id")
		}
	}
}

func TestExplanationsOnRemovedFacts(t *testing.T) {
	oc := solve(t, figure1, figure4and6, translate.SolverMLN, Options{})
	if len(oc.Removed) != 1 {
		t.Fatalf("removed = %v", oc.Removed)
	}
	ex := oc.Removed[0].Explanations
	if len(ex) == 0 {
		t.Fatal("removed fact has no explanation")
	}
	if ex[0].Rule != "c2" {
		t.Errorf("explanation rule = %q", ex[0].Rule)
	}
	if len(ex[0].Partners) != 1 || !strings.Contains(ex[0].Partners[0].String(), "Chelsea") {
		t.Errorf("explanation partners = %v", ex[0].Partners)
	}
	if !strings.Contains(ex[0].String(), "c2 with (CR, coach, Chelsea") {
		t.Errorf("explanation string = %q", ex[0].String())
	}
	// Kept facts carry no explanations.
	for _, f := range oc.Kept {
		if len(f.Explanations) != 0 {
			t.Errorf("kept fact %v has explanations", f.Quad)
		}
	}
}
