package repair

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ground"
	"repro/internal/rdf"
	"repro/internal/temporal"
)

// Tests and fuzzing for the delta-maintained Outcome: random patch
// sequences (apply, revert to earlier content, retire, reorder across
// components) against a from-scratch reference rebuild, guarding the
// global-index and deterministic-order invariants and the changelog's
// completeness.

// synthFact builds a deterministic fact for a synthetic atom: the
// statement key derives from the atom id (globally unique), the
// content from variant, so re-applying the same variant reverts to
// byte-identical content and a different variant models a confidence
// or explanation change.
func synthFact(atom ground.AtomID, class factClass, variant uint64) Fact {
	conf := float64(variant%97)/100 + 0.01
	f := Fact{
		Quad: rdf.NewQuad(fmt.Sprintf("s%d", atom), "p", fmt.Sprintf("o%d", atom),
			temporal.MustNew(2000, 2004), conf),
		AtomID:  atom,
		Derived: class == classInferred,
	}
	if class == classRemoved && variant%3 == 0 {
		f.Explanations = []Explanation{{
			Rule:     "c",
			Partners: []rdf.FactKey{{S: rdf.NewIRI(fmt.Sprintf("w%d", variant%7)), P: rdf.NewIRI("p")}},
		}}
	}
	return f
}

// synthPatch builds a component's patch from a content seed: which of
// the component's atom slots are populated, their classes and their
// contents all derive from the seed, so equal seeds produce
// byte-identical patches.
func synthPatch(key ground.AtomID, seed uint64) *Patch {
	rng := rand.New(rand.NewSource(int64(seed)))
	p := &Patch{Component: key, ThresholdFiltered: rng.Intn(3)}
	for off := ground.AtomID(0); off < 12; off++ {
		if rng.Intn(3) == 0 {
			continue
		}
		atom := key + off
		class := factClass(off%3) + 1
		f := synthFact(atom, class, seed+uint64(off))
		switch class {
		case classKept:
			p.Kept = append(p.Kept, f)
		case classRemoved:
			p.Removed = append(p.Removed, f)
		case classInferred:
			p.Inferred = append(p.Inferred, f)
		}
	}
	if len(p.Removed) > 0 {
		keys := make([]rdf.FactKey, 0, len(p.Removed))
		for _, f := range p.Removed {
			keys = append(keys, f.Quad.Fact())
		}
		p.Clusters = []Cluster{{Root: p.Removed[0].AtomID, Keys: keys}}
		p.Violations = map[string]int{"c": 1 + rng.Intn(3)}
	}
	return p
}

func patchAtoms(p *Patch) []ground.AtomID {
	var atoms []ground.AtomID
	for _, fs := range [][]Fact{p.Kept, p.Removed, p.Inferred} {
		for _, f := range fs {
			atoms = append(atoms, f.AtomID)
		}
	}
	sort.Slice(atoms, func(i, j int) bool { return atoms[i] < atoms[j] })
	return atoms
}

func patchUnit(p *Patch) *unit {
	return &unit{
		kept: p.Kept, removed: p.Removed, inferred: p.Inferred,
		clusters: p.Clusters, violations: p.Violations,
		thresholdFiltered: p.ThresholdFiltered,
	}
}

// refHeld is the reference model: the patch each live component should
// currently contribute, plus its generation.
type refHeld struct {
	p   *Patch
	gen uint64
}

// refOutcome assembles the reference Outcome from scratch over the
// model's patches.
func refOutcome(ref map[ground.AtomID]*refHeld) *Outcome {
	var units []*unit
	for _, k := range sortedKeys(ref) {
		units = append(units, patchUnit(ref[k].p))
	}
	oc := &Outcome{}
	assembleOutcome(oc, units)
	return oc
}

func sortedKeys(ref map[ground.AtomID]*refHeld) []ground.AtomID {
	keys := make([]ground.AtomID, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// refFacts snapshots the model's facts per class, keyed by statement.
func refFacts(ref map[ground.AtomID]*refHeld) map[factClass]map[rdf.FactKey]Fact {
	out := map[factClass]map[rdf.FactKey]Fact{
		classKept: {}, classRemoved: {}, classInferred: {},
	}
	for _, h := range ref {
		for cls, fs := range map[factClass][]Fact{
			classKept: h.p.Kept, classRemoved: h.p.Removed, classInferred: h.p.Inferred} {
			for _, f := range fs {
				out[cls][f.Quad.Fact()] = f
			}
		}
	}
	return out
}

func refClusters(ref map[ground.AtomID]*refHeld) map[ground.AtomID][]rdf.FactKey {
	out := map[ground.AtomID][]rdf.FactKey{}
	for _, h := range ref {
		for _, c := range h.p.Clusters {
			out[c.Root] = c.Keys
		}
	}
	return out
}

// expectFactDelta diffs two snapshots the way the changelog must
// report them: content-compared by statement, sorted by atom id.
func expectFactDelta(prev, cur map[rdf.FactKey]Fact) (removed, added []Fact) {
	for k, f := range cur {
		if old, ok := prev[k]; !ok || !reflect.DeepEqual(old, f) {
			added = append(added, f)
		}
	}
	for k, f := range prev {
		if now, ok := cur[k]; !ok || !reflect.DeepEqual(now, f) {
			removed = append(removed, f)
		}
	}
	sortFacts(removed)
	sortFacts(added)
	return removed, added
}

func expectClusterDelta(prev, cur map[ground.AtomID][]rdf.FactKey) (removed, added [][]rdf.FactKey) {
	var rmRoots, adRoots []ground.AtomID
	for r, keys := range cur {
		if old, ok := prev[r]; !ok || !reflect.DeepEqual(old, keys) {
			adRoots = append(adRoots, r)
		}
	}
	for r, keys := range prev {
		if now, ok := cur[r]; !ok || !reflect.DeepEqual(now, keys) {
			rmRoots = append(rmRoots, r)
		}
	}
	sort.Slice(rmRoots, func(i, j int) bool { return rmRoots[i] < rmRoots[j] })
	sort.Slice(adRoots, func(i, j int) bool { return adRoots[i] < adRoots[j] })
	for _, r := range rmRoots {
		removed = append(removed, prev[r])
	}
	for _, r := range adRoots {
		added = append(added, cur[r])
	}
	return removed, added
}

// syncRef drives one live-outcome sync from the reference model,
// marking only touched (or absent) components dirty.
func syncRef(lo *LiveOutcome, ref map[ground.AtomID]*refHeld, touched ground.AtomID) {
	keys := sortedKeys(ref)
	comps := make([]ground.Component, len(keys))
	for i, k := range keys {
		comps[i] = ground.Component{Key: k, Gen: ref[k].gen, Atoms: patchAtoms(ref[k].p)}
	}
	lo.sync(comps, nil,
		func(i int) bool { return comps[i].Key != touched },
		func(i int) *Patch { return ref[comps[i].Key].p })
}

func FuzzOutcomePatch(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 1, 0, 1})
	f.Add([]byte{0, 0, 4, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{2, 5, 2, 4, 3, 5, 2, 5, 1, 1, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		lo := NewLiveOutcome()
		ref := map[ground.AtomID]*refHeld{}
		gen := uint64(0)
		for i := 0; i+1 < len(data) && i < 128; i += 2 {
			op, sel := data[i], data[i+1]
			key := ground.AtomID(int(sel)%6) * 100
			prevFacts, prevClusters := refFacts(ref), refClusters(ref)
			gen++
			if op%4 == 3 {
				// Retire the component entirely.
				delete(ref, key)
			} else {
				// Apply a patch whose content derives from the op byte
				// alone: re-applying an earlier op byte reverts the
				// component to byte-identical earlier content (the
				// changelog must then cancel to empty for it).
				ref[key] = &refHeld{p: synthPatch(key, uint64(op%4)*31), gen: gen}
			}
			syncRef(lo, ref, key)

			if err := lo.checkInvariants(); err != nil {
				t.Fatalf("op %d: invariant violated: %v", i/2, err)
			}
			want := refOutcome(ref)
			got := &Outcome{}
			lo.materialize(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("op %d: patched outcome diverged from reference rebuild\ngot:  %+v\nwant: %+v",
					i/2, got.Stats, want.Stats)
			}

			curFacts, curClusters := refFacts(ref), refClusters(ref)
			for _, c := range []struct {
				class        factClass
				gotRm, gotAd []Fact
				name         string
			}{
				{classKept, lo.delta.RemovedKept, lo.delta.AddedKept, "kept"},
				{classRemoved, lo.delta.RemovedRemoved, lo.delta.AddedRemoved, "removed"},
				{classInferred, lo.delta.RemovedInferred, lo.delta.AddedInferred, "inferred"},
			} {
				wantRm, wantAd := expectFactDelta(prevFacts[c.class], curFacts[c.class])
				if !reflect.DeepEqual(c.gotRm, wantRm) || !reflect.DeepEqual(c.gotAd, wantAd) {
					t.Fatalf("op %d: %s changelog wrong\ngot -%v +%v\nwant -%v +%v",
						i/2, c.name, c.gotRm, c.gotAd, wantRm, wantAd)
				}
			}
			wantRmC, wantAdC := expectClusterDelta(prevClusters, curClusters)
			if !reflect.DeepEqual(lo.delta.RemovedClusters, wantRmC) ||
				!reflect.DeepEqual(lo.delta.AddedClusters, wantAdC) {
				t.Fatalf("op %d: cluster changelog wrong\ngot -%v +%v\nwant -%v +%v",
					i/2, lo.delta.RemovedClusters, lo.delta.AddedClusters, wantRmC, wantAdC)
			}
		}
	})
}

// TestSpliceWindow exercises the copy-on-write window splice directly:
// removals and insertions interleaved with untouched prefix/suffix,
// equal-id replacement, and pure inserts/deletes.
func TestSpliceWindow(t *testing.T) {
	mk := func(ids ...ground.AtomID) []Fact {
		fs := make([]Fact, 0, len(ids))
		for _, id := range ids {
			fs = append(fs, synthFact(id, classKept, uint64(id)))
		}
		return fs
	}
	ids := func(fs []Fact) []ground.AtomID {
		out := make([]ground.AtomID, 0, len(fs))
		for _, f := range fs {
			out = append(out, f.AtomID)
		}
		return out
	}
	factID := func(f Fact) ground.AtomID { return f.AtomID }

	base := mk(1, 5, 9, 12, 20)
	got := splice(base, mk(5, 12), mk(6, 7, 13), factID)
	if want := []ground.AtomID{1, 6, 7, 9, 13, 20}; !reflect.DeepEqual(ids(got), want) {
		t.Fatalf("splice = %v, want %v", ids(got), want)
	}
	// The untouched input must not be mutated (copy-on-write).
	if want := []ground.AtomID{1, 5, 9, 12, 20}; !reflect.DeepEqual(ids(base), want) {
		t.Fatalf("splice mutated its input: %v", ids(base))
	}
	// Equal-id replacement (a re-patched fact keeps its atom).
	got = splice(base, mk(9), mk(9), factID)
	if want := []ground.AtomID{1, 5, 9, 12, 20}; !reflect.DeepEqual(ids(got), want) {
		t.Fatalf("equal-id splice = %v, want %v", ids(got), want)
	}
	// Pure insert past the end, pure delete, and the no-op fast path.
	if got := splice(base, nil, mk(25), factID); !reflect.DeepEqual(ids(got), []ground.AtomID{1, 5, 9, 12, 20, 25}) {
		t.Fatalf("append splice = %v", ids(got))
	}
	if got := splice(base, mk(1, 20), nil, factID); !reflect.DeepEqual(ids(got), []ground.AtomID{5, 9, 12}) {
		t.Fatalf("trim splice = %v", ids(got))
	}
	if got := splice(base, nil, nil, factID); len(got) != len(base) {
		t.Fatalf("no-op splice changed length: %d", len(got))
	}
}

// TestLiveOutcomeClassMove re-patches a component so a statement moves
// between lists (kept → removed): the global index must track the
// move and the changelog must report both sides.
func TestLiveOutcomeClassMove(t *testing.T) {
	lo := NewLiveOutcome()
	key := ground.AtomID(0)
	f := synthFact(3, classKept, 7)
	v1 := &Patch{Component: key, Kept: []Fact{f}}
	ref := map[ground.AtomID]*refHeld{key: {p: v1, gen: 1}}
	syncRef(lo, ref, key)
	if err := lo.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	moved := f
	moved.Explanations = []Explanation{{Rule: "c"}}
	v2 := &Patch{Component: key, Removed: []Fact{moved},
		Violations: map[string]int{"c": 1},
		Clusters:   []Cluster{{Root: 3, Keys: []rdf.FactKey{f.Quad.Fact()}}}}
	ref[key] = &refHeld{p: v2, gen: 2}
	syncRef(lo, ref, key)
	if err := lo.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if cls := lo.index[f.Quad.Fact()]; cls != classRemoved {
		t.Fatalf("index did not follow the class move: %d", cls)
	}
	d := lo.delta
	if len(d.RemovedKept) != 1 || len(d.AddedRemoved) != 1 || len(d.AddedClusters) != 1 {
		t.Fatalf("class move changelog wrong: %+v", d)
	}
	if len(d.AddedKept) != 0 || len(d.RemovedRemoved) != 0 {
		t.Fatalf("class move fabricated changes: %+v", d)
	}
	oc := &Outcome{}
	lo.materialize(oc)
	if oc.Stats.KeptFacts != 0 || oc.Stats.RemovedFacts != 1 || oc.Stats.ConflictClusters != 1 {
		t.Fatalf("materialized state wrong after class move: %+v", oc.Stats)
	}
}

// TestLiveOutcomeIdenticalRepatch re-applies byte-identical content
// under a bumped generation: the lists are respliced but the changelog
// must cancel to empty — reuse did not change the outcome.
func TestLiveOutcomeIdenticalRepatch(t *testing.T) {
	lo := NewLiveOutcome()
	key := ground.AtomID(100)
	ref := map[ground.AtomID]*refHeld{key: {p: synthPatch(key, 42), gen: 1}}
	syncRef(lo, ref, key)
	before := &Outcome{}
	lo.materialize(before)

	ref[key] = &refHeld{p: synthPatch(key, 42), gen: 2} // same content, new gen
	syncRef(lo, ref, key)
	if !lo.delta.Empty() {
		t.Fatalf("identical re-patch produced a delta: %+v", lo.delta)
	}
	after := &Outcome{}
	lo.materialize(after)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("identical re-patch changed the materialized outcome")
	}
	if err := lo.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveOutcomeReset drops everything: the next sync rebuilds and
// reports the full state as added.
func TestLiveOutcomeReset(t *testing.T) {
	lo := NewLiveOutcome()
	key := ground.AtomID(200)
	ref := map[ground.AtomID]*refHeld{key: {p: synthPatch(key, 9), gen: 1}}
	syncRef(lo, ref, key)
	lo.Reset()
	if len(lo.kept)+len(lo.removed)+len(lo.inferred)+len(lo.index) != 0 {
		t.Fatal("Reset left state behind")
	}
	syncRef(lo, ref, ground.AtomID(-1)) // nothing touched, but held cache is empty
	d := lo.delta
	if len(d.RemovedKept)+len(d.RemovedRemoved)+len(d.RemovedInferred) != 0 {
		t.Fatalf("rebuild after Reset removed facts: %+v", d)
	}
	want := refOutcome(ref)
	got := &Outcome{}
	lo.materialize(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("rebuild after Reset diverged from reference")
	}
}
