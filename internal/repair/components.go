package repair

import (
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/translate"
)

// Component-decomposed conflict resolution.
//
// Clauses never cross conflict components, so every piece of the
// read-out — fact classification, confidence propagation, conflict
// clusters, explanations, violation counts — is a per-component
// computation followed by a deterministic merge. ResolveComponents is
// the repair layer's counterpart of the solvers' MAPGroundComponents:
// it runs one resolveUnit per component on the shared orchestration
// layer (internal/engine), caches each component's finished read-out
// under (component key, generation, membership) plus the component's
// MAP assignment, and on an incremental update re-repairs only the
// components the delta dirtied. Reusing a cached unit is sound because
// a unit depends only on the component's clauses, its atoms'
// evidence/confidence state (both covered by the generation) and its
// slice of the MAP state (checked explicitly against the cached
// assignment).

// ComponentCache carries per-component repair read-outs across the
// incremental engine's solves, plus the reusable confidence scratch
// buffer (per-update allocation churn on the read-out hot path shows up
// directly in repair-stage latency). Construct with NewComponentCache.
// Not safe for concurrent use. The cache must be dropped when anything
// outside the (generation, truth) invariant changes the read-out: a
// threshold or solver change, or a ColdStart (core.Session does this).
type ComponentCache struct {
	units *engine.Cache[compUnit]
	conf  []float64 // scratch, indexed by atom id
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{units: engine.NewCache[compUnit]()}
}

// confScratch returns a zero-filling-free confidence buffer covering n
// atoms; units overwrite their own scope's entries before reading them.
func (c *ComponentCache) confScratch(n int) []float64 {
	if c == nil {
		return make([]float64, n)
	}
	if cap(c.conf) < n {
		c.conf = make([]float64, n)
	}
	return c.conf[:n]
}

// compUnit is one component's cached read-out plus the component-local
// MAP state it was computed under: the discrete assignment and, on the
// PSL path, the soft values (which feed derived confidences — an
// unconverged component's ADMM can resume and move them while the
// discrete truth and the generation both stand still).
type compUnit struct {
	unit
	truth  []bool    // aligned with the component's atoms
	values []float64 // aligned with the component's atoms; nil for MLN
}

// ResolveComponents interprets the translator output as a conflict
// resolution computed per conflict component, reusing cached
// per-component read-outs for components whose subproblem and MAP
// assignment are unchanged. plan, when non-nil, is the shared
// decomposition the solver stage already built; nil builds one here.
// The merged Outcome is byte-identical to whole-graph Resolve over the
// same state, at every Parallelism setting. Falls back to whole-graph
// Resolve when the solve kept no indexed clause set.
func ResolveComponents(out *translate.Output, prog *logic.Program, opts Options, plan *engine.Plan, cache *ComponentCache) (*Outcome, error) {
	oc, _, err := resolveComponents(out, prog, opts, plan, cache, nil)
	return oc, err
}

// ResolveComponentsLive is ResolveComponents with the Outcome
// delta-patched on live instead of assembled from scratch: components
// whose read-out is unchanged keep their contribution to the global
// fact/cluster lists, dirtied ones are subtracted and re-spliced, and
// the returned OutcomeDelta is the changelog of what entered or left
// each list this solve. The materialized Outcome stays byte-identical
// to whole-graph Resolve. live must be synced by every component solve
// it survives (the session owns and invalidates it); on the whole-graph
// fallback it is reset and the delta is nil.
func ResolveComponentsLive(out *translate.Output, prog *logic.Program, opts Options, plan *engine.Plan, cache *ComponentCache, live *LiveOutcome) (*Outcome, *OutcomeDelta, error) {
	return resolveComponents(out, prog, opts, plan, cache, live)
}

func resolveComponents(out *translate.Output, prog *logic.Program, opts Options, plan *engine.Plan, cache *ComponentCache, live *LiveOutcome) (*Outcome, *OutcomeDelta, error) {
	if out.Clauses == nil || !out.Clauses.HasAtomIndex() {
		if live != nil {
			live.Reset()
		}
		oc, err := Resolve(out, prog, opts)
		return oc, nil, err
	}
	opts = opts.withDefaults()
	start := time.Now()
	oc := newOutcome(out)
	rs := oc.Stats.Repair
	rs.Mode = RepairComponents
	rs.Repaired = 0

	atoms := out.Grounder.Atoms()
	if plan == nil {
		plan = engine.NewPlan(atoms, out.Clauses)
	}
	// Shared across units: each writes only its own component's atoms,
	// so disjoint components repair concurrently.
	conf := cache.confScratch(atoms.Len())

	var unitCache *engine.Cache[compUnit]
	if cache != nil {
		unitCache = cache.units
	}
	analysisStart := time.Now()
	units, cached, err := engine.Run(plan, opts.Parallelism, unitCache,
		func(i int, e compUnit) (compUnit, bool) {
			// The generation covers clauses and evidence state; the MAP
			// state is the solver's to change, so compare it explicitly
			// against the cached one — the discrete assignment, and on
			// the PSL path the soft values too (a re-run of an
			// unconverged component moves them under an unchanged truth
			// and generation).
			for li, a := range plan.Comps[i].Atoms {
				if e.truth[li] != out.Truth[a] {
					return compUnit{}, false
				}
			}
			if out.SoftValues != nil {
				if e.values == nil {
					return compUnit{}, false
				}
				for li, a := range plan.Comps[i].Atoms {
					if e.values[li] != out.SoftValues[a] {
						return compUnit{}, false
					}
				}
			}
			return e, true
		},
		func(i int) (compUnit, error) {
			comp := &plan.Comps[i]
			// Gather the component's live clause slots once; both passes
			// of the read-out (confidence supports, conflict/violation
			// scan) iterate the same list.
			slots := out.Clauses.ComponentSlots(comp.Atoms)
			forEach := func(fn func(int32, *ground.Clause) bool) {
				out.Clauses.ForEachSlots(slots, fn)
			}
			u := resolveUnit(out, comp.Atoms, forEach, conf, opts)
			cu := compUnit{unit: u, truth: make([]bool, len(comp.Atoms))}
			for li, a := range comp.Atoms {
				cu.truth[li] = out.Truth[a]
			}
			if out.SoftValues != nil {
				cu.values = make([]float64, len(comp.Atoms))
				for li, a := range comp.Atoms {
					cu.values[li] = out.SoftValues[a]
				}
			}
			return cu, nil
		})
	if err != nil {
		return nil, nil, err
	}
	rs.Analysis = time.Since(analysisStart)
	rs.Components = len(plan.Comps)
	for _, c := range cached {
		if c {
			rs.Reused++
		} else {
			rs.Repaired++
		}
	}
	unitCache.Replace(plan.Comps, func(i int) compUnit { return units[i] })

	os := oc.Stats.Outcome
	if live == nil {
		mergeStart := time.Now()
		merged := make([]*unit, len(units))
		for i := range units {
			merged[i] = &units[i].unit
		}
		assembleOutcome(oc, merged)
		rs.Merge = time.Since(mergeStart)
		os.Patched = len(units)
		os.Merge = rs.Merge
		os.Total = rs.Merge
		rs.Total = time.Since(start)
		return oc, nil, nil
	}

	// Live path: dirty components subtract their previous contribution
	// and splice in the new one; clean components' held patches stand.
	// A repair-cache hit (cached[i]) proves the unit content unchanged
	// since the last component solve, and the engine-cache lookup inside
	// sync proves the live outcome still holds that component — both
	// must hold for a skip.
	indexStart := time.Now()
	live.sync(plan.Comps,
		func(i int) bool { return cached[i] },
		func(i int) *Patch {
			u := &units[i].unit
			return &Patch{
				Component:         plan.Comps[i].Key,
				Kept:              u.kept,
				Removed:           u.removed,
				Inferred:          u.inferred,
				Clusters:          u.clusters,
				Violations:        u.violations,
				ThresholdFiltered: u.thresholdFiltered,
			}
		})
	os.Index = time.Since(indexStart)
	mergeStart := time.Now()
	live.materialize(oc)
	rs.Merge = time.Since(mergeStart)
	os.Mode = OutcomeLive
	os.Patched, os.Reused = live.patched, live.reused
	os.Merge = rs.Merge
	os.Total = os.Index + os.Merge
	rs.Total = time.Since(start)
	return oc, live.Delta(), nil
}
