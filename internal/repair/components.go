package repair

import (
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/translate"
)

// Component-decomposed conflict resolution.
//
// Clauses never cross conflict components, so every piece of the
// read-out — fact classification, confidence propagation, conflict
// clusters, explanations, violation counts — is a per-component
// computation followed by a deterministic merge. ResolveComponents is
// the repair layer's counterpart of the solvers' MAPGroundComponents:
// it runs one resolveUnit per component on the shared orchestration
// layer (internal/engine), caches each component's finished read-out
// under (component key, generation, membership) plus the component's
// MAP assignment, and on an incremental update re-repairs only the
// components the delta dirtied. Reusing a cached unit is sound because
// a unit depends only on the component's clauses, its atoms'
// evidence/confidence state (both covered by the generation) and its
// slice of the MAP state (checked explicitly against the cached
// assignment).

// ComponentCache carries per-component repair read-outs across the
// incremental engine's solves, plus the reusable confidence scratch
// buffer (per-update allocation churn on the read-out hot path shows up
// directly in repair-stage latency). Construct with NewComponentCache.
// Not safe for concurrent use. The cache must be dropped when anything
// outside the (generation, truth) invariant changes the read-out: a
// threshold or solver change, or a ColdStart (core.Session does this).
type ComponentCache struct {
	units *engine.Cache[compUnit]
	conf  []float64 // scratch, indexed by atom id

	// gen/complete gate the dirty-only analysis: complete means units
	// holds, for every component of plan generation gen, a read-out
	// verified against that solve's truth (set by the full pass,
	// preserved by dirty-only ones).
	gen      uint64
	complete bool
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{units: engine.NewCache[compUnit]()}
}

// confScratch returns a zero-filling-free confidence buffer covering n
// atoms; units overwrite their own scope's entries before reading them.
func (c *ComponentCache) confScratch(n int) []float64 {
	if c == nil {
		return make([]float64, n)
	}
	if cap(c.conf) < n {
		c.conf = make([]float64, n)
	}
	return c.conf[:n]
}

// compUnit is one component's cached read-out plus the component-local
// MAP state it was computed under: the discrete assignment and, on the
// PSL path, the soft values (which feed derived confidences — an
// unconverged component's ADMM can resume and move them while the
// discrete truth and the generation both stand still).
type compUnit struct {
	unit
	truth  []bool    // aligned with the component's atoms
	values []float64 // aligned with the component's atoms; nil for MLN
}

// ResolveComponents interprets the translator output as a conflict
// resolution computed per conflict component, reusing cached
// per-component read-outs for components whose subproblem and MAP
// assignment are unchanged. plan, when non-nil, is the shared
// decomposition the solver stage already built; nil builds one here.
// The merged Outcome is byte-identical to whole-graph Resolve over the
// same state, at every Parallelism setting. Falls back to whole-graph
// Resolve when the solve kept no indexed clause set.
func ResolveComponents(out *translate.Output, prog *logic.Program, opts Options, plan *engine.Plan, cache *ComponentCache) (*Outcome, error) {
	run, err := BeginComponents(out, prog, opts, plan, cache, nil)
	if err != nil {
		return nil, err
	}
	oc, _, err := run.Finish()
	return oc, err
}

// ResolveComponentsLive is ResolveComponents with the Outcome
// delta-patched on live instead of assembled from scratch: components
// whose read-out is unchanged keep their contribution to the global
// fact/cluster lists, dirtied ones are subtracted and re-spliced, and
// the returned OutcomeDelta is the changelog of what entered or left
// each list this solve. The materialized Outcome stays byte-identical
// to whole-graph Resolve. live must be synced by every component solve
// it survives (the session owns and invalidates it); on the whole-graph
// fallback it is reset and the delta is nil.
func ResolveComponentsLive(out *translate.Output, prog *logic.Program, opts Options, plan *engine.Plan, cache *ComponentCache, live *LiveOutcome) (*Outcome, *OutcomeDelta, error) {
	run, err := BeginComponents(out, prog, opts, plan, cache, live)
	if err != nil {
		return nil, nil, err
	}
	return run.Finish()
}

// ComponentRun is a component read-out paused between its two phases:
// BeginComponents runs the per-component analysis, Finish produces the
// Outcome. The split lets the session profile and time the two under
// their own pipeline stage labels ("repair" / "outcome").
type ComponentRun struct {
	oc     *Outcome
	plan   *engine.Plan
	units  []compUnit
	cached []bool
	live   *LiveOutcome
	start  time.Time
	done   bool // whole-graph fallback: Finish has nothing left to do
	// dirtyOnly marks an analysis restricted to the planner's change
	// set: units/cached are indexed by position in dirty, not by
	// component.
	dirtyOnly bool
	dirty     []int32
	deltaOnly bool
}

// BeginComponents runs the analysis phase of the component-decomposed
// read-out — the per-component repair units, reusing cached ones —
// leaving the Outcome to Finish. See ResolveComponents for semantics.
func BeginComponents(out *translate.Output, prog *logic.Program, opts Options, plan *engine.Plan, cache *ComponentCache, live *LiveOutcome) (*ComponentRun, error) {
	if out.Clauses == nil || !out.Clauses.HasAtomIndex() {
		if live != nil {
			live.Reset()
		}
		oc, err := Resolve(out, prog, opts)
		if err != nil {
			return nil, err
		}
		return &ComponentRun{oc: oc, done: true}, nil
	}
	opts = opts.withDefaults()
	start := time.Now()
	oc := newOutcome(out)
	rs := oc.Stats.Repair
	rs.Mode = RepairComponents
	rs.Repaired = 0

	atoms := out.Grounder.Atoms()
	if plan == nil {
		plan = engine.NewPlan(atoms, out.Clauses)
	}
	if live != nil {
		live.deferSplices = opts.DeltaOnly
	}
	// The dirty-only analysis needs every link of the chain: the solver
	// vouches that truth outside the plan's dirty components is
	// bit-identical to the previous solve (TruthDelta), the unit cache
	// covers the previous generation completely with verified units, and
	// the live outcome holds every component of that generation. Any gap
	// falls back to the full pass, which re-anchors all three cursors.
	if cache != nil && live != nil && plan.Maintained() && out.TruthDelta() &&
		cache.complete && cache.gen+1 == plan.Gen() && live.CurrentFor(plan) {
		return beginComponentsDirty(out, opts, plan, cache, live, oc, start)
	}
	// Shared across units: each writes only its own component's atoms,
	// so disjoint components repair concurrently.
	conf := cache.confScratch(atoms.Len())

	var unitCache *engine.Cache[compUnit]
	if cache != nil {
		unitCache = cache.units
	}
	analysisStart := time.Now()
	units, cached, err := engine.Run(plan, opts.Parallelism, unitCache,
		func(i int, e compUnit) (compUnit, bool) {
			// The generation covers clauses and evidence state; the MAP
			// state is the solver's to change, so compare it explicitly
			// against the cached one (see unitMatches).
			if unitMatches(&e, &plan.Comps[i], out) {
				return e, true
			}
			return compUnit{}, false
		},
		func(i int) (compUnit, error) {
			return computeUnit(out, &plan.Comps[i], conf, opts), nil
		})
	if err != nil {
		return nil, err
	}
	rs.Analysis = time.Since(analysisStart)
	rs.Components = len(plan.Comps)
	for _, c := range cached {
		if c {
			rs.Reused++
		} else {
			rs.Repaired++
		}
	}
	// A maintained plan names exactly which component keys left the
	// partition, so the cache churns one entry per dirty component
	// instead of rebuilding the whole table.
	if plan.Maintained() {
		for _, key := range plan.Retired() {
			unitCache.Drop(key)
		}
		for i := range plan.Comps {
			if !cached[i] {
				unitCache.Put(&plan.Comps[i], units[i])
			}
		}
	} else {
		unitCache.Replace(plan.Comps, func(i int) compUnit { return units[i] })
	}
	if cache != nil {
		// The full pass verified (or recomputed) a unit for every
		// component against this solve's truth: the cursor re-anchors.
		cache.gen = plan.Gen()
		cache.complete = true
	}
	return &ComponentRun{oc: oc, plan: plan, units: units, cached: cached, live: live, start: start, deltaOnly: opts.DeltaOnly}, nil
}

// beginComponentsDirty is the analysis phase restricted to the
// planner's change set: only the plan's DirtyComps are verified against
// the cache or recomputed — every other component's cached unit is
// reused without a truth comparison, sound because the solver's
// dirty-only merge carried its atoms' truth forward bit-for-bit and the
// cache cursor proves the unit was verified against exactly that truth
// one generation ago.
func beginComponentsDirty(out *translate.Output, opts Options, plan *engine.Plan, cache *ComponentCache, live *LiveOutcome, oc *Outcome, start time.Time) (*ComponentRun, error) {
	rs := oc.Stats.Repair
	rs.Mode = RepairComponents
	atoms := out.Grounder.Atoms()
	conf := cache.confScratch(atoms.Len())
	dirty := plan.DirtyComps()

	analysisStart := time.Now()
	units := make([]compUnit, len(dirty))
	cached := make([]bool, len(dirty))
	var solve []int
	for k, ci := range dirty {
		comp := &plan.Comps[ci]
		if e, ok := cache.units.Lookup(comp); ok && unitMatches(&e, comp, out) {
			units[k] = e
			cached[k] = true
			continue
		}
		solve = append(solve, k)
	}
	par.Do(len(solve), par.Workers(opts.Parallelism), func(j int) {
		k := solve[j]
		units[k] = computeUnit(out, &plan.Comps[dirty[k]], conf, opts)
	})
	rs.Analysis = time.Since(analysisStart)
	rs.Components = len(plan.Comps)
	rs.Repaired = len(solve)
	rs.Reused = len(plan.Comps) - len(solve)

	for _, key := range plan.Retired() {
		cache.units.Drop(key)
	}
	for k, ci := range dirty {
		if !cached[k] {
			cache.units.Put(&plan.Comps[ci], units[k])
		}
	}
	cache.gen = plan.Gen()
	return &ComponentRun{oc: oc, plan: plan, units: units, cached: cached, live: live,
		start: start, dirtyOnly: true, dirty: dirty, deltaOnly: opts.DeltaOnly}, nil
}

// unitMatches reports whether the cached unit was computed under the
// same component-local MAP state the current output carries: the
// discrete assignment, and on the PSL path the soft values too (a
// re-run of an unconverged component moves them under an unchanged
// truth and generation).
func unitMatches(e *compUnit, comp *ground.Component, out *translate.Output) bool {
	for li, a := range comp.Atoms {
		if e.truth[li] != out.Truth[a] {
			return false
		}
	}
	if out.SoftValues != nil {
		if e.values == nil {
			return false
		}
		for li, a := range comp.Atoms {
			if e.values[li] != out.SoftValues[a] {
				return false
			}
		}
	}
	return true
}

// computeUnit runs one component's repair read-out and snapshots the
// MAP state it was computed under.
func computeUnit(out *translate.Output, comp *ground.Component, conf []float64, opts Options) compUnit {
	// Gather the component's live clause slots once; both passes of the
	// read-out (confidence supports, conflict/violation scan) iterate
	// the same list.
	slots := out.Clauses.ComponentSlots(comp.Atoms)
	forEach := func(fn func(int32, *ground.Clause) bool) {
		out.Clauses.ForEachSlots(slots, fn)
	}
	u := resolveUnit(out, comp.Atoms, forEach, conf, opts)
	cu := compUnit{unit: u, truth: make([]bool, len(comp.Atoms))}
	for li, a := range comp.Atoms {
		cu.truth[li] = out.Truth[a]
	}
	if out.SoftValues != nil {
		cu.values = make([]float64, len(comp.Atoms))
		for li, a := range comp.Atoms {
			cu.values[li] = out.SoftValues[a]
		}
	}
	return cu
}

// Finish produces the Outcome from the analysis phase: the sort/merge
// assembly when no live outcome is maintained, the delta-patched live
// sync otherwise.
func (r *ComponentRun) Finish() (*Outcome, *OutcomeDelta, error) {
	if r.done {
		return r.oc, nil, nil
	}
	oc, plan, units, cached, live := r.oc, r.plan, r.units, r.cached, r.live
	rs := oc.Stats.Repair
	start := r.start

	os := oc.Stats.Outcome
	if live == nil {
		mergeStart := time.Now()
		merged := make([]*unit, len(units))
		for i := range units {
			merged[i] = &units[i].unit
		}
		assembleOutcome(oc, merged)
		rs.Merge = time.Since(mergeStart)
		os.Patched = len(units)
		os.Merge = rs.Merge
		os.Total = rs.Merge
		rs.Total = time.Since(start)
		return oc, nil, nil
	}

	// Live path: dirty components subtract their previous contribution
	// and splice in the new one; clean components' held patches stand.
	// A repair-cache hit (cached[i]) proves the unit content unchanged
	// since the last component solve, and the engine-cache lookup inside
	// sync proves the live outcome still holds that component — both
	// must hold for a skip.
	indexStart := time.Now()
	if r.dirtyOnly {
		// units/cached are indexed by position in r.dirty; only those
		// components are touched, the rest of the live outcome stands
		// without an engine-cache probe.
		live.syncDirty(plan,
			func(k int) bool { return cached[k] },
			func(k int) *Patch {
				u := &units[k].unit
				return &Patch{
					Component:         plan.Comps[r.dirty[k]].Key,
					Kept:              u.kept,
					Removed:           u.removed,
					Inferred:          u.inferred,
					Clusters:          u.clusters,
					Violations:        u.violations,
					ThresholdFiltered: u.thresholdFiltered,
				}
			})
	} else {
		var retired []ground.AtomID
		if plan.Maintained() {
			retired = plan.Retired()
			if retired == nil {
				retired = []ground.AtomID{}
			}
		}
		live.sync(plan.Comps, retired,
			func(i int) bool { return cached[i] },
			func(i int) *Patch {
				u := &units[i].unit
				return &Patch{
					Component:         plan.Comps[i].Key,
					Kept:              u.kept,
					Removed:           u.removed,
					Inferred:          u.inferred,
					Clusters:          u.clusters,
					Violations:        u.violations,
					ThresholdFiltered: u.thresholdFiltered,
				}
			})
		// A full sync re-anchors the live cursor: every component of
		// this generation was either patched in or verified held.
		live.gen = plan.Gen()
		live.complete = true
	}
	os.Index = time.Since(indexStart)
	mergeStart := time.Now()
	if r.deltaOnly {
		live.materializeCounts(oc)
		os.Mode = OutcomeDeltaOnly
	} else {
		live.materialize(oc)
		os.Mode = OutcomeLive
	}
	rs.Merge = time.Since(mergeStart)
	os.Patched, os.Reused = live.patched, live.reused
	os.Merge = rs.Merge
	os.Total = os.Index + os.Merge
	rs.Total = time.Since(start)
	return oc, live.Delta(), nil
}
