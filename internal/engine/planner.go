package engine

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/ground"
	"repro/internal/store"
)

// Maintained solve plans.
//
// NewPlan rebuilds the whole decomposition on every call: a full scan
// plus two key-comparison sorts for the canonical order, an O(atoms)
// var-map allocation and a full partition listing. On a session engine
// those are the last whole-graph passes left on the single-fact update
// path. The Planner below keeps one Plan alive across solves and
// patches it from the deltas the lower layers already track:
//
//   - the AtomTable's mutation journal names every atom whose canonical
//     position could have moved; the order is updated by a sorted
//     window splice (binary-searched insertion points, block copies,
//     double-buffered scratch) instead of re-sorting;
//   - VarOf is patched in place from the first spliced position on —
//     positions before it are untouched;
//   - the clause set's changed-root log names every component the
//     union-find moved; only those are re-grouped and re-listed, the
//     rest of the partition (and the Atoms slices the caches hold) is
//     reused as-is.
//
// The maintained Plan is byte-identical — same Order, VarOf and Comps —
// to what a fresh NewPlan over the same state returns; the differential
// suites assert exactly that. SolveOptions.RebuildPlan keeps the
// from-scratch path callable as the baseline.

// PlanStats reports how one solve obtained its decomposition plan.
type PlanStats struct {
	// Mode is "maintained" (delta-patched persistent plan) or
	// "rebuilt" (from-scratch NewPlan, or the planner's first build).
	Mode string
	// Atoms and Components describe the plan: live atoms in canonical
	// order and conflict components in the partition.
	Atoms      int
	Components int
	// InsertedAtoms/RemovedAtoms are the canonical-order splice sizes;
	// ShiftedVars counts the canonical positions rewritten behind the
	// first splice point. All zero on a conf-only delta.
	InsertedAtoms int
	RemovedAtoms  int
	ShiftedVars   int
	// PatchedComponents counts components re-listed from the union-find
	// change log; DroppedComponents counts component keys retired from
	// the partition (and from the consumers' caches).
	PatchedComponents int
	DroppedComponents int
	// Sync is the time spent building or maintaining the plan.
	Sync time.Duration
}

// Planner maintains a Plan across a session engine's incremental
// solves. Construct with NewPlanner; call Sync once per solve at a
// sequential point (no readers in flight). Sync mutates the previously
// returned Plan in place — a Plan is only valid until the next Sync.
type Planner struct {
	atoms *ground.AtomTable
	cs    *ground.ClauseSet
	plan  *Plan

	// nEv is the evidence-segment length of the canonical order.
	nEv int
	// fidOf mirrors each atom's backing fact id as of the last sync —
	// the evidence-segment sort key the spliced order is still sorted
	// by while this sync's insertion points are located.
	fidOf []store.FactID
	// compKeyOf maps each live atom to its component key as of the last
	// sync (retired entries go stale and are never read).
	compKeyOf []ground.AtomID
	// firstOf maps a component key to the component's first atom in
	// canonical order — the binary-search handle from a changed root to
	// its slot in the comps list.
	firstOf map[ground.AtomID]ground.AtomID

	// Double buffers for the order and comps lists, swapped on splice.
	spareOrder []ground.AtomID
	spareComps []ground.Component

	// Per-sync scratch, reused so the steady-state single-fact path
	// stays allocation-free.
	journal     []ground.AtomID
	roots       []ground.AtomID
	events      []orderEvent
	removed     []ground.AtomID
	insEv       []ground.AtomID
	insDer      []ground.AtomID
	remIdx      []int
	cands       []ground.AtomID
	groupIdx    map[ground.AtomID]int32
	groups      []ground.Component
	groupBufs   [][]ground.AtomID
	affectedBuf []ground.AtomID
	retired     []ground.AtomID
	dirty       []int32
	dead        []ground.AtomID

	// gen counts Sync calls; every returned plan carries it so delta-
	// maintaining consumers can prove their state is exactly one sync
	// behind (see Plan.Gen).
	gen uint64

	stats PlanStats
}

// orderEvent is one edit of the canonical order: an insertion of atom
// before old position pos, or (atom < 0) a removal of old position pos.
type orderEvent struct {
	pos  int32
	atom ground.AtomID
}

// NewPlanner returns a planner with no plan; the first Sync builds one
// from scratch.
func NewPlanner() *Planner { return &Planner{} }

// Plan returns the planner's current plan (nil before the first Sync).
// The differential suites use it to compare the maintained plan against
// a fresh NewPlan over the same state.
func (pl *Planner) Plan() *Plan { return pl.plan }

// Sync returns the plan for the current engine state, patched from the
// atom journal and component change log accumulated since the last
// call (or built from scratch on the first). The returned stats
// describe what the sync did.
func (pl *Planner) Sync(atoms *ground.AtomTable, cs *ground.ClauseSet) (*Plan, PlanStats) {
	start := time.Now()
	pl.stats = PlanStats{}
	pl.gen++
	if pl.plan == nil || pl.atoms != atoms || pl.cs != cs {
		pl.atoms, pl.cs = atoms, cs
		pl.rebuild()
	} else {
		pl.sync()
	}
	pl.plan.gen = pl.gen
	if pl.plan.maintained {
		pl.stats.Mode = "maintained"
	} else {
		pl.stats.Mode = "rebuilt"
	}
	pl.stats.Atoms = len(pl.plan.Order)
	pl.stats.Components = len(pl.plan.Comps)
	pl.stats.Sync = time.Since(start)
	return pl.plan, pl.stats
}

// rebuild constructs the plan from scratch and resets every mirror and
// delta source to that snapshot.
func (pl *Planner) rebuild() {
	atoms, cs := pl.atoms, pl.cs
	atoms.EnableJournal()
	cs.EnableChangeLog()
	order := ground.CanonicalAtoms(atoms)
	varOf := ground.CanonicalVarMap(atoms, order)
	comps := cs.Components(order)

	nEv := 0
	for nEv < len(order) && atoms.IsEvidence(order[nEv]) {
		nEv++
	}
	pl.nEv = nEv

	n := atoms.Len()
	pl.fidOf = grow(pl.fidOf, n, store.FactID(-1))
	for i := range pl.fidOf {
		pl.fidOf[i] = atoms.BackingFact(ground.AtomID(i))
	}
	pl.compKeyOf = grow(pl.compKeyOf, n, ground.AtomID(-1))
	local := grow[int32](nil, n, 0)
	pl.firstOf = make(map[ground.AtomID]ground.AtomID, len(comps))
	for ci := range comps {
		c := &comps[ci]
		pl.firstOf[c.Key] = c.Atoms[0]
		for li, a := range c.Atoms {
			pl.compKeyOf[a] = c.Key
			local[a] = int32(li)
		}
	}

	// The snapshot consumed everything the journal and change log held.
	atoms.DrainJournal(func(ground.AtomID) {})
	cs.DrainChangedRoots(func(ground.AtomID) {})

	pl.plan = &Plan{
		Atoms:       atoms,
		Order:       order,
		VarOf:       varOf,
		Comps:       comps,
		cs:          cs,
		localOfAtom: local,
		maintained:  false,
		retired:     nil,
	}
}

// sync patches the plan from the deltas accumulated since the last
// sync. The resulting Order, VarOf and Comps are byte-identical to a
// fresh NewPlan over the same state.
func (pl *Planner) sync() {
	atoms, cs, p := pl.atoms, pl.cs, pl.plan
	p.maintained = true
	p.retired = nil
	pl.dirty, pl.dead = pl.dirty[:0], pl.dead[:0]
	p.dirty, p.dead = pl.dirty, pl.dead

	pl.journal = pl.journal[:0]
	atoms.DrainJournal(func(a ground.AtomID) { pl.journal = append(pl.journal, a) })
	pl.roots = pl.roots[:0]
	cs.DrainChangedRoots(func(r ground.AtomID) { pl.roots = append(pl.roots, r) })
	if len(pl.journal) == 0 && len(pl.roots) == 0 {
		return // empty delta: the plan stands
	}
	// A delta comparable to the table is no longer a delta: rebuild.
	if len(pl.journal)*4 > atoms.Len() {
		pl.rebuild()
		return
	}

	n := atoms.Len()
	p.VarOf = grow(p.VarOf, n, -1)
	p.localOfAtom = grow(p.localOfAtom, n, 0)
	pl.compKeyOf = grow(pl.compKeyOf, n, ground.AtomID(-1))
	pl.fidOf = grow(pl.fidOf, n, store.FactID(-1))
	varOf := p.VarOf

	// Classify the journal into canonical-order edits. Positions and
	// the evidence segment refer to the previous sync's state; the fid
	// mirror is the previous sort key and must not be refreshed until
	// the insertion points have been located against it.
	pl.removed, pl.insEv, pl.insDer = pl.removed[:0], pl.insEv[:0], pl.insDer[:0]
	affected := pl.affectedBuf[:0] // old component keys touched
	for _, a := range pl.journal {
		wasPos := varOf[a]
		wasLive := wasPos >= 0
		nowLive := !atoms.IsRetracted(a)
		if wasLive {
			affected = append(affected, pl.compKeyOf[a])
		}
		switch {
		case !wasLive && !nowLive:
			// Born and retracted within one window: no order presence.
		case wasLive && !nowLive:
			pl.removed = append(pl.removed, a)
		case !wasLive && nowLive:
			if atoms.IsEvidence(a) {
				pl.insEv = append(pl.insEv, a)
			} else {
				pl.insDer = append(pl.insDer, a)
			}
		default:
			wasEv := int(wasPos) < pl.nEv
			nowEv := atoms.IsEvidence(a)
			if wasEv != nowEv || (nowEv && pl.fidOf[a] != atoms.BackingFact(a)) {
				pl.removed = append(pl.removed, a)
				if nowEv {
					pl.insEv = append(pl.insEv, a)
				} else {
					pl.insDer = append(pl.insDer, a)
				}
			}
		}
	}

	// Map changed roots and journal atoms to the old components they
	// belonged to; their atoms plus the journal are the only candidates
	// whose grouping can have changed.
	for _, r := range pl.roots {
		if _, ok := pl.firstOf[r]; ok {
			affected = append(affected, r)
		}
	}
	slices.Sort(affected)
	affected = slices.Compact(affected)
	pl.remIdx = pl.remIdx[:0]
	for _, key := range affected {
		first := pl.firstOf[key]
		pos := varOf[first]
		idx := sort.Search(len(p.Comps), func(i int) bool {
			return varOf[p.Comps[i].Atoms[0]] >= pos
		})
		if idx >= len(p.Comps) || p.Comps[idx].Key != key {
			panic(fmt.Sprintf("engine: planner lost component %d", key))
		}
		pl.remIdx = append(pl.remIdx, idx)
	}

	pl.cands = pl.cands[:0]
	for _, idx := range pl.remIdx {
		for _, a := range p.Comps[idx].Atoms {
			if !atoms.IsRetracted(a) {
				pl.cands = append(pl.cands, a)
			}
		}
	}
	for _, a := range pl.journal {
		if !atoms.IsRetracted(a) {
			pl.cands = append(pl.cands, a)
		}
	}
	slices.Sort(pl.cands)
	pl.cands = slices.Compact(pl.cands)

	pl.spliceOrder()

	// Refresh the mirrors the classification read.
	for _, a := range pl.journal {
		pl.fidOf[a] = atoms.BackingFact(a)
	}

	pl.spliceComps(affected)
	pl.affectedBuf = affected
	p.dirty, p.dead = pl.dirty, pl.dead
}

// spliceOrder applies the classified edits to the canonical order and
// patches VarOf from the first changed position on.
func (pl *Planner) spliceOrder() {
	atoms, p := pl.atoms, pl.plan
	if len(pl.removed) == 0 && len(pl.insEv) == 0 && len(pl.insDer) == 0 {
		return
	}
	varOf := p.VarOf
	old := p.Order

	// Insertions are located by binary search against the still-sorted
	// old segments: evidence by the mirrored previous fact ids, derived
	// by the immutable statement keys.
	slices.SortFunc(pl.insEv, func(a, b ground.AtomID) int {
		fa, fb := atoms.BackingFact(a), atoms.BackingFact(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	})
	slices.SortFunc(pl.insDer, atoms.CompareKeys)
	events := pl.events[:0]
	for _, a := range pl.removed {
		events = append(events, orderEvent{pos: varOf[a], atom: -1 - a})
	}
	for _, a := range pl.insEv {
		fid := atoms.BackingFact(a)
		pos := sort.Search(pl.nEv, func(i int) bool { return pl.fidOf[old[i]] >= fid })
		events = append(events, orderEvent{pos: int32(pos), atom: a})
	}
	for _, a := range pl.insDer {
		pos := pl.nEv + sort.Search(len(old)-pl.nEv, func(i int) bool {
			return atoms.CompareKeys(old[pl.nEv+i], a) >= 0
		})
		events = append(events, orderEvent{pos: int32(pos), atom: a})
	}
	// At equal positions insertions must run before the removal: a fact
	// retracted and re-asserted within one delta window produces both an
	// insertion and a removal whose binary-searched position is the slot
	// of the removed atom itself, and consuming the removal first would
	// advance the copy cursor past the insertion point.
	slices.SortStableFunc(events, func(a, b orderEvent) int {
		if a.pos != b.pos {
			return int(a.pos) - int(b.pos)
		}
		switch {
		case a.atom >= 0 && b.atom < 0:
			return -1
		case a.atom < 0 && b.atom >= 0:
			return 1
		}
		return 0
	})
	pl.events = events

	dst := pl.spareOrder[:0]
	cur := int32(0)
	firstDiff := -1
	evShift := 0
	for _, e := range events {
		dst = append(dst, old[cur:e.pos]...)
		if firstDiff < 0 {
			firstDiff = len(dst)
		}
		if e.atom >= 0 {
			dst = append(dst, e.atom)
			if atoms.IsEvidence(e.atom) {
				evShift++
			}
			cur = e.pos
		} else {
			if int(e.pos) < pl.nEv {
				evShift--
			}
			cur = e.pos + 1
		}
	}
	dst = append(dst, old[cur:]...)
	pl.spareOrder = old
	p.Order = dst
	pl.nEv += evShift

	for _, a := range pl.removed {
		varOf[a] = -1
	}
	for i := firstDiff; i < len(dst); i++ {
		varOf[dst[i]] = int32(i)
	}
	// Removed atoms not reinserted above are gone from the order — the
	// truth domain the delta-merging solver must pin false.
	for _, a := range pl.removed {
		if varOf[a] < 0 {
			pl.dead = append(pl.dead, a)
		}
	}
	pl.stats.InsertedAtoms = len(pl.insEv) + len(pl.insDer)
	pl.stats.RemovedAtoms = len(pl.removed)
	pl.stats.ShiftedVars = len(dst) - firstDiff
}

// spliceComps resolves pending splits over the candidate atoms,
// re-lists the changed components and patches them into the partition,
// leaving every untouched component's listing (and Atoms slice) alone.
// affected holds the old keys of every component the delta touched,
// sorted; their list indexes are in pl.remIdx.
func (pl *Planner) spliceComps(affected []ground.AtomID) {
	cs, p := pl.cs, pl.plan
	varOf := p.VarOf

	cs.ResolveSplits(pl.cands)
	// The resolve's own generation bumps are part of this sync, not the
	// next one.
	cs.DrainChangedRoots(func(ground.AtomID) {})

	// Group the candidates by their (now final) roots, in canonical
	// order, so each group lists its atoms exactly as Components would.
	live := pl.cands[:0]
	for _, a := range pl.cands {
		if varOf[a] >= 0 {
			live = append(live, a)
		}
	}
	pl.cands = live
	slices.SortFunc(pl.cands, func(a, b ground.AtomID) int { return int(varOf[a]) - int(varOf[b]) })
	if pl.groupIdx == nil {
		pl.groupIdx = make(map[ground.AtomID]int32)
	} else {
		for k := range pl.groupIdx {
			delete(pl.groupIdx, k)
		}
	}
	groups := pl.groups[:0]
	for _, a := range pl.cands {
		root := cs.Find(a)
		gi, ok := pl.groupIdx[root]
		if !ok {
			gi = int32(len(groups))
			pl.groupIdx[root] = gi
			if len(pl.groupBufs) <= len(groups) {
				pl.groupBufs = append(pl.groupBufs, nil)
			}
			pl.groupBufs[gi] = pl.groupBufs[gi][:0]
			groups = append(groups, ground.Component{Key: root, Gen: cs.RootGen(root)})
		}
		pl.groupBufs[gi] = append(pl.groupBufs[gi], a)
	}
	pl.groups = groups

	// Adopt the old Atoms slice when a group's membership is unchanged
	// (a pure generation bump — the common conf-toggle case); fresh
	// membership gets a fresh immutable slice.
	patched := 0
	for gi := range groups {
		g := &groups[gi]
		buf := pl.groupBufs[gi]
		if first, ok := pl.firstOf[g.Key]; ok && varOf[first] >= 0 {
			if old := pl.oldCompByKey(affected, g.Key); old != nil && slices.Equal(old.Atoms, buf) {
				g.Atoms = old.Atoms
				if old.Gen != g.Gen {
					patched++
				}
				continue
			}
		}
		g.Atoms = append([]ground.AtomID(nil), buf...)
		patched++
	}
	pl.stats.PatchedComponents = patched

	// Retire old keys no group re-listed, and refresh the key→first
	// mirror for what did change.
	retired := pl.retired[:0]
	for _, key := range affected {
		if _, ok := pl.groupIdx[key]; !ok {
			retired = append(retired, key)
			delete(pl.firstOf, key)
		}
	}
	pl.retired = retired
	p.retired = retired
	pl.stats.DroppedComponents = len(retired)
	for gi := range groups {
		g := &groups[gi]
		pl.firstOf[g.Key] = g.Atoms[0]
		for li, a := range g.Atoms {
			pl.compKeyOf[a] = g.Key
			p.localOfAtom[a] = int32(li)
		}
	}

	// Patch the partition list. In-place when each re-listed group
	// keeps its slot (same leading atom as the component it replaces);
	// otherwise merge old list and groups into the spare buffer.
	if len(groups) == len(pl.remIdx) {
		inPlace := true
		for k := range groups {
			if groups[k].Atoms[0] != p.Comps[pl.remIdx[k]].Atoms[0] {
				inPlace = false
				break
			}
		}
		if inPlace {
			for k := range groups {
				p.Comps[pl.remIdx[k]] = groups[k]
				pl.dirty = append(pl.dirty, int32(pl.remIdx[k]))
			}
			slices.Sort(pl.dirty)
			return
		}
	}
	dst := pl.spareComps[:0]
	gi, ri := 0, 0
	for i := range p.Comps {
		if ri < len(pl.remIdx) && i == pl.remIdx[ri] {
			ri++
			continue
		}
		pos := varOf[p.Comps[i].Atoms[0]]
		for gi < len(groups) && varOf[groups[gi].Atoms[0]] < pos {
			pl.dirty = append(pl.dirty, int32(len(dst)))
			dst = append(dst, groups[gi])
			gi++
		}
		dst = append(dst, p.Comps[i])
	}
	for ; gi < len(groups); gi++ {
		pl.dirty = append(pl.dirty, int32(len(dst)))
		dst = append(dst, groups[gi])
	}
	pl.spareComps = p.Comps
	p.Comps = dst
}

// oldCompByKey returns the old component listed under key, using the
// precomputed affected-key → list-index mapping (affected and pl.remIdx
// are parallel, both sorted by key discovery order).
func (pl *Planner) oldCompByKey(affected []ground.AtomID, key ground.AtomID) *ground.Component {
	for k, a := range affected {
		if a == key {
			return &pl.plan.Comps[pl.remIdx[k]]
		}
	}
	return nil
}

// grow extends s to length n, filling new entries with fill.
func grow[T any](s []T, n int, fill T) []T {
	for len(s) < n {
		s = append(s, fill)
	}
	return s
}
