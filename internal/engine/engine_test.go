package engine

import (
	"errors"
	"testing"

	"repro/internal/ground"
)

func comp(key ground.AtomID, gen uint64, atoms ...ground.AtomID) ground.Component {
	return ground.Component{Key: key, Gen: gen, Atoms: atoms}
}

// TestCacheLookupInvariant: a payload is returned only under the exact
// (key, generation, membership) triple it was stored under.
func TestCacheLookupInvariant(t *testing.T) {
	c := NewCache[string]()
	comps := []ground.Component{comp(0, 3, 0, 1), comp(2, 5, 2)}
	c.Replace(comps, func(i int) string { return []string{"a", "b"}[i] })

	if v, ok := c.Lookup(&comps[0]); !ok || v != "a" {
		t.Fatalf("exact match not returned: %q %v", v, ok)
	}
	cases := []struct {
		name string
		c    ground.Component
	}{
		{"unknown key", comp(7, 3, 7)},
		{"stale generation", comp(0, 4, 0, 1)},
		{"membership grew", comp(0, 3, 0, 1, 2)},
		{"membership differs", comp(0, 3, 0, 2)},
	}
	for _, tc := range cases {
		if _, ok := c.Lookup(&tc.c); ok {
			t.Errorf("%s: stale payload reused", tc.name)
		}
	}

	// Replace drops entries of components that no longer exist.
	c.Replace(comps[:1], func(i int) string { return "a2" })
	if _, ok := c.Lookup(&comps[1]); ok {
		t.Error("entry of a vanished component survived Replace")
	}
	if v, ok := c.Lookup(&comps[0]); !ok || v != "a2" {
		t.Errorf("replaced payload not returned: %q %v", v, ok)
	}
}

// TestNilCache: a nil cache never hits and ignores Replace/Each — the
// cacheless one-shot path.
func TestNilCache(t *testing.T) {
	var c *Cache[int]
	comps := []ground.Component{comp(0, 1, 0)}
	if _, ok := c.Lookup(&comps[0]); ok {
		t.Error("nil cache returned a payload")
	}
	c.Replace(comps, func(int) int { return 1 }) // must not panic
	c.Each(func(ground.AtomID, int) { t.Error("nil cache visited an entry") })
}

// TestCacheEach: every held payload is visited exactly once with its
// component key — the enumeration consumers use to retire vanished
// components' contributions — and entries dropped by Replace stop
// being visited.
func TestCacheEach(t *testing.T) {
	c := NewCache[string]()
	comps := []ground.Component{comp(0, 1, 0, 1), comp(5, 2, 5), comp(9, 4, 9)}
	c.Replace(comps, func(i int) string { return []string{"a", "b", "c"}[i] })

	seen := map[ground.AtomID]string{}
	c.Each(func(k ground.AtomID, v string) {
		if _, dup := seen[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = v
	})
	if want := map[ground.AtomID]string{0: "a", 5: "b", 9: "c"}; len(seen) != len(want) ||
		seen[0] != "a" || seen[5] != "b" || seen[9] != "c" {
		t.Fatalf("Each visited %v, want %v", seen, want)
	}

	c.Replace(comps[:1], func(i int) string { return "a" })
	n := 0
	c.Each(func(ground.AtomID, string) { n++ })
	if n != 1 {
		t.Fatalf("Each visited %d entries after Replace, want 1", n)
	}
}

// TestRunReuseAndDirtySplit: cached components are served by the reuse
// hook, a reuse veto demotes to dirty, and results land in component
// order regardless of scheduling.
func TestRunReuseAndDirtySplit(t *testing.T) {
	comps := []ground.Component{comp(0, 1, 0), comp(1, 1, 1), comp(2, 1, 2)}
	p := &Plan{Comps: comps}
	c := NewCache[int]()
	c.Replace(comps[:2], func(i int) int { return 10 + i })

	vetoed := 0
	results, cached, err := Run(p, 1, c,
		func(i int, v int) (int, bool) {
			if i == 1 {
				vetoed++ // consumer-side staleness (e.g. unconverged ADMM)
				return 0, false
			}
			return v, true
		},
		func(i int) (int, error) { return 100 + i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if vetoed != 1 {
		t.Fatalf("reuse hook vetoed %d times, want 1", vetoed)
	}
	want := []int{10, 101, 102}
	wantCached := []bool{true, false, false}
	for i := range comps {
		if results[i] != want[i] || cached[i] != wantCached[i] {
			t.Fatalf("component %d: got (%d, %v), want (%d, %v)",
				i, results[i], cached[i], want[i], wantCached[i])
		}
	}
}

// TestRunPropagatesError: any dirty component's error fails the run.
func TestRunPropagatesError(t *testing.T) {
	p := &Plan{Comps: []ground.Component{comp(0, 1, 0), comp(1, 1, 1)}}
	boom := errors.New("boom")
	_, _, err := Run[int](p, 1, nil,
		func(i int, v int) (int, bool) { return v, true },
		func(i int) (int, error) {
			if i == 1 {
				return 0, boom
			}
			return 0, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestObserveAccounting: the shared stats accounting matches what every
// consumer used to do by hand.
func TestObserveAccounting(t *testing.T) {
	p := &Plan{Comps: []ground.Component{comp(0, 1, 0, 1, 2), comp(3, 1, 3)}}
	stats := &ground.ComponentStats{}
	p.Observe(stats, 0, false, "exact", false)
	p.Observe(stats, 1, true, "ignored", false)
	if stats.Count != 2 || stats.Largest != 3 {
		t.Errorf("histogram accounting wrong: %+v", stats)
	}
	if stats.Solved != 1 || stats.Reused != 1 {
		t.Errorf("solved/reused split wrong: %+v", stats)
	}
	if stats.Engines["exact"] != 1 || stats.Engines["cached"] != 1 {
		t.Errorf("engine tallies wrong: %+v", stats)
	}
	p.Observe(stats, 1, false, "local", true)
	if stats.Fallbacks != 1 {
		t.Errorf("fallback not accounted: %+v", stats)
	}
}
