// Package engine is the shared orchestration layer for
// component-decomposed incremental work. The ground network of a solve
// splits into independent conflict components (see
// internal/ground/components.go); everything the system computes over
// it — the MLN MaxSAT state, the PSL ADMM state, and the repair
// read-out — decomposes along that partition. This package owns the
// machinery all three consumers share, so each backend contributes only
// its per-component kernel:
//
//   - Plan: the decomposition of one solve — canonical atom order,
//     component partition, and per-component clause gathering in dense
//     local numbering (index-driven for incremental clause sets, a
//     global canonical partition otherwise);
//   - Cache: a generic per-component payload cache keyed by (component
//     key, generation, membership), the invariant under which a
//     component's subproblem is provably unchanged;
//   - Run: the scheduling loop — split components into reusable and
//     dirty, process dirty ones concurrently on the shared worker pool,
//     return results in deterministic component order;
//   - Observe: the stats accounting every consumer reports identically.
package engine

import (
	"repro/internal/ground"
	"repro/internal/par"
)

// Plan is the component decomposition of one solve over an atom table
// and its persistent clause set. Build it once per solve (after any
// incremental sync) and hand it to every consumer — solver and repair —
// so all stages see the identical partition. A Plan is read-only after
// construction and safe for concurrent use.
type Plan struct {
	// Atoms is the atom table the truth vectors index.
	Atoms *ground.AtomTable
	// Order is the canonical solve order over the live atoms.
	Order []ground.AtomID
	// VarOf maps atom ids to canonical variable indexes (-1 when
	// retracted).
	VarOf []int32
	// Comps is the conflict-component partition of Order, each
	// component listing its atoms in canonical order.
	Comps []ground.Component

	cs         *ground.ClauseSet
	compOfVar  []int32
	localOfVar []int32
	// gathered/slots hold the global partition of canonical clauses on
	// the index-less path; nil when the atom index drives per-component
	// gathering instead.
	gathered [][]ground.Clause
	slots    [][]int32

	// localOfAtom is the Planner's atom-indexed local map — unlike
	// localOfVar it does not shift when the canonical order is spliced,
	// so the planner patches only touched components' entries. When set
	// it drives Local.
	localOfAtom []int32
	// maintained marks a plan delta-patched by a Planner sync (as
	// opposed to built from scratch); retired then lists the component
	// keys that sync removed from the partition, so consumers can drop
	// exactly those cache entries instead of rebuilding their caches.
	maintained bool
	retired    []ground.AtomID
	// gen is the planner's sync generation; dirty and dead describe the
	// last sync's change set (see Gen, DirtyComps, RetractedAtoms).
	gen   uint64
	dirty []int32
	dead  []ground.AtomID
}

// NewPlan partitions the clause set's ground network into conflict
// components in canonical order. Without an atom index on cs the
// per-component clauses are partitioned globally here (the one-shot
// path); with one, Clauses gathers each component's own clauses on
// demand, so incremental work stays proportional to the dirty
// components.
func NewPlan(atoms *ground.AtomTable, cs *ground.ClauseSet) *Plan {
	order := ground.CanonicalAtoms(atoms)
	varOf := ground.CanonicalVarMap(atoms, order)
	p := &Plan{
		Atoms: atoms,
		Order: order,
		VarOf: varOf,
		Comps: cs.Components(order),
		cs:    cs,
	}
	// Var → (component, local index); components list their atoms in
	// canonical order, so local numbering is the canonical order
	// restricted to the component.
	p.compOfVar = make([]int32, len(order))
	p.localOfVar = make([]int32, len(order))
	for ci := range p.Comps {
		for li, a := range p.Comps[ci].Atoms {
			v := varOf[a]
			p.compOfVar[v] = int32(ci)
			p.localOfVar[v] = int32(li)
		}
	}
	if !cs.HasAtomIndex() {
		p.gatherGlobal()
	}
	return p
}

// Local maps a global atom id to its component-local variable.
func (p *Plan) Local(a ground.AtomID) int32 {
	if p.localOfAtom != nil {
		return p.localOfAtom[a]
	}
	return p.localOfVar[p.VarOf[a]]
}

// Maintained reports whether this plan was delta-patched by a Planner
// sync; Retired then lists the component keys that sync removed from
// the partition. Consumers use the pair to maintain their caches
// entry-wise (Put the dirty, Drop the retired) instead of rebuilding
// them with Replace.
func (p *Plan) Maintained() bool { return p.maintained }

// Retired returns the component keys the last Planner sync removed
// from the partition. Only meaningful when Maintained reports true.
func (p *Plan) Retired() []ground.AtomID { return p.retired }

// Gen returns the plan's sync generation: bumped on every Planner.Sync
// — including empty-delta and rebuild syncs — and 0 for a from-scratch
// NewPlan. A consumer holding state derived from generation g may apply
// only this sync's change set (DirtyComps, Retired, RetractedAtoms) iff
// the plan is maintained and Gen() == g+1; any gap means intervening
// syncs whose change sets were never observed, and the state must be
// reseeded from a full pass.
func (p *Plan) Gen() uint64 { return p.gen }

// DirtyComps returns the indexes into Comps (ascending) of every
// component the last Planner sync re-listed or generation-bumped.
// Together with Retired and RetractedAtoms this is a superset of every
// change since the previous generation: a component absent from all
// three has the same key, generation, membership, atom truth domain and
// clause subproblem it had under the previous plan. Only meaningful
// when Maintained reports true.
func (p *Plan) DirtyComps() []int32 { return p.dirty }

// RetractedAtoms returns the atoms the last Planner sync removed from
// the canonical order without reinserting them — their truth is pinned
// false from this generation on. Only meaningful when Maintained
// reports true.
func (p *Plan) RetractedAtoms() []ground.AtomID { return p.dead }

// Clauses returns component i's live clauses in canonical order,
// remapped into the component's dense local variable space, plus their
// stable clause-set slots (for keying per-clause warm state). With the
// atom index the gather walks only the component's own clauses —
// incremental work stays proportional to what the delta dirtied — and
// produces the same canonical clause sequence the index-less global
// partition computes (ComponentClauses' contract). Safe to call
// concurrently for different components.
func (p *Plan) Clauses(i int) ([]ground.Clause, []int32) {
	if p.gathered != nil {
		return p.gathered[i], p.slots[i]
	}
	return p.cs.ComponentClauses(p.Comps[i].Atoms, p.Local)
}

// gatherGlobal partitions the canonical clause list across components —
// the index-less path, where per-component gathering has nothing to
// walk. Canonical literals index canonical variable space; they are
// remapped to the component-local numbering the subproblems use.
func (p *Plan) gatherGlobal() {
	canon, slots := ground.CanonicalClauses(p.cs, p.VarOf)
	p.gathered = make([][]ground.Clause, len(p.Comps))
	p.slots = make([][]int32, len(p.Comps))
	for k, c := range canon {
		ci := p.compOfVar[c.Lits[0].Atom]
		remapped := make([]ground.Lit, len(c.Lits))
		for i, l := range c.Lits {
			remapped[i] = ground.Lit{Atom: ground.AtomID(p.localOfVar[l.Atom]), Neg: l.Neg}
		}
		c.Lits = remapped
		p.gathered[ci] = append(p.gathered[ci], c)
		p.slots[ci] = append(p.slots[ci], slots[k])
	}
}

// Observe accounts component i into a component-decomposed solve's
// statistics: size histogram always, the solved/reused split and engine
// tallies according to whether the component's payload was reused from
// cache ("cached") or computed by the named engine.
func (p *Plan) Observe(stats *ground.ComponentStats, i int, cached bool, engine string, fallback bool) {
	stats.Observe(len(p.Comps[i].Atoms))
	if cached {
		stats.Reused++
		stats.Engine("cached")
		return
	}
	stats.Solved++
	stats.Engine(engine)
	if fallback {
		stats.Fallbacks++
	}
}

// Cache carries per-component payloads across incremental solves, keyed
// by (component key, generation, membership) — the triple under which a
// component's subproblem is provably unchanged. The zero value is not
// usable; construct with NewCache. A nil *Cache is valid and never
// hits. Not safe for concurrent use.
type Cache[V any] struct {
	entries map[ground.AtomID]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	gen   uint64
	atoms []ground.AtomID
	value V
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[ground.AtomID]*cacheEntry[V])}
}

// Lookup returns the cached payload when the component's subproblem is
// provably unchanged: same key, same generation, same membership.
func (c *Cache[V]) Lookup(comp *ground.Component) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	e, ok := c.entries[comp.Key]
	if !ok || e.gen != comp.Gen || len(e.atoms) != len(comp.Atoms) {
		return zero, false
	}
	// The planner reuses a component's Atoms slice across syncs when its
	// membership is unchanged, so slice identity proves membership
	// without walking it.
	if len(e.atoms) > 0 && &e.atoms[0] == &comp.Atoms[0] {
		return e.value, true
	}
	for i, a := range comp.Atoms {
		if e.atoms[i] != a {
			return zero, false
		}
	}
	return e.value, true
}

// Each visits every cached payload with its component key, in no
// particular order. Consumers that must subtract stale contributions
// (the live outcome retiring components that vanished from the
// partition) use it to enumerate what the cache still holds; entry
// generations are not exposed — Lookup remains the only way to prove an
// entry current. A nil cache is a no-op.
func (c *Cache[V]) Each(fn func(key ground.AtomID, value V)) {
	if c == nil {
		return
	}
	for k, e := range c.entries {
		fn(k, e.value)
	}
}

// Peek returns the payload stored under key regardless of generation
// or membership — the possibly-stale contribution a delta-maintaining
// consumer must subtract before installing a fresh one. Use Lookup
// when the payload is to be reused.
func (c *Cache[V]) Peek(key ground.AtomID) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	e, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	return e.value, true
}

// Put installs a single component's payload under the component's
// current (key, generation, membership), overwriting any previous
// entry in place. Together with Drop it lets an incremental consumer
// maintain the cache entry-wise instead of rebuilding it with Replace
// — on a single-component delta the cache churn is one entry, not the
// whole table. A nil cache is a no-op.
func (c *Cache[V]) Put(comp *ground.Component, value V) {
	if c == nil {
		return
	}
	if e, ok := c.entries[comp.Key]; ok {
		e.gen, e.atoms, e.value = comp.Gen, comp.Atoms, value
		return
	}
	c.entries[comp.Key] = &cacheEntry[V]{gen: comp.Gen, atoms: comp.Atoms, value: value}
}

// Drop removes the entry stored under key, if any.
func (c *Cache[V]) Drop(key ground.AtomID) {
	if c == nil {
		return
	}
	delete(c.entries, key)
}

// Len reports the number of cached entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Replace installs this solve's payloads, one per component; entries of
// components that no longer exist are dropped. A nil cache is a no-op.
func (c *Cache[V]) Replace(comps []ground.Component, value func(i int) V) {
	if c == nil {
		return
	}
	fresh := make(map[ground.AtomID]*cacheEntry[V], len(comps))
	for i := range comps {
		fresh[comps[i].Key] = &cacheEntry[V]{
			gen:   comps[i].Gen,
			atoms: comps[i].Atoms,
			value: value(i),
		}
	}
	c.entries = fresh
}

// Run is the shared scheduling loop of a component-decomposed pass. For
// every component it first offers the cached payload (if any) to reuse;
// a false return — stale by the consumer's own criteria, e.g. an
// unconverged ADMM iterate — demotes the component to dirty. Dirty
// components are then processed concurrently on the shared worker pool
// (each kernel call must itself be sequential; the pool parallelises
// across components) and results land in deterministic component order.
// The returned cached slice marks the components whose payload was
// reused. Workers must only read shared state — all index maintenance
// happens at sequential points.
func Run[V, R any](p *Plan, parallelism int, cache *Cache[V],
	reuse func(i int, v V) (R, bool),
	solve func(i int) (R, error),
) (results []R, cached []bool, err error) {
	results = make([]R, len(p.Comps))
	cached = make([]bool, len(p.Comps))
	var dirty []int
	for i := range p.Comps {
		if v, ok := cache.Lookup(&p.Comps[i]); ok {
			if r, fresh := reuse(i, v); fresh {
				results[i] = r
				cached[i] = true
				continue
			}
		}
		dirty = append(dirty, i)
	}
	workers := par.Workers(parallelism)
	errs := make([]error, len(dirty))
	par.Do(len(dirty), workers, func(k int) {
		results[dirty[k]], errs[k] = solve(dirty[k])
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, cached, nil
}
