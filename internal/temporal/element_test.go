package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElementAddCoalesces(t *testing.T) {
	e := NewElement(MustNew(1, 3), MustNew(4, 6)) // adjacent: coalesce
	if got := len(e.Intervals()); got != 1 {
		t.Fatalf("adjacent intervals should coalesce, got %d intervals", got)
	}
	if e.Intervals()[0] != MustNew(1, 6) {
		t.Errorf("coalesced = %v", e.Intervals()[0])
	}

	e = NewElement(MustNew(1, 3), MustNew(5, 8), MustNew(2, 6))
	if got := len(e.Intervals()); got != 1 {
		t.Fatalf("bridging interval should merge all, got %d", got)
	}
	if e.Duration() != 8 {
		t.Errorf("Duration = %d, want 8", e.Duration())
	}
}

func TestElementDisjointPieces(t *testing.T) {
	e := NewElement(MustNew(10, 12), MustNew(1, 3), MustNew(20, 20))
	ivs := e.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(ivs))
	}
	// Sorted ascending.
	if ivs[0] != MustNew(1, 3) || ivs[1] != MustNew(10, 12) || ivs[2] != Point(20) {
		t.Errorf("intervals = %v", ivs)
	}
}

func TestElementContains(t *testing.T) {
	e := NewElement(MustNew(1, 3), MustNew(10, 12))
	for _, tc := range []struct {
		t    Chronon
		want bool
	}{{0, false}, {1, true}, {3, true}, {4, false}, {10, true}, {12, true}, {13, false}} {
		if got := e.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if (Element{}).Contains(5) {
		t.Error("empty element contains nothing")
	}
}

func TestElementUnionIntersect(t *testing.T) {
	a := NewElement(MustNew(1, 5), MustNew(10, 15))
	b := NewElement(MustNew(4, 11))
	u := a.Union(b)
	if len(u.Intervals()) != 1 || u.Intervals()[0] != MustNew(1, 15) {
		t.Errorf("Union = %v", u)
	}
	x := a.Intersect(b)
	want := NewElement(MustNew(4, 5), MustNew(10, 11))
	if !x.Equal(want) {
		t.Errorf("Intersect = %v, want %v", x, want)
	}
}

func TestElementSubtract(t *testing.T) {
	a := NewElement(MustNew(1, 10))
	b := NewElement(MustNew(3, 5), MustNew(8, 20))
	got := a.Subtract(b)
	want := NewElement(MustNew(1, 2), MustNew(6, 7))
	if !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if !a.Subtract(a).IsEmpty() {
		t.Error("a - a should be empty")
	}
}

func TestElementEmpty(t *testing.T) {
	var e Element
	if !e.IsEmpty() || e.Duration() != 0 {
		t.Error("zero element should be empty")
	}
	if got := e.String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestElementString(t *testing.T) {
	e := NewElement(MustNew(1, 2), MustNew(9, 9))
	if got := e.String(); got != "{[1,2], [9,9]}" {
		t.Errorf("String = %q", got)
	}
}

func TestCoalesce(t *testing.T) {
	got := Coalesce([]Interval{MustNew(5, 6), MustNew(1, 2), MustNew(2, 4)})
	if len(got) != 1 || got[0] != MustNew(1, 6) {
		t.Errorf("Coalesce = %v", got)
	}
	if got := Coalesce(nil); len(got) != 0 {
		t.Errorf("Coalesce(nil) = %v", got)
	}
}

// TestElementCanonicalProperty: elements built from random intervals are
// sorted, pairwise disjoint and non-adjacent, and membership matches the
// naive union of the inputs.
func TestElementCanonicalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 2000; n++ {
		var ivs []Interval
		for i := 0; i < rng.Intn(8); i++ {
			ivs = append(ivs, randIv(rng, 25))
		}
		e := NewElement(ivs...)
		canon := e.Intervals()
		for i := 1; i < len(canon); i++ {
			if canon[i-1].End+1 >= canon[i].Start {
				t.Fatalf("not canonical: %v", canon)
			}
		}
		for p := Chronon(0); p < 26; p++ {
			naive := false
			for _, iv := range ivs {
				if iv.Contains(p) {
					naive = true
					break
				}
			}
			if e.Contains(p) != naive {
				t.Fatalf("membership mismatch at %d for inputs %v: element %v", p, ivs, e)
			}
		}
	}
}

// TestElementAlgebraProperty: (a ∪ b) ∩ a = a and (a \ b) ∪ (a ∩ b) = a.
func TestElementAlgebraProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		rng := rand.New(rand.NewSource(int64(len(seeds)) + 99))
		mk := func() Element {
			var e Element
			for i := 0; i < rng.Intn(5); i++ {
				e = e.Add(randIv(rng, 30))
			}
			return e
		}
		a, b := mk(), mk()
		if !a.Union(b).Intersect(a).Equal(a) {
			return false
		}
		return a.Subtract(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
