package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelationBetweenBasicCases(t *testing.T) {
	tests := []struct {
		name string
		i, j Interval
		want Relation
	}{
		{"before", MustNew(1, 2), MustNew(5, 8), Before},
		{"meets", MustNew(1, 2), MustNew(3, 8), Meets},
		{"overlaps", MustNew(1, 5), MustNew(3, 8), Overlaps},
		{"starts", MustNew(1, 3), MustNew(1, 8), Starts},
		{"during", MustNew(3, 5), MustNew(1, 8), During},
		{"finishes", MustNew(5, 8), MustNew(1, 8), Finishes},
		{"equals", MustNew(1, 8), MustNew(1, 8), Equals},
		{"finishedBy", MustNew(1, 8), MustNew(5, 8), FinishedBy},
		{"contains", MustNew(1, 8), MustNew(3, 5), Contains},
		{"startedBy", MustNew(1, 8), MustNew(1, 3), StartedBy},
		{"overlappedBy", MustNew(3, 8), MustNew(1, 5), OverlappedBy},
		{"metBy", MustNew(3, 8), MustNew(1, 2), MetBy},
		{"after", MustNew(5, 8), MustNew(1, 2), After},
	}
	for _, tc := range tests {
		if got := RelationBetween(tc.i, tc.j); got != tc.want {
			t.Errorf("%s: RelationBetween(%v, %v) = %v, want %v", tc.name, tc.i, tc.j, got, tc.want)
		}
		if !tc.want.Holds(tc.i, tc.j) {
			t.Errorf("%s: Holds should be true", tc.name)
		}
	}
}

// TestJEPD checks that the thirteen relations are jointly exhaustive and
// pairwise disjoint: RelationBetween always returns exactly one relation,
// and that relation actually holds while the other twelve do not.
func TestJEPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		i, j := randIv(rng, 12), randIv(rng, 12)
		got := RelationBetween(i, j)
		count := 0
		for r := Relation(0); r < NumRelations; r++ {
			if r.Holds(i, j) {
				count++
				if r != got {
					t.Fatalf("relation %v also holds for (%v,%v) besides %v", r, i, j, got)
				}
			}
		}
		if count != 1 {
			t.Fatalf("JEPD violated for (%v,%v): %d relations hold", i, j, count)
		}
	}
}

// TestInverseProperty checks r(i,j) ⇔ r⁻¹(j,i) on random intervals.
func TestInverseProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		i := normIv(int64(a1), int64(a2))
		j := normIv(int64(b1), int64(b2))
		return RelationBetween(i, j).Inverse() == RelationBetween(j, i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInverseIsInvolution(t *testing.T) {
	for r := Relation(0); r < NumRelations; r++ {
		if r.Inverse().Inverse() != r {
			t.Errorf("Inverse is not an involution for %v", r)
		}
	}
	if Equals.Inverse() != Equals {
		t.Error("Equals should be self-inverse")
	}
}

func TestParseRelation(t *testing.T) {
	tests := []struct {
		in   string
		want Relation
	}{
		{"before", Before}, {"BEFORE", Before}, {"b", Before}, {"<", Before},
		{"meets", Meets}, {"m", Meets},
		{"overlaps", Overlaps}, {"o", Overlaps},
		{"starts", Starts}, {"during", During}, {"finishes", Finishes},
		{"equals", Equals}, {"equal", Equals}, {"eq", Equals},
		{"finishedBy", FinishedBy}, {"finished_by", FinishedBy}, {"finished-by", FinishedBy}, {"fi", FinishedBy},
		{"contains", Contains}, {"di", Contains},
		{"startedBy", StartedBy}, {"si", StartedBy},
		{"overlappedBy", OverlappedBy}, {"oi", OverlappedBy},
		{"metBy", MetBy}, {"mi", MetBy},
		{"after", After}, {"a", After}, {"bi", After},
	}
	for _, tc := range tests {
		got, err := ParseRelation(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRelation(%q) = %v,%v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseRelation("sideways"); err == nil {
		t.Error("ParseRelation should reject unknown names")
	}
}

func TestRelationStringRoundTrip(t *testing.T) {
	for r := Relation(0); r < NumRelations; r++ {
		back, err := ParseRelation(r.String())
		if err != nil || back != r {
			t.Errorf("round trip failed for %v: %v %v", r, back, err)
		}
	}
}

func TestRelationSetOps(t *testing.T) {
	s := NewRelationSet(Before, After)
	if !s.Has(Before) || !s.Has(After) || s.Has(Meets) {
		t.Error("membership wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	s2 := s.Add(Meets)
	if !s2.Has(Meets) || s.Has(Meets) {
		t.Error("Add should be persistent")
	}
	if got := s.Union(NewRelationSet(Equals)).Len(); got != 3 {
		t.Errorf("union len = %d", got)
	}
	if got := s.Intersect(NewRelationSet(Before, Meets)); got != NewRelationSet(Before) {
		t.Errorf("intersect = %v", got)
	}
	if FullSet.Len() != NumRelations {
		t.Errorf("FullSet has %d members", FullSet.Len())
	}
}

func TestRelationSetInverse(t *testing.T) {
	s := NewRelationSet(Before, Overlaps, Equals)
	want := NewRelationSet(After, OverlappedBy, Equals)
	if got := s.Inverse(); got != want {
		t.Errorf("Inverse = %v, want %v", got, want)
	}
	if FullSet.Inverse() != FullSet {
		t.Error("FullSet should be closed under inverse")
	}
}

func TestDisjointSetMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 5000; n++ {
		i, j := randIv(rng, 10), randIv(rng, 10)
		r := RelationBetween(i, j)
		if DisjointSet.Has(r) != i.Disjoint(j) {
			t.Fatalf("DisjointSet disagrees with Disjoint for (%v,%v): rel=%v", i, j, r)
		}
		if IntersectsSet.Has(r) != i.Intersects(j) {
			t.Fatalf("IntersectsSet disagrees with Intersects for (%v,%v)", i, j)
		}
	}
}

func TestRelationSetString(t *testing.T) {
	s := NewRelationSet(Before, Meets)
	if got := s.String(); got != "{before, meets}" {
		t.Errorf("String = %q", got)
	}
	if got := RelationSet(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}
