package temporal

import (
	"sort"
	"strings"
)

// Element is a temporal element in the temporal-database sense: a finite
// union of intervals kept in canonical form (sorted, pairwise disjoint,
// non-adjacent — i.e. maximally coalesced). The zero value is the empty
// element.
type Element struct {
	ivs []Interval
}

// NewElement builds a canonical temporal element from the given
// intervals, coalescing overlapping and adjacent ones.
func NewElement(ivs ...Interval) Element {
	var e Element
	for _, iv := range ivs {
		e = e.Add(iv)
	}
	return e
}

// Add returns the element extended with interval iv, re-coalescing as
// needed. The receiver is not modified.
func (e Element) Add(iv Interval) Element {
	if !iv.Valid() {
		return e
	}
	out := make([]Interval, 0, len(e.ivs)+1)
	inserted := false
	for _, cur := range e.ivs {
		switch {
		case cur.End+1 < iv.Start:
			// cur entirely before iv with a gap.
			out = append(out, cur)
		case iv.End+1 < cur.Start:
			// cur entirely after iv with a gap.
			if !inserted {
				out = append(out, iv)
				inserted = true
			}
			out = append(out, cur)
		default:
			// Overlapping or adjacent: merge into iv and keep scanning.
			iv = iv.Span(cur)
		}
	}
	if !inserted {
		out = append(out, iv)
	}
	return Element{ivs: out}
}

// Intervals returns the canonical intervals of the element in ascending
// order. The returned slice must not be modified.
func (e Element) Intervals() []Interval { return e.ivs }

// IsEmpty reports whether the element covers no chronon.
func (e Element) IsEmpty() bool { return len(e.ivs) == 0 }

// Duration returns the total number of chronons covered.
func (e Element) Duration() int64 {
	var d int64
	for _, iv := range e.ivs {
		d += iv.Duration()
	}
	return d
}

// Contains reports whether chronon t is covered by the element.
func (e Element) Contains(t Chronon) bool {
	// Binary search for the first interval with End >= t.
	i := sort.Search(len(e.ivs), func(i int) bool { return e.ivs[i].End >= t })
	return i < len(e.ivs) && e.ivs[i].Start <= t
}

// Union returns the set union of two elements.
func (e Element) Union(other Element) Element {
	out := e
	for _, iv := range other.ivs {
		out = out.Add(iv)
	}
	return out
}

// Intersect returns the set intersection of two elements.
func (e Element) Intersect(other Element) Element {
	var out []Interval
	i, j := 0, 0
	for i < len(e.ivs) && j < len(other.ivs) {
		if iv, ok := e.ivs[i].Intersect(other.ivs[j]); ok {
			out = append(out, iv)
		}
		if e.ivs[i].End < other.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return Element{ivs: out}
}

// Subtract returns the chronons of e not covered by other.
func (e Element) Subtract(other Element) Element {
	var out []Interval
	for _, iv := range e.ivs {
		rest := []Interval{iv}
		for _, cut := range other.ivs {
			var next []Interval
			for _, r := range rest {
				if !r.Intersects(cut) {
					next = append(next, r)
					continue
				}
				if r.Start < cut.Start {
					next = append(next, Interval{Start: r.Start, End: cut.Start - 1})
				}
				if r.End > cut.End {
					next = append(next, Interval{Start: cut.End + 1, End: r.End})
				}
			}
			rest = next
		}
		out = append(out, rest...)
	}
	return NewElement(out...)
}

// Equal reports whether two elements cover exactly the same chronons.
func (e Element) Equal(other Element) bool {
	if len(e.ivs) != len(other.ivs) {
		return false
	}
	for i := range e.ivs {
		if e.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the element as "{[a,b], [c,d]}".
func (e Element) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range e.ivs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(iv.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Coalesce merges a slice of intervals into its canonical disjoint form.
// This is the classic temporal-database coalescing operation, used when
// combining duplicate facts whose validity intervals abut or overlap.
func Coalesce(ivs []Interval) []Interval {
	return NewElement(ivs...).Intervals()
}
