// Package temporal implements the discrete time domain used by uncertain
// temporal knowledge graphs (utkgs): closed integer intervals over a
// linearly ordered, finite sequence of chronons, Allen's interval algebra
// (the thirteen basic relations, their converses and the composition
// table), and temporal elements (finite unions of intervals).
//
// The package follows the data model of the TeCoRe paper (VLDB 2017):
// every temporal fact is annotated with a validity interval [start, end]
// whose endpoints are chronons (years, days, milliseconds — the
// granularity is chosen by the application and is opaque to the algebra).
package temporal

import (
	"fmt"
	"strconv"
	"strings"
)

// Chronon is a single point of the discrete time domain. The unit (year,
// day, millisecond, ...) is application-defined; the algebra only relies
// on the linear order.
type Chronon = int64

// Interval is a closed, non-empty interval [Start, End] over the discrete
// time domain. Start must be <= End; use New to validate.
type Interval struct {
	Start Chronon
	End   Chronon
}

// New returns the interval [start, end]. It reports an error if
// start > end (the empty interval is not representable; temporal facts
// always hold for at least one chronon).
func New(start, end Chronon) (Interval, error) {
	if start > end {
		return Interval{}, fmt.Errorf("temporal: invalid interval [%d,%d]: start after end", start, end)
	}
	return Interval{Start: start, End: end}, nil
}

// MustNew is like New but panics on invalid input. Intended for literals
// in tests and examples.
func MustNew(start, end Chronon) Interval {
	iv, err := New(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// Point returns the degenerate interval [t, t].
func Point(t Chronon) Interval { return Interval{Start: t, End: t} }

// Valid reports whether the interval is well formed (Start <= End).
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Duration returns the number of chronons covered by the interval.
// A point interval has duration 1.
func (iv Interval) Duration() int64 { return iv.End - iv.Start + 1 }

// Contains reports whether chronon t lies within the interval.
func (iv Interval) Contains(t Chronon) bool { return iv.Start <= t && t <= iv.End }

// ContainsInterval reports whether other lies entirely within iv
// (not necessarily strictly).
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// Intersects reports whether the two intervals share at least one chronon.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Intersect returns the common sub-interval of iv and other. ok is false
// when the intervals are disjoint.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	s := max64(iv.Start, other.Start)
	e := min64(iv.End, other.End)
	if s > e {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Span returns the smallest interval covering both iv and other,
// including any gap between them.
func (iv Interval) Span(other Interval) Interval {
	return Interval{Start: min64(iv.Start, other.Start), End: max64(iv.End, other.End)}
}

// Union returns the set union of iv and other as a single interval. ok is
// false when the intervals neither intersect nor are adjacent, in which
// case their union is not an interval.
func (iv Interval) Union(other Interval) (Interval, bool) {
	if !iv.Intersects(other) && !iv.Adjacent(other) {
		return Interval{}, false
	}
	return iv.Span(other), true
}

// Adjacent reports whether the intervals are disjoint but with no gap
// between them (one meets the other in the discrete sense).
func (iv Interval) Adjacent(other Interval) bool {
	return iv.End+1 == other.Start || other.End+1 == iv.Start
}

// Disjoint reports whether the intervals share no chronon. Note that
// adjacent intervals are disjoint in the discrete domain.
func (iv Interval) Disjoint(other Interval) bool { return !iv.Intersects(other) }

// Before reports whether iv ends strictly before other starts, allowing
// a gap or adjacency. This is the weak precedence predicate used by
// constraints such as "a person must be born before she dies"; for the
// strict Allen relation use RelationBetween.
func (iv Interval) Before(other Interval) bool { return iv.End < other.Start }

// Shift translates the interval by delta chronons.
func (iv Interval) Shift(delta int64) Interval {
	return Interval{Start: iv.Start + delta, End: iv.End + delta}
}

// Clamp restricts the interval to the bounds [lo, hi]. ok is false when
// the interval lies entirely outside the bounds.
func (iv Interval) Clamp(lo, hi Chronon) (Interval, bool) {
	return iv.Intersect(Interval{Start: lo, End: hi})
}

// Equal reports whether the two intervals have identical endpoints.
func (iv Interval) Equal(other Interval) bool { return iv == other }

// Compare orders intervals lexicographically by (Start, End). It returns
// -1, 0 or +1.
func (iv Interval) Compare(other Interval) int {
	switch {
	case iv.Start < other.Start:
		return -1
	case iv.Start > other.Start:
		return 1
	case iv.End < other.End:
		return -1
	case iv.End > other.End:
		return 1
	default:
		return 0
	}
}

// String renders the interval in the paper's notation, e.g. "[2000,2004]".
func (iv Interval) String() string {
	return "[" + strconv.FormatInt(iv.Start, 10) + "," + strconv.FormatInt(iv.End, 10) + "]"
}

// Parse parses the textual form "[start,end]" (whitespace tolerated)
// produced by String.
func Parse(s string) (Interval, error) {
	t := strings.TrimSpace(s)
	if len(t) < 2 || t[0] != '[' || t[len(t)-1] != ']' {
		return Interval{}, fmt.Errorf("temporal: malformed interval %q: want [start,end]", s)
	}
	body := t[1 : len(t)-1]
	comma := strings.IndexByte(body, ',')
	if comma < 0 {
		return Interval{}, fmt.Errorf("temporal: malformed interval %q: missing comma", s)
	}
	start, err := strconv.ParseInt(strings.TrimSpace(body[:comma]), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("temporal: malformed interval %q: %v", s, err)
	}
	end, err := strconv.ParseInt(strings.TrimSpace(body[comma+1:]), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("temporal: malformed interval %q: %v", s, err)
	}
	return New(start, end)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
