package temporal

import (
	"fmt"
	"strings"
	"time"
)

// Granularity names the unit of a chronon. The paper's time domain is "a
// linearly ordered finite sequence of time points, for instance, days,
// minutes, or milliseconds"; the algebra is unit-agnostic, and
// Granularity supplies the conversions between wall-clock instants and
// chronons when the application anchors the domain in calendar time.
type Granularity uint8

// Supported granularities.
const (
	// Years counts calendar years directly (chronon 2004 = year 2004),
	// the convention of all examples in the paper.
	Years Granularity = iota
	// Months counts months since January of year 0.
	Months
	// Days counts days since the Unix epoch.
	Days
	// Hours counts hours since the Unix epoch.
	Hours
	// Minutes counts minutes since the Unix epoch.
	Minutes
	// Seconds counts seconds since the Unix epoch.
	Seconds
	// Milliseconds counts milliseconds since the Unix epoch.
	Milliseconds
)

var granularityNames = [...]string{
	"years", "months", "days", "hours", "minutes", "seconds", "milliseconds",
}

// String returns the lower-case plural name ("years", "days", ...).
func (g Granularity) String() string {
	if int(g) < len(granularityNames) {
		return granularityNames[g]
	}
	return fmt.Sprintf("Granularity(%d)", uint8(g))
}

// ParseGranularity resolves a granularity name; singular and plural
// forms are accepted, case-insensitively.
func ParseGranularity(name string) (Granularity, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.TrimSuffix(key, "s")
	switch key {
	case "year":
		return Years, nil
	case "month":
		return Months, nil
	case "day":
		return Days, nil
	case "hour":
		return Hours, nil
	case "minute":
		return Minutes, nil
	case "second":
		return Seconds, nil
	case "millisecond", "milli":
		return Milliseconds, nil
	}
	return 0, fmt.Errorf("temporal: unknown granularity %q", name)
}

// ToChronon converts a wall-clock instant to its chronon at granularity
// g (UTC calendar for Years and Months).
func (g Granularity) ToChronon(t time.Time) Chronon {
	t = t.UTC()
	switch g {
	case Years:
		return Chronon(t.Year())
	case Months:
		return Chronon(t.Year())*12 + Chronon(t.Month()-1)
	case Days:
		return Chronon(t.Unix() / 86400)
	case Hours:
		return Chronon(t.Unix() / 3600)
	case Minutes:
		return Chronon(t.Unix() / 60)
	case Seconds:
		return Chronon(t.Unix())
	case Milliseconds:
		return Chronon(t.UnixMilli())
	default:
		return Chronon(t.Unix())
	}
}

// ToTime converts a chronon back to the starting instant of its unit
// (UTC).
func (g Granularity) ToTime(c Chronon) time.Time {
	switch g {
	case Years:
		return time.Date(int(c), time.January, 1, 0, 0, 0, 0, time.UTC)
	case Months:
		year, month := c/12, c%12
		if month < 0 {
			month += 12
			year--
		}
		return time.Date(int(year), time.Month(month+1), 1, 0, 0, 0, 0, time.UTC)
	case Days:
		return time.Unix(int64(c)*86400, 0).UTC()
	case Hours:
		return time.Unix(int64(c)*3600, 0).UTC()
	case Minutes:
		return time.Unix(int64(c)*60, 0).UTC()
	case Seconds:
		return time.Unix(int64(c), 0).UTC()
	case Milliseconds:
		return time.UnixMilli(int64(c)).UTC()
	default:
		return time.Unix(int64(c), 0).UTC()
	}
}

// IntervalBetween returns the interval of chronons covering [from, to]
// at granularity g. It reports an error when to precedes from's chronon.
func (g Granularity) IntervalBetween(from, to time.Time) (Interval, error) {
	return New(g.ToChronon(from), g.ToChronon(to))
}
