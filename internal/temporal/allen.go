package temporal

import (
	"fmt"
	"strings"
)

// Relation is one of Allen's thirteen basic interval relations, adapted to
// the discrete time domain: two intervals "meet" when they are adjacent
// (the first ends exactly one chronon before the second starts), so the
// thirteen relations remain jointly exhaustive and pairwise disjoint.
type Relation uint8

// The thirteen basic Allen relations. For each relation r, r(i, j) reads
// "interval i stands in relation r to interval j".
const (
	// Before: i ends strictly before j starts, with a gap.
	Before Relation = iota
	// Meets: i is immediately followed by j (i.End+1 == j.Start).
	Meets
	// Overlaps: i starts first, the intervals share chronons, j ends last.
	Overlaps
	// Starts: i and j start together and i ends first.
	Starts
	// During: i lies strictly inside j.
	During
	// Finishes: i and j end together and i starts later.
	Finishes
	// Equals: identical endpoints.
	Equals
	// FinishedBy: converse of Finishes (j finishes i).
	FinishedBy
	// Contains: converse of During (j lies strictly inside i).
	Contains
	// StartedBy: converse of Starts (j starts i).
	StartedBy
	// OverlappedBy: converse of Overlaps.
	OverlappedBy
	// MetBy: converse of Meets.
	MetBy
	// After: converse of Before.
	After

	// NumRelations is the number of basic Allen relations.
	NumRelations = 13
)

var relationNames = [NumRelations]string{
	"before", "meets", "overlaps", "starts", "during", "finishes", "equals",
	"finishedBy", "contains", "startedBy", "overlappedBy", "metBy", "after",
}

var relationInverses = [NumRelations]Relation{
	Before:       After,
	Meets:        MetBy,
	Overlaps:     OverlappedBy,
	Starts:       StartedBy,
	During:       Contains,
	Finishes:     FinishedBy,
	Equals:       Equals,
	FinishedBy:   Finishes,
	Contains:     During,
	StartedBy:    Starts,
	OverlappedBy: Overlaps,
	MetBy:        Meets,
	After:        Before,
}

// String returns the lower-camel name used by the constraint language
// (before, meets, overlaps, starts, during, finishes, equals, finishedBy,
// contains, startedBy, overlappedBy, metBy, after).
func (r Relation) String() string {
	if int(r) < len(relationNames) {
		return relationNames[r]
	}
	return fmt.Sprintf("Relation(%d)", uint8(r))
}

// Inverse returns the converse relation: if r(i, j) then Inverse(r)(j, i).
func (r Relation) Inverse() Relation {
	if int(r) < len(relationInverses) {
		return relationInverses[r]
	}
	return r
}

// Holds reports whether relation r holds between intervals i and j.
func (r Relation) Holds(i, j Interval) bool { return RelationBetween(i, j) == r }

// ParseRelation resolves a relation name as written in the constraint
// language. Matching is case-insensitive and accepts both the camel-case
// names (finishedBy) and underscore/hyphen variants (finished_by,
// finished-by) as well as the common abbreviations used in the Allen
// algebra literature (b, m, o, s, d, f, e/eq, fi, di, si, oi, mi, a/bi).
func ParseRelation(name string) (Relation, error) {
	key := strings.ToLower(strings.NewReplacer("_", "", "-", "").Replace(strings.TrimSpace(name)))
	switch key {
	case "before", "b", "<":
		return Before, nil
	case "meets", "m":
		return Meets, nil
	case "overlaps", "o":
		return Overlaps, nil
	case "starts", "s":
		return Starts, nil
	case "during", "d":
		return During, nil
	case "finishes", "f":
		return Finishes, nil
	case "equals", "equal", "e", "eq", "=":
		return Equals, nil
	case "finishedby", "fi":
		return FinishedBy, nil
	case "contains", "di":
		return Contains, nil
	case "startedby", "si":
		return StartedBy, nil
	case "overlappedby", "oi":
		return OverlappedBy, nil
	case "metby", "mi":
		return MetBy, nil
	case "after", "a", "bi", ">":
		return After, nil
	}
	return 0, fmt.Errorf("temporal: unknown Allen relation %q", name)
}

// RelationBetween returns the unique basic Allen relation that holds
// between i and j. For valid intervals exactly one relation always holds.
func RelationBetween(i, j Interval) Relation {
	switch {
	case i.End+1 < j.Start:
		return Before
	case i.End+1 == j.Start:
		return Meets
	case j.End+1 < i.Start:
		return After
	case j.End+1 == i.Start:
		return MetBy
	}
	// The intervals share at least one chronon from here on.
	switch {
	case i.Start == j.Start && i.End == j.End:
		return Equals
	case i.Start == j.Start:
		if i.End < j.End {
			return Starts
		}
		return StartedBy
	case i.End == j.End:
		if i.Start > j.Start {
			return Finishes
		}
		return FinishedBy
	case i.Start < j.Start:
		if i.End > j.End {
			return Contains
		}
		return Overlaps
	default: // i.Start > j.Start
		if i.End < j.End {
			return During
		}
		return OverlappedBy
	}
}

// RelationSet is a bitset over the thirteen basic relations, used for
// indefinite temporal knowledge and as the codomain of the composition
// table.
type RelationSet uint16

// FullSet contains all thirteen basic relations.
const FullSet RelationSet = (1 << NumRelations) - 1

// NewRelationSet builds a set from the given relations.
func NewRelationSet(rels ...Relation) RelationSet {
	var s RelationSet
	for _, r := range rels {
		s |= 1 << r
	}
	return s
}

// Has reports whether the set contains relation r.
func (s RelationSet) Has(r Relation) bool { return s&(1<<r) != 0 }

// Add returns the set with relation r included.
func (s RelationSet) Add(r Relation) RelationSet { return s | 1<<r }

// Union returns the set union.
func (s RelationSet) Union(t RelationSet) RelationSet { return s | t }

// Intersect returns the set intersection.
func (s RelationSet) Intersect(t RelationSet) RelationSet { return s & t }

// Inverse returns the set of converses of the members of s.
func (s RelationSet) Inverse() RelationSet {
	var out RelationSet
	for r := Relation(0); r < NumRelations; r++ {
		if s.Has(r) {
			out = out.Add(r.Inverse())
		}
	}
	return out
}

// Len returns the number of relations in the set.
func (s RelationSet) Len() int {
	n := 0
	for r := Relation(0); r < NumRelations; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Relations returns the members of the set in canonical order.
func (s RelationSet) Relations() []Relation {
	out := make([]Relation, 0, s.Len())
	for r := Relation(0); r < NumRelations; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set as "{before, meets, ...}".
func (s RelationSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Relations() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}

// DisjointSet is the set of relations under which two intervals share no
// chronon: the "disjoint" predicate of the TeCoRe constraint language
// (e.g. a person cannot coach two clubs at the same time) is the
// disjunction of these.
var DisjointSet = NewRelationSet(Before, Meets, MetBy, After)

// IntersectsSet is the complement of DisjointSet: the relations under
// which two intervals share at least one chronon ("overlap" in the loose,
// non-Allen sense used by constraint c3 of the paper).
var IntersectsSet = FullSet &^ DisjointSet
