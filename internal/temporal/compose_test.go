package temporal

import (
	"math/rand"
	"testing"
)

// TestComposeSoundness: for random triples (i, j, k), the relation
// between i and k must be contained in Compose(rel(i,j), rel(j,k)).
func TestComposeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 50000; n++ {
		i, j, k := randIv(rng, 30), randIv(rng, 30), randIv(rng, 30)
		r1 := RelationBetween(i, j)
		r2 := RelationBetween(j, k)
		if !Compose(r1, r2).Has(RelationBetween(i, k)) {
			t.Fatalf("composition unsound: %v ∘ %v missing %v (i=%v j=%v k=%v)",
				r1, r2, RelationBetween(i, k), i, j, k)
		}
	}
}

// TestComposeKnownEntries spot-checks entries of the Allen composition
// table against the published table.
func TestComposeKnownEntries(t *testing.T) {
	tests := []struct {
		r1, r2 Relation
		want   RelationSet
	}{
		// before ∘ before = {before}
		{Before, Before, NewRelationSet(Before)},
		// after ∘ after = {after}
		{After, After, NewRelationSet(After)},
		// meets ∘ meets = {before}
		{Meets, Meets, NewRelationSet(Before)},
		// equals is an identity on both sides.
		{Equals, During, NewRelationSet(During)},
		{Overlaps, Equals, NewRelationSet(Overlaps)},
		// during ∘ during = {during}
		{During, During, NewRelationSet(During)},
		// contains ∘ contains = {contains}
		{Contains, Contains, NewRelationSet(Contains)},
		// starts ∘ starts = {starts}
		{Starts, Starts, NewRelationSet(Starts)},
		// finishes ∘ finishes = {finishes}
		{Finishes, Finishes, NewRelationSet(Finishes)},
		// before ∘ after = full set
		{Before, After, FullSet},
		// during ∘ before = {before}
		{During, Before, NewRelationSet(Before)},
		// overlaps ∘ before = {before}
		{Overlaps, Before, NewRelationSet(Before)},
		// meets ∘ during = {overlaps, starts, during}
		{Meets, During, NewRelationSet(Overlaps, Starts, During)},
		// overlaps ∘ during = {overlaps, starts, during}
		{Overlaps, During, NewRelationSet(Overlaps, Starts, During)},
		// before ∘ during = {before, meets, overlaps, starts, during}
		{Before, During, NewRelationSet(Before, Meets, Overlaps, Starts, During)},
	}
	for _, tc := range tests {
		if got := Compose(tc.r1, tc.r2); got != tc.want {
			t.Errorf("Compose(%v, %v) = %v, want %v", tc.r1, tc.r2, got, tc.want)
		}
	}
}

// TestComposeConverseIdentity checks (r1 ∘ r2)⁻¹ = r2⁻¹ ∘ r1⁻¹.
func TestComposeConverseIdentity(t *testing.T) {
	for r1 := Relation(0); r1 < NumRelations; r1++ {
		for r2 := Relation(0); r2 < NumRelations; r2++ {
			lhs := Compose(r1, r2).Inverse()
			rhs := Compose(r2.Inverse(), r1.Inverse())
			if lhs != rhs {
				t.Errorf("converse identity fails for (%v, %v): %v vs %v", r1, r2, lhs, rhs)
			}
		}
	}
}

// TestComposeIdentityElement checks that Equals is a two-sided identity.
func TestComposeIdentityElement(t *testing.T) {
	for r := Relation(0); r < NumRelations; r++ {
		if got := Compose(Equals, r); got != NewRelationSet(r) {
			t.Errorf("Equals ∘ %v = %v", r, got)
		}
		if got := Compose(r, Equals); got != NewRelationSet(r) {
			t.Errorf("%v ∘ Equals = %v", r, got)
		}
	}
}

func TestComposeNonEmpty(t *testing.T) {
	for r1 := Relation(0); r1 < NumRelations; r1++ {
		for r2 := Relation(0); r2 < NumRelations; r2++ {
			if Compose(r1, r2) == 0 {
				t.Errorf("Compose(%v, %v) is empty", r1, r2)
			}
		}
	}
}

func TestComposeSets(t *testing.T) {
	got := ComposeSets(NewRelationSet(Before, Meets), NewRelationSet(Before))
	if got != NewRelationSet(Before) {
		t.Errorf("ComposeSets = %v, want {before}", got)
	}
	if ComposeSets(0, FullSet) != 0 {
		t.Error("composition with the empty set should be empty")
	}
}

func TestNetworkPathConsistency(t *testing.T) {
	// x before y, y before z forces x before z.
	nw := NewNetwork(3)
	nw.Constrain(0, 1, NewRelationSet(Before))
	nw.Constrain(1, 2, NewRelationSet(Before))
	if !nw.PathConsistent() {
		t.Fatal("chain of befores should be consistent")
	}
	if got := nw.Label(0, 2); got != NewRelationSet(Before) {
		t.Errorf("label(0,2) = %v, want {before}", got)
	}
	if got := nw.Label(2, 0); got != NewRelationSet(After) {
		t.Errorf("label(2,0) = %v, want {after}", got)
	}
}

func TestNetworkInconsistency(t *testing.T) {
	// x before y, y before z, z before x: a cycle — unsatisfiable.
	nw := NewNetwork(3)
	nw.Constrain(0, 1, NewRelationSet(Before))
	nw.Constrain(1, 2, NewRelationSet(Before))
	nw.Constrain(2, 0, NewRelationSet(Before))
	if nw.PathConsistent() {
		t.Fatal("before-cycle should be inconsistent")
	}
}

func TestNetworkConstrainEmpty(t *testing.T) {
	nw := NewNetwork(2)
	if !nw.Constrain(0, 1, NewRelationSet(Before)) {
		t.Fatal("first constraint should be satisfiable")
	}
	if nw.Constrain(0, 1, NewRelationSet(After)) {
		t.Fatal("contradictory constraint should empty the edge")
	}
}

func TestNetworkSize(t *testing.T) {
	if got := NewNetwork(5).Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func BenchmarkRelationBetween(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ivs := make([]Interval, 1024)
	for i := range ivs {
		ivs[i] = randIv(rng, 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RelationBetween(ivs[i%1024], ivs[(i+7)%1024])
	}
}

func BenchmarkCompose(b *testing.B) {
	Compose(Before, Before) // force table build outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compose(Relation(i%13), Relation((i/13)%13))
	}
}
