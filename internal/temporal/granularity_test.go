package temporal

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGranularityNames(t *testing.T) {
	all := []Granularity{Years, Months, Days, Hours, Minutes, Seconds, Milliseconds}
	for _, g := range all {
		back, err := ParseGranularity(g.String())
		if err != nil || back != g {
			t.Errorf("round trip %v: %v %v", g, back, err)
		}
	}
	if _, err := ParseGranularity("fortnights"); err == nil {
		t.Error("unknown granularity accepted")
	}
	// Singular and case variants.
	for in, want := range map[string]Granularity{
		"Year": Years, "DAY": Days, "minute": Minutes, "Milliseconds": Milliseconds,
	} {
		got, err := ParseGranularity(in)
		if err != nil || got != want {
			t.Errorf("ParseGranularity(%q) = %v, %v", in, got, err)
		}
	}
}

func TestYearsConvention(t *testing.T) {
	// The paper's convention: chronon 2004 is the year 2004.
	at := time.Date(2004, time.July, 14, 10, 0, 0, 0, time.UTC)
	if got := Years.ToChronon(at); got != 2004 {
		t.Errorf("ToChronon = %d", got)
	}
	if got := Years.ToTime(2004); got.Year() != 2004 || got.Month() != time.January {
		t.Errorf("ToTime = %v", got)
	}
}

func TestMonthsRoundTrip(t *testing.T) {
	at := time.Date(1984, time.March, 1, 0, 0, 0, 0, time.UTC)
	c := Months.ToChronon(at)
	if back := Months.ToTime(c); !back.Equal(at) {
		t.Errorf("months: %v -> %d -> %v", at, c, back)
	}
	// Adjacent months differ by one chronon.
	next := Months.ToChronon(time.Date(1984, time.April, 20, 5, 0, 0, 0, time.UTC))
	if next != c+1 {
		t.Errorf("april chronon = %d, want %d", next, c+1)
	}
}

func TestEpochGranularities(t *testing.T) {
	at := time.Date(2017, time.August, 28, 13, 45, 30, 500e6, time.UTC)
	tests := []struct {
		g    Granularity
		unit time.Duration
	}{
		{Days, 24 * time.Hour},
		{Hours, time.Hour},
		{Minutes, time.Minute},
		{Seconds, time.Second},
		{Milliseconds, time.Millisecond},
	}
	for _, tc := range tests {
		c := tc.g.ToChronon(at)
		back := tc.g.ToTime(c)
		if at.Sub(back) < 0 || at.Sub(back) >= tc.unit {
			t.Errorf("%v: %v -> %d -> %v (offset %v)", tc.g, at, c, back, at.Sub(back))
		}
	}
}

func TestToTimeToChrononIdentityProperty(t *testing.T) {
	f := func(raw int32, which uint8) bool {
		g := Granularity(which % 7)
		c := Chronon(raw)
		if g == Years {
			c = Chronon(raw%5000) + 1 // sane calendar years
			if c < 1 {
				c = 1
			}
		}
		return g.ToChronon(g.ToTime(c)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalBetween(t *testing.T) {
	from := time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2004, time.December, 31, 0, 0, 0, 0, time.UTC)
	iv, err := Years.IntervalBetween(from, to)
	if err != nil || iv != MustNew(2000, 2004) {
		t.Errorf("IntervalBetween = %v, %v", iv, err)
	}
	if _, err := Years.IntervalBetween(to, from); err == nil {
		t.Error("reversed instants accepted")
	}
}
