package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	iv, err := New(2000, 2004)
	if err != nil {
		t.Fatalf("New(2000, 2004) failed: %v", err)
	}
	if iv.Start != 2000 || iv.End != 2004 {
		t.Errorf("got %v, want [2000,2004]", iv)
	}
	if _, err := New(5, 3); err == nil {
		t.Error("New(5, 3) should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(2, 1) should panic")
		}
	}()
	MustNew(2, 1)
}

func TestPoint(t *testing.T) {
	p := Point(1951)
	if p.Start != 1951 || p.End != 1951 {
		t.Errorf("Point(1951) = %v", p)
	}
	if p.Duration() != 1 {
		t.Errorf("point duration = %d, want 1", p.Duration())
	}
}

func TestDuration(t *testing.T) {
	if d := MustNew(2000, 2004).Duration(); d != 5 {
		t.Errorf("Duration = %d, want 5", d)
	}
}

func TestContains(t *testing.T) {
	iv := MustNew(2000, 2004)
	for _, tc := range []struct {
		t    Chronon
		want bool
	}{
		{1999, false}, {2000, true}, {2002, true}, {2004, true}, {2005, false},
	} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	outer := MustNew(2000, 2010)
	for _, tc := range []struct {
		in   Interval
		want bool
	}{
		{MustNew(2000, 2010), true},
		{MustNew(2001, 2009), true},
		{MustNew(1999, 2005), false},
		{MustNew(2005, 2011), false},
	} {
		if got := outer.ContainsInterval(tc.in); got != tc.want {
			t.Errorf("ContainsInterval(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b   Interval
		want   Interval
		wantOK bool
	}{
		{MustNew(2000, 2004), MustNew(2001, 2003), MustNew(2001, 2003), true},
		{MustNew(2000, 2004), MustNew(2003, 2008), MustNew(2003, 2004), true},
		{MustNew(2000, 2004), MustNew(2005, 2008), Interval{}, false},
		{MustNew(2000, 2004), MustNew(2004, 2008), Point(2004), true},
	}
	for _, tc := range tests {
		got, ok := tc.a.Intersect(tc.b)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("%v ∩ %v = %v,%v; want %v,%v", tc.a, tc.b, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestSpanUnionAdjacent(t *testing.T) {
	a, b := MustNew(2000, 2002), MustNew(2003, 2005)
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("expected adjacency between [2000,2002] and [2003,2005]")
	}
	u, ok := a.Union(b)
	if !ok || u != MustNew(2000, 2005) {
		t.Errorf("Union = %v,%v; want [2000,2005],true", u, ok)
	}
	c := MustNew(2007, 2009)
	if _, ok := a.Union(c); ok {
		t.Error("union of gapped intervals should fail")
	}
	if sp := a.Span(c); sp != MustNew(2000, 2009) {
		t.Errorf("Span = %v, want [2000,2009]", sp)
	}
}

func TestBeforeDisjoint(t *testing.T) {
	a, b := MustNew(1951, 1951), MustNew(2000, 2004)
	if !a.Before(b) {
		t.Error("1951 should be before [2000,2004]")
	}
	if b.Before(a) {
		t.Error("[2000,2004] is not before 1951")
	}
	if !a.Disjoint(b) {
		t.Error("expected disjoint")
	}
	if a.Disjoint(MustNew(1950, 1960)) {
		t.Error("overlapping intervals are not disjoint")
	}
}

func TestShiftClamp(t *testing.T) {
	iv := MustNew(2000, 2004).Shift(10)
	if iv != MustNew(2010, 2014) {
		t.Errorf("Shift = %v", iv)
	}
	cl, ok := iv.Clamp(2012, 2020)
	if !ok || cl != MustNew(2012, 2014) {
		t.Errorf("Clamp = %v,%v", cl, ok)
	}
	if _, ok := iv.Clamp(2020, 2030); ok {
		t.Error("clamp outside bounds should fail")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Interval
		want int
	}{
		{MustNew(1, 2), MustNew(1, 2), 0},
		{MustNew(1, 2), MustNew(1, 3), -1},
		{MustNew(2, 2), MustNew(1, 9), 1},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestParseString(t *testing.T) {
	for _, s := range []string{"[2000,2004]", "[ 1951 , 2017 ]", "[-5,3]"} {
		iv, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		back, err := Parse(iv.String())
		if err != nil || back != iv {
			t.Errorf("round trip of %q failed: %v %v", s, back, err)
		}
	}
	for _, s := range []string{"", "2000,2004", "[2000]", "[a,b]", "[5,3]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(a, b int32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		iv := MustNew(lo, hi)
		back, err := Parse(iv.String())
		return err == nil && back == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectCommutativeProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		i := normIv(int64(a1), int64(a2))
		j := normIv(int64(b1), int64(b2))
		x, okx := i.Intersect(j)
		y, oky := j.Intersect(i)
		return okx == oky && x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// normIv builds a valid interval from two arbitrary endpoints.
func normIv(a, b int64) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Start: a, End: b}
}

func TestIntersectionIsContained(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		i := normIv(int64(a1), int64(a2))
		j := normIv(int64(b1), int64(b2))
		x, ok := i.Intersect(j)
		if !ok {
			return i.Disjoint(j)
		}
		return i.ContainsInterval(x) && j.ContainsInterval(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randIv(rng *rand.Rand, span int64) Interval {
	s := rng.Int63n(span)
	return Interval{Start: s, End: s + rng.Int63n(span-s+1)}
}
