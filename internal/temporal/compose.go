package temporal

import "sync"

// The Allen composition table maps a pair of basic relations (r1, r2) to
// the set of basic relations r3 such that r1(i, j) and r2(j, k) admit
// r3(i, k) for some intervals i, j, k.
//
// Rather than transcribing the 13x13 table from the literature (a
// notorious source of typos), we derive it by exhaustive enumeration over
// a small discrete universe. Over a universe of n chronons every entry of
// the table is witnessed once n is large enough; n = 14 is already
// sufficient (each relation needs at most four distinct endpoints per
// interval pair, and compositions need at most six distinct values plus
// slack for gaps), and the derivation is validated against algebraic
// identities in the tests.

const composeUniverse = 14

var (
	composeOnce  sync.Once
	composeTable [NumRelations][NumRelations]RelationSet
)

func buildComposeTable() {
	var intervals []Interval
	for s := Chronon(0); s < composeUniverse; s++ {
		for e := s; e < composeUniverse; e++ {
			intervals = append(intervals, Interval{Start: s, End: e})
		}
	}
	// Group interval pairs by their relation once, then join through the
	// shared middle interval.
	byRel := make(map[Interval][NumRelations][]Interval) // j -> r -> all i with r(i,j)
	for _, j := range intervals {
		var buckets [NumRelations][]Interval
		for _, i := range intervals {
			r := RelationBetween(i, j)
			buckets[r] = append(buckets[r], i)
		}
		byRel[j] = buckets
	}
	for _, j := range intervals {
		iBuckets := byRel[j]
		for _, k := range intervals {
			r2 := RelationBetween(j, k)
			for r1 := Relation(0); r1 < NumRelations; r1++ {
				for _, i := range iBuckets[r1] {
					composeTable[r1][r2] = composeTable[r1][r2].Add(RelationBetween(i, k))
				}
			}
		}
	}
}

// Compose returns the composition r1 ∘ r2: the set of relations that can
// hold between i and k given r1(i, j) and r2(j, k).
func Compose(r1, r2 Relation) RelationSet {
	composeOnce.Do(buildComposeTable)
	return composeTable[r1][r2]
}

// ComposeSets lifts Compose to sets: the union of Compose(a, b) over all
// a in s1, b in s2. This is the path-consistency propagation step used by
// qualitative temporal reasoning.
func ComposeSets(s1, s2 RelationSet) RelationSet {
	composeOnce.Do(buildComposeTable)
	var out RelationSet
	for _, a := range s1.Relations() {
		for _, b := range s2.Relations() {
			out = out.Union(composeTable[a][b])
		}
	}
	return out
}

// Network is a qualitative constraint network over interval variables:
// node identifiers 0..n-1 with an edge label (a RelationSet) for every
// ordered pair. It supports path-consistency checking, which TeCoRe uses
// to reject unsatisfiable user-authored Allen constraint sets before
// translating them for a solver.
type Network struct {
	n      int
	labels []RelationSet // n*n, row-major; labels[i*n+j]
}

// NewNetwork creates a network over n interval variables with all edges
// unconstrained (the full relation set).
func NewNetwork(n int) *Network {
	labels := make([]RelationSet, n*n)
	for i := range labels {
		labels[i] = FullSet
	}
	for i := 0; i < n; i++ {
		labels[i*n+i] = NewRelationSet(Equals)
	}
	return &Network{n: n, labels: labels}
}

// Size returns the number of interval variables.
func (nw *Network) Size() int { return nw.n }

// Constrain intersects the edge i→j with set s (and j→i with its
// inverse). It reports whether the edge remains satisfiable.
func (nw *Network) Constrain(i, j int, s RelationSet) bool {
	nw.labels[i*nw.n+j] = nw.labels[i*nw.n+j].Intersect(s)
	nw.labels[j*nw.n+i] = nw.labels[j*nw.n+i].Intersect(s.Inverse())
	return nw.labels[i*nw.n+j] != 0
}

// Label returns the current label of edge i→j.
func (nw *Network) Label(i, j int) RelationSet { return nw.labels[i*nw.n+j] }

// PathConsistent runs the PC-1 style closure: repeatedly tighten
// labels[i][j] with Compose(labels[i][k], labels[k][j]) until fixpoint.
// It returns false when some edge becomes empty, i.e. the network is
// certainly unsatisfiable. (Path consistency is complete for pointisable
// relations and a sound pre-filter in general.)
func (nw *Network) PathConsistent() bool {
	n := nw.n
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				lij := nw.labels[i*n+j]
				for k := 0; k < n; k++ {
					if k == i || k == j {
						continue
					}
					comp := ComposeSets(nw.labels[i*n+k], nw.labels[k*n+j])
					tightened := lij.Intersect(comp)
					if tightened != lij {
						lij = tightened
						changed = true
					}
					if lij == 0 {
						nw.labels[i*n+j] = 0
						return false
					}
				}
				nw.labels[i*n+j] = lij
			}
		}
	}
	return true
}
