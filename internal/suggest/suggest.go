// Package suggest mines candidate temporal constraints from the data —
// the "automatic derivation or suggestion of constraints and inference
// rules" the paper's demonstration goals call for (Section 4).
//
// The miner inspects same-subject fact pairs and proposes three
// constraint families when the data overwhelmingly supports them:
//
//   - disjointness (the paper's c2): for a predicate p, distinct-object
//     fact pairs almost never overlap in time;
//   - functional / equality-generating (c3): overlapping fact pairs of p
//     almost always agree on the object;
//   - inter-predicate Allen dependencies (c1): between predicates p and
//     q, one Allen relation dominates (e.g. birthDate contains playsFor).
//
// Each suggestion reports its support (pairs inspected), violations
// (counter-examples) and confidence, so a domain expert can review it in
// the UI before adding it to the program — noisy facts mean perfect
// confidence is rare and the defaults tolerate a small violation rate.
package suggest

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/store"
	"repro/internal/temporal"
)

// Options tunes the miner.
type Options struct {
	// MinSupport is the minimum number of same-subject pairs a pattern
	// needs before it is considered (default 20).
	MinSupport int
	// MinConfidence is the minimum fraction of supporting pairs
	// (default 0.9).
	MinConfidence float64
	// MaxPairsPerPredicate caps the pairs sampled per predicate to bound
	// mining cost on large graphs (default 50000).
	MaxPairsPerPredicate int
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 20
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.9
	}
	if o.MaxPairsPerPredicate == 0 {
		o.MaxPairsPerPredicate = 50000
	}
	return o
}

// Kind labels a suggestion family.
type Kind string

// Suggestion kinds.
const (
	KindDisjoint   Kind = "disjoint"
	KindFunctional Kind = "functional"
	KindAllen      Kind = "allen"
)

// Suggestion is a mined candidate constraint.
type Suggestion struct {
	// Kind is the constraint family.
	Kind Kind
	// Predicate1 and Predicate2 are the predicates involved (equal for
	// disjoint/functional suggestions).
	Predicate1, Predicate2 string
	// Relation is the dominating Allen relation for KindAllen.
	Relation temporal.Relation
	// Support is the number of same-subject pairs inspected.
	Support int
	// Violations is the number of counter-example pairs.
	Violations int
	// Confidence is (Support-Violations)/Support.
	Confidence float64
	// Rule is the ready-to-add constraint.
	Rule *logic.Rule
}

// Text renders the suggestion's rule in the surface syntax.
func (s *Suggestion) Text() string {
	if s.Rule.Name != "" {
		return s.Rule.Name + ": " + s.Rule.String()
	}
	return s.Rule.String()
}

// Mine inspects the store and returns suggestions sorted by descending
// confidence, then support.
func Mine(st *store.Store, opts Options) ([]Suggestion, error) {
	opts = opts.withDefaults()
	var out []Suggestion

	preds := st.PredicateIDs()
	for _, p := range preds {
		s, err := mineSamePredicate(st, p, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	for i, p := range preds {
		for j, q := range preds {
			if i == j {
				continue
			}
			s, err := mineAllenPair(st, p, q, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Text() < out[j].Text()
	})
	return out, nil
}

// samePredPairs visits same-subject pairs of facts with predicate p
// (each unordered pair once), up to the configured cap.
func samePredPairs(st *store.Store, p store.TermID, cap int,
	visit func(o1, o2 store.TermID, iv1, iv2 temporal.Interval)) {

	bySubject := make(map[store.TermID][]store.FactID)
	for _, id := range st.PredicateFacts(p) {
		s, _, _ := st.EncodedTriple(id)
		bySubject[s] = append(bySubject[s], id)
	}
	// Deterministic subject order.
	subjects := make([]store.TermID, 0, len(bySubject))
	for s := range bySubject {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })

	seen := 0
	for _, s := range subjects {
		ids := bySubject[s]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if seen >= cap {
					return
				}
				seen++
				_, _, o1 := st.EncodedTriple(ids[i])
				_, _, o2 := st.EncodedTriple(ids[j])
				visit(o1, o2, st.Interval(ids[i]), st.Interval(ids[j]))
			}
		}
	}
}

// mineSamePredicate proposes disjointness and functional constraints
// for one predicate.
func mineSamePredicate(st *store.Store, p store.TermID, opts Options) ([]Suggestion, error) {
	pred := st.Dict().Decode(p).Value

	distinctPairs, distinctOverlaps := 0, 0
	overlapPairs, overlapDisagree := 0, 0
	samePredPairs(st, p, opts.MaxPairsPerPredicate, func(o1, o2 store.TermID, iv1, iv2 temporal.Interval) {
		if o1 != o2 {
			distinctPairs++
			if iv1.Intersects(iv2) {
				distinctOverlaps++
			}
		}
		if iv1.Intersects(iv2) {
			overlapPairs++
			if o1 != o2 {
				overlapDisagree++
			}
		}
	})

	var out []Suggestion
	if distinctPairs >= opts.MinSupport {
		conf := 1 - float64(distinctOverlaps)/float64(distinctPairs)
		if conf >= opts.MinConfidence {
			rule, err := core.AllenConstraint(suggestName("disjoint", pred, ""), pred, pred, "disjoint", true)
			if err != nil {
				return nil, fmt.Errorf("suggest: %w", err)
			}
			out = append(out, Suggestion{
				Kind: KindDisjoint, Predicate1: pred, Predicate2: pred,
				Support: distinctPairs, Violations: distinctOverlaps, Confidence: conf,
				Rule: rule,
			})
		}
	}
	if overlapPairs >= opts.MinSupport {
		conf := 1 - float64(overlapDisagree)/float64(overlapPairs)
		if conf >= opts.MinConfidence {
			rule, err := core.FunctionalConstraint(suggestName("functional", pred, ""), pred)
			if err != nil {
				return nil, fmt.Errorf("suggest: %w", err)
			}
			out = append(out, Suggestion{
				Kind: KindFunctional, Predicate1: pred, Predicate2: pred,
				Support: overlapPairs, Violations: overlapDisagree, Confidence: conf,
				Rule: rule,
			})
		}
	}
	return out, nil
}

// mineAllenPair proposes a dominating Allen relation between two
// predicates on shared subjects.
func mineAllenPair(st *store.Store, p, q store.TermID, opts Options) ([]Suggestion, error) {
	pred1 := st.Dict().Decode(p).Value
	pred2 := st.Dict().Decode(q).Value

	// Group q-facts by subject once.
	qBySubject := make(map[store.TermID][]store.FactID)
	for _, id := range st.PredicateFacts(q) {
		s, _, _ := st.EncodedTriple(id)
		qBySubject[s] = append(qBySubject[s], id)
	}

	var counts [temporal.NumRelations]int
	total := 0
	for _, pid := range st.PredicateFacts(p) {
		if total >= opts.MaxPairsPerPredicate {
			break
		}
		s, _, _ := st.EncodedTriple(pid)
		for _, qid := range qBySubject[s] {
			counts[temporal.RelationBetween(st.Interval(pid), st.Interval(qid))]++
			total++
		}
	}
	if total < opts.MinSupport {
		return nil, nil
	}
	best, bestCount := temporal.Relation(0), 0
	for r, c := range counts {
		if c > bestCount {
			best, bestCount = temporal.Relation(r), c
		}
	}
	conf := float64(bestCount) / float64(total)
	if conf < opts.MinConfidence {
		return nil, nil
	}
	rule, err := core.AllenConstraint(suggestName("allen", pred1, pred2), pred1, pred2, best.String(), false)
	if err != nil {
		return nil, fmt.Errorf("suggest: %w", err)
	}
	return []Suggestion{{
		Kind: KindAllen, Predicate1: pred1, Predicate2: pred2, Relation: best,
		Support: total, Violations: total - bestCount, Confidence: conf,
		Rule: rule,
	}}, nil
}

// suggestName derives a grammar-safe rule name from predicate IRIs.
func suggestName(kind, p1, p2 string) string {
	name := "suggested_" + kind + "_" + sanitize(p1)
	if p2 != "" {
		name += "_" + sanitize(p2)
	}
	return name
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
