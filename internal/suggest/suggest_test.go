package suggest

import (
	"strings"
	"testing"

	"repro/internal/kgen"
	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

func footballStore(t testing.TB, players int, noise float64) *store.Store {
	t.Helper()
	ds := kgen.Football(kgen.FootballConfig{Players: players, NoiseRatio: noise, Seed: 6})
	st := store.New()
	if err := st.AddGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	return st
}

func findSuggestion(sugs []Suggestion, kind Kind, pred1, pred2 string) *Suggestion {
	for i := range sugs {
		s := &sugs[i]
		if s.Kind == kind && s.Predicate1 == pred1 && s.Predicate2 == pred2 {
			return s
		}
	}
	return nil
}

func TestMineFootballCleanData(t *testing.T) {
	st := footballStore(t, 400, 0)
	sugs, err := Mine(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions mined")
	}
	// Disjointness of playsFor spells is near-perfect in clean data.
	dj := findSuggestion(sugs, KindDisjoint, "playsFor", "playsFor")
	if dj == nil {
		t.Fatal("playsFor disjointness not suggested")
	}
	if dj.Confidence < 0.97 {
		t.Errorf("playsFor disjoint confidence = %.3f", dj.Confidence)
	}
	if dj.Support < 100 {
		t.Errorf("playsFor disjoint support = %d", dj.Support)
	}
	// birthDate contains playsFor dominates the Allen distribution.
	al := findSuggestion(sugs, KindAllen, "birthDate", "playsFor")
	if al == nil {
		t.Fatal("birthDate/playsFor Allen constraint not suggested")
	}
	if al.Relation != temporal.Contains {
		t.Errorf("dominant relation = %v, want contains", al.Relation)
	}
}

func TestSuggestionsParseAndValidate(t *testing.T) {
	st := footballStore(t, 300, 0)
	sugs, err := Mine(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugs {
		if err := s.Rule.Validate(); err != nil {
			t.Errorf("suggestion %s invalid: %v", s.Text(), err)
		}
		if _, err := rulelang.Parse(s.Text()); err != nil {
			t.Errorf("suggestion %s unparseable: %v", s.Text(), err)
		}
		if !s.Rule.Hard() || !s.Rule.IsConstraint() {
			t.Errorf("suggestion %s should be a hard constraint", s.Text())
		}
		if s.Confidence < 0.9 || s.Confidence > 1 {
			t.Errorf("suggestion %s confidence %.3f outside [0.9,1]", s.Text(), s.Confidence)
		}
	}
}

func TestNoiseLowersConfidence(t *testing.T) {
	clean := footballStore(t, 400, 0)
	noisy := footballStore(t, 400, 1.0)
	cs, err := Mine(clean, Options{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := Mine(noisy, Options{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cd := findSuggestion(cs, KindDisjoint, "playsFor", "playsFor")
	nd := findSuggestion(ns, KindDisjoint, "playsFor", "playsFor")
	if cd == nil || nd == nil {
		t.Fatal("disjointness suggestion missing")
	}
	if nd.Confidence >= cd.Confidence {
		t.Errorf("noise should lower confidence: clean %.3f, noisy %.3f", cd.Confidence, nd.Confidence)
	}
	if nd.Violations == 0 {
		t.Error("noisy data should produce violations")
	}
}

func TestMinSupportFiltersSmallPatterns(t *testing.T) {
	st := footballStore(t, 5, 0)
	sugs, err := Mine(st, Options{MinSupport: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 0 {
		t.Errorf("high support floor should suppress all suggestions, got %d", len(sugs))
	}
}

func TestSortedByConfidence(t *testing.T) {
	st := footballStore(t, 300, 0.2)
	sugs, err := Mine(st, Options{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sugs); i++ {
		if sugs[i-1].Confidence < sugs[i].Confidence {
			t.Fatal("suggestions not sorted by confidence")
		}
	}
}

func TestSanitizeNamesFromIRIs(t *testing.T) {
	st := store.New()
	g, err := rulelangFreeGraph()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	sugs, err := Mine(st, Options{MinSupport: 5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugs {
		if strings.ContainsAny(s.Rule.Name, "/:.") {
			t.Errorf("unsanitised rule name %q", s.Rule.Name)
		}
	}
}

// rulelangFreeGraph builds a tiny graph whose predicates are full IRIs
// with slashes, to exercise name sanitisation.
func rulelangFreeGraph() (rdf.Graph, error) {
	text := ""
	for i := 0; i < 12; i++ {
		subj := string(rune('a' + i))
		text += "<http://ex.org/people/" + subj + "> <http://ex.org/vocab/spouse> <p1> [2000,2005] 0.9\n"
		text += "<http://ex.org/people/" + subj + "> <http://ex.org/vocab/spouse> <p2> [2010,2015] 0.9\n"
	}
	return rdf.ParseGraphString(text)
}
