// Package maxsat implements a weighted partial MaxSAT solver: hard
// clauses must be satisfied, and the total weight of violated soft
// clauses is minimised.
//
// MAP inference in a Markov logic network is exactly weighted partial
// MaxSAT over the ground network, so this package plays the role the
// Gurobi ILP backend plays inside RockIt: the encodings differ, the
// optimum is the same. Two engines are provided — an exact
// branch-and-bound with unit propagation for small ground networks, and
// a WalkSAT-style stochastic local search with greedy initialisation for
// large ones — behind a single Solve entry point that picks by size.
//
// # Concurrency model
//
// Local-search restarts are independent: each runs with its own RNG
// (seeded from Options.Seed and the restart index) and its own working
// state, sharing only the problem and the read-only occurrence lists, so
// they execute concurrently on a pool of Options.Parallelism workers.
// The returned solution is selected deterministically by (hard
// feasibility, soft cost, restart index) — identical at every
// parallelism setting, including 1.
package maxsat

import (
	"fmt"
	"math"
)

// Lit is a literal over variable Var (0-based); Neg selects the negative
// phase.
type Lit struct {
	Var int32
	Neg bool
}

// Clause is a weighted disjunction. Weight = +Inf marks a hard clause.
type Clause struct {
	Lits   []Lit
	Weight float64
}

// Hard reports whether the clause must be satisfied.
func (c *Clause) Hard() bool { return math.IsInf(c.Weight, 1) }

// Problem is a weighted partial MaxSAT instance.
type Problem struct {
	NumVars int
	Clauses []Clause
}

// Validate reports structural problems: out-of-range variables, empty
// clauses, NaN or negative weights.
func (p *Problem) Validate() error {
	for i, c := range p.Clauses {
		if len(c.Lits) == 0 {
			return fmt.Errorf("maxsat: clause %d is empty", i)
		}
		if math.IsNaN(c.Weight) || c.Weight < 0 {
			return fmt.Errorf("maxsat: clause %d has invalid weight %g", i, c.Weight)
		}
		for _, l := range c.Lits {
			if l.Var < 0 || int(l.Var) >= p.NumVars {
				return fmt.Errorf("maxsat: clause %d references variable %d outside [0,%d)", i, l.Var, p.NumVars)
			}
		}
	}
	return nil
}

// Solution is the result of solving a problem.
type Solution struct {
	// Assignment holds one truth value per variable.
	Assignment []bool
	// Cost is the total weight of violated soft clauses.
	Cost float64
	// HardSatisfied reports whether all hard clauses hold. When false no
	// feasible assignment was found (the hard clauses may be
	// unsatisfiable).
	HardSatisfied bool
	// Optimal reports whether the exact engine proved optimality.
	Optimal bool
	// Flips counts local-search moves across the restarts that actually
	// ran (0 for the exact engine). Unlike Assignment, Cost and
	// HardSatisfied — which are deterministic at every Parallelism
	// setting — Flips can vary with scheduling: once a restart finds a
	// perfect solution, later-indexed restarts may be skipped.
	Flips int
	// Nodes counts branch-and-bound nodes (0 for local search).
	Nodes int
	// Engine names the engine that produced the assignment: "exact",
	// "local", or "exact→local" when the exact engine exhausted its node
	// limit and Solve fell back to local search.
	Engine string
}

// Engine names reported in Solution.Engine.
const (
	EngineExact    = "exact"
	EngineLocal    = "local"
	EngineFallback = "exact→local"
)

// Options tunes Solve.
type Options struct {
	// ExactVarLimit is the largest variable count handed to the exact
	// engine (default 30).
	ExactVarLimit int
	// NodeLimit bounds branch-and-bound nodes before falling back to
	// local search (default 1<<21).
	NodeLimit int
	// MaxFlips bounds local-search moves (default max(100000, 60*vars)).
	MaxFlips int
	// Noise is the random-walk probability in local search (default 0.12).
	Noise float64
	// Restarts is the number of local-search restarts (default 3).
	Restarts int
	// Seed seeds the local-search RNG (default 1).
	Seed int64
	// Parallelism bounds the worker pool running restarts concurrently:
	// 0 means GOMAXPROCS, 1 forces sequential execution. The solution
	// (assignment, cost, feasibility) is identical at every setting;
	// only the Flips counter may vary (see Solution.Flips).
	Parallelism int
	// Warm, when it has exactly NumVars entries, warm-starts the solver
	// from a previous solution of a closely related instance. The exact
	// engine uses it purely as an initial upper bound: pruning is strict,
	// so the returned assignment is provably identical to a cold solve —
	// only faster. The local-search engine initialises restart 0 from it
	// instead of the greedy heuristic, which speeds convergence but may
	// settle on a different (equally valid) assignment than a cold run.
	Warm []bool
}

func (o Options) withDefaults(nvars int) Options {
	if o.ExactVarLimit == 0 {
		o.ExactVarLimit = 30
	}
	if o.NodeLimit == 0 {
		o.NodeLimit = 1 << 21
	}
	if o.MaxFlips == 0 {
		o.MaxFlips = 100000
		if m := 60 * nvars; m > o.MaxFlips {
			o.MaxFlips = m
		}
	}
	if o.Noise == 0 {
		o.Noise = 0.12
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Evaluate returns the number of violated hard clauses and the violated
// soft weight under the assignment.
func Evaluate(p *Problem, assign []bool) (hardViolations int, cost float64) {
	for _, c := range p.Clauses {
		sat := false
		for _, l := range c.Lits {
			if assign[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		if c.Hard() {
			hardViolations++
		} else {
			cost += c.Weight
		}
	}
	return hardViolations, cost
}

// Solve picks an engine by instance size: exact branch-and-bound when the
// variable count is within ExactVarLimit, stochastic local search
// otherwise (or when the node limit is exhausted).
func Solve(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(p.NumVars)
	if p.NumVars == 0 {
		return &Solution{HardSatisfied: true, Optimal: true, Engine: EngineExact}, nil
	}
	if p.NumVars <= opts.ExactVarLimit {
		if sol, complete := solveExact(p, opts); complete {
			sol.Engine = EngineExact
			return sol, nil
		}
		sol := solveLocal(p, opts)
		sol.Engine = EngineFallback
		return sol, nil
	}
	sol := solveLocal(p, opts)
	sol.Engine = EngineLocal
	return sol, nil
}

// Exact runs the exact branch-and-bound engine regardless of instance
// size, reporting whether the search completed within the node limit.
// When it did not, the returned solution is partial — callers (the
// per-component orchestrators) should fall back to Local rather than
// trust it.
func Exact(p *Problem, opts Options) (*Solution, bool, error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	opts = opts.withDefaults(p.NumVars)
	if p.NumVars == 0 {
		return &Solution{HardSatisfied: true, Optimal: true, Engine: EngineExact}, true, nil
	}
	sol, complete := solveExact(p, opts)
	sol.Engine = EngineExact
	return sol, complete, nil
}

// Local runs the stochastic local-search engine regardless of instance
// size.
func Local(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(p.NumVars)
	if p.NumVars == 0 {
		return &Solution{HardSatisfied: true, Optimal: true, Engine: EngineLocal}, nil
	}
	sol := solveLocal(p, opts)
	sol.Engine = EngineLocal
	return sol, nil
}
