package maxsat

import (
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/par"
)

// Local-search engine: greedy weight-biased initialisation followed by a
// WalkSAT-style loop. While hard clauses are violated the walk repairs a
// random violated hard clause; once feasible it descends on soft cost,
// keeping the best feasible assignment seen. The clause shapes produced
// by grounding TeCoRe programs — soft unit evidence, hard binary
// disjointness, small mixed inference clauses — respond very well to
// this scheme.
//
// Restarts are independent: each gets its own RNG (seeded from the base
// seed and the restart index), its own working state, and a share of the
// flip budget, so they run concurrently on the worker pool. The winner
// is selected deterministically by (hard feasibility, soft cost, restart
// index) — the same answer at every Parallelism setting. The occurrence
// lists are built once and shared read-only across restarts.

type localState struct {
	p      *Problem
	rng    *rand.Rand
	assign []bool
	occ    [][]int32 // shared, read-only across restarts
	numSat []int32   // per clause: count of satisfied literals

	violHard    []int32 // indices of violated hard clauses (unordered set)
	violHardPos []int32 // clause -> position in violHard, -1 if absent
	cost        float64 // violated soft weight
	violSoft    []int32
	violSoftPos []int32
}

// buildOcc computes the clause occurrence lists, one entry per clause
// even when a variable is mentioned in several literals.
func buildOcc(p *Problem) [][]int32 {
	occ := make([][]int32, p.NumVars)
	for ci, c := range p.Clauses {
		for _, l := range c.Lits {
			if cur := occ[l.Var]; len(cur) == 0 || cur[len(cur)-1] != int32(ci) {
				occ[l.Var] = append(occ[l.Var], int32(ci))
			}
		}
	}
	return occ
}

func newLocalState(p *Problem, occ [][]int32, seed int64) *localState {
	return &localState{
		p:           p,
		rng:         rand.New(rand.NewSource(seed)),
		assign:      make([]bool, p.NumVars),
		occ:         occ,
		numSat:      make([]int32, len(p.Clauses)),
		violHardPos: make([]int32, len(p.Clauses)),
		violSoftPos: make([]int32, len(p.Clauses)),
	}
}

// restartSeed decorrelates the per-restart RNG streams.
func restartSeed(base int64, restart int) int64 {
	const golden = -0x61C8864680B583EB // 2^64 / φ as a signed 64-bit value
	return base + int64(restart)*golden
}

func solveLocal(p *Problem, opts Options) *Solution {
	occ := buildOcc(p)
	restarts := opts.Restarts
	workers := par.Workers(opts.Parallelism)

	warm := opts.Warm
	if len(warm) != p.NumVars {
		warm = nil
	}
	// With a warm start the walk begins at (or next to) the previous
	// incumbent, so one warm-initialised restart with a stall cutoff
	// replaces the cold restart portfolio: a walk that has not improved
	// its best feasible solution for a budget proportional to the
	// instance size gives up early. Cold runs keep the full portfolio
	// and budget — their trajectory is part of the deterministic
	// contract.
	stall := 0
	if warm != nil {
		restarts = 1
		stall = 2 * p.NumVars
		if stall < 5000 {
			stall = 5000
		}
	}

	type attempt struct {
		best  *Solution // best feasible assignment found (nil if none)
		last  []bool    // final working assignment, for the infeasible fallback
		flips int
	}
	results := make([]attempt, restarts)
	// minPerfect tracks the lowest restart index that reached a feasible,
	// zero-cost assignment. Later restarts can never beat it under the
	// (feasible, cost, index) order, so they may skip — an optimisation
	// that cannot change the selected winner.
	var minPerfect atomic.Int32
	minPerfect.Store(int32(restarts))
	par.Do(restarts, workers, func(r int) {
		if int32(r) > minPerfect.Load() {
			return
		}
		st := newLocalState(p, occ, restartSeed(opts.Seed, r))
		if r == 0 && warm != nil {
			st.initWarm(warm)
		} else {
			st.initGreedy(r)
		}
		best := &Solution{Cost: math.Inf(1)}
		flips := st.walk(opts.MaxFlips/restarts, opts.Noise, best, stall)
		a := attempt{flips: flips}
		if best.Assignment != nil {
			a.best = best
		} else {
			a.last = append([]bool(nil), st.assign...)
		}
		results[r] = a
		if best.HardSatisfied && best.Cost == 0 {
			for {
				cur := minPerfect.Load()
				if int32(r) >= cur || minPerfect.CompareAndSwap(cur, int32(r)) {
					break
				}
			}
		}
	})

	// Deterministic winner: feasible beats infeasible, then lowest cost,
	// then lowest restart index (strict < keeps the earliest restart on
	// ties). Skipped restarts contribute nothing.
	var win *Solution
	totalFlips := 0
	for r := range results {
		totalFlips += results[r].flips
		if s := results[r].best; s != nil && (win == nil || s.Cost < win.Cost) {
			win = s
		}
	}
	if win == nil {
		// Never feasible: report the last restart's final assignment.
		assign := results[restarts-1].last
		if assign == nil {
			assign = make([]bool, p.NumVars)
		}
		hv, cost := Evaluate(p, assign)
		return &Solution{Assignment: assign, Cost: cost, HardSatisfied: hv == 0, Flips: totalFlips}
	}
	win.Flips = totalFlips
	return win
}

// initGreedy assigns variables by their soft unit bias (restart > 0 adds
// random perturbation), then rebuilds clause state.
func (st *localState) initGreedy(restart int) {
	bias := make([]float64, st.p.NumVars)
	for _, c := range st.p.Clauses {
		if c.Hard() || len(c.Lits) != 1 {
			continue
		}
		l := c.Lits[0]
		if l.Neg {
			bias[l.Var] -= c.Weight
		} else {
			bias[l.Var] += c.Weight
		}
	}
	for v := range st.assign {
		st.assign[v] = bias[v] > 0
		if restart > 0 && st.rng.Float64() < 0.08*float64(restart) {
			st.assign[v] = !st.assign[v]
		}
	}
	st.rebuild()
	// Repair pass: greedily satisfy violated hard clauses by flipping the
	// literal whose unit bias loss is smallest.
	for guard := 0; len(st.violHard) > 0 && guard < 4*len(st.p.Clauses); guard++ {
		ci := st.violHard[0]
		st.flip(st.bestVarInClause(ci, 0))
	}
}

// initWarm starts from a previous solution of a related instance (the
// incremental path's incumbent), then repairs any hard clauses the
// instance change broke. Near-unchanged instances start at or next to a
// feasible optimum, so the walk converges in a fraction of the flips.
func (st *localState) initWarm(warm []bool) {
	copy(st.assign, warm)
	st.rebuild()
	for guard := 0; len(st.violHard) > 0 && guard < 4*len(st.p.Clauses); guard++ {
		ci := st.violHard[0]
		st.flip(st.bestVarInClause(ci, 0))
	}
}

func (st *localState) rebuild() {
	st.violHard = st.violHard[:0]
	st.violSoft = st.violSoft[:0]
	st.cost = 0
	for ci := range st.p.Clauses {
		st.violHardPos[ci] = -1
		st.violSoftPos[ci] = -1
	}
	for ci, c := range st.p.Clauses {
		n := int32(0)
		for _, l := range c.Lits {
			if st.assign[l.Var] != l.Neg {
				n++
			}
		}
		st.numSat[ci] = n
		if n == 0 {
			st.markViolated(int32(ci))
		}
	}
}

func (st *localState) markViolated(ci int32) {
	c := &st.p.Clauses[ci]
	if c.Hard() {
		st.violHardPos[ci] = int32(len(st.violHard))
		st.violHard = append(st.violHard, ci)
	} else {
		st.cost += c.Weight
		st.violSoftPos[ci] = int32(len(st.violSoft))
		st.violSoft = append(st.violSoft, ci)
	}
}

func (st *localState) unmarkViolated(ci int32) {
	c := &st.p.Clauses[ci]
	if c.Hard() {
		pos := st.violHardPos[ci]
		last := st.violHard[len(st.violHard)-1]
		st.violHard[pos] = last
		st.violHardPos[last] = pos
		st.violHard = st.violHard[:len(st.violHard)-1]
		st.violHardPos[ci] = -1
	} else {
		st.cost -= c.Weight
		pos := st.violSoftPos[ci]
		last := st.violSoft[len(st.violSoft)-1]
		st.violSoft[pos] = last
		st.violSoftPos[last] = pos
		st.violSoft = st.violSoft[:len(st.violSoft)-1]
		st.violSoftPos[ci] = -1
	}
}

// flip toggles variable v and updates clause state.
func (st *localState) flip(v int32) {
	newVal := !st.assign[v]
	st.assign[v] = newVal
	for _, ci := range st.occ[v] {
		c := &st.p.Clauses[ci]
		was := st.numSat[ci]
		n := was
		for _, l := range c.Lits {
			if l.Var != v {
				continue
			}
			if newVal != l.Neg {
				n++ // literal became true
			} else {
				n-- // literal became false
			}
		}
		st.numSat[ci] = n
		if was > 0 && n == 0 {
			st.markViolated(ci)
		} else if was == 0 && n > 0 {
			st.unmarkViolated(ci)
		}
	}
}

// flipDelta scores flipping v: change in violated hard count and soft
// cost.
func (st *localState) flipDelta(v int32) (hardDelta int, costDelta float64) {
	val := st.assign[v]
	for _, ci := range st.occ[v] {
		c := &st.p.Clauses[ci]
		pos, neg := int32(0), int32(0) // lits of v currently true / false
		for _, l := range c.Lits {
			if l.Var != v {
				continue
			}
			if val != l.Neg {
				pos++
			} else {
				neg++
			}
		}
		n := st.numSat[ci] - pos + neg
		was := st.numSat[ci]
		if was > 0 && n == 0 {
			if c.Hard() {
				hardDelta++
			} else {
				costDelta += c.Weight
			}
		} else if was == 0 && n > 0 {
			if c.Hard() {
				hardDelta--
			} else {
				costDelta -= c.Weight
			}
		}
	}
	return hardDelta, costDelta
}

// bestVarInClause picks the variable of clause ci whose flip is least
// damaging (lexicographic on hard delta then soft delta), with noise
// probability of a random pick.
func (st *localState) bestVarInClause(ci int32, noise float64) int32 {
	c := &st.p.Clauses[ci]
	if noise > 0 && st.rng.Float64() < noise {
		return c.Lits[st.rng.Intn(len(c.Lits))].Var
	}
	bestVar := c.Lits[0].Var
	bestHard, bestCost := math.MaxInt32, math.Inf(1)
	for _, l := range c.Lits {
		hd, cd := st.flipDelta(l.Var)
		if hd < bestHard || hd == bestHard && cd < bestCost {
			bestVar, bestHard, bestCost = l.Var, hd, cd
		}
	}
	return bestVar
}

// walk runs the WalkSAT loop, updating best in place. With stall > 0 it
// exits once a feasible best has gone stall flips without improvement.
func (st *localState) walk(maxFlips int, noise float64, best *Solution, stall int) int {
	flips := 0
	sinceImprove := 0
	for ; flips < maxFlips; flips++ {
		if stall > 0 && best.HardSatisfied {
			if sinceImprove++; sinceImprove > stall {
				return flips
			}
		}
		if len(st.violHard) == 0 {
			// Feasible: record if better.
			if !best.HardSatisfied || st.cost < best.Cost {
				best.HardSatisfied = true
				best.Cost = st.cost
				best.Assignment = append(best.Assignment[:0], st.assign...)
				sinceImprove = 0
			}
			if len(st.violSoft) == 0 {
				return flips // all clauses satisfied
			}
			ci := st.violSoft[st.rng.Intn(len(st.violSoft))]
			v := st.bestVarInClause(ci, noise)
			hd, cd := st.flipDelta(v)
			if hd > 0 || cd >= 0 {
				// Flip would break feasibility or not improve: mostly skip,
				// occasionally take it to escape local optima.
				if st.rng.Float64() > noise {
					continue
				}
				if hd > 0 && st.rng.Float64() > 0.25 {
					continue
				}
			}
			st.flip(v)
			continue
		}
		ci := st.violHard[st.rng.Intn(len(st.violHard))]
		st.flip(st.bestVarInClause(ci, noise))
	}
	return flips
}
