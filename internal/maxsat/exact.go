package maxsat

import "math"

// Exact engine: depth-first branch and bound over the variables with unit
// propagation on hard clauses and incremental violated-cost accounting.
// Intended for ground networks up to a few dozen variables — the running
// example and the per-component subproblems the repair layer produces.

type exactState struct {
	p        *Problem
	occ      [][]int32 // var -> clause indices
	assign   []int8    // -1 unassigned, 0 false, 1 true
	satCnt   []int32   // per clause: satisfied literal count
	unasCnt  []int32   // per clause: unassigned literal count
	cost     float64   // violated soft weight so far
	best     []bool
	bestCost float64
	// bound is a warm-start upper bound on the optimal cost (+Inf when
	// cold). Pruning against it is strict (cost > bound), so subtrees
	// containing optimal-cost leaves are never cut and the first optimal
	// leaf in DFS order — the same one a cold search accepts — is still
	// reached. The warm start only shrinks the search, never the answer.
	bound    float64
	feasible bool
	nodes    int
	limit    int
	order    []int32 // branching order (by occurrence count desc)
	bias     []float64
}

// solveExact returns the optimal solution and true, or a partial result
// and false when the node limit was exhausted.
func solveExact(p *Problem, opts Options) (*Solution, bool) {
	st := &exactState{
		p:        p,
		occ:      make([][]int32, p.NumVars),
		assign:   make([]int8, p.NumVars),
		satCnt:   make([]int32, len(p.Clauses)),
		unasCnt:  make([]int32, len(p.Clauses)),
		bestCost: math.Inf(1),
		bound:    math.Inf(1),
		limit:    opts.NodeLimit,
		bias:     make([]float64, p.NumVars),
	}
	if len(opts.Warm) == p.NumVars {
		if hv, cost := Evaluate(p, opts.Warm); hv == 0 {
			// Slack absorbs the rounding difference between Evaluate's
			// straight sum and the search's incremental accounting; the
			// bound stays a valid upper bound, so pruning remains exact.
			st.bound = cost + 1e-9*(1+math.Abs(cost))
		}
	}
	for i := range st.assign {
		st.assign[i] = -1
	}
	counts := make([]int32, p.NumVars)
	for ci, c := range p.Clauses {
		st.unasCnt[ci] = int32(len(c.Lits))
		for _, l := range c.Lits {
			// Deduplicate occurrence entries: a clause may mention the
			// same variable in several literals but must be visited once
			// per assignment.
			if occ := st.occ[l.Var]; len(occ) == 0 || occ[len(occ)-1] != int32(ci) {
				st.occ[l.Var] = append(st.occ[l.Var], int32(ci))
			}
			counts[l.Var]++
			if !c.Hard() && len(c.Lits) == 1 {
				if l.Neg {
					st.bias[l.Var] -= c.Weight
				} else {
					st.bias[l.Var] += c.Weight
				}
			}
		}
	}
	st.order = make([]int32, p.NumVars)
	for i := range st.order {
		st.order[i] = int32(i)
	}
	// Sort by occurrence count descending (simple insertion; n is small).
	for i := 1; i < len(st.order); i++ {
		for j := i; j > 0 && counts[st.order[j]] > counts[st.order[j-1]]; j-- {
			st.order[j], st.order[j-1] = st.order[j-1], st.order[j]
		}
	}

	complete := st.search()
	if !st.feasible {
		// No feasible assignment found: hard clauses unsatisfiable (if the
		// search completed) or limit hit. Report the all-false assignment.
		assign := make([]bool, p.NumVars)
		hv, cost := Evaluate(p, assign)
		return &Solution{Assignment: assign, Cost: cost, HardSatisfied: hv == 0, Nodes: st.nodes}, complete
	}
	hv, cost := Evaluate(p, st.best)
	return &Solution{
		Assignment:    st.best,
		Cost:          cost,
		HardSatisfied: hv == 0,
		Optimal:       complete,
		Nodes:         st.nodes,
	}, complete
}

// assignVar sets v to val, updating clause counters. It returns the cost
// delta and whether a hard clause became violated (conflict).
func (st *exactState) assignVar(v int32, val int8) (delta float64, conflict bool) {
	st.assign[v] = val
	for _, ci := range st.occ[v] {
		c := &st.p.Clauses[ci]
		sd, ud := litDeltas(c, v, val)
		st.satCnt[ci] += sd
		st.unasCnt[ci] -= ud
		if st.satCnt[ci] == 0 && st.unasCnt[ci] == 0 {
			if c.Hard() {
				conflict = true
			} else {
				delta += c.Weight
			}
		}
	}
	st.cost += delta
	return delta, conflict
}

func (st *exactState) unassignVar(v int32, val int8, delta float64) {
	for _, ci := range st.occ[v] {
		c := &st.p.Clauses[ci]
		sd, ud := litDeltas(c, v, val)
		st.satCnt[ci] -= sd
		st.unasCnt[ci] += ud
	}
	st.cost -= delta
	st.assign[v] = -1
}

// litDeltas counts the literals of v in clause c that value val satisfies
// (sat) and the total literals of v in c (unassigned consumed). A clause
// may mention v several times, including in both phases.
func litDeltas(c *Clause, v int32, val int8) (sat, unas int32) {
	for _, l := range c.Lits {
		if l.Var != v {
			continue
		}
		unas++
		if l.Neg == (val == 0) {
			sat++
		}
	}
	return sat, unas
}

// propagate applies unit propagation over hard clauses. It returns the
// list of (var, delta) assignments made and whether a conflict arose.
type propEntry struct {
	v     int32
	val   int8
	delta float64
}

func (st *exactState) propagate() (trail []propEntry, conflict bool) {
	for {
		forced := int32(-1)
		var forcedVal int8
		for ci, c := range st.p.Clauses {
			if !c.Hard() || st.satCnt[ci] > 0 || st.unasCnt[ci] != 1 {
				continue
			}
			for _, l := range c.Lits {
				if st.assign[l.Var] == -1 {
					forced = l.Var
					if l.Neg {
						forcedVal = 0
					} else {
						forcedVal = 1
					}
					break
				}
			}
			break
		}
		if forced < 0 {
			return trail, false
		}
		delta, conf := st.assignVar(forced, forcedVal)
		trail = append(trail, propEntry{forced, forcedVal, delta})
		if conf {
			return trail, true
		}
	}
}

func (st *exactState) undoTrail(trail []propEntry) {
	for i := len(trail) - 1; i >= 0; i-- {
		e := trail[i]
		st.unassignVar(e.v, e.val, e.delta)
	}
}

// search explores assignments; returns false when the node limit was hit.
func (st *exactState) search() bool {
	st.nodes++
	if st.nodes > st.limit {
		return false
	}
	if st.cost >= st.bestCost || st.cost > st.bound {
		return true // prune: cannot improve on the incumbent or the bound
	}
	trail, conflict := st.propagate()
	complete := true
	if !conflict && st.cost < st.bestCost && st.cost <= st.bound {
		v := st.pickVar()
		if v < 0 {
			// All assigned and feasible.
			st.bestCost = st.cost
			st.best = make([]bool, st.p.NumVars)
			for i, a := range st.assign {
				st.best[i] = a == 1
			}
			st.feasible = true
		} else {
			vals := [2]int8{1, 0}
			if st.bias[v] < 0 {
				vals = [2]int8{0, 1}
			}
			for _, val := range vals {
				delta, conf := st.assignVar(v, val)
				if !conf {
					if !st.search() {
						complete = false
					}
				}
				st.unassignVar(v, val, delta)
				if !complete {
					break
				}
			}
		}
	}
	st.undoTrail(trail)
	return complete
}

func (st *exactState) pickVar() int32 {
	for _, v := range st.order {
		if st.assign[v] == -1 {
			return v
		}
	}
	return -1
}
