package maxsat

import (
	"math"
	"math/rand"
	"testing"
)

var inf = math.Inf(1)

func unit(v int32, w float64) Clause { return Clause{Lits: []Lit{{Var: v}}, Weight: w} }

func notBoth(a, b int32) Clause {
	return Clause{Lits: []Lit{{Var: a, Neg: true}, {Var: b, Neg: true}}, Weight: inf}
}

func TestValidate(t *testing.T) {
	bad := []*Problem{
		{NumVars: 1, Clauses: []Clause{{}}},
		{NumVars: 1, Clauses: []Clause{{Lits: []Lit{{Var: 2}}, Weight: 1}}},
		{NumVars: 1, Clauses: []Clause{{Lits: []Lit{{Var: -1}}, Weight: 1}}},
		{NumVars: 1, Clauses: []Clause{{Lits: []Lit{{Var: 0}}, Weight: -1}}},
		{NumVars: 1, Clauses: []Clause{{Lits: []Lit{{Var: 0}}, Weight: math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("problem %d should be invalid", i)
		}
	}
	good := &Problem{NumVars: 2, Clauses: []Clause{unit(0, 1), notBoth(0, 1)}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestEvaluate(t *testing.T) {
	p := &Problem{NumVars: 2, Clauses: []Clause{unit(0, 2), unit(1, 3), notBoth(0, 1)}}
	hv, cost := Evaluate(p, []bool{true, true})
	if hv != 1 || cost != 0 {
		t.Errorf("both true: hv=%d cost=%g", hv, cost)
	}
	hv, cost = Evaluate(p, []bool{true, false})
	if hv != 0 || cost != 3 {
		t.Errorf("keep 0: hv=%d cost=%g", hv, cost)
	}
	hv, cost = Evaluate(p, []bool{false, false})
	if hv != 0 || cost != 5 {
		t.Errorf("none: hv=%d cost=%g", hv, cost)
	}
}

// TestFigure1Shape mirrors the paper's running example: Chelsea (0.9*)
// conflicts with Napoli (0.6*); the optimum drops Napoli.
func TestFigure1Shape(t *testing.T) {
	// Atoms: 0=Chelsea(2.2), 1=Leicester(0.85), 2=Palermo(0.0 logit ~ 0),
	// 3=birth(large), 4=Napoli(0.4).
	p := &Problem{NumVars: 5, Clauses: []Clause{
		unit(0, 2.2), unit(1, 0.85), unit(2, 0.001), unit(3, 6.9), unit(4, 0.4),
		notBoth(0, 4),
	}}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.HardSatisfied || !sol.Optimal {
		t.Fatalf("sol = %+v", sol)
	}
	want := []bool{true, true, true, true, false}
	for i, w := range want {
		if sol.Assignment[i] != w {
			t.Errorf("atom %d = %v, want %v", i, sol.Assignment[i], w)
		}
	}
	if sol.Cost != 0.4 {
		t.Errorf("cost = %g, want 0.4", sol.Cost)
	}
}

func TestExactOptimalChain(t *testing.T) {
	// Chain of conflicts: 0-1, 1-2, 2-3 with weights favouring even atoms.
	p := &Problem{NumVars: 4, Clauses: []Clause{
		unit(0, 5), unit(1, 1), unit(2, 5), unit(3, 1),
		notBoth(0, 1), notBoth(1, 2), notBoth(2, 3),
	}}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || sol.Cost != 2 {
		t.Fatalf("sol = %+v, want optimal cost 2", sol)
	}
	if !sol.Assignment[0] || sol.Assignment[1] || !sol.Assignment[2] || sol.Assignment[3] {
		t.Errorf("assignment = %v, want T F T F", sol.Assignment)
	}
}

func TestHardInferenceClause(t *testing.T) {
	// Evidence a0; hard rule a0 -> a1; hard constraint !a1 | !a2; evidence a2 weak.
	p := &Problem{NumVars: 3, Clauses: []Clause{
		unit(0, 5), unit(2, 1),
		{Lits: []Lit{{Var: 0, Neg: true}, {Var: 1}}, Weight: inf},
		notBoth(1, 2),
	}}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.HardSatisfied || !sol.Optimal {
		t.Fatalf("sol = %+v", sol)
	}
	// Optimal: keep a0, derive a1, drop a2 (cost 1).
	if !sol.Assignment[0] || !sol.Assignment[1] || sol.Assignment[2] {
		t.Errorf("assignment = %v, want T T F", sol.Assignment)
	}
	if sol.Cost != 1 {
		t.Errorf("cost = %g", sol.Cost)
	}
}

func TestUnsatisfiableHard(t *testing.T) {
	p := &Problem{NumVars: 1, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}}, Weight: inf},
		{Lits: []Lit{{Var: 0, Neg: true}}, Weight: inf},
	}}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.HardSatisfied {
		t.Error("contradiction reported as satisfied")
	}
}

func TestEmptyProblem(t *testing.T) {
	sol, err := Solve(&Problem{}, Options{})
	if err != nil || !sol.HardSatisfied || !sol.Optimal {
		t.Errorf("empty problem: %+v, %v", sol, err)
	}
}

func TestSoftOnlyAllSatisfiable(t *testing.T) {
	p := &Problem{NumVars: 3, Clauses: []Clause{unit(0, 1), unit(1, 2), unit(2, 3)}}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Cost != 0 {
		t.Fatalf("sol = %+v, %v", sol, err)
	}
	for i, v := range sol.Assignment {
		if !v {
			t.Errorf("var %d should be true", i)
		}
	}
}

func TestNegativeUnitPreference(t *testing.T) {
	// Soft negative unit should push the variable false.
	p := &Problem{NumVars: 2, Clauses: []Clause{
		{Lits: []Lit{{Var: 0, Neg: true}}, Weight: 2},
		unit(1, 1),
	}}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Assignment[0] || !sol.Assignment[1] || sol.Cost != 0 {
		t.Errorf("sol = %+v, %v", sol, err)
	}
}

func TestLocalSearchLargeConflictGraph(t *testing.T) {
	// 400 pairs (a_i, b_i): hard conflict within each pair, weight prefers
	// a. Optimum keeps every a, drops every b: cost = sum of b weights.
	rng := rand.New(rand.NewSource(7))
	var p Problem
	wantCost := 0.0
	for i := 0; i < 400; i++ {
		a := int32(2 * i)
		b := int32(2*i + 1)
		wb := 0.1 + rng.Float64() // in (0.1, 1.1)
		wa := wb + 0.5 + rng.Float64()
		p.Clauses = append(p.Clauses, unit(a, wa), unit(b, wb), notBoth(a, b))
		wantCost += wb
	}
	p.NumVars = 800
	sol, err := Solve(&p, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.HardSatisfied {
		t.Fatal("local search failed to reach feasibility")
	}
	if sol.Cost > wantCost*1.02+1e-9 {
		t.Errorf("cost = %g, optimum %g (>2%% off)", sol.Cost, wantCost)
	}
}

// TestLocalMatchesExactProperty compares the two engines on random small
// instances: local search must be feasible whenever exact is, and within
// a small factor of the optimal cost.
func TestLocalMatchesExactProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		nv := 4 + rng.Intn(8)
		var p Problem
		p.NumVars = nv
		nc := 3 + rng.Intn(12)
		for i := 0; i < nc; i++ {
			var c Clause
			width := 1 + rng.Intn(3)
			for j := 0; j < width; j++ {
				c.Lits = append(c.Lits, Lit{Var: int32(rng.Intn(nv)), Neg: rng.Intn(2) == 0})
			}
			if rng.Intn(3) == 0 {
				c.Weight = inf
			} else {
				c.Weight = 0.1 + rng.Float64()*3
			}
			p.Clauses = append(p.Clauses, c)
		}
		exact, complete := solveExact(&p, Options{NodeLimit: 1 << 20})
		if !complete {
			continue
		}
		local := solveLocal(&p, Options{}.withDefaults(nv))
		if exact.HardSatisfied && !local.HardSatisfied {
			t.Fatalf("trial %d: exact feasible but local not\nproblem=%+v", trial, p)
		}
		if exact.HardSatisfied && local.Cost < exact.Cost-1e-9 {
			t.Fatalf("trial %d: local cost %g beats proven optimum %g", trial, local.Cost, exact.Cost)
		}
		if exact.HardSatisfied && local.Cost > exact.Cost+2.0 {
			t.Errorf("trial %d: local cost %g far from optimum %g", trial, local.Cost, exact.Cost)
		}
		// Verify reported costs against Evaluate.
		hv, cost := Evaluate(&p, exact.Assignment)
		if (hv == 0) != exact.HardSatisfied || math.Abs(cost-exact.Cost) > 1e-9 {
			t.Fatalf("trial %d: exact solution self-report wrong: hv=%d cost=%g vs %+v", trial, hv, cost, exact)
		}
	}
}

func TestExactRespectsNodeLimit(t *testing.T) {
	// A 26-var instance with tiny node limit must fall back (complete=false).
	rng := rand.New(rand.NewSource(5))
	var p Problem
	p.NumVars = 26
	for i := 0; i < 120; i++ {
		var c Clause
		for j := 0; j < 3; j++ {
			c.Lits = append(c.Lits, Lit{Var: int32(rng.Intn(26)), Neg: rng.Intn(2) == 0})
		}
		c.Weight = 1
		p.Clauses = append(p.Clauses, c)
	}
	_, complete := solveExact(&p, Options{NodeLimit: 10})
	if complete {
		t.Error("node limit 10 should not complete on 26 vars")
	}
	// Full Solve still returns a solution via local search.
	sol, err := Solve(&p, Options{NodeLimit: 10})
	if err != nil || sol == nil {
		t.Fatalf("Solve fallback failed: %v", err)
	}
}

func TestSolveDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var p Problem
	p.NumVars = 120
	for i := 0; i < 110; i++ {
		a, b := int32(rng.Intn(120)), int32(rng.Intn(120))
		if a == b {
			continue
		}
		p.Clauses = append(p.Clauses, unit(a, rng.Float64()+0.1), notBoth(a, b))
	}
	s1, err1 := Solve(&p, Options{Seed: 42})
	s2, err2 := Solve(&p, Options{Seed: 42})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1.Cost != s2.Cost {
		t.Errorf("same seed, different cost: %g vs %g", s1.Cost, s2.Cost)
	}
	for i := range s1.Assignment {
		if s1.Assignment[i] != s2.Assignment[i] {
			t.Fatalf("same seed, different assignment at %d", i)
		}
	}
}

func BenchmarkSolveConflictPairs1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var p Problem
	for i := 0; i < 1000; i++ {
		a := int32(2 * i)
		c := int32(2*i + 1)
		p.Clauses = append(p.Clauses, unit(a, 1+rng.Float64()), unit(c, rng.Float64()), notBoth(a, c))
	}
	p.NumVars = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(&p, Options{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExact20Vars(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var p Problem
	p.NumVars = 20
	for i := 0; i < 60; i++ {
		var c Clause
		for j := 0; j < 2; j++ {
			c.Lits = append(c.Lits, Lit{Var: int32(rng.Intn(20)), Neg: rng.Intn(2) == 0})
		}
		c.Weight = rng.Float64()
		p.Clauses = append(p.Clauses, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, complete := solveExact(&p, Options{NodeLimit: 1 << 21}); !complete {
			b.Fatal("incomplete")
		}
	}
}
