package maxsat

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a weighted instance large enough to route past
// the exact engine into local search.
func randomProblem(seed int64, nvars, nclauses int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{NumVars: nvars}
	for i := 0; i < nclauses; i++ {
		var c Clause
		width := 1 + rng.Intn(3)
		for j := 0; j < width; j++ {
			c.Lits = append(c.Lits, Lit{Var: int32(rng.Intn(nvars)), Neg: rng.Intn(2) == 0})
		}
		if rng.Intn(5) == 0 {
			c.Weight = math.Inf(1)
		} else {
			c.Weight = 0.1 + rng.Float64()*3
		}
		p.Clauses = append(p.Clauses, c)
	}
	return p
}

// TestParallelRestartsDeterministic: the winning assignment, its cost
// and feasibility must not depend on the worker count. Restarts are
// independently seeded and the winner is picked by (feasibility, cost,
// restart index), so every parallelism level selects the same solution.
func TestParallelRestartsDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17, 88} {
		p := randomProblem(seed, 120, 600)
		var base *Solution
		for _, workers := range []int{1, 2, 8} {
			opts := Options{Parallelism: workers, Restarts: 6}.withDefaults(p.NumVars)
			sol := solveLocal(p, opts)
			// Self-consistency first.
			hv, cost := Evaluate(p, sol.Assignment)
			if (hv == 0) != sol.HardSatisfied || math.Abs(cost-sol.Cost) > 1e-9 {
				t.Fatalf("seed %d workers %d: self-report wrong: hv=%d cost=%g sol=%+v",
					seed, workers, hv, cost, sol)
			}
			if workers == 1 {
				base = sol
				continue
			}
			if sol.HardSatisfied != base.HardSatisfied || sol.Cost != base.Cost {
				t.Errorf("seed %d workers %d: (feasible=%v cost=%g) vs sequential (feasible=%v cost=%g)",
					seed, workers, sol.HardSatisfied, sol.Cost, base.HardSatisfied, base.Cost)
			}
			for i := range sol.Assignment {
				if sol.Assignment[i] != base.Assignment[i] {
					t.Errorf("seed %d workers %d: assignment diverges at var %d", seed, workers, i)
					break
				}
			}
		}
	}
}

// TestSolveParallelOptionEndToEnd drives the public entry point with the
// option set, covering the size-based engine dispatch.
func TestSolveParallelOptionEndToEnd(t *testing.T) {
	p := randomProblem(41, 80, 400)
	var base *Solution
	for _, workers := range []int{1, 4} {
		sol, err := Solve(p, Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if workers == 1 {
			base = sol
			continue
		}
		if sol.Cost != base.Cost || sol.HardSatisfied != base.HardSatisfied {
			t.Errorf("workers %d: cost %g feasible %v; sequential cost %g feasible %v",
				workers, sol.Cost, sol.HardSatisfied, base.Cost, base.HardSatisfied)
		}
	}
}
