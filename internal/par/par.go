// Package par provides the bounded worker pool shared by the solve
// pipeline: rule grounding, local-search restarts and ADMM sweeps all
// fan work items out across a fixed number of goroutines.
//
// The pool is deliberately minimal — deterministic output is the
// caller's responsibility and every parallel stage in this repository
// follows the same recipe: workers compute into private, index-addressed
// shards with no shared mutable state, and a sequential merge phase
// combines the shards in task order. Under that discipline the result is
// identical for every worker count, including 1.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism setting: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs task(0), ..., task(n-1) on at most workers goroutines and
// waits for all of them to finish. Tasks are handed out in index order
// from a shared counter, so cheap early tasks do not strand a worker.
// With workers <= 1 (or a single task) everything runs inline on the
// calling goroutine — the sequential path spawns nothing.
func Do(n, workers int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// Share divides the machine between k cooperating solves: it returns
// the worker count one of k concurrent pipelines should use so that
// together they fill — but do not oversubscribe — the n-worker budget
// (n <= 0 selects GOMAXPROCS, like Workers). Every pipeline gets at
// least one worker; worker counts never change results, only wall
// clock, so callers may re-share as concurrency fluctuates.
func Share(n, k int) int {
	w := Workers(n)
	if k <= 1 {
		return w
	}
	if w /= k; w < 1 {
		return 1
	}
	return w
}

// DoRange splits [0, n) into one contiguous span per worker and runs
// body(lo, hi) for each concurrently. Use it for element-wise loops too
// fine-grained for a closure call per index; cross-element reductions
// must still be per-element stores (or run after DoRange returns) to
// stay deterministic across worker counts.
func DoRange(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	Do(workers, workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo < hi {
			body(lo, hi)
		}
	})
}
