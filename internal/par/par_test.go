package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestShare(t *testing.T) {
	if got := Share(8, 2); got != 4 {
		t.Errorf("Share(8, 2) = %d, want 4", got)
	}
	if got := Share(8, 0); got != 8 {
		t.Errorf("Share(8, 0) = %d, want 8", got)
	}
	if got := Share(8, 1); got != 8 {
		t.Errorf("Share(8, 1) = %d, want 8", got)
	}
	if got := Share(4, 100); got != 1 {
		t.Errorf("Share(4, 100) = %d, want 1 (floor)", got)
	}
	if got := Share(0, 1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Share(0, 1) = %d, want GOMAXPROCS", got)
	}
	if want := Share(runtime.GOMAXPROCS(0), 3); Share(0, 3) != want {
		t.Errorf("Share(0, 3) = %d, want %d", Share(0, 3), want)
	}
}

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		const n = 537
		var counts [n]atomic.Int32
		Do(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	Do(-1, 4, func(int) { ran = true })
	if ran {
		t.Error("Do ran tasks for n <= 0")
	}
}

func TestDoRangeCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 411
		var counts [n]atomic.Int32
		DoRange(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	// workers <= 1 must run inline, in index order.
	var order []int
	Do(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}
