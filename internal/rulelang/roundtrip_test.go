package rulelang

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/temporal"
)

// Property: any rule assembled from the logic AST prints to surface
// syntax that parses back to a rule with the identical printed form
// (print∘parse∘print = print). Random rules cover quad atoms with
// variable/constant mixes, Allen and comparison and arithmetic
// conditions, the three head kinds, and hard/soft weights.

func randTerm(rng *rand.Rand, vars []string) logic.Term {
	if rng.Intn(2) == 0 {
		return logic.V(vars[rng.Intn(len(vars))])
	}
	consts := []string{"CR", "Chelsea", "Napoli", "team42", "cityX"}
	return logic.CIRI(consts[rng.Intn(len(consts))])
}

func randTimeVar(rng *rand.Rand) string {
	return []string{"t", "t'", "t''", "t2"}[rng.Intn(4)]
}

func randAtom(rng *rand.Rand, objVars []string, timeVars *[]string) logic.QuadAtom {
	tv := randTimeVar(rng)
	*timeVars = append(*timeVars, tv)
	preds := []string{"coach", "playsFor", "worksFor", "bornIn", "memberOf"}
	return logic.QuadAtom{
		S: randTerm(rng, objVars),
		P: logic.CIRI(preds[rng.Intn(len(preds))]),
		O: randTerm(rng, objVars),
		T: logic.TV(tv),
	}
}

func randCond(rng *rand.Rand, objVars, timeVars []string) logic.Condition {
	switch rng.Intn(3) {
	case 0:
		rels := []temporal.Relation{temporal.Before, temporal.Overlaps, temporal.During, temporal.Meets}
		r := rels[rng.Intn(len(rels))]
		return logic.AllenCond{
			Name: r.String(), Rels: temporal.NewRelationSet(r),
			L: logic.TV(timeVars[rng.Intn(len(timeVars))]),
			R: logic.TV(timeVars[rng.Intn(len(timeVars))]),
		}
	case 1:
		ops := []logic.CmpOp{logic.EQ, logic.NE}
		return logic.CompareCond{
			Op: ops[rng.Intn(2)],
			L:  logic.V(objVars[rng.Intn(len(objVars))]),
			R:  logic.V(objVars[rng.Intn(len(objVars))]),
		}
	default:
		ops := []logic.CmpOp{logic.LT, logic.LE, logic.GT, logic.GE}
		return logic.ArithCond{
			Op: ops[rng.Intn(4)],
			L: logic.NumBin{Op: logic.NumSub,
				L: logic.TimeNum{Acc: logic.AccStart, T: logic.TV(timeVars[rng.Intn(len(timeVars))])},
				R: logic.TimeNum{Acc: logic.AccEnd, T: logic.TV(timeVars[rng.Intn(len(timeVars))])}},
			R: logic.NumConst(int64(rng.Intn(40) - 20)),
		}
	}
}

func randRule(rng *rand.Rand, idx int) *logic.Rule {
	objVars := []string{"x", "y", "z"}
	var timeVars []string
	r := &logic.Rule{Name: "r" + string(rune('a'+idx%26)) + string(rune('a'+(idx/26)%26))}
	nBody := 1 + rng.Intn(3)
	for i := 0; i < nBody; i++ {
		r.Body = append(r.Body, randAtom(rng, objVars, &timeVars))
	}
	// Ensure every object variable is bound by forcing variables into
	// the first atom.
	r.Body[0].S = logic.V("x")
	r.Body[0].O = logic.V("y")
	if nBody > 1 {
		r.Body[1].O = logic.V("z")
	} else {
		objVars = []string{"x", "y"}
	}
	nConds := rng.Intn(3)
	for i := 0; i < nConds; i++ {
		r.Conds = append(r.Conds, randCond(rng, objVars, timeVars))
	}
	switch rng.Intn(3) {
	case 0:
		r.Head = logic.Head{Kind: logic.HeadAtom, Atom: logic.QuadAtom{
			S: logic.V("x"), P: logic.CIRI("derived"), O: logic.V("y"),
			T: logic.TV(timeVars[0]),
		}}
	case 1:
		r.Head = logic.Head{Kind: logic.HeadCond, Cond: randCond(rng, objVars, timeVars)}
	default:
		r.Head = logic.Head{Kind: logic.HeadFalse}
	}
	if rng.Intn(2) == 0 {
		r.Weight = HardWeight
	} else {
		r.Weight = float64(1+rng.Intn(40)) / 8
	}
	return r
}

func TestRandomRuleRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	accepted := 0
	for trial := 0; trial < 500; trial++ {
		r := randRule(rng, trial)
		if r.Validate() != nil {
			continue // unsafe random combination; skip
		}
		accepted++
		prog := &logic.Program{Rules: []*logic.Rule{r}}
		text := Format(prog)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: re-parse of %q failed: %v", trial, text, err)
		}
		if len(back.Rules) != 1 {
			t.Fatalf("trial %d: got %d rules", trial, len(back.Rules))
		}
		b := back.Rules[0]
		if b.String() != r.String() {
			t.Fatalf("trial %d: print-parse-print changed:\n  in:  %s\n  out: %s", trial, r, b)
		}
		if b.Hard() != r.Hard() || len(b.Body) != len(r.Body) || len(b.Conds) != len(r.Conds) ||
			b.Head.Kind != r.Head.Kind {
			t.Fatalf("trial %d: structure changed:\n  in:  %s\n  out: %s", trial, r, b)
		}
	}
	if accepted < 300 {
		t.Fatalf("only %d/500 random rules validated; generator too restrictive", accepted)
	}
}
