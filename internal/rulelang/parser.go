package rulelang

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/temporal"
)

// Parse parses a whole rule/constraint document (one rule per line or
// dot-terminated) into a validated logic.Program.
func Parse(src string) (*logic.Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &logic.Program{}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokNewline {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("rulelang: %w", err)
	}
	return prog, nil
}

// ParseRule parses a single rule.
func ParseRule(src string) (*logic.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, fmt.Errorf("rulelang: expected exactly one rule, found %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

// IsVariableName reports whether a bare identifier is treated as a
// variable: a single lowercase letter followed by optional digits and
// primes (x, y2, t, t”).
func IsVariableName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	i := 1
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
	}
	for ; i < len(s) && s[i] == '\''; i++ {
	}
	return i == len(s)
}

// Surface names of built-in predicates: Allen relations plus the loose
// disjoint/overlap predicates of the paper's constraint figures.
func allenRelSet(name string) (temporal.RelationSet, bool) {
	switch name {
	case "disjoint":
		return temporal.DisjointSet, true
	case "overlap", "intersects", "intersect":
		return temporal.IntersectsSet, true
	}
	if r, err := temporal.ParseRelation(name); err == nil {
		return temporal.NewRelationSet(r), true
	}
	return 0, false
}

func isTimeFunc(name string) bool {
	switch name {
	case "start", "end", "duration":
		return true
	}
	return false
}

// --- neutral parse tree (resolved into logic types per rule) ---

type pExpr interface{}

type pVar struct{ name string }
type pNum struct{ v float64 }
type pInterval struct{ iv temporal.Interval }
type pIRI struct{ iri string }
type pString struct{ s string }
type pCall struct {
	name string
	args []pExpr
}
type pBin struct {
	op   logic.NumBinOp
	l, r pExpr
}

type pCond struct {
	// Either a call condition (Allen predicate) or an infix comparison.
	call *pCall
	op   logic.CmpOp
	l, r pExpr
}

type pAtom struct {
	s, p, o, t pExpr
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("rulelang: %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

// rule parses: [name ':'] conjuncts '->' head ['w' '=' weight] (newline|EOF)
func (p *parser) rule() (*logic.Rule, error) {
	rb := &ruleBuilder{timeVars: map[string]bool{}, objVars: map[string]bool{}}

	// Optional rule name: IDENT ':' lookahead.
	if p.tok.kind == tokIdent {
		save := *p.lx
		saveTok := p.tok
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokColon {
			rb.name = name
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			*p.lx = save
			p.tok = saveTok
		}
	}

	// Body conjuncts.
	for {
		atom, cond, err := p.conjunct()
		if err != nil {
			return nil, err
		}
		if atom != nil {
			rb.bodyAtoms = append(rb.bodyAtoms, *atom)
		} else {
			rb.bodyConds = append(rb.bodyConds, *cond)
		}
		if p.tok.kind == tokAnd {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}

	// Head: atom, condition, or falsum.
	if p.tok.kind == tokIdent && (p.tok.text == "false" || p.tok.text == "bottom") {
		rb.headFalse = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		atom, cond, err := p.conjunct()
		if err != nil {
			return nil, err
		}
		if atom != nil {
			rb.headAtom = atom
		} else {
			rb.headCond = cond
		}
	}

	// Optional weight clause.
	weight := math.Inf(1)
	if p.tok.kind == tokIdent && (p.tok.text == "w" || p.tok.text == "weight") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokCmp || p.tok.text != "=" {
			return nil, p.errorf("expected '=' after 'w'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.tok.kind == tokNumber:
			v, err := strconv.ParseFloat(p.tok.text, 64)
			if err != nil {
				return nil, p.errorf("bad weight %q", p.tok.text)
			}
			weight = v
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.kind == tokIdent && (strings.EqualFold(p.tok.text, "inf") || strings.EqualFold(p.tok.text, "infinity") || p.tok.text == "hard"):
			weight = math.Inf(1)
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected weight value, found %q", p.tok.text)
		}
	}

	// Rule terminator.
	switch p.tok.kind {
	case tokNewline:
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tokEOF:
	default:
		return nil, p.errorf("unexpected %s %q after rule", p.tok.kind, p.tok.text)
	}

	return rb.build(weight)
}

// conjunct parses one body/head element: a quad atom, a built-in call
// condition, or an infix comparison.
func (p *parser) conjunct() (*pAtom, *pCond, error) {
	// A conjunct starting with IDENT '(' is an atom or call; otherwise it
	// is an infix comparison over expressions.
	if p.tok.kind == tokIdent {
		save := *p.lx
		saveTok := p.tok
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		// Time functions and interval combinators start an expression
		// (start(t) - start(t') < 20), not an atom.
		if p.tok.kind == tokLParen && !isTimeFunc(name) && name != "intersect" && name != "span" {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			args, err := p.callArgs()
			if err != nil {
				return nil, nil, err
			}
			return p.classifyCall(name, args, saveTok)
		}
		// Not an atom call: rewind and fall through to expression parsing.
		*p.lx = save
		p.tok = saveTok
	}
	return p.infixCond()
}

func (p *parser) callArgs() ([]pExpr, error) {
	var args []pExpr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

// classifyCall turns name(args...) into a quad atom, an Allen condition,
// or an error. The sugar p(x, y, t) expands to quad(x, p, y, t).
func (p *parser) classifyCall(name string, args []pExpr, at token) (*pAtom, *pCond, error) {
	if _, ok := allenRelSet(name); ok {
		if len(args) != 2 {
			return nil, nil, fmt.Errorf("rulelang: %d:%d: %s expects 2 arguments, got %d", at.line, at.col, name, len(args))
		}
		return nil, &pCond{call: &pCall{name: name, args: args}}, nil
	}
	switch name {
	case "quad":
		if len(args) != 4 {
			return nil, nil, fmt.Errorf("rulelang: %d:%d: quad expects 4 arguments, got %d", at.line, at.col, len(args))
		}
		return &pAtom{s: args[0], p: args[1], o: args[2], t: args[3]}, nil, nil
	case "start", "end", "duration":
		return nil, nil, fmt.Errorf("rulelang: %d:%d: %s(...) can only appear inside a comparison", at.line, at.col, name)
	default:
		if len(args) != 3 {
			return nil, nil, fmt.Errorf("rulelang: %d:%d: %s expects 3 arguments (subject, object, time), got %d", at.line, at.col, name, len(args))
		}
		return &pAtom{s: args[0], p: pIRI{iri: name}, o: args[1], t: args[2]}, nil, nil
	}
}

// infixCond parses expr CMP expr.
func (p *parser) infixCond() (*pAtom, *pCond, error) {
	l, err := p.expr()
	if err != nil {
		return nil, nil, err
	}
	if p.tok.kind != tokCmp {
		return nil, nil, p.errorf("expected comparison operator, found %s %q", p.tok.kind, p.tok.text)
	}
	op, err := parseCmp(p.tok.text)
	if err != nil {
		return nil, nil, p.errorf("%v", err)
	}
	if err := p.advance(); err != nil {
		return nil, nil, err
	}
	r, err := p.expr()
	if err != nil {
		return nil, nil, err
	}
	return nil, &pCond{op: op, l: l, r: r}, nil
}

func parseCmp(s string) (logic.CmpOp, error) {
	switch s {
	case "=":
		return logic.EQ, nil
	case "!=":
		return logic.NE, nil
	case "<":
		return logic.LT, nil
	case "<=":
		return logic.LE, nil
	case ">":
		return logic.GT, nil
	case ">=":
		return logic.GE, nil
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

// expr parses an additive expression over primaries.
func (p *parser) expr() (pExpr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := logic.NumAdd
		if p.tok.kind == tokMinus {
			op = logic.NumSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		l = pBin{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) primary() (pExpr, error) {
	switch p.tok.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return pNum{v: v}, nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.primary()
		if err != nil {
			return nil, err
		}
		n, ok := inner.(pNum)
		if !ok {
			return nil, p.errorf("unary minus requires a numeric literal")
		}
		return pNum{v: -n.v}, nil
	case tokInterval:
		iv, err := temporal.Parse(p.tok.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return pInterval{iv: iv}, nil
	case tokIRI:
		iri := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return pIRI{iri: iri}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return pString{s: s}, nil
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return pVar{name: name}, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			if !isTimeFunc(name) && name != "intersect" && name != "span" {
				return nil, p.errorf("unknown function %q in expression", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			wantArgs := 1
			if name == "intersect" || name == "span" {
				wantArgs = 2
			}
			if len(args) != wantArgs {
				return nil, p.errorf("%s expects %d argument(s), got %d", name, wantArgs, len(args))
			}
			return pCall{name: name, args: args}, nil
		}
		if IsVariableName(name) {
			return pVar{name: name}, nil
		}
		return pIRI{iri: name}, nil
	default:
		return nil, p.errorf("unexpected %s %q in expression", p.tok.kind, p.tok.text)
	}
}
