package rulelang

import (
	"os"
	"testing"
)

// FuzzParseRules hammers the rule-language parser: it must never panic,
// and every program it accepts must validate, format back to text, and
// re-parse to the same number of rules.
func FuzzParseRules(f *testing.F) {
	if seed, err := os.ReadFile("../../testdata/running-example.tcr"); err == nil {
		f.Add(string(seed))
	}
	f.Add("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
	f.Add("c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	f.Add("c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf")
	f.Add("quad(x, p, y, t) ^ duration(t) >= 4 -> false w = inf")
	f.Add("quad(x, p, y, t) -> quad(x, q, y, intersect(t, t)) w = 1")
	f.Add("# comment\nbad(")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("accepted invalid program: %v", err)
		}
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted program does not re-parse: %v\ntext:\n%s", err, text)
		}
		if len(prog2.Rules) != len(prog.Rules) {
			t.Fatalf("round trip changed rule count %d -> %d", len(prog.Rules), len(prog2.Rules))
		}
	})
}
