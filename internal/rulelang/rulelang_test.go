package rulelang

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/temporal"
)

// The paper's inference rules (Figure 4) in our surface syntax.
const paperRules = `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlaps(t, t') -> quad(x, livesIn, z, intersect(t, t')) w = 1.6
f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ start(t) - start(t') < 20 -> quad(x, type, TeenPlayer, t) w = 2.9
`

// The paper's constraints (Figure 6).
const paperConstraints = `
c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf
`

func TestParsePaperRules(t *testing.T) {
	prog, err := Parse(paperRules)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}
	f1 := prog.Rules[0]
	if f1.Name != "f1" || f1.Weight != 2.5 || f1.IsConstraint() {
		t.Errorf("f1 = %+v", f1)
	}
	if len(f1.Body) != 1 || f1.Body[0].P.Const.Value != "playsFor" {
		t.Errorf("f1 body = %v", f1.Body)
	}
	if f1.Head.Atom.P.Const.Value != "worksFor" {
		t.Errorf("f1 head = %v", f1.Head)
	}

	f2 := prog.Rules[1]
	if len(f2.Body) != 2 || len(f2.Conds) != 1 {
		t.Fatalf("f2 shape: body=%d conds=%d", len(f2.Body), len(f2.Conds))
	}
	ac, ok := f2.Conds[0].(logic.AllenCond)
	if !ok || !ac.Rels.Has(temporal.Overlaps) || ac.Rels.Len() != 1 {
		t.Errorf("f2 condition = %#v", f2.Conds[0])
	}
	if f2.Head.Atom.T.Kind != logic.TimeIntersect {
		t.Errorf("f2 head time = %v", f2.Head.Atom.T)
	}

	f3 := prog.Rules[2]
	if len(f3.Conds) != 1 {
		t.Fatalf("f3 conds = %d", len(f3.Conds))
	}
	arc, ok := f3.Conds[0].(logic.ArithCond)
	if !ok || arc.Op != logic.LT {
		t.Errorf("f3 condition = %#v", f3.Conds[0])
	}
}

func TestParsePaperConstraints(t *testing.T) {
	prog, err := Parse(paperConstraints)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("got %d rules", len(prog.Rules))
	}
	for _, r := range prog.Rules {
		if !r.Hard() || !r.IsConstraint() {
			t.Errorf("%s should be a hard constraint", r.Name)
		}
	}
	c1 := prog.Rules[0]
	hc, ok := c1.Head.Cond.(logic.AllenCond)
	if !ok || !hc.Rels.Has(temporal.Before) || hc.Rels.Len() != 1 {
		t.Errorf("c1 head = %#v", c1.Head.Cond)
	}
	c2 := prog.Rules[1]
	if len(c2.Conds) != 1 {
		t.Fatalf("c2 conds = %d", len(c2.Conds))
	}
	cc, ok := c2.Conds[0].(logic.CompareCond)
	if !ok || cc.Op != logic.NE {
		t.Errorf("c2 condition = %#v", c2.Conds[0])
	}
	hd, ok := c2.Head.Cond.(logic.AllenCond)
	if !ok || hd.Rels != temporal.DisjointSet {
		t.Errorf("c2 head = %#v", c2.Head.Cond)
	}
	c3 := prog.Rules[2]
	bc, ok := c3.Conds[0].(logic.AllenCond)
	if !ok || bc.Rels != temporal.IntersectsSet {
		t.Errorf("c3 overlap condition = %#v", c3.Conds[0])
	}
	he, ok := c3.Head.Cond.(logic.CompareCond)
	if !ok || he.Op != logic.EQ {
		t.Errorf("c3 head = %#v", c3.Head.Cond)
	}
}

func TestSugarPredicateAtom(t *testing.T) {
	r, err := ParseRule("playsFor(x, y, t) -> worksFor(x, y, t) w = 2.5")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Body[0].P.Const.Value != "playsFor" || r.Head.Atom.P.Const.Value != "worksFor" {
		t.Errorf("sugar expansion wrong: %v", r)
	}
}

func TestUnicodeSyntax(t *testing.T) {
	r, err := ParseRule("quad(x, coach, y, t) ∧ quad(x, coach, z, t') ∧ y ≠ z → disjoint(t, t') w = inf")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if !r.Hard() || len(r.Body) != 2 || len(r.Conds) != 1 {
		t.Errorf("unicode rule = %v", r)
	}
}

func TestDefaultWeightIsHard(t *testing.T) {
	r, err := ParseRule("quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ y != z -> false")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if !r.Hard() || r.Head.Kind != logic.HeadFalse {
		t.Errorf("rule = %v", r)
	}
}

func TestExplicitVariables(t *testing.T) {
	r, err := ParseRule("quad(?person, coach, ?club, ?when) -> quad(?person, worksFor, ?club, ?when) w = 1")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Body[0].S.Var != "person" || r.Body[0].T.Var != "when" {
		t.Errorf("explicit variables wrong: %v", r.Body[0])
	}
}

func TestIRIRefTerms(t *testing.T) {
	r, err := ParseRule("quad(x, <http://example.org/coach>, y, t) -> false w = inf")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Body[0].P.Const.Value != "http://example.org/coach" {
		t.Errorf("IRI predicate = %v", r.Body[0].P)
	}
}

func TestIntervalConstant(t *testing.T) {
	r, err := ParseRule("quad(x, playsFor, y, [1984,1986]) -> quad(x, type, Retro, [1984,1986]) w = 1")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Body[0].T.Kind != logic.TimeConst || r.Body[0].T.Const != temporal.MustNew(1984, 1986) {
		t.Errorf("interval constant = %v", r.Body[0].T)
	}
}

func TestStringLiteralTerm(t *testing.T) {
	r, err := ParseRule(`quad(x, name, "Claudio Raineri", t) -> false`)
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if !r.Body[0].O.Const.IsLiteral() || r.Body[0].O.Const.Value != "Claudio Raineri" {
		t.Errorf("string literal = %v", r.Body[0].O)
	}
}

func TestNumericObjectConstant(t *testing.T) {
	r, err := ParseRule("quad(x, birthDate, 1951, t) -> false")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Body[0].O.Const.Value != "1951" {
		t.Errorf("numeric object = %v", r.Body[0].O)
	}
}

func TestTimeEqualityBecomesAllen(t *testing.T) {
	r, err := ParseRule("quad(x, p, y, t) ^ quad(x, q, z, t') ^ t = t' -> false")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	ac, ok := r.Conds[0].(logic.AllenCond)
	if !ok || !ac.Rels.Has(temporal.Equals) || ac.Rels.Len() != 1 {
		t.Errorf("t = t' resolved to %#v", r.Conds[0])
	}
	r2, err := ParseRule("quad(x, p, y, t) ^ quad(x, q, z, t') ^ t != t' -> false")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	ac2 := r2.Conds[0].(logic.AllenCond)
	if ac2.Rels.Has(temporal.Equals) || ac2.Rels.Len() != temporal.NumRelations-1 {
		t.Errorf("t != t' resolved to %v", ac2.Rels)
	}
}

func TestArithWithEndAndDuration(t *testing.T) {
	r, err := ParseRule("quad(x, coach, y, t) ^ end(t) - start(t) >= 10 ^ duration(t) > 10 -> quad(x, type, Veteran, t) w = 1.5")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if len(r.Conds) != 2 {
		t.Fatalf("conds = %d", len(r.Conds))
	}
}

func TestObjectVarNumericComparison(t *testing.T) {
	// z is an object variable compared to a number: ObjNum path.
	r, err := ParseRule("quad(x, birthDate, z, t) ^ z < 1950 -> quad(x, type, Veteran, t) w = 1")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	arc, ok := r.Conds[0].(logic.ArithCond)
	if !ok || arc.Op != logic.LT {
		t.Errorf("condition = %#v", r.Conds[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing arrow":      "quad(x, p, y, t) w = 1",
		"empty":              "-> false",
		"bad quad arity":     "quad(x, y, t) -> false",
		"bad allen arity":    "quad(x, p, y, t) ^ before(t) -> false",
		"unknown func":       "quad(x, p, y, t) ^ frob(t) > 3 -> false",
		"unsafe head var":    "quad(x, p, y, t) -> quad(x, q, w1, t) w = 1",
		"unsafe cond var":    "quad(x, p, y, t) ^ y != q9 -> false",
		"mixed var use":      "quad(x, p, t, t) -> false",
		"bad weight":         "quad(x, p, y, t) -> false w = banana",
		"missing paren":      "quad(x, p, y, t -> false",
		"interval ordered":   "quad(x, p, y, t) ^ quad(x, q, z, t') ^ t < t' -> false",
		"unterminated str":   `quad(x, p, "oops, t) -> false`,
		"negative weight":    "quad(x, p, y, t) -> quad(x, q, y, t) w = -1",
		"duplicate names":    "a: quad(x, p, y, t) -> false\na: quad(x, p, y, t) -> false",
		"double arrow":       "quad(x, p, y, t) -> false -> false",
		"time func in atom":  "quad(x, p, y, start(t)) -> false",
		"garbage after rule": "quad(x, p, y, t) -> false w = 1 xyz",
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: %q should not parse", name, src)
		}
	}
}

func TestIsVariableName(t *testing.T) {
	yes := []string{"x", "y", "t", "t'", "t''", "x1", "y22", "z9'"}
	no := []string{"", "X", "CR", "playsFor", "xy", "1x", "x'a", "t'1"}
	for _, s := range yes {
		if !IsVariableName(s) {
			t.Errorf("IsVariableName(%q) = false, want true", s)
		}
	}
	for _, s := range no {
		if IsVariableName(s) {
			t.Errorf("IsVariableName(%q) = true, want false", s)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog := MustParse(paperRules + paperConstraints)
	text := Format(prog)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", text, err)
	}
	if len(back.Rules) != len(prog.Rules) {
		t.Fatalf("rule count changed: %d vs %d", len(back.Rules), len(prog.Rules))
	}
	for i := range prog.Rules {
		a, b := prog.Rules[i], back.Rules[i]
		if a.Name != b.Name || len(a.Body) != len(b.Body) || len(a.Conds) != len(b.Conds) ||
			a.Head.Kind != b.Head.Kind || a.Hard() != b.Hard() ||
			(!a.Hard() && math.Abs(a.Weight-b.Weight) > 1e-12) {
			t.Errorf("rule %d changed:\n  %v\n  %v", i, a, b)
		}
		if a.String() != b.String() {
			t.Errorf("rule %d string changed:\n  %v\n  %v", i, a, b)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `# leading comment
// another comment

f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5  # trailing comment
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Rules) != 1 || prog.Rules[0].Name != "f1" {
		t.Errorf("rules = %v", prog.Rules)
	}
}

func TestMultiLineRuleWithDots(t *testing.T) {
	// Dot-terminated rules may share a line.
	src := "quad(x, p, y, t) -> false . quad(x, q, y, t) -> false ."
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Rules) != 2 {
		t.Errorf("got %d rules, want 2", len(prog.Rules))
	}
}

func TestAllenNamesAccepted(t *testing.T) {
	names := []string{"before", "after", "meets", "metBy", "overlaps", "overlappedBy",
		"starts", "startedBy", "during", "contains", "finishes", "finishedBy", "equals",
		"disjoint", "intersects", "overlap"}
	for _, n := range names {
		src := "quad(x, p, y, t) ^ quad(x, q, z, t') -> " + n + "(t, t') w = inf"
		if _, err := Parse(src); err != nil {
			t.Errorf("relation %s rejected: %v", n, err)
		}
	}
}

func TestWeightVariants(t *testing.T) {
	for _, w := range []string{"w = inf", "w = Infinity", "w = hard", "weight = inf", ""} {
		src := "quad(x, p, y, t) -> false " + w
		r, err := ParseRule(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if !r.Hard() {
			t.Errorf("%q should be hard", src)
		}
	}
	r, err := ParseRule("quad(x, p, y, t) -> false w = 0.75")
	if err != nil || r.Weight != 0.75 {
		t.Errorf("fractional weight: %v %v", r, err)
	}
}

func TestStrings(t *testing.T) {
	prog := MustParse("c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	s := Format(prog)
	for _, want := range []string{"c2:", "y != z", "disjoint(t, t')", "w = inf"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q in %q", want, s)
		}
	}
}
