// Package rulelang implements the Datalog-based surface language TeCoRe
// offers for temporal inference rules and constraints. The syntax follows
// the paper's figures:
//
//	f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
//	c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z
//	      -> disjoint(t, t') w = inf
//
// Conjunction is written ^, & or ∧; implication -> or →; the weight
// clause "w = <number>" is optional and defaults to a hard rule
// (w = inf / ∞). Atoms may use the sugar p(x, y, t) for
// quad(x, p, y, t). Conditions are Allen relations over time terms
// (before, meets, ..., plus disjoint and the loose overlap/intersects),
// infix (in)equalities over object terms (y != z), and arithmetic
// comparisons over start(t), end(t), duration(t) and numeric object
// variables. Variables are single lowercase letters with optional digits
// and primes (x, y2, t”); ?name is accepted for longer variable names.
// '#' and '//' start comments.
package rulelang

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar      // ?name explicit variable
	tokNumber   // integer or float
	tokString   // "..."
	tokIRI      // <...>
	tokInterval // [a,b]
	tokLParen
	tokRParen
	tokComma
	tokAnd   // ^ & ∧
	tokArrow // -> →
	tokCmp   // = != < <= > >=
	tokPlus
	tokMinus
	tokColon
	tokNewline
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokIRI:
		return "IRI"
	case tokInterval:
		return "interval"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAnd:
		return "'^'"
	case tokArrow:
		return "'->'"
	case tokCmp:
		return "comparison"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokColon:
		return "':'"
	case tokNewline:
		return "end of rule"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("rulelang: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekRune() (rune, int) {
	if lx.pos >= len(lx.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(lx.src[lx.pos:])
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n; {
		r, w := utf8.DecodeRuneInString(lx.src[lx.pos:])
		lx.pos += w
		i += w
		if r == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
	}
}

// next returns the next token. Newlines are significant (they terminate
// rules) and are collapsed into a single tokNewline.
func (lx *lexer) next() (token, error) {
	for {
		r, w := lx.peekRune()
		if r == 0 {
			return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
		}
		// Comments run to end of line.
		if r == '#' || strings.HasPrefix(lx.src[lx.pos:], "//") {
			for {
				r, w = lx.peekRune()
				if r == 0 || r == '\n' {
					break
				}
				lx.advance(w)
			}
			continue
		}
		if r == '\n' {
			tk := token{kind: tokNewline, line: lx.line, col: lx.col}
			for {
				r, w = lx.peekRune()
				if r != '\n' && r != '\r' && r != ' ' && r != '\t' {
					break
				}
				// Only swallow whitespace runs that contain newlines; plain
				// spaces after a newline are fine to skip too.
				lx.advance(w)
			}
			return tk, nil
		}
		if unicode.IsSpace(r) {
			lx.advance(w)
			continue
		}
		break
	}

	line, col := lx.line, lx.col
	r, w := lx.peekRune()
	switch {
	case r == '(':
		lx.advance(w)
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		lx.advance(w)
		return token{tokRParen, ")", line, col}, nil
	case r == ',':
		lx.advance(w)
		return token{tokComma, ",", line, col}, nil
	case r == '^' || r == '&' || r == '∧':
		lx.advance(w)
		return token{tokAnd, "^", line, col}, nil
	case r == '→':
		lx.advance(w)
		return token{tokArrow, "->", line, col}, nil
	case r == '+':
		lx.advance(w)
		return token{tokPlus, "+", line, col}, nil
	case r == ':':
		lx.advance(w)
		return token{tokColon, ":", line, col}, nil
	case r == '.':
		// A rule-terminating dot behaves like a newline.
		lx.advance(w)
		return token{tokNewline, ".", line, col}, nil
	case r == '-':
		if strings.HasPrefix(lx.src[lx.pos:], "->") {
			lx.advance(2)
			return token{tokArrow, "->", line, col}, nil
		}
		lx.advance(w)
		return token{tokMinus, "-", line, col}, nil
	case r == '≠':
		lx.advance(w)
		return token{tokCmp, "!=", line, col}, nil
	case r == '≤':
		lx.advance(w)
		return token{tokCmp, "<=", line, col}, nil
	case r == '≥':
		lx.advance(w)
		return token{tokCmp, ">=", line, col}, nil
	case r == '<' && lx.looksLikeIRI():
		lx.advance(w)
		start := lx.pos
		for {
			cr, cw := lx.peekRune()
			if cr == 0 {
				return token{}, lx.errorf(line, col, "unterminated IRI")
			}
			if cr == '>' {
				text := lx.src[start:lx.pos]
				lx.advance(cw)
				return token{tokIRI, text, line, col}, nil
			}
			lx.advance(cw)
		}
	case r == '=', r == '<', r == '>', r == '!':
		op := string(r)
		lx.advance(w)
		if nr, nw := lx.peekRune(); nr == '=' {
			op += "="
			lx.advance(nw)
		}
		if op == "!" {
			return token{}, lx.errorf(line, col, "unexpected '!'")
		}
		if op == "==" {
			op = "="
		}
		return token{tokCmp, op, line, col}, nil
	case r == '"':
		lx.advance(w)
		start := lx.pos
		for {
			cr, cw := lx.peekRune()
			if cr == 0 {
				return token{}, lx.errorf(line, col, "unterminated string")
			}
			if cr == '"' {
				text := lx.src[start:lx.pos]
				lx.advance(cw)
				return token{tokString, text, line, col}, nil
			}
			lx.advance(cw)
		}
	case r == '[':
		start := lx.pos
		for {
			cr, cw := lx.peekRune()
			if cr == 0 {
				return token{}, lx.errorf(line, col, "unterminated interval")
			}
			lx.advance(cw)
			if cr == ']' {
				return token{tokInterval, lx.src[start:lx.pos], line, col}, nil
			}
		}
	case r == '?':
		lx.advance(w)
		start := lx.pos
		for {
			cr, cw := lx.peekRune()
			if !isIdentRune(cr) {
				break
			}
			lx.advance(cw)
			_ = cw
		}
		if lx.pos == start {
			return token{}, lx.errorf(line, col, "empty variable name after '?'")
		}
		return token{tokVar, lx.src[start:lx.pos], line, col}, nil
	case r >= '0' && r <= '9':
		start := lx.pos
		for {
			cr, cw := lx.peekRune()
			if !(cr >= '0' && cr <= '9') && cr != '.' {
				break
			}
			// A '.' not followed by a digit terminates the rule instead.
			if cr == '.' {
				rest := lx.src[lx.pos+cw:]
				if len(rest) == 0 || rest[0] < '0' || rest[0] > '9' {
					break
				}
			}
			lx.advance(cw)
		}
		return token{tokNumber, lx.src[start:lx.pos], line, col}, nil
	case isIdentStart(r):
		start := lx.pos
		for {
			cr, cw := lx.peekRune()
			if !isIdentRune(cr) && cr != '\'' {
				break
			}
			lx.advance(cw)
		}
		return token{tokIdent, lx.src[start:lx.pos], line, col}, nil
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", r)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// looksLikeIRI reports whether the '<' at the current position starts an
// angle-bracketed IRI rather than a comparison: the next character must
// be an IRI-ish byte and a closing '>' must appear before any whitespace.
func (lx *lexer) looksLikeIRI() bool {
	rest := lx.src[lx.pos+1:]
	if rest == "" {
		return false
	}
	c := rest[0]
	if !(c == '_' || c == '/' || c == ':' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
		return false
	}
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r':
			return false
		}
	}
	return false
}
