package rulelang

import (
	"fmt"
	"math"

	"repro/internal/logic"
	"repro/internal/rdf"
	"repro/internal/temporal"
)

// ruleBuilder accumulates the parsed pieces of one rule and resolves them
// into a typed logic.Rule. Resolution classifies every variable as an
// object variable or a time variable from the positions it occupies in
// quad atoms; conditions are then typed accordingly (y != z becomes a
// term comparison, before(t, t') an Allen condition, start(t) - z < 20 an
// arithmetic condition).
type ruleBuilder struct {
	name      string
	bodyAtoms []pAtom
	bodyConds []pCond
	headAtom  *pAtom
	headCond  *pCond
	headFalse bool

	timeVars map[string]bool
	objVars  map[string]bool
}

func (rb *ruleBuilder) build(weight float64) (*logic.Rule, error) {
	// Pass 1: classify variables by atom position.
	classify := func(a pAtom) error {
		for _, e := range []pExpr{a.s, a.p, a.o} {
			if v, ok := e.(pVar); ok {
				if rb.timeVars[v.name] {
					return fmt.Errorf("rulelang: rule %s: variable %q used in both object and time positions", rb.display(), v.name)
				}
				rb.objVars[v.name] = true
			}
		}
		return rb.markTimeVars(a.t)
	}
	for _, a := range rb.bodyAtoms {
		if err := classify(a); err != nil {
			return nil, err
		}
	}
	if rb.headAtom != nil {
		if err := classify(*rb.headAtom); err != nil {
			return nil, err
		}
	}

	r := &logic.Rule{Name: rb.name, Weight: weight}
	for _, a := range rb.bodyAtoms {
		qa, err := rb.atom(a)
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, qa)
	}
	for _, c := range rb.bodyConds {
		lc, err := rb.cond(c)
		if err != nil {
			return nil, err
		}
		r.Conds = append(r.Conds, lc)
	}
	switch {
	case rb.headFalse:
		r.Head = logic.Head{Kind: logic.HeadFalse}
	case rb.headAtom != nil:
		qa, err := rb.atom(*rb.headAtom)
		if err != nil {
			return nil, err
		}
		r.Head = logic.Head{Kind: logic.HeadAtom, Atom: qa}
	case rb.headCond != nil:
		lc, err := rb.cond(*rb.headCond)
		if err != nil {
			return nil, err
		}
		r.Head = logic.Head{Kind: logic.HeadCond, Cond: lc}
	default:
		return nil, fmt.Errorf("rulelang: rule %s: missing head", rb.display())
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

func (rb *ruleBuilder) display() string {
	if rb.name != "" {
		return rb.name
	}
	return "<anonymous>"
}

// markTimeVars registers every variable inside a time-position expression
// as a time variable.
func (rb *ruleBuilder) markTimeVars(e pExpr) error {
	switch v := e.(type) {
	case pVar:
		if rb.objVars[v.name] {
			return fmt.Errorf("rulelang: rule %s: variable %q used in both object and time positions", rb.display(), v.name)
		}
		rb.timeVars[v.name] = true
		return nil
	case pInterval:
		return nil
	case pCall:
		if v.name != "intersect" && v.name != "span" {
			return fmt.Errorf("rulelang: rule %s: %q is not a time expression", rb.display(), v.name)
		}
		for _, a := range v.args {
			if err := rb.markTimeVars(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("rulelang: rule %s: invalid time-position expression %T", rb.display(), e)
	}
}

// atom resolves a parsed atom into a typed quad atom.
func (rb *ruleBuilder) atom(a pAtom) (logic.QuadAtom, error) {
	s, err := rb.objTerm(a.s, "subject")
	if err != nil {
		return logic.QuadAtom{}, err
	}
	p, err := rb.objTerm(a.p, "predicate")
	if err != nil {
		return logic.QuadAtom{}, err
	}
	o, err := rb.objTerm(a.o, "object")
	if err != nil {
		return logic.QuadAtom{}, err
	}
	t, err := rb.timeTerm(a.t)
	if err != nil {
		return logic.QuadAtom{}, err
	}
	return logic.QuadAtom{S: s, P: p, O: o, T: t}, nil
}

func (rb *ruleBuilder) objTerm(e pExpr, pos string) (logic.Term, error) {
	switch v := e.(type) {
	case pVar:
		return logic.V(v.name), nil
	case pIRI:
		return logic.CIRI(v.iri), nil
	case pString:
		return logic.C(rdf.NewLiteral(v.s)), nil
	case pNum:
		n := int64(v.v)
		if float64(n) != v.v {
			return logic.Term{}, fmt.Errorf("rulelang: rule %s: non-integer constant %g in %s position", rb.display(), v.v, pos)
		}
		return logic.C(rdf.Integer(n)), nil
	default:
		return logic.Term{}, fmt.Errorf("rulelang: rule %s: invalid %s term %T", rb.display(), pos, e)
	}
}

func (rb *ruleBuilder) timeTerm(e pExpr) (logic.TimeTerm, error) {
	switch v := e.(type) {
	case pVar:
		return logic.TV(v.name), nil
	case pInterval:
		return logic.TC(v.iv), nil
	case pCall:
		if v.name != "intersect" && v.name != "span" || len(v.args) != 2 {
			return logic.TimeTerm{}, fmt.Errorf("rulelang: rule %s: invalid time expression %s", rb.display(), v.name)
		}
		l, err := rb.timeTerm(v.args[0])
		if err != nil {
			return logic.TimeTerm{}, err
		}
		r, err := rb.timeTerm(v.args[1])
		if err != nil {
			return logic.TimeTerm{}, err
		}
		if v.name == "intersect" {
			return logic.TIntersect(l, r), nil
		}
		return logic.TSpan(l, r), nil
	default:
		return logic.TimeTerm{}, fmt.Errorf("rulelang: rule %s: invalid time term %T", rb.display(), e)
	}
}

// exprClass classifies one side of an infix comparison.
type exprClass uint8

const (
	classObj exprClass = iota
	classTime
	classNum
)

func (rb *ruleBuilder) classOf(e pExpr) exprClass {
	switch v := e.(type) {
	case pVar:
		if rb.timeVars[v.name] {
			return classTime
		}
		return classObj
	case pInterval:
		return classTime
	case pNum:
		return classNum
	case pBin:
		return classNum
	case pCall:
		if v.name == "intersect" || v.name == "span" {
			return classTime
		}
		return classNum // start/end/duration
	default:
		return classObj
	}
}

// cond resolves a parsed condition.
func (rb *ruleBuilder) cond(c pCond) (logic.Condition, error) {
	if c.call != nil {
		rels, ok := allenRelSet(c.call.name)
		if !ok {
			return nil, fmt.Errorf("rulelang: rule %s: unknown temporal predicate %q", rb.display(), c.call.name)
		}
		l, err := rb.timeTerm(c.call.args[0])
		if err != nil {
			return nil, err
		}
		r, err := rb.timeTerm(c.call.args[1])
		if err != nil {
			return nil, err
		}
		return logic.AllenCond{Name: c.call.name, Rels: rels, L: l, R: r}, nil
	}

	lc, rc := rb.classOf(c.l), rb.classOf(c.r)
	switch {
	case lc == classTime && rc == classTime:
		// t = t' / t != t' become Allen equality conditions.
		l, err := rb.timeTerm(c.l)
		if err != nil {
			return nil, err
		}
		r, err := rb.timeTerm(c.r)
		if err != nil {
			return nil, err
		}
		switch c.op {
		case logic.EQ:
			return logic.AllenCond{Name: "equals", Rels: temporal.NewRelationSet(temporal.Equals), L: l, R: r}, nil
		case logic.NE:
			return logic.AllenCond{Name: "notEquals", Rels: temporal.FullSet &^ temporal.NewRelationSet(temporal.Equals), L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("rulelang: rule %s: ordered comparison of intervals; use Allen relations instead", rb.display())
		}
	case lc == classObj && rc == classObj:
		l, err := rb.objTerm(c.l, "comparison")
		if err != nil {
			return nil, err
		}
		r, err := rb.objTerm(c.r, "comparison")
		if err != nil {
			return nil, err
		}
		return logic.CompareCond{Op: c.op, L: l, R: r}, nil
	default:
		// Mixed or numeric: arithmetic comparison.
		l, err := rb.numExpr(c.l)
		if err != nil {
			return nil, err
		}
		r, err := rb.numExpr(c.r)
		if err != nil {
			return nil, err
		}
		return logic.ArithCond{Op: c.op, L: l, R: r}, nil
	}
}

func (rb *ruleBuilder) numExpr(e pExpr) (logic.NumExpr, error) {
	switch v := e.(type) {
	case pNum:
		n := int64(v.v)
		if float64(n) != v.v {
			return nil, fmt.Errorf("rulelang: rule %s: non-integer %g in arithmetic", rb.display(), v.v)
		}
		return logic.NumConst(n), nil
	case pBin:
		l, err := rb.numExpr(v.l)
		if err != nil {
			return nil, err
		}
		r, err := rb.numExpr(v.r)
		if err != nil {
			return nil, err
		}
		return logic.NumBin{Op: v.op, L: l, R: r}, nil
	case pVar:
		if rb.timeVars[v.name] {
			// Bare time variable in numeric context denotes its start.
			return logic.TimeNum{Acc: logic.AccStart, T: logic.TV(v.name)}, nil
		}
		return logic.ObjNum{T: logic.V(v.name)}, nil
	case pInterval:
		return logic.TimeNum{Acc: logic.AccStart, T: logic.TC(v.iv)}, nil
	case pCall:
		switch v.name {
		case "start", "end", "duration":
			t, err := rb.timeTerm(v.args[0])
			if err != nil {
				return nil, err
			}
			acc := map[string]logic.TimeAccessor{
				"start": logic.AccStart, "end": logic.AccEnd, "duration": logic.AccDuration,
			}[v.name]
			return logic.TimeNum{Acc: acc, T: t}, nil
		default:
			return nil, fmt.Errorf("rulelang: rule %s: %q is not numeric", rb.display(), v.name)
		}
	case pIRI:
		return logic.ObjNum{T: logic.CIRI(v.iri)}, nil
	default:
		return nil, fmt.Errorf("rulelang: rule %s: invalid numeric expression %T", rb.display(), e)
	}
}

// Format renders a program back to parseable surface syntax, one rule per
// line. Weights print as "w = inf" for hard rules.
func Format(p *logic.Program) string {
	out := ""
	for _, r := range p.Rules {
		if r.Name != "" {
			out += r.Name + ": "
		}
		out += r.String() + "\n"
	}
	return out
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) *logic.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// HardWeight is the weight of hard (deterministic) formulas.
var HardWeight = math.Inf(1)
