package logic

// Compiled-grounding support: variables numbered into dense slots,
// slice-indexed binding frames over dictionary codes, and conditions
// lowered to closures. The grounder compiles each rule once per phase
// and then joins over Frames instead of map[string]-keyed Bindings —
// the per-matched-quad map churn this replaces was the join's dominant
// constant factor.

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// SlotMap numbers a rule's variables into dense slots. Object variables
// and time variables live in separate spaces (they are separate maps in
// Binding too). Slots are assigned in first-appearance order over the
// body atoms in written order, so the numbering is independent of the
// join plan.
type SlotMap struct {
	objs  map[string]int
	times map[string]int
}

// BodySlots builds the slot map of a rule body.
func BodySlots(r *Rule) *SlotMap {
	sm := &SlotMap{objs: make(map[string]int), times: make(map[string]int)}
	var scratch []string
	for _, a := range r.Body {
		for _, t := range [3]Term{a.S, a.P, a.O} {
			if t.IsVar() {
				if _, ok := sm.objs[t.Var]; !ok {
					sm.objs[t.Var] = len(sm.objs)
				}
			}
		}
		scratch = a.T.Vars(scratch[:0])
		for _, v := range scratch {
			if _, ok := sm.times[v]; !ok {
				sm.times[v] = len(sm.times)
			}
		}
	}
	return sm
}

// ObjSlot returns the slot of an object variable.
func (sm *SlotMap) ObjSlot(v string) (int, bool) {
	s, ok := sm.objs[v]
	return s, ok
}

// TimeSlot returns the slot of a time variable.
func (sm *SlotMap) TimeSlot(v string) (int, bool) {
	s, ok := sm.times[v]
	return s, ok
}

// NumObjs returns the number of object-variable slots.
func (sm *SlotMap) NumObjs() int { return len(sm.objs) }

// NumTimes returns the number of time-variable slots.
func (sm *SlotMap) NumTimes() int { return len(sm.times) }

// Frame is the compiled join's binding: object slots hold dictionary
// codes (0 = unbound; real codes start at 1), time slots hold intervals
// with a parallel bound-bit slice. Which dictionary the codes come from
// is the caller's contract — the grounder binds its atom-table codes.
type Frame struct {
	Objs    []uint32
	Times   []temporal.Interval
	TimeSet []bool
}

// NewFrame returns an empty frame sized for the slot map.
func NewFrame(sm *SlotMap) *Frame {
	return &Frame{
		Objs:    make([]uint32, sm.NumObjs()),
		Times:   make([]temporal.Interval, sm.NumTimes()),
		TimeSet: make([]bool, sm.NumTimes()),
	}
}

// TimeProgram evaluates a compiled time term against a frame; ok is
// false when a variable is unbound or an intersection is empty,
// mirroring Binding.ResolveTime exactly.
type TimeProgram func(*Frame) (temporal.Interval, bool)

// CompileTime lowers a time term to a closure over frames. Variables
// absent from the slot map (possible only in rule heads) compile to an
// always-unbound program, matching ResolveTime on a binding that never
// assigns them.
func CompileTime(t TimeTerm, sm *SlotMap) TimeProgram {
	switch t.Kind {
	case TimeVar:
		slot, ok := sm.TimeSlot(t.Var)
		if !ok {
			return timeMiss
		}
		return func(fr *Frame) (temporal.Interval, bool) {
			return fr.Times[slot], fr.TimeSet[slot]
		}
	case TimeConst:
		iv := t.Const
		return func(*Frame) (temporal.Interval, bool) { return iv, true }
	case TimeIntersect:
		l, r := CompileTime(*t.L, sm), CompileTime(*t.R, sm)
		return func(fr *Frame) (temporal.Interval, bool) {
			lv, ok := l(fr)
			if !ok {
				return temporal.Interval{}, false
			}
			rv, ok := r(fr)
			if !ok {
				return temporal.Interval{}, false
			}
			return lv.Intersect(rv)
		}
	case TimeSpan:
		l, r := CompileTime(*t.L, sm), CompileTime(*t.R, sm)
		return func(fr *Frame) (temporal.Interval, bool) {
			lv, ok := l(fr)
			if !ok {
				return temporal.Interval{}, false
			}
			rv, ok := r(fr)
			if !ok {
				return temporal.Interval{}, false
			}
			return lv.Span(rv), true
		}
	default:
		return timeMiss
	}
}

func timeMiss(*Frame) (temporal.Interval, bool) { return temporal.Interval{}, false }

// TermDecoder resolves a dictionary code bound in a frame back to its
// RDF term — the grounder supplies its atom-table dictionary. Only the
// ordered and numeric comparisons need it; equality runs on codes alone.
type TermDecoder func(uint32) rdf.Term

// TermEncoder resolves a constant RDF term to the code space frames bind
// in; ok is false for terms absent from the dictionary, which therefore
// cannot equal any bound variable.
type TermEncoder func(rdf.Term) (uint32, bool)

// CompiledCond is a condition lowered against a slot map, evaluated on a
// frame with the same semantics (including error cases) as
// Condition.Eval on the equivalent binding.
type CompiledCond func(*Frame) (bool, error)

// CompileCondition lowers a condition to a closure over frames. Because
// constants are encoded at compile time, the result is only valid while
// the encoder's dictionary is frozen — the grounder compiles per phase.
func CompileCondition(c Condition, sm *SlotMap, dec TermDecoder, enc TermEncoder) (CompiledCond, error) {
	switch c := c.(type) {
	case AllenCond:
		l, r := CompileTime(c.L, sm), CompileTime(c.R, sm)
		rels := c.Rels
		return func(fr *Frame) (bool, error) {
			lv, ok := l(fr)
			if !ok {
				return false, fmt.Errorf("logic: unbound time term %s in %s", c.L, c)
			}
			rv, ok := r(fr)
			if !ok {
				return false, fmt.Errorf("logic: unbound time term %s in %s", c.R, c)
			}
			return rels.Has(temporal.RelationBetween(lv, rv)), nil
		}, nil
	case CompareCond:
		return compileCompare(c, sm, dec, enc)
	case ArithCond:
		l, err := compileNum(c.L, sm, dec)
		if err != nil {
			return nil, err
		}
		r, err := compileNum(c.R, sm, dec)
		if err != nil {
			return nil, err
		}
		op := c.Op
		return func(fr *Frame) (bool, error) {
			lv, err := l(fr)
			if err != nil {
				return false, err
			}
			rv, err := r(fr)
			if err != nil {
				return false, err
			}
			return op.applyInt(lv, rv), nil
		}, nil
	default:
		// Unknown condition types fall back to map bindings; none exist
		// today, but a third-party Condition must not silently misground.
		return nil, fmt.Errorf("logic: cannot compile condition %s", c)
	}
}

// codeGetter produces the frame code of one comparison side; ok is false
// when a constant is absent from the dictionary (it then equals nothing
// bound). Unbound variables report an error through the returned term
// getter instead — they indicate a scheduling bug, like legacy Eval.
func compileCompare(c CompareCond, sm *SlotMap, dec TermDecoder, enc TermEncoder) (CompiledCond, error) {
	type side struct {
		slot int    // -1 for constants
		code uint32 // constant's code; 0 when absent from the dictionary
		term Term
	}
	lower := func(t Term) (side, error) {
		if t.IsVar() {
			slot, ok := sm.ObjSlot(t.Var)
			if !ok {
				return side{}, fmt.Errorf("logic: unbound term %s in %s", t, c)
			}
			return side{slot: slot, term: t}, nil
		}
		code, _ := enc(t.Const)
		return side{slot: -1, code: code, term: t}, nil
	}
	l, err := lower(c.L)
	if err != nil {
		return nil, err
	}
	r, err := lower(c.R)
	if err != nil {
		return nil, err
	}
	codeOf := func(s side, fr *Frame) (uint32, error) {
		if s.slot < 0 {
			return s.code, nil
		}
		code := fr.Objs[s.slot]
		if code == 0 {
			return 0, fmt.Errorf("logic: unbound term %s in %s", s.term, c)
		}
		return code, nil
	}
	switch c.Op {
	case EQ, NE:
		// Codes are unique per term, so code equality is term equality. A
		// constant absent from the dictionary (code 0) can never equal a
		// bound variable's code (always >= 1) — and two such constants
		// compare by term below, at compile time.
		if l.slot < 0 && r.slot < 0 {
			res := l.term.Const == r.term.Const
			if c.Op == NE {
				res = !res
			}
			return func(*Frame) (bool, error) { return res, nil }, nil
		}
		eq := c.Op == EQ
		return func(fr *Frame) (bool, error) {
			lc, err := codeOf(l, fr)
			if err != nil {
				return false, err
			}
			rc, err := codeOf(r, fr)
			if err != nil {
				return false, err
			}
			return (lc == rc) == eq, nil
		}, nil
	default:
		termOf := func(s side, fr *Frame) (rdf.Term, error) {
			if s.slot < 0 {
				return s.term.Const, nil
			}
			code, err := codeOf(s, fr)
			if err != nil {
				return rdf.Term{}, err
			}
			return dec(code), nil
		}
		op := c.Op
		return func(fr *Frame) (bool, error) {
			lt, err := termOf(l, fr)
			if err != nil {
				return false, err
			}
			rt, err := termOf(r, fr)
			if err != nil {
				return false, err
			}
			ln, lerr := termNumber(lt)
			rn, rerr := termNumber(rt)
			if lerr == nil && rerr == nil {
				return op.applyInt(ln, rn), nil
			}
			return op.applyInt(int64(compareStrings(lt.Value, rt.Value)), 0), nil
		}, nil
	}
}

type numProgram func(*Frame) (int64, error)

func compileNum(e NumExpr, sm *SlotMap, dec TermDecoder) (numProgram, error) {
	switch e := e.(type) {
	case NumConst:
		v := int64(e)
		return func(*Frame) (int64, error) { return v, nil }, nil
	case TimeNum:
		tp := CompileTime(e.T, sm)
		acc := e.Acc
		return func(fr *Frame) (int64, error) {
			iv, ok := tp(fr)
			if !ok {
				return 0, fmt.Errorf("logic: unbound time term %s", e.T)
			}
			switch acc {
			case AccStart:
				return iv.Start, nil
			case AccEnd:
				return iv.End, nil
			case AccDuration:
				return iv.Duration(), nil
			default:
				return 0, fmt.Errorf("logic: unknown time accessor %d", acc)
			}
		}, nil
	case ObjNum:
		if !e.T.IsVar() {
			t := e.T.Const
			return func(*Frame) (int64, error) { return termNumber(t) }, nil
		}
		slot, ok := sm.ObjSlot(e.T.Var)
		if !ok {
			return nil, fmt.Errorf("logic: unbound term %s", e.T)
		}
		return func(fr *Frame) (int64, error) {
			code := fr.Objs[slot]
			if code == 0 {
				return 0, fmt.Errorf("logic: unbound term %s", e.T)
			}
			return termNumber(dec(code))
		}, nil
	case NumBin:
		l, err := compileNum(e.L, sm, dec)
		if err != nil {
			return nil, err
		}
		r, err := compileNum(e.R, sm, dec)
		if err != nil {
			return nil, err
		}
		add := e.Op == NumAdd
		return func(fr *Frame) (int64, error) {
			lv, err := l(fr)
			if err != nil {
				return 0, err
			}
			rv, err := r(fr)
			if err != nil {
				return 0, err
			}
			if add {
				return lv + rv, nil
			}
			return lv - rv, nil
		}, nil
	default:
		return nil, fmt.Errorf("logic: cannot compile numeric expression %s", e)
	}
}
