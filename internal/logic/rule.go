package logic

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HeadKind discriminates rule heads.
type HeadKind uint8

const (
	// HeadAtom derives a new quad (inference rules f1–f3).
	HeadAtom HeadKind = iota
	// HeadCond requires a condition to hold (constraints c1–c3: the body
	// matching forces before(t,t') or y = z).
	HeadCond
	// HeadFalse is falsum: the body must not match (denial constraints).
	HeadFalse
)

// Head is the consequent of a rule.
type Head struct {
	Kind HeadKind
	Atom QuadAtom  // valid when Kind == HeadAtom
	Cond Condition // valid when Kind == HeadCond
}

// String renders the head.
func (h Head) String() string {
	switch h.Kind {
	case HeadAtom:
		return h.Atom.String()
	case HeadCond:
		return h.Cond.String()
	default:
		return "false"
	}
}

// Rule is a weighted temporal formula Body ∧ Conds → Head. A Rule with an
// atom head is an inference rule; with a condition or falsum head it is a
// constraint. Weight = +Inf marks a hard (deterministic) formula.
type Rule struct {
	// Name identifies the rule in statistics and diagnostics (f1, c2, ...).
	Name string
	// Body is the conjunction of quad atoms to match against evidence.
	Body []QuadAtom
	// Conds are the numerical/Allen conditions conjoined with the body.
	Conds []Condition
	// Head is the consequent.
	Head Head
	// Weight is the formula weight; math.Inf(1) for hard formulas.
	Weight float64
}

// Hard reports whether the rule is deterministic (infinite weight).
func (r *Rule) Hard() bool { return math.IsInf(r.Weight, 1) }

// IsConstraint reports whether the rule restricts models rather than
// deriving facts (condition or falsum head).
func (r *Rule) IsConstraint() bool { return r.Head.Kind != HeadAtom }

// BodyVars returns the distinct variables bound by matching the body
// atoms, in first-appearance order.
func (r *Rule) BodyVars() []string {
	var vs []string
	for _, a := range r.Body {
		vs = a.Vars(vs)
	}
	return dedupe(vs)
}

// Validate checks rule safety:
//   - the body must contain at least one quad atom;
//   - every variable in conditions and head must occur in the body
//     (range restriction), so grounding the body grounds everything;
//   - weights must not be NaN or -Inf; soft weights must be positive.
func (r *Rule) Validate() error {
	if len(r.Body) == 0 {
		return fmt.Errorf("logic: rule %s: empty body", r.display())
	}
	bound := make(map[string]bool)
	for _, v := range r.BodyVars() {
		bound[v] = true
	}
	check := func(vs []string, where string) error {
		for _, v := range vs {
			if !bound[v] {
				return fmt.Errorf("logic: rule %s: unsafe variable %q in %s (not bound by the body)", r.display(), v, where)
			}
		}
		return nil
	}
	for i, c := range r.Conds {
		if err := check(c.CondVars(nil), fmt.Sprintf("condition %d (%s)", i+1, c)); err != nil {
			return err
		}
	}
	switch r.Head.Kind {
	case HeadAtom:
		if err := check(r.Head.Atom.Vars(nil), "head"); err != nil {
			return err
		}
	case HeadCond:
		if r.Head.Cond == nil {
			return fmt.Errorf("logic: rule %s: nil condition head", r.display())
		}
		if err := check(r.Head.Cond.CondVars(nil), "head"); err != nil {
			return err
		}
	}
	switch {
	case math.IsNaN(r.Weight):
		return fmt.Errorf("logic: rule %s: NaN weight", r.display())
	case math.IsInf(r.Weight, -1):
		return fmt.Errorf("logic: rule %s: -Inf weight", r.display())
	case !r.Hard() && r.Weight <= 0:
		return fmt.Errorf("logic: rule %s: non-positive soft weight %g", r.display(), r.Weight)
	}
	return nil
}

func (r *Rule) display() string {
	if r.Name != "" {
		return r.Name
	}
	return "<anonymous>"
}

// String renders the rule in the surface syntax accepted by the rulelang
// parser.
func (r *Rule) String() string {
	var b strings.Builder
	for i, a := range r.Body {
		if i > 0 {
			b.WriteString(" ^ ")
		}
		b.WriteString(a.String())
	}
	for _, c := range r.Conds {
		b.WriteString(" ^ ")
		b.WriteString(c.String())
	}
	b.WriteString(" -> ")
	b.WriteString(r.Head.String())
	if r.Hard() {
		b.WriteString(" w = inf")
	} else {
		b.WriteString(" w = ")
		b.WriteString(strconv.FormatFloat(r.Weight, 'g', -1, 64))
	}
	return b.String()
}

// Program is a set of rules and constraints with stable order.
type Program struct {
	Rules []*Rule
}

// Validate validates every rule.
func (p *Program) Validate() error {
	names := make(map[string]bool)
	for i, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i+1, err)
		}
		if r.Name != "" {
			if names[r.Name] {
				return fmt.Errorf("rule %d: duplicate rule name %q", i+1, r.Name)
			}
			names[r.Name] = true
		}
	}
	return nil
}

// InferenceRules returns the rules deriving new facts.
func (p *Program) InferenceRules() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if !r.IsConstraint() {
			out = append(out, r)
		}
	}
	return out
}

// Constraints returns the rules restricting models.
func (p *Program) Constraints() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.IsConstraint() {
			out = append(out, r)
		}
	}
	return out
}

// PredicatesUsed returns the distinct constant predicate IRIs mentioned
// in body or head atoms, sorted. The UI uses this to cross-check rules
// against a dataset's predicates.
func (p *Program) PredicatesUsed() []string {
	set := make(map[string]bool)
	add := func(a QuadAtom) {
		if !a.P.IsVar() && a.P.Const.IsIRI() {
			set[a.P.Const.Value] = true
		}
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			add(a)
		}
		if r.Head.Kind == HeadAtom {
			add(r.Head.Atom)
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedupe(vs []string) []string {
	seen := make(map[string]bool, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
