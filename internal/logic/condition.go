package logic

import (
	"fmt"
	"strconv"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// CmpOp is a comparison operator for conditions.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

func (op CmpOp) String() string {
	if int(op) < len(cmpNames) {
		return cmpNames[op]
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// Negate returns the complementary operator (= ↔ !=, < ↔ >=, ...).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return op
}

func (op CmpOp) applyInt(l, r int64) bool {
	switch op {
	case EQ:
		return l == r
	case NE:
		return l != r
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	}
	return false
}

// Condition is a built-in predicate over bound variables, evaluated
// during grounding: Allen relations between intervals, (in)equality
// between object terms, and arithmetic comparisons.
type Condition interface {
	fmt.Stringer
	// Eval evaluates the condition under a binding. The error reports
	// unbound variables or non-numeric operands.
	Eval(b *Binding) (bool, error)
	// CondVars appends the condition's variables to dst.
	CondVars(dst []string) []string
}

// AllenCond asserts that the Allen relation between two time terms falls
// within Rels. Single relations (before, overlaps, ...) use a singleton
// set; the paper's "disjoint" predicate uses temporal.DisjointSet and the
// loose "overlap"/"intersects" uses temporal.IntersectsSet.
type AllenCond struct {
	// Name is the surface name of the predicate as written by the user
	// (e.g. "disjoint"); it is retained for printing.
	Name string
	Rels temporal.RelationSet
	L, R TimeTerm
}

// Eval implements Condition.
func (c AllenCond) Eval(b *Binding) (bool, error) {
	l, ok := b.ResolveTime(c.L)
	if !ok {
		return false, fmt.Errorf("logic: unbound time term %s in %s", c.L, c)
	}
	r, ok := b.ResolveTime(c.R)
	if !ok {
		return false, fmt.Errorf("logic: unbound time term %s in %s", c.R, c)
	}
	return c.Rels.Has(temporal.RelationBetween(l, r)), nil
}

// CondVars implements Condition.
func (c AllenCond) CondVars(dst []string) []string { return c.R.Vars(c.L.Vars(dst)) }

func (c AllenCond) String() string {
	name := c.Name
	if name == "" {
		rels := c.Rels.Relations()
		if len(rels) == 1 {
			name = rels[0].String()
		} else {
			name = c.Rels.String()
		}
	}
	return fmt.Sprintf("%s(%s, %s)", name, c.L, c.R)
}

// CompareCond asserts (in)equality between two object terms, as in
// constraint c2's "y != z".
type CompareCond struct {
	Op   CmpOp // EQ or NE
	L, R Term
}

// Eval implements Condition.
func (c CompareCond) Eval(b *Binding) (bool, error) {
	l, ok := b.ResolveTerm(c.L)
	if !ok {
		return false, fmt.Errorf("logic: unbound term %s in %s", c.L, c)
	}
	r, ok := b.ResolveTerm(c.R)
	if !ok {
		return false, fmt.Errorf("logic: unbound term %s in %s", c.R, c)
	}
	switch c.Op {
	case EQ:
		return l == r, nil
	case NE:
		return l != r, nil
	default:
		// Ordered comparison of terms: compare numerically when both
		// parse as integers, lexically otherwise.
		ln, lerr := termNumber(l)
		rn, rerr := termNumber(r)
		if lerr == nil && rerr == nil {
			return c.Op.applyInt(ln, rn), nil
		}
		return c.Op.applyInt(int64(compareStrings(l.Value, r.Value)), 0), nil
	}
}

func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// CondVars implements Condition.
func (c CompareCond) CondVars(dst []string) []string {
	if c.L.IsVar() {
		dst = append(dst, c.L.Var)
	}
	if c.R.IsVar() {
		dst = append(dst, c.R.Var)
	}
	return dst
}

func (c CompareCond) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// NumExpr is an integer-valued expression over the binding: interval
// endpoints, durations, numeric object values, constants, and sums and
// differences thereof.
type NumExpr interface {
	fmt.Stringer
	EvalNum(b *Binding) (int64, error)
	NumVars(dst []string) []string
}

// NumConst is an integer literal.
type NumConst int64

// EvalNum implements NumExpr.
func (n NumConst) EvalNum(*Binding) (int64, error) { return int64(n), nil }

// NumVars implements NumExpr.
func (n NumConst) NumVars(dst []string) []string { return dst }

func (n NumConst) String() string { return strconv.FormatInt(int64(n), 10) }

// TimeAccessor selects a numeric feature of a time term.
type TimeAccessor uint8

// Time accessors: start, end and duration of an interval. A bare time
// variable in numeric context denotes its start (the convention used
// when writing the paper's f3 as "start(t) - start(t') < 20").
const (
	AccStart TimeAccessor = iota
	AccEnd
	AccDuration
)

// TimeNum extracts a numeric feature from a time term.
type TimeNum struct {
	Acc TimeAccessor
	T   TimeTerm
}

// EvalNum implements NumExpr.
func (tn TimeNum) EvalNum(b *Binding) (int64, error) {
	iv, ok := b.ResolveTime(tn.T)
	if !ok {
		return 0, fmt.Errorf("logic: unbound time term %s", tn.T)
	}
	switch tn.Acc {
	case AccStart:
		return iv.Start, nil
	case AccEnd:
		return iv.End, nil
	case AccDuration:
		return iv.Duration(), nil
	default:
		return 0, fmt.Errorf("logic: unknown time accessor %d", tn.Acc)
	}
}

// NumVars implements NumExpr.
func (tn TimeNum) NumVars(dst []string) []string { return tn.T.Vars(dst) }

func (tn TimeNum) String() string {
	switch tn.Acc {
	case AccStart:
		return "start(" + tn.T.String() + ")"
	case AccEnd:
		return "end(" + tn.T.String() + ")"
	default:
		return "duration(" + tn.T.String() + ")"
	}
}

// ObjNum interprets an object term as an integer (e.g. a birthDate year
// literal).
type ObjNum struct{ T Term }

// EvalNum implements NumExpr.
func (on ObjNum) EvalNum(b *Binding) (int64, error) {
	t, ok := b.ResolveTerm(on.T)
	if !ok {
		return 0, fmt.Errorf("logic: unbound term %s", on.T)
	}
	return termNumber(t)
}

func termNumber(t rdf.Term) (int64, error) {
	v, err := strconv.ParseInt(t.Value, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("logic: term %s is not numeric", t)
	}
	return v, nil
}

// NumVars implements NumExpr.
func (on ObjNum) NumVars(dst []string) []string {
	if on.T.IsVar() {
		dst = append(dst, on.T.Var)
	}
	return dst
}

func (on ObjNum) String() string { return on.T.String() }

// NumBinOp is an arithmetic operator.
type NumBinOp uint8

// Arithmetic operators.
const (
	NumAdd NumBinOp = iota
	NumSub
)

// NumBin is a sum or difference of two numeric expressions.
type NumBin struct {
	Op   NumBinOp
	L, R NumExpr
}

// EvalNum implements NumExpr.
func (nb NumBin) EvalNum(b *Binding) (int64, error) {
	l, err := nb.L.EvalNum(b)
	if err != nil {
		return 0, err
	}
	r, err := nb.R.EvalNum(b)
	if err != nil {
		return 0, err
	}
	if nb.Op == NumAdd {
		return l + r, nil
	}
	return l - r, nil
}

// NumVars implements NumExpr.
func (nb NumBin) NumVars(dst []string) []string { return nb.R.NumVars(nb.L.NumVars(dst)) }

func (nb NumBin) String() string {
	op := " + "
	if nb.Op == NumSub {
		op = " - "
	}
	return nb.L.String() + op + nb.R.String()
}

// ArithCond compares two numeric expressions, as in the paper's
// "t' - t < 20" (age at career start below 20).
type ArithCond struct {
	Op   CmpOp
	L, R NumExpr
}

// Eval implements Condition.
func (c ArithCond) Eval(b *Binding) (bool, error) {
	l, err := c.L.EvalNum(b)
	if err != nil {
		return false, err
	}
	r, err := c.R.EvalNum(b)
	if err != nil {
		return false, err
	}
	return c.Op.applyInt(l, r), nil
}

// CondVars implements Condition.
func (c ArithCond) CondVars(dst []string) []string { return c.R.NumVars(c.L.NumVars(dst)) }

func (c ArithCond) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}
