// Package logic defines the weighted first-order representation that
// TeCoRe translates uncertain temporal knowledge graphs, inference rules
// and constraints into. A temporal fact becomes a ground quad atom
// quad(s, p, o, t); rules and constraints are weighted formulas
//
//	Body ∧ [Condition] → Head    (w ∈ ℝ ∪ {∞})
//
// where conditions are Allen interval relations, (in)equalities and
// arithmetic comparisons evaluated during grounding (the "numerical
// constraints" extension of MLNs from Chekol et al., ECAI 2016).
package logic

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// Term is an object-position term of a quad atom: either a variable
// (Var != "") or a constant RDF term.
type Term struct {
	Var   string
	Const rdf.Term
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(t rdf.Term) Term { return Term{Const: t} }

// CIRI returns a constant IRI term, the common case for predicates.
func CIRI(iri string) Term { return Term{Const: rdf.NewIRI(iri)} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term: variables print bare, constants compactly.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.IsIRI() && !bareNameSafe(t.Const.Value) {
		// The compact form would lex as a variable (x, t2) or not as a
		// single identifier at all; the angle form is unambiguous.
		return "<" + t.Const.Value + ">"
	}
	return t.Const.Compact()
}

// bareNameSafe reports whether an IRI can print bare in rule syntax and
// re-parse as the same constant: it must be a plain identifier (letters,
// digits, underscores — mirroring the rulelang lexer) and must not match
// the variable lexical rule (a lowercase letter plus digits/primes).
func bareNameSafe(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case r >= '0' && r <= '9' || r == '\'':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Variable shape: one lowercase letter, digits, then primes.
	if s[0] >= 'a' && s[0] <= 'z' {
		i := 1
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		}
		for ; i < len(s) && s[i] == '\''; i++ {
		}
		if i == len(s) {
			return false
		}
	}
	return true
}

// TimeTermKind discriminates time-position terms.
type TimeTermKind uint8

const (
	// TimeVar is an interval variable (t, t').
	TimeVar TimeTermKind = iota
	// TimeConst is an interval literal ([2000,2004]).
	TimeConst
	// TimeIntersect is the intersection expression t ∩ t' used in rule
	// heads (f2 of the paper derives livesIn over t ∩ t').
	TimeIntersect
	// TimeSpan is the spanning expression t ⊔ t' (smallest interval
	// covering both), offered as a companion combinator.
	TimeSpan
)

// TimeTerm is the temporal argument of a quad atom: a variable, an
// interval constant, or a binary interval expression over two sub-terms.
type TimeTerm struct {
	Kind  TimeTermKind
	Var   string
	Const temporal.Interval
	L, R  *TimeTerm
}

// TV returns a time variable.
func TV(name string) TimeTerm { return TimeTerm{Kind: TimeVar, Var: name} }

// TC returns a time constant.
func TC(iv temporal.Interval) TimeTerm { return TimeTerm{Kind: TimeConst, Const: iv} }

// TIntersect returns the intersection expression l ∩ r.
func TIntersect(l, r TimeTerm) TimeTerm {
	return TimeTerm{Kind: TimeIntersect, L: &l, R: &r}
}

// TSpan returns the span expression l ⊔ r.
func TSpan(l, r TimeTerm) TimeTerm {
	return TimeTerm{Kind: TimeSpan, L: &l, R: &r}
}

// IsVar reports whether the time term is a bare variable.
func (t TimeTerm) IsVar() bool { return t.Kind == TimeVar }

// String renders the time term.
func (t TimeTerm) String() string {
	switch t.Kind {
	case TimeVar:
		return t.Var
	case TimeConst:
		return t.Const.String()
	case TimeIntersect:
		return "intersect(" + t.L.String() + ", " + t.R.String() + ")"
	case TimeSpan:
		return "span(" + t.L.String() + ", " + t.R.String() + ")"
	default:
		return "?!time"
	}
}

// Vars appends the variables of the time term to dst.
func (t TimeTerm) Vars(dst []string) []string {
	switch t.Kind {
	case TimeVar:
		return append(dst, t.Var)
	case TimeIntersect, TimeSpan:
		return t.R.Vars(t.L.Vars(dst))
	default:
		return dst
	}
}

// Binding assigns constants to object variables and intervals to time
// variables during grounding.
type Binding struct {
	Objs  map[string]rdf.Term
	Times map[string]temporal.Interval
}

// NewBinding returns an empty binding.
func NewBinding() *Binding {
	return &Binding{Objs: make(map[string]rdf.Term), Times: make(map[string]temporal.Interval)}
}

// Clone deep-copies the binding.
func (b *Binding) Clone() *Binding {
	nb := NewBinding()
	for k, v := range b.Objs {
		nb.Objs[k] = v
	}
	for k, v := range b.Times {
		nb.Times[k] = v
	}
	return nb
}

// ResolveTerm returns the constant a term denotes under the binding; ok
// is false for unbound variables.
func (b *Binding) ResolveTerm(t Term) (rdf.Term, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b.Objs[t.Var]
	return v, ok
}

// ResolveTime evaluates a time term under the binding. ok is false when a
// variable is unbound or an intersection expression is empty.
func (b *Binding) ResolveTime(t TimeTerm) (temporal.Interval, bool) {
	switch t.Kind {
	case TimeVar:
		iv, ok := b.Times[t.Var]
		return iv, ok
	case TimeConst:
		return t.Const, true
	case TimeIntersect:
		l, ok := b.ResolveTime(*t.L)
		if !ok {
			return temporal.Interval{}, false
		}
		r, ok := b.ResolveTime(*t.R)
		if !ok {
			return temporal.Interval{}, false
		}
		return l.Intersect(r)
	case TimeSpan:
		l, ok := b.ResolveTime(*t.L)
		if !ok {
			return temporal.Interval{}, false
		}
		r, ok := b.ResolveTime(*t.R)
		if !ok {
			return temporal.Interval{}, false
		}
		return l.Span(r), true
	default:
		return temporal.Interval{}, false
	}
}

// QuadAtom is an atom over the quad predicate: quad(S, P, O, T).
type QuadAtom struct {
	S, P, O Term
	T       TimeTerm
}

// String renders the atom in the paper's syntax.
func (a QuadAtom) String() string {
	return fmt.Sprintf("quad(%s, %s, %s, %s)", a.S, a.P, a.O, a.T)
}

// Vars appends all variables of the atom to dst.
func (a QuadAtom) Vars(dst []string) []string {
	for _, t := range []Term{a.S, a.P, a.O} {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return a.T.Vars(dst)
}

// Resolve instantiates the atom under a binding into a ground fact key.
// ok is false when any variable is unbound or the time expression is
// empty.
func (a QuadAtom) Resolve(b *Binding) (rdf.FactKey, bool) {
	s, ok := b.ResolveTerm(a.S)
	if !ok {
		return rdf.FactKey{}, false
	}
	p, ok := b.ResolveTerm(a.P)
	if !ok {
		return rdf.FactKey{}, false
	}
	o, ok := b.ResolveTerm(a.O)
	if !ok {
		return rdf.FactKey{}, false
	}
	iv, ok := b.ResolveTime(a.T)
	if !ok {
		return rdf.FactKey{}, false
	}
	return rdf.FactKey{S: s, P: p, O: o, Interval: iv}, true
}
