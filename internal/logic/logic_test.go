package logic

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

func bindCR() *Binding {
	b := NewBinding()
	b.Objs["x"] = rdf.NewIRI("CR")
	b.Objs["y"] = rdf.NewIRI("Chelsea")
	b.Objs["z"] = rdf.NewIRI("Napoli")
	b.Times["t"] = temporal.MustNew(2000, 2004)
	b.Times["t'"] = temporal.MustNew(2001, 2003)
	return b
}

func TestTermString(t *testing.T) {
	if V("x").String() != "x" {
		t.Error("var term string")
	}
	if CIRI("coach").String() != "coach" {
		t.Error("const term string")
	}
	if !V("x").IsVar() || CIRI("coach").IsVar() {
		t.Error("IsVar wrong")
	}
}

func TestTimeTermResolve(t *testing.T) {
	b := bindCR()
	tests := []struct {
		tt     TimeTerm
		want   temporal.Interval
		wantOK bool
	}{
		{TV("t"), temporal.MustNew(2000, 2004), true},
		{TV("missing"), temporal.Interval{}, false},
		{TC(temporal.MustNew(1, 2)), temporal.MustNew(1, 2), true},
		{TIntersect(TV("t"), TV("t'")), temporal.MustNew(2001, 2003), true},
		{TIntersect(TC(temporal.MustNew(1, 2)), TC(temporal.MustNew(5, 6))), temporal.Interval{}, false},
		{TSpan(TV("t"), TC(temporal.MustNew(2010, 2012))), temporal.MustNew(2000, 2012), true},
		{TIntersect(TV("missing"), TV("t")), temporal.Interval{}, false},
		{TSpan(TV("t"), TV("missing")), temporal.Interval{}, false},
	}
	for i, tc := range tests {
		got, ok := b.ResolveTime(tc.tt)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("case %d (%s): got %v,%v want %v,%v", i, tc.tt, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestTimeTermVarsAndString(t *testing.T) {
	tt := TIntersect(TV("t"), TSpan(TV("t'"), TC(temporal.MustNew(1, 2))))
	vars := tt.Vars(nil)
	if len(vars) != 2 || vars[0] != "t" || vars[1] != "t'" {
		t.Errorf("Vars = %v", vars)
	}
	if s := tt.String(); !strings.Contains(s, "intersect") || !strings.Contains(s, "span") {
		t.Errorf("String = %q", s)
	}
}

func TestBindingClone(t *testing.T) {
	b := bindCR()
	c := b.Clone()
	c.Objs["x"] = rdf.NewIRI("other")
	c.Times["t"] = temporal.MustNew(1, 1)
	if b.Objs["x"].Value != "CR" || b.Times["t"] != temporal.MustNew(2000, 2004) {
		t.Error("Clone should not share maps")
	}
}

func TestQuadAtomResolve(t *testing.T) {
	a := QuadAtom{S: V("x"), P: CIRI("coach"), O: V("y"), T: TV("t")}
	key, ok := a.Resolve(bindCR())
	if !ok {
		t.Fatal("Resolve failed")
	}
	want := rdf.FactKey{S: rdf.NewIRI("CR"), P: rdf.NewIRI("coach"), O: rdf.NewIRI("Chelsea"),
		Interval: temporal.MustNew(2000, 2004)}
	if key != want {
		t.Errorf("key = %v, want %v", key, want)
	}
	if _, ok := (QuadAtom{S: V("nope"), P: CIRI("p"), O: V("y"), T: TV("t")}).Resolve(bindCR()); ok {
		t.Error("unbound subject should fail")
	}
	if _, ok := (QuadAtom{S: V("x"), P: CIRI("p"), O: V("nope"), T: TV("t")}).Resolve(bindCR()); ok {
		t.Error("unbound object should fail")
	}
	if _, ok := (QuadAtom{S: V("x"), P: V("nope"), O: V("y"), T: TV("t")}).Resolve(bindCR()); ok {
		t.Error("unbound predicate should fail")
	}
	if _, ok := (QuadAtom{S: V("x"), P: CIRI("p"), O: V("y"), T: TV("nope")}).Resolve(bindCR()); ok {
		t.Error("unbound time should fail")
	}
}

func TestQuadAtomString(t *testing.T) {
	a := QuadAtom{S: V("x"), P: CIRI("playsFor"), O: V("y"), T: TV("t")}
	if got := a.String(); got != "quad(x, playsFor, y, t)" {
		t.Errorf("String = %q", got)
	}
}

func TestAllenCondEval(t *testing.T) {
	b := bindCR() // t=[2000,2004], t'=[2001,2003]: t contains t'
	tests := []struct {
		c    AllenCond
		want bool
	}{
		{AllenCond{Rels: temporal.NewRelationSet(temporal.Contains), L: TV("t"), R: TV("t'")}, true},
		{AllenCond{Rels: temporal.NewRelationSet(temporal.Before), L: TV("t"), R: TV("t'")}, false},
		{AllenCond{Rels: temporal.IntersectsSet, L: TV("t"), R: TV("t'")}, true},
		{AllenCond{Rels: temporal.DisjointSet, L: TV("t"), R: TV("t'")}, false},
	}
	for i, tc := range tests {
		got, err := tc.c.Eval(b)
		if err != nil || got != tc.want {
			t.Errorf("case %d: got %v,%v want %v", i, got, err, tc.want)
		}
	}
	if _, err := (AllenCond{Rels: temporal.DisjointSet, L: TV("u"), R: TV("t")}).Eval(b); err == nil {
		t.Error("unbound left time should error")
	}
	if _, err := (AllenCond{Rels: temporal.DisjointSet, L: TV("t"), R: TV("u")}).Eval(b); err == nil {
		t.Error("unbound right time should error")
	}
}

func TestAllenCondString(t *testing.T) {
	c := AllenCond{Name: "disjoint", Rels: temporal.DisjointSet, L: TV("t"), R: TV("t'")}
	if got := c.String(); got != "disjoint(t, t')" {
		t.Errorf("String = %q", got)
	}
	c2 := AllenCond{Rels: temporal.NewRelationSet(temporal.Before), L: TV("t"), R: TV("t'")}
	if got := c2.String(); got != "before(t, t')" {
		t.Errorf("String = %q", got)
	}
}

func TestCompareCondEval(t *testing.T) {
	b := bindCR()
	eq := CompareCond{Op: EQ, L: V("y"), R: V("z")}
	if got, err := eq.Eval(b); err != nil || got {
		t.Errorf("Chelsea = Napoli evaluated %v,%v", got, err)
	}
	ne := CompareCond{Op: NE, L: V("y"), R: V("z")}
	if got, err := ne.Eval(b); err != nil || !got {
		t.Errorf("Chelsea != Napoli evaluated %v,%v", got, err)
	}
	same := CompareCond{Op: EQ, L: V("y"), R: CIRI("Chelsea")}
	if got, err := same.Eval(b); err != nil || !got {
		t.Errorf("y = Chelsea evaluated %v,%v", got, err)
	}
	if _, err := (CompareCond{Op: EQ, L: V("u"), R: V("y")}).Eval(b); err == nil {
		t.Error("unbound compare should error")
	}
	// Ordered comparison on numeric literals.
	nb := NewBinding()
	nb.Objs["a"] = rdf.Integer(3)
	nb.Objs["b"] = rdf.Integer(12)
	lt := CompareCond{Op: LT, L: V("a"), R: V("b")}
	if got, err := lt.Eval(nb); err != nil || !got {
		t.Errorf("3 < 12 evaluated %v,%v", got, err)
	}
	// Ordered comparison falls back to lexicographic for non-numbers.
	sb := NewBinding()
	sb.Objs["a"] = rdf.NewIRI("apple")
	sb.Objs["b"] = rdf.NewIRI("banana")
	if got, err := (CompareCond{Op: LT, L: V("a"), R: V("b")}).Eval(sb); err != nil || !got {
		t.Errorf("apple < banana evaluated %v,%v", got, err)
	}
}

func TestArithCondEval(t *testing.T) {
	b := NewBinding()
	b.Times["t"] = temporal.MustNew(1984, 1986)  // playsFor spell
	b.Times["t'"] = temporal.MustNew(1951, 2017) // birth interval
	// Age at spell start: start(t) - start(t') = 33.
	age := NumBin{Op: NumSub, L: TimeNum{Acc: AccStart, T: TV("t")}, R: TimeNum{Acc: AccStart, T: TV("t'")}}
	teen := ArithCond{Op: LT, L: age, R: NumConst(20)}
	if got, err := teen.Eval(b); err != nil || got {
		t.Errorf("33 < 20 evaluated %v,%v", got, err)
	}
	adult := ArithCond{Op: GE, L: age, R: NumConst(20)}
	if got, err := adult.Eval(b); err != nil || !got {
		t.Errorf("33 >= 20 evaluated %v,%v", got, err)
	}
	dur := ArithCond{Op: EQ, L: TimeNum{Acc: AccDuration, T: TV("t")}, R: NumConst(3)}
	if got, err := dur.Eval(b); err != nil || !got {
		t.Errorf("duration = 3 evaluated %v,%v", got, err)
	}
	end := ArithCond{Op: EQ, L: TimeNum{Acc: AccEnd, T: TV("t")}, R: NumConst(1986)}
	if got, err := end.Eval(b); err != nil || !got {
		t.Errorf("end = 1986 evaluated %v,%v", got, err)
	}
	add := ArithCond{Op: EQ, L: NumBin{Op: NumAdd, L: NumConst(2), R: NumConst(3)}, R: NumConst(5)}
	if got, err := add.Eval(b); err != nil || !got {
		t.Errorf("2+3=5 evaluated %v,%v", got, err)
	}
	if _, err := (ArithCond{Op: LT, L: TimeNum{Acc: AccStart, T: TV("u")}, R: NumConst(0)}).Eval(b); err == nil {
		t.Error("unbound time in arithmetic should error")
	}
}

func TestObjNumEval(t *testing.T) {
	b := NewBinding()
	b.Objs["z"] = rdf.Integer(1951)
	b.Objs["s"] = rdf.NewIRI("Chelsea")
	if v, err := (ObjNum{T: V("z")}).EvalNum(b); err != nil || v != 1951 {
		t.Errorf("ObjNum = %d,%v", v, err)
	}
	if _, err := (ObjNum{T: V("s")}).EvalNum(b); err == nil {
		t.Error("non-numeric term should error")
	}
	if _, err := (ObjNum{T: V("u")}).EvalNum(b); err == nil {
		t.Error("unbound term should error")
	}
}

func TestCmpOpNegate(t *testing.T) {
	pairs := [][2]CmpOp{{EQ, NE}, {LT, GE}, {LE, GT}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("Negate(%v) pair broken", p[0])
		}
	}
}

func TestCondVars(t *testing.T) {
	c := ArithCond{Op: LT,
		L: NumBin{Op: NumSub, L: TimeNum{Acc: AccStart, T: TV("t")}, R: ObjNum{T: V("z")}},
		R: NumConst(20)}
	vars := c.CondVars(nil)
	if len(vars) != 2 || vars[0] != "t" || vars[1] != "z" {
		t.Errorf("CondVars = %v", vars)
	}
}

func ruleF1() *Rule {
	return &Rule{
		Name:   "f1",
		Body:   []QuadAtom{{S: V("x"), P: CIRI("playsFor"), O: V("y"), T: TV("t")}},
		Head:   Head{Kind: HeadAtom, Atom: QuadAtom{S: V("x"), P: CIRI("worksFor"), O: V("y"), T: TV("t")}},
		Weight: 2.5,
	}
}

func constraintC2() *Rule {
	return &Rule{
		Name: "c2",
		Body: []QuadAtom{
			{S: V("x"), P: CIRI("coach"), O: V("y"), T: TV("t")},
			{S: V("x"), P: CIRI("coach"), O: V("z"), T: TV("t'")},
		},
		Conds: []Condition{CompareCond{Op: NE, L: V("y"), R: V("z")}},
		Head: Head{Kind: HeadCond, Cond: AllenCond{Name: "disjoint", Rels: temporal.DisjointSet,
			L: TV("t"), R: TV("t'")}},
		Weight: math.Inf(1),
	}
}

func TestRuleClassification(t *testing.T) {
	f1, c2 := ruleF1(), constraintC2()
	if f1.IsConstraint() || f1.Hard() {
		t.Error("f1 is a soft inference rule")
	}
	if !c2.IsConstraint() || !c2.Hard() {
		t.Error("c2 is a hard constraint")
	}
}

func TestRuleValidate(t *testing.T) {
	if err := ruleF1().Validate(); err != nil {
		t.Errorf("f1 invalid: %v", err)
	}
	if err := constraintC2().Validate(); err != nil {
		t.Errorf("c2 invalid: %v", err)
	}
	bad := []*Rule{
		{Name: "empty", Weight: 1},
		{Name: "unsafe-head",
			Body:   []QuadAtom{{S: V("x"), P: CIRI("p"), O: V("y"), T: TV("t")}},
			Head:   Head{Kind: HeadAtom, Atom: QuadAtom{S: V("w"), P: CIRI("q"), O: V("y"), T: TV("t")}},
			Weight: 1},
		{Name: "unsafe-cond",
			Body:   []QuadAtom{{S: V("x"), P: CIRI("p"), O: V("y"), T: TV("t")}},
			Conds:  []Condition{CompareCond{Op: NE, L: V("y"), R: V("z")}},
			Head:   Head{Kind: HeadFalse},
			Weight: 1},
		{Name: "nan",
			Body:   []QuadAtom{{S: V("x"), P: CIRI("p"), O: V("y"), T: TV("t")}},
			Head:   Head{Kind: HeadFalse},
			Weight: math.NaN()},
		{Name: "neg",
			Body:   []QuadAtom{{S: V("x"), P: CIRI("p"), O: V("y"), T: TV("t")}},
			Head:   Head{Kind: HeadFalse},
			Weight: -2},
		{Name: "nil-cond-head",
			Body:   []QuadAtom{{S: V("x"), P: CIRI("p"), O: V("y"), T: TV("t")}},
			Head:   Head{Kind: HeadCond},
			Weight: 1},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %s should be invalid", r.Name)
		}
	}
}

func TestRuleString(t *testing.T) {
	got := constraintC2().String()
	for _, want := range []string{"quad(x, coach, y, t)", "quad(x, coach, z, t')", "y != z", "disjoint(t, t')", "w = inf"} {
		if !strings.Contains(got, want) {
			t.Errorf("String missing %q: %s", want, got)
		}
	}
	if got := ruleF1().String(); !strings.Contains(got, "w = 2.5") {
		t.Errorf("weight missing: %s", got)
	}
}

func TestProgram(t *testing.T) {
	p := &Program{Rules: []*Rule{ruleF1(), constraintC2()}}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(p.InferenceRules()); got != 1 {
		t.Errorf("InferenceRules = %d", got)
	}
	if got := len(p.Constraints()); got != 1 {
		t.Errorf("Constraints = %d", got)
	}
	preds := p.PredicatesUsed()
	want := []string{"coach", "playsFor", "worksFor"}
	if len(preds) != len(want) {
		t.Fatalf("PredicatesUsed = %v", preds)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("PredicatesUsed[%d] = %q", i, preds[i])
		}
	}
}

func TestProgramDuplicateNames(t *testing.T) {
	a, b := ruleF1(), ruleF1()
	p := &Program{Rules: []*Rule{a, b}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-name error, got %v", err)
	}
}

func TestBodyVarsDedupe(t *testing.T) {
	c2 := constraintC2()
	vars := c2.BodyVars()
	want := []string{"x", "y", "t", "z", "t'"}
	if len(vars) != len(want) {
		t.Fatalf("BodyVars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("BodyVars[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
}

func TestHeadString(t *testing.T) {
	if (Head{Kind: HeadFalse}).String() != "false" {
		t.Error("falsum head string")
	}
}
