package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Record framing. Each journal record is appended as
//
//	uvarint payloadLen | payload | crc32c(payload) 4B LE
//
// with the payload
//
//	op 1B | uvarint epoch | uvarint factID |
//	[OpAdd only: subject, predicate, object terms |
//	 zig-zag varint start, end | confidence 8B LE]
//
// and each term encoded as kind(1B) + 3 length-prefixed strings (value,
// datatype, lang). Add records carry the full quad — a fresh insert, a
// revival and a confidence raise all replay through store.Add with that
// payload — so the log is self-contained: no dictionary state is needed
// to read it. Remove records carry only the fact id.
//
// The length prefix makes the log seekable record-to-record; the
// per-record CRC turns any torn or bit-flipped tail into a clean
// "longest valid prefix" cut at recovery.

var recordCRC = crc32.MakeTable(crc32.Castagnoli)

// maxRecordPayload bounds a single record; anything larger is corrupt
// framing, not data.
const maxRecordPayload = 1 << 28

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendTerm(b []byte, t rdf.Term) []byte {
	b = append(b, byte(t.Kind))
	b = appendString(b, t.Value)
	b = appendString(b, t.Datatype)
	return appendString(b, t.Lang)
}

// appendRecordPayload appends the unframed payload encoding of rec.
func appendRecordPayload(b []byte, rec store.JournalRecord) []byte {
	b = append(b, byte(rec.Change.Op))
	b = appendUvarint(b, uint64(rec.Change.Epoch))
	b = appendUvarint(b, uint64(rec.Change.ID))
	if rec.Change.Op == store.OpAdd {
		q := rec.Quad
		b = appendTerm(b, q.Subject)
		b = appendTerm(b, q.Predicate)
		b = appendTerm(b, q.Object)
		b = binary.AppendVarint(b, q.Interval.Start)
		b = binary.AppendVarint(b, q.Interval.End)
		var cb [8]byte
		binary.LittleEndian.PutUint64(cb[:], math.Float64bits(q.Confidence))
		b = append(b, cb[:]...)
	}
	return b
}

// appendFrame appends the length prefix, payload and CRC trailer to b.
func appendFrame(b, payload []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], crc32.Checksum(payload, recordCRC))
	return append(b, tb[:]...)
}

// appendRecord appends the framed encoding of rec to b.
func appendRecord(b []byte, rec store.JournalRecord) []byte {
	return appendFrame(b, appendRecordPayload(nil, rec))
}

// errTorn marks an incomplete, checksum-failing or unparseable record:
// the durable log ends just before it.
var errTorn = fmt.Errorf("wal: torn record")

type payloadReader struct {
	b   []byte
	off int
}

func (r *payloadReader) ReadByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errTorn
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *payloadReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, errTorn
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, errTorn
	}
	return v, nil
}

func (r *payloadReader) varint() (int64, error) {
	v, err := binary.ReadVarint(r)
	if err != nil {
		return 0, errTorn
	}
	return v, nil
}

func (r *payloadReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.off) {
		return "", errTorn
	}
	b, err := r.take(int(n))
	return string(b), err
}

func (r *payloadReader) term() (rdf.Term, error) {
	var t rdf.Term
	kindB, err := r.ReadByte()
	if err != nil {
		return t, err
	}
	if kindB > byte(rdf.Blank) {
		return t, errTorn
	}
	t.Kind = rdf.TermKind(kindB)
	if t.Value, err = r.str(); err != nil {
		return t, err
	}
	if t.Datatype, err = r.str(); err != nil {
		return t, err
	}
	t.Lang, err = r.str()
	return t, err
}

// decodeRecord parses the first framed record in data, returning the
// record and the number of bytes consumed. errTorn means the data ends
// in (or is corrupted at) this record: everything before it is the
// longest valid prefix.
func decodeRecord(data []byte) (store.JournalRecord, int, error) {
	var rec store.JournalRecord
	plen, n := binary.Uvarint(data)
	if n <= 0 || plen > maxRecordPayload {
		return rec, 0, errTorn
	}
	total := n + int(plen) + 4
	if total > len(data) {
		return rec, 0, errTorn
	}
	payload := data[n : n+int(plen)]
	want := binary.LittleEndian.Uint32(data[n+int(plen) : total])
	if crc32.Checksum(payload, recordCRC) != want {
		return rec, 0, errTorn
	}
	r := &payloadReader{b: payload}
	opB, err := r.ReadByte()
	if err != nil || opB > byte(store.OpRemove) {
		return rec, 0, errTorn
	}
	rec.Change.Op = store.Op(opB)
	epoch, err := r.uvarint()
	if err != nil {
		return rec, 0, errTorn
	}
	rec.Change.Epoch = store.Epoch(epoch)
	id, err := r.uvarint()
	if err != nil || id > math.MaxInt32 {
		return rec, 0, errTorn
	}
	rec.Change.ID = store.FactID(id)
	if rec.Change.Op == store.OpAdd {
		q := &rec.Quad
		if q.Subject, err = r.term(); err != nil {
			return rec, 0, errTorn
		}
		if q.Predicate, err = r.term(); err != nil {
			return rec, 0, errTorn
		}
		if q.Object, err = r.term(); err != nil {
			return rec, 0, errTorn
		}
		if q.Interval.Start, err = r.varint(); err != nil {
			return rec, 0, errTorn
		}
		if q.Interval.End, err = r.varint(); err != nil {
			return rec, 0, errTorn
		}
		cb, err := r.take(8)
		if err != nil {
			return rec, 0, errTorn
		}
		q.Confidence = math.Float64frombits(binary.LittleEndian.Uint64(cb))
	}
	if r.off != len(payload) {
		return rec, 0, errTorn // trailing garbage inside a "valid" frame
	}
	return rec, total, nil
}
