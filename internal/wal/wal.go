// Package wal gives the epoch-versioned store durability: an append-only
// write-ahead log of the change log plus periodic snapshot compaction,
// so a restarted session replays to its previous epoch instead of
// re-ingesting and cold-solving from nothing.
//
// A store directory holds
//
//	snapshot.tqs     TQS2 snapshot at some epoch watermark (atomic rename)
//	wal-<seq>.log    change-log segments appended after the watermark
//
// The write path follows the SSD guidance from the paper set: records
// are buffered and written in large sequential appends, fsync happens at
// explicit points (Sync, Checkpoint, Close) rather than per record, and
// compaction is explicit — Checkpoint rotates to a fresh segment,
// snapshots the store at a pinned epoch without stalling writers, and
// deletes every sealed segment the snapshot now covers.
//
// Recovery (Open) loads the snapshot, replays every segment record above
// the watermark in epoch order — verifying per-record CRCs, epoch
// contiguity and that each replayed mutation reproduces the recorded
// FactID and epoch — and truncates the log at the first torn or
// corrupted record, so a crash mid-write costs exactly the un-synced
// tail. FactIDs are stable across a snapshot/replay round trip, which
// keeps tombstone/revival identity — and every FactID-ordered
// determinism contract downstream — intact after a restart.
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/store"
)

// SnapshotFile is the name of the snapshot within a store directory.
const SnapshotFile = "snapshot.tqs"

const segPrefix = "wal-"

// Options tunes the log; the zero value is ready to use.
type Options struct {
	// FlushBytes is the buffered-append threshold: once the in-memory
	// tail reaches it, the buffer is written (not fsynced) to the
	// segment. Defaults to 1 MiB.
	FlushBytes int
}

// RecoveryStats reports what Open found and did.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot was present; Watermark
	// is its epoch (0 without one).
	SnapshotLoaded bool        `json:"snapshot_loaded"`
	Watermark      store.Epoch `json:"watermark"`
	// ReplayedRecords/ReplayedBytes count the WAL records applied above
	// the watermark; SkippedRecords the valid records at or below it
	// (already covered by the snapshot).
	ReplayedRecords int   `json:"replayed_records"`
	ReplayedBytes   int64 `json:"replayed_bytes"`
	SkippedRecords  int   `json:"skipped_records"`
	// TruncatedBytes is the torn/corrupt tail dropped at the first
	// invalid record, if any.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Epoch is the store epoch after replay.
	Epoch store.Epoch `json:"epoch"`
}

// Log is the durable journal of one store. It implements store.Journal:
// once attached (Open does this), every mutation's change-log append is
// mirrored into the log buffer under the store's write lock, and reaches
// disk at the next flush point.
//
// Lock order: Log methods never touch the store while holding the
// internal mutex (Append arrives already holding the store's write
// lock), so journaled writers and concurrent Flush/Sync/Checkpoint
// cannot deadlock.
type Log struct {
	dir   string
	st    *store.Store
	stats RecoveryStats

	mu         sync.Mutex
	f          *os.File
	seq        uint64
	buf        []byte
	scratch    []byte
	flushBytes int
	// lastEpoch is the newest buffered record; writtenEpoch the newest
	// written to the OS; durableEpoch the newest fsynced; snapEpoch the
	// durable snapshot's watermark.
	lastEpoch    store.Epoch
	writtenEpoch store.Epoch
	durableEpoch store.Epoch
	snapEpoch    store.Epoch
	err          error // first write error; the log is wedged after it
	closed       bool

	// ckptMu serializes checkpoints (each spans several mu sections).
	ckptMu sync.Mutex
}

// Open recovers the store persisted in dir — creating an empty one on
// first use — and returns the attached log. The returned store has the
// log installed as its journal and its compaction floor, so the caller
// mutates the store normally and calls Sync/Checkpoint for durability.
func Open(dir string, opts Options) (*Log, *store.Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, flushBytes: opts.FlushBytes}
	if l.flushBytes <= 0 {
		l.flushBytes = 1 << 20
	}
	// A crash between snapshot write and rename leaves a .tmp; it is
	// unreferenced, drop it.
	os.Remove(filepath.Join(dir, SnapshotFile+".tmp"))

	st, watermark, loaded, err := loadSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	l.st = st
	l.stats.SnapshotLoaded = loaded
	l.stats.Watermark = watermark
	l.snapEpoch = watermark

	seqs, err := segmentSeqs(dir)
	if err != nil {
		return nil, nil, err
	}
	if err := l.replay(seqs, watermark); err != nil {
		return nil, nil, err
	}
	l.stats.Epoch = st.Epoch()
	l.lastEpoch = l.stats.Epoch
	l.writtenEpoch = l.stats.Epoch
	l.durableEpoch = l.stats.Epoch

	// Appends always go to a fresh segment: sealed segments are never
	// reopened, so a past truncation can't interleave with new writes.
	l.seq = 1
	if n := len(seqs); n > 0 {
		l.seq = seqs[n-1] + 1
	}
	f, err := os.OpenFile(l.segPath(l.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	st.SetJournal(l)
	st.SetCompactFloor(l.DurableEpoch)
	return l, st, nil
}

// Attach makes an existing in-memory store durable in a fresh
// directory: it writes an initial snapshot at the store's current epoch
// and installs the log as the store's journal, so every later mutation
// is captured. The directory must not already hold a persisted store
// (recover that with Open instead), and the caller must not mutate the
// store concurrently with Attach — changes made before the journal is
// installed exist only in the snapshot.
func Attach(dir string, st *store.Store, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err == nil {
		return nil, fmt.Errorf("wal: %s already holds a persisted store", dir)
	}
	if seqs, err := segmentSeqs(dir); err != nil {
		return nil, err
	} else if len(seqs) > 0 {
		return nil, fmt.Errorf("wal: %s already holds log segments", dir)
	}
	l := &Log{dir: dir, st: st, flushBytes: opts.FlushBytes, seq: 1}
	if l.flushBytes <= 0 {
		l.flushBytes = 1 << 20
	}
	f, err := os.OpenFile(l.segPath(l.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	sn := st.Checkpoint()
	if err := l.writeSnapshot(sn); err != nil {
		f.Close()
		return nil, err
	}
	l.snapEpoch = sn.Epoch()
	l.lastEpoch = sn.Epoch()
	l.writtenEpoch = sn.Epoch()
	l.durableEpoch = sn.Epoch()
	l.stats = RecoveryStats{SnapshotLoaded: false, Watermark: sn.Epoch(), Epoch: sn.Epoch()}
	st.SetJournal(l)
	st.SetCompactFloor(l.DurableEpoch)
	return l, nil
}

func loadSnapshot(dir string) (*store.Store, store.Epoch, bool, error) {
	f, err := os.Open(filepath.Join(dir, SnapshotFile))
	if errors.Is(err, fs.ErrNotExist) {
		return store.New(), 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := store.Load(f)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	return st, st.Epoch(), true, nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016d.log", segPrefix, seq))
}

// segmentSeqs lists the segment sequence numbers in dir, ascending.
func segmentSeqs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, segPrefix+"%d.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replay applies every segment record above the watermark, verifying
// epoch contiguity and that each mutation reproduces the recorded id
// and epoch. The first torn record truncates its segment and deletes
// every later segment: the durable log is the longest valid prefix.
func (l *Log) replay(seqs []uint64, watermark store.Epoch) error {
	var lastSeen store.Epoch // newest record epoch seen, 0 before any
	for i, seq := range seqs {
		path := l.segPath(seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		off := 0
		for off < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				return l.truncateTail(seqs[i:], path, data, off)
			}
			e := rec.Change.Epoch
			if lastSeen != 0 && e != lastSeen+1 {
				return fmt.Errorf("wal: %s: epoch %d follows %d (log gap)", filepath.Base(path), e, lastSeen)
			}
			lastSeen = e
			if e > watermark {
				if err := l.apply(rec); err != nil {
					return fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
				}
				l.stats.ReplayedRecords++
				l.stats.ReplayedBytes += int64(n)
			} else {
				l.stats.SkippedRecords++
			}
			off += n
		}
	}
	return nil
}

// truncateTail cuts the torn segment at the end of its valid prefix and
// removes every later segment (unreachable once the epoch chain is cut).
func (l *Log) truncateTail(tail []uint64, path string, data []byte, off int) error {
	l.stats.TruncatedBytes = int64(len(data) - off)
	if err := os.Truncate(path, int64(off)); err != nil {
		return fmt.Errorf("wal: truncating torn log: %w", err)
	}
	for _, seq := range tail[1:] {
		stale := l.segPath(seq)
		if fi, err := os.Stat(stale); err == nil {
			l.stats.TruncatedBytes += fi.Size()
		}
		if err := os.Remove(stale); err != nil {
			return fmt.Errorf("wal: removing stale segment: %w", err)
		}
	}
	return nil
}

// apply replays one record, checking it reproduces the recorded outcome.
func (l *Log) apply(rec store.JournalRecord) error {
	st := l.st
	if e := st.Epoch(); rec.Change.Epoch != e+1 {
		return fmt.Errorf("record epoch %d does not follow store epoch %d", rec.Change.Epoch, e)
	}
	switch rec.Change.Op {
	case store.OpAdd:
		id, err := st.Add(rec.Quad)
		if err != nil {
			return fmt.Errorf("replaying add at epoch %d: %w", rec.Change.Epoch, err)
		}
		if id != rec.Change.ID {
			return fmt.Errorf("replayed add at epoch %d yielded fact %d, log says %d", rec.Change.Epoch, id, rec.Change.ID)
		}
	case store.OpRemove:
		if !st.RemoveID(rec.Change.ID) {
			return fmt.Errorf("replayed remove of fact %d at epoch %d was a no-op", rec.Change.ID, rec.Change.Epoch)
		}
	}
	if e := st.Epoch(); e != rec.Change.Epoch {
		return fmt.Errorf("store at epoch %d after replaying record for epoch %d", e, rec.Change.Epoch)
	}
	return nil
}

// Stats returns what recovery found.
func (l *Log) Stats() RecoveryStats { return l.stats }

// Dir returns the store directory.
func (l *Log) Dir() string { return l.dir }

// Append implements store.Journal. It is called under the store's write
// lock: the record is encoded into the in-memory tail and the tail is
// written through once it passes the flush threshold. Write errors wedge
// the log (recorded once, surfaced by Flush/Sync/Checkpoint/Close);
// in-memory mutations are never blocked on the disk.
func (l *Log) Append(rec store.JournalRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil || l.closed {
		return
	}
	l.scratch = appendRecordPayload(l.scratch[:0], rec)
	l.buf = appendFrame(l.buf, l.scratch)
	l.lastEpoch = rec.Change.Epoch
	if len(l.buf) >= l.flushBytes {
		l.flushLocked()
	}
}

func (l *Log) flushLocked() {
	if l.err != nil || len(l.buf) == 0 {
		return
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return
	}
	l.buf = l.buf[:0]
	l.writtenEpoch = l.lastEpoch
}

// Flush writes the buffered tail to the OS without fsyncing.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushLocked()
	return l.err
}

// Sync flushes and fsyncs the current segment, advancing the durable
// epoch: every change up to it survives a crash.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	l.flushLocked()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	l.durableEpoch = l.writtenEpoch
	return nil
}

// DurableEpoch returns the newest epoch guaranteed to survive a crash —
// covered by the fsynced log tail or by the snapshot. The store's
// CompactLog is clamped to this (Open registers it as the compaction
// floor), so the in-memory change log always still covers the un-synced
// suffix.
func (l *Log) DurableEpoch() store.Epoch {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapEpoch > l.durableEpoch {
		return l.snapEpoch
	}
	return l.durableEpoch
}

// rotate seals the current segment (flush + fsync) and starts the next.
func (l *Log) rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	f, err := os.OpenFile(l.segPath(l.seq+1), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		return l.err
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: %w", err)
		f.Close()
		return l.err
	}
	l.f = f
	l.seq++
	return nil
}

// Checkpoint compacts the log: it rotates to a fresh segment, pins an
// epoch-consistent copy of the store (a brief read-locked memcpy —
// ingest proceeds while the snapshot is encoded), writes it to
// snapshot.tqs with an atomic rename, and deletes every sealed segment
// the snapshot covers. After a successful checkpoint the directory holds
// the snapshot plus only the change tail appended since the pin.
func (l *Log) Checkpoint() error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	if err := l.rotate(); err != nil {
		return err
	}
	// Every record in a sealed segment now has epoch ≤ sn.Epoch():
	// rotation happened before the pin, and appends since go to the
	// fresh segment. Records in the fresh segment at or below the
	// watermark are skipped at recovery.
	sn := l.st.Checkpoint()
	if err := l.writeSnapshot(sn); err != nil {
		return err
	}

	l.mu.Lock()
	l.snapEpoch = sn.Epoch()
	cur := l.seq
	l.mu.Unlock()
	seqs, err := segmentSeqs(l.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq >= cur {
			continue
		}
		if err := os.Remove(l.segPath(seq)); err != nil {
			return fmt.Errorf("wal: dropping sealed segment: %w", err)
		}
	}
	return nil
}

// writeSnapshot encodes sn to snapshot.tqs via a temp file, fsync and
// atomic rename.
func (l *Log) writeSnapshot(sn *store.Snapshot) error {
	path := filepath.Join(l.dir, SnapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := sn.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(l.dir)
}

// syncDir fsyncs a directory so renames and unlinks are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close detaches the journal from the store, flushes and fsyncs the
// tail, and closes the segment. The store stays usable (non-durably)
// after Close.
func (l *Log) Close() error {
	// Detach before taking the internal mutex: SetJournal takes the
	// store's write lock, which journaled writers hold while calling
	// Append.
	l.st.SetJournal(nil)
	l.st.SetCompactFloor(nil)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: %w", cerr)
		l.err = err
	}
	return err
}
