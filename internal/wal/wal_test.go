package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/temporal"
)

func quad(i int, conf float64) rdf.Quad {
	return rdf.NewQuad(
		fmt.Sprintf("s/%03d", i%7),
		fmt.Sprintf("p/%d", i%3),
		fmt.Sprintf("o/%03d", i%11),
		temporal.Interval{Start: int64(i % 5), End: int64(i%5 + 3)},
		conf,
	)
}

// script applies a deterministic add/remove/revive/raise sequence and
// returns the graph after every epoch, indexed by epoch.
func script(t *testing.T, st *store.Store, steps int, seed int64) []rdf.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	graphs := []rdf.Graph{{}} // epoch 0: empty
	for len(graphs) <= steps {
		before := st.Epoch()
		switch rng.Intn(10) {
		case 0, 1: // remove a live fact, if any
			bound := st.IDBound()
			if bound == 0 {
				continue
			}
			st.RemoveID(store.FactID(rng.Intn(bound)))
		case 2: // confidence raise or duplicate no-op
			bound := st.IDBound()
			if bound == 0 {
				continue
			}
			q := st.Fact(store.FactID(rng.Intn(bound)))
			q.Confidence = rng.Float64()*0.98 + 0.01
			if _, err := st.Add(q); err != nil {
				t.Fatalf("re-add: %v", err)
			}
		default:
			if _, err := st.Add(quad(rng.Intn(60), rng.Float64()*0.98+0.01)); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
		if st.Epoch() == before {
			continue // no-op mutation, no epoch to record
		}
		graphs = append(graphs, st.Graph())
	}
	return graphs
}

func openOrFatal(t *testing.T, dir string) (*Log, *store.Store) {
	t.Helper()
	l, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, st
}

func TestRoundTripEmpty(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	if st.Epoch() != 0 || st.Len() != 0 {
		t.Fatalf("fresh store not empty: epoch %d len %d", st.Epoch(), st.Len())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st2 := openOrFatal(t, dir)
	defer l2.Close()
	if st2.Epoch() != 0 || st2.Len() != 0 {
		t.Fatalf("reopened store not empty: epoch %d len %d", st2.Epoch(), st2.Len())
	}
}

func TestReplayWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	graphs := script(t, st, 120, 7)
	want := graphs[len(graphs)-1]
	wantEpoch := st.Epoch()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st2 := openOrFatal(t, dir)
	defer l2.Close()
	if st2.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", st2.Epoch(), wantEpoch)
	}
	if got := st2.Graph(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered graph differs: %d facts vs %d", len(got), len(want))
	}
	if s := l2.Stats(); s.SnapshotLoaded || s.ReplayedRecords != int(wantEpoch) {
		t.Fatalf("stats %+v, want no snapshot and %d replayed", s, wantEpoch)
	}
}

func TestCheckpointAndReplaySuffix(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	script(t, st, 100, 21)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptEpoch := st.Epoch()
	script(t, st, 40, 22)
	want := st.Graph()
	wantEpoch := st.Epoch()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st2 := openOrFatal(t, dir)
	defer l2.Close()
	s := l2.Stats()
	if !s.SnapshotLoaded || s.Watermark < ckptEpoch-1 {
		// The checkpoint pin may land an epoch or two past the last
		// scripted step only if mutations raced it; here none do.
		t.Fatalf("stats %+v, want snapshot at %d", s, ckptEpoch)
	}
	if st2.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", st2.Epoch(), wantEpoch)
	}
	if got := st2.Graph(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered graph differs")
	}
	if s.ReplayedRecords != int(wantEpoch-s.Watermark) {
		t.Fatalf("replayed %d records, want %d", s.ReplayedRecords, wantEpoch-s.Watermark)
	}
}

// TestCheckpointDropsSealedSegments asserts compaction actually deletes:
// after a checkpoint plus reopen, only segments at or after the
// checkpoint's rotation remain.
func TestCheckpointDropsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	script(t, st, 80, 5)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := segmentSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("want exactly the post-rotation segment, have %v", seqs)
	}
}

// TestFactIDStability asserts ids — including tombstoned and revived
// ones — survive the snapshot+replay round trip, the property the
// solver's canonical ordering depends on.
func TestFactIDStability(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	script(t, st, 150, 33)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	script(t, st, 50, 34)
	bound := st.IDBound()
	type entry struct {
		q    rdf.Quad
		live bool
	}
	want := make([]entry, bound)
	for id := 0; id < bound; id++ {
		want[id] = entry{q: st.Fact(store.FactID(id)), live: st.Live(store.FactID(id))}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st2 := openOrFatal(t, dir)
	defer l2.Close()
	if st2.IDBound() != bound {
		t.Fatalf("id bound %d, want %d", st2.IDBound(), bound)
	}
	for id := 0; id < bound; id++ {
		got := entry{q: st2.Fact(store.FactID(id)), live: st2.Live(store.FactID(id))}
		if got != want[id] {
			t.Fatalf("fact %d differs after recovery:\n got %+v\nwant %+v", id, got, want[id])
		}
	}
}

// TestCrashPointRecovery is the crash-injection property suite: a
// recorded run's WAL is truncated at every byte boundary, and recovery
// must come back with the longest valid record prefix — epoch-exact
// against the graphs recorded during the run — never an error or a
// panic.
func TestCrashPointRecovery(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	graphs := script(t, st, 60, 99)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := segmentSeqs(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("segments: %v %v", seqs, err)
	}
	// Close syncs everything; a single segment holds the whole run.
	seg := filepath.Join(dir, fmt.Sprintf("%s%016d.log", segPrefix, seqs[0]))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "wal-0000000000000001.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, st2, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		e := int(st2.Epoch())
		if e >= len(graphs) {
			t.Fatalf("cut %d: recovered past the recorded run: epoch %d", cut, e)
		}
		if got := st2.Graph(); !reflect.DeepEqual(got, graphs[e]) {
			t.Fatalf("cut %d: graph at epoch %d differs from recording", cut, e)
		}
		// The recovered prefix must cover every fully present record:
		// a cut mid-record may only lose that record.
		if rem := len(data[:cut]) - replayableBytes(data[:cut]); rem < 0 {
			t.Fatalf("cut %d: inconsistent prefix accounting", cut)
		}
		l2.Close()
	}
}

// replayableBytes returns the byte length of the longest valid record
// prefix of data, computed independently of recovery.
func replayableBytes(data []byte) int {
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			break
		}
		off += n
	}
	return off
}

// TestCorruptByteRecovery flips individual bytes of a sealed log and
// asserts recovery still yields a valid prefix state, never a panic or
// a malformed store.
func TestCorruptByteRecovery(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	graphs := script(t, st, 40, 123)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := segmentSeqs(dir)
	seg := filepath.Join(dir, fmt.Sprintf("%s%016d.log", segPrefix, seqs[0]))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos += 7 { // sampled positions
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= flip
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, "wal-0000000000000001.log"), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			l2, st2, err := Open(cdir, Options{})
			if err != nil {
				// A flip that survives CRC into a structurally valid but
				// non-replayable record (or fakes an epoch gap) must fail
				// loudly — that is acceptable; silent misreplay is not.
				continue
			}
			e := int(st2.Epoch())
			if e >= len(graphs) {
				t.Fatalf("pos %d flip %x: recovered past the recording", pos, flip)
			}
			if got := st2.Graph(); !reflect.DeepEqual(got, graphs[e]) {
				t.Fatalf("pos %d flip %x: recovered state diverges from the recording", pos, flip)
			}
			l2.Close()
		}
	}
}

// TestSnapshotCorruptionFailsClosed asserts a damaged snapshot is
// reported, not silently half-loaded.
func TestSnapshotCorruptionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	script(t, st, 50, 77)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("recovery over a corrupt snapshot succeeded")
	}
}

// TestCompactFloorClamp asserts the store's log truncation never
// outruns the WAL's durable tail.
func TestCompactFloorClamp(t *testing.T) {
	dir := t.TempDir()
	l, st := openOrFatal(t, dir)
	defer l.Close()
	script(t, st, 30, 13)
	// Nothing synced yet: only buffered appends. The durable epoch is
	// whatever Open recovered (0), so compaction must be a no-op.
	st.CompactLog(st.Epoch())
	if c := st.CompactedEpoch(); c != 0 {
		t.Fatalf("change log compacted to %d past the durable tail 0", c)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st.CompactLog(st.Epoch())
	if c := st.CompactedEpoch(); c != st.Epoch() {
		t.Fatalf("compaction floor %d after sync, want %d", c, st.Epoch())
	}
}
