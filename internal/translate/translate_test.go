package translate

import (
	"strings"
	"testing"

	"repro/internal/ground"
	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
)

func figure1Store(t testing.TB) *store.Store {
	t.Helper()
	g, err := rdf.ParseGraphString(`
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	return st
}

const c2 = "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf"

func TestSolverNames(t *testing.T) {
	if SolverMLN.String() != "mln" || SolverPSL.String() != "psl" {
		t.Error("solver names wrong")
	}
	for name, want := range map[string]Solver{
		"mln": SolverMLN, "MLN": SolverMLN, "nrockit": SolverMLN, "rockit": SolverMLN,
		"psl": SolverPSL, "nPSL": SolverPSL,
	} {
		got, err := ParseSolver(name)
		if err != nil || got != want {
			t.Errorf("ParseSolver(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSolver("prolog"); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestValidateForPSLRejectsHardInference(t *testing.T) {
	hard := rulelang.MustParse("f: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = inf")
	if err := ValidateFor(SolverPSL, hard); err == nil {
		t.Error("PSL should reject hard inference rules")
	}
	if err := ValidateFor(SolverMLN, hard); err != nil {
		t.Errorf("MLN should accept hard inference rules: %v", err)
	}
	// Hard constraints are fine for both.
	cons := rulelang.MustParse(c2)
	if err := ValidateFor(SolverPSL, cons); err != nil {
		t.Errorf("PSL should accept hard constraints: %v", err)
	}
	// Soft inference rules are fine for both.
	soft := rulelang.MustParse("f: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
	if err := ValidateFor(SolverPSL, soft); err != nil {
		t.Errorf("PSL should accept soft inference rules: %v", err)
	}
}

func TestCheckPredicates(t *testing.T) {
	st := figure1Store(t)
	prog := rulelang.MustParse(`
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c9: quad(x, spouse, y, t) ^ quad(x, spouse, z, t') ^ y != z -> disjoint(t, t') w = inf
`)
	missing := CheckPredicates(st, prog)
	// playsFor present; worksFor (head-only), spouse absent.
	want := map[string]bool{"worksFor": true, "spouse": true}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v", missing)
	}
	for _, m := range missing {
		if !want[m] {
			t.Errorf("unexpected missing predicate %q", m)
		}
	}
}

func TestRunBothSolversAgreeOnFigure7(t *testing.T) {
	prog := rulelang.MustParse(c2)
	for _, solver := range []Solver{SolverMLN, SolverPSL} {
		out, err := Run(figure1Store(t), prog, solver, Options{})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if out.Solver != solver {
			t.Errorf("solver tag = %v", out.Solver)
		}
		removed := 0
		for i := 0; i < out.Grounder.Atoms().Len(); i++ {
			info := out.Grounder.Atoms().Info(ground.AtomID(i))
			if info.Evidence && !out.Truth[i] {
				removed++
				if !strings.Contains(info.Key.String(), "Napoli") {
					t.Errorf("%v removed %s, want only Napoli", solver, info.Key)
				}
			}
		}
		if removed != 1 {
			t.Errorf("%v removed %d facts, want 1", solver, removed)
		}
		if solver == SolverPSL && out.SoftValues == nil {
			t.Error("PSL output should carry soft values")
		}
		if solver == SolverMLN && out.MLN == nil {
			t.Error("MLN output should carry backend detail")
		}
	}
}

func TestRunRejectsInvalidProgramForSolver(t *testing.T) {
	prog := rulelang.MustParse("f: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = inf")
	if _, err := Run(figure1Store(t), prog, SolverPSL, Options{}); err == nil {
		t.Error("Run should propagate PSL expressivity errors")
	}
}
