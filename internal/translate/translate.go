// Package translate is the TeCoRe Translator: it takes an uncertain
// temporal knowledge graph, inference rules and constraints, verifies
// that the program adheres to the expressivity of the chosen solver, and
// runs MAP inference on the corresponding probabilistic-FOL backend
// (the MLN engine standing in for nRockIt, or the HL-MRF engine standing
// in for the nPSL solver). Additional ProbFOL backends can be integrated
// by implementing the same dispatch.
package translate

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/mln"
	"repro/internal/psl"
	"repro/internal/store"
)

// Solver selects the probabilistic-FOL backend.
type Solver uint8

const (
	// SolverMLN is Markov logic with numerical constraints (nRockIt):
	// exact boolean MAP, the more expressive but less scalable engine.
	SolverMLN Solver = iota
	// SolverPSL is probabilistic soft logic with the numerical extension
	// (nPSL): convex soft MAP plus rounding, the scalable engine.
	SolverPSL
	// SolverGreedy is the non-probabilistic greedy repair baseline: keep
	// facts strongest-first, skip constraint violators. Used for quality
	// comparisons against the MAP backends.
	SolverGreedy
)

// String returns "mln" or "psl".
func (s Solver) String() string {
	switch s {
	case SolverMLN:
		return "mln"
	case SolverPSL:
		return "psl"
	case SolverGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("solver(%d)", uint8(s))
	}
}

// ParseSolver resolves a solver name ("mln"/"nrockit", "psl"/"npsl").
func ParseSolver(name string) (Solver, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "mln", "nrockit", "rockit":
		return SolverMLN, nil
	case "psl", "npsl":
		return SolverPSL, nil
	case "greedy", "baseline":
		return SolverGreedy, nil
	}
	return 0, fmt.Errorf("translate: unknown solver %q (want mln, psl or greedy)", name)
}

// ValidateFor verifies the program against the solver's expressivity.
//
// The MLN backend accepts the full language. The PSL backend — following
// the paper's "PSL trades expressiveness for scalability" — requires
// inference rules (atom heads) to carry finite weights: a hard boolean
// implication has no exact hinge-loss counterpart, only constraints
// (condition or falsum heads, which ground to denial clauses) may be
// hard.
func ValidateFor(solver Solver, prog *logic.Program) error {
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("translate: %w", err)
	}
	if solver != SolverPSL {
		return nil
	}
	for _, r := range prog.Rules {
		if r.Head.Kind == logic.HeadAtom && r.Hard() {
			return fmt.Errorf("translate: rule %s: hard inference rules are outside PSL expressivity; give it a finite weight or use the MLN solver", displayName(r))
		}
	}
	return nil
}

func displayName(r *logic.Rule) string {
	if r.Name != "" {
		return r.Name
	}
	return r.String()
}

// CheckPredicates cross-checks the constant predicates mentioned by the
// program against those present in the data, returning the rule
// predicates with no matching facts. The Web UI surfaces these as likely
// typos.
func CheckPredicates(st *store.Store, prog *logic.Program) []string {
	present := make(map[string]bool)
	for _, ps := range st.Stats().Predicates {
		present[ps.Predicate] = true
	}
	var missing []string
	for _, p := range prog.PredicatesUsed() {
		if !present[p] {
			missing = append(missing, p)
		}
	}
	return missing
}

// Options bundles per-backend tuning.
type Options struct {
	// Parallelism bounds the worker pools across the whole solve
	// pipeline — grounding, local-search restarts, ADMM sweeps: 0 means
	// GOMAXPROCS, 1 forces the sequential path. Backend-specific
	// settings (MLN.Parallelism, PSL.Parallelism) take precedence when
	// non-zero. Results are identical at every setting.
	Parallelism int
	// LegacyGrounding forces the grounder's pre-compilation path
	// (boundness-ordered, string-keyed joins) instead of the
	// selectivity-planned compiled pipeline. Benchmark baseline and
	// differential-testing knob; results are identical either way.
	LegacyGrounding bool
	MLN             mln.Options
	PSL             psl.Options
}

// Output is the unified MAP result of either backend.
type Output struct {
	// Solver is the backend that produced the result.
	Solver Solver
	// Grounder exposes the atom table the truth vector indexes.
	Grounder *ground.Grounder
	// Clauses, when non-nil, is the full ground clause set of the solve.
	// The repair layer reads rule groundings from it instead of
	// re-joining the program; the incremental engine keeps it alive
	// across solves. Nil on the cutting-plane and greedy paths.
	Clauses *ground.ClauseSet
	// Truth is the boolean MAP state per atom id.
	Truth []bool
	// SoftValues holds PSL's soft truth values (nil for MLN).
	SoftValues []float64
	// MLN carries backend detail when Solver == SolverMLN.
	MLN *mln.Result
	// PSL carries backend detail when Solver == SolverPSL.
	PSL *psl.Result
	// Greedy carries backend detail when Solver == SolverGreedy.
	Greedy *baseline.Result
	// Runtime is the end-to-end inference time including grounding.
	Runtime time.Duration
}

// TruthDelta reports whether the solver produced Truth by a dirty-only
// merge over a maintained plan: every atom outside the plan's
// DirtyComps carries the previous solve's truth bit-for-bit. Always
// false for PSL and the baselines, which recompute the full state.
func (o *Output) TruthDelta() bool {
	return o.MLN != nil && o.MLN.TruthDelta
}

// Run validates the program for the solver and computes the MAP state
// over the store's evidence.
func Run(st *store.Store, prog *logic.Program, solver Solver, opts Options) (*Output, error) {
	if err := ValidateFor(solver, prog); err != nil {
		return nil, err
	}
	start := time.Now()
	if opts.MLN.Parallelism == 0 {
		opts.MLN.Parallelism = opts.Parallelism
	}
	if opts.PSL.Parallelism == 0 {
		opts.PSL.Parallelism = opts.Parallelism
	}
	g := ground.New(st)
	// The MLN and PSL backends re-set this from their own options; the
	// assignment here covers backends that do not manage parallelism
	// themselves (the greedy baseline grounds with this grounder as-is).
	g.Parallelism = opts.Parallelism
	g.Legacy = opts.LegacyGrounding
	out := &Output{Solver: solver, Grounder: g}
	switch solver {
	case SolverMLN:
		res, err := mln.MAP(g, prog, opts.MLN)
		if err != nil {
			return nil, err
		}
		if !res.HardSatisfied {
			return nil, fmt.Errorf("translate: MLN solver found no assignment satisfying the hard constraints")
		}
		out.MLN = res
		out.Truth = res.Truth
	case SolverPSL:
		res, err := psl.MAP(g, prog, opts.PSL)
		if err != nil {
			return nil, err
		}
		out.PSL = res
		out.Truth = res.Truth
		out.SoftValues = res.Values
	case SolverGreedy:
		res, err := baseline.Solve(g, prog)
		if err != nil {
			return nil, err
		}
		out.Greedy = res
		out.Truth = res.Truth
	default:
		return nil, fmt.Errorf("translate: unknown solver %v", solver)
	}
	out.Runtime = time.Since(start)
	return out, nil
}
