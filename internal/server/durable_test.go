package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// Durability suite for the session API: sessions created against a
// -data-dir server survive a server restart — store, epoch and rules
// recovered — whether the shutdown checkpointed (snapshot load) or not
// (WAL replay), and DELETE destroys the on-disk state for good.

// newDurableServer starts a server persisting under dir and recovers
// whatever a previous instance left there.
func newDurableServer(t *testing.T, dir string) (*Server, *httptest.Server, int) {
	t.Helper()
	srv := NewWithConfig(Config{DataDir: dir, Parallelism: 1})
	n, err := srv.RecoverSessions()
	if err != nil {
		t.Fatalf("RecoverSessions: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, ts, n
}

func TestServerSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, ts, n := newDurableServer(t, dir)
	if n != 0 {
		t.Fatalf("recovered %d sessions from an empty data dir", n)
	}

	id := createSession(t, ts.URL, "A")
	var facts FactsResponse
	if resp := postJSON(t, ts.URL+"/api/sessions/"+id+"/facts",
		FactsRequest{TQuads: "A coach Leeds [2005,2006] 0.7"}, &facts); resp.StatusCode != http.StatusOK {
		t.Fatalf("add facts: status %d", resp.StatusCode)
	}
	var before SessionInfo
	getJSON(t, ts.URL+"/api/sessions/"+id, &before)
	if before.Facts != 3 || before.Rules != 1 {
		t.Fatalf("pre-restart info: %+v", before)
	}

	// Graceful shutdown path: checkpoint, close, restart, recover.
	if err := srv.CheckpointAll(); err != nil {
		t.Fatalf("CheckpointAll: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ts.Close()

	_, ts2, n := newDurableServer(t, dir)
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	var after SessionInfo
	if resp := getJSON(t, ts2.URL+"/api/sessions/"+id, &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered session unreachable: status %d", resp.StatusCode)
	}
	if after.Facts != before.Facts || after.Epoch != before.Epoch || after.Rules != before.Rules {
		t.Fatalf("recovered info %+v, want %+v", after, before)
	}

	// The recovered session is live: it solves and detects the seeded
	// coach conflict.
	var solve SessionSolveResponse
	if resp := postJSON(t, ts2.URL+"/api/sessions/"+id+"/solve",
		SessionSolveRequest{Solver: "mln"}, &solve); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve on recovered session: status %d", resp.StatusCode)
	}
	if solve.Stats.RemovedFacts != 1 {
		t.Fatalf("recovered solve stats: %+v", solve.Stats)
	}
}

func TestServerRecoversUncheckpointedMutations(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newDurableServer(t, dir)
	id := createSession(t, ts.URL, "B")

	// Mutate without ever checkpointing: the facts live only in the
	// WAL. Closing flushes the journal but writes no snapshot.
	for i := 0; i < 3; i++ {
		quad := fmt.Sprintf("B%d worksFor Club%d [2000,2001] 0.5", i, i)
		if resp := postJSON(t, ts.URL+"/api/sessions/"+id+"/facts",
			FactsRequest{TQuads: quad}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("add facts %d: status %d", i, resp.StatusCode)
		}
	}
	var before SessionInfo
	getJSON(t, ts.URL+"/api/sessions/"+id, &before)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ts.Close()

	_, ts2, n := newDurableServer(t, dir)
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	var after SessionInfo
	getJSON(t, ts2.URL+"/api/sessions/"+id, &after)
	if after.Facts != before.Facts || after.Epoch != before.Epoch {
		t.Fatalf("WAL replay recovered %+v, want %+v", after, before)
	}
}

func TestServerDeleteDestroysSessionData(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := newDurableServer(t, dir)
	id := createSession(t, ts.URL, "C")

	sessDir := filepath.Join(dir, "sessions", id)
	if _, err := os.Stat(sessDir); err != nil {
		t.Fatalf("session dir not created: %v", err)
	}
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/api/sessions/"+id, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(sessDir); !os.IsNotExist(err) {
		t.Fatalf("session dir survives delete: %v", err)
	}

	// A restart recovers nothing.
	_, _, n := newDurableServer(t, dir)
	if n != 0 {
		t.Fatalf("recovered %d sessions after delete, want 0", n)
	}
}
