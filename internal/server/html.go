package server

import (
	"html/template"
	"net/http"

	"repro/internal/store"
	"repro/internal/temporal"
)

// The HTML UI is two pages: the dataset index (Figure 3's selection
// step) and the per-dataset workbench (constraint editor, solver
// controls, result statistics). Interactivity is plain JavaScript
// against the JSON API.

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>TeCoRe — Temporal Conflict Resolution</title>
<style>
body { font-family: sans-serif; margin: 2rem; max-width: 60rem; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: .3rem .6rem; text-align: left; }
code { background: #f2f2f2; padding: 0 .2rem; }
</style></head><body>
<h1>TeCoRe</h1>
<p>Temporal conflict resolution in uncertain temporal knowledge graphs.
Select a dataset to edit constraints and compute the most probable
conflict-free knowledge graph.</p>
<table>
<tr><th>Dataset</th><th>Facts</th><th>Predicates</th></tr>
{{range .}}
<tr><td><a href="/dataset/{{.Name}}">{{.Name}}</a></td>
<td>{{.Facts}}</td><td>{{len .Predicates}}</td></tr>
{{end}}
</table>
<h2>Upload</h2>
<p>POST TQuads to <code>/api/datasets</code> as
<code>{"name": "...", "tquads": "..."}</code>, or generate a dataset with
<code>{"name": "...", "generate": "football", "players": 1000}</code>.</p>
</body></html>`))

var datasetTmpl = template.Must(template.New("dataset").Parse(`<!DOCTYPE html>
<html><head><title>TeCoRe — {{.Name}}</title>
<style>
body { font-family: sans-serif; margin: 2rem; max-width: 70rem; }
table { border-collapse: collapse; margin-bottom: 1rem; }
td, th { border: 1px solid #999; padding: .3rem .6rem; text-align: left; }
textarea { width: 100%; font-family: monospace; }
pre { background: #f7f7f7; padding: .6rem; overflow-x: auto; }
fieldset { margin-bottom: 1rem; }
</style></head><body>
<p><a href="/">&larr; datasets</a></p>
<h1>{{.Name}}</h1>
<table>
<tr><th>Predicate</th><th>Facts</th><th>Subjects</th><th>Span</th><th>Mean conf.</th></tr>
{{range .Predicates}}
<tr><td>{{.Predicate}}</td><td>{{.Count}}</td><td>{{.Subjects}}</td>
<td>{{.Span}}</td><td>{{printf "%.3f" .MeanConfidence}}</td></tr>
{{end}}
</table>

<fieldset><legend>Constraint builder (Allen relations)</legend>
<input id="pred1" list="preds" placeholder="predicate 1">
<select id="rel">{{range .Relations}}<option>{{.}}</option>{{end}}<option>disjoint</option><option>overlap</option></select>
<input id="pred2" list="preds" placeholder="predicate 2">
<label><input type="checkbox" id="distinct"> distinct objects</label>
<button onclick="buildConstraint()">add constraint</button>
<datalist id="preds">{{range .Predicates}}<option>{{.Predicate}}</option>{{end}}</datalist>
</fieldset>

<fieldset><legend>Rules &amp; constraints</legend>
<textarea id="rules" rows="10">{{.Program}}</textarea>
</fieldset>

<fieldset><legend>Solve</legend>
<select id="solver"><option value="mln">nRockIt (MLN)</option><option value="psl">nPSL (PSL)</option></select>
<label>threshold <input id="threshold" type="number" min="0" max="1" step="0.05" value="0"></label>
<label><input type="checkbox" id="cpi"> cutting-plane</label>
<button onclick="solve()">compute conflict-free KG</button>
</fieldset>

<div id="out"></div>
<script>
const dataset = {{.Name}};
async function buildConstraint() {
  const body = {
    pred1: document.getElementById('pred1').value,
    pred2: document.getElementById('pred2').value,
    relation: document.getElementById('rel').value,
    distinctObjects: document.getElementById('distinct').checked,
  };
  const r = await fetch('/api/constraint', {method: 'POST', body: JSON.stringify(body)});
  if (!r.ok) { alert(await r.text()); return; }
  const js = await r.json();
  const ta = document.getElementById('rules');
  ta.value = ta.value.trimEnd() + '\n' + js.rule + '\n';
}
async function solve() {
  const body = {
    dataset: dataset,
    rules: document.getElementById('rules').value,
    solver: document.getElementById('solver').value,
    threshold: parseFloat(document.getElementById('threshold').value) || 0,
    cuttingPlane: document.getElementById('cpi').checked,
  };
  const out = document.getElementById('out');
  out.textContent = 'solving…';
  const r = await fetch('/api/solve', {method: 'POST', body: JSON.stringify(body)});
  if (!r.ok) { out.textContent = await r.text(); return; }
  const js = await r.json();
  const s = js.stats;
  out.innerHTML = '<h2>Result statistics</h2>' +
    '<table><tr><th>Total facts</th><td>' + s.TotalFacts + '</td></tr>' +
    '<tr><th>Kept</th><td>' + s.KeptFacts + '</td></tr>' +
    '<tr><th>Removed (conflicting)</th><td>' + s.RemovedFacts + '</td></tr>' +
    '<tr><th>Inferred</th><td>' + s.InferredFacts + '</td></tr>' +
    '<tr><th>Conflict clusters</th><td>' + s.ConflictClusters + '</td></tr>' +
    '<tr><th>Solver</th><td>' + s.Solver + '</td></tr>' +
    '<tr><th>Runtime</th><td>' + (s.Runtime / 1e6).toFixed(1) + ' ms</td></tr></table>' +
    '<h3>Removed</h3><pre>' + (js.removed || []).join('\n') + '</pre>' +
    '<h3>Inferred</h3><pre>' + (js.inferred || []).join('\n') + '</pre>' +
    '<h3>Consistent</h3><pre>' + (js.kept || []).join('\n') + '</pre>';
}
</script>
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var infos []DatasetInfo
	for _, name := range s.datasetNames() {
		d, _ := s.dataset(name)
		infos = append(infos, DatasetInfo{Name: d.name, Facts: d.stats.Facts, Predicates: d.stats.Predicates})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, infos); err != nil {
		httpError(w, http.StatusInternalServerError, "rendering: %v", err)
	}
}

type datasetPage struct {
	Name       string
	Predicates []store.PredicateStat
	Program    string
	Relations  []string
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("name"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	page := datasetPage{
		Name:       d.name,
		Predicates: d.stats.Predicates,
		Program:    d.program,
	}
	for rel := temporal.Relation(0); rel < temporal.NumRelations; rel++ {
		page.Relations = append(page.Relations, rel.String())
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := datasetTmpl.Execute(w, page); err != nil {
		httpError(w, http.StatusInternalServerError, "rendering: %v", err)
	}
}
