package server

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Server-side durability: when Config.DataDir is set, every session
// created through the API is backed by a WAL + snapshot directory under
// <DataDir>/sessions/<id>/, its rules text persisted alongside
// (programFile), so a restarted server recovers its sessions — store,
// epoch, program and warm solver state — instead of starting empty.
//
// Lifecycle: RecoverSessions (called once at boot, before serving)
// reopens every session directory; CheckpointAll compacts each durable
// session's log (the serve loop runs it on a timer and at shutdown);
// Close releases every WAL after a final flush. DELETE on a session
// removes its directory; LRU eviction only closes the WAL — the
// directory stays and the session returns at the next boot.

// programFile holds a durable session's rules text inside its data
// directory, so boot recovery can re-apply the program (rules are not
// store state and do not flow through the WAL).
const programFile = "program.rules"

// sessionsDir returns the root of the per-session data directories.
func (s *Server) sessionsDir() string { return filepath.Join(s.dataDir, "sessions") }

// Durable reports whether the server persists sessions.
func (s *Server) Durable() bool { return s.dataDir != "" }

// enableSessionDurability makes a freshly created session durable and
// persists its program text. Called before the session is published.
func (s *Server) enableSessionDurability(ss *session, rules string) error {
	dir := filepath.Join(s.sessionsDir(), ss.id)
	if err := ss.sess.EnableDurability(dir); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, programFile), []byte(rules), 0o644); err != nil {
		ss.sess.Close()
		return err
	}
	return ss.sess.Sync()
}

// RecoverSessions reopens every session directory under DataDir,
// replaying each session's snapshot + WAL suffix and re-applying its
// persisted program. It returns the number of sessions recovered and
// fails on the first directory that cannot be recovered — a corrupt
// store is a loud error, never a silently empty session. A server
// without a DataDir recovers nothing.
func (s *Server) RecoverSessions() (int, error) {
	if s.dataDir == "" {
		return 0, nil
	}
	root := s.sessionsDir()
	if err := os.MkdirAll(root, 0o755); err != nil {
		return 0, fmt.Errorf("server: data dir: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0, fmt.Errorf("server: data dir: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		sess, err := core.OpenSession(filepath.Join(root, id))
		if err != nil {
			return n, fmt.Errorf("server: recovering session %s: %w", id, err)
		}
		rules, err := os.ReadFile(filepath.Join(root, id, programFile))
		if err != nil && !os.IsNotExist(err) {
			sess.Close()
			return n, fmt.Errorf("server: recovering session %s: %w", id, err)
		}
		if len(rules) > 0 {
			if err := sess.LoadProgramText(string(rules)); err != nil {
				sess.Close()
				return n, fmt.Errorf("server: recovering session %s: program: %w", id, err)
			}
		}
		ss := &session{id: id, sess: sess}
		ss.publish(nil, "")
		if evicted := s.sessions.put(ss); evicted != nil {
			s.closeEvicted(evicted)
		}
		n++
	}
	return n, nil
}

// CheckpointAll checkpoints every durable session: snapshot written,
// WAL truncated to the suffix, warm solver state persisted. Sessions
// are checkpointed one at a time under their own mutex, so in-flight
// solves and mutations on other sessions proceed; within one session a
// checkpoint never blocks a writer for more than the epoch-pinned copy.
// The first error is returned, but every session is attempted.
func (s *Server) CheckpointAll() error {
	var first error
	for _, ss := range s.sessions.all() {
		ss.mu.Lock()
		if ss.sess.Durable() {
			if err := ss.sess.Checkpoint(); err != nil && first == nil {
				first = err
			}
		}
		ss.mu.Unlock()
	}
	return first
}

// Close flushes and releases every durable session's WAL. The server
// must not serve requests afterwards.
func (s *Server) Close() error {
	var first error
	for _, ss := range s.sessions.all() {
		ss.mu.Lock()
		if err := ss.sess.Close(); err != nil && first == nil {
			first = err
		}
		ss.mu.Unlock()
	}
	return first
}

// closeEvicted releases an LRU-evicted session's WAL (after a final
// flush) without deleting its directory: the session is gone from the
// table but its data survives for the next boot's recovery.
// The close runs in the background: an in-flight solve on the evicted
// session may hold ss.mu for seconds, and the create request that
// triggered the eviction must not wait behind it.
func (s *Server) closeEvicted(ss *session) {
	go func() {
		ss.mu.Lock()
		defer ss.mu.Unlock()
		ss.sess.Close()
	}()
}

// removeSessionData deletes a dropped session's data directory, if the
// server is durable.
func (s *Server) removeSessionData(id string) {
	if s.dataDir == "" {
		return
	}
	os.RemoveAll(filepath.Join(s.sessionsDir(), id))
}
