package server

import (
	"net/http"
	"runtime"
)

// Admission control for solves: MAP inference is CPU-bound and each
// solve fans out over a worker pool, so K unbounded concurrent solves
// would oversubscribe the machine K-fold and collapse every request's
// latency at once. The admission gate bounds how many solves run at a
// time (slots) and how many may wait for a slot (queue); a request
// arriving past both bounds is rejected immediately with 429 and a
// Retry-After hint instead of piling up — bounded latency under
// overload beats unbounded queueing.

// DefaultMaxQueuedSolves bounds the solve wait queue unless the Server
// overrides it.
const DefaultMaxQueuedSolves = 32

// admission is the server-wide solve gate.
type admission struct {
	slots chan struct{} // filled while a solve runs
	queue chan struct{} // filled while a solve waits for a slot
}

func newAdmission(maxConcurrent, maxQueued int) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	if maxQueued <= 0 {
		maxQueued = DefaultMaxQueuedSolves
	}
	return &admission{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueued),
	}
}

// acquire reserves a solve slot, waiting in the bounded queue if none
// is free. It reports false — without blocking — when both the slots
// and the queue are full; the caller should reject the request with
// 429.
func (a *admission) acquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return false
	}
	a.slots <- struct{}{}
	<-a.queue
	return true
}

// release frees the slot taken by acquire.
func (a *admission) release() { <-a.slots }

// inflight returns the number of solves currently holding a slot.
func (a *admission) inflight() int { return len(a.slots) }

// admitSolve runs the admission gate for an HTTP solve request,
// writing the 429 response itself when the request is rejected. The
// caller must call release() exactly when admitSolve returns true.
func (s *Server) admitSolve(w http.ResponseWriter) bool {
	if s.adm.acquire() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests,
		"solve queue full (%d running, %d queued); retry later",
		cap(s.adm.slots), cap(s.adm.queue))
	return false
}
