package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestIndexAndDatasetPages(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	html := sb.String()
	for _, want := range []string{"TeCoRe", "running-example", "footballdb-sample", "wikidata-sample"} {
		if !strings.Contains(html, want) {
			t.Errorf("index missing %q", want)
		}
	}

	resp2, err := http.Get(ts.URL + "/dataset/running-example")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dataset page status %d", resp2.StatusCode)
	}

	resp3, _ := http.Get(ts.URL + "/dataset/nope")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("missing dataset page status %d", resp3.StatusCode)
	}
}

func TestListDatasets(t *testing.T) {
	ts := newTestServer(t)
	var infos []DatasetInfo
	getJSON(t, ts.URL+"/api/datasets", &infos)
	if len(infos) != 3 {
		t.Fatalf("datasets = %d", len(infos))
	}
	byName := map[string]DatasetInfo{}
	for _, d := range infos {
		byName[d.Name] = d
	}
	if byName["running-example"].Facts != 5 {
		t.Errorf("running example facts = %d", byName["running-example"].Facts)
	}
	if byName["footballdb-sample"].Facts < 800 {
		t.Errorf("football sample facts = %d", byName["footballdb-sample"].Facts)
	}
	if !strings.Contains(byName["running-example"].Program, "disjoint") {
		t.Error("default program missing")
	}
}

func TestPredicateAutocomplete(t *testing.T) {
	ts := newTestServer(t)
	var preds []string
	getJSON(t, ts.URL+"/api/predicates?dataset=running-example&q=co", &preds)
	if len(preds) != 1 || preds[0] != "coach" {
		t.Errorf("autocomplete = %v", preds)
	}
	getJSON(t, ts.URL+"/api/predicates?dataset=running-example", &preds)
	if len(preds) != 3 {
		t.Errorf("all predicates = %v", preds)
	}
	resp := getJSON(t, ts.URL+"/api/predicates?dataset=unknown", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset status %d", resp.StatusCode)
	}
}

func TestConstraintBuilderEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]string
	postJSON(t, ts.URL+"/api/constraint", ConstraintRequest{
		Name: "c2", Pred1: "coach", Pred2: "coach", Relation: "disjoint", DistinctObjects: true,
	}, &out)
	rule := out["rule"]
	for _, want := range []string{"c2:", "disjoint(t, t')", "y != z", "w = inf"} {
		if !strings.Contains(rule, want) {
			t.Errorf("built rule missing %q: %s", want, rule)
		}
	}
	// Functional variant.
	postJSON(t, ts.URL+"/api/constraint", ConstraintRequest{
		Pred1: "bornIn", Functional: true,
	}, &out)
	if !strings.Contains(out["rule"], "y = z") {
		t.Errorf("functional rule = %s", out["rule"])
	}
	// Invalid relation is a 400.
	resp := postJSON(t, ts.URL+"/api/constraint", ConstraintRequest{
		Pred1: "a", Pred2: "b", Relation: "sideways",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid relation status %d", resp.StatusCode)
	}
}

func TestValidateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]any
	postJSON(t, ts.URL+"/api/validate", ValidateRequest{
		Rules:   "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5",
		Solver:  "psl",
		Dataset: "running-example",
	}, &out)
	if out["ok"] != true {
		t.Errorf("validate = %v", out)
	}
	missing, _ := out["missingPredicates"].([]any)
	if len(missing) != 1 || missing[0] != "worksFor" {
		t.Errorf("missingPredicates = %v", missing)
	}
	// Hard inference rule rejected for PSL.
	postJSON(t, ts.URL+"/api/validate", ValidateRequest{
		Rules:  "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = inf",
		Solver: "psl",
	}, &out)
	if out["ok"] != false {
		t.Errorf("hard rule for psl: %v", out)
	}
	// Syntax error reported.
	postJSON(t, ts.URL+"/api/validate", ValidateRequest{Rules: "broken ->"}, &out)
	if out["ok"] != false {
		t.Errorf("syntax error: %v", out)
	}
}

func TestSolveEndpointRunningExample(t *testing.T) {
	ts := newTestServer(t)
	for _, solver := range []string{"mln", "psl"} {
		var out SolveResponse
		postJSON(t, ts.URL+"/api/solve", SolveRequest{
			Dataset: "running-example", Solver: solver,
		}, &out)
		if out.Stats.RemovedFacts != 1 {
			t.Errorf("%s: removed = %d", solver, out.Stats.RemovedFacts)
		}
		if len(out.Removed) != 1 || !strings.Contains(out.Removed[0], "Napoli") {
			t.Errorf("%s: removed facts = %v", solver, out.Removed)
		}
		if out.Stats.InferredFacts != 1 || !strings.Contains(out.Inferred[0], "worksFor") {
			t.Errorf("%s: inferred = %v", solver, out.Inferred)
		}
	}
}

func TestSolveEndpointCustomRules(t *testing.T) {
	ts := newTestServer(t)
	var out SolveResponse
	postJSON(t, ts.URL+"/api/solve", SolveRequest{
		Dataset: "running-example",
		Solver:  "mln",
		Rules:   "# no constraints at all\nf1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5",
	}, &out)
	if out.Stats.RemovedFacts != 0 {
		t.Errorf("no constraints: removed = %d", out.Stats.RemovedFacts)
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	if resp := postJSON(t, ts.URL+"/api/solve", SolveRequest{Dataset: "nope", Solver: "mln"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/api/solve", SolveRequest{Dataset: "running-example", Solver: "zzz"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown solver status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/api/solve", SolveRequest{Dataset: "running-example", Solver: "mln", Rules: "bad ->"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rules status %d", resp.StatusCode)
	}
}

func TestUploadTQuads(t *testing.T) {
	ts := newTestServer(t)
	var info DatasetInfo
	postJSON(t, ts.URL+"/api/datasets", UploadRequest{
		Name:   "mine",
		TQuads: "a p b [1,2] 0.5\na p c [1,2] 0.6",
	}, &info)
	if info.Facts != 2 {
		t.Errorf("uploaded facts = %d", info.Facts)
	}
	var preds []string
	getJSON(t, ts.URL+"/api/predicates?dataset=mine", &preds)
	if len(preds) != 1 || preds[0] != "p" {
		t.Errorf("uploaded predicates = %v", preds)
	}
}

func TestUploadGenerators(t *testing.T) {
	ts := newTestServer(t)
	var info DatasetInfo
	postJSON(t, ts.URL+"/api/datasets", UploadRequest{
		Name: "fb", Generate: "football", Players: 50, Seed: 2,
	}, &info)
	if info.Facts < 100 {
		t.Errorf("generated football facts = %d", info.Facts)
	}
	if !strings.Contains(info.Program, "noTwoTeams") {
		t.Error("football program missing")
	}
	resp := postJSON(t, ts.URL+"/api/datasets", UploadRequest{Name: "x", Generate: "zzz"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown generator status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/datasets", UploadRequest{TQuads: "a p b [1,2]"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing name status %d", resp.StatusCode)
	}
}

func TestSolveResponseTruncation(t *testing.T) {
	srv := New()
	srv.MaxFactsInResponse = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var out SolveResponse
	postJSON(t, ts.URL+"/api/solve", SolveRequest{Dataset: "running-example", Solver: "mln"}, &out)
	if len(out.Kept) > 2 || !out.Truncated {
		t.Errorf("truncation: kept=%d truncated=%v", len(out.Kept), out.Truncated)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out []SuggestedConstraint
	getJSON(t, ts.URL+"/api/suggest?dataset=footballdb-sample", &out)
	if len(out) == 0 {
		t.Fatal("no suggestions for the football sample")
	}
	foundDisjoint := false
	for _, s := range out {
		if s.Kind == "disjoint" && strings.Contains(s.Rule, "playsFor") {
			foundDisjoint = true
		}
		if s.Confidence <= 0 || s.Confidence > 1 || s.Support <= 0 {
			t.Errorf("suspicious suggestion %+v", s)
		}
	}
	if !foundDisjoint {
		t.Error("playsFor disjointness not suggested")
	}
	resp := getJSON(t, ts.URL+"/api/suggest?dataset=nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset status %d", resp.StatusCode)
	}
}
