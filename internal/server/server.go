// Package server implements the TeCoRe Web UI: dataset selection and
// upload, rule and constraint editing (with predicate auto-completion
// and an Allen-relation constraint builder), MAP inference with either
// solver, and the result statistics browser of Figure 8. All endpoints
// are stdlib net/http; JSON APIs back the interactive pieces so the demo
// can also be driven programmatically.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kgen"
	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/suggest"
	"repro/internal/translate"
)

// Server holds the demo state: named datasets and their default
// programs. It is safe for concurrent use.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*dataset
	mux      *http.ServeMux
	// MaxFactsInResponse caps the fact lists returned by /api/solve.
	MaxFactsInResponse int
	// Parallelism bounds each solve's worker pools (0 = GOMAXPROCS,
	// 1 = sequential). Per-request parallelism in /api/solve overrides
	// it. Results are identical at every setting.
	Parallelism int
	// sessions holds the stateful incremental solving sessions (LRU).
	sessions *sessionTable
	// dataDir, when non-empty, roots the durable session directories
	// (see durable.go); empty means sessions are in-memory only.
	dataDir string
	// adm is the server-wide solve admission gate (see admission.go).
	adm *admission
	// solveGate, when non-nil, is called inside a session solve's
	// critical section (lock and admission slot held, solver not yet
	// run). Test hook: lets the concurrency suite pin a solve
	// in flight deterministically. Never set in production.
	solveGate func(sessionID string)
}

type dataset struct {
	name    string
	graph   rdf.Graph
	stats   store.Stats
	program string // default rules/constraints text
}

// New returns a server preloaded with the paper's running example and
// small generated FootballDB/Wikidata samples.
func New() *Server {
	return NewWithConfig(Config{})
}

// Config tunes a Server.
type Config struct {
	// MaxSessions bounds the stateful session table (default
	// DefaultMaxSessions); the least recently used session is evicted
	// past it.
	MaxSessions int
	// Parallelism is the default solve parallelism (see
	// Server.Parallelism).
	Parallelism int
	// MaxConcurrentSolves bounds how many solves run at once across
	// all endpoints and sessions (0 = GOMAXPROCS). Solves past it wait
	// in a bounded queue.
	MaxConcurrentSolves int
	// MaxQueuedSolves bounds the solve wait queue (0 =
	// DefaultMaxQueuedSolves); a solve arriving past both bounds is
	// rejected with 429 and a Retry-After header.
	MaxQueuedSolves int
	// DataDir, when non-empty, makes sessions durable: each one is
	// backed by a WAL + snapshot directory under <DataDir>/sessions/
	// and survives a server restart. Call RecoverSessions once before
	// serving to reopen them.
	DataDir string
}

// NewWithConfig returns a configured server.
func NewWithConfig(cfg Config) *Server {
	s := &Server{
		datasets:           make(map[string]*dataset),
		MaxFactsInResponse: 200,
		Parallelism:        cfg.Parallelism,
		sessions:           newSessionTable(cfg.MaxSessions),
		adm:                newAdmission(cfg.MaxConcurrentSolves, cfg.MaxQueuedSolves),
		dataDir:            cfg.DataDir,
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.seed()
	return s
}

// solveParallelism resolves the worker-pool width for an admitted
// solve: an explicit per-request setting wins; otherwise the server
// default is shared across the solves currently holding a slot, so K
// concurrent sessions split the machine instead of oversubscribing it
// K-fold. Worker counts never change results, only wall clock.
func (s *Server) solveParallelism(req int) int {
	if req != 0 {
		return req
	}
	return par.Share(s.Parallelism, s.adm.inflight())
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /dataset/{name}", s.handleDataset)
	s.mux.HandleFunc("GET /api/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /api/datasets", s.handleUpload)
	s.mux.HandleFunc("GET /api/predicates", s.handlePredicates)
	s.mux.HandleFunc("POST /api/constraint", s.handleConstraint)
	s.mux.HandleFunc("POST /api/validate", s.handleValidate)
	s.mux.HandleFunc("POST /api/solve", s.handleSolve)
	s.mux.HandleFunc("GET /api/suggest", s.handleSuggest)
	s.mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /api/sessions/{id}", s.handleSessionInfo)
	s.mux.HandleFunc("GET /api/sessions/{id}/outcome", s.handleSessionOutcome)
	s.mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /api/sessions/{id}/facts", s.handleSessionFacts)
	s.mux.HandleFunc("DELETE /api/sessions/{id}/facts", s.handleSessionFacts)
	s.mux.HandleFunc("POST /api/sessions/{id}/batch", s.handleSessionBatch)
	s.mux.HandleFunc("POST /api/sessions/{id}/solve", s.handleSessionSolve)
}

// SuggestedConstraint is one mined constraint in /api/suggest.
type SuggestedConstraint struct {
	Kind       string  `json:"kind"`
	Rule       string  `json:"rule"`
	Support    int     `json:"support"`
	Violations int     `json:"violations"`
	Confidence float64 `json:"confidence"`
}

// handleSuggest mines candidate constraints from a dataset — the
// "automatic suggestion of constraints" goal of the demo (Section 4).
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.URL.Query().Get("dataset"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	st := store.New()
	if err := st.AddGraph(d.graph); err != nil {
		httpError(w, http.StatusInternalServerError, "loading dataset: %v", err)
		return
	}
	sugs, err := suggest.Mine(st, suggest.Options{})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "mining: %v", err)
		return
	}
	out := make([]SuggestedConstraint, 0, len(sugs))
	for _, sg := range sugs {
		out = append(out, SuggestedConstraint{
			Kind:       string(sg.Kind),
			Rule:       sg.Text(),
			Support:    sg.Support,
			Violations: sg.Violations,
			Confidence: sg.Confidence,
		})
	}
	writeJSON(w, out)
}

// seed loads the demo datasets.
func (s *Server) seed() {
	running, err := rdf.ParseGraphString(`
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`)
	if err != nil {
		panic(fmt.Sprintf("server: seeding running example: %v", err))
	}
	s.addDataset("running-example", running, `
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf
`)
	fb := kgen.Football(kgen.FootballConfig{Players: 400, NoiseRatio: 0.3, Seed: 1})
	s.addDataset("footballdb-sample", fb.Graph, kgen.FootballProgram)
	wd := kgen.Wikidata(kgen.WikidataConfig{Scale: 0.001, Seed: 1})
	s.addDataset("wikidata-sample", wd.Graph, kgen.WikidataProgram)
}

func (s *Server) addDataset(name string, g rdf.Graph, program string) error {
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = &dataset{name: name, graph: g, stats: st.Stats(), program: strings.TrimSpace(program)}
	return nil
}

func (s *Server) dataset(name string) (*dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

func (s *Server) datasetNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		return
	}
}

// --- JSON API ---

// DatasetInfo describes a dataset in /api/datasets.
type DatasetInfo struct {
	Name       string                `json:"name"`
	Facts      int                   `json:"facts"`
	Predicates []store.PredicateStat `json:"predicates"`
	Program    string                `json:"program"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	var out []DatasetInfo
	for _, name := range s.datasetNames() {
		d, _ := s.dataset(name)
		out = append(out, DatasetInfo{
			Name: d.name, Facts: d.stats.Facts, Predicates: d.stats.Predicates, Program: d.program,
		})
	}
	writeJSON(w, out)
}

// UploadRequest creates a dataset from TQuads text or a generator.
type UploadRequest struct {
	Name string `json:"name"`
	// TQuads is the dataset content; mutually exclusive with Generate.
	TQuads string `json:"tquads,omitempty"`
	// Generate selects a generator: "football" or "wikidata".
	Generate string  `json:"generate,omitempty"`
	Players  int     `json:"players,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Noise    float64 `json:"noise,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "dataset name required")
		return
	}
	var (
		g       rdf.Graph
		program string
		err     error
	)
	switch req.Generate {
	case "":
		g, err = rdf.ParseGraphString(req.TQuads)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parsing tquads: %v", err)
			return
		}
	case "football":
		ds := kgen.Football(kgen.FootballConfig{Players: req.Players, NoiseRatio: req.Noise, Seed: req.Seed})
		g, program = ds.Graph, kgen.FootballProgram
	case "wikidata":
		ds := kgen.Wikidata(kgen.WikidataConfig{Scale: req.Scale, NoiseRatio: req.Noise, Seed: req.Seed})
		g, program = ds.Graph, kgen.WikidataProgram
	default:
		httpError(w, http.StatusBadRequest, "unknown generator %q", req.Generate)
		return
	}
	if err := s.addDataset(req.Name, g, program); err != nil {
		httpError(w, http.StatusBadRequest, "loading dataset: %v", err)
		return
	}
	d, _ := s.dataset(req.Name)
	writeJSON(w, DatasetInfo{Name: d.name, Facts: d.stats.Facts, Predicates: d.stats.Predicates, Program: d.program})
}

// handlePredicates is the auto-completion endpoint of the constraints
// editor (Figure 5): predicates of a dataset filtered by prefix.
func (s *Server) handlePredicates(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.URL.Query().Get("dataset"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset")
		return
	}
	prefix := strings.ToLower(r.URL.Query().Get("q"))
	var out []string
	for _, ps := range d.stats.Predicates {
		if prefix == "" || strings.HasPrefix(strings.ToLower(ps.Predicate), prefix) {
			out = append(out, ps.Predicate)
		}
	}
	writeJSON(w, out)
}

// ConstraintRequest drives the Allen constraint builder.
type ConstraintRequest struct {
	Name            string `json:"name"`
	Pred1           string `json:"pred1"`
	Pred2           string `json:"pred2"`
	Relation        string `json:"relation"`
	DistinctObjects bool   `json:"distinctObjects"`
	// Functional builds the one-object-at-a-time constraint instead.
	Functional bool `json:"functional"`
}

func (s *Server) handleConstraint(w http.ResponseWriter, r *http.Request) {
	var req ConstraintRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var (
		rule *logic.Rule
		err  error
	)
	if req.Functional {
		rule, err = core.FunctionalConstraint(req.Name, req.Pred1)
	} else {
		rule, err = core.AllenConstraint(req.Name, req.Pred1, req.Pred2, req.Relation, req.DistinctObjects)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	text := rule.String()
	if rule.Name != "" {
		text = rule.Name + ": " + text
	}
	writeJSON(w, map[string]string{"rule": text})
}

// ValidateRequest checks program text without solving.
type ValidateRequest struct {
	Rules   string `json:"rules"`
	Solver  string `json:"solver"`
	Dataset string `json:"dataset"`
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req ValidateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	prog, err := rulelang.Parse(req.Rules)
	if err != nil {
		writeJSON(w, map[string]any{"ok": false, "error": err.Error()})
		return
	}
	resp := map[string]any{"ok": true, "rules": len(prog.Rules)}
	if req.Solver != "" {
		solver, err := translate.ParseSolver(req.Solver)
		if err != nil {
			writeJSON(w, map[string]any{"ok": false, "error": err.Error()})
			return
		}
		if err := translate.ValidateFor(solver, prog); err != nil {
			writeJSON(w, map[string]any{"ok": false, "error": err.Error()})
			return
		}
	}
	if d, ok := s.dataset(req.Dataset); ok {
		st := store.New()
		if err := st.AddGraph(d.graph); err == nil {
			resp["missingPredicates"] = translate.CheckPredicates(st, prog)
		}
	}
	writeJSON(w, resp)
}

// SolveRequest runs conflict resolution on a dataset.
type SolveRequest struct {
	Dataset string `json:"dataset"`
	// Rules overrides the dataset's default program when non-empty.
	Rules        string  `json:"rules,omitempty"`
	Solver       string  `json:"solver"`
	Threshold    float64 `json:"threshold,omitempty"`
	CuttingPlane bool    `json:"cuttingPlane,omitempty"`
	// Parallelism overrides the server's worker pool size for this
	// solve (0 = server default).
	Parallelism int `json:"parallelism,omitempty"`
	// ComponentSolve partitions the ground network into independent
	// conflict components solved separately (stats.Components reports
	// the decomposition).
	ComponentSolve bool `json:"componentSolve,omitempty"`
	// ComponentExactLimit is the largest component handed to the exact
	// MaxSAT engine in component mode (0 = default 48).
	ComponentExactLimit int `json:"componentExactLimit,omitempty"`
}

// SolveResponse mirrors the statistics display of Figure 8 plus
// browsable consistent and conflicting statements.
type SolveResponse struct {
	Stats repair.Stats `json:"stats"`
	// The fact lists are omitted (not null) when absent — the session
	// API's delta mode returns a changelog instead of them.
	Kept     []string   `json:"kept,omitempty"`
	Removed  []string   `json:"removed,omitempty"`
	Inferred []string   `json:"inferred,omitempty"`
	Clusters [][]string `json:"clusters,omitempty"`
	// Truncated reports whether fact lists were capped.
	Truncated bool `json:"truncated,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	d, ok := s.dataset(req.Dataset)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	solver, err := translate.ParseSolver(req.Solver)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rules := req.Rules
	if strings.TrimSpace(rules) == "" {
		rules = d.program
	}
	sess := core.NewSession()
	if err := sess.LoadGraph(d.graph); err != nil {
		httpError(w, http.StatusInternalServerError, "loading dataset: %v", err)
		return
	}
	if err := sess.LoadProgramText(rules); err != nil {
		httpError(w, http.StatusBadRequest, "parsing rules: %v", err)
		return
	}
	if !s.admitSolve(w) {
		return
	}
	defer s.adm.release()
	res, err := sess.Solve(core.SolveOptions{
		Solver:              solver,
		Threshold:           req.Threshold,
		CuttingPlane:        req.CuttingPlane,
		Parallelism:         s.solveParallelism(req.Parallelism),
		ComponentSolve:      req.ComponentSolve,
		ComponentExactLimit: req.ComponentExactLimit,
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "solving: %v", err)
		return
	}
	writeJSON(w, s.solveResponse(res))
}

// solveResponse renders a Resolution with the server's fact cap applied.
func (s *Server) solveResponse(res *core.Resolution) SolveResponse {
	return s.outcomeResponse(res.Outcome)
}

// outcomeResponse renders an Outcome with the server's fact cap
// applied.
func (s *Server) outcomeResponse(oc *repair.Outcome) SolveResponse {
	resp := SolveResponse{Stats: oc.Stats}
	cap := s.MaxFactsInResponse
	resp.Kept, resp.Truncated = factStrings(oc.Kept, cap, resp.Truncated)
	resp.Removed, resp.Truncated = removedStrings(oc.Removed, cap, resp.Truncated)
	resp.Inferred, resp.Truncated = factStrings(oc.Inferred, cap, resp.Truncated)
	resp.Clusters, resp.Truncated = clusterStrings(oc.Clusters, cap, resp.Truncated)
	return resp
}

// clusterStrings renders conflict clusters as key-string groups with
// the fact cap applied to the cluster count.
func clusterStrings(clusters [][]rdf.FactKey, max int, truncated bool) ([][]string, bool) {
	var out [][]string
	for i, cl := range clusters {
		if i >= max {
			return out, true
		}
		keys := make([]string, 0, len(cl))
		for _, k := range cl {
			keys = append(keys, k.String())
		}
		out = append(out, keys)
	}
	return out, truncated
}

func factStrings(fs []repair.Fact, max int, truncated bool) ([]string, bool) {
	var out []string
	for i, f := range fs {
		if i >= max {
			return out, true
		}
		out = append(out, f.Quad.Compact())
	}
	return out, truncated
}

// removedStrings annotates removed facts with their first explanation,
// e.g. "(CR, coach, Napoli, [2001,2003]) 0.6 — violates c2 with (...)".
func removedStrings(fs []repair.Fact, max int, truncated bool) ([]string, bool) {
	var out []string
	for i, f := range fs {
		if i >= max {
			return out, true
		}
		line := f.Quad.Compact()
		if len(f.Explanations) > 0 {
			line += " — violates " + f.Explanations[0].String()
		}
		out = append(out, line)
	}
	return out, truncated
}

// ListenAndServe runs the UI on addr until the process dies. Prefer
// Run, which shuts down gracefully and persists durable sessions.
func (s *Server) ListenAndServe(addr string) error {
	return s.Run(context.Background(), addr, 0)
}

// Run serves the UI on addr until ctx is cancelled, then shuts down
// gracefully: in-flight requests get drainTimeout (or as long as they
// need, when 0) to finish, every durable session takes a final
// checkpoint, and every WAL is flushed and closed. Run returns nil on
// a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, drainTimeout time.Duration) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drainTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drainTimeout)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	// Requests are drained (or abandoned at the deadline): persist the
	// final state before releasing the WALs.
	if s.Durable() {
		if cerr := s.CheckpointAll(); err == nil {
			err = cerr
		}
	}
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}
