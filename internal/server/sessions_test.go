package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/repair"
)

func doJSON(t *testing.T, method, url string, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestSessionLifecycle(t *testing.T) {
	ts := newTestServer(t)

	var info SessionInfo
	resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{
		TQuads: `
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
`,
		Rules: "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	if info.ID == "" || info.Facts != 2 {
		t.Fatalf("create session: %+v", info)
	}
	base := ts.URL + "/api/sessions/" + info.ID

	// First solve: full grounding, nothing conflicting.
	var solve SessionSolveResponse
	resp = postJSON(t, base+"/solve", SessionSolveRequest{Solver: "mln"}, &solve)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	if solve.Incremental {
		t.Fatal("first solve should not be incremental")
	}
	if solve.Stats.RemovedFacts != 0 {
		t.Fatalf("expected no conflicts, got %+v", solve.Stats)
	}

	// Stream a conflicting fact, then re-solve incrementally.
	var facts FactsResponse
	resp = postJSON(t, base+"/facts", FactsRequest{TQuads: "CR coach Napoli [2001,2003] 0.6"}, &facts)
	if resp.StatusCode != http.StatusOK || facts.Added != 1 {
		t.Fatalf("add facts: status %d resp %+v", resp.StatusCode, facts)
	}
	resp = postJSON(t, base+"/solve", SessionSolveRequest{Solver: "mln"}, &solve)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-solve: status %d", resp.StatusCode)
	}
	if !solve.Incremental {
		t.Fatal("second solve should take the delta path")
	}
	if solve.Stats.RemovedFacts != 1 {
		t.Fatalf("expected the Napoli spell removed, got %+v", solve.Stats)
	}

	// Retract it again: conflict disappears.
	resp = doJSON(t, http.MethodDelete, base+"/facts", `{"tquads":"CR coach Napoli [2001,2003] 0.6"}`, &facts)
	if resp.StatusCode != http.StatusOK || facts.Removed != 1 {
		t.Fatalf("remove facts: status %d resp %+v", resp.StatusCode, facts)
	}
	resp = postJSON(t, base+"/solve", SessionSolveRequest{Solver: "mln"}, &solve)
	if resp.StatusCode != http.StatusOK || solve.Stats.RemovedFacts != 0 || !solve.Incremental {
		t.Fatalf("post-retract solve: status %d resp %+v", resp.StatusCode, solve.Stats)
	}

	// Info and delete.
	resp = getJSON(t, base, &info)
	if resp.StatusCode != http.StatusOK || info.Facts != 2 {
		t.Fatalf("info: status %d %+v", resp.StatusCode, info)
	}
	if resp := doJSON(t, http.MethodDelete, base, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, base, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still reachable: status %d", resp.StatusCode)
	}
}

func TestSessionFromDataset(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{Dataset: "running-example"}, &info)
	if resp.StatusCode != http.StatusOK || info.Facts != 5 || info.Rules != 2 {
		t.Fatalf("dataset session: status %d %+v", resp.StatusCode, info)
	}
	var solve SessionSolveResponse
	resp = postJSON(t, ts.URL+"/api/sessions/"+info.ID+"/solve", SessionSolveRequest{Solver: "psl"}, &solve)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	if solve.Stats.RemovedFacts != 1 {
		t.Fatalf("expected 1 removed (Napoli), got %+v", solve.Stats)
	}
}

// TestSessionComponentSolve streams facts through a session with
// componentSolve on: stats report the decomposition, and an incremental
// re-solve reuses the cached solutions of untouched components.
func TestSessionComponentSolve(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{
		TQuads: `
CR coach Chelsea [2000,2004] 0.9
CR coach Napoli [2001,2003] 0.6
MX coach Porto [2002,2004] 0.8
MX coach Lyon [2003,2005] 0.7
`,
		Rules: "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	base := ts.URL + "/api/sessions/" + info.ID

	var solve SessionSolveResponse
	resp = postJSON(t, base+"/solve", SessionSolveRequest{Solver: "mln", ComponentSolve: true}, &solve)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	cs := solve.Stats.Components
	if cs == nil || cs.Count < 2 {
		t.Fatalf("componentSolve stats missing or trivial: %+v", cs)
	}
	if cs.Solved != cs.Count || cs.Reused != 0 {
		t.Fatalf("first solve should solve every component: %+v", cs)
	}
	rs := solve.Stats.Repair
	if rs == nil || rs.Mode != repair.RepairComponents {
		t.Fatalf("componentSolve response missing component repair stats: %+v", rs)
	}
	if rs.Repaired != rs.Components || rs.Reused != 0 {
		t.Fatalf("first solve should repair every component: %+v", rs)
	}

	// Touch only CR's component; MX's cached solution must be reused.
	var facts FactsResponse
	resp = postJSON(t, base+"/facts", FactsRequest{TQuads: "CR coach Leeds [2003,2004] 0.5"}, &facts)
	if resp.StatusCode != http.StatusOK || facts.Added != 1 {
		t.Fatalf("add facts: status %d resp %+v", resp.StatusCode, facts)
	}
	resp = postJSON(t, base+"/solve", SessionSolveRequest{Solver: "mln", ComponentSolve: true}, &solve)
	if resp.StatusCode != http.StatusOK || !solve.Incremental {
		t.Fatalf("re-solve: status %d incremental=%v", resp.StatusCode, solve.Incremental)
	}
	cs = solve.Stats.Components
	if cs == nil || cs.Reused == 0 {
		t.Fatalf("incremental component re-solve reused nothing: %+v", cs)
	}
	rs = solve.Stats.Repair
	if rs == nil || rs.Reused == 0 || rs.Repaired == 0 {
		t.Fatalf("incremental re-solve should re-repair only the dirtied component: %+v", rs)
	}
}

// TestSessionSolveDeltaMode drives the changelog mode of session
// solves: delta=true returns only what entered or left the outcome
// since the previous solve, omitting the full fact lists. The first
// solve reports the full state as added; an incremental single-fact
// update reports only its own component's churn; a no-op re-solve
// reports an empty changelog.
func TestSessionSolveDeltaMode(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{
		TQuads: `
CR coach Chelsea [2000,2004] 0.9
CR coach Napoli [2001,2003] 0.6
MX coach Porto [2002,2004] 0.8
MX coach Lyon [2003,2005] 0.7
`,
		Rules: "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	base := ts.URL + "/api/sessions/" + info.ID
	req := SessionSolveRequest{Solver: "mln", ComponentSolve: true, Delta: true}

	var solve SessionSolveResponse
	resp = postJSON(t, base+"/solve", req, &solve)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d", resp.StatusCode)
	}
	if solve.Delta == nil {
		t.Fatal("delta mode returned no changelog")
	}
	if len(solve.Kept) != 0 || len(solve.Removed) != 0 || len(solve.Inferred) != 0 || len(solve.Clusters) != 0 {
		t.Fatalf("delta mode returned full lists: %+v", solve.SolveResponse)
	}
	if got := len(solve.Delta.AddedKept); got != solve.Stats.KeptFacts {
		t.Fatalf("first delta added %d kept facts, stats report %d", got, solve.Stats.KeptFacts)
	}
	if got := len(solve.Delta.AddedRemoved); got != solve.Stats.RemovedFacts {
		t.Fatalf("first delta added %d removed facts, stats report %d", got, solve.Stats.RemovedFacts)
	}
	if ocs := solve.Stats.Outcome; ocs == nil || ocs.Mode != repair.OutcomeLive {
		t.Fatalf("delta mode did not run the live outcome: %+v", solve.Stats.Outcome)
	}

	// Single-fact update: the changelog must stay scoped to CR's
	// component (no MX statements churn).
	var facts FactsResponse
	resp = postJSON(t, base+"/facts", FactsRequest{TQuads: "CR coach Leeds [2003,2004] 0.5"}, &facts)
	if resp.StatusCode != http.StatusOK || facts.Added != 1 {
		t.Fatalf("add facts: status %d resp %+v", resp.StatusCode, facts)
	}
	// Fresh response structs per request: omitempty fields absent from a
	// later response must read as empty, not as the previous decode's
	// values.
	var update SessionSolveResponse
	resp = postJSON(t, base+"/solve", req, &update)
	if resp.StatusCode != http.StatusOK || !update.Incremental {
		t.Fatalf("re-solve: status %d incremental=%v", resp.StatusCode, update.Incremental)
	}
	if update.Delta == nil {
		t.Fatal("incremental delta solve returned no changelog")
	}
	var all []string
	for _, list := range [][]string{update.Delta.AddedKept, update.Delta.RemovedKept,
		update.Delta.AddedRemoved, update.Delta.RemovedRemoved} {
		all = append(all, list...)
	}
	if len(all) == 0 {
		t.Fatal("adding a conflicting spell changed nothing")
	}
	for _, line := range all {
		if strings.Contains(line, "MX") {
			t.Fatalf("changelog churned a clean component: %q", line)
		}
	}

	// No-op re-solve: empty changelog.
	var noop SessionSolveResponse
	resp = postJSON(t, base+"/solve", req, &noop)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op solve: status %d", resp.StatusCode)
	}
	d := noop.Delta
	if d == nil {
		t.Fatal("no-op delta solve returned no changelog")
	}
	if n := len(d.AddedKept) + len(d.RemovedKept) + len(d.AddedRemoved) + len(d.RemovedRemoved) +
		len(d.AddedInferred) + len(d.RemovedInferred) + len(d.AddedClusters) + len(d.RemovedClusters); n != 0 {
		t.Fatalf("no-op solve produced a %d-entry changelog: %+v", n, d)
	}

	// Without componentSolve there is no live outcome: delta mode falls
	// back to the full response.
	var mono SessionSolveResponse
	resp = postJSON(t, base+"/solve", SessionSolveRequest{Solver: "mln", Delta: true}, &mono)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monolithic solve: status %d", resp.StatusCode)
	}
	if mono.Delta != nil {
		t.Fatal("monolithic solve fabricated a changelog")
	}
	if len(mono.Kept) == 0 {
		t.Fatal("fallback response missing the full lists")
	}
}

// TestSessionBatchEndpoint drives the combined update endpoint: one
// request carries retractions, assertions and a solve, and the
// response reports the batch's net effect plus the solve result.
func TestSessionBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{
		TQuads: `
CR coach Chelsea [2000,2004] 0.9
CR coach Napoli [2001,2003] 0.6
`,
		Rules: "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf",
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	base := ts.URL + "/api/sessions/" + info.ID

	// Swap Napoli for Leeds and solve, all in one request.
	var batch BatchResponse
	resp = postJSON(t, base+"/batch", BatchRequest{
		Add:    "CR coach Leeds [2003,2004] 0.5",
		Remove: "CR coach Napoli [2001,2003] 0.6",
		Solve:  &SessionSolveRequest{Solver: "mln", ComponentSolve: true},
	}, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if batch.Added != 1 || batch.Removed != 1 || batch.Facts != 2 {
		t.Fatalf("batch counts: %+v", batch.FactsResponse)
	}
	if batch.Solve == nil {
		t.Fatal("batch solve requested but no solve result returned")
	}
	// Leeds [2003,2004] 0.5 overlaps Chelsea [2000,2004] 0.9 and loses.
	if batch.Solve.Stats.RemovedFacts != 1 {
		t.Fatalf("batch solve stats: %+v", batch.Solve.Stats)
	}
	if batch.Solve.Epoch != batch.Epoch {
		t.Fatalf("solve epoch %d != batch epoch %d", batch.Solve.Epoch, batch.Epoch)
	}

	// The committed outcome is readable from the snapshot endpoint.
	var oc SessionOutcomeResponse
	resp = getJSON(t, base+"/outcome", &oc)
	if resp.StatusCode != http.StatusOK || !oc.Solved {
		t.Fatalf("outcome: status %d solved=%v", resp.StatusCode, oc.Solved)
	}
	if oc.Epoch != batch.Solve.Epoch || oc.Solver != "mln" {
		t.Fatalf("outcome snapshot: epoch %d solver %q, want %d/mln", oc.Epoch, oc.Solver, batch.Solve.Epoch)
	}
	if len(oc.Removed) != 1 || !strings.Contains(oc.Removed[0], "Leeds") {
		t.Fatalf("outcome removed: %v", oc.Removed)
	}

	// A solve-less batch just applies the delta.
	var counts BatchResponse
	resp = postJSON(t, base+"/batch", BatchRequest{Remove: "CR coach Leeds [2003,2004] 0.5"}, &counts)
	if resp.StatusCode != http.StatusOK || counts.Removed != 1 || counts.Solve != nil {
		t.Fatalf("solve-less batch: status %d %+v", resp.StatusCode, counts)
	}

	// An invalid quad rejects the whole batch before anything applies.
	before := counts.Epoch
	resp = postJSON(t, base+"/batch", BatchRequest{Add: "CR coach X [2005,2006] 7.0"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch: status %d", resp.StatusCode)
	}
	resp = getJSON(t, base, &info)
	if resp.StatusCode != http.StatusOK || info.Epoch != before {
		t.Fatalf("rejected batch moved the epoch: %d -> %d", before, info.Epoch)
	}
}

// TestSessionOutcomeBeforeSolve: the snapshot endpoint reports
// solved=false until the session commits its first solve.
func TestSessionOutcomeBeforeSolve(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{
		TQuads: "CR coach Chelsea [2000,2004] 0.9",
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	var oc SessionOutcomeResponse
	resp = getJSON(t, ts.URL+"/api/sessions/"+info.ID+"/outcome", &oc)
	if resp.StatusCode != http.StatusOK || oc.Solved || oc.Solver != "" || len(oc.Kept) != 0 {
		t.Fatalf("pre-solve outcome: status %d %+v", resp.StatusCode, oc)
	}
}

func TestSessionLRUEviction(t *testing.T) {
	srv := NewWithConfig(Config{MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ids := make([]string, 3)
	for i := range ids {
		var info SessionInfo
		resp := postJSON(t, ts.URL+"/api/sessions", CreateSessionRequest{
			TQuads: fmt.Sprintf("S%d p O [2000,2001] 0.9", i),
		}, &info)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
		ids[i] = info.ID
	}
	if got := srv.sessions.len(); got != 2 {
		t.Fatalf("table size = %d, want 2", got)
	}
	// The first (least recently used) session was evicted.
	if resp := getJSON(t, ts.URL+"/api/sessions/"+ids[0], nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still reachable: status %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp := getJSON(t, ts.URL+"/api/sessions/"+id, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("live session %s: status %d", id, resp.StatusCode)
		}
	}
}
