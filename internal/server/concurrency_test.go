package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Concurrency suite for the session API — run it under -race. The
// tests pin solves in flight deterministically via the solveGate test
// hook (called with the session lock and an admission slot held) and
// then probe what may and may not proceed around them: solves on other
// sessions, snapshot reads, deletes and evictions of the gated
// session, and admission rejections past the queue bound.

const conflictRules = "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf"

// newConcurrencyServer starts a server with the given config and a
// gate that blocks solves on the returned gate's sessions.
func newConcurrencyServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewWithConfig(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// createSession makes a session seeded with facts unique to name.
func createSession(t *testing.T, baseURL, name string) string {
	t.Helper()
	var info SessionInfo
	resp := postJSON(t, baseURL+"/api/sessions", CreateSessionRequest{
		TQuads: fmt.Sprintf(`
%s coach Chelsea [2000,2004] 0.9
%s coach Napoli [2001,2003] 0.6
`, name, name),
		Rules: conflictRules,
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session %s: status %d", name, resp.StatusCode)
	}
	return info.ID
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSolvesOnDifferentSessionsOverlap pins session A's solve in
// flight and proves the rest of the API is not behind it: session B's
// solve starts and finishes, A's info and outcome GETs answer from the
// snapshot without blocking, and even deleting A mid-solve succeeds —
// the in-flight solve keeps its own reference and still returns 200.
func TestSolvesOnDifferentSessionsOverlap(t *testing.T) {
	srv, ts := newConcurrencyServer(t, Config{Parallelism: 1, MaxConcurrentSolves: 4})
	idA := createSession(t, ts.URL, "A")
	idB := createSession(t, ts.URL, "B")

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.solveGate = func(id string) {
		if id == idA {
			entered <- struct{}{}
			<-release
		}
	}

	solveA := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/api/sessions/"+idA+"/solve",
			SessionSolveRequest{Solver: "mln"}, nil)
		solveA <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("session A's solve never reached the gate")
	}

	// B solves to completion while A's solve is pinned in flight.
	var solveB SessionSolveResponse
	if resp := postJSON(t, ts.URL+"/api/sessions/"+idB+"/solve",
		SessionSolveRequest{Solver: "mln"}, &solveB); resp.StatusCode != http.StatusOK {
		t.Fatalf("B's solve blocked behind A's: status %d", resp.StatusCode)
	}
	if solveB.Stats.RemovedFacts != 1 {
		t.Fatalf("B's solve result: %+v", solveB.Stats)
	}

	// A's reads answer from the committed snapshot, not the live solve.
	var info SessionInfo
	if resp := getJSON(t, ts.URL+"/api/sessions/"+idA, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("A's info blocked behind its own solve: status %d", resp.StatusCode)
	}
	if info.Facts != 2 {
		t.Fatalf("A's snapshot info: %+v", info)
	}
	var oc SessionOutcomeResponse
	if resp := getJSON(t, ts.URL+"/api/sessions/"+idA+"/outcome", &oc); resp.StatusCode != http.StatusOK {
		t.Fatalf("A's outcome blocked behind its own solve: status %d", resp.StatusCode)
	}
	if oc.Solved {
		t.Fatalf("A has no committed solve yet, outcome reports one: %+v", oc)
	}

	// Deleting A mid-solve drops it from the table without touching the
	// in-flight solve.
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/api/sessions/"+idA, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete during solve: status %d", resp.StatusCode)
	}
	close(release)
	if code := <-solveA; code != http.StatusOK {
		t.Fatalf("A's solve after mid-flight delete: status %d", code)
	}
	if resp := getJSON(t, ts.URL+"/api/sessions/"+idA, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still reachable: status %d", resp.StatusCode)
	}
}

// TestEvictionDuringSolve fills a one-slot LRU table while its only
// session's solve is pinned in flight: the eviction only unlinks the
// session from the table, so the solve still completes and returns.
func TestEvictionDuringSolve(t *testing.T) {
	srv, ts := newConcurrencyServer(t, Config{Parallelism: 1, MaxSessions: 1, MaxConcurrentSolves: 4})
	idA := createSession(t, ts.URL, "A")

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.solveGate = func(id string) {
		if id == idA {
			entered <- struct{}{}
			<-release
		}
	}

	solveA := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/api/sessions/"+idA+"/solve",
			SessionSolveRequest{Solver: "mln"}, nil)
		solveA <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("solve never reached the gate")
	}

	// Creating B evicts A (capacity 1) while A's solve is in flight.
	idB := createSession(t, ts.URL, "B")
	if resp := getJSON(t, ts.URL+"/api/sessions/"+idA, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still reachable: status %d", resp.StatusCode)
	}
	close(release)
	if code := <-solveA; code != http.StatusOK {
		t.Fatalf("solve on evicted session: status %d", code)
	}
	if resp := getJSON(t, ts.URL+"/api/sessions/"+idB, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("survivor session: status %d", resp.StatusCode)
	}
}

// TestSolveAdmissionBackpressure exhausts a 1-slot, 1-queue admission
// gate and checks the third solve is rejected with 429 and a
// Retry-After hint instead of queueing unboundedly. The gate is shared
// across endpoints: the stateless /api/solve is rejected too.
func TestSolveAdmissionBackpressure(t *testing.T) {
	srv, ts := newConcurrencyServer(t, Config{
		Parallelism: 1, MaxConcurrentSolves: 1, MaxQueuedSolves: 1,
	})
	idA := createSession(t, ts.URL, "A")
	idB := createSession(t, ts.URL, "B")
	idC := createSession(t, ts.URL, "C")

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.solveGate = func(id string) {
		if id == idA {
			entered <- struct{}{}
			<-release
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	statuses := make(chan int, 2)
	go func() {
		defer wg.Done()
		resp := postJSON(t, ts.URL+"/api/sessions/"+idA+"/solve",
			SessionSolveRequest{Solver: "mln"}, nil)
		statuses <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("gated solve never started")
	}
	// B's solve takes the single queue seat and waits for the slot.
	go func() {
		defer wg.Done()
		resp := postJSON(t, ts.URL+"/api/sessions/"+idB+"/solve",
			SessionSolveRequest{Solver: "mln"}, nil)
		statuses <- resp.StatusCode
	}()
	waitFor(t, "a queued solve", func() bool { return len(srv.adm.queue) == 1 })

	// Slot and queue full: the next solves bounce immediately.
	resp := postJSON(t, ts.URL+"/api/sessions/"+idC+"/solve",
		SessionSolveRequest{Solver: "mln"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload session solve: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	resp = postJSON(t, ts.URL+"/api/solve", SolveRequest{
		Dataset: "running-example", Solver: "mln",
	}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload stateless solve: status %d, want 429", resp.StatusCode)
	}

	// Releasing the gate drains the queue: both admitted solves finish.
	close(release)
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("admitted solve: status %d", code)
		}
	}
}

// TestSnapshotReadHistory is the snapshot-isolation history checker: a
// writer toggles a conflicting fact and re-solves while concurrent
// readers hammer the outcome endpoint. Every read must observe a fully
// committed solve — its fact lists structurally consistent with its
// own statistics, its epoch drawn from the set of committed solve
// epochs, and per-reader epochs never moving backwards.
func TestSnapshotReadHistory(t *testing.T) {
	_, ts := newConcurrencyServer(t, Config{Parallelism: 1, MaxConcurrentSolves: 4})
	id := createSession(t, ts.URL, "W")
	base := ts.URL + "/api/sessions/" + id

	type commit struct{ kept, removed int }
	var mu sync.Mutex
	committed := map[uint64]commit{}

	const steps = 12
	done := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(done)
		probe := "W coach Napoli [2001,2003] 0.6"
		for i := 0; i < steps; i++ {
			req := BatchRequest{Solve: &SessionSolveRequest{Solver: "mln", ComponentSolve: true}}
			if i%2 == 0 {
				req.Remove = probe
			} else {
				req.Add = probe
			}
			var batch BatchResponse
			resp := postJSON(t, base+"/batch", req, &batch)
			if resp.StatusCode != http.StatusOK || batch.Solve == nil {
				writerErr <- fmt.Errorf("step %d: status %d", i, resp.StatusCode)
				return
			}
			mu.Lock()
			committed[batch.Solve.Epoch] = commit{
				kept:    batch.Solve.Stats.KeptFacts,
				removed: batch.Solve.Stats.RemovedFacts,
			}
			mu.Unlock()
		}
	}()

	type observation struct {
		epoch         uint64
		kept, removed int
	}
	const readers = 4
	var rg sync.WaitGroup
	obs := make([][]observation, readers)
	readerErr := make(chan error, readers)
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				var oc SessionOutcomeResponse
				resp := getJSON(t, base+"/outcome", &oc)
				if resp.StatusCode != http.StatusOK {
					readerErr <- fmt.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
				if !oc.Solved {
					continue
				}
				// Structural consistency: the lists of this snapshot must
				// match its own statistics — a torn read (lists from one
				// epoch, stats from another) fails here.
				if len(oc.Kept) != oc.Stats.KeptFacts || len(oc.Removed) != oc.Stats.RemovedFacts {
					readerErr <- fmt.Errorf("reader %d: torn outcome at epoch %d: %d/%d kept, %d/%d removed",
						r, oc.Epoch, len(oc.Kept), oc.Stats.KeptFacts, len(oc.Removed), oc.Stats.RemovedFacts)
					return
				}
				if oc.Epoch < last {
					readerErr <- fmt.Errorf("reader %d: epoch moved backwards: %d after %d", r, oc.Epoch, last)
					return
				}
				last = oc.Epoch
				obs[r] = append(obs[r], observation{oc.Epoch, oc.Stats.KeptFacts, oc.Stats.RemovedFacts})
			}
		}(r)
	}

	rg.Wait()
	select {
	case err := <-writerErr:
		t.Fatal(err)
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	// Every observed epoch must be a committed one, with the committed
	// statistics.
	total := 0
	for r, list := range obs {
		total += len(list)
		for _, o := range list {
			c, ok := committed[o.epoch]
			if !ok {
				t.Fatalf("reader %d observed uncommitted epoch %d", r, o.epoch)
			}
			if o.kept != c.kept || o.removed != c.removed {
				t.Fatalf("reader %d at epoch %d: observed %d/%d, committed %d/%d",
					r, o.epoch, o.kept, o.removed, c.kept, c.removed)
			}
		}
	}
	if total == 0 {
		t.Fatal("readers never observed a committed solve")
	}
}
