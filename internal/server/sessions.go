package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/translate"
)

// Stateful sessions: the incremental counterpart of the one-shot
// /api/solve endpoint. A session pins a core.Session — an epoch-versioned
// store plus a cached grounding engine — server-side, so a client can
// stream fact updates and re-solve, paying only for the delta:
//
//	POST   /api/sessions              {dataset?, rules?, tquads?} → {id}
//	GET    /api/sessions/{id}         → session info
//	POST   /api/sessions/{id}/facts   {tquads} → adds facts
//	DELETE /api/sessions/{id}/facts   {tquads} → removes facts
//	POST   /api/sessions/{id}/solve   {solver, threshold, parallelism,
//	                                   componentSolve, componentExactLimit,
//	                                   coldStart} → SolveResponse
//	DELETE /api/sessions/{id}         → drops the session
//
// Sessions live in a bounded LRU table; creating one past the capacity
// evicts the least recently used.

// DefaultMaxSessions bounds the LRU session table unless the Server
// overrides it.
const DefaultMaxSessions = 64

// session is one server-held incremental solving session.
type session struct {
	id string
	// mu serializes mutations and solves; core.Session is not safe for
	// concurrent use.
	mu   sync.Mutex
	sess *core.Session
	elem *list.Element // position in the LRU list
}

// sessionTable is a mutex-guarded LRU map of live sessions.
type sessionTable struct {
	mu   sync.Mutex
	max  int
	byID map[string]*session
	lru  *list.List // front = most recently used; values are *session
}

func newSessionTable(max int) *sessionTable {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &sessionTable{max: max, byID: make(map[string]*session), lru: list.New()}
}

// get returns the session and marks it most recently used.
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if ok {
		t.lru.MoveToFront(s.elem)
	}
	return s, ok
}

// put inserts a new session, evicting the least recently used past
// capacity. It returns the evicted session's id, if any.
func (t *sessionTable) put(s *session) (evicted string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.elem = t.lru.PushFront(s)
	t.byID[s.id] = s
	if t.lru.Len() > t.max {
		oldest := t.lru.Back()
		t.lru.Remove(oldest)
		old := oldest.Value.(*session)
		delete(t.byID, old.id)
		evicted = old.id
	}
	return evicted
}

// drop removes the session, reporting whether it existed.
func (t *sessionTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if !ok {
		return false
	}
	t.lru.Remove(s.elem)
	delete(t.byID, id)
	return true
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// CreateSessionRequest seeds a new incremental session. Dataset (a named
// server dataset) and TQuads (inline text) are both optional fact
// sources; Rules defaults to the dataset's program when a dataset is
// given.
type CreateSessionRequest struct {
	Dataset string `json:"dataset,omitempty"`
	TQuads  string `json:"tquads,omitempty"`
	Rules   string `json:"rules,omitempty"`
}

// SessionInfo describes a session's current state.
type SessionInfo struct {
	ID    string `json:"id"`
	Facts int    `json:"facts"`
	Rules int    `json:"rules"`
	Epoch uint64 `json:"epoch"`
}

func (s *Server) sessionInfo(ss *session) SessionInfo {
	return SessionInfo{
		ID:    ss.id,
		Facts: ss.sess.Store().Len(),
		Rules: len(ss.sess.Program().Rules),
		Epoch: uint64(ss.sess.Store().Epoch()),
	}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	sess := core.NewSession()
	rules := req.Rules
	if req.Dataset != "" {
		d, ok := s.dataset(req.Dataset)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
			return
		}
		if err := sess.LoadGraph(d.graph); err != nil {
			httpError(w, http.StatusInternalServerError, "loading dataset: %v", err)
			return
		}
		if strings.TrimSpace(rules) == "" {
			rules = d.program
		}
	}
	if req.TQuads != "" {
		if err := sess.LoadGraphText(req.TQuads); err != nil {
			httpError(w, http.StatusBadRequest, "parsing tquads: %v", err)
			return
		}
	}
	if strings.TrimSpace(rules) != "" {
		if err := sess.LoadProgramText(rules); err != nil {
			httpError(w, http.StatusBadRequest, "parsing rules: %v", err)
			return
		}
	}
	ss := &session{id: newSessionID(), sess: sess}
	s.sessions.put(ss)
	writeJSON(w, s.sessionInfo(ss))
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*session, bool) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return nil, false
	}
	return ss, true
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	ss.mu.Lock()
	info := s.sessionInfo(ss)
	ss.mu.Unlock()
	writeJSON(w, info)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.drop(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, map[string]bool{"deleted": true})
}

// FactsRequest carries TQuads text for fact addition or removal.
type FactsRequest struct {
	TQuads string `json:"tquads"`
}

// FactsResponse reports the effect of a facts update.
type FactsResponse struct {
	// Added and Removed count the facts that changed liveness; Updated
	// counts existing facts whose confidence was raised.
	Added   int    `json:"added,omitempty"`
	Removed int    `json:"removed,omitempty"`
	Updated int    `json:"updated,omitempty"`
	Facts   int    `json:"facts"`
	Epoch   uint64 `json:"epoch"`
}

func (s *Server) handleSessionFacts(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	var req FactsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	g, err := rdf.ParseGraphString(req.TQuads)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing tquads: %v", err)
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st := ss.sess.Store()
	resp := FactsResponse{}
	if r.Method == http.MethodDelete {
		for _, q := range g {
			if ss.sess.RemoveFact(q) {
				resp.Removed++
			}
		}
	} else {
		before := st.Epoch()
		if err := ss.sess.LoadGraph(g); err != nil {
			httpError(w, http.StatusBadRequest, "adding facts: %v", err)
			return
		}
		d := st.DeltaSince(before)
		resp.Added = len(d.Added)
		resp.Updated = len(d.Updated)
	}
	resp.Facts = st.Len()
	resp.Epoch = uint64(st.Epoch())
	writeJSON(w, resp)
}

// SessionSolveRequest tunes a session solve.
type SessionSolveRequest struct {
	Solver      string  `json:"solver"`
	Threshold   float64 `json:"threshold,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
	// ComponentSolve partitions the ground network into independent
	// conflict components; across session re-solves only the components
	// a delta dirtied are re-solved and re-repaired (stats.Components
	// reports the solver's solved/reused split, stats.Repair the
	// read-out's repaired/reused split).
	ComponentSolve bool `json:"componentSolve,omitempty"`
	// ComponentExactLimit is the largest component handed to the exact
	// MaxSAT engine in component mode (0 = default 48).
	ComponentExactLimit int `json:"componentExactLimit,omitempty"`
	// ColdStart disables warm-starting from the previous solution (and
	// drops the per-component solution cache for this solve).
	ColdStart bool `json:"coldStart,omitempty"`
	// Delta requests changelog mode: the response carries only the
	// facts and clusters that entered or left each Outcome list since
	// the session's previous solve (plus statistics), not the full
	// lists. Requires componentSolve — the delta-patched live outcome
	// is maintained on the component path only; without it the full
	// response is returned. After a cache invalidation (coldStart,
	// threshold or solver change) the delta reports the full outcome as
	// added.
	Delta bool `json:"delta,omitempty"`
}

// SessionSolveResponse is a SolveResponse plus incremental-path info.
// With componentSolve, stats.Repair reports the conflict-resolution
// read-out stage: its mode ("components"), the repaired/reused
// component split of this re-solve, and stage timings — the read-out
// counterpart of stats.Components — and stats.Outcome reports how the
// final Outcome was produced (live delta-patching vs full assembly,
// patched/reused split, index/merge timings).
type SessionSolveResponse struct {
	SolveResponse
	// Incremental reports whether the solve consumed only the delta.
	Incremental bool   `json:"incremental"`
	Epoch       uint64 `json:"epoch"`
	// Delta is the Outcome changelog of this solve (delta mode only);
	// when set, the full kept/removed/inferred/clusters lists are
	// omitted.
	Delta *OutcomeDeltaResponse `json:"delta,omitempty"`
}

// OutcomeDeltaResponse renders an Outcome changelog: the statements
// that entered or left each list since the previous solve, as display
// strings (removed-list entries annotated with their first
// explanation, like the full response's removed list).
type OutcomeDeltaResponse struct {
	AddedKept       []string   `json:"addedKept,omitempty"`
	RemovedKept     []string   `json:"removedKept,omitempty"`
	AddedRemoved    []string   `json:"addedRemoved,omitempty"`
	RemovedRemoved  []string   `json:"removedRemoved,omitempty"`
	AddedInferred   []string   `json:"addedInferred,omitempty"`
	RemovedInferred []string   `json:"removedInferred,omitempty"`
	AddedClusters   [][]string `json:"addedClusters,omitempty"`
	RemovedClusters [][]string `json:"removedClusters,omitempty"`
	// Truncated reports whether any list was capped at the server's
	// per-response fact limit.
	Truncated bool `json:"truncated,omitempty"`
}

// deltaResponse renders the changelog with the server's fact cap
// applied per list.
func (s *Server) deltaResponse(d *repair.OutcomeDelta) *OutcomeDeltaResponse {
	max := s.MaxFactsInResponse
	resp := &OutcomeDeltaResponse{}
	resp.AddedKept, resp.Truncated = factStrings(d.AddedKept, max, resp.Truncated)
	resp.RemovedKept, resp.Truncated = factStrings(d.RemovedKept, max, resp.Truncated)
	resp.AddedRemoved, resp.Truncated = removedStrings(d.AddedRemoved, max, resp.Truncated)
	resp.RemovedRemoved, resp.Truncated = removedStrings(d.RemovedRemoved, max, resp.Truncated)
	resp.AddedInferred, resp.Truncated = factStrings(d.AddedInferred, max, resp.Truncated)
	resp.RemovedInferred, resp.Truncated = factStrings(d.RemovedInferred, max, resp.Truncated)
	resp.AddedClusters, resp.Truncated = clusterStrings(d.AddedClusters, max, resp.Truncated)
	resp.RemovedClusters, resp.Truncated = clusterStrings(d.RemovedClusters, max, resp.Truncated)
	return resp
}

func (s *Server) handleSessionSolve(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SessionSolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Solver == "" {
		req.Solver = "mln"
	}
	solver, err := translate.ParseSolver(req.Solver)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = s.Parallelism
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	res, err := ss.sess.Solve(core.SolveOptions{
		Solver:              solver,
		Threshold:           req.Threshold,
		Parallelism:         parallelism,
		ComponentSolve:      req.ComponentSolve,
		ComponentExactLimit: req.ComponentExactLimit,
		ColdStart:           req.ColdStart,
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "solving: %v", err)
		return
	}
	resp := SessionSolveResponse{
		Incremental: res.Incremental,
		Epoch:       uint64(ss.sess.Store().Epoch()),
	}
	if req.Delta && res.Delta != nil {
		// Changelog mode: statistics plus the diff, no full lists.
		resp.SolveResponse = SolveResponse{Stats: res.Stats}
		resp.Delta = s.deltaResponse(res.Delta)
	} else {
		resp.SolveResponse = s.solveResponse(res)
	}
	writeJSON(w, resp)
}
