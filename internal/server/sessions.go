package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/translate"
)

// Stateful sessions: the incremental counterpart of the one-shot
// /api/solve endpoint. A session pins a core.Session — an epoch-versioned
// store plus a cached grounding engine — server-side, so a client can
// stream fact updates and re-solve, paying only for the delta:
//
//	POST   /api/sessions              {dataset?, rules?, tquads?} → {id}
//	GET    /api/sessions/{id}         → session info (snapshot read)
//	GET    /api/sessions/{id}/outcome → last committed outcome (snapshot read)
//	POST   /api/sessions/{id}/facts   {tquads} → adds facts
//	DELETE /api/sessions/{id}/facts   {tquads} → removes facts
//	POST   /api/sessions/{id}/batch   {add?, remove?, solve?} → batched
//	                                   adds+removes (+solve) in one request
//	POST   /api/sessions/{id}/solve   {solver, threshold, parallelism,
//	                                   componentSolve, componentExactLimit,
//	                                   coldStart, rebuildPlan} → SolveResponse
//	DELETE /api/sessions/{id}         → drops the session
//
// Sessions live in a bounded LRU table; creating one past the capacity
// evicts the least recently used.
//
// Concurrency: mutations and solves on one session serialize on its
// mutex, but reads never wait behind them — every commit (create,
// fact mutation, solve) publishes an immutable snapshot swapped in
// atomically, and GET handlers serve straight from the latest
// published snapshot. The guarantee is snapshot isolation at the
// session level: a reader only ever observes the state of a fully
// committed epoch, never a torn intermediate, and the epochs it
// observes never move backwards. Solves across *different* sessions
// run concurrently, bounded only by the server's admission gate (see
// admission.go).

// DefaultMaxSessions bounds the LRU session table unless the Server
// overrides it.
const DefaultMaxSessions = 64

// session is one server-held incremental solving session.
type session struct {
	id string
	// mu serializes mutations and solves; core.Session is not safe for
	// concurrent use. Reads do not take it — they load snap.
	mu   sync.Mutex
	sess *core.Session
	elem *list.Element // position in the LRU list
	// snap is the session's last committed state, swapped atomically
	// at every commit while mu is held. Loads need no lock.
	snap atomic.Pointer[sessionSnapshot]
}

// sessionSnapshot is an immutable committed view of a session. The
// outcome's slices are copy-on-write on the live-outcome path and
// freshly built on every other path, so the snapshot stays valid while
// later solves patch the session's state.
type sessionSnapshot struct {
	info SessionInfo
	// outcome is the last committed solve's result (nil before the
	// first solve).
	outcome *repair.Outcome
	solver  string
	// solveEpoch is the store epoch the outcome reflects.
	solveEpoch uint64
}

// publish swaps in a new committed snapshot. Callers hold ss.mu (so
// the info fields are a consistent cut of the session); oc == nil
// carries the previous solve's outcome forward — fact mutations move
// the store epoch without recommitting an outcome.
func (ss *session) publish(oc *repair.Outcome, solver string) {
	next := &sessionSnapshot{info: SessionInfo{
		ID:    ss.id,
		Facts: ss.sess.Store().Len(),
		Rules: len(ss.sess.Program().Rules),
		Epoch: uint64(ss.sess.Store().Epoch()),
	}}
	if oc != nil {
		next.outcome, next.solver, next.solveEpoch = oc, solver, next.info.Epoch
	} else if prev := ss.snap.Load(); prev != nil {
		next.outcome, next.solver, next.solveEpoch = prev.outcome, prev.solver, prev.solveEpoch
	}
	ss.snap.Store(next)
}

// sessionTable is a mutex-guarded LRU map of live sessions.
type sessionTable struct {
	mu   sync.Mutex
	max  int
	byID map[string]*session
	lru  *list.List // front = most recently used; values are *session
}

func newSessionTable(max int) *sessionTable {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &sessionTable{max: max, byID: make(map[string]*session), lru: list.New()}
}

// get returns the session and marks it most recently used.
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if ok {
		t.lru.MoveToFront(s.elem)
	}
	return s, ok
}

// put inserts a new session, evicting the least recently used past
// capacity. It returns the evicted session, if any, so the caller can
// release its durable state.
func (t *sessionTable) put(s *session) (evicted *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.elem = t.lru.PushFront(s)
	t.byID[s.id] = s
	if t.lru.Len() > t.max {
		oldest := t.lru.Back()
		t.lru.Remove(oldest)
		evicted = oldest.Value.(*session)
		delete(t.byID, evicted.id)
	}
	return evicted
}

// drop removes the session, returning it if it existed.
func (t *sessionTable) drop(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	t.lru.Remove(s.elem)
	delete(t.byID, id)
	return s, true
}

// all returns the live sessions in no particular order, without
// touching LRU positions.
func (t *sessionTable) all() []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*session, 0, len(t.byID))
	for _, s := range t.byID {
		out = append(out, s)
	}
	return out
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// CreateSessionRequest seeds a new incremental session. Dataset (a named
// server dataset) and TQuads (inline text) are both optional fact
// sources; Rules defaults to the dataset's program when a dataset is
// given.
type CreateSessionRequest struct {
	Dataset string `json:"dataset,omitempty"`
	TQuads  string `json:"tquads,omitempty"`
	Rules   string `json:"rules,omitempty"`
}

// SessionInfo describes a session's current state. Memory is only
// populated on direct info reads (GET /api/sessions/{id}); commit-time
// snapshots leave it nil to keep publish O(1).
type SessionInfo struct {
	ID     string             `json:"id"`
	Facts  int                `json:"facts"`
	Rules  int                `json:"rules"`
	Epoch  uint64             `json:"epoch"`
	Memory *store.MemoryStats `json:"memory,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	sess := core.NewSession()
	rules := req.Rules
	if req.Dataset != "" {
		d, ok := s.dataset(req.Dataset)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
			return
		}
		if err := sess.LoadGraph(d.graph); err != nil {
			httpError(w, http.StatusInternalServerError, "loading dataset: %v", err)
			return
		}
		if strings.TrimSpace(rules) == "" {
			rules = d.program
		}
	}
	if req.TQuads != "" {
		if err := sess.LoadGraphText(req.TQuads); err != nil {
			httpError(w, http.StatusBadRequest, "parsing tquads: %v", err)
			return
		}
	}
	if strings.TrimSpace(rules) != "" {
		if err := sess.LoadProgramText(rules); err != nil {
			httpError(w, http.StatusBadRequest, "parsing rules: %v", err)
			return
		}
	}
	ss := &session{id: newSessionID(), sess: sess}
	if s.Durable() {
		if err := s.enableSessionDurability(ss, rules); err != nil {
			httpError(w, http.StatusInternalServerError, "persisting session: %v", err)
			return
		}
	}
	ss.publish(nil, "")
	if evicted := s.sessions.put(ss); evicted != nil {
		s.closeEvicted(evicted)
	}
	writeJSON(w, ss.snap.Load().info)
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*session, bool) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return nil, false
	}
	return ss, true
}

// handleSessionInfo serves the session's committed info from the
// published snapshot — it never waits behind an in-flight solve. The
// memory estimate is computed here against the live store (its own
// read lock, not the session mutex), so it reflects the current epoch
// even when it is ahead of the snapshot.
func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	info := ss.snap.Load().info
	m := ss.sess.Store().MemoryStats()
	info.Memory = &m
	writeJSON(w, info)
}

// SessionOutcomeResponse serves the last committed solve's outcome.
type SessionOutcomeResponse struct {
	SolveResponse
	// Solved reports whether the session has committed a solve yet;
	// the embedded outcome fields are only meaningful when true.
	Solved bool   `json:"solved"`
	Solver string `json:"solver,omitempty"`
	// Epoch is the store epoch the outcome reflects — its snapshot
	// version. Readers only ever observe fully committed epochs.
	Epoch uint64 `json:"epoch"`
}

// handleSessionOutcome serves the last committed solve from the
// published snapshot, without blocking behind an in-flight solve: the
// snapshot's outcome is immutable, so rendering it races with nothing.
func (s *Server) handleSessionOutcome(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	snap := ss.snap.Load()
	resp := SessionOutcomeResponse{Epoch: snap.solveEpoch}
	if snap.outcome != nil {
		resp.Solved = true
		resp.Solver = snap.solver
		resp.SolveResponse = s.outcomeResponse(snap.outcome)
	}
	writeJSON(w, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.drop(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	// An in-flight solve may hold ss.mu for seconds; deletion must not
	// wait behind it. Unlink the data directory now — open WAL file
	// descriptors keep working until closed — and close the journal in
	// the background once the lock frees up.
	s.removeSessionData(ss.id)
	go func() {
		ss.mu.Lock()
		defer ss.mu.Unlock()
		ss.sess.Close()
	}()
	writeJSON(w, map[string]bool{"deleted": true})
}

// FactsRequest carries TQuads text for fact addition or removal.
type FactsRequest struct {
	TQuads string `json:"tquads"`
}

// FactsResponse reports the effect of a facts update.
type FactsResponse struct {
	// Added and Removed count the facts that changed liveness; Updated
	// counts existing facts whose confidence was raised.
	Added   int    `json:"added,omitempty"`
	Removed int    `json:"removed,omitempty"`
	Updated int    `json:"updated,omitempty"`
	Facts   int    `json:"facts"`
	Epoch   uint64 `json:"epoch"`
}

func (s *Server) handleSessionFacts(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	var req FactsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	g, err := rdf.ParseGraphString(req.TQuads)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing tquads: %v", err)
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st := ss.sess.Store()
	resp := FactsResponse{}
	if r.Method == http.MethodDelete {
		for _, q := range g {
			if ss.sess.RemoveFact(q) {
				resp.Removed++
			}
		}
	} else {
		before := st.Epoch()
		if err := ss.sess.LoadGraph(g); err != nil {
			httpError(w, http.StatusBadRequest, "adding facts: %v", err)
			return
		}
		d := st.DeltaSince(before)
		resp.Added = len(d.Added)
		resp.Updated = len(d.Updated)
	}
	ss.publish(nil, "")
	if err := ss.sess.Sync(); err != nil {
		httpError(w, http.StatusInternalServerError, "persisting facts: %v", err)
		return
	}
	resp.Facts = st.Len()
	resp.Epoch = uint64(st.Epoch())
	writeJSON(w, resp)
}

// BatchRequest carries a combined update: TQuads to retract and to
// assert, applied as one batch (removals first), plus an optional
// solve to run in the same request. The whole batch costs one session
// lock acquisition and — on the next solve — one grounding delta, one
// dirty-component set and one outcome patch, however many facts it
// carries.
type BatchRequest struct {
	Add    string `json:"add,omitempty"`
	Remove string `json:"remove,omitempty"`
	// Solve, when present, re-solves right after the batch applies,
	// still under the same lock acquisition.
	Solve *SessionSolveRequest `json:"solve,omitempty"`
}

// BatchResponse reports the batch's net effect and, when requested,
// the solve's result.
type BatchResponse struct {
	FactsResponse
	Solve *SessionSolveResponse `json:"solve,omitempty"`
}

func (s *Server) handleSessionBatch(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Parse everything before taking any lock or slot.
	add, err := rdf.ParseGraphString(req.Add)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing add tquads: %v", err)
		return
	}
	remove, err := rdf.ParseGraphString(req.Remove)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parsing remove tquads: %v", err)
		return
	}
	var solver translate.Solver
	if req.Solve != nil {
		if solver, err = parseSolveSolver(req.Solve); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// The solve rides the same admission gate as a standalone one.
		if !s.admitSolve(w) {
			return
		}
		defer s.adm.release()
	}

	ss.mu.Lock()
	br, err := ss.sess.ApplyBatch(add, remove)
	if err != nil {
		ss.mu.Unlock()
		httpError(w, http.StatusBadRequest, "applying batch: %v", err)
		return
	}
	if err := ss.sess.Sync(); err != nil {
		ss.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "persisting batch: %v", err)
		return
	}
	ss.publish(nil, "")
	resp := BatchResponse{FactsResponse: FactsResponse{
		Added:   br.Added,
		Removed: br.Removed,
		Updated: br.Updated,
		Facts:   ss.sess.Store().Len(),
		Epoch:   uint64(ss.sess.Store().Epoch()),
	}}
	var res *core.Resolution
	var epoch uint64
	if req.Solve != nil {
		res, epoch, err = s.solveLocked(ss, solver, *req.Solve)
	}
	ss.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "solving: %v", err)
		return
	}
	if res != nil {
		sr := s.renderSessionSolve(res, epoch, req.Solve.Delta)
		resp.Solve = &sr
	}
	writeJSON(w, resp)
}

// SessionSolveRequest tunes a session solve.
type SessionSolveRequest struct {
	Solver      string  `json:"solver"`
	Threshold   float64 `json:"threshold,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
	// ComponentSolve partitions the ground network into independent
	// conflict components; across session re-solves only the components
	// a delta dirtied are re-solved and re-repaired (stats.Components
	// reports the solver's solved/reused split, stats.Repair the
	// read-out's repaired/reused split).
	ComponentSolve bool `json:"componentSolve,omitempty"`
	// ComponentExactLimit is the largest component handed to the exact
	// MaxSAT engine in component mode (0 = default 48).
	ComponentExactLimit int `json:"componentExactLimit,omitempty"`
	// ColdStart disables warm-starting from the previous solution (and
	// drops the per-component solution cache for this solve).
	ColdStart bool `json:"coldStart,omitempty"`
	// RebuildPlan forces this solve to build its component decomposition
	// plan from scratch instead of patching the session's delta-maintained
	// plan — the from-scratch baseline (stats.Plan reports which path
	// ran and its timing).
	RebuildPlan bool `json:"rebuildPlan,omitempty"`
	// Delta requests changelog mode: the response carries only the
	// facts and clusters that entered or left each Outcome list since
	// the session's previous solve (plus statistics), not the full
	// lists. Requires componentSolve — the delta-patched live outcome
	// is maintained on the component path only; without it the full
	// response is returned. After a cache invalidation (coldStart,
	// threshold or solver change) the delta reports the full outcome as
	// added.
	Delta bool `json:"delta,omitempty"`
}

// SessionSolveResponse is a SolveResponse plus incremental-path info.
// With componentSolve, stats.Repair reports the conflict-resolution
// read-out stage: its mode ("components"), the repaired/reused
// component split of this re-solve, and stage timings — the read-out
// counterpart of stats.Components — and stats.Outcome reports how the
// final Outcome was produced (live delta-patching vs full assembly,
// patched/reused split, index/merge timings).
type SessionSolveResponse struct {
	SolveResponse
	// Incremental reports whether the solve consumed only the delta.
	Incremental bool   `json:"incremental"`
	Epoch       uint64 `json:"epoch"`
	// Delta is the Outcome changelog of this solve (delta mode only);
	// when set, the full kept/removed/inferred/clusters lists are
	// omitted.
	Delta *OutcomeDeltaResponse `json:"delta,omitempty"`
}

// OutcomeDeltaResponse renders an Outcome changelog: the statements
// that entered or left each list since the previous solve, as display
// strings (removed-list entries annotated with their first
// explanation, like the full response's removed list).
type OutcomeDeltaResponse struct {
	AddedKept       []string   `json:"addedKept,omitempty"`
	RemovedKept     []string   `json:"removedKept,omitempty"`
	AddedRemoved    []string   `json:"addedRemoved,omitempty"`
	RemovedRemoved  []string   `json:"removedRemoved,omitempty"`
	AddedInferred   []string   `json:"addedInferred,omitempty"`
	RemovedInferred []string   `json:"removedInferred,omitempty"`
	AddedClusters   [][]string `json:"addedClusters,omitempty"`
	RemovedClusters [][]string `json:"removedClusters,omitempty"`
	// Truncated reports whether any list was capped at the server's
	// per-response fact limit.
	Truncated bool `json:"truncated,omitempty"`
}

// deltaResponse renders the changelog with the server's fact cap
// applied per list.
func (s *Server) deltaResponse(d *repair.OutcomeDelta) *OutcomeDeltaResponse {
	max := s.MaxFactsInResponse
	resp := &OutcomeDeltaResponse{}
	resp.AddedKept, resp.Truncated = factStrings(d.AddedKept, max, resp.Truncated)
	resp.RemovedKept, resp.Truncated = factStrings(d.RemovedKept, max, resp.Truncated)
	resp.AddedRemoved, resp.Truncated = removedStrings(d.AddedRemoved, max, resp.Truncated)
	resp.RemovedRemoved, resp.Truncated = removedStrings(d.RemovedRemoved, max, resp.Truncated)
	resp.AddedInferred, resp.Truncated = factStrings(d.AddedInferred, max, resp.Truncated)
	resp.RemovedInferred, resp.Truncated = factStrings(d.RemovedInferred, max, resp.Truncated)
	resp.AddedClusters, resp.Truncated = clusterStrings(d.AddedClusters, max, resp.Truncated)
	resp.RemovedClusters, resp.Truncated = clusterStrings(d.RemovedClusters, max, resp.Truncated)
	return resp
}

// parseSolveSolver resolves the request's solver name, defaulting the
// empty string to MLN.
func parseSolveSolver(req *SessionSolveRequest) (translate.Solver, error) {
	if req.Solver == "" {
		req.Solver = "mln"
	}
	return translate.ParseSolver(req.Solver)
}

// solveLocked runs one admitted solve on the session and publishes the
// committed snapshot. The caller holds ss.mu and an admission slot; it
// returns the resolution and the store epoch the outcome reflects.
func (s *Server) solveLocked(ss *session, solver translate.Solver, req SessionSolveRequest) (*core.Resolution, uint64, error) {
	if s.solveGate != nil {
		s.solveGate(ss.id)
	}
	res, err := ss.sess.Solve(core.SolveOptions{
		Solver:              solver,
		Threshold:           req.Threshold,
		Parallelism:         s.solveParallelism(req.Parallelism),
		ComponentSolve:      req.ComponentSolve,
		ComponentExactLimit: req.ComponentExactLimit,
		ColdStart:           req.ColdStart,
		RebuildPlan:         req.RebuildPlan,
	})
	if err != nil {
		return nil, 0, err
	}
	ss.publish(res.Outcome, solver.String())
	return res, uint64(ss.sess.Store().Epoch()), nil
}

// renderSessionSolve renders a committed solve. It runs outside the
// session lock: the resolution's outcome is an immutable snapshot.
func (s *Server) renderSessionSolve(res *core.Resolution, epoch uint64, delta bool) SessionSolveResponse {
	resp := SessionSolveResponse{Incremental: res.Incremental, Epoch: epoch}
	if delta && res.Delta != nil {
		// Changelog mode: statistics plus the diff, no full lists.
		resp.SolveResponse = SolveResponse{Stats: res.Stats}
		resp.Delta = s.deltaResponse(res.Delta)
	} else {
		resp.SolveResponse = s.solveResponse(res)
	}
	return resp
}

func (s *Server) handleSessionSolve(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SessionSolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	solver, err := parseSolveSolver(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.admitSolve(w) {
		return
	}
	defer s.adm.release()
	ss.mu.Lock()
	res, epoch, err := s.solveLocked(ss, solver, req)
	ss.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "solving: %v", err)
		return
	}
	writeJSON(w, s.renderSessionSolve(res, epoch, req.Delta))
}
