package rdf

import (
	"os"
	"strings"
	"testing"
)

// FuzzParseGraphString hammers the TQuads parser: it must never panic,
// and every graph it accepts must survive a write → re-parse round trip
// with the same number of quads and valid contents.
func FuzzParseGraphString(f *testing.F) {
	if seed, err := os.ReadFile("../../testdata/running-example.tq"); err == nil {
		f.Add(string(seed))
	}
	f.Add("CR coach Chelsea [2000,2004] 0.9")
	f.Add(`<http://ex/s> <http://ex/p> "lit"^^<http://ex/dt> [1,2] 0.5 .`)
	f.Add(`_:b <p> "v"@en [-5,5]`)
	f.Add("# comment only\n\na b c [1,1]")
	f.Add("a b c [2,1] 0.5")  // inverted interval: must error, not panic
	f.Add("a b c [1,2] -0.5") // invalid confidence

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseGraphString(src)
		if err != nil {
			return
		}
		for i, q := range g {
			if err := q.Validate(); err != nil {
				t.Fatalf("accepted invalid quad %d (%v): %v", i, q, err)
			}
		}
		var sb strings.Builder
		if err := WriteGraph(&sb, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := ParseGraphString(sb.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialised:\n%s", err, sb.String())
		}
		if len(g2) != len(g) {
			t.Fatalf("round trip changed quad count %d -> %d", len(g), len(g2))
		}
	})
}
