package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maps namespace prefixes to IRI bases, supporting the compact
// "prefix:local" notation common in RDF tooling. The zero value is
// empty; NewPrefixMap preloads the ubiquitous W3C prefixes.
type PrefixMap struct {
	toBase map[string]string
}

// Well-known namespace bases.
const (
	NSRDF  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	NSRDFS = "http://www.w3.org/2000/01/rdf-schema#"
	NSXSD  = "http://www.w3.org/2001/XMLSchema#"
	NSOWL  = "http://www.w3.org/2002/07/owl#"
)

// NewPrefixMap returns a map preloaded with rdf, rdfs, xsd and owl.
func NewPrefixMap() *PrefixMap {
	pm := &PrefixMap{toBase: make(map[string]string)}
	pm.Bind("rdf", NSRDF)
	pm.Bind("rdfs", NSRDFS)
	pm.Bind("xsd", NSXSD)
	pm.Bind("owl", NSOWL)
	return pm
}

// Bind associates a prefix with a base IRI, replacing any previous
// binding.
func (pm *PrefixMap) Bind(prefix, base string) {
	if pm.toBase == nil {
		pm.toBase = make(map[string]string)
	}
	pm.toBase[prefix] = base
}

// Base returns the base IRI bound to prefix.
func (pm *PrefixMap) Base(prefix string) (string, bool) {
	base, ok := pm.toBase[prefix]
	return base, ok
}

// Expand resolves "prefix:local" into a full IRI. Inputs without a colon
// or with an unbound prefix are returned unchanged, so Expand can be
// applied uniformly to mixed input.
func (pm *PrefixMap) Expand(curie string) string {
	colon := strings.IndexByte(curie, ':')
	if colon < 0 {
		return curie
	}
	prefix, local := curie[:colon], curie[colon+1:]
	base, ok := pm.toBase[prefix]
	if !ok {
		return curie
	}
	return base + local
}

// ExpandTerm expands IRI terms through the map, leaving other term kinds
// untouched.
func (pm *PrefixMap) ExpandTerm(t Term) Term {
	if t.Kind == IRI {
		t.Value = pm.Expand(t.Value)
	}
	return t
}

// Shorten rewrites a full IRI into "prefix:local" using the
// longest-matching bound base; unmatched IRIs are returned unchanged.
func (pm *PrefixMap) Shorten(iri string) string {
	bestPrefix, bestBase := "", ""
	for prefix, base := range pm.toBase {
		if strings.HasPrefix(iri, base) && len(base) > len(bestBase) {
			bestPrefix, bestBase = prefix, base
		}
	}
	if bestBase == "" {
		return iri
	}
	return bestPrefix + ":" + iri[len(bestBase):]
}

// Prefixes returns the bound prefixes in sorted order.
func (pm *PrefixMap) Prefixes() []string {
	out := make([]string, 0, len(pm.toBase))
	for p := range pm.toBase {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ExpandGraph expands every IRI in the graph through the map, returning
// a new graph.
func (pm *PrefixMap) ExpandGraph(g Graph) Graph {
	out := make(Graph, len(g))
	for i, q := range g {
		q.Subject = pm.ExpandTerm(q.Subject)
		q.Predicate = pm.ExpandTerm(q.Predicate)
		q.Object = pm.ExpandTerm(q.Object)
		out[i] = q
	}
	return out
}

// ParsePrefixDirectives reads "@prefix p: <base> ." lines (Turtle-style)
// and binds them, returning the remaining lines. Unparseable directives
// are an error.
func (pm *PrefixMap) ParsePrefixDirectives(text string) (rest string, err error) {
	var kept []string
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "@prefix") {
			kept = append(kept, line)
			continue
		}
		fields := strings.Fields(strings.TrimSuffix(trimmed, "."))
		if len(fields) != 3 || !strings.HasSuffix(fields[1], ":") ||
			!strings.HasPrefix(fields[2], "<") || !strings.HasSuffix(fields[2], ">") {
			return "", fmt.Errorf("rdf: line %d: malformed @prefix directive %q", i+1, trimmed)
		}
		prefix := strings.TrimSuffix(fields[1], ":")
		base := strings.TrimSuffix(strings.TrimPrefix(fields[2], "<"), ">")
		pm.Bind(prefix, base)
	}
	return strings.Join(kept, "\n"), nil
}
