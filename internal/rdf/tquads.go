package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/temporal"
)

// This file implements the TQuads text format, an N-Quads-style
// line-oriented serialisation of uncertain temporal facts:
//
//	<subject> <predicate> <object> [start,end] confidence .
//
// Terms may be written as <IRI>, _:blank, "literal"(^^<dt> | @lang), or —
// in the compact variant the paper uses — as bare names (CR, coach),
// which parse as IRIs. The confidence is optional and defaults to 1.0;
// the trailing dot is optional. '#' starts a comment.

// ParseGraph reads a whole TQuads document.
func ParseGraph(r io.Reader) (Graph, error) {
	var g Graph
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := ParseQuad(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		g = append(g, q)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading tquads: %w", err)
	}
	return g, nil
}

// ParseGraphString is ParseGraph over a string.
func ParseGraphString(s string) (Graph, error) {
	return ParseGraph(strings.NewReader(s))
}

// WriteGraph serialises the graph in TQuads syntax, one quad per line.
func WriteGraph(w io.Writer, g Graph) error {
	bw := bufio.NewWriter(w)
	for _, q := range g {
		if _, err := bw.WriteString(q.String()); err != nil {
			return fmt.Errorf("rdf: writing tquads: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("rdf: writing tquads: %w", err)
		}
	}
	return bw.Flush()
}

// ParseQuad parses a single TQuads line.
func ParseQuad(line string) (Quad, error) {
	p := &tqParser{in: line}
	q, err := p.quad()
	if err != nil {
		return Quad{}, fmt.Errorf("rdf: %w in %q", err, line)
	}
	return q, nil
}

type tqParser struct {
	in  string
	pos int
}

func (p *tqParser) quad() (Quad, error) {
	var q Quad
	var err error
	if q.Subject, err = p.term(); err != nil {
		return q, fmt.Errorf("subject: %w", err)
	}
	if q.Predicate, err = p.term(); err != nil {
		return q, fmt.Errorf("predicate: %w", err)
	}
	if q.Object, err = p.term(); err != nil {
		return q, fmt.Errorf("object: %w", err)
	}
	if q.Interval, err = p.interval(); err != nil {
		return q, fmt.Errorf("interval: %w", err)
	}
	q.Confidence = 1.0
	p.skipSpace()
	if !p.eof() && p.peek() != '.' {
		conf, err := p.number()
		if err != nil {
			return q, fmt.Errorf("confidence: %w", err)
		}
		q.Confidence = conf
	}
	p.skipSpace()
	if !p.eof() && p.peek() == '.' {
		p.pos++
	}
	p.skipSpace()
	if !p.eof() && p.peek() == '#' {
		p.pos = len(p.in) // trailing comment
	}
	if !p.eof() {
		return q, fmt.Errorf("trailing garbage at column %d", p.pos+1)
	}
	return q, q.Validate()
}

func (p *tqParser) term() (Term, error) {
	p.skipSpace()
	if p.eof() {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch c := p.peek(); {
	case c == '<':
		return p.iri()
	case c == '"':
		return p.literal()
	case c == '_' && p.pos+1 < len(p.in) && p.in[p.pos+1] == ':':
		p.pos += 2
		start := p.pos
		for !p.eof() && isNameByte(p.peek()) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		return NewBlank(p.in[start:p.pos]), nil
	case c == '[':
		return Term{}, fmt.Errorf("found interval where a term was expected")
	default:
		// Compact bare name: read until whitespace; parse as IRI. Numbers
		// become xsd:integer literals, matching the paper's birthDate
		// example (CR, birthDate, 1951, [1951,2017]).
		start := p.pos
		for !p.eof() && !isSpaceByte(p.peek()) {
			p.pos++
		}
		tok := p.in[start:p.pos]
		if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
			return Integer(v), nil
		}
		if strings.ContainsAny(tok, `<>"`) {
			// Angle brackets and quotes delimit the explicit term forms;
			// a bare name containing them cannot be re-serialised.
			return Term{}, fmt.Errorf("bare name %q contains reserved characters", tok)
		}
		return NewIRI(tok), nil
	}
}

func (p *tqParser) iri() (Term, error) {
	p.pos++ // consume '<'
	start := p.pos
	for !p.eof() && p.peek() != '>' {
		p.pos++
	}
	if p.eof() {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.in[start:p.pos]
	p.pos++ // consume '>'
	if iri == "" {
		return Term{}, fmt.Errorf("empty IRI")
	}
	return NewIRI(iri), nil
}

func (p *tqParser) literal() (Term, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for !p.eof() {
		c := p.in[p.pos]
		if c == '\\' && p.pos+1 < len(p.in) {
			b.WriteByte(c)
			b.WriteByte(p.in[p.pos+1])
			p.pos += 2
			continue
		}
		if c == '"' {
			break
		}
		b.WriteByte(c)
		p.pos++
	}
	if p.eof() {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	p.pos++ // consume closing '"'
	t := NewLiteral(unescapeLiteral(b.String()))
	if !p.eof() && p.peek() == '@' {
		p.pos++
		start := p.pos
		for !p.eof() && (isNameByte(p.peek()) || p.peek() == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		t.Lang = p.in[start:p.pos]
	} else if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.eof() || p.peek() != '<' {
			return Term{}, fmt.Errorf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		t.Datatype = dt.Value
	}
	return t, nil
}

func (p *tqParser) interval() (temporal.Interval, error) {
	p.skipSpace()
	if p.eof() || p.peek() != '[' {
		return temporal.Interval{}, fmt.Errorf("expected '[' at column %d", p.pos+1)
	}
	start := p.pos
	for !p.eof() && p.peek() != ']' {
		p.pos++
	}
	if p.eof() {
		return temporal.Interval{}, fmt.Errorf("unterminated interval")
	}
	p.pos++ // consume ']'
	return temporal.Parse(p.in[start:p.pos])
}

func (p *tqParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() && !isSpaceByte(p.peek()) && p.peek() != '.' {
		p.pos++
	}
	// A float confidence contains a '.'; the loop above stops at '.', so
	// extend over "digit '.' digit" sequences.
	for p.pos < len(p.in) && p.in[p.pos] == '.' && p.pos+1 < len(p.in) && p.in[p.pos+1] >= '0' && p.in[p.pos+1] <= '9' {
		p.pos++
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.pos++
		}
	}
	tok := p.in[start:p.pos]
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	return v, nil
}

func (p *tqParser) skipSpace() {
	for !p.eof() && isSpaceByte(p.in[p.pos]) {
		p.pos++
	}
}

func (p *tqParser) peek() byte { return p.in[p.pos] }
func (p *tqParser) eof() bool  { return p.pos >= len(p.in) }

func isSpaceByte(c byte) bool { return c == ' ' || c == '\t' }

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
