// Package rdf implements the data model of uncertain temporal knowledge
// graphs (utkgs): RDF terms, temporal quads — triples annotated with a
// validity interval and a confidence value — and a line-oriented text
// format ("TQuads") for reading and writing them.
//
// A utkg is a set of weighted temporal facts such as
//
//	<CR> <coach> <Chelsea> [2000,2004] 0.9 .
//
// following Figure 1 of the TeCoRe paper (VLDB 2017).
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the kinds of RDF terms.
type TermKind uint8

const (
	// IRI is an internationalised resource identifier (written <...> or
	// as a bare prefixed/plain name in the compact syntax).
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is a blank node (written _:label).
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term. Terms are small value types and are compared with
// ==; two terms are identical iff all fields match.
type Term struct {
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label, depending on Kind.
	Value string
	// Datatype is the datatype IRI for typed literals ("" otherwise).
	Datatype string
	// Lang is the language tag for language-tagged literals ("" otherwise).
	Lang string
}

// Compare orders terms by kind, value, datatype and language tag,
// giving a deterministic total order over distinct terms.
func (t Term) Compare(o Term) int {
	switch {
	case t.Kind != o.Kind:
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	case t.Value != o.Value:
		if t.Value < o.Value {
			return -1
		}
		return 1
	case t.Datatype != o.Datatype:
		if t.Datatype < o.Datatype {
			return -1
		}
		return 1
	case t.Lang != o.Lang:
		if t.Lang < o.Lang {
			return -1
		}
		return 1
	}
	return 0
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(value string) Term { return Term{Kind: Literal, Value: value} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(value, datatype string) Term {
	return Term{Kind: Literal, Value: value, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(value, lang string) Term {
	return Term{Kind: Literal, Value: value, Lang: lang}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// Integer returns a literal of type xsd:integer.
func Integer(v int64) Term {
	return NewTypedLiteral(fmt.Sprintf("%d", v), XSDInteger)
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero Term (no value), which the
// store uses as a pattern wildcard.
func (t Term) IsZero() bool { return t == Term{} }

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool { return t == o }

// String renders the term in TQuads (N-Triples-like) syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("?!term(%d:%s)", t.Kind, t.Value)
	}
}

// Compact renders the term in the paper's informal notation: IRIs print
// without angle brackets (CR, coach, Chelsea) and integer literals print
// bare (1951).
func (t Term) Compact() string {
	if t.Kind == IRI {
		return t.Value
	}
	if t.Kind == Literal && t.Datatype == XSDInteger {
		return t.Value
	}
	return t.String()
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Common XSD datatype IRIs.
const (
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDGYear   = "http://www.w3.org/2001/XMLSchema#gYear"
)
