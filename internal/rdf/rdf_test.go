package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		term Term
		kind TermKind
		str  string
	}{
		{NewIRI("http://ex.org/CR"), IRI, "<http://ex.org/CR>"},
		{NewLiteral("hello"), Literal, `"hello"`},
		{NewTypedLiteral("1951", XSDInteger), Literal, `"1951"^^<` + XSDInteger + `>`},
		{NewLangLiteral("ciao", "it"), Literal, `"ciao"@it`},
		{NewBlank("b0"), Blank, "_:b0"},
		{Integer(1951), Literal, `"1951"^^<` + XSDInteger + `>`},
	}
	for _, tc := range tests {
		if tc.term.Kind != tc.kind {
			t.Errorf("%v: kind = %v, want %v", tc.term, tc.term.Kind, tc.kind)
		}
		if got := tc.term.String(); got != tc.str {
			t.Errorf("String = %q, want %q", got, tc.str)
		}
	}
}

func TestTermPredicatesAndZero(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() || NewIRI("x").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !NewLiteral("x").IsLiteral() || !NewBlank("x").IsBlank() {
		t.Error("literal/blank predicates wrong")
	}
	var z Term
	if !z.IsZero() || NewIRI("x").IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || Blank.String() != "Blank" {
		t.Error("TermKind names wrong")
	}
	if !strings.Contains(TermKind(9).String(), "9") {
		t.Error("unknown kind should include the number")
	}
}

func TestLiteralEscaping(t *testing.T) {
	lit := NewLiteral("a\"b\\c\nd\te")
	q := Quad{Subject: NewIRI("s"), Predicate: NewIRI("p"), Object: lit,
		Interval: temporal.MustNew(1, 2), Confidence: 0.5}
	parsed, err := ParseQuad(q.String())
	if err != nil {
		t.Fatalf("parse escaped literal: %v", err)
	}
	if parsed.Object != lit {
		t.Errorf("round trip got %#v, want %#v", parsed.Object, lit)
	}
}

func TestQuadValidate(t *testing.T) {
	good := NewQuad("CR", "coach", "Chelsea", temporal.MustNew(2000, 2004), 0.9)
	if err := good.Validate(); err != nil {
		t.Errorf("valid quad rejected: %v", err)
	}
	bad := []Quad{
		{},
		{Subject: NewLiteral("x"), Predicate: NewIRI("p"), Object: NewIRI("o"), Interval: temporal.MustNew(1, 2), Confidence: 1},
		{Subject: NewIRI("s"), Predicate: NewLiteral("p"), Object: NewIRI("o"), Interval: temporal.MustNew(1, 2), Confidence: 1},
		{Subject: NewIRI("s"), Predicate: NewIRI("p"), Object: NewIRI("o"), Interval: temporal.Interval{Start: 5, End: 2}, Confidence: 1},
		{Subject: NewIRI("s"), Predicate: NewIRI("p"), Object: NewIRI("o"), Interval: temporal.MustNew(1, 2), Confidence: 0},
		{Subject: NewIRI("s"), Predicate: NewIRI("p"), Object: NewIRI("o"), Interval: temporal.MustNew(1, 2), Confidence: 1.5},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad quad %d accepted", i)
		}
	}
}

func TestQuadFactKey(t *testing.T) {
	a := NewQuad("CR", "coach", "Chelsea", temporal.MustNew(2000, 2004), 0.9)
	b := a
	b.Confidence = 0.4
	if a.Fact() != b.Fact() {
		t.Error("FactKey should ignore confidence")
	}
	c := a
	c.Interval = temporal.MustNew(2000, 2005)
	if a.Fact() == c.Fact() {
		t.Error("FactKey should include the interval")
	}
	want := "(CR, coach, Chelsea, [2000,2004])"
	if got := a.Fact().String(); got != want {
		t.Errorf("FactKey.String = %q, want %q", got, want)
	}
}

func TestQuadCompact(t *testing.T) {
	q := NewQuad("CR", "coach", "Chelsea", temporal.MustNew(2000, 2004), 0.9)
	if got := q.Compact(); got != "(CR, coach, Chelsea, [2000,2004]) 0.9" {
		t.Errorf("Compact = %q", got)
	}
}

func TestParseQuadVariants(t *testing.T) {
	iv := temporal.MustNew(2000, 2004)
	tests := []struct {
		in   string
		want Quad
	}{
		{"<CR> <coach> <Chelsea> [2000,2004] 0.9 .", NewQuad("CR", "coach", "Chelsea", iv, 0.9)},
		{"CR coach Chelsea [2000,2004] 0.9", NewQuad("CR", "coach", "Chelsea", iv, 0.9)},
		{"CR coach Chelsea [2000,2004]", NewQuad("CR", "coach", "Chelsea", iv, 1.0)},
		{"CR coach Chelsea [2000,2004] .", NewQuad("CR", "coach", "Chelsea", iv, 1.0)},
		{"CR birthDate 1951 [1951,2017] 1.0", Quad{
			Subject: NewIRI("CR"), Predicate: NewIRI("birthDate"), Object: Integer(1951),
			Interval: temporal.MustNew(1951, 2017), Confidence: 1.0}},
		{`<s> <p> "lit"@en [1,2] 0.25 .`, Quad{
			Subject: NewIRI("s"), Predicate: NewIRI("p"), Object: NewLangLiteral("lit", "en"),
			Interval: temporal.MustNew(1, 2), Confidence: 0.25}},
		{"_:b0 <p> _:b1 [1,1] 0.5 .", Quad{
			Subject: NewBlank("b0"), Predicate: NewIRI("p"), Object: NewBlank("b1"),
			Interval: temporal.MustNew(1, 1), Confidence: 0.5}},
	}
	for _, tc := range tests {
		got, err := ParseQuad(tc.in)
		if err != nil {
			t.Errorf("ParseQuad(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseQuad(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

func TestParseQuadErrors(t *testing.T) {
	bad := []string{
		"",
		"<s> <p>",
		"<s> <p> <o>",
		"<s> <p> <o> [5,3] 0.9 .",
		"<s> <p> <o> [1,2] 1.5 .",
		"<s> <p> <o> [1,2] 0.9 junk",
		"<s <p> <o> [1,2] 0.9 .",
		`<s> <p> "unterminated [1,2] .`,
		"<s> <p> <o> 1,2 0.9 .",
		"<s> <p> <o> [1,2 0.9 .",
		"_: <p> <o> [1,2] .",
	}
	for _, in := range bad {
		if _, err := ParseQuad(in); err == nil {
			t.Errorf("ParseQuad(%q) should fail", in)
		}
	}
}

func TestParseGraph(t *testing.T) {
	doc := `# Claudio Raineri's career (Figure 1)
CR coach Chelsea [2000,2004] 0.9 .
CR coach Leicester [2015,2017] 0.7 .

CR playsFor Palermo [1984,1986] 0.5 .
CR birthDate 1951 [1951,2017] 1.0 .
CR coach Napoli [2001,2003] 0.6 .
`
	g, err := ParseGraphString(doc)
	if err != nil {
		t.Fatalf("ParseGraph: %v", err)
	}
	if len(g) != 5 {
		t.Fatalf("got %d quads, want 5", len(g))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	preds := g.Predicates()
	want := []string{"coach", "playsFor", "birthDate"}
	if len(preds) != len(want) {
		t.Fatalf("Predicates = %v", preds)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("Predicates[%d] = %q, want %q", i, preds[i], want[i])
		}
	}
}

func TestParseGraphErrorHasLine(t *testing.T) {
	_, err := ParseGraphString("CR coach Chelsea [2000,2004] 0.9 .\nbroken [ .\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestWriteGraphRoundTrip(t *testing.T) {
	g := Graph{
		NewQuad("CR", "coach", "Chelsea", temporal.MustNew(2000, 2004), 0.9),
		{Subject: NewIRI("s"), Predicate: NewIRI("p"), Object: NewLangLiteral("x y", "en"),
			Interval: temporal.MustNew(-3, 8), Confidence: 1},
		{Subject: NewBlank("n1"), Predicate: NewIRI("p"), Object: Integer(7),
			Interval: temporal.Point(0), Confidence: 0.125},
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	back, err := ParseGraph(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(back) != len(g) {
		t.Fatalf("got %d quads, want %d", len(back), len(g))
	}
	for i := range g {
		if back[i] != g[i] {
			t.Errorf("quad %d: got %#v, want %#v", i, back[i], g[i])
		}
	}
}

// TestQuadRoundTripProperty: serialise-then-parse is identity for random
// well-formed quads.
func TestQuadRoundTripProperty(t *testing.T) {
	f := func(s, p, o string, a, b int16, confNum uint8) bool {
		clean := func(x string) string {
			x = strings.Map(func(r rune) rune {
				if r < 0x20 || r == '>' || r == '<' || r == ' ' {
					return -1
				}
				return r
			}, x)
			if x == "" {
				return "n"
			}
			return x
		}
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		conf := (float64(confNum%100) + 1) / 100
		q := Quad{
			Subject:    NewIRI(clean(s)),
			Predicate:  NewIRI(clean(p)),
			Object:     NewLiteral(o),
			Interval:   temporal.Interval{Start: lo, End: hi},
			Confidence: conf,
		}
		back, err := ParseQuad(q.String())
		return err == nil && back == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
