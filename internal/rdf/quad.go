package rdf

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/temporal"
)

// Quad is an uncertain temporal fact: an RDF triple annotated with a
// validity interval over the discrete time domain and a confidence value
// in (0, 1]. It corresponds to one line of Figure 1 of the paper, e.g.
//
//	(CR, coach, Chelsea, [2000,2004]) 0.9
type Quad struct {
	Subject   Term
	Predicate Term
	Object    Term
	Interval  temporal.Interval
	// Confidence states how likely the fact is to hold; 1.0 marks a
	// certain fact. Values outside (0, 1] are rejected by Validate.
	Confidence float64
}

// NewQuad assembles a quad from compact IRI names, the given interval and
// confidence. It is a convenience for examples and tests.
func NewQuad(s, p, o string, iv temporal.Interval, conf float64) Quad {
	return Quad{
		Subject:    NewIRI(s),
		Predicate:  NewIRI(p),
		Object:     NewIRI(o),
		Interval:   iv,
		Confidence: conf,
	}
}

// Validate reports the first structural problem with the quad: invalid
// interval, out-of-range confidence, literal subject/predicate, or zero
// terms.
func (q Quad) Validate() error {
	switch {
	case q.Subject.IsZero() || q.Predicate.IsZero() || q.Object.IsZero():
		return fmt.Errorf("rdf: quad %v has a zero term", q)
	case q.Subject.IsLiteral():
		return fmt.Errorf("rdf: quad %v has a literal subject", q)
	case !q.Predicate.IsIRI():
		return fmt.Errorf("rdf: quad %v has a non-IRI predicate", q)
	case !q.Interval.Valid():
		return fmt.Errorf("rdf: quad %v has an invalid interval", q)
	case !(q.Confidence > 0 && q.Confidence <= 1):
		return fmt.Errorf("rdf: quad %v has confidence %g outside (0,1]", q, q.Confidence)
	}
	return nil
}

// Triple returns the quad without its temporal and confidence annotations.
func (q Quad) Triple() (s, p, o Term) { return q.Subject, q.Predicate, q.Object }

// Fact returns the atemporal identity of the quad — subject, predicate,
// object and interval — ignoring confidence. Two quads with equal Fact
// keys assert the same temporal statement.
func (q Quad) Fact() FactKey {
	return FactKey{S: q.Subject, P: q.Predicate, O: q.Object, Interval: q.Interval}
}

// FactKey identifies a temporal statement irrespective of confidence.
// It is a comparable value usable as a map key.
type FactKey struct {
	S, P, O  Term
	Interval temporal.Interval
}

// String renders the key in the paper's compact tuple notation.
func (k FactKey) String() string {
	return "(" + k.S.Compact() + ", " + k.P.Compact() + ", " + k.O.Compact() + ", " + k.Interval.String() + ")"
}

// Compare orders fact keys lexicographically by subject, predicate,
// object and interval. It is the canonical total order the incremental
// solve pipeline uses to number variables identically regardless of the
// order atoms were interned in.
func (k FactKey) Compare(o FactKey) int {
	if c := k.S.Compare(o.S); c != 0 {
		return c
	}
	if c := k.P.Compare(o.P); c != 0 {
		return c
	}
	if c := k.O.Compare(o.O); c != 0 {
		return c
	}
	switch {
	case k.Interval.Start != o.Interval.Start:
		if k.Interval.Start < o.Interval.Start {
			return -1
		}
		return 1
	case k.Interval.End != o.Interval.End:
		if k.Interval.End < o.Interval.End {
			return -1
		}
		return 1
	}
	return 0
}

// Equal reports whether two quads are identical including confidence.
func (q Quad) Equal(o Quad) bool { return q == o }

// String renders the quad in TQuads syntax:
//
//	<s> <p> <o> [start,end] conf .
func (q Quad) String() string {
	var b strings.Builder
	b.WriteString(q.Subject.String())
	b.WriteByte(' ')
	b.WriteString(q.Predicate.String())
	b.WriteByte(' ')
	b.WriteString(q.Object.String())
	b.WriteByte(' ')
	b.WriteString(q.Interval.String())
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(q.Confidence, 'g', -1, 64))
	b.WriteString(" .")
	return b.String()
}

// Compact renders the quad in the paper's informal notation:
//
//	(CR, coach, Chelsea, [2000,2004]) 0.9
func (q Quad) Compact() string {
	return fmt.Sprintf("(%s, %s, %s, %s) %g",
		q.Subject.Compact(), q.Predicate.Compact(), q.Object.Compact(), q.Interval, q.Confidence)
}

// Graph is a set of quads — an uncertain temporal knowledge graph. The
// slice order is insertion order; deduplication and indexing are the
// store's job.
type Graph []Quad

// Validate validates every quad, returning the first error with its
// position.
func (g Graph) Validate() error {
	for i, q := range g {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("quad %d: %w", i, err)
		}
	}
	return nil
}

// Predicates returns the distinct predicate IRIs in the graph in first-
// appearance order. The Web UI uses this for constraint auto-completion.
func (g Graph) Predicates() []string {
	seen := make(map[string]bool)
	var out []string
	for _, q := range g {
		if p := q.Predicate.Value; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
