package rdf

import (
	"strings"
	"testing"

	"repro/internal/temporal"
)

func TestPrefixMapExpandShorten(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("dbo", "http://dbpedia.org/ontology/")
	tests := []struct {
		curie, iri string
	}{
		{"dbo:coach", "http://dbpedia.org/ontology/coach"},
		{"xsd:integer", NSXSD + "integer"},
		{"rdf:type", NSRDF + "type"},
	}
	for _, tc := range tests {
		if got := pm.Expand(tc.curie); got != tc.iri {
			t.Errorf("Expand(%q) = %q, want %q", tc.curie, got, tc.iri)
		}
		if got := pm.Shorten(tc.iri); got != tc.curie {
			t.Errorf("Shorten(%q) = %q, want %q", tc.iri, got, tc.curie)
		}
	}
	// Unbound prefixes and plain names pass through.
	if got := pm.Expand("unbound:x"); got != "unbound:x" {
		t.Errorf("Expand unbound = %q", got)
	}
	if got := pm.Expand("plain"); got != "plain" {
		t.Errorf("Expand plain = %q", got)
	}
	if got := pm.Shorten("http://elsewhere.org/x"); got != "http://elsewhere.org/x" {
		t.Errorf("Shorten unmatched = %q", got)
	}
}

func TestPrefixMapLongestMatch(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://ex.org/")
	pm.Bind("exv", "http://ex.org/vocab/")
	if got := pm.Shorten("http://ex.org/vocab/coach"); got != "exv:coach" {
		t.Errorf("Shorten = %q, want longest base", got)
	}
}

func TestPrefixMapZeroValueBind(t *testing.T) {
	var pm PrefixMap
	pm.Bind("a", "http://a/")
	if got := pm.Expand("a:x"); got != "http://a/x" {
		t.Errorf("zero-value map Expand = %q", got)
	}
	if _, ok := pm.Base("b"); ok {
		t.Error("unbound base reported")
	}
}

func TestExpandTermAndGraph(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://ex.org/")
	g := Graph{
		NewQuad("ex:CR", "ex:coach", "ex:Chelsea", temporal.MustNew(2000, 2004), 0.9),
		{Subject: NewIRI("ex:CR"), Predicate: NewIRI("ex:birthDate"), Object: Integer(1951),
			Interval: temporal.MustNew(1951, 2017), Confidence: 1},
	}
	out := pm.ExpandGraph(g)
	if out[0].Subject.Value != "http://ex.org/CR" || out[0].Predicate.Value != "http://ex.org/coach" {
		t.Errorf("expanded quad = %v", out[0])
	}
	// Literals untouched.
	if out[1].Object != Integer(1951) {
		t.Errorf("literal changed: %v", out[1].Object)
	}
	// Original unchanged.
	if g[0].Subject.Value != "ex:CR" {
		t.Error("ExpandGraph mutated its input")
	}
}

func TestPrefixes(t *testing.T) {
	pm := NewPrefixMap()
	ps := pm.Prefixes()
	want := []string{"owl", "rdf", "rdfs", "xsd"}
	if len(ps) != len(want) {
		t.Fatalf("Prefixes = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("Prefixes[%d] = %q", i, ps[i])
		}
	}
}

func TestParsePrefixDirectives(t *testing.T) {
	pm := NewPrefixMap()
	text := `@prefix ex: <http://ex.org/> .
ex:CR ex:coach ex:Chelsea [2000,2004] 0.9
@prefix dbo: <http://dbpedia.org/ontology/> .
`
	rest, err := pm.ParsePrefixDirectives(text)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rest, "@prefix") {
		t.Errorf("directives left in rest: %q", rest)
	}
	if pm.Expand("dbo:team") != "http://dbpedia.org/ontology/team" {
		t.Error("dbo binding missing")
	}
	// The remaining content is a parseable graph after expansion.
	g, err := ParseGraphString(rest)
	if err != nil {
		t.Fatal(err)
	}
	out := pm.ExpandGraph(g)
	if out[0].Subject.Value != "http://ex.org/CR" {
		t.Errorf("expanded subject = %q", out[0].Subject.Value)
	}
	// Malformed directives error.
	if _, err := pm.ParsePrefixDirectives("@prefix broken"); err == nil {
		t.Error("malformed directive accepted")
	}
	if _, err := pm.ParsePrefixDirectives("@prefix x <nope> ."); err == nil {
		t.Error("missing colon accepted")
	}
}
