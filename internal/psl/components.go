package psl

import (
	"time"

	"repro/internal/ground"
	"repro/internal/par"
)

// Component-decomposed HL-MRF MAP inference.
//
// The HL-MRF objective is a sum of per-potential hinges plus separable
// per-atom priors, so it decomposes exactly across the conflict
// components of the ground network: running consensus ADMM per component
// minimises the same objective. Each component converges on its own
// residuals (rather than waiting for a global criterion), components run
// concurrently on the shared worker pool with a deterministic sequential
// merge, and a ComponentCache keyed by (component key, generation,
// membership) carries converged iterates across incremental solves so a
// delta re-runs ADMM only inside the components it dirtied.
//
// Because per-component ADMM stops on per-component residuals, the
// converged soft values can differ from the monolithic solve's within
// the residual tolerance — the discretised MAP state agrees except for
// atoms balanced at the rounding threshold, the same caveat the warm
// start already carries (the strictly convex objective has a unique
// optimum; only the finite-tolerance approach to it differs).

// ComponentCache carries per-component converged ADMM iterates across
// the incremental engine's solves. Construct with NewComponentCache.
// Not safe for concurrent use.
type ComponentCache struct {
	entries map[ground.AtomID]*compEntry
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{entries: make(map[ground.AtomID]*compEntry)}
}

type compEntry struct {
	gen   uint64
	atoms []ground.AtomID
	// values and truth are aligned with atoms; z and u are keyed by the
	// potentials' stable clause-set slots.
	values []float64
	truth  []bool
	z, u   map[int32][]float64
	// converged records whether ADMM met its tolerance; unconverged
	// entries are never reused (see cacheLookup), so the component is
	// iterated again — warm-started — on the next solve.
	converged bool
}

type compState struct {
	values      []float64
	truth       []bool
	z, u        map[int32][]float64
	iterations  int
	converged   bool
	primal      float64
	dual        float64
	repairFlips int
	cached      bool
}

// MAPGroundComponents computes the HL-MRF MAP state over an
// already-closed grounder and its persistent clause set by running ADMM
// per conflict component — the component-decomposed counterpart of
// MAPGround. warm, when non-nil, seeds dirty components from the
// previous solve's iterates; cache, when non-nil, is consulted for
// unchanged components and updated with this solve's iterates. The
// returned Warm feeds the next solve, exactly like MAPGround's.
func MAPGroundComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm *Warm, cache *ComponentCache) (*Result, *Warm, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	res, next := solveComponents(g, cs, opts, warm, cache)
	res.Runtime = time.Since(start)
	return res, next, nil
}

func solveComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm *Warm, cache *ComponentCache) (*Result, *Warm) {
	atoms := g.Atoms()
	order := ground.CanonicalAtoms(atoms)
	varOf := ground.CanonicalVarMap(atoms, order)
	comps := cs.Components(order)

	compOfVar := make([]int32, len(order))
	localOfVar := make([]int32, len(order))
	for ci := range comps {
		for li, a := range comps[ci].Atoms {
			v := varOf[a]
			compOfVar[v] = int32(ci)
			localOfVar[v] = int32(li)
		}
	}

	results := make([]compState, len(comps))
	var dirty []int
	for i := range comps {
		if e := cacheLookup(cache, &comps[i]); e != nil {
			results[i] = compState{
				values: e.values, truth: e.truth, z: e.z, u: e.u,
				converged: true, cached: true,
			}
			continue
		}
		dirty = append(dirty, i)
	}

	// Per-component potentials in dense local numbering plus their
	// stable clause-set slots (for warm duals and caching). With the
	// atom index, each dirty component gathers only its own clauses —
	// incremental solve work stays proportional to what the delta
	// dirtied; without it (the one-shot path) the canonical clause list
	// is partitioned globally. Both routes produce the identical
	// per-component potential sequence.
	compPots := make([][]hinge, len(comps))
	compSlots := make([][]int32, len(comps))
	if !cs.HasAtomIndex() {
		canon, slots := ground.CanonicalClauses(cs, varOf)
		for k, c := range canon {
			ci := compOfVar[c.Lits[0].Atom]
			h := clauseToHinge(c, opts)
			for i, v := range h.vars {
				h.vars[i] = localOfVar[v]
			}
			compPots[ci] = append(compPots[ci], h)
			compSlots[ci] = append(compSlots[ci], slots[k])
		}
	}

	workers := par.Workers(opts.Parallelism)
	par.Do(len(dirty), workers, func(k int) {
		i := dirty[k]
		pots, slots := compPots[i], compSlots[i]
		if cs.HasAtomIndex() {
			local := func(a ground.AtomID) int32 { return localOfVar[varOf[a]] }
			clauses, gathered := cs.ComponentClauses(comps[i].Atoms, local)
			pots = make([]hinge, len(clauses))
			for k, c := range clauses {
				pots[k] = clauseToHinge(c, opts)
			}
			slots = gathered
		}
		results[i] = solveComponent(atoms, &comps[i], pots, slots, opts, warm)
	})

	// Deterministic merge in component order.
	values := make([]float64, atoms.Len())
	truth := make([]bool, atoms.Len())
	stats := &ground.ComponentStats{}
	res := &Result{Converged: true, Potentials: cs.Len()}
	next := &Warm{
		Values: values,
		Z:      make(map[int32][]float64, cs.Len()),
		U:      make(map[int32][]float64, cs.Len()),
	}
	for i := range comps {
		r := &results[i]
		for li, a := range comps[i].Atoms {
			values[a] = r.values[li]
			truth[a] = r.truth[li]
		}
		for slot, z := range r.z {
			next.Z[slot] = z
		}
		for slot, u := range r.u {
			next.U[slot] = u
		}
		stats.Observe(len(comps[i].Atoms))
		if r.cached {
			stats.Reused++
			stats.Engine("cached")
		} else {
			stats.Solved++
			stats.Engine("admm")
		}
		if r.iterations > res.Iterations {
			res.Iterations = r.iterations
		}
		if r.primal > res.PrimalResidual {
			res.PrimalResidual = r.primal
		}
		if r.dual > res.DualResidual {
			res.DualResidual = r.dual
		}
		res.Converged = res.Converged && r.converged
		res.RepairFlips += r.repairFlips
	}
	if cache != nil {
		fresh := make(map[ground.AtomID]*compEntry, len(comps))
		for i := range comps {
			fresh[comps[i].Key] = &compEntry{
				gen: comps[i].Gen, atoms: comps[i].Atoms,
				values: results[i].values, truth: results[i].truth,
				z: results[i].z, u: results[i].u,
				converged: results[i].converged,
			}
		}
		cache.entries = fresh
	}
	res.Values = values
	res.Truth = truth
	res.Components = stats
	return res, next
}

func cacheLookup(cache *ComponentCache, comp *ground.Component) *compEntry {
	if cache == nil {
		return nil
	}
	e, ok := cache.entries[comp.Key]
	if !ok || e.gen != comp.Gen || len(e.atoms) != len(comp.Atoms) {
		return nil
	}
	if !e.converged {
		// An unconverged solve is not a solution to reuse: treat the
		// component as dirty so ADMM resumes (warm-started from the
		// previous iterates) instead of freezing the unconverged state.
		return nil
	}
	for i, a := range comp.Atoms {
		if e.atoms[i] != a {
			return nil
		}
	}
	return e
}

// solveComponent runs consensus ADMM over one component's potentials
// and priors, discretises, and repairs broken hard potentials — the
// per-component slice of exactly what solveGround does monolithically.
func solveComponent(atoms *ground.AtomTable, comp *ground.Component, potentials []hinge, slots []int32, opts Options, warm *Warm) compState {
	n := len(comp.Atoms)
	target := make([]float64, n)
	priorW := make([]float64, n)
	for li, a := range comp.Atoms {
		info := atoms.Info(a)
		if info.Evidence {
			target[li] = clamp01(info.Conf + opts.KeepBias)
			priorW[li] = opts.EvidenceWeight
		} else {
			target[li] = 0
			priorW[li] = opts.DerivedWeight
		}
	}
	var init *admmInit
	if warm != nil {
		init = &admmInit{
			x: make([]float64, n),
			z: make([][]float64, len(potentials)),
			u: make([][]float64, len(potentials)),
		}
		for li, a := range comp.Atoms {
			if int(a) < len(warm.Values) {
				init.x[li] = clamp01(warm.Values[a])
			} else {
				init.x[li] = target[li]
			}
		}
		for k := range potentials {
			if z, ok := warm.Z[slots[k]]; ok && len(z) == len(potentials[k].vars) {
				init.z[k] = z
			}
			if u, ok := warm.U[slots[k]]; ok && len(u) == len(potentials[k].vars) {
				init.u[k] = u
			}
		}
	}
	inner := opts
	inner.Parallelism = 1 // the pool parallelises across components
	res, zs, us := runADMM(n, target, priorW, potentials, inner, init)
	truth := discretize(res.Values, opts.Threshold)
	flips := repairHard(truth, res.Values, potentials)

	st := compState{
		values: res.Values, truth: truth,
		z:          make(map[int32][]float64, len(potentials)),
		u:          make(map[int32][]float64, len(potentials)),
		iterations: res.Iterations, converged: res.Converged,
		primal: res.PrimalResidual, dual: res.DualResidual,
		repairFlips: flips,
	}
	for k := range potentials {
		st.z[slots[k]] = zs[k]
		st.u[slots[k]] = us[k]
	}
	return st
}
