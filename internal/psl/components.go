package psl

import (
	"time"

	"repro/internal/engine"
	"repro/internal/ground"
)

// Component-decomposed HL-MRF MAP inference.
//
// The HL-MRF objective is a sum of per-potential hinges plus separable
// per-atom priors, so it decomposes exactly across the conflict
// components of the ground network: running consensus ADMM per component
// minimises the same objective. The orchestration — partitioning, the
// reusable/dirty split, concurrent scheduling with a deterministic
// merge order, and the (key, generation, membership) iterate cache —
// lives in internal/engine and is shared with the MLN backend and the
// repair read-out; this file contributes only the ADMM kernel. Each
// component converges on its own residuals rather than waiting for a
// global criterion.
//
// Because per-component ADMM stops on per-component residuals, the
// converged soft values can differ from the monolithic solve's within
// the residual tolerance — the discretised MAP state agrees except for
// atoms balanced at the rounding threshold, the same caveat the warm
// start already carries (the strictly convex objective has a unique
// optimum; only the finite-tolerance approach to it differs).

// ComponentCache carries per-component converged ADMM iterates across
// the incremental engine's solves. Construct with NewComponentCache.
// Not safe for concurrent use.
type ComponentCache struct {
	comps *engine.Cache[compEntry]
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{comps: engine.NewCache[compEntry]()}
}

// store returns the underlying per-component iterate cache; nil-safe.
func (c *ComponentCache) store() *engine.Cache[compEntry] {
	if c == nil {
		return nil
	}
	return c.comps
}

type compEntry struct {
	// values and truth are aligned with the component's atoms; z and u
	// are keyed by the potentials' stable clause-set slots.
	values []float64
	truth  []bool
	z, u   map[int32][]float64
	// converged records whether ADMM met its tolerance; unconverged
	// entries are never reused (the reuse hook demotes them to dirty),
	// so the component is iterated again — warm-started — on the next
	// solve.
	converged bool
}

type compState struct {
	values      []float64
	truth       []bool
	z, u        map[int32][]float64
	iterations  int
	converged   bool
	primal      float64
	dual        float64
	repairFlips int
}

// MAPGroundComponents computes the HL-MRF MAP state over an
// already-closed grounder and its persistent clause set by running ADMM
// per conflict component — the component-decomposed counterpart of
// MAPGround. warm, when non-nil, seeds dirty components from the
// previous solve's iterates; cache, when non-nil, is consulted for
// unchanged components and updated with this solve's iterates. plan,
// when non-nil, is the shared decomposition built by the caller; nil
// builds one here. The returned Warm feeds the next solve, exactly like
// MAPGround's.
func MAPGroundComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm *Warm, cache *ComponentCache, plan *engine.Plan) (*Result, *Warm, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	res, next, err := solveComponents(g, cs, opts, warm, cache, plan)
	if err != nil {
		return nil, nil, err
	}
	res.Runtime = time.Since(start)
	return res, next, nil
}

func solveComponents(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm *Warm, cache *ComponentCache, plan *engine.Plan) (*Result, *Warm, error) {
	atoms := g.Atoms()
	if plan == nil {
		plan = engine.NewPlan(atoms, cs)
	}

	results, cached, err := engine.Run(plan, opts.Parallelism, cache.store(),
		func(i int, e compEntry) (compState, bool) {
			if !e.converged {
				// An unconverged solve is not a solution to reuse: treat
				// the component as dirty so ADMM resumes (warm-started from
				// the previous iterates) instead of freezing the
				// unconverged state.
				return compState{}, false
			}
			return compState{values: e.values, truth: e.truth, z: e.z, u: e.u, converged: true}, true
		},
		func(i int) (compState, error) {
			pots, slots := hinges(plan, i, opts)
			return solveComponent(atoms, &plan.Comps[i], pots, slots, opts, warm), nil
		})
	if err != nil {
		return nil, nil, err
	}

	// Deterministic merge in component order.
	values := make([]float64, atoms.Len())
	truth := make([]bool, atoms.Len())
	stats := &ground.ComponentStats{}
	res := &Result{Converged: true, Potentials: cs.Len()}
	next := &Warm{
		Values: values,
		Z:      make(map[int32][]float64, cs.Len()),
		U:      make(map[int32][]float64, cs.Len()),
	}
	for i := range plan.Comps {
		r := &results[i]
		for li, a := range plan.Comps[i].Atoms {
			values[a] = r.values[li]
			truth[a] = r.truth[li]
		}
		for slot, z := range r.z {
			next.Z[slot] = z
		}
		for slot, u := range r.u {
			next.U[slot] = u
		}
		plan.Observe(stats, i, cached[i], "admm", false)
		if r.iterations > res.Iterations {
			res.Iterations = r.iterations
		}
		if r.primal > res.PrimalResidual {
			res.PrimalResidual = r.primal
		}
		if r.dual > res.DualResidual {
			res.DualResidual = r.dual
		}
		res.Converged = res.Converged && r.converged
		res.RepairFlips += r.repairFlips
	}
	// A maintained plan names the retired component keys, so the cache
	// churns one entry per dirty component instead of rebuilding.
	if store := cache.store(); store != nil {
		entry := func(i int) compEntry {
			return compEntry{
				values: results[i].values, truth: results[i].truth,
				z: results[i].z, u: results[i].u,
				converged: results[i].converged,
			}
		}
		if plan.Maintained() {
			for _, key := range plan.Retired() {
				store.Drop(key)
			}
			for i := range plan.Comps {
				if !cached[i] {
					store.Put(&plan.Comps[i], entry(i))
				}
			}
		} else {
			store.Replace(plan.Comps, entry)
		}
	}
	res.Values = values
	res.Truth = truth
	res.Components = stats
	return res, next, nil
}

// hinges converts component i's clauses (already in dense local
// numbering) into its HL-MRF potentials plus their stable clause-set
// slots (for warm duals and caching).
func hinges(plan *engine.Plan, i int, opts Options) ([]hinge, []int32) {
	clauses, slots := plan.Clauses(i)
	pots := make([]hinge, len(clauses))
	for k, c := range clauses {
		pots[k] = clauseToHinge(c, opts)
	}
	return pots, slots
}

// solveComponent runs consensus ADMM over one component's potentials
// and priors, discretises, and repairs broken hard potentials — the
// per-component slice of exactly what solveGround does monolithically.
func solveComponent(atoms *ground.AtomTable, comp *ground.Component, potentials []hinge, slots []int32, opts Options, warm *Warm) compState {
	n := len(comp.Atoms)
	target := make([]float64, n)
	priorW := make([]float64, n)
	for li, a := range comp.Atoms {
		info := atoms.Info(a)
		if info.Evidence {
			target[li] = clamp01(info.Conf + opts.KeepBias)
			priorW[li] = opts.EvidenceWeight
		} else {
			target[li] = 0
			priorW[li] = opts.DerivedWeight
		}
	}
	var init *admmInit
	if warm != nil {
		init = &admmInit{
			x: make([]float64, n),
			z: make([][]float64, len(potentials)),
			u: make([][]float64, len(potentials)),
		}
		for li, a := range comp.Atoms {
			if int(a) < len(warm.Values) {
				init.x[li] = clamp01(warm.Values[a])
			} else {
				init.x[li] = target[li]
			}
		}
		for k := range potentials {
			if z, ok := warm.Z[slots[k]]; ok && len(z) == len(potentials[k].vars) {
				init.z[k] = z
			}
			if u, ok := warm.U[slots[k]]; ok && len(u) == len(potentials[k].vars) {
				init.u[k] = u
			}
		}
	}
	inner := opts
	inner.Parallelism = 1 // the pool parallelises across components
	res, zs, us := runADMM(n, target, priorW, potentials, inner, init)
	truth := discretize(res.Values, opts.Threshold)
	flips := repairHard(truth, res.Values, potentials)

	st := compState{
		values: res.Values, truth: truth,
		z:          make(map[int32][]float64, len(potentials)),
		u:          make(map[int32][]float64, len(potentials)),
		iterations: res.Iterations, converged: res.Converged,
		primal: res.PrimalResidual, dual: res.DualResidual,
		repairFlips: flips,
	}
	for k := range potentials {
		st.z[slots[k]] = zs[k]
		st.u[slots[k]] = us[k]
	}
	return st
}
