package psl

import (
	"math"
	"testing"

	"repro/internal/ground"
	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

func figure1Store(t testing.TB) *store.Store {
	t.Helper()
	g, err := rdf.ParseGraphString(`
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	return st
}

func findAtom(t testing.TB, g *ground.Grounder, compact string) ground.AtomID {
	t.Helper()
	for i := 0; i < g.Atoms().Len(); i++ {
		if g.Atoms().Info(ground.AtomID(i)).Key.String() == compact {
			return ground.AtomID(i)
		}
	}
	t.Fatalf("atom %q not found", compact)
	return -1
}

// TestRunningExample: nPSL agrees with nRockIt on Figure 7 — the Napoli
// fact is removed, all others stay.
func TestRunningExample(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	res, err := MAP(g, prog, Options{Squared: true})
	if err != nil {
		t.Fatal(err)
	}
	napoli := findAtom(t, g, "(CR, coach, Napoli, [2001,2003])")
	if res.TrueAtom(napoli) {
		t.Errorf("Napoli fact should be removed (value %.3f)", res.Values[napoli])
	}
	for _, keep := range []string{
		"(CR, coach, Chelsea, [2000,2004])",
		"(CR, coach, Leicester, [2015,2017])",
		"(CR, playsFor, Palermo, [1984,1986])",
		"(CR, birthDate, 1951, [1951,2017])",
	} {
		id := findAtom(t, g, keep)
		if !res.TrueAtom(id) {
			t.Errorf("fact %s should be kept (value %.3f)", keep, res.Values[id])
		}
	}
}

// TestSoftValuesOrdered: within the conflicting pair, the stronger fact
// gets the higher soft truth value.
func TestSoftValuesOrdered(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chelsea := findAtom(t, g, "(CR, coach, Chelsea, [2000,2004])")
	napoli := findAtom(t, g, "(CR, coach, Napoli, [2001,2003])")
	if res.Values[chelsea] <= res.Values[napoli] {
		t.Errorf("Chelsea (%.3f) should dominate Napoli (%.3f)", res.Values[chelsea], res.Values[napoli])
	}
	leicester := findAtom(t, g, "(CR, coach, Leicester, [2015,2017])")
	if res.Values[leicester] < 0.6 {
		t.Errorf("unconstrained Leicester should stay near its confidence, got %.3f", res.Values[leicester])
	}
}

func TestConvergenceOnUnconstrained(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	res, err := MAP(g, rulelang.MustParse(""), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("no potentials: should converge immediately, residuals %g/%g",
			res.PrimalResidual, res.DualResidual)
	}
	// Values equal the biased prior targets exactly (only priors act).
	for i := 0; i < g.Atoms().Len(); i++ {
		info := g.Atoms().Info(ground.AtomID(i))
		want := math.Min(info.Conf+0.05, 1)
		if math.Abs(res.Values[i]-want) > 1e-6 {
			t.Errorf("atom %v: value %.4f, want %.4f", info.Key, res.Values[i], want)
		}
	}
}

func TestInferenceRaisesDerivedAtom(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	prog := rulelang.MustParse("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 4")
	res, err := MAP(g, prog, Options{Squared: true})
	if err != nil {
		t.Fatal(err)
	}
	worksFor := findAtom(t, g, "(CR, worksFor, Palermo, [1984,1986])")
	plays := findAtom(t, g, "(CR, playsFor, Palermo, [1984,1986])")
	if res.Values[worksFor] < res.Values[plays]-0.25 {
		t.Errorf("derived worksFor (%.3f) should track its premise (%.3f)",
			res.Values[worksFor], res.Values[plays])
	}
}

func TestHardRepairRestoresFeasibility(t *testing.T) {
	// Two equally strong conflicting facts round to (true, true); the
	// repair pass must drop one.
	st := store.New()
	st.Add(rdf.NewQuad("P", "coach", "A", temporal.MustNew(2000, 2004), 0.8))
	st.Add(rdf.NewQuad("P", "coach", "B", temporal.MustNew(2001, 2003), 0.8))
	g := ground.New(st)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := findAtom(t, g, "(P, coach, A, [2000,2004])")
	b := findAtom(t, g, "(P, coach, B, [2001,2003])")
	if res.TrueAtom(a) && res.TrueAtom(b) {
		t.Error("repair pass failed: both conflicting facts kept")
	}
	if !res.TrueAtom(a) && !res.TrueAtom(b) {
		t.Error("repair dropped both facts; one suffices")
	}
}

func TestProxLinearHinge(t *testing.T) {
	// Single-var potential w·max(0, z - 0.5), prox at v.
	h := hinge{vars: []int32{0}, coef: []float64{1}, d: -0.5, w: 1}
	v := []float64{0.3}
	proxHinge(&h, v, 1)
	if v[0] != 0.3 {
		t.Errorf("inactive hinge moved v to %g", v[0])
	}
	// Active region, full step: v=2.0, step w/rho = 1 → 1.0; c(v-step)+d = 0.5 >= 0 → v=1.0.
	v = []float64{2.0}
	proxHinge(&h, v, 1)
	if math.Abs(v[0]-1.0) > 1e-12 {
		t.Errorf("full step: got %g, want 1.0", v[0])
	}
	// Projection: v=0.6, full step 1 would overshoot → project to 0.5.
	v = []float64{0.6}
	proxHinge(&h, v, 1)
	if math.Abs(v[0]-0.5) > 1e-12 {
		t.Errorf("projection: got %g, want 0.5", v[0])
	}
}

func TestProxSquaredHinge(t *testing.T) {
	h := hinge{vars: []int32{0}, coef: []float64{1}, d: -0.5, w: 2, sq: true}
	// Inactive below the hinge.
	v := []float64{0.2}
	proxHinge(&h, v, 1)
	if v[0] != 0.2 {
		t.Errorf("inactive squared hinge moved v")
	}
	// Active: z = v - (2w(v-0.5))/(1+2w) = 1 - (4*0.5)/5 = 0.6.
	v = []float64{1.0}
	proxHinge(&h, v, 1)
	if math.Abs(v[0]-0.6) > 1e-12 {
		t.Errorf("squared prox: got %g, want 0.6", v[0])
	}
	// Optimality check via finite differences: objective
	// f(z) = w·max(0,z-0.5)² + (ρ/2)(z-v)² minimised at returned z.
	obj := func(z float64) float64 {
		hd := math.Max(0, z-0.5)
		return 2*hd*hd + 0.5*(z-1.0)*(z-1.0)
	}
	z := v[0]
	if obj(z) > obj(z+1e-4) || obj(z) > obj(z-1e-4) {
		t.Errorf("prox result %g is not a local minimum", z)
	}
}

func TestDiscretizeAndRepairCounts(t *testing.T) {
	vals := []float64{0.9, 0.49, 0.5}
	truth := discretize(vals, 0.5)
	if !truth[0] || truth[1] || !truth[2] {
		t.Errorf("discretize = %v", truth)
	}
	// Hard potential: !a0 | !a2 (both true → violated); repair drops the
	// lower-valued atom 2.
	pots := []hinge{{vars: []int32{0, 2}, coef: []float64{1, 1}, d: -1, w: 50, hard: true}}
	flips := repairHard(truth, vals, pots)
	if flips != 1 || truth[2] || !truth[0] {
		t.Errorf("repair: flips=%d truth=%v", flips, truth)
	}
}

func TestHingeSatisfied(t *testing.T) {
	// clause a0 ∨ !a1 → coef[-1, +1].
	h := hinge{vars: []int32{0, 1}, coef: []float64{-1, 1}, d: 0}
	if !hingeSatisfied(&h, []bool{true, true}) {
		t.Error("a0 true should satisfy")
	}
	if !hingeSatisfied(&h, []bool{false, false}) {
		t.Error("!a1 should satisfy")
	}
	if hingeSatisfied(&h, []bool{false, true}) {
		t.Error("a0 false, a1 true violates")
	}
}

// TestScalesLinearly is a smoke test that ADMM handles a few thousand
// potentials and converges.
func TestManyPotentials(t *testing.T) {
	st := store.New()
	for i := 0; i < 500; i++ {
		team1 := "T" + string(rune('A'+i%20)) + string(rune('A'+(i/20)%20))
		subj := "P" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		st.Add(rdf.NewQuad(subj, "coach", team1, temporal.MustNew(int64(2000+i%5), int64(2003+i%5)), 0.6+0.3*float64(i%2)))
		st.Add(rdf.NewQuad(subj, "coach", team1+"x", temporal.MustNew(int64(2001+i%5), int64(2004+i%5)), 0.55))
	}
	g := ground.New(st)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	res, err := MAP(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Potentials < 500 {
		t.Errorf("expected ≥500 potentials, got %d", res.Potentials)
	}
	// Feasibility after repair: no hard potential violated.
	for _, keep := range res.Truth {
		_ = keep
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
}

func BenchmarkMAPFigure1(b *testing.B) {
	st := figure1Store(b)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ground.New(st)
		if _, err := MAP(g, prog, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSquaredVsLinearBothResolveConflict(t *testing.T) {
	st := figure1Store(t)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	for _, squared := range []bool{false, true} {
		g := ground.New(st)
		res, err := MAP(g, prog, Options{Squared: squared})
		if err != nil {
			t.Fatalf("squared=%v: %v", squared, err)
		}
		napoli := findAtom(t, g, "(CR, coach, Napoli, [2001,2003])")
		if res.TrueAtom(napoli) {
			t.Errorf("squared=%v: Napoli kept", squared)
		}
	}
}

func TestHardWeightScalesPressure(t *testing.T) {
	// A larger HardWeight pushes conflicting atoms further apart in the
	// soft state.
	st := figure1Store(t)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	gap := func(hw float64) float64 {
		g := ground.New(st)
		res, err := MAP(g, prog, Options{HardWeight: hw})
		if err != nil {
			t.Fatal(err)
		}
		chelsea := findAtom(t, g, "(CR, coach, Chelsea, [2000,2004])")
		napoli := findAtom(t, g, "(CR, coach, Napoli, [2001,2003])")
		return res.Values[chelsea] - res.Values[napoli]
	}
	weak, strong := gap(2), gap(100)
	if strong <= weak {
		t.Errorf("gap(hw=100)=%.3f should exceed gap(hw=2)=%.3f", strong, weak)
	}
}

func TestThresholdOptionChangesRounding(t *testing.T) {
	st := figure1Store(t)
	g := ground.New(st)
	res, err := MAP(g, rulelang.MustParse(""), Options{Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Only the conf-1.0 birthDate fact clears a 0.99 threshold.
	trueCount := 0
	for _, v := range res.Truth {
		if v {
			trueCount++
		}
	}
	if trueCount != 1 {
		t.Errorf("threshold 0.99 kept %d atoms, want 1", trueCount)
	}
}
