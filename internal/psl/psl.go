// Package psl implements MAP inference for hinge-loss Markov random
// fields — the nPSL side of TeCoRe: Probabilistic Soft Logic extended
// with the numerical/temporal conditions evaluated at grounding time.
//
// Ground clauses from the grounding engine are relaxed with the
// Łukasiewicz t-norm into hinge-loss potentials over variables in [0,1];
// evidence atoms get quadratic priors pulling them toward their
// confidence. MAP is the convex minimisation of the total loss, solved
// with consensus ADMM using the standard closed-form proximal steps.
// The soft optimum is discretised at a threshold and a greedy repair pass
// restores any hard constraint the rounding broke — PSL "trades
// expressiveness for scalability" by approximating the discrete MAP
// state, exactly as the paper describes.
//
// # Concurrency model
//
// The ADMM sweeps are element-wise parallel: the proximal z-step runs
// one task per potential, the consensus x-step gathers one task per
// variable (each variable's contributions summed in a fixed potential
// order), and residual reductions accumulate per-element partials in a
// deterministic sequential pass. The converged values — and therefore
// the discretised MAP state — are bitwise identical at every
// Options.Parallelism setting.
package psl

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ground"
	"repro/internal/logic"
	"repro/internal/par"
)

// Options tunes ADMM and the discretisation.
type Options struct {
	// Rho is the ADMM penalty parameter (default 1).
	Rho float64
	// MaxIter bounds ADMM iterations (default 2500).
	MaxIter int
	// Eps is the residual convergence tolerance (default 1e-4).
	Eps float64
	// EvidenceWeight scales the quadratic prior pulling evidence atoms
	// toward their confidence (default 5).
	EvidenceWeight float64
	// KeepBias is added to every evidence atom's prior target so that
	// asserted facts at the rounding boundary (confidence 0.5) survive
	// unless genuinely pushed out — the same device the MLN backend uses
	// (default 0.05).
	KeepBias float64
	// DerivedWeight scales the quadratic prior pulling derived atoms
	// toward 0 (default 0.5).
	DerivedWeight float64
	// HardWeight substitutes for infinite clause weights in the convex
	// relaxation (default 50).
	HardWeight float64
	// Squared selects squared hinges for soft rule potentials, PSL's
	// default loss (hard potentials always use linear hinges).
	Squared bool
	// Threshold discretises the soft truth values (default 0.5).
	Threshold float64
	// Parallelism bounds the worker pools used for grounding and the
	// ADMM sweeps: 0 means GOMAXPROCS, 1 forces the sequential path.
	// The MAP state is identical at every setting.
	Parallelism int
	// ComponentSolve partitions the ground HL-MRF into independent
	// conflict components and runs ADMM per component, concurrently,
	// instead of one monolithic consensus problem (see components.go).
	ComponentSolve bool
}

func (o Options) withDefaults() Options {
	if o.Rho == 0 {
		o.Rho = 1
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2500
	}
	if o.Eps == 0 {
		o.Eps = 1e-4
	}
	if o.EvidenceWeight == 0 {
		o.EvidenceWeight = 5
	}
	if o.KeepBias == 0 {
		o.KeepBias = 0.05
	}
	if o.DerivedWeight == 0 {
		o.DerivedWeight = 0.5
	}
	if o.HardWeight == 0 {
		o.HardWeight = 50
	}
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	return o
}

// Result is the inferred soft state and its discretisation.
type Result struct {
	// Values holds the converged soft truth value of every atom.
	Values []float64
	// Truth is the discretised, hard-repaired boolean state.
	Truth []bool
	// Iterations is the number of ADMM sweeps performed.
	Iterations int
	// Converged reports whether residuals fell below Eps before MaxIter.
	Converged bool
	// PrimalResidual and DualResidual are the final residual norms.
	PrimalResidual float64
	DualResidual   float64
	// RepairFlips counts atoms flipped by the hard-constraint repair
	// pass after discretisation.
	RepairFlips int
	// Potentials is the number of hinge potentials in the ground HL-MRF.
	Potentials int
	// Runtime is the wall-clock inference time.
	Runtime time.Duration
	// Components summarises the component-decomposed solve; nil when the
	// monolithic path ran. In component mode Iterations and the residual
	// norms report the worst component re-run this solve (cached
	// components run zero sweeps).
	Components *ground.ComponentStats
}

// TrueAtom reports the discretised truth of an atom.
func (r *Result) TrueAtom(id ground.AtomID) bool { return r.Truth[id] }

// hinge is a potential w * max(0, cᵀz + d), squared when sq is set.
type hinge struct {
	vars []int32
	coef []float64
	d    float64
	w    float64
	sq   bool
	hard bool
	rule string
}

// MAP computes the HL-MRF MAP state for the program over the grounder's
// evidence. The grounder must be freshly constructed; MAP forward-chains
// inference rules itself.
func MAP(g *ground.Grounder, prog *logic.Program, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	if _, err := g.Close(prog); err != nil {
		return nil, fmt.Errorf("psl: %w", err)
	}
	cs, err := g.GroundProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("psl: %w", err)
	}
	var res *Result
	if opts.ComponentSolve {
		res, _, err = solveComponents(g, cs, opts, nil, nil, nil)
		if err != nil {
			return nil, err
		}
	} else {
		res, _ = solveGround(g, cs, opts, nil)
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// Warm carries one solve's converged ADMM iterates for warm-starting
// the next: the soft values by atom id plus each potential's local copy
// and scaled dual, keyed by its stable clause-set slot. Atom ids and
// slots survive incremental updates, so on a near-unchanged instance
// the restarted ADMM begins at (x*, z*, u*) of a neighbouring problem
// and converges in a handful of sweeps instead of hundreds.
type Warm struct {
	// Values are the converged soft values by atom id.
	Values []float64
	// Z and U hold each potential's local copy and scaled dual vector,
	// keyed by clause-set slot.
	Z, U map[int32][]float64
}

// MAPGround computes the HL-MRF MAP state over an already-closed
// grounder and its persistent clause set — the incremental path. warm,
// when non-nil, is the previous solve's Warm state; the returned Warm
// feeds the next solve. The HL-MRF objective is strictly convex (every
// atom carries a quadratic prior), so warm and cold starts converge to
// the same optimum; finite tolerance can leave sub-Eps differences in
// the soft values.
func MAPGround(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm *Warm) (*Result, *Warm, error) {
	opts = opts.withDefaults()
	g.Parallelism = opts.Parallelism
	start := time.Now()
	res, next := solveGround(g, cs, opts, warm)
	res.Runtime = time.Since(start)
	return res, next, nil
}

// solveGround builds the ground HL-MRF in canonical atom order (the
// same order the MLN side uses), runs ADMM, and maps values and truth
// back to atom-id space. Equal live atom/clause states produce
// byte-identical potentials and therefore bitwise-equal cold-start
// iterates, whatever the interning history.
func solveGround(g *ground.Grounder, cs *ground.ClauseSet, opts Options, warm *Warm) (*Result, *Warm) {
	atoms := g.Atoms()
	order := ground.CanonicalAtoms(atoms)
	varOf := ground.CanonicalVarMap(atoms, order)
	n := len(order)
	// Quadratic priors: target value and weight per canonical variable.
	target := make([]float64, n)
	priorW := make([]float64, n)
	for v, a := range order {
		info := atoms.Info(a)
		if info.Evidence {
			target[v] = clamp01(info.Conf + opts.KeepBias)
			priorW[v] = opts.EvidenceWeight
		} else {
			target[v] = 0
			priorW[v] = opts.DerivedWeight
		}
	}
	canon, slots := ground.CanonicalClauses(cs, varOf)
	potentials := make([]hinge, 0, len(canon))
	for _, c := range canon {
		potentials = append(potentials, clauseToHinge(c, opts))
	}
	var init *admmInit
	if warm != nil {
		init = &admmInit{
			x: make([]float64, n),
			z: make([][]float64, len(potentials)),
			u: make([][]float64, len(potentials)),
		}
		for v, a := range order {
			if int(a) < len(warm.Values) {
				init.x[v] = clamp01(warm.Values[a])
			} else {
				init.x[v] = target[v]
			}
		}
		for k := range potentials {
			if z, ok := warm.Z[slots[k]]; ok && len(z) == len(potentials[k].vars) {
				init.z[k] = z
			}
			if u, ok := warm.U[slots[k]]; ok && len(u) == len(potentials[k].vars) {
				init.u[k] = u
			}
		}
	}

	res, zs, us := runADMM(n, target, priorW, potentials, opts, init)
	res.Potentials = len(potentials)
	truth := discretize(res.Values, opts.Threshold)
	res.RepairFlips = repairHard(truth, res.Values, potentials)

	values := make([]float64, atoms.Len())
	full := make([]bool, atoms.Len())
	for v, a := range order {
		values[a] = res.Values[v]
		full[a] = truth[v]
	}
	next := &Warm{
		Values: values,
		Z:      make(map[int32][]float64, len(potentials)),
		U:      make(map[int32][]float64, len(potentials)),
	}
	for k := range potentials {
		next.Z[slots[k]] = zs[k]
		next.U[slots[k]] = us[k]
	}
	res.Values = values
	res.Truth = full
	return res, next
}

// admmInit seeds runADMM from a previous solve's iterates. Nil entries
// in z/u fall back to the cold defaults (z = x, u = 0).
type admmInit struct {
	x    []float64
	z, u [][]float64
}

// clauseToHinge relaxes a ground disjunction l1 ∨ ... ∨ lk with the
// Łukasiewicz t-conorm: distance to satisfaction
//
//	max(0, 1 - Σ_pos x_i - Σ_neg (1 - x_j))
//
// which in linear form is max(0, cᵀx + d) with c_i = -1 for positive
// literals, +1 for negated ones, and d = 1 - #negated.
func clauseToHinge(c ground.Clause, opts Options) hinge {
	h := hinge{
		vars: make([]int32, len(c.Lits)),
		coef: make([]float64, len(c.Lits)),
		rule: c.Rule,
	}
	negs := 0
	for i, l := range c.Lits {
		h.vars[i] = int32(l.Atom)
		if l.Neg {
			h.coef[i] = 1
			negs++
		} else {
			h.coef[i] = -1
		}
	}
	h.d = 1 - float64(negs)
	if c.Hard() {
		h.w = opts.HardWeight
		h.hard = true
	} else {
		h.w = c.Weight
		h.sq = opts.Squared
	}
	return h
}

// runADMM performs consensus ADMM over the hinge potentials plus
// per-atom quadratic priors (which act directly in the consensus update
// since they are separable). Each sweep is element-wise parallel across
// opts.Parallelism workers; every floating-point reduction keeps a fixed
// order (per-variable gathers in potential order, residual partials
// summed sequentially), so the iterates are bitwise identical at any
// worker count.
func runADMM(n int, target, priorW []float64, potentials []hinge, opts Options, warm *admmInit) (res *Result, zOut, uOut [][]float64) {
	workers := par.Workers(opts.Parallelism)
	x := make([]float64, n)
	if warm != nil {
		copy(x, warm.x)
	} else {
		copy(x, target)
	}

	// Local copies and duals per potential, warm-seeded when available.
	z := make([][]float64, len(potentials))
	u := make([][]float64, len(potentials))
	deg := make([]float64, n)
	for k, h := range potentials {
		z[k] = make([]float64, len(h.vars))
		u[k] = make([]float64, len(h.vars))
		if warm != nil && warm.z[k] != nil {
			copy(z[k], warm.z[k])
		} else {
			for i, v := range h.vars {
				z[k][i] = x[v]
			}
		}
		if warm != nil && warm.u[k] != nil {
			copy(u[k], warm.u[k])
		}
		for _, v := range h.vars {
			deg[v]++
		}
	}
	// Reverse adjacency for the consensus gather: the (potential, slot)
	// pairs touching each variable, in potential order — the same
	// accumulation order as a sequential scatter.
	type slot struct{ k, i int32 }
	varPot := make([][]slot, n)
	for k, h := range potentials {
		for i, v := range h.vars {
			varPot[v] = append(varPot[v], slot{k: int32(k), i: int32(i)})
		}
	}
	rho := opts.Rho
	xPrev := make([]float64, n)
	primalK := make([]float64, len(potentials))
	res = &Result{}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		// z-step: proximal update per potential.
		par.DoRange(len(potentials), workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				h := &potentials[k]
				vloc := z[k] // reuse storage for v = x - u
				for i, vi := range h.vars {
					vloc[i] = x[vi] - u[k][i]
				}
				proxHinge(h, vloc, rho)
			}
		})

		// x-step: average local copies + duals, fold in the quadratic
		// prior, clamp to [0,1].
		copy(xPrev, x)
		par.DoRange(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				// argmin_x priorW (x-target)² + (ρ/2) Σ_k (x - (z+u))² =
				// (2·priorW·target + ρ·Σ(z+u)) / (2·priorW + ρ·deg)
				den := 2*priorW[v] + rho*deg[v]
				if den == 0 {
					continue
				}
				sum := 0.0
				for _, s := range varPot[v] {
					sum += z[s.k][s.i] + u[s.k][s.i]
				}
				xv := (2*priorW[v]*target[v] + rho*sum) / den
				x[v] = clamp01(xv)
			}
		})

		// u-step: per-potential dual updates with primal partials.
		par.DoRange(len(potentials), workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				h := &potentials[k]
				pk := 0.0
				for i, vi := range h.vars {
					diff := z[k][i] - x[vi]
					u[k][i] += diff
					pk += diff * diff
				}
				primalK[k] = pk
			}
		})
		// Residual reductions, in fixed order.
		var primal, dual float64
		for k := range primalK {
			primal += primalK[k]
		}
		for v := 0; v < n; v++ {
			d := x[v] - xPrev[v]
			dual += d * d * deg[v]
		}
		res.Iterations = iter
		res.PrimalResidual = math.Sqrt(primal)
		res.DualResidual = rho * math.Sqrt(dual)
		if res.PrimalResidual < opts.Eps && res.DualResidual < opts.Eps {
			res.Converged = true
			break
		}
	}
	res.Values = x
	return res, z, u
}

// proxHinge computes argmin_z w·hinge(cᵀz+d) + (ρ/2)||z-v||² in place.
func proxHinge(h *hinge, v []float64, rho float64) {
	cv := h.d
	cc := 0.0
	for i := range h.coef {
		cv += h.coef[i] * v[i]
		cc += h.coef[i] * h.coef[i]
	}
	if cv <= 0 {
		return // hinge inactive at v: z = v
	}
	if h.sq {
		// Squared hinge: z = v - (2w·cv / (ρ + 2w·cc)) c.
		step := 2 * h.w * cv / (rho + 2*h.w*cc)
		for i := range v {
			v[i] -= step * h.coef[i]
		}
		return
	}
	// Linear hinge: either the full step keeps the hinge active side
	// nonnegative, or project onto the hyperplane cᵀz + d = 0.
	step := h.w / rho
	if cv-step*cc >= 0 {
		for i := range v {
			v[i] -= step * h.coef[i]
		}
		return
	}
	proj := cv / cc
	for i := range v {
		v[i] -= proj * h.coef[i]
	}
}

func discretize(values []float64, threshold float64) []bool {
	out := make([]bool, len(values))
	for i, v := range values {
		out[i] = v >= threshold
	}
	return out
}

// repairHard restores violated hard potentials after rounding: while a
// hard ground clause is violated, flip the literal whose soft value sits
// closest to satisfying it (for a disjointness constraint this drops the
// atom PSL was least sure about). Returns the number of flips.
func repairHard(truth []bool, values []float64, potentials []hinge) int {
	flips := 0
	maxPasses := 4 * len(potentials)
	for pass := 0; pass < maxPasses; pass++ {
		fixed := false
		for k := range potentials {
			h := &potentials[k]
			if !h.hard || hingeSatisfied(h, truth) {
				continue
			}
			// Violated: every literal false. Flip the one closest to true.
			bestI, bestGap := -1, math.Inf(1)
			for i, vi := range h.vars {
				var gap float64
				if h.coef[i] < 0 {
					gap = 1 - values[vi] // needs atom true
				} else {
					gap = values[vi] // needs atom false
				}
				if gap < bestGap {
					bestI, bestGap = i, gap
				}
			}
			vi := h.vars[bestI]
			truth[vi] = h.coef[bestI] < 0
			flips++
			fixed = true
		}
		if !fixed {
			return flips
		}
	}
	return flips
}

// hingeSatisfied interprets the potential as its originating clause and
// checks boolean satisfaction: a clause literal is satisfied when a
// positive (coef -1) atom is true or a negated (coef +1) atom is false.
func hingeSatisfied(h *hinge, truth []bool) bool {
	for i, vi := range h.vars {
		if (h.coef[i] < 0) == truth[vi] {
			return true
		}
	}
	return false
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
