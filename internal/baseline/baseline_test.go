package baseline

import (
	"testing"

	"repro/internal/ground"
	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

func loadStore(t testing.TB, text string) *store.Store {
	t.Helper()
	g, err := rdf.ParseGraphString(text)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	return st
}

const c2 = "c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf"

func TestGreedyRunningExample(t *testing.T) {
	st := loadStore(t, `
CR coach Chelsea [2000,2004] 0.9
CR coach Napoli [2001,2003] 0.6
CR coach Leicester [2015,2017] 0.7
`)
	g := ground.New(st)
	res, err := Solve(g, rulelang.MustParse(c2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.RemovedWeight != 0.6 {
		t.Fatalf("removed=%d weight=%g, want Napoli only", res.Removed, res.RemovedWeight)
	}
	for i := 0; i < g.Atoms().Len(); i++ {
		info := g.Atoms().Info(ground.AtomID(i))
		wantKept := info.Key.O.Value != "Napoli"
		if res.Truth[i] != wantKept {
			t.Errorf("atom %v truth = %v", info.Key, res.Truth[i])
		}
	}
}

// TestGreedySuboptimalStar: a strong hub conflicting with several weaker
// facts. Greedy keeps the hub (0.9) and drops three facts worth 2.1;
// MAP would drop the hub instead. The test pins greedy's (documented)
// suboptimal behaviour.
func TestGreedySuboptimalStar(t *testing.T) {
	st := loadStore(t, `
P coach Hub [2000,2010] 0.9
P coach A [2000,2001] 0.7
P coach B [2003,2004] 0.7
P coach C [2006,2007] 0.7
`)
	g := ground.New(st)
	res, err := Solve(g, rulelang.MustParse(c2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 3 {
		t.Fatalf("greedy removed %d facts, want 3 (the spokes)", res.Removed)
	}
	hub, _ := g.Atoms().Lookup(rdf.FactKey{S: rdf.NewIRI("P"), P: rdf.NewIRI("coach"),
		O: rdf.NewIRI("Hub"), Interval: temporal.MustNew(2000, 2010)})
	if !res.Truth[hub] {
		t.Error("greedy should keep the strongest fact")
	}
	if res.RemovedWeight < 2.0 {
		t.Errorf("removed weight = %g", res.RemovedWeight)
	}
}

func TestGreedyPropagatesInference(t *testing.T) {
	st := loadStore(t, "CR playsFor Palermo [1984,1986] 0.5")
	g := ground.New(st)
	prog := rulelang.MustParse("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = inf")
	res, err := Solve(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	derived, ok := g.Atoms().Lookup(rdf.FactKey{S: rdf.NewIRI("CR"), P: rdf.NewIRI("worksFor"),
		O: rdf.NewIRI("Palermo"), Interval: temporal.MustNew(1984, 1986)})
	if !ok || !res.Truth[derived] {
		t.Error("hard implication not propagated")
	}
}

func TestGreedyDropsPremiseOnDerivedConflict(t *testing.T) {
	// Deriving worksFor would clash with a stronger bannedFrom fact; the
	// weak premise is dropped instead.
	st := loadStore(t, `
A playsFor X [2000,2001] 0.55
A bannedFrom X [2000,2001] 0.95
`)
	g := ground.New(st)
	prog := rulelang.MustParse(`
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = inf
c:  quad(x, worksFor, y, t) ^ quad(x, bannedFrom, y, t') ^ overlap(t, t') -> false w = inf
`)
	res, err := Solve(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	plays, _ := g.Atoms().Lookup(rdf.FactKey{S: rdf.NewIRI("A"), P: rdf.NewIRI("playsFor"),
		O: rdf.NewIRI("X"), Interval: temporal.MustNew(2000, 2001)})
	banned, _ := g.Atoms().Lookup(rdf.FactKey{S: rdf.NewIRI("A"), P: rdf.NewIRI("bannedFrom"),
		O: rdf.NewIRI("X"), Interval: temporal.MustNew(2000, 2001)})
	if res.Truth[plays] {
		t.Error("weak premise should be dropped")
	}
	if !res.Truth[banned] {
		t.Error("strong fact should be kept")
	}
}

func TestGreedyNoConstraintsKeepsAll(t *testing.T) {
	st := loadStore(t, `
a rel1 b [1,2] 0.3
a rel2 c [1,2] 0.9
`)
	g := ground.New(st)
	res, err := Solve(g, rulelang.MustParse(""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 {
		t.Errorf("removed = %d", res.Removed)
	}
	for i, v := range res.Truth {
		if !v {
			t.Errorf("atom %d dropped", i)
		}
	}
}
