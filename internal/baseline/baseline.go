// Package baseline implements the greedy conflict-resolution baseline
// that probabilistic repair systems are implicitly compared against:
// keep facts in descending confidence order, skipping any fact whose
// acceptance would violate a hard constraint against already-kept facts,
// then forward-propagate inference rules over the kept set.
//
// Greedy repair is locally optimal per conflict pair but ignores global
// structure (a kept strong fact can force out several weaker facts whose
// combined weight exceeds it), so MAP inference removes at most the
// weight greedy removes; the quality gap is measured by the
// BenchmarkE10_GreedyVsMAP ablation.
package baseline

import (
	"sort"
	"time"

	"repro/internal/ground"
	"repro/internal/logic"
)

// Result is the greedy state over the ground network, shaped like the
// probabilistic backends' results.
type Result struct {
	// Truth assigns a boolean to every atom id.
	Truth []bool
	// RemovedWeight is the total confidence of rejected evidence facts.
	RemovedWeight float64
	// Removed counts rejected evidence facts.
	Removed int
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
}

// TrueAtom reports the truth of atom id.
func (r *Result) TrueAtom(id ground.AtomID) bool { return r.Truth[id] }

// Solve runs greedy repair: the grounder must be freshly constructed;
// inference rules are forward-chained first so the atom table is
// complete.
func Solve(g *ground.Grounder, prog *logic.Program) (*Result, error) {
	start := time.Now()
	if _, err := g.Close(prog); err != nil {
		return nil, err
	}
	cs, err := g.GroundProgram(prog)
	if err != nil {
		return nil, err
	}
	atoms := g.Atoms()
	n := atoms.Len()

	// Split clauses: all-negative hard clauses are constraints checked
	// during the greedy sweep; clauses with exactly one positive literal
	// are implications used for propagation afterwards.
	type implication struct {
		body []ground.AtomID
		head ground.AtomID
	}
	var denials []denial
	var implications []implication
	byAtom := make([][]int32, n) // atom -> denial indexes
	for _, c := range cs.Clauses() {
		if !c.Hard() {
			continue // greedy ignores soft structure beyond confidences
		}
		var pos []ground.AtomID
		var neg []ground.AtomID
		for _, l := range c.Lits {
			if l.Neg {
				neg = append(neg, l.Atom)
			} else {
				pos = append(pos, l.Atom)
			}
		}
		switch {
		case len(pos) == 0:
			di := int32(len(denials))
			denials = append(denials, denial{members: neg})
			for _, a := range neg {
				byAtom[a] = append(byAtom[a], di)
			}
		case len(pos) == 1:
			implications = append(implications, implication{body: neg, head: pos[0]})
		}
	}

	// Greedy sweep over evidence atoms, strongest first.
	order := atoms.EvidenceAtoms()
	sort.Slice(order, func(i, j int) bool {
		ci, cj := atoms.Info(order[i]).Conf, atoms.Info(order[j]).Conf
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	res := &Result{Truth: make([]bool, n)}
	for _, a := range order {
		if violates(a, res.Truth, denials, byAtom) {
			res.Removed++
			res.RemovedWeight += atoms.Info(a).Conf
			continue
		}
		res.Truth[a] = true
	}

	// Forward-propagate hard implications over the kept set, rejecting
	// derivations that would breach a denial (the body's weakest member
	// is dropped in that case — mirroring how greedy pipelines handle
	// rule-induced conflicts).
	for changed := true; changed; {
		changed = false
		for _, imp := range implications {
			if res.Truth[imp.head] {
				continue
			}
			all := true
			for _, b := range imp.body {
				if !res.Truth[b] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			if violates(imp.head, res.Truth, denials, byAtom) {
				weakest, wConf := ground.AtomID(-1), 2.0
				for _, b := range imp.body {
					if info := atoms.Info(b); info.Evidence && info.Conf < wConf {
						weakest, wConf = b, info.Conf
					}
				}
				if weakest >= 0 {
					res.Truth[weakest] = false
					res.Removed++
					res.RemovedWeight += wConf
					changed = true
				}
				continue
			}
			res.Truth[imp.head] = true
			changed = true
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// denial is an all-negative hard clause: its members cannot all hold.
type denial struct{ members []ground.AtomID }

// violates reports whether setting atom a true would complete a denial
// whose other members are all currently true.
func violates(a ground.AtomID, truth []bool, denials []denial, byAtom [][]int32) bool {
	for _, di := range byAtom[a] {
		complete := true
		for _, m := range denials[di].members {
			if m != a && !truth[m] {
				complete = false
				break
			}
		}
		if complete {
			return true
		}
	}
	return false
}
