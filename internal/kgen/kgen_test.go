package kgen

import (
	"testing"

	"repro/internal/ground"
	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
)

func TestFootballScaleMatchesPaper(t *testing.T) {
	ds := Football(FootballConfig{})
	counts := map[string]int{}
	for _, q := range ds.Graph {
		counts[q.Predicate.Value]++
	}
	// Paper: >13K playsFor, >6K birthDate.
	if counts["playsFor"] < 13000 {
		t.Errorf("playsFor = %d, want > 13000", counts["playsFor"])
	}
	if counts["birthDate"] < 6000 {
		t.Errorf("birthDate = %d, want > 6000", counts["birthDate"])
	}
	if ds.NoiseCount() != 0 {
		t.Errorf("default config should be clean, got %d noisy facts", ds.NoiseCount())
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Errorf("generated graph invalid: %v", err)
	}
}

func TestFootballDeterministic(t *testing.T) {
	a := Football(FootballConfig{Players: 50, NoiseRatio: 0.5, Seed: 7})
	b := Football(FootballConfig{Players: 50, NoiseRatio: 0.5, Seed: 7})
	if len(a.Graph) != len(b.Graph) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Graph), len(b.Graph))
	}
	for i := range a.Graph {
		if a.Graph[i] != b.Graph[i] {
			t.Fatalf("fact %d differs", i)
		}
	}
	c := Football(FootballConfig{Players: 50, NoiseRatio: 0.5, Seed: 8})
	same := len(a.Graph) == len(c.Graph)
	if same {
		identical := true
		for i := range a.Graph {
			if a.Graph[i] != c.Graph[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestFootballNoiseRatio(t *testing.T) {
	ds := Football(FootballConfig{Players: 2000, NoiseRatio: 1.0, Seed: 3})
	clean, noisy := ds.CleanCount(), ds.NoiseCount()
	ratio := float64(noisy) / float64(clean)
	// "as many erroneous temporal facts as the correct ones": ratio ≈ 1.
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("noise ratio = %.3f, want ≈ 1.0 (clean=%d noisy=%d)", ratio, clean, noisy)
	}
}

func TestFootballNoiseViolatesConstraints(t *testing.T) {
	ds := Football(FootballConfig{Players: 300, NoiseRatio: 0.8, Seed: 5})
	st := store.New()
	if err := st.AddGraph(ds.Graph); err != nil {
		t.Fatal(err)
	}
	prog := rulelang.MustParse(FootballProgram)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Grounding the constraints over the noisy data must surface
	// violations (every noise category violates one constraint).
	gr := newGrounder(t, st)
	cs, err := gr.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() == 0 {
		t.Error("noisy dataset grounds zero violated constraints")
	}
	// A clean dataset ideally grounds none; random team collisions can
	// create rare accidental overlaps, so allow a tiny residue.
	clean := Football(FootballConfig{Players: 300, Seed: 5})
	st2 := store.New()
	if err := st2.AddGraph(clean.Graph); err != nil {
		t.Fatal(err)
	}
	gr2 := newGrounder(t, st2)
	cs2, err := gr2.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Len() > cs.Len()/10 {
		t.Errorf("clean dataset grounds %d violations vs %d noisy", cs2.Len(), cs.Len())
	}
}

func TestWikidataCardinalities(t *testing.T) {
	ds := Wikidata(WikidataConfig{Scale: 0.01, Seed: 2})
	counts := map[string]int{}
	for _, q := range ds.Graph {
		counts[q.Predicate.Value]++
	}
	// At scale 0.01 expect ≈ 40000 playsFor, 200 spouse, 230 memberOf,
	// 60 educatedAt, 45 occupation (clean counts; noise adds a few).
	within := func(pred string, lo, hi int) {
		if counts[pred] < lo || counts[pred] > hi {
			t.Errorf("%s = %d, want in [%d,%d]", pred, counts[pred], lo, hi)
		}
	}
	within("playsFor", 30000, 55000)
	within("spouse", 180, 260)
	within("memberOf", 200, 290)
	within("educatedAt", 50, 80)
	within("occupation", 40, 50)
	if err := ds.Graph.Validate(); err != nil {
		t.Errorf("wikidata graph invalid: %v", err)
	}
	if ds.Profile != "wikidata" {
		t.Errorf("profile = %q", ds.Profile)
	}
}

func TestWikidataNoiseLabelled(t *testing.T) {
	ds := Wikidata(WikidataConfig{Scale: 0.005, NoiseRatio: 0.3, Seed: 4})
	if ds.NoiseCount() == 0 {
		t.Fatal("no noise injected at ratio 0.3")
	}
	// Every noise key refers to a generated fact.
	keys := make(map[rdf.FactKey]bool, len(ds.Graph))
	for _, q := range ds.Graph {
		keys[q.Fact()] = true
	}
	for k := range ds.Noise {
		if !keys[k] {
			t.Errorf("noise label %v has no generated fact", k)
		}
	}
}

func TestWikidataProgramParses(t *testing.T) {
	prog := rulelang.MustParse(WikidataProgram)
	if len(prog.Rules) != 4 {
		t.Errorf("WikidataProgram has %d rules", len(prog.Rules))
	}
	for _, r := range prog.Rules {
		if !r.Hard() {
			t.Errorf("rule %s should be hard", r.Name)
		}
	}
}

func TestClusteredDeterministic(t *testing.T) {
	a := Clustered(ClusteredConfig{Clusters: 40, ClusterSize: 5, BridgeRate: 0.4, Seed: 3})
	b := Clustered(ClusteredConfig{Clusters: 40, ClusterSize: 5, BridgeRate: 0.4, Seed: 3})
	if len(a.Graph) != len(b.Graph) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Graph), len(b.Graph))
	}
	for i := range a.Graph {
		if a.Graph[i] != b.Graph[i] {
			t.Fatalf("fact %d differs", i)
		}
	}
}

// TestClusteredComponentStructure grounds ClusteredProgram over a
// bridge-free dataset and checks the clause graph splits into exactly
// one conflict component per cluster; with bridges, strictly fewer.
func TestClusteredComponentStructure(t *testing.T) {
	const clusters = 30
	components := func(bridgeRate float64) int {
		ds := Clustered(ClusteredConfig{Clusters: clusters, ClusterSize: 6, BridgeRate: bridgeRate, Seed: 11})
		st := store.New()
		if err := st.AddGraph(ds.Graph); err != nil {
			t.Fatal(err)
		}
		gr := newGrounder(t, st)
		prog := rulelang.MustParse(ClusteredProgram)
		cs, err := gr.GroundProgram(prog)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Len() == 0 {
			t.Fatal("clustered dataset grounds no conflicts")
		}
		n := 0
		for _, c := range cs.Components(ground.CanonicalAtoms(gr.Atoms())) {
			if len(c.Atoms) > 1 {
				n++ // count clause-connected components, not singletons
			}
		}
		return n
	}
	if got := components(0); got != clusters {
		t.Errorf("bridge-free: %d conflict components, want %d", got, clusters)
	}
	if got := components(1.0); got >= clusters {
		t.Errorf("fully bridged: %d conflict components, want < %d", got, clusters)
	}
}

func TestClusteredProgramParses(t *testing.T) {
	prog := rulelang.MustParse(ClusteredProgram)
	if len(prog.Rules) != 2 {
		t.Errorf("ClusteredProgram has %d rules, want 2", len(prog.Rules))
	}
	ds := Clustered(ClusteredConfig{Clusters: 20, ClusterSize: 6, BridgeRate: 0.5, Seed: 2})
	if ds.NoiseCount() == 0 {
		t.Error("clustered dataset injected no labelled noise")
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Errorf("clustered graph invalid: %v", err)
	}
	if ds.Profile != "clustered" {
		t.Errorf("profile = %q", ds.Profile)
	}
}

func TestPoissonishMean(t *testing.T) {
	ds := Football(FootballConfig{Players: 1, Seed: 9}) // exercise generator paths
	_ = ds
}

func BenchmarkFootballGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Football(FootballConfig{Players: 6500, NoiseRatio: 1, Seed: int64(i + 1)})
	}
}

func BenchmarkWikidataGenerateScale01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Wikidata(WikidataConfig{Scale: 0.01, Seed: int64(i + 1)})
	}
}

// newGrounder builds a grounding engine over a store.
func newGrounder(t testing.TB, st *store.Store) *ground.Grounder {
	t.Helper()
	return ground.New(st)
}
