// Package kgen generates the evaluation datasets of the TeCoRe demo as
// deterministic synthetic equivalents:
//
//   - a FootballDB profile — American-football player careers with
//     playsFor spells (>13K facts at default scale) and birthDate facts
//     (>6K), matching the relations the paper scraped from
//     footballdb.com;
//   - a Wikidata profile — the five temporal relations the demo uses
//     (playsFor, educatedAt, memberOf, occupation, spouse) with the
//     paper's per-relation cardinalities, scaled by a factor.
//
// Each generator injects configurable noise (overlapping spells,
// duplicate birth dates, pre-birth careers, simultaneous spouses) and
// retains gold labels for every injected fact, enabling the
// precision/recall evaluation of the paper's "as many erroneous temporal
// facts as the correct ones" setting. Generation is fully deterministic
// given a seed.
package kgen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/temporal"
)

// Dataset is a generated uncertain temporal knowledge graph with gold
// noise labels.
type Dataset struct {
	// Graph holds every generated fact, clean and noisy.
	Graph rdf.Graph
	// Noise marks the statements injected as noise.
	Noise map[rdf.FactKey]bool
	// Profile names the generator ("football" or "wikidata").
	Profile string
}

// NoiseCount returns the number of injected noisy facts.
func (d *Dataset) NoiseCount() int { return len(d.Noise) }

// CleanCount returns the number of non-noise facts.
func (d *Dataset) CleanCount() int { return len(d.Graph) - len(d.Noise) }

// FootballConfig parameterises the FootballDB-profile generator.
type FootballConfig struct {
	// Players is the number of players (default 6500, matching the
	// paper's >13K playsFor + >6K birthDate facts).
	Players int
	// Teams is the size of the team pool (default 40).
	Teams int
	// NoiseRatio is the expected number of injected noisy facts per
	// clean fact (1.0 reproduces the paper's highly noisy setting).
	NoiseRatio float64
	// Seed drives the deterministic RNG (default 1).
	Seed int64
}

func (c FootballConfig) withDefaults() FootballConfig {
	if c.Players == 0 {
		c.Players = 6500
	}
	if c.Teams == 0 {
		c.Teams = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

const (
	horizonYear = 2017
	minBirth    = 1950
)

// Football generates a FootballDB-profile dataset.
func Football(cfg FootballConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Profile: "football", Noise: make(map[rdf.FactKey]bool)}

	teams := make([]string, cfg.Teams)
	for i := range teams {
		teams[i] = fmt.Sprintf("team/%03d", i)
	}

	for p := 0; p < cfg.Players; p++ {
		player := fmt.Sprintf("player/%05d", p)
		birth := int64(minBirth + rng.Intn(45))
		birthIv := temporal.MustNew(birth, horizonYear)
		ds.add(rdf.Quad{
			Subject:    rdf.NewIRI(player),
			Predicate:  rdf.NewIRI("birthDate"),
			Object:     rdf.Integer(birth),
			Interval:   birthIv,
			Confidence: 0.9 + 0.1*rng.Float64(),
		}, false)

		spells := careerSpells(rng, birth)
		for _, sp := range spells {
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(player),
				Predicate:  rdf.NewIRI("playsFor"),
				Object:     rdf.NewIRI(teams[rng.Intn(len(teams))]),
				Interval:   sp,
				Confidence: 0.5 + 0.5*rng.Float64(),
			}, false)
		}

		// Noise injection, gold-labelled.
		injectFootballNoise(ds, rng, cfg, player, birth, teams, spells)
	}
	return ds
}

// careerSpells produces 1-5 sequential non-overlapping spells starting
// at age 17-23.
func careerSpells(rng *rand.Rand, birth int64) []temporal.Interval {
	var spells []temporal.Interval
	year := birth + 17 + int64(rng.Intn(7))
	n := 1 + rng.Intn(5)
	for s := 0; s < n && year < horizonYear; s++ {
		dur := int64(1 + rng.Intn(6))
		end := year + dur - 1
		if end > horizonYear {
			end = horizonYear
		}
		spells = append(spells, temporal.MustNew(year, end))
		year = end + 1 + int64(rng.Intn(2))
	}
	return spells
}

func injectFootballNoise(ds *Dataset, rng *rand.Rand, cfg FootballConfig,
	player string, birth int64, teams []string, spells []temporal.Interval) {

	cleanFacts := 1 + len(spells)
	injections := poissonish(rng, cfg.NoiseRatio*float64(cleanFacts))
	for i := 0; i < injections; i++ {
		switch rng.Intn(3) {
		case 0: // overlapping spell with a different team
			if len(spells) == 0 {
				continue
			}
			base := spells[rng.Intn(len(spells))]
			start := base.Start + int64(rng.Intn(int(base.Duration())))
			iv := temporal.MustNew(start, start+int64(rng.Intn(4)))
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(player),
				Predicate:  rdf.NewIRI("playsFor"),
				Object:     rdf.NewIRI(teams[rng.Intn(len(teams))] + "/alt"),
				Interval:   iv,
				Confidence: 0.5 + 0.4*rng.Float64(),
			}, true)
		case 1: // duplicate birth date with a different year
			wrong := birth + 1 + int64(rng.Intn(10))
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(player),
				Predicate:  rdf.NewIRI("birthDate"),
				Object:     rdf.Integer(wrong),
				Interval:   temporal.MustNew(wrong, horizonYear),
				Confidence: 0.5 + 0.4*rng.Float64(),
			}, true)
		default: // spell before birth
			start := birth - 5 - int64(rng.Intn(10))
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(player),
				Predicate:  rdf.NewIRI("playsFor"),
				Object:     rdf.NewIRI(teams[rng.Intn(len(teams))]),
				Interval:   temporal.MustNew(start, start+2),
				Confidence: 0.5 + 0.4*rng.Float64(),
			}, true)
		}
	}
}

// poissonish draws a small non-negative integer with the given mean —
// enough fidelity for noise injection without a full Poisson sampler.
func poissonish(rng *rand.Rand, mean float64) int {
	n := int(mean)
	if rng.Float64() < mean-float64(n) {
		n++
	}
	return n
}

func (d *Dataset) add(q rdf.Quad, noise bool) {
	d.Graph = append(d.Graph, q)
	if noise {
		d.Noise[q.Fact()] = true
	}
}

// FootballProgram is the constraint set used with the FootballDB profile:
// a player cannot play for two teams at once (cf. the paper's c2), has a
// single birth date (cf. c3), and cannot play before being born (an
// inclusion dependency with an inequality).
const FootballProgram = `
noTwoTeams: quad(x, playsFor, y, t) ^ quad(x, playsFor, z, t') ^ y != z -> disjoint(t, t') w = inf
oneBirth: quad(x, birthDate, y, t) ^ quad(x, birthDate, z, t') -> y = z w = inf
bornBeforePlays: quad(x, birthDate, y, t) ^ quad(x, playsFor, z, t') ^ start(t') < start(t) -> false w = inf
`

// ClusteredConfig parameterises the clustered-conflict generator: many
// small, mutually independent conflict clusters with a tunable bridge
// rate — the component structure real utkgs exhibit and the
// component-decomposed solver exploits.
type ClusteredConfig struct {
	// Clusters is the number of conflict clusters (default 100). Each
	// cluster is one player whose overlapping spells conflict only with
	// each other, so without bridges the ground network has exactly one
	// conflict component per cluster (plus singleton atoms).
	Clusters int
	// ClusterSize is the number of playsFor facts per cluster (default
	// 6): a chain of boundary-overlapping spells (each conflicts with
	// the next, keeping the cluster's clause graph connected) plus noisy
	// alt spells overlapping random chain positions.
	ClusterSize int
	// BridgeRate is the probability that a cluster is bridged to its
	// successor (default 0): a bridge is one playsFor fact placing the
	// next cluster's player at this cluster's first club at overlapping
	// times, so its oneClubAtATime grounding connects it into the next
	// cluster and its oneStarPlayer grounding into this one — merging
	// the two components.
	BridgeRate float64
	// Seed drives the deterministic RNG (default 1).
	Seed int64
}

func (c ClusteredConfig) withDefaults() ClusteredConfig {
	if c.Clusters == 0 {
		c.Clusters = 100
	}
	if c.ClusterSize == 0 {
		c.ClusterSize = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Clustered generates a clustered-conflict dataset. Facts within a
// cluster share one subject and chain through boundary overlaps, so the
// cluster grounds into exactly one conflict component under
// ClusteredProgram; bridges (see ClusteredConfig.BridgeRate) merge
// adjacent clusters. Conflict-inducing facts (overlapping alt spells,
// bridges) carry gold noise labels.
func Clustered(cfg ClusteredConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Profile: "clustered", Noise: make(map[rdf.FactKey]bool)}

	nChain := (cfg.ClusterSize + 1) / 2
	firstSpell := make([]temporal.Interval, cfg.Clusters)
	firstClub := make([]string, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		subj := fmt.Sprintf("player/%05d", c)
		// Chain: each spell starts the year the previous one ends, so
		// adjacent spells overlap at the boundary and every cluster is
		// one clause-connected conflict component.
		year := int64(1990 + rng.Intn(6))
		spells := make([]temporal.Interval, 0, nChain)
		for s := 0; s < nChain; s++ {
			dur := int64(2 + rng.Intn(4))
			iv := temporal.MustNew(year, year+dur)
			spells = append(spells, iv)
			club := fmt.Sprintf("club/%05d/%d", c, s)
			if s == 0 {
				firstSpell[c], firstClub[c] = iv, club
			}
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("playsFor"),
				Object:     rdf.NewIRI(club),
				Interval:   iv,
				Confidence: 0.7 + 0.3*rng.Float64(),
			}, false)
			year += dur
		}
		// Noise: alt spells overlapping a random chain position.
		for s := nChain; s < cfg.ClusterSize; s++ {
			base := spells[rng.Intn(len(spells))]
			start := base.Start + int64(rng.Intn(int(base.Duration())))
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("playsFor"),
				Object:     rdf.NewIRI(fmt.Sprintf("club/%05d/%d/alt", c, s)),
				Interval:   temporal.MustNew(start, start+1+int64(rng.Intn(3))),
				Confidence: 0.5 + 0.25*rng.Float64(),
			}, true)
		}
	}
	// Bridges: the next cluster's player also plays for this cluster's
	// first club, at times overlapping both clusters' first spells. The
	// oneClubAtATime grounding ties the fact into its own cluster, the
	// oneStarPlayer grounding into this one — one component.
	for c := 0; c+1 < cfg.Clusters; c++ {
		if rng.Float64() >= cfg.BridgeRate {
			continue
		}
		a, b := firstSpell[c], firstSpell[c+1]
		lo, hi := a.Start, b.End
		if b.Start < lo {
			lo = b.Start
		}
		if a.End > hi {
			hi = a.End
		}
		ds.add(rdf.Quad{
			Subject:    rdf.NewIRI(fmt.Sprintf("player/%05d", c+1)),
			Predicate:  rdf.NewIRI("playsFor"),
			Object:     rdf.NewIRI(firstClub[c]),
			Interval:   temporal.MustNew(lo, hi),
			Confidence: 0.5 + 0.25*rng.Float64(),
		}, true)
	}
	return ds
}

// ClusteredProgram is the constraint set used with the clustered
// profile: a player plays for one club at a time (the intra-cluster
// conflicts) and a club fields one of the generated players at a time
// (the constraint bridge facts violate across clusters).
const ClusteredProgram = `
oneClubAtATime: quad(x, playsFor, y, t) ^ quad(x, playsFor, z, t') ^ y != z -> disjoint(t, t') w = inf
oneStarPlayer: quad(x, playsFor, y, t) ^ quad(z, playsFor, y, t') ^ x != z -> disjoint(t, t') w = inf
`

// WikidataConfig parameterises the Wikidata-profile generator.
type WikidataConfig struct {
	// Scale multiplies the paper's per-relation cardinalities
	// (playsFor >4M, spouse >20K, memberOf >23K, educatedAt >6K,
	// occupation >4.5K). Scale 1.0 generates the full extract; the
	// default 0.01 keeps tests fast.
	Scale float64
	// NoiseRatio is the expected injected noise per clean fact
	// (default 0.042, which reproduces Figure 8's ≈8.1% conflicting
	// facts: each injected fact implicates roughly one clean fact).
	NoiseRatio float64
	// Seed drives the deterministic RNG (default 1).
	Seed int64
}

func (c WikidataConfig) withDefaults() WikidataConfig {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	if c.NoiseRatio == 0 {
		c.NoiseRatio = 0.042
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Paper cardinalities for the Wikidata extract (Section 4).
const (
	wikidataPlaysFor   = 4_000_000
	wikidataSpouse     = 20_000
	wikidataMemberOf   = 23_000
	wikidataEducatedAt = 6_000
	wikidataOccupation = 4_500
)

// Wikidata generates a Wikidata-profile dataset.
func Wikidata(cfg WikidataConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Profile: "wikidata", Noise: make(map[rdf.FactKey]bool)}

	gen := func(relation string, count int, objects int, genFact func(subj string, i int)) {
		for i := 0; i < count; i++ {
			genFact(fmt.Sprintf("entity/%s/%06d", relation, i), i)
		}
		_ = objects
	}

	scale := func(n int) int {
		v := int(float64(n) * cfg.Scale)
		if v < 1 {
			v = 1
		}
		return v
	}

	// playsFor: career spells like the football profile; one subject may
	// produce several facts, so divide the target count by the mean
	// spells per player (~3).
	players := scale(wikidataPlaysFor) / 3
	if players < 1 {
		players = 1
	}
	for p := 0; p < players; p++ {
		subj := fmt.Sprintf("entity/athlete/%07d", p)
		birth := int64(minBirth + rng.Intn(45))
		for _, sp := range careerSpells(rng, birth) {
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("playsFor"),
				Object:     rdf.NewIRI(fmt.Sprintf("club/%04d", rng.Intn(2000))),
				Interval:   sp,
				Confidence: 0.5 + 0.5*rng.Float64(),
			}, false)
			if rng.Float64() < cfg.NoiseRatio*1.0 {
				// Overlapping spell at a different club.
				start := sp.Start + int64(rng.Intn(int(sp.Duration())))
				ds.add(rdf.Quad{
					Subject:    rdf.NewIRI(subj),
					Predicate:  rdf.NewIRI("playsFor"),
					Object:     rdf.NewIRI(fmt.Sprintf("club/%04d/alt", rng.Intn(2000))),
					Interval:   temporal.MustNew(start, start+int64(rng.Intn(3))),
					Confidence: 0.5 + 0.4*rng.Float64(),
				}, true)
			}
		}
	}

	// spouse: marriage intervals; noise = overlapping second marriage.
	gen("spouse", scale(wikidataSpouse), 0, func(subj string, i int) {
		start := int64(1960 + rng.Intn(50))
		dur := int64(1 + rng.Intn(30))
		end := start + dur
		if end > horizonYear {
			end = horizonYear
		}
		ds.add(rdf.Quad{
			Subject:    rdf.NewIRI(subj),
			Predicate:  rdf.NewIRI("spouse"),
			Object:     rdf.NewIRI(fmt.Sprintf("person/%06d", rng.Intn(500000))),
			Interval:   temporal.MustNew(start, end),
			Confidence: 0.6 + 0.4*rng.Float64(),
		}, false)
		if rng.Float64() < cfg.NoiseRatio {
			mid := start + int64(rng.Intn(int(end-start+1)))
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("spouse"),
				Object:     rdf.NewIRI(fmt.Sprintf("person/%06d/alt", rng.Intn(500000))),
				Interval:   temporal.MustNew(mid, mid+int64(rng.Intn(5))),
				Confidence: 0.5 + 0.4*rng.Float64(),
			}, true)
		}
	})

	// memberOf: band/organisation memberships; simultaneous memberships
	// are legal, so noise is instead a membership that starts before the
	// member's founding-style lower bound — modelled as a fact whose
	// interval precedes 1900 (violating a range constraint).
	gen("memberOf", scale(wikidataMemberOf), 0, func(subj string, i int) {
		start := int64(1950 + rng.Intn(60))
		ds.add(rdf.Quad{
			Subject:    rdf.NewIRI(subj),
			Predicate:  rdf.NewIRI("memberOf"),
			Object:     rdf.NewIRI(fmt.Sprintf("org/%05d", rng.Intn(30000))),
			Interval:   temporal.MustNew(start, start+int64(1+rng.Intn(20))),
			Confidence: 0.6 + 0.4*rng.Float64(),
		}, false)
		if rng.Float64() < cfg.NoiseRatio {
			old := int64(1800 + rng.Intn(90))
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("memberOf"),
				Object:     rdf.NewIRI(fmt.Sprintf("org/%05d", rng.Intn(30000))),
				Interval:   temporal.MustNew(old, old+2),
				Confidence: 0.5 + 0.3*rng.Float64(),
			}, true)
		}
	})

	// occupation: one or two occupations with long validity.
	gen("occupation", scale(wikidataOccupation), 0, func(subj string, i int) {
		start := int64(1960 + rng.Intn(50))
		ds.add(rdf.Quad{
			Subject:    rdf.NewIRI(subj),
			Predicate:  rdf.NewIRI("occupation"),
			Object:     rdf.NewIRI(fmt.Sprintf("occ/%03d", rng.Intn(400))),
			Interval:   temporal.MustNew(start, horizonYear),
			Confidence: 0.7 + 0.3*rng.Float64(),
		}, false)
	})

	// educatedAt: study periods; noise = overlapping enrolment at a
	// second institution (constraint-violating for the demo's purposes).
	gen("educatedAt", scale(wikidataEducatedAt), 0, func(subj string, i int) {
		start := int64(1960 + rng.Intn(50))
		end := start + int64(2+rng.Intn(5))
		ds.add(rdf.Quad{
			Subject:    rdf.NewIRI(subj),
			Predicate:  rdf.NewIRI("educatedAt"),
			Object:     rdf.NewIRI(fmt.Sprintf("school/%04d", rng.Intn(5000))),
			Interval:   temporal.MustNew(start, end),
			Confidence: 0.6 + 0.4*rng.Float64(),
		}, false)
		if rng.Float64() < cfg.NoiseRatio {
			ds.add(rdf.Quad{
				Subject:    rdf.NewIRI(subj),
				Predicate:  rdf.NewIRI("educatedAt"),
				Object:     rdf.NewIRI(fmt.Sprintf("school/%04d/alt", rng.Intn(5000))),
				Interval:   temporal.MustNew(start+1, end+1),
				Confidence: 0.5 + 0.3*rng.Float64(),
			}, true)
		}
	})

	return ds
}

// WikidataProgram is the constraint set used with the Wikidata profile.
const WikidataProgram = `
noTwoClubs: quad(x, playsFor, y, t) ^ quad(x, playsFor, z, t') ^ y != z -> disjoint(t, t') w = inf
noBigamy: quad(x, spouse, y, t) ^ quad(x, spouse, z, t') ^ y != z -> disjoint(t, t') w = inf
oneSchoolAtATime: quad(x, educatedAt, y, t) ^ quad(x, educatedAt, z, t') ^ y != z -> disjoint(t, t') w = inf
modernMembership: quad(x, memberOf, y, t) ^ start(t) < 1900 -> false w = inf
`
