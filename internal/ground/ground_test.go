package ground

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

// figure1Store loads the paper's running example (Figure 1).
func figure1Store(t testing.TB) *store.Store {
	t.Helper()
	g, err := rdf.ParseGraphString(`
CR coach Chelsea [2000,2004] 0.9
CR coach Leicester [2015,2017] 0.7
CR playsFor Palermo [1984,1986] 0.5
CR birthDate 1951 [1951,2017] 1.0
CR coach Napoli [2001,2003] 0.6
`)
	if err != nil {
		t.Fatalf("parse graph: %v", err)
	}
	st := store.New()
	if err := st.AddGraph(g); err != nil {
		t.Fatalf("load store: %v", err)
	}
	return st
}

func atomID(t testing.TB, g *Grounder, compact string) AtomID {
	t.Helper()
	for i := 0; i < g.Atoms().Len(); i++ {
		if g.Atoms().Info(AtomID(i)).Key.String() == compact {
			return AtomID(i)
		}
	}
	t.Fatalf("atom %q not found", compact)
	return -1
}

func TestAtomTable(t *testing.T) {
	at := NewAtomTable()
	key := rdf.FactKey{S: rdf.NewIRI("a"), P: rdf.NewIRI("p"), O: rdf.NewIRI("b"),
		Interval: temporal.MustNew(1, 2)}
	id := at.Intern(key)
	if id2 := at.Intern(key); id2 != id {
		t.Error("Intern not idempotent")
	}
	if at.Info(id).Evidence {
		t.Error("plain intern should not be evidence")
	}
	id3 := at.InternEvidence(key, 0.7, 4)
	if id3 != id || !at.Info(id).Evidence || at.Info(id).Conf != 0.7 || at.Info(id).FactID != 4 {
		t.Errorf("InternEvidence info = %+v", at.Info(id))
	}
	// Re-interning evidence keeps max confidence.
	at.InternEvidence(key, 0.3, 4)
	if at.Info(id).Conf != 0.7 {
		t.Error("evidence confidence should keep max")
	}
	if _, ok := at.Lookup(key); !ok {
		t.Error("Lookup failed")
	}
	if at.Len() != 1 {
		t.Errorf("Len = %d", at.Len())
	}
	key2 := key
	key2.Interval = temporal.MustNew(3, 4)
	at.Intern(key2)
	if n := len(at.EvidenceAtoms()); n != 1 {
		t.Errorf("EvidenceAtoms = %d", n)
	}
	if n := len(at.DerivedAtoms()); n != 1 {
		t.Errorf("DerivedAtoms = %d", n)
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{Lits: []Lit{{Atom: 2, Neg: true}, {Atom: 1}, {Atom: 2, Neg: true}}}
	if c.normalize() {
		t.Fatal("not a tautology")
	}
	if len(c.Lits) != 2 || c.Lits[0] != (Lit{Atom: 1}) || c.Lits[1] != (Lit{Atom: 2, Neg: true}) {
		t.Errorf("normalized = %v", c.Lits)
	}
	taut := Clause{Lits: []Lit{{Atom: 3}, {Atom: 3, Neg: true}}}
	if !taut.normalize() {
		t.Error("tautology not detected")
	}
}

func TestClauseSatisfied(t *testing.T) {
	c := Clause{Lits: []Lit{{Atom: 0, Neg: true}, {Atom: 1}}}
	tr := func(vals ...bool) func(AtomID) bool {
		return func(a AtomID) bool { return vals[a] }
	}
	if !c.Satisfied(tr(false, false)) {
		t.Error("!a0 should satisfy")
	}
	if !c.Satisfied(tr(true, true)) {
		t.Error("a1 should satisfy")
	}
	if c.Satisfied(tr(true, false)) {
		t.Error("a0=T a1=F should violate")
	}
}

func TestClauseSetMerging(t *testing.T) {
	cs := NewClauseSet()
	soft := Clause{Lits: []Lit{{Atom: 0, Neg: true}, {Atom: 1, Neg: true}}, Weight: 1.5, Rule: "r"}
	if !cs.Add(soft) || !cs.Add(soft) {
		t.Fatal("Add failed")
	}
	if cs.Len() != 1 {
		t.Fatalf("Len = %d", cs.Len())
	}
	if got := cs.Clauses()[0].Weight; got != 3.0 {
		t.Errorf("merged weight = %g, want 3.0", got)
	}
	hard := soft
	hard.Weight = math.Inf(1)
	cs.Add(hard)
	if !cs.Clauses()[0].Hard() {
		t.Error("hard upgrade failed")
	}
	// Tautologies vanish.
	cs.Add(Clause{Lits: []Lit{{Atom: 5}, {Atom: 5, Neg: true}}, Weight: 1})
	if cs.Len() != 1 {
		t.Error("tautology added")
	}
	// Empty soft clause is dropped, empty hard clause reports failure.
	if !cs.Add(Clause{Weight: 2}) {
		t.Error("empty soft clause should be droppable")
	}
	if cs.Add(Clause{Weight: math.Inf(1)}) {
		t.Error("empty hard clause must report contradiction")
	}
}

func TestGroundConstraintC2(t *testing.T) {
	st := figure1Store(t)
	g := New(st)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatalf("GroundProgram: %v", err)
	}
	// Chelsea [2000,2004] and Napoli [2001,2003] overlap: one violated
	// grounding (symmetric pair collapses after normalization).
	if cs.Len() != 1 {
		t.Fatalf("clauses = %d: %v", cs.Len(), cs.Clauses())
	}
	c := cs.Clauses()[0]
	if !c.Hard() || len(c.Lits) != 2 || !c.Lits[0].Neg || !c.Lits[1].Neg {
		t.Errorf("clause = %v", c)
	}
	chelsea := atomID(t, g, "(CR, coach, Chelsea, [2000,2004])")
	napoli := atomID(t, g, "(CR, coach, Napoli, [2001,2003])")
	got := map[AtomID]bool{c.Lits[0].Atom: true, c.Lits[1].Atom: true}
	if !got[chelsea] || !got[napoli] {
		t.Errorf("clause atoms = %v, want Chelsea+Napoli", c.Lits)
	}
}

func TestGroundInferenceF1(t *testing.T) {
	st := figure1Store(t)
	g := New(st)
	prog := rulelang.MustParse("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
	added, err := g.Close(prog)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if added != 1 {
		t.Fatalf("derived %d atoms, want 1", added)
	}
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatalf("GroundProgram: %v", err)
	}
	if cs.Len() != 1 {
		t.Fatalf("clauses = %d", cs.Len())
	}
	c := cs.Clauses()[0]
	if c.Hard() || c.Weight != 2.5 || len(c.Lits) != 2 {
		t.Errorf("clause = %v", c)
	}
	derived := atomID(t, g, "(CR, worksFor, Palermo, [1984,1986])")
	if g.Atoms().Info(derived).Evidence {
		t.Error("worksFor atom should be derived, not evidence")
	}
}

func TestCloseCascades(t *testing.T) {
	// f1 then f2: playsFor → worksFor → livesIn via locatedIn.
	st := figure1Store(t)
	if _, err := st.Add(rdf.NewQuad("Palermo", "locatedIn", "Sicily", temporal.MustNew(1900, 2020), 1.0)); err != nil {
		t.Fatal(err)
	}
	g := New(st)
	prog := rulelang.MustParse(`
f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5
f2: quad(x, worksFor, y, t) ^ quad(y, locatedIn, z, t') ^ overlap(t, t') -> quad(x, livesIn, z, intersect(t, t')) w = 1.6
`)
	added, err := g.Close(prog)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if added != 2 {
		t.Fatalf("derived %d atoms, want 2 (worksFor + livesIn)", added)
	}
	livesIn := atomID(t, g, "(CR, livesIn, Sicily, [1984,1986])")
	if g.Atoms().Info(livesIn).Evidence {
		t.Error("livesIn should be derived")
	}
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatalf("GroundProgram: %v", err)
	}
	// Two clauses: f1 grounding and f2 grounding.
	if cs.Len() != 2 {
		t.Errorf("clauses = %d: %v", cs.Len(), cs.Clauses())
	}
}

func TestGroundArithmeticCondition(t *testing.T) {
	// Teen players: CR started at Palermo in 1984, born 1951 → age 33, not
	// a teen; a synthetic teen player triggers the rule.
	st := figure1Store(t)
	st.Add(rdf.NewQuad("Kid", "playsFor", "Ajax", temporal.MustNew(2010, 2012), 0.8))
	st.Add(rdf.Quad{Subject: rdf.NewIRI("Kid"), Predicate: rdf.NewIRI("birthDate"),
		Object: rdf.Integer(1995), Interval: temporal.MustNew(1995, 2020), Confidence: 1})
	g := New(st)
	prog := rulelang.MustParse(
		"f3: quad(x, playsFor, y, t) ^ quad(x, birthDate, z, t') ^ start(t) - start(t') < 20 -> quad(x, type, TeenPlayer, t) w = 2.9")
	added, err := g.Close(prog)
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if added != 1 {
		t.Fatalf("derived %d, want only Kid's TeenPlayer atom", added)
	}
	if _, ok := g.Atoms().Lookup(rdf.FactKey{S: rdf.NewIRI("Kid"), P: rdf.NewIRI("type"),
		O: rdf.NewIRI("TeenPlayer"), Interval: temporal.MustNew(2010, 2012)}); !ok {
		t.Error("Kid TeenPlayer atom missing")
	}
}

func TestGroundBeforeConstraintSatisfied(t *testing.T) {
	// c1: birth before death — satisfied groundings produce no clause.
	st := store.New()
	st.Add(rdf.Quad{Subject: rdf.NewIRI("p"), Predicate: rdf.NewIRI("birthDate"),
		Object: rdf.Integer(1900), Interval: temporal.MustNew(1900, 1900), Confidence: 1})
	st.Add(rdf.Quad{Subject: rdf.NewIRI("p"), Predicate: rdf.NewIRI("deathDate"),
		Object: rdf.Integer(1980), Interval: temporal.MustNew(1980, 1980), Confidence: 1})
	g := New(st)
	prog := rulelang.MustParse(
		"c1: quad(x, birthDate, y, t) ^ quad(x, deathDate, z, t') -> before(t, t') w = inf")
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 0 {
		t.Errorf("satisfied constraint emitted %d clauses", cs.Len())
	}
	// Reversed dates violate it.
	st2 := store.New()
	st2.Add(rdf.Quad{Subject: rdf.NewIRI("q"), Predicate: rdf.NewIRI("birthDate"),
		Object: rdf.Integer(1990), Interval: temporal.MustNew(1990, 1990), Confidence: 1})
	st2.Add(rdf.Quad{Subject: rdf.NewIRI("q"), Predicate: rdf.NewIRI("deathDate"),
		Object: rdf.Integer(1950), Interval: temporal.MustNew(1950, 1950), Confidence: 1})
	g2 := New(st2)
	cs2, err := g2.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Len() != 1 {
		t.Errorf("violated constraint emitted %d clauses", cs2.Len())
	}
}

func TestGroundEqualityGeneratingC3(t *testing.T) {
	st := store.New()
	st.Add(rdf.NewQuad("p", "bornIn", "Rome", temporal.MustNew(1950, 1950), 0.9))
	st.Add(rdf.NewQuad("p", "bornIn", "Milan", temporal.MustNew(1950, 1950), 0.4))
	st.Add(rdf.NewQuad("p", "bornIn", "Rome", temporal.MustNew(1950, 1950), 0.9)) // dup merges
	g := New(st)
	prog := rulelang.MustParse(
		"c3: quad(x, bornIn, y, t) ^ quad(x, bornIn, z, t') ^ overlap(t, t') -> y = z w = inf")
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 1 {
		t.Fatalf("clauses = %d: %v", cs.Len(), cs.Clauses())
	}
	if len(cs.Clauses()[0].Lits) != 2 {
		t.Errorf("clause = %v", cs.Clauses()[0])
	}
}

func TestGroundViolatedRespectsTruth(t *testing.T) {
	st := figure1Store(t)
	g := New(st)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	napoli := atomID(t, g, "(CR, coach, Napoli, [2001,2003])")
	allTrue := func(AtomID) bool { return true }
	cs, err := g.GroundViolated(prog, allTrue)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 1 {
		t.Fatalf("all-true truth: %d clauses, want 1", cs.Len())
	}
	// With Napoli false the constraint is no longer violated.
	napoliFalse := func(a AtomID) bool { return a != napoli }
	cs2, err := g.GroundViolated(prog, napoliFalse)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Len() != 0 {
		t.Errorf("napoli-false truth: %d clauses, want 0", cs2.Len())
	}
}

func TestGroundViolatedInferenceRule(t *testing.T) {
	st := figure1Store(t)
	g := New(st)
	prog := rulelang.MustParse("f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5")
	if _, err := g.Close(prog); err != nil {
		t.Fatal(err)
	}
	worksFor := atomID(t, g, "(CR, worksFor, Palermo, [1984,1986])")
	// Body true, head false → violated.
	headFalse := func(a AtomID) bool { return a != worksFor }
	cs, err := g.GroundViolated(prog, headFalse)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 1 {
		t.Fatalf("violated inference: %d clauses", cs.Len())
	}
	// Head true → satisfied.
	allTrue := func(AtomID) bool { return true }
	cs2, err := g.GroundViolated(prog, allTrue)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Len() != 0 {
		t.Errorf("satisfied inference: %d clauses", cs2.Len())
	}
}

func TestBodyTimeExpressionRejected(t *testing.T) {
	st := figure1Store(t)
	g := New(st)
	prog := rulelang.MustParse(
		"bad: quad(x, coach, y, intersect(t, t')) ^ quad(x, coach, z, t) ^ quad(x, coach, w', t') -> false")
	_ = prog
	if _, err := g.GroundProgram(prog); err == nil ||
		!strings.Contains(err.Error(), "time expressions") {
		t.Errorf("want time-expression error, got %v", err)
	}
}

func TestSelfJoinSameVariableTwice(t *testing.T) {
	// quad(x, follows, x, t): subject equals object.
	st := store.New()
	st.Add(rdf.NewQuad("a", "follows", "a", temporal.MustNew(1, 2), 0.5))
	st.Add(rdf.NewQuad("a", "follows", "b", temporal.MustNew(1, 2), 0.5))
	g := New(st)
	prog := rulelang.MustParse("r: quad(x, follows, x, t) -> false w = inf")
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 1 {
		t.Fatalf("clauses = %d, want 1 (only the reflexive edge)", cs.Len())
	}
	if len(cs.Clauses()[0].Lits) != 1 {
		t.Errorf("clause = %v", cs.Clauses()[0])
	}
}

func TestSharedTimeVariableJoin(t *testing.T) {
	// Same time variable in two atoms joins on identical intervals.
	st := store.New()
	st.Add(rdf.NewQuad("a", "rel1", "b", temporal.MustNew(1, 2), 0.5))
	st.Add(rdf.NewQuad("a", "rel2", "c", temporal.MustNew(1, 2), 0.5))
	st.Add(rdf.NewQuad("a", "rel2", "d", temporal.MustNew(3, 4), 0.5))
	g := New(st)
	prog := rulelang.MustParse("r: quad(x, rel1, y, t) ^ quad(x, rel2, z, t) -> false w = inf")
	cs, err := g.GroundProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Len() != 1 {
		t.Fatalf("clauses = %d, want 1 (interval-equal pair only)", cs.Len())
	}
}

func TestCloseRoundLimit(t *testing.T) {
	// A rule chain listed in reverse order needs one round per stage; a
	// MaxRounds below the chain depth reports an error instead of
	// silently truncating the closure.
	st := store.New()
	st.Add(rdf.NewQuad("a", "lvl1", "b", temporal.MustNew(1, 2), 0.5))
	g := New(st)
	g.MaxRounds = 2
	prog := rulelang.MustParse(`
r3: quad(x, lvl3, y, t) -> quad(x, lvl4, y, t) w = 1
r2: quad(x, lvl2, y, t) -> quad(x, lvl3, y, t) w = 1
r1: quad(x, lvl1, y, t) -> quad(x, lvl2, y, t) w = 1
`)
	_, err := g.Close(prog)
	if err == nil || !strings.Contains(err.Error(), "rounds") {
		t.Errorf("want round-limit error, got %v", err)
	}
	// With enough rounds the same cascade converges.
	g2 := New(st)
	added, err := g2.Close(prog)
	if err != nil || added != 3 {
		t.Errorf("cascade close: added=%d err=%v, want 3,nil", added, err)
	}
}

func TestEvidenceAtomsMatchStore(t *testing.T) {
	st := figure1Store(t)
	g := New(st)
	if got := g.Atoms().Len(); got != 5 {
		t.Errorf("atoms = %d, want 5", got)
	}
	for _, id := range g.Atoms().EvidenceAtoms() {
		info := g.Atoms().Info(id)
		if info.FactID < 0 || st.Fact(info.FactID).Fact() != info.Key {
			t.Errorf("evidence atom %d out of sync: %+v", id, info)
		}
	}
}

func TestLitAndClauseStrings(t *testing.T) {
	c := Clause{Lits: []Lit{{Atom: 0, Neg: true}, {Atom: 4}}, Weight: math.Inf(1), Rule: "c2"}
	s := c.String()
	for _, want := range []string{"!a0", "a4", "w=inf", "rule=c2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func BenchmarkGroundC2Figure1(b *testing.B) {
	st := figure1Store(b)
	prog := rulelang.MustParse(
		"c2: quad(x, coach, y, t) ^ quad(x, coach, z, t') ^ y != z -> disjoint(t, t') w = inf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(st)
		if _, err := g.GroundProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}
