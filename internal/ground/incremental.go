package ground

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Incremental grounding: the grounder stays alive across solves and
// consumes store deltas instead of re-grounding from scratch.
//
//   - ApplyUpdates interns evidence atoms for added facts and refreshes
//     confidences of updated ones.
//   - CloseDelta seminaively forward-chains only the rule passes that
//     can touch the delta, deriving (or reviving) head atoms.
//   - GroundDelta emits exactly the clause groundings that involve at
//     least one delta atom, merging them into the persistent ClauseSet.
//   - RetractFacts runs a delete/rederive pass over the clause set
//     (inference clauses double as derivation records): atoms that lose
//     every backing are retracted and their clauses tombstoned; atoms
//     still derivable are demoted to derived.
//
// The maintained invariant, property-tested in the repository root: the
// live atom set and live clause set always equal what a from-scratch
// Close + GroundProgram over the current store state would produce, so
// a canonically-ordered solve over the incremental state is
// byte-identical to a fresh one.

// ApplyUpdates brings the atom table up to date with facts added or
// updated in the main store since the grounder last synced. It returns
// the atoms that became newly live — the seed delta for CloseDelta and
// GroundDelta. Updated facts only refresh confidences (priors are
// rebuilt every solve) and add nothing to the delta; an added fact whose
// statement was already live as a derived atom flips it to evidence
// without re-grounding, since it was matchable all along. Every
// evidence-state change is reported to cs's component index (TouchAtom),
// so component solution caches observe prior changes that touch no
// clause.
func (g *Grounder) ApplyUpdates(cs *ClauseSet, added, updated []store.FactID) []AtomID {
	for _, fid := range updated {
		q := g.main.Fact(fid)
		if id, ok := g.atoms.Lookup(q.Fact()); ok {
			g.atoms.SetEvidence(id, q.Confidence, fid)
			cs.TouchAtom(id)
		}
	}
	var delta []AtomID
	for _, fid := range added {
		q := g.main.Fact(fid)
		key := q.Fact()
		id, ok := g.atoms.Lookup(key)
		if !ok {
			id = g.atoms.InternEvidence(key, q.Confidence, fid)
			cs.TouchAtom(id)
			delta = append(delta, id)
			continue
		}
		info := g.atoms.Info(id)
		if info.Retracted {
			// The statement returns after a removal: newly live again.
			g.atoms.SetEvidence(id, q.Confidence, fid)
			cs.TouchAtom(id)
			delta = append(delta, id)
			continue
		}
		if !info.Evidence {
			// Live derived atom becomes evidence: the statement moves
			// from the derived store to the main store; its groundings
			// are unchanged.
			g.derived.Remove(keyQuad(key))
		}
		g.atoms.SetEvidence(id, q.Confidence, fid)
		cs.TouchAtom(id)
	}
	return delta
}

// CloseDelta seminaively forward-chains the inference rules starting
// from the delta atoms, interning every newly derivable head. It returns
// the atoms that became live (fresh or revived), excluding the input
// delta. Only rules whose body can match a delta atom's predicate run,
// and each pass pins one body position to the delta, so work scales with
// the delta rather than the knowledge graph.
func (g *Grounder) CloseDelta(prog *logic.Program, delta []AtomID) ([]AtomID, error) {
	rules := prog.InferenceRules()
	if len(rules) == 0 || len(delta) == 0 {
		return nil, nil
	}
	start := time.Now()
	defer func() { g.statTotal += time.Since(start) }()
	workers := par.Workers(g.Parallelism)
	var allNew []AtomID
	cur := append([]AtomID(nil), delta...)
	for round := 0; len(cur) > 0; round++ {
		if round >= g.MaxRounds {
			return allNew, fmt.Errorf("ground: incremental forward chaining exceeded %d rounds; rule cascade may be unbounded", g.MaxRounds)
		}
		tasks, err := g.deltaJoinTasks(rules, cur)
		if err != nil {
			return allNew, err
		}
		newKeys := make([][]rdf.FactKey, len(tasks))
		errs := make([]error, len(tasks))
		par.Do(len(tasks), workers, func(i int) {
			t := &tasks[i]
			errs[i] = g.runJoin(t, nil, func(env emitEnv, _ []AtomID) error {
				switch state, id, key := env.resolveHeadAtom(); {
				case state == headStatePending:
					newKeys[i] = append(newKeys[i], key)
				case state == headStateResolved && g.atoms.Info(id).Retracted:
					// A retracted head becomes derivable again; carry its
					// key so the merge revives it.
					newKeys[i] = append(newKeys[i], g.atoms.Info(id).Key)
				}
				return nil
			})
		})
		g.noteTaskStats(tasks)
		var next []AtomID
		for i := range tasks {
			if errs[i] != nil {
				return allNew, errs[i]
			}
			for _, key := range newKeys[i] {
				if id, seen := g.atoms.Lookup(key); seen {
					if !g.atoms.Info(id).Retracted {
						continue // already derived this round
					}
					g.atoms.SetDerived(id)
					next = append(next, id)
				} else {
					next = append(next, g.atoms.Intern(key))
				}
				if _, err := g.derived.Add(keyQuad(key)); err != nil {
					return allNew, fmt.Errorf("ground: derived fact %v: %w", key, err)
				}
			}
		}
		allNew = append(allNew, next...)
		cur = next
	}
	return allNew, nil
}

// GroundDelta grounds the program restricted to groundings involving at
// least one delta atom, merging the resulting clauses into cs. Call
// CloseDelta first so every derivable head atom exists. The delta must
// list the atoms that became live since cs was last complete: the
// seminaive stratification emits each new grounding exactly once, and
// groundings without delta atoms are already in cs.
func (g *Grounder) GroundDelta(prog *logic.Program, cs *ClauseSet, delta []AtomID) error {
	if len(delta) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { g.statTotal += time.Since(start) }()
	tasks, err := g.deltaJoinTasks(prog.Rules, delta)
	if err != nil {
		return err
	}
	return g.groundTasks(tasks, nil, false, cs)
}

// RetractFacts reconciles the grounder with facts tombstoned in the main
// store: a delete/rederive pass over the persistent clause set (whose
// inference clauses are exactly the rule derivations) decides which
// atoms lost every backing. Those are retracted and their clauses
// tombstoned; evidence atoms that remain derivable are demoted to
// derived atoms instead.
func (g *Grounder) RetractFacts(cs *ClauseSet, removed []store.FactID) error {
	if len(removed) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { g.statTotal += time.Since(start) }()
	lost := make(map[AtomID]bool, len(removed))
	lostList := make([]AtomID, 0, len(removed))
	for _, fid := range removed {
		q := g.main.Fact(fid)
		id, ok := g.atoms.Lookup(q.Fact())
		if !ok {
			return fmt.Errorf("ground: removed fact %v was never interned", q.Fact())
		}
		lost[id] = true
		lostList = append(lostList, id)
	}

	// Overdelete: an atom is tentatively dead when a removed or
	// tentatively-dead atom appears in the body of one of its supports
	// and no live evidence backs it. The closure overshoots; the
	// rederive pass below rescues what independent derivations sustain.
	tentative := make(map[AtomID]bool, len(lostList))
	queue := append([]AtomID(nil), lostList...)
	for _, a := range lostList {
		tentative[a] = true
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		cs.SupportScan(b, func(head AtomID, c *Clause) bool {
			if head == b || tentative[head] {
				return true
			}
			if info := g.atoms.Info(head); info.Evidence && !lost[head] {
				return true // evidence-backed: alive regardless of rules
			}
			tentative[head] = true
			queue = append(queue, head)
			return true
		})
	}

	// Rederive: least fixpoint of "has a support whose body is alive".
	// Cycles without external grounding stay dead, matching what a
	// from-scratch Close would (not) derive.
	rescued := make(map[AtomID]bool)
	alive := func(b AtomID) bool {
		if rescued[b] {
			return true
		}
		return !tentative[b] && !g.atoms.Info(b).Retracted
	}
	for changed := true; changed; {
		changed = false
		for t := range tentative {
			if rescued[t] {
				continue
			}
			saved := false
			cs.SupportScan(t, func(head AtomID, c *Clause) bool {
				if head != t {
					return true
				}
				for _, l := range c.Lits {
					if l.Neg && !alive(l.Atom) {
						return true // this derivation lost a premise
					}
				}
				saved = true
				return false
			})
			if saved {
				rescued[t] = true
				changed = true
			}
		}
	}

	deleted := make([]AtomID, 0, len(tentative))
	for t := range tentative {
		if !rescued[t] {
			deleted = append(deleted, t)
		}
	}
	sort.Slice(deleted, func(i, j int) bool { return deleted[i] < deleted[j] })
	for _, a := range deleted {
		info := g.atoms.Info(a)
		if !info.Evidence {
			g.derived.Remove(keyQuad(info.Key))
		}
		g.atoms.Retract(a)
	}
	cs.RemoveAtoms(deleted)
	for _, a := range lostList {
		if !rescued[a] {
			continue
		}
		// The statement is still derivable: keep the atom as derived and
		// make it matchable through the derived store, exactly where a
		// from-scratch Close would put it. The demotion changes the
		// atom's prior, so its component is touched.
		g.atoms.SetDerived(a)
		cs.TouchAtom(a)
		if _, err := g.derived.Add(keyQuad(g.atoms.Info(a).Key)); err != nil {
			return fmt.Errorf("ground: demoting %v: %w", g.atoms.Info(a).Key, err)
		}
	}
	return nil
}

// deltaJoinTasks plans the seminaive passes for one delta: for every
// rule and every body position whose atom can match a delta statement,
// one task joins with that position pinned to the delta, earlier
// positions excluded from it, and later positions unrestricted. Depth-0
// candidates are seeded directly from the delta atoms, so pass cost
// scales with the delta.
func (g *Grounder) deltaJoinTasks(rules []*logic.Rule, delta []AtomID) ([]joinTask, error) {
	g.refreshViews()
	ids := append([]AtomID(nil), delta...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	set := make(map[AtomID]bool, len(ids))
	for _, a := range ids {
		set[a] = true
	}
	var tasks []joinTask
	for _, r := range rules {
		for i := range r.Body {
			var seedAtoms []AtomID
			for _, a := range ids {
				if bodyMatchesKey(r.Body[i], g.atoms.Info(a).Key) {
					seedAtoms = append(seedAtoms, a)
				}
			}
			if len(seedAtoms) == 0 {
				continue
			}
			kind := make([]int8, len(r.Body))
			for j := range kind {
				switch {
				case j == i:
					kind[j] = bindDelta
				case j < i:
					kind[j] = bindOld
				default:
					kind[j] = bindAny
				}
			}
			mode := &deltaMode{set: set, kind: kind}
			if !g.Legacy {
				order, est, err := g.planSelective(r, i)
				if err != nil {
					return nil, err
				}
				cr, err := g.compileRule(r, order, est)
				if err != nil {
					return nil, err
				}
				g.notePlan(r.Name, order, est)
				tasks = append(tasks, joinTask{
					rule: r, cr: cr, seedAtoms: seedAtoms, mode: mode,
				})
				continue
			}
			seeds := make([]rdf.Quad, len(seedAtoms))
			for j, a := range seedAtoms {
				seeds[j] = keyQuad(g.atoms.Info(a).Key)
			}
			order := planOrderFrom(r, i)
			condAt, err := scheduleConds(r, order)
			if err != nil {
				return nil, err
			}
			_, t0bound, err := g.patternFor(r.Body[i], logic.NewBinding())
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, joinTask{
				rule: r, order: order, condAt: condAt, t0bound: t0bound,
				seedQuads: seeds,
				mode:      mode,
			})
		}
	}
	return tasks, nil
}

// bodyMatchesKey reports whether the body atom's constant positions are
// compatible with the statement key (variable positions match anything;
// repeated variables are re-checked by the join itself).
func bodyMatchesKey(a logic.QuadAtom, k rdf.FactKey) bool {
	if !a.S.IsVar() && a.S.Const != k.S {
		return false
	}
	if !a.P.IsVar() && a.P.Const != k.P {
		return false
	}
	if !a.O.IsVar() && a.O.Const != k.O {
		return false
	}
	if a.T.Kind == logic.TimeConst && a.T.Const != k.Interval {
		return false
	}
	return true
}

// planOrderFrom plans a join order that starts at body position first,
// then proceeds greedily by boundness like planOrder.
func planOrderFrom(r *logic.Rule, first int) []int {
	n := len(r.Body)
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	used[first] = true
	order = append(order, first)
	for _, v := range r.Body[first].Vars(nil) {
		bound[v] = true
	}
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if score := boundScore(r.Body[i], bound); score > bestScore {
				best, bestScore = i, score
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range r.Body[best].Vars(nil) {
			bound[v] = true
		}
	}
	return order
}

func keyQuad(k rdf.FactKey) rdf.Quad {
	return rdf.Quad{Subject: k.S, Predicate: k.P, Object: k.O, Interval: k.Interval, Confidence: 1}
}

// CanonicalAtoms returns the live atoms in canonical order: evidence
// atoms by backing fact id, then derived atoms sorted by statement key.
// Fact ids are stable in the store and derived keys are
// interning-order-free, so a fresh grounder and a long-lived incremental
// one produce the same sequence for the same store state — the basis for
// byte-identical solver inputs.
func CanonicalAtoms(t *AtomTable) []AtomID {
	var ev, de []AtomID
	for i := 0; i < t.Len(); i++ {
		info := t.Info(AtomID(i))
		if info.Retracted {
			continue
		}
		if info.Evidence {
			ev = append(ev, AtomID(i))
		} else {
			de = append(de, AtomID(i))
		}
	}
	sort.Slice(ev, func(i, j int) bool { return t.Info(ev[i]).FactID < t.Info(ev[j]).FactID })
	sort.Slice(de, func(i, j int) bool {
		return t.Info(de[i]).Key.Compare(t.Info(de[j]).Key) < 0
	})
	return append(ev, de...)
}

// CanonicalVarMap inverts CanonicalAtoms into an AtomID-indexed slice of
// canonical variable indexes (-1 for retracted atoms).
func CanonicalVarMap(t *AtomTable, order []AtomID) []int32 {
	varOf := make([]int32, t.Len())
	for i := range varOf {
		varOf[i] = -1
	}
	for v, a := range order {
		varOf[a] = int32(v)
	}
	return varOf
}

// CanonicalClauses maps the live clauses of cs into canonical variable
// space and sorts them into a deterministic order (literals within a
// clause by variable, clauses lexicographically by literals then rule).
// Two clause sets with equal live content yield identical output
// regardless of insertion history. The returned slots give each
// canonical clause's stable slot in cs, for keying warm-start state.
func CanonicalClauses(cs *ClauseSet, varOf []int32) ([]Clause, []int32) {
	out := make([]Clause, 0, cs.Len())
	slots := make([]int32, 0, cs.Len())
	cs.ForEachSlot(func(at int32, c *Clause) bool {
		mc := Clause{Lits: make([]Lit, len(c.Lits)), Weight: c.Weight, Rule: c.Rule}
		for i, l := range c.Lits {
			mc.Lits[i] = Lit{Atom: AtomID(varOf[l.Atom]), Neg: l.Neg}
		}
		sort.Slice(mc.Lits, func(i, j int) bool {
			if mc.Lits[i].Atom != mc.Lits[j].Atom {
				return mc.Lits[i].Atom < mc.Lits[j].Atom
			}
			return !mc.Lits[i].Neg && mc.Lits[j].Neg
		})
		out = append(out, mc)
		slots = append(slots, at)
		return true
	})
	perm := make([]int, len(out))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return canonicalClauseLess(&out[perm[i]], &out[perm[j]]) })
	sorted := make([]Clause, len(out))
	sortedSlots := make([]int32, len(out))
	for i, p := range perm {
		sorted[i] = out[p]
		sortedSlots[i] = slots[p]
	}
	return sorted, sortedSlots
}

func canonicalClauseLess(a, b *Clause) bool {
	na, nb := len(a.Lits), len(b.Lits)
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		la, lb := a.Lits[i], b.Lits[i]
		if la.Atom != lb.Atom {
			return la.Atom < lb.Atom
		}
		if la.Neg != lb.Neg {
			return !la.Neg
		}
	}
	if na != nb {
		return na < nb
	}
	return a.Rule < b.Rule
}
