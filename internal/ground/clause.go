package ground

import (
	"fmt"
	"math"
	"strings"
)

// Lit is a literal: a ground atom or its negation.
type Lit struct {
	Atom AtomID
	Neg  bool
}

// String renders the literal as "a12" or "!a12".
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("!a%d", l.Atom)
	}
	return fmt.Sprintf("a%d", l.Atom)
}

// Clause is a weighted ground disjunction of literals. Hard clauses
// (infinite weight) must be satisfied; soft clauses contribute their
// weight when satisfied.
type Clause struct {
	Lits   []Lit
	Weight float64
	// Rule is the name of the rule or constraint this clause was
	// grounded from, for statistics and conflict explanations.
	Rule string
}

// Hard reports whether the clause is deterministic.
func (c *Clause) Hard() bool { return math.IsInf(c.Weight, 1) }

// Satisfied reports whether the clause holds under the assignment.
func (c *Clause) Satisfied(truth func(AtomID) bool) bool {
	for _, l := range c.Lits {
		if truth(l.Atom) != l.Neg {
			return true
		}
	}
	return false
}

// String renders the clause as "!a0 | !a4 [w=inf, rule=c2]".
func (c *Clause) String() string {
	var b strings.Builder
	for i, l := range c.Lits {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(l.String())
	}
	if c.Hard() {
		b.WriteString(" [w=inf")
	} else {
		fmt.Fprintf(&b, " [w=%g", c.Weight)
	}
	if c.Rule != "" {
		b.WriteString(", rule=")
		b.WriteString(c.Rule)
	}
	b.WriteByte(']')
	return b.String()
}

// normalize sorts literals, removes duplicates, and reports whether the
// clause is a tautology (contains both a and !a) and therefore skippable.
func (c *Clause) normalize() (tautology bool) {
	// Insertion sort by (atom, positive-first): clauses hold a handful of
	// literals and this runs once per emitted grounding — millions of
	// times per cold ground — where sort.Slice's reflection swapper was
	// measurable.
	lits := c.Lits
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && (lits[j].Atom > l.Atom || (lits[j].Atom == l.Atom && lits[j].Neg && !l.Neg)) {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
	out := c.Lits[:0]
	for i, l := range c.Lits {
		if i > 0 && l == c.Lits[i-1] {
			continue
		}
		if i > 0 && l.Atom == c.Lits[i-1].Atom {
			return true
		}
		out = append(out, l)
	}
	c.Lits = out
	return false
}

// keyHash hashes a clause's dedup identity — the normalized literal
// list plus the rule name — FNV-1a style with an avalanche finish.
// Deduplication never trusts the hash alone: candidates are verified
// with sameKey, colliding clauses spill to a linear-scanned list.
func keyHash(lits []Lit, rule string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, l := range lits {
		x := uint64(uint32(l.Atom)) << 1
		if l.Neg {
			x |= 1
		}
		h ^= x
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < len(rule); i++ {
		h ^= uint64(rule[i])
		h *= prime
	}
	return atomMix(h)
}

// sameKey reports whether the clause has exactly this dedup identity.
func (c *Clause) sameKey(lits []Lit, rule string) bool {
	if c.Rule != rule || len(c.Lits) != len(lits) {
		return false
	}
	for i, l := range c.Lits {
		if l != lits[i] {
			return false
		}
	}
	return true
}

// ClauseSet accumulates ground clauses with deduplication. Identical soft
// groundings merge by summing weights (equivalent objective, matching how
// RockIt aggregates feature counts); identical hard groundings collapse.
//
// A clause set can live across incremental solves: RemoveAtoms tombstones
// every clause mentioning a retracted atom (a grounding's participating
// atoms all appear among its literals, so atom membership is exactly
// grounding membership), and a later Add of the same grounding revives
// the slot. EnableAtomIndex turns on the atom → clause index this needs;
// transient clause sets skip the bookkeeping.
type ClauseSet struct {
	clauses []Clause
	dead    []bool
	nDead   int
	// index maps a clause's 64-bit key hash to its slot; colliding
	// clauses (different identity, same hash) spill into indexSpill.
	// Replaces a map keyed by a per-clause canonical string — at
	// millions of groundings the string builds dominated Add and the
	// keys dwarfed the clauses they deduplicated.
	index      map[uint64]int32
	indexSpill []int32
	// byAtom maps an atom to the clause positions mentioning it (live or
	// dead): a dense slice indexed by AtomID — atom ids are dense, so
	// the slice replaces a hash map without waste. Maintained only once
	// EnableAtomIndex set atomIndexed.
	byAtom      [][]int32
	atomIndexed bool
	// comps tracks conflict components incrementally; nil unless
	// EnableComponentIndex was called (see components.go).
	comps *componentIndex
}

// NewClauseSet returns an empty clause set.
func NewClauseSet() *ClauseSet {
	return &ClauseSet{index: make(map[uint64]int32)}
}

// NewClauseSetSized returns an empty clause set pre-sized for about hint
// clauses, so bulk grounding neither rehashes the dedup index nor
// regrows the clause slab as it fills.
func NewClauseSetSized(hint int) *ClauseSet {
	if hint <= 0 {
		return NewClauseSet()
	}
	return &ClauseSet{
		index:   make(map[uint64]int32, hint),
		clauses: make([]Clause, 0, hint),
	}
}

// ownLits copies a literal slice the set is about to retain — callers
// (the sequential grounding path in particular) reuse their emission
// buffers.
func ownLits(lits []Lit) []Lit {
	out := make([]Lit, len(lits))
	copy(out, lits)
	return out
}

// findSlot locates the clause with this dedup identity, checking the
// hash slot first and the collision spill after.
func (cs *ClauseSet) findSlot(h uint64, lits []Lit, rule string) (int, bool) {
	if at, ok := cs.index[h]; ok {
		if cs.clauses[at].sameKey(lits, rule) {
			return int(at), true
		}
		for _, at := range cs.indexSpill {
			if cs.clauses[at].sameKey(lits, rule) {
				return int(at), true
			}
		}
	}
	return 0, false
}

// EnableAtomIndex switches on the atom → clause index required by
// RemoveAtoms and SupportScan, indexing already-present clauses.
func (cs *ClauseSet) EnableAtomIndex() {
	if cs.atomIndexed {
		return
	}
	cs.atomIndexed = true
	for at := range cs.clauses {
		cs.indexAtoms(at)
	}
}

func (cs *ClauseSet) indexAtoms(at int) {
	if !cs.atomIndexed {
		return
	}
	for _, l := range cs.clauses[at].Lits {
		if n := int(l.Atom) + 1; n > len(cs.byAtom) {
			if n <= cap(cs.byAtom) {
				cs.byAtom = cs.byAtom[:n]
			} else {
				grown := make([][]int32, n, n+n/2+8)
				copy(grown, cs.byAtom)
				cs.byAtom = grown
			}
		}
		cs.byAtom[l.Atom] = append(cs.byAtom[l.Atom], int32(at))
	}
}

// clausesOf returns the indexed clause slots mentioning atom a.
func (cs *ClauseSet) clausesOf(a AtomID) []int32 {
	if int(a) < len(cs.byAtom) {
		return cs.byAtom[a]
	}
	return nil
}

// Add normalizes and inserts a clause, merging duplicates and reviving
// tombstoned slots. Tautologies and empty soft clauses are dropped.
// Adding an empty hard clause — an unconditionally violated constraint —
// is reported by returning false so callers can surface the
// contradiction.
func (cs *ClauseSet) Add(c Clause) bool {
	if c.normalize() {
		return true // tautology: trivially satisfied
	}
	if len(c.Lits) == 0 {
		return !c.Hard()
	}
	h := keyHash(c.Lits, c.Rule)
	if at, ok := cs.findSlot(h, c.Lits, c.Rule); ok {
		if cs.dead != nil && cs.dead[at] {
			// Revive: the grounding returns after its atoms came back;
			// this emission replaces the dropped aggregate.
			c.Lits = ownLits(c.Lits)
			cs.clauses[at] = c
			cs.dead[at] = false
			cs.nDead--
			cs.noteClause(at)
			return true
		}
		if !cs.clauses[at].Hard() && !c.Hard() {
			cs.clauses[at].Weight += c.Weight
		} else if c.Hard() {
			cs.clauses[at].Weight = math.Inf(1)
		}
		cs.noteClause(at)
		return true
	}
	at := int32(len(cs.clauses))
	if _, ok := cs.index[h]; ok {
		cs.indexSpill = append(cs.indexSpill, at)
	} else {
		cs.index[h] = at
	}
	c.Lits = ownLits(c.Lits)
	if len(cs.clauses) == cap(cs.clauses) && cap(cs.clauses) >= 1024 {
		// Doubling growth: append's ~1.25× large-slice policy allocates
		// (and zeroes) several times the final footprint across a bulk
		// ground; doubling halves that traffic.
		grown := make([]Clause, len(cs.clauses), 2*cap(cs.clauses))
		copy(grown, cs.clauses)
		cs.clauses = grown
	}
	cs.clauses = append(cs.clauses, c)
	if cs.dead != nil {
		cs.dead = append(cs.dead, false)
	}
	cs.indexAtoms(len(cs.clauses) - 1)
	cs.noteClause(len(cs.clauses) - 1)
	return true
}

// noteClause forwards a clause mutation at slot at to the component
// index: the clause's atoms merge into one component and its generation
// advances.
func (cs *ClauseSet) noteClause(at int) {
	if cs.comps != nil {
		cs.comps.noteClause(cs.clauses[at].Lits)
	}
}

// RemoveAtoms tombstones every live clause mentioning any of the given
// atoms, returning the number dropped. EnableAtomIndex must have been
// called.
func (cs *ClauseSet) RemoveAtoms(atoms []AtomID) int {
	if cs.dead == nil {
		cs.dead = make([]bool, len(cs.clauses))
	}
	removed := 0
	for _, a := range atoms {
		for _, at := range cs.clausesOf(a) {
			if !cs.dead[at] {
				cs.dead[at] = true
				cs.nDead++
				removed++
			}
		}
		if cs.comps != nil {
			// The atom's component lost clauses and may have split; it is
			// re-derived lazily at the next Components call.
			cs.comps.noteRemoval(a)
		}
	}
	return removed
}

// ForEach invokes fn for every live clause in slot order until fn
// returns false. The clause must not be modified.
func (cs *ClauseSet) ForEach(fn func(*Clause) bool) {
	cs.ForEachSlot(func(_ int32, c *Clause) bool { return fn(c) })
}

// ForEachSlot is ForEach exposing each clause's slot index. Slots are
// stable for the life of the set — tombstoned slots are skipped and a
// revived grounding reuses its old slot — so they key per-clause state
// across incremental solves (the PSL warm duals).
func (cs *ClauseSet) ForEachSlot(fn func(int32, *Clause) bool) {
	for at := range cs.clauses {
		if cs.dead != nil && cs.dead[at] {
			continue
		}
		if !fn(int32(at), &cs.clauses[at]) {
			return
		}
	}
}

// Clauses returns the accumulated live clauses. The slice must not be
// modified.
func (cs *ClauseSet) Clauses() []Clause {
	if cs.nDead == 0 {
		return cs.clauses
	}
	out := make([]Clause, 0, len(cs.clauses)-cs.nDead)
	for at := range cs.clauses {
		if !cs.dead[at] {
			out = append(out, cs.clauses[at])
		}
	}
	return out
}

// Len returns the number of distinct live clauses.
func (cs *ClauseSet) Len() int { return len(cs.clauses) - cs.nDead }

// SupportScan visits the live inference clauses that mention atom a,
// reporting each clause's head (its single positive literal) and body
// (the negated literals). Constraint clauses — all-negative — are
// skipped. Used by the incremental engine's delete/rederive pass, which
// reads rule groundings as derivation records.
func (cs *ClauseSet) SupportScan(a AtomID, fn func(head AtomID, c *Clause) bool) {
	for _, at := range cs.clausesOf(a) {
		if cs.dead != nil && cs.dead[at] {
			continue
		}
		c := &cs.clauses[at]
		head, ok := clauseHead(c)
		if !ok {
			continue
		}
		if !fn(head, c) {
			return
		}
	}
}

// clauseHead returns the single positive literal of an inference clause;
// ok is false for all-negative (constraint) clauses.
func clauseHead(c *Clause) (AtomID, bool) {
	for _, l := range c.Lits {
		if !l.Neg {
			return l.Atom, true
		}
	}
	return 0, false
}
