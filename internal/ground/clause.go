package ground

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Lit is a literal: a ground atom or its negation.
type Lit struct {
	Atom AtomID
	Neg  bool
}

// String renders the literal as "a12" or "!a12".
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("!a%d", l.Atom)
	}
	return fmt.Sprintf("a%d", l.Atom)
}

// Clause is a weighted ground disjunction of literals. Hard clauses
// (infinite weight) must be satisfied; soft clauses contribute their
// weight when satisfied.
type Clause struct {
	Lits   []Lit
	Weight float64
	// Rule is the name of the rule or constraint this clause was
	// grounded from, for statistics and conflict explanations.
	Rule string
}

// Hard reports whether the clause is deterministic.
func (c *Clause) Hard() bool { return math.IsInf(c.Weight, 1) }

// Satisfied reports whether the clause holds under the assignment.
func (c *Clause) Satisfied(truth func(AtomID) bool) bool {
	for _, l := range c.Lits {
		if truth(l.Atom) != l.Neg {
			return true
		}
	}
	return false
}

// String renders the clause as "!a0 | !a4 [w=inf, rule=c2]".
func (c *Clause) String() string {
	var b strings.Builder
	for i, l := range c.Lits {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(l.String())
	}
	if c.Hard() {
		b.WriteString(" [w=inf")
	} else {
		fmt.Fprintf(&b, " [w=%g", c.Weight)
	}
	if c.Rule != "" {
		b.WriteString(", rule=")
		b.WriteString(c.Rule)
	}
	b.WriteByte(']')
	return b.String()
}

// normalize sorts literals, removes duplicates, and reports whether the
// clause is a tautology (contains both a and !a) and therefore skippable.
func (c *Clause) normalize() (tautology bool) {
	sort.Slice(c.Lits, func(i, j int) bool {
		if c.Lits[i].Atom != c.Lits[j].Atom {
			return c.Lits[i].Atom < c.Lits[j].Atom
		}
		return !c.Lits[i].Neg && c.Lits[j].Neg
	})
	out := c.Lits[:0]
	for i, l := range c.Lits {
		if i > 0 && l == c.Lits[i-1] {
			continue
		}
		if i > 0 && l.Atom == c.Lits[i-1].Atom {
			return true
		}
		out = append(out, l)
	}
	c.Lits = out
	return false
}

// key returns a canonical identity for deduplication (after normalize).
func (c *Clause) key() string {
	var b strings.Builder
	for _, l := range c.Lits {
		if l.Neg {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d,", l.Atom)
	}
	b.WriteByte('#')
	b.WriteString(c.Rule)
	return b.String()
}

// ClauseSet accumulates ground clauses with deduplication. Identical soft
// groundings merge by summing weights (equivalent objective, matching how
// RockIt aggregates feature counts); identical hard groundings collapse.
type ClauseSet struct {
	clauses []Clause
	index   map[string]int
}

// NewClauseSet returns an empty clause set.
func NewClauseSet() *ClauseSet {
	return &ClauseSet{index: make(map[string]int)}
}

// Add normalizes and inserts a clause, merging duplicates. Tautologies
// and empty soft clauses are dropped. Adding an empty hard clause —
// an unconditionally violated constraint — is reported by returning
// false so callers can surface the contradiction.
func (cs *ClauseSet) Add(c Clause) bool {
	if c.normalize() {
		return true // tautology: trivially satisfied
	}
	if len(c.Lits) == 0 {
		return !c.Hard()
	}
	k := c.key()
	if at, ok := cs.index[k]; ok {
		if !cs.clauses[at].Hard() && !c.Hard() {
			cs.clauses[at].Weight += c.Weight
		} else if c.Hard() {
			cs.clauses[at].Weight = math.Inf(1)
		}
		return true
	}
	cs.index[k] = len(cs.clauses)
	cs.clauses = append(cs.clauses, c)
	return true
}

// Clauses returns the accumulated clauses. The slice must not be
// modified.
func (cs *ClauseSet) Clauses() []Clause { return cs.clauses }

// Len returns the number of distinct clauses.
func (cs *ClauseSet) Len() int { return len(cs.clauses) }
