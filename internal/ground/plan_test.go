package ground

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rulelang"
	"repro/internal/store"
	"repro/internal/temporal"
)

// skewedStore loads nBig facts of predicate big and nSmall facts of
// predicate small, sharing subjects so the planner sees a join.
func skewedStore(t testing.TB, nBig, nSmall int) *store.Store {
	t.Helper()
	st := store.New()
	iv := temporal.MustNew(2000, 2001)
	for i := 0; i < nBig; i++ {
		q := rdf.NewQuad(fmt.Sprintf("s%04d", i), "big", fmt.Sprintf("o%04d", i), iv, 0.9)
		if _, err := st.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nSmall; i++ {
		q := rdf.NewQuad(fmt.Sprintf("s%04d", i), "small", fmt.Sprintf("v%04d", i), iv, 0.9)
		if _, err := st.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestPlanSelectiveSkewed: with a 1000-fact predicate written first and
// a 2-fact predicate second, the planner must start from the small one —
// the whole point of selectivity-driven ordering.
func TestPlanSelectiveSkewed(t *testing.T) {
	g := New(skewedStore(t, 1000, 2))
	g.refreshViews()
	r, err := rulelang.ParseRule(
		"r: quad(x, big, y, t) ^ quad(x, small, z, t') -> overlap(t, t') w = inf")
	if err != nil {
		t.Fatal(err)
	}
	order, est, err := g.planSelective(r, -1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v (est %v), want %v", order, est, want)
	}
	if est[0] != 2 {
		t.Errorf("first estimate = %v, want the small posting length 2", est[0])
	}
	// Once x is bound, the big atom's estimate must drop from the full
	// posting (1000) to the per-subject average (1).
	if est[1] >= 1000 {
		t.Errorf("bound estimate = %v, did not use the join variable", est[1])
	}
}

// TestPlanSelectiveTie: equal cardinalities everywhere — the planner
// must fall back to body position, keeping the written order (the
// determinism tie-break).
func TestPlanSelectiveTie(t *testing.T) {
	st := store.New()
	iv := temporal.MustNew(2000, 2001)
	for i := 0; i < 5; i++ {
		for _, p := range []string{"p", "q"} {
			q := rdf.NewQuad(fmt.Sprintf("s%d", i), p, fmt.Sprintf("o%d", i), iv, 0.9)
			if _, err := st.Add(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := New(st)
	g.refreshViews()
	r, err := rulelang.ParseRule(
		"r: quad(x, p, y, t) ^ quad(x, q, z, t') -> overlap(t, t') w = inf")
	if err != nil {
		t.Fatal(err)
	}
	order, _, err := g.planSelective(r, -1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want written order %v on a tie", order, want)
	}
}

// TestPlanSelectivePinned: delta tasks pin the seed atom first; the
// planner must keep it there and order the rest by selectivity.
func TestPlanSelectivePinned(t *testing.T) {
	g := New(skewedStore(t, 1000, 2))
	g.refreshViews()
	r, err := rulelang.ParseRule(
		"r: quad(x, big, y, t) ^ quad(x, small, z, t') -> overlap(t, t') w = inf")
	if err != nil {
		t.Fatal(err)
	}
	order, _, err := g.planSelective(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want pinned %v", order, want)
	}
}

// TestPlanSelectiveAbsentPredicate: a constant absent from every
// dictionary matches nothing; its atom estimates 0 and leads the plan,
// short-circuiting the whole join.
func TestPlanSelectiveAbsentPredicate(t *testing.T) {
	g := New(skewedStore(t, 100, 100))
	g.refreshViews()
	r, err := rulelang.ParseRule(
		"r: quad(x, big, y, t) ^ quad(x, nosuch, z, t') -> overlap(t, t') w = inf")
	if err != nil {
		t.Fatal(err)
	}
	order, est, err := g.planSelective(r, -1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v (est %v), want the absent predicate first", order, est)
	}
	if est[0] != 0 {
		t.Errorf("absent predicate estimate = %v, want 0", est[0])
	}
}
